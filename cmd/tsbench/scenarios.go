package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"threadscan/internal/core"
	"threadscan/internal/harness"
	"threadscan/internal/obs"
	"threadscan/internal/simmem"
	"threadscan/internal/workload"
)

// runScenarios is the `tsbench scenarios` subcommand: run the
// declarative workload suite (or a filtered slice of it) across a grid
// of structures and schemes, and report throughput next to the
// Hyaline-style robustness metric (peak retired-but-unreclaimed words)
// as JSON.
func runScenarios(args []string) {
	fs := flag.NewFlagSet("scenarios", flag.ExitOnError)
	var (
		list     = fs.Bool("list", false, "list built-in scenarios and exit")
		names    = fs.String("scenario", "", "comma-separated scenario names (default: all built-ins)")
		dss      = fs.String("ds", "list,stack,queue", "comma-separated structures to cross")
		schemes  = fs.String("schemes", "leaky,epoch,threadscan", "comma-separated schemes to cross")
		seed     = fs.Int64("seed", 1, "simulation seed")
		scale    = fs.Float64("scale", 1, "stretch factor for all scenario durations")
		shards   = fs.Int("shards", 0, "threadscan collect shards K (0 = scenario default / serial)")
		wmark    = fs.Int("watermark", 0, "threadscan global collect watermark (0 = scenario default / off)")
		helpFree = fs.Bool("helpfree", false, "enable threadscan's scanner-assisted sweep (help protocol)")
		nodes    = fs.Int("nodes", 0, "NUMA nodes to group the cores into (0 = scenario default / flat)")
		pin      = fs.String("pin", "", `worker pinning policy: "none", "rr", or "split" ("" = scenario default)`)
		claim    = fs.String("claim", "", `threadscan shard-claim order: "affinity" or "rr" ("" = scenario default)`)
		perNode  = fs.Bool("pernode", false, "enable threadscan per-node retirement routing + node-local reclaimers")
		steal    = fs.Int("steal", 0, "threadscan per-node steal threshold in addresses (0 = default)")
		allocPol = fs.String("allocpolicy", "", `allocator NUMA policy: "global", "localalloc", "membind", or "interleave" ("" = scenario default)`)
		jsonPath = fs.String("json", "-", `JSON output: "-" for stdout, else a file path`)
		samples  = fs.Bool("samples", false, "include the full footprint time series in the JSON")
		quietTbl = fs.Bool("no-table", false, "suppress the human-readable table on stderr")
		trace    = fs.String("trace", "", "write a Chrome trace-event JSON of every run to this file (open in chrome://tracing or Perfetto)")
		profile  = fs.Bool("profile", false, "print a per-stage cycle-attribution profile for every run on stderr")
		metrics  = fs.String("metrics", "", "write per-series virtual-time timelines for every grid cell as JSON to this file (read back with `tsbench timeline` / `tsbench metrics-diff`)")
		metCSV   = fs.String("metrics-csv", "", "also write the timelines in long CSV format (one row per point)")
		metEvery = fs.Int64("metrics-every", 0, "metrics sampling interval in virtual cycles (0 = footprint cadence; only meaningful with -metrics/-metrics-csv)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tsbench scenarios [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, s := range workload.Builtins() {
			fmt.Fprintf(tw, "%s\t%s\n", s.Name, s.Desc)
		}
		tw.Flush()
		return
	}

	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, "tsbench scenarios:", err)
		fs.Usage()
		os.Exit(2)
	}

	// An unknown scenario name is a usage error at parse time — for
	// -profile and -trace especially, failing mid-grid after minutes of
	// simulation would waste the whole run.
	specs, err := resolveScenarios(*names)
	if err != nil {
		usageErr(err)
	}

	// Unknown scheme names fail the same way, before the grid runs.
	for _, scheme := range strings.Split(*schemes, ",") {
		if !harness.KnownScheme(strings.TrimSpace(scheme)) {
			usageErr(fmt.Errorf("unknown scheme %q (known: %s)",
				strings.TrimSpace(scheme), strings.Join(harness.SchemeNames(), ", ")))
		}
	}

	// Validate the topology flags against every selected scenario up
	// front: a -nodes that exceeds a scenario's core count (or a bad
	// policy string) is a usage error at parse time, not a mid-grid
	// failure — and never a silent clamp that reports results for a
	// different machine than the one asked for.
	if err := validateTopologyFlags(specs, *nodes, *pin, *claim, *perNode, *steal, *allocPol); err != nil {
		usageErr(err)
	}

	// The trace file opens before anything runs for the same reason: an
	// unwritable path must fail as a usage error, not after the grid.
	var traceFile *os.File
	if *trace != "" {
		traceFile, err = createTraceFile(*trace)
		if err != nil {
			usageErr(err)
		}
		defer traceFile.Close()
	}
	// Same policy for the metrics outputs; -metrics-every without an
	// output would silently sample into the void, so it is an error.
	collectMetrics := *metrics != "" || *metCSV != ""
	if *metEvery < 0 {
		usageErr(fmt.Errorf("-metrics-every %d: interval cannot be negative", *metEvery))
	}
	if *metEvery > 0 && !collectMetrics {
		usageErr(fmt.Errorf("-metrics-every needs an output: add -metrics out.json or -metrics-csv out.csv"))
	}
	metricsFile, err := createOutFile("-metrics", *metrics)
	if err != nil {
		usageErr(err)
	}
	metCSVFile, err := createOutFile("-metrics-csv", *metCSV)
	if err != nil {
		usageErr(err)
	}

	var results []harness.ScenarioResult
	var traceRuns []obs.TraceRun
	var metricCells []obs.MetricsCell
	for _, base := range specs {
		for _, dsName := range strings.Split(*dss, ",") {
			for _, scheme := range strings.Split(*schemes, ",") {
				spec := base.Scale(*scale)
				spec.DS = strings.TrimSpace(dsName)
				spec.Scheme = strings.TrimSpace(scheme)
				spec.Seed = *seed
				if *shards > 0 {
					spec.Shards = *shards
				}
				if *wmark > 0 {
					spec.Watermark = *wmark
				}
				if *helpFree {
					spec.HelpFree = true
				}
				if *nodes > 0 {
					spec.Nodes = *nodes
				}
				if *pin != "" {
					spec.PinPolicy = *pin
				}
				if *claim != "" {
					spec.ClaimPolicy = *claim
				}
				if *perNode {
					spec.PerNode = true
				}
				if *steal > 0 {
					spec.StealThreshold = *steal
				}
				if *allocPol != "" {
					spec.AllocPolicy = *allocPol
				}
				if collectMetrics {
					spec.MetricsEvery = *metEvery
					if spec.MetricsEvery == 0 {
						spec.MetricsEvery = -1 // resolve to footprint cadence in Fill
					}
				}
				rec := obs.NewRecorder()
				if traceFile != nil {
					rec = obs.NewTraceRecorder()
				}
				r, err := harness.RunScenarioRecorded(spec, rec)
				if err != nil {
					fatal(err)
				}
				label := fmt.Sprintf("%s %s/%s", r.Name, r.DS, r.Scheme)
				if traceFile != nil {
					var ws []obs.Window
					for _, pw := range r.Scenario.PhaseWindows() {
						ws = append(ws, obs.Window{
							Name:  pw.Name,
							Start: r.MeasuredStart + pw.Start,
							End:   r.MeasuredStart + pw.End,
						})
					}
					traceRuns = append(traceRuns, obs.TraceRun{Label: label, Rec: rec, Windows: ws})
				}
				if *profile {
					if err := obs.WriteProfile(os.Stderr, label, rec); err != nil {
						fatal(err)
					}
				}
				if r.AccountingError != "" {
					fmt.Fprintf(os.Stderr, "! %s %s/%s: %s\n", r.Name, r.DS, r.Scheme, r.AccountingError)
				}
				if collectMetrics {
					metricCells = append(metricCells, obs.MetricsCell{
						Scenario: r.Name, DS: r.DS, Scheme: r.Scheme, Series: r.Metrics,
					})
					// Timelines live in the metrics files; keep the results
					// JSON the same shape with and without -metrics.
					r.Metrics = nil
				}
				if !*samples {
					r.Footprint.Samples = nil
				}
				results = append(results, r)
				line := fmt.Sprintf("· %-20s %-8s %-10s %8.0f ops/vsec  peak-garbage %d words",
					r.Name, r.DS, r.Scheme, r.Throughput, r.Footprint.PeakRetiredWords)
				if r.Core != nil {
					line += fmt.Sprintf("  collect %d cyc", r.Core.CollectCycles)
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}

	if traceFile != nil {
		if err := obs.WriteChromeTrace(traceFile, traceRuns); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
	}

	if metricsFile != nil {
		if err := obs.WriteMetricsJSON(metricsFile, metricCells); err != nil {
			fatal(err)
		}
		if err := metricsFile.Close(); err != nil {
			fatal(err)
		}
	}
	if metCSVFile != nil {
		if err := obs.WriteMetricsCSV(metCSVFile, metricCells); err != nil {
			fatal(err)
		}
		if err := metCSVFile.Close(); err != nil {
			fatal(err)
		}
	}

	if !*quietTbl {
		writeScenarioTable(os.Stderr, results)
	}

	out := os.Stdout
	if *jsonPath != "-" && *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}

// resolveScenarios maps the -scenario flag to scenario specs (all
// built-ins when empty).  An unknown name is a usage error.
func resolveScenarios(names string) ([]workload.Scenario, error) {
	if names == "" {
		return workload.Builtins(), nil
	}
	var specs []workload.Scenario
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		s, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (try -list)", n)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// createTraceFile opens the -trace output for writing, wrapping any
// failure so the caller can report it as a flag usage error.
func createTraceFile(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("-trace: %w", err)
	}
	return f, nil
}

// createOutFile opens an optional output path up front (nil when the
// flag is unset), wrapping failures as usage errors like -trace.
func createOutFile(flagName, path string) (*os.File, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", flagName, err)
	}
	return f, nil
}

// validateTopologyFlags checks the scenarios subcommand's topology
// flags against every selected scenario before anything runs.  The
// workload layer clamps Nodes to the core count for programmatic
// callers; at the CLI that clamp would silently benchmark a different
// machine than the user asked for, so here it is a usage error.
func validateTopologyFlags(specs []workload.Scenario, nodes int, pin, claim string, perNode bool, steal int, allocPol string) error {
	switch pin {
	case "", "none", "rr", "split":
	default:
		return fmt.Errorf(`unknown -pin policy %q (want "none", "rr", or "split")`, pin)
	}
	switch claim {
	case "", "affinity", "rr":
	default:
		return fmt.Errorf(`unknown -claim order %q (want "affinity" or "rr")`, claim)
	}
	pol, err := simmem.ParsePolicy(allocPol)
	if err != nil {
		return fmt.Errorf("-allocpolicy: %w", err)
	}
	if nodes < 0 {
		return fmt.Errorf("-nodes %d: node count cannot be negative", nodes)
	}
	if steal < 0 {
		return fmt.Errorf("-steal %d: steal threshold cannot be negative", steal)
	}
	if perNode && nodes > core.MaxRoutedNodes {
		return fmt.Errorf("-pernode supports at most %d nodes (the node tag rides in the ring entry's low bits), got -nodes %d",
			core.MaxRoutedNodes, nodes)
	}
	for i := range specs {
		sc := specs[i]
		if err := sc.Fill(); err != nil {
			return err
		}
		cores := sc.Cores
		if nodes > cores {
			return fmt.Errorf("scenario %q runs on %d cores; -nodes %d cannot split them into more nodes than cores",
				sc.Name, cores, nodes)
		}
		// The flag overrides the scenario's topology, so judge -pernode
		// against the *effective* node count of the run.
		effNodes := sc.Nodes
		if nodes > 0 {
			effNodes = nodes
		}
		if perNode && effNodes <= 1 {
			return fmt.Errorf("scenario %q would run flat (%d node): -pernode needs a multi-node topology (raise -nodes)",
				sc.Name, effNodes)
		}
		// A per-node allocation policy on a flat run would silently
		// benchmark the single global pool under the policy's name —
		// judge the *effective* policy of the run (flag override, else
		// the scenario's own knob), exactly like -pernode above.
		effPolicy := pol
		if allocPol == "" {
			effPolicy, _ = simmem.ParsePolicy(sc.AllocPolicy) // Fill validated it
		}
		if effPolicy != simmem.PolicyGlobal && effNodes <= 1 {
			return fmt.Errorf("scenario %q would run flat (%d node): allocation policy %s needs a multi-node topology (raise -nodes)",
				sc.Name, effNodes, effPolicy)
		}
	}
	return nil
}

// writeScenarioTable renders the grid: throughput and peak unreclaimed
// garbage per scenario x structure x scheme, with the full collect-
// pipeline counter set — the same counters the JSON path carries, so
// neither output is the poor relation.
func writeScenarioTable(w io.Writer, results []harness.ScenarioResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tds\tscheme\tthr/cores\tnodes\talloc\tops\tops/vsec\tpeak-garbage-nodes\tpeak-garbage-words\tfinal-garbage\tchurned\tcollect-cyc\tdbl-retires\thelp-sorted\thelp-swept\tlocal-claims\tremote-claims\tremote-fills\tsweep-remote\tstolen\tovl\tremote-allocs\thome-frees\tremote-frees")
	for _, r := range results {
		var collectCyc int64
		var dblRetires, helpSorted, helpSwept, localClaims, remoteClaims uint64
		var sweepRemote, stolen, overlapped uint64
		if r.Core != nil {
			collectCyc = r.Core.CollectCycles
			dblRetires = r.Core.DoubleRetires
			helpSorted = r.Core.HelpSortedShards
			helpSwept = r.Core.HelpSweptShards
			localClaims = r.Core.LocalShardClaims
			remoteClaims = r.Core.RemoteShardClaims
			sweepRemote = r.Core.SweepRemoteFills
			stolen = r.Core.StolenCollects + r.Core.StolenSweeps
			overlapped = r.Core.OverlappedCollects
		}
		nodes := r.Nodes
		if nodes == 0 {
			nodes = 1
		}
		alloc := r.AllocPolicy
		if alloc == "" {
			alloc = "global"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d/%d\t%d\t%s\t%d\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Name, r.DS, r.Scheme, r.Threads, r.Cores, nodes, alloc, r.Ops, r.Throughput,
			r.Footprint.PeakRetiredNodes, r.Footprint.PeakRetiredWords,
			r.Footprint.FinalRetiredNodes, r.ChurnWorkers, collectCyc, dblRetires,
			helpSorted, helpSwept, localClaims, remoteClaims, r.Sim.RemoteLineFills,
			sweepRemote, stolen, overlapped, r.Heap.RemoteAllocs, r.Heap.HomeFrees, r.Heap.RemoteFrees)
	}
	tw.Flush()
}
