package main

import (
	"flag"
	"fmt"
	"os"

	"threadscan/internal/obs"
)

// runTimeline is the `tsbench timeline` subcommand: render a metrics
// JSON file (from `tsbench scenarios -metrics`) as per-series sparkline
// rows with min/mean/max and the steady-window digest.
func runTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	series := fs.String("series", "", "only render series whose name contains this substring")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tsbench timeline [flags] metrics.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	cells, err := readMetricsFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := obs.WriteTimeline(os.Stdout, cells, *series); err != nil {
		fatal(err)
	}
}

// runMetricsDiff is the `tsbench metrics-diff` subcommand: the
// cross-run regression reporter.  It compares two metrics JSON files
// series by series on their steady-state windows and exits 1 when any
// series drifted beyond the tolerance (or disappeared), 0 when clean —
// a graded perf/robustness diff next to the BENCH replay's
// bit-identical check.
func runMetricsDiff(args []string) {
	fs := flag.NewFlagSet("metrics-diff", flag.ExitOnError)
	tol := fs.Float64("tolerance", 0.10, "relative steady-mean shift allowed before a series is flagged")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tsbench metrics-diff [flags] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	if *tol < 0 {
		fmt.Fprintf(os.Stderr, "tsbench metrics-diff: -tolerance %g: cannot be negative\n", *tol)
		fs.Usage()
		os.Exit(2)
	}
	oldCells, err := readMetricsFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	newCells, err := readMetricsFile(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	drifts := obs.DiffMetrics(oldCells, newCells, *tol)
	if len(drifts) == 0 {
		fmt.Printf("metrics-diff: %d cells compared, no series drifted beyond %.0f%%\n",
			len(oldCells), *tol*100)
		return
	}
	fmt.Printf("metrics-diff: %d series drifted beyond %.0f%%:\n", len(drifts), *tol*100)
	if err := obs.WriteDriftTable(os.Stdout, drifts); err != nil {
		fatal(err)
	}
	os.Exit(1)
}

func readMetricsFile(path string) ([]obs.MetricsCell, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cells, err := obs.ReadMetricsJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cells, nil
}
