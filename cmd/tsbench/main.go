// Command tsbench regenerates the paper's evaluation — both figure
// families (Figure 3: throughput scaling; Figure 4: oversubscription)
// and the ablations documented in DESIGN.md (A1 buffer size, A2 scan
// cost, A3 scan lookup, A4 errant thread, A5 sharded collect) — and
// runs the declarative scenario suite (skew, delete storms, thread
// churn, oversubscription) with memory-footprint telemetry.
//
// Examples:
//
//	tsbench -fig 3 -ds list                 # one Figure 3 panel, quick scale
//	tsbench -fig 4 -ds all -csv fig4.csv    # all Figure 4 panels + CSV
//	tsbench -fig 3 -ds hash -scale paper    # paper-exact workload (slow!)
//	tsbench -ablation stall                 # A4: errant-thread contrast
//	tsbench -ablation robust                # A10: bounded garbage under preemption
//	tsbench -single -ds skiplist -scheme threadscan -threads 16 -cores 8
//
//	tsbench scenarios -list                 # name every built-in scenario
//	tsbench scenarios                       # full suite as JSON on stdout
//	tsbench scenarios -scenario delete-storm,thread-churn -ds stack,queue
//	tsbench scenarios -json suite.json -samples   # with footprint series
//
//	tsbench scenarios -metrics m.json       # per-series virtual-time timelines
//	tsbench timeline m.json                 # sparkline/table report of a metrics file
//	tsbench metrics-diff old.json new.json  # flag steady-state drift between runs
//
//	tsbench harness-bench                   # append a wall-clock trajectory row
//	tsbench harness-bench -check            # and fail on >2x regression
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"threadscan/internal/harness"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenarios" {
		runScenarios(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "harness-bench" {
		runHarnessBench(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		runTimeline(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "metrics-diff" {
		runMetricsDiff(os.Args[2:])
		return
	}
	var (
		figNum   = flag.Int("fig", 0, "figure to reproduce: 3 or 4")
		ablation = flag.String("ablation", "", "ablation to run: buffer | lookup | scancost | stall | shards | numa | pernode | allocpool | overlap | robust")
		single   = flag.Bool("single", false, "run a single experiment and dump its stats")
		dsName   = flag.String("ds", "all", "data structure: list | hash | skiplist | all")
		scheme   = flag.String("scheme", "threadscan", "scheme for -single")
		scale    = flag.String("scale", "quick", "workload scale: quick | paper")
		threads  = flag.String("threads", "", "comma-separated thread counts (sweeps) or count (-single)")
		cores    = flag.Int("cores", 0, "virtual cores (0 = per-scale default)")
		duration = flag.Float64("duration-ms", 50, "measured window per point, in virtual milliseconds")
		quantum  = flag.Float64("quantum-us", 0, "scheduler timeslice in virtual microseconds (0 = default 200)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		cacheSim = flag.Bool("cache", true, "enable the per-core cache model")
		csvPath  = flag.String("csv", "", "also write figure results as CSV to this file")
		buffer   = flag.Int("buffer", 0, "per-thread delete buffer for -single (0 = 1024)")
		batch    = flag.Int("batch", 0, "reclaim batch for -single (0 = 1024)")
		ablScen  = flag.String("ablation-scenario", "", "scenario(s) for -ablation shards/numa/pernode/allocpool/overlap/robust (comma-separated except shards and robust)")
		shardKs  = flag.String("shard-counts", "", "comma-separated K values for -ablation shards (default 1,2,4,8,16)")
		trace    = flag.String("trace", "", "tracing is a scenarios feature; see: tsbench scenarios -trace out.json")
	)
	flag.Parse()

	if err := validateRootTrace(*trace, *ablation); err != nil {
		fmt.Fprintln(os.Stderr, "tsbench:", err)
		flag.Usage()
		os.Exit(2)
	}

	// An unknown scheme is a usage error at parse time, not a failure
	// after the run starts — same policy as scenario and topology names.
	if !harness.KnownScheme(*scheme) {
		fmt.Fprintf(os.Stderr, "tsbench: unknown scheme %q (known: %s)\n",
			*scheme, strings.Join(harness.SchemeNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}

	params := harness.SweepParams{
		Scale:    parseScale(*scale),
		Cores:    *cores,
		Duration: int64(*duration * 1e6),
		Quantum:  int64(*quantum * 1e3),
		Seed:     *seed,
		CacheSim: *cacheSim,
	}
	if *threads != "" && !*single {
		params.ThreadCounts = parseInts(*threads, "thread count")
	}

	switch {
	case *single:
		runSingle(*dsName, *scheme, *threads, params, *buffer, *batch)
	case *ablation != "":
		var ks []int
		if *shardKs != "" {
			ks = parseInts(*shardKs, "shard count")
		}
		runAblation(*ablation, params, *ablScen, ks)
	case *figNum == 3 || *figNum == 4:
		runFigure(*figNum, *dsName, params, *csvPath)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsbench:", err)
	os.Exit(1)
}

// validateRootTrace rejects -trace on the root command: traces come
// from the scenario engine, and silently ignoring the flag on a figure
// or ablation run would look like an empty-trace bug.  A usage error at
// parse time, matching the topology-flag validation style.
func validateRootTrace(trace, ablation string) error {
	if trace == "" {
		return nil
	}
	if ablation != "" {
		return fmt.Errorf("-trace cannot be combined with -ablation: tracing is a scenarios feature (tsbench scenarios -trace %s)", trace)
	}
	return fmt.Errorf("-trace applies to the scenarios subcommand: tsbench scenarios -trace %s", trace)
}

func parseScale(s string) harness.Scale {
	switch s {
	case "quick":
		return harness.ScaleQuick
	case "paper":
		return harness.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", s))
		return 0
	}
}

func parseInts(s, what string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad %s %q", what, part))
		}
		out = append(out, n)
	}
	return out
}

// splitScenarios parses a comma-separated -ablation-scenario value
// (empty slice = the ablation's default scenario set).
func splitScenarios(s string) []string {
	var out []string
	if s != "" {
		for _, part := range strings.Split(s, ",") {
			out = append(out, strings.TrimSpace(part))
		}
	}
	return out
}

func dsNames(s string) []string {
	if s == "all" {
		return []string{"list", "hash", "skiplist"}
	}
	if s == "skip" {
		return []string{"skiplist"}
	}
	return []string{s}
}

func runFigure(fig int, dsArg string, params harness.SweepParams, csvPath string) {
	var csvFile *os.File
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csvFile = f
	}
	for _, name := range dsNames(dsArg) {
		var (
			figure harness.Figure
			err    error
		)
		if fig == 3 {
			figure, err = harness.RunFig3(name, params)
		} else {
			figure, err = harness.RunFig4(name, params)
		}
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteTable(os.Stdout, figure); err != nil {
			fatal(err)
		}
		fmt.Println()
		if csvFile != nil {
			if err := harness.WriteCSV(csvFile, figure); err != nil {
				fatal(err)
			}
		}
	}
}

func runAblation(kind string, params harness.SweepParams, ablScenario string, shardKs []int) {
	switch kind {
	case "buffer":
		rows, err := harness.AblationBuffer(nil, params, 0)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteBufferTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "lookup":
		rows, err := harness.AblationLookup(params, 0)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteLookupTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "scancost":
		for _, helpFree := range []bool{false, true} {
			rows, err := harness.AblationScanCost(params, helpFree)
			if err != nil {
				fatal(err)
			}
			if err := harness.WriteScanCostTable(os.Stdout, rows, helpFree); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case "stall":
		rows, err := harness.AblationStall(params, 0, 0, 0)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteStallTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "shards":
		rows, err := harness.AblationShards(ablScenario, shardKs, params)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteShardTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "numa":
		rows, err := harness.AblationNUMA(splitScenarios(ablScenario), params)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteNUMATable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "pernode":
		rows, err := harness.AblationPerNode(splitScenarios(ablScenario), params)
		if err != nil {
			fatal(err)
		}
		if err := harness.WritePerNodeTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "allocpool":
		rows, err := harness.AblationAllocPool(splitScenarios(ablScenario), params)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteAllocPoolTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "overlap":
		rows, err := harness.AblationOverlap(splitScenarios(ablScenario), nil, params)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteOverlapTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "robust":
		rows, err := harness.AblationRobust(ablScenario, nil, params)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteRobustTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown ablation %q", kind))
	}
}

func runSingle(dsArg, scheme, threadsArg string, params harness.SweepParams, buffer, batch int) {
	n := 4
	if threadsArg != "" {
		n = parseInts(threadsArg, "thread count")[0]
	}
	for _, name := range dsNames(dsArg) {
		cfg := harness.Config{
			DS: name, Scheme: scheme, Threads: n, Cores: params.Cores,
			Duration: params.Duration, Seed: params.Seed, CacheSim: params.CacheSim,
			Quantum: params.Quantum, BufferSize: buffer, Batch: batch,
		}
		r, err := harness.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s/%s threads=%d cores=%d\n", name, scheme, n, r.Config.Cores)
		fmt.Printf("  ops            %d\n", r.Ops)
		fmt.Printf("  elapsed        %.3f virtual ms (wall %v)\n", r.VirtualSeconds*1e3, r.WallTime)
		fmt.Printf("  throughput     %.0f ops/vsec\n", r.Throughput)
		fmt.Printf("  final size     %d\n", r.FinalSize)
		fmt.Printf("  scheme stats   %+v\n", r.Scheme)
		if r.Core != nil {
			fmt.Printf("  threadscan     %+v\n", *r.Core)
		}
		fmt.Printf("  sim stats      %+v\n", r.Sim)
		fmt.Printf("  heap           allocs=%d frees=%d live=%d\n",
			r.Heap.Allocs, r.Heap.Frees, r.Heap.LiveBlocks)
	}
}
