package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"threadscan/internal/harness"
	"threadscan/internal/obs"
	"threadscan/internal/workload"
)

// runHarnessBench is the `tsbench harness-bench` subcommand: the
// simulator's own wall-clock trajectory.  It times the full scenario
// grid and every ablation sweep on the host clock, appends one row to
// BENCH_harness.json, and with -check fails when any section runs more
// than 2x slower than the rolling best of the recorded trajectory — so
// a simulator performance regression fails CI like a correctness
// regression would.
//
// Host time lives here deliberately: internal/harness is a simulation
// package policed by tslint's determinism analyzer, so the only clock
// it may read is virtual.  The trajectory is a property of the *host*
// run, which makes it cmd/ business.
func runHarnessBench(args []string) {
	fs := flag.NewFlagSet("harness-bench", flag.ExitOnError)
	var (
		jsonPath = fs.String("json", "BENCH_harness.json", "trajectory file to append to")
		check    = fs.Bool("check", false, "fail if any section runs >2x slower than the trajectory's rolling best")
		scale    = fs.Float64("scale", 0.25, "stretch factor for the scenario-grid section")
		duration = fs.Float64("duration-ms", 10, "measured window for the ablation sections, in virtual milliseconds")
		seed     = fs.Int64("seed", 1, "simulation seed")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tsbench harness-bench [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	params := harness.SweepParams{
		Scale:    harness.ScaleQuick,
		Duration: int64(*duration * 1e6),
		Seed:     *seed,
		CacheSim: true,
	}

	row := benchRow{
		When:     time.Now().UTC().Format(time.RFC3339),
		Host:     fmt.Sprintf("%s/%s ncpu=%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Sections: map[string]float64{},
	}
	timed := func(name string, run func() error) {
		start := time.Now()
		if err := run(); err != nil {
			fatal(fmt.Errorf("harness-bench %s: %w", name, err))
		}
		secs := time.Since(start).Seconds()
		row.Sections[name] = secs
		row.TotalSec += secs
		fmt.Fprintf(os.Stderr, "· %-20s %7.2fs\n", name, secs)
	}

	timed("scenario-grid", func() error {
		for _, base := range workload.Builtins() {
			for _, ds := range []string{"list", "stack", "queue"} {
				for _, scheme := range []string{"leaky", "epoch", "threadscan"} {
					spec := base.Scale(*scale)
					spec.DS, spec.Scheme, spec.Seed = ds, scheme, *seed
					if _, err := harness.RunScenario(spec); err != nil {
						return fmt.Errorf("%s/%s/%s: %w", base.Name, ds, scheme, err)
					}
				}
			}
		}
		return nil
	})
	ablations := []struct {
		name string
		run  func() error
	}{
		{"ablation-buffer", func() error { _, err := harness.AblationBuffer(nil, params, 0); return err }},
		{"ablation-lookup", func() error { _, err := harness.AblationLookup(params, 0); return err }},
		{"ablation-scancost", func() error { _, err := harness.AblationScanCost(params, true); return err }},
		{"ablation-stall", func() error { _, err := harness.AblationStall(params, 0, 0, 0); return err }},
		{"ablation-shards", func() error { _, err := harness.AblationShards("", nil, params); return err }},
		{"ablation-numa", func() error { _, err := harness.AblationNUMA(nil, params); return err }},
		{"ablation-pernode", func() error { _, err := harness.AblationPerNode(nil, params); return err }},
		{"ablation-allocpool", func() error { _, err := harness.AblationAllocPool(nil, params); return err }},
		{"ablation-overlap", func() error { _, err := harness.AblationOverlap(nil, nil, params); return err }},
		{"ablation-robust", func() error { _, err := harness.AblationRobust("", nil, params); return err }},
	}
	for _, a := range ablations {
		timed(a.name, a.run)
	}
	timed("metrics", func() error {
		spec, ok := workload.ByName("per-node-reclaim")
		if !ok {
			return fmt.Errorf("builtin per-node-reclaim missing")
		}
		spec = spec.Scale(*scale)
		spec.Scheme, spec.Seed = "threadscan", *seed
		spec.MetricsEvery = -1 // footprint cadence
		r, err := harness.RunScenario(spec)
		if err != nil {
			return err
		}
		cell := obs.MetricsCell{Scenario: r.Name, DS: r.DS, Scheme: r.Scheme, Series: r.Metrics}
		var buf bytes.Buffer
		if err := obs.WriteMetricsJSON(&buf, []obs.MetricsCell{cell}); err != nil {
			return err
		}
		cells, err := obs.ReadMetricsJSON(&buf)
		if err != nil {
			return err
		}
		// A metrics run must self-compare clean: any drift against its
		// own export is a determinism or round-trip bug, not a perf
		// regression, and fails the section outright.
		if drifts := obs.DiffMetrics(cells, cells, 0.01); len(drifts) > 0 {
			return fmt.Errorf("metrics self-diff drifted: %d series", len(drifts))
		}
		return nil
	})
	fmt.Fprintf(os.Stderr, "· %-20s %7.2fs\n", "total", row.TotalSec)

	prior, err := readTrajectory(*jsonPath)
	if err != nil {
		fatal(err)
	}
	if *check {
		if err := checkTrajectory(prior, row); err != nil {
			fatal(err)
		}
	}
	if err := writeTrajectory(*jsonPath, append(prior, row)); err != nil {
		fatal(err)
	}
}

// benchRow is one harness-bench run: host wall-clock seconds per
// section, appended to the trajectory file.
type benchRow struct {
	When     string             `json:"when"`
	Host     string             `json:"host"`
	Sections map[string]float64 `json:"sections_sec"`
	TotalSec float64            `json:"total_sec"`
}

func readTrajectory(path string) ([]benchRow, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rows []benchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func writeTrajectory(path string, rows []benchRow) error {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// checkTrajectory compares the fresh row against the rolling best (the
// per-section minimum over the last 20 recorded rows) and reports every
// section that ran more than 2x slower.  The minimum — not the latest
// row — is the reference, so a slow CI host can't ratchet the budget
// upward run over run; the generous 2x margin absorbs host-to-host
// variance the other way.
func checkTrajectory(prior []benchRow, fresh benchRow) error {
	if len(prior) == 0 {
		fmt.Fprintln(os.Stderr, "harness-bench: no prior trajectory; recording first row")
		return nil
	}
	window := prior
	if len(window) > 20 {
		window = window[len(window)-20:]
	}
	best := map[string]float64{}
	for _, r := range window {
		for name, secs := range r.Sections {
			if b, ok := best[name]; !ok || secs < b {
				best[name] = secs
			}
		}
	}
	var regressions []string
	for name, secs := range fresh.Sections {
		if b, ok := best[name]; ok && secs > 2*b {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2fs vs rolling best %.2fs (%.1fx)", name, secs, b, secs/b))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("wall-clock regression >2x:\n  %s", strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "harness-bench: all %d sections within 2x of rolling best\n", len(fresh.Sections))
	return nil
}
