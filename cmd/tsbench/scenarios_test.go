package main

import (
	"os"
	"strings"
	"testing"

	"threadscan/internal/workload"
)

// builtinByName returns the named builtin as a one-element spec slice.
func builtinByName(t *testing.T, name string) []workload.Scenario {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("%s builtin missing", name)
	}
	return []workload.Scenario{s}
}

// validateTopologyFlags must catch bad topology requests at flag-parse
// time — before any scenario runs — instead of silently clamping to a
// different machine (the old behavior) or panicking mid-grid.
func TestValidateTopologyFlags(t *testing.T) {
	builtins := workload.Builtins()
	split, ok := workload.ByName("numa-split")
	if !ok {
		t.Fatal("numa-split builtin missing")
	}
	flat, ok := workload.ByName("uniform-baseline")
	if !ok {
		t.Fatal("uniform-baseline builtin missing")
	}

	cases := []struct {
		name     string
		specs    []workload.Scenario
		nodes    int
		pin      string
		claim    string
		perNode  bool
		steal    int
		allocPol string
		wantErr  string // substring; "" = must pass
	}{
		{name: "defaults pass", specs: builtins},
		{name: "nodes within cores", specs: builtins, nodes: 2, pin: "rr"},
		{name: "nodes over cores rejected", specs: []workload.Scenario{split}, nodes: 64,
			wantErr: "more nodes than cores"},
		{name: "nodes over smallest scenario rejected", specs: builtins, nodes: 7,
			wantErr: "more nodes than cores"}, // thread-churn runs on 6 cores
		{name: "negative nodes rejected", specs: builtins, nodes: -1,
			wantErr: "cannot be negative"},
		{name: "bad pin rejected", specs: builtins, pin: "sideways",
			wantErr: "-pin"},
		{name: "bad claim rejected", specs: builtins, claim: "greedy",
			wantErr: "-claim"},
		{name: "negative steal rejected", specs: builtins, steal: -8,
			wantErr: "-steal"},
		{name: "pernode on flat scenario rejected", specs: []workload.Scenario{flat}, perNode: true,
			wantErr: "multi-node"},
		{name: "pernode flattened by -nodes 1 rejected", specs: []workload.Scenario{split}, nodes: 1, perNode: true,
			wantErr: "multi-node"},
		{name: "pernode with nodes passes", specs: []workload.Scenario{flat}, nodes: 2, perNode: true},
		{name: "pernode on numa scenario passes", specs: []workload.Scenario{split}, perNode: true},
		{name: "pernode beyond tag bits rejected", specs: []workload.Scenario{split}, nodes: 9, perNode: true,
			wantErr: "at most 8 nodes"},
		{name: "unknown alloc policy rejected", specs: builtins, allocPol: "firsttouch",
			wantErr: "allocation policy"},
		{name: "alloc policy on flat scenario rejected", specs: []workload.Scenario{flat}, allocPol: "localalloc",
			wantErr: "multi-node"},
		{name: "alloc policy flattened by -nodes 1 rejected", specs: []workload.Scenario{split}, nodes: 1, allocPol: "membind",
			wantErr: "multi-node"},
		{name: "global alloc policy on flat scenario passes", specs: []workload.Scenario{flat}, allocPol: "global"},
		{name: "builtin alloc policy flattened by -nodes 1 rejected", specs: builtinByName(t, "membind-contrast"), nodes: 1,
			wantErr: "multi-node"},
		{name: "builtin alloc policy with its own topology passes", specs: builtinByName(t, "membind-contrast")},
		{name: "alloc policy with nodes passes", specs: []workload.Scenario{flat}, nodes: 2, allocPol: "interleave"},
		{name: "alloc policy on numa scenario passes", specs: []workload.Scenario{split}, allocPol: "localalloc"},
	}
	for _, tc := range cases {
		err := validateTopologyFlags(tc.specs, tc.nodes, tc.pin, tc.claim, tc.perNode, tc.steal, tc.allocPol)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// resolveScenarios must name-check every -scenario entry at parse time
// instead of failing mid-grid.
func TestResolveScenarios(t *testing.T) {
	all, err := resolveScenarios("")
	if err != nil || len(all) != len(workload.Builtins()) {
		t.Fatalf("empty selector: %d specs, err %v (want the full builtin suite)", len(all), err)
	}
	two, err := resolveScenarios("numa-split, delete-storm")
	if err != nil || len(two) != 2 || two[0].Name != "numa-split" || two[1].Name != "delete-storm" {
		t.Fatalf("two-name selector: %+v, err %v", two, err)
	}
	if _, err := resolveScenarios("numa-split,nope"); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown name: err %v, want unknown-scenario usage error", err)
	}
}

// createTraceFile must surface an unwritable -trace path as a usage
// error at parse time, before minutes of simulation run for nothing.
func TestCreateTraceFile(t *testing.T) {
	if _, err := createTraceFile("/no/such/dir/trace.json"); err == nil ||
		!strings.Contains(err.Error(), "-trace") {
		t.Fatalf("unwritable path: err %v, want -trace usage error", err)
	}
	path := t.TempDir() + "/trace.json"
	f, err := createTraceFile(path)
	if err != nil {
		t.Fatalf("writable path: %v", err)
	}
	f.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not created: %v", err)
	}
}

// The root command owns no tracer: -trace there is a usage error that
// redirects to the scenarios subcommand (and names the -ablation
// conflict explicitly).
func TestValidateRootTrace(t *testing.T) {
	if err := validateRootTrace("", "stall"); err != nil {
		t.Fatalf("no -trace: unexpected error %v", err)
	}
	if err := validateRootTrace("out.json", "stall"); err == nil ||
		!strings.Contains(err.Error(), "cannot be combined with -ablation") {
		t.Fatalf("-trace with -ablation: err %v", err)
	}
	if err := validateRootTrace("out.json", ""); err == nil ||
		!strings.Contains(err.Error(), "applies to the scenarios subcommand") {
		t.Fatalf("-trace alone: err %v", err)
	}
}
