// Command tslint runs the project's analyzer suite (internal/lint):
// five static checks that make the simulator's conventions —
// deterministic replay, zero-cost observability, tagged ring-entry
// hygiene, atomic-access consistency, no use-after-retire —
// mechanically enforceable.
//
// Standalone mode (the CI entry point):
//
//	tslint ./...            # lint packages, findings to stdout, exit 1 if any
//	tslint -json ./...      # findings as a JSON array
//
// Vettool mode: the binary also speaks the go vet driver protocol, so
// the same checks run under the standard toolchain:
//
//	go vet -vettool=$(which tslint) ./...
//
// In that mode go vet invokes the binary once per package with a JSON
// config file argument (*.cfg) carrying file lists and export-data
// paths; diagnostics go to stderr and a non-zero exit marks the
// package as failed, exactly like the built-in vet analyzers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"strings"

	"threadscan/internal/lint"
	"threadscan/internal/lint/loader"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tslint: ")

	// The go vet driver protocol: version probe, flag discovery, then
	// one invocation per package with a trailing *.cfg argument.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-V=full":
			fmt.Printf("%s version tslint-1.0\n", filepath.Base(os.Args[0]))
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	if n := len(os.Args); n > 1 && strings.HasSuffix(os.Args[n-1], ".cfg") {
		os.Exit(vetUnit(os.Args[n-1]))
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Parse()

	findings, err := lint.Check(".", lint.DefaultConfig(), flag.Args()...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// vetConfig is the subset of the go vet per-package config file the
// driver reads.
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package under the go vet protocol and returns
// the process exit code.
func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("parsing %s: %v", cfgFile, err)
		return 1
	}
	// go vet caches per-package facts ("vetx") and requires the output
	// file to exist even though this suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency visited only for facts
	}
	fset := token.NewFileSet()
	imp := loader.NewExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := loader.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Print(err)
		return 1
	}
	findings, err := lint.RunPackage(pkg, lint.Suite(lint.DefaultConfig()))
	if err != nil {
		log.Print(err)
		return 1
	}
	findings = lint.ApplyIgnores(pkg, findings)
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return 2
}
