package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"threadscan/internal/lint"
)

// buildTslint compiles the tslint binary once per test binary run.
func buildTslint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tslint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tslint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named threadscan — the name
// matters, because DefaultConfig polices threadscan/internal/... import
// paths — with the given files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module threadscan\n\ngo 1.24\n"
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const violatingCore = `package core

import "time"

// Stamp consults the wall clock from a simulated package.
func Stamp() time.Time { return time.Now() }
`

const cleanCore = `package core

// Tick is deterministic.
func Tick(t uint64) uint64 { return t + 1 }
`

func TestStandaloneFindsSeededViolation(t *testing.T) {
	bin := buildTslint(t)
	dir := writeModule(t, map[string]string{"internal/core/core.go": violatingCore})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "time.Now") || !strings.Contains(string(out), "simdeterminism") {
		t.Errorf("output does not name the violation and analyzer:\n%s", out)
	}
}

func TestStandaloneCleanModule(t *testing.T) {
	bin := buildTslint(t)
	dir := writeModule(t, map[string]string{"internal/core/core.go": cleanCore})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("want exit 0 on a clean module, got %v\n%s", err, out)
	}
}

func TestStandaloneJSONOutput(t *testing.T) {
	bin := buildTslint(t)
	dir := writeModule(t, map[string]string{"internal/core/core.go": violatingCore})

	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v", err)
	}
	var findings []lint.Finding
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out)
	}
	if len(findings) != 1 || findings[0].Analyzer != "simdeterminism" {
		t.Errorf("findings = %+v, want one simdeterminism finding", findings)
	}
}

// TestGoVetVettool runs the binary under the standard toolchain driver:
// go vet -vettool. This is the compatibility contract documented in the
// README — the same diagnostics, through the stock vet UX.
func TestGoVetVettool(t *testing.T) {
	bin := buildTslint(t)
	dir := writeModule(t, map[string]string{"internal/core/core.go": violatingCore})

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet should fail on the seeded violation\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now") {
		t.Errorf("go vet output does not carry the diagnostic:\n%s", out)
	}

	// And a clean module passes under the same driver — including a
	// test file whose inline tag masking would be a tagptr violation in
	// production source (go vet feeds test variants; tests are exempt).
	clean := writeModule(t, map[string]string{
		"internal/core/core.go": cleanCore,
		"internal/core/core_test.go": `package core

import "testing"

func TestMask(t *testing.T) {
	if v := uint64(16) &^ 7; v != 16 {
		t.Fatal(v)
	}
}
`,
	})
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = clean
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet on a clean module: %v\n%s", err, out)
	}
}

// TestVettoolProtocolProbes checks the two driver handshake calls go
// vet makes before any package work.
func TestVettoolProtocolProbes(t *testing.T) {
	bin := buildTslint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "tslint version") {
		t.Errorf("-V=full output %q does not identify the tool", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("-flags output %q, want []", out)
	}
}

// TestSuppressionUnderDriver checks that //tslint:ignore works through
// the standalone driver end to end.
func TestSuppressionUnderDriver(t *testing.T) {
	bin := buildTslint(t)
	dir := writeModule(t, map[string]string{"internal/core/core.go": `package core

import "time"

func Stamp() time.Time {
	//tslint:ignore simdeterminism exercising the suppression path
	return time.Now()
}
`})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("suppressed violation should exit 0, got %v\n%s", err, out)
	}
}
