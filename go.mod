module threadscan

go 1.24
