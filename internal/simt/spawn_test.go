package simt

import "testing"

// Mid-run spawning (SpawnFrom) underpins thread-churn workloads: a
// running thread creates fresh threads that register with reclamation
// schemes through the ordinary start hooks, run, and exit mid-run.

func TestSpawnFromMidRun(t *testing.T) {
	s := New(testConfig())
	var starts, exits []int
	s.OnThreadStart(func(th *Thread) { starts = append(starts, th.ID()) })
	s.OnThreadExit(func(th *Thread) { exits = append(exits, th.ID()) })

	childRan := false
	var childStartAt int64
	s.Spawn("parent", func(th *Thread) {
		th.Work(5_000)
		child := s.SpawnFrom(th, "child", func(c *Thread) {
			childStartAt = c.Now()
			childRan = true
			c.Work(2_000)
		})
		if child.ID() != 1 {
			t.Errorf("child id = %d, want 1", child.ID())
		}
		th.Work(20_000)
	})
	mustRun(t, s)

	if !childRan {
		t.Fatal("mid-run child never ran")
	}
	if childStartAt < 5_000 {
		t.Fatalf("child started at %d, before its spawn point", childStartAt)
	}
	if len(starts) != 2 || len(exits) != 2 {
		t.Fatalf("hooks: starts %v exits %v, want both [0 1] in some order", starts, exits)
	}
}

func TestSpawnFromBeforeRunActsLikeSpawn(t *testing.T) {
	s := New(testConfig())
	ran := false
	s.SpawnFrom(nil, "w", func(th *Thread) { ran = true })
	mustRun(t, s)
	if !ran {
		t.Fatal("pre-run SpawnFrom thread did not run")
	}
}

func TestSpawnFromNestedGenerations(t *testing.T) {
	// Each generation spawns the next; every thread must run and exit,
	// and the run must stay deterministic across repetitions.
	clock := func(seed int64) int64 {
		s := New(testConfig())
		total := 0
		var gen func(depth int) func(*Thread)
		gen = func(depth int) func(*Thread) {
			return func(th *Thread) {
				total++
				th.Work(1_000)
				if depth < 4 {
					s.SpawnFrom(th, "g", gen(depth+1))
					s.SpawnFrom(th, "g", gen(depth+1))
				}
				th.Work(1_000)
			}
		}
		s.Spawn("g0", gen(0))
		mustRun(t, s)
		if total != 31 { // 1+2+4+8+16
			t.Fatalf("ran %d threads, want 31", total)
		}
		return s.Clock()
	}
	if a, b := clock(1), clock(1); a != b {
		t.Fatalf("mid-run spawning broke determinism: clocks %d vs %d", a, b)
	}
}
