// Package simt is the simulated threading substrate for the ThreadScan
// reproduction: a deterministic discrete-event scheduler that runs
// simulated threads (one goroutine each, exactly one active at a time)
// on a configurable number of virtual cores, with quanta, preemption,
// POSIX-style signals, and a cycle-accurate virtual clock.
//
// Why simulate?  ThreadScan's mechanism is inseparable from the
// operating system: it interrupts threads with signals and scans their
// machine stacks and registers.  The Go runtime owns both signals and
// goroutine stacks, so the reproduction models them explicitly:
//
//   - Each Thread carries a register file and a word-array stack.
//     Data-structure code keeps every live heap reference in a register
//     or stack slot (the paper's Assumption 1.3), so a scan of those
//     words is exactly the paper's TS-Scan.
//   - Signals are delivered at safepoints — the boundaries between
//     simulated instructions — which models the OS interrupting a
//     thread between machine instructions.  Threads blocked in
//     interruptible waits are woken to run handlers (EINTR semantics,
//     paper §4.2 "Signaling").
//   - Threads are multiplexed onto Cores virtual cores with a quantum;
//     running more threads than cores reproduces the oversubscription
//     regime of the paper's Figure 4, including delayed signal response.
//
// Determinism: the scheduler serializes all simulated threads (exactly
// one goroutine is ever unparked), so a run with a fixed Config.Seed is
// reproducible, simulated primitives are atomic between safepoints, and
// the whole simulation needs no host synchronization.  Time is virtual:
// every primitive charges cycles from CostModel, and throughput is
// reported in operations per virtual second.
package simt

import "threadscan/internal/simmem"

// NumRegs is the size of each thread's general-purpose register file.
// Sixteen registers mirror x86-64, the paper's evaluation platform.
const NumRegs = 16

// SigNum identifies a simulated POSIX signal.
type SigNum int

// MaxSignals is the number of distinct simulated signals.
const MaxSignals = 8

// Config describes a simulation instance.
type Config struct {
	// Cores is the number of virtual cores.  Threads beyond this count
	// are oversubscribed and queue for quanta.  Defaults to 4.
	Cores int

	// Nodes is the number of NUMA nodes the cores are grouped into
	// (see topology.go).  Cores split into contiguous near-equal
	// blocks; heap lines are homed first-touch; cross-node line fills
	// charge Costs.RemoteFill.  Defaults to 1 — the flat machine,
	// bit-identical in virtual-cycle charges to the pre-topology
	// model.  Clamped to Cores.
	Nodes int

	// Quantum is the scheduling quantum in cycles.  Defaults to 200,000
	// (200µs at the default 1 GHz virtual clock, the order of Linux
	// CFS's minimum granularity under load).  The quantum is what makes
	// oversubscription expensive for ThreadScan: a descheduled thread
	// answers a scan signal only when it next gets a core, so the
	// reclaimer's wait grows with (threads/cores) x quantum — the
	// mechanism behind the paper's Figure 4.  Tests that want maximal
	// interleaving set it much lower.
	Quantum int64

	// StackWords is each thread's simulated stack capacity.  Defaults
	// to 512 words.
	StackWords int

	// Seed seeds the scheduler's and the threads' random number
	// generators.  Two runs with equal configs and seeds are identical.
	Seed int64

	// Chaos randomizes quantum lengths and dispatch tie-breaking to
	// fuzz interleavings.  Used by stress tests; throughput numbers are
	// not meaningful in chaos mode.
	Chaos bool

	// Hz is the virtual clock rate in cycles per second, used only to
	// convert cycle counts to seconds for reporting.  Defaults to 1e9.
	Hz int64

	// Costs is the cycle cost model.  Zero value selects DefaultCosts.
	Costs CostModel

	// CacheSim enables the per-core cache model (4-way set-associative,
	// 64-byte lines): heap accesses that miss pay Costs.MissPenalty.
	// This is what differentiates the paper's small-footprint linked
	// list (cache-resident, so hazard fences dominate) from the large
	// hash table (miss-dominated, so fences matter less).
	CacheSim bool

	// CacheSets is the number of 64-byte lines in each core's modeled
	// cache (4-way set-associative).  Defaults to 16384 (1 MiB per
	// core, the order of a per-core LLC share on the paper's Xeon).
	CacheSets int

	// MaxCycles, when positive, aborts the run with a *TimeoutError
	// once the virtual clock passes it — a watchdog against livelocked
	// simulations.
	MaxCycles int64

	// Heap configures the simulated heap shared by all threads.
	// Heap.Nodes defaults to Nodes, so setting Heap.Policy to a
	// non-global allocation policy on a multi-node machine splits the
	// arena into per-node pools automatically; thread caches bind to
	// their thread's node, and cross-node pool traffic charges
	// Costs.RemoteFill.
	Heap simmem.Config
}

// CostModel assigns virtual cycle costs to primitives.  Values are
// calibrated to commodity x86 latencies at a 1 GHz virtual clock; the
// absolute scale is arbitrary, the ratios are what shape results.
type CostModel struct {
	Load          int64 // cache-hit load
	Store         int64 // store
	CAS           int64 // compare-and-swap (success or failure)
	Fence         int64 // full memory fence (the hazard-pointer per-read cost)
	RegOp         int64 // register-to-register operation
	Alloc         int64 // allocator fast path
	Free          int64 // allocator free fast path
	Step          int64 // generic instruction (branch, compare)
	Pause         int64 // one spin-wait iteration
	MissPenalty   int64 // added to Load/Store/CAS on a modeled cache miss
	RemoteFill    int64 // added on top when the line's home is a remote NUMA node
	SignalSend    int64 // sender-side cost of one signal (kernel entry)
	SignalDeliver int64 // receiver-side handler entry/exit
	WakeLatency   int64 // wakeup latency for blocked/sleeping threads
	ContextSwitch int64 // dispatch of a different thread on a core
}

// DefaultCosts returns the calibrated default cost model.
func DefaultCosts() CostModel {
	return CostModel{
		Load:          4,
		Store:         8,
		CAS:           40,
		Fence:         40,
		RegOp:         1,
		Alloc:         80,
		Free:          60,
		Step:          1,
		Pause:         30,
		MissPenalty:   150,
		RemoteFill:    150, // a remote fill costs ~2x a local one (QPI-era ratio)
		SignalSend:    800,
		SignalDeliver: 1500,
		WakeLatency:   2000,
		ContextSwitch: 4000,
	}
}

func (c *Config) fill() {
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Nodes > c.Cores {
		c.Nodes = c.Cores
	}
	if c.Quantum <= 0 {
		c.Quantum = 200_000
	}
	if c.StackWords <= 0 {
		c.StackWords = 512
	}
	if c.Hz <= 0 {
		c.Hz = 1_000_000_000
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	if c.CacheSets <= 0 {
		c.CacheSets = 16384
	}
	// The cache model masks with a power-of-two set count.
	for c.CacheSets&(c.CacheSets-1) != 0 {
		c.CacheSets++
	}
	// The heap's node pools mirror the machine topology unless the
	// caller pinned them explicitly.  With Heap.Policy left at
	// PolicyGlobal the heap keeps a single pool regardless, so the flat
	// and global-policy models stay bit-identical.
	if c.Heap.Nodes == 0 {
		c.Heap.Nodes = c.Nodes
	}
}
