package simt

import "fmt"

// Machine topology: virtual cores grouped into NUMA nodes.
//
// The paper's scalability argument (§6–7) depends on where reclamation
// work executes relative to where nodes were retired: a collect that
// sorts and sweeps on the socket that retired the addresses walks warm
// lines, one that lands on the other socket pays a remote fill per
// line.  The flat core array cannot express that, so the simulator
// models an explicit topology:
//
//   - Config.Nodes groups the Cores virtual cores into contiguous,
//     near-equal blocks (node i owns cores [i*C/N, (i+1)*C/N)), the way
//     firmware enumerates sockets.
//   - Every heap line has a home node, assigned when its block is
//     allocated (first-touch, as Linux places pages).  A cache-line
//     fill whose home is a different node than the accessing core
//     charges Costs.RemoteFill on top of the normal cost — the
//     cross-socket interconnect hop — and counts in
//     SimStats.RemoteLineFills.  A remote fill also migrates the
//     line's home to the accessor, a one-level directory-coherence
//     model: after a thread writes or reads a line, the next access
//     from its own socket is local, the next from the other socket
//     pays the hop.  This is what makes retire-side attribution the
//     right locality signal — a consumer that pops a node owns its
//     lines, wherever they were first allocated.
//   - Thread.Pin restricts a thread to one node's cores (the
//     sched_setaffinity analog); SpawnFrom children inherit the
//     parent's pin, like a forked thread inherits its CPU mask.
//
// Nodes == 1 (the default) is the flat machine: no line has a remote
// home, no access charges RemoteFill, and the scheduler's core choice
// degenerates to the earliest-free core — virtual-cycle charges are
// bit-identical to the pre-topology model.
type topology struct {
	nodes  int
	cores  int
	nodeOf []int // core -> node
}

func newTopology(nodes, cores int) topology {
	if nodes < 1 {
		nodes = 1
	}
	if nodes > cores {
		nodes = cores
	}
	t := topology{nodes: nodes, cores: cores, nodeOf: make([]int, cores)}
	for n := 0; n < nodes; n++ {
		lo, hi := n*cores/nodes, (n+1)*cores/nodes
		for c := lo; c < hi; c++ {
			t.nodeOf[c] = n
		}
	}
	return t
}

// coreRange returns the half-open core interval [lo, hi) owned by node n.
func (t *topology) coreRange(n int) (lo, hi int) {
	return n * t.cores / t.nodes, (n + 1) * t.cores / t.nodes
}

// Nodes returns the number of NUMA nodes in the simulated machine.
func (s *Sim) Nodes() int { return s.topo.nodes }

// NodeOfCore returns the NUMA node that owns the given core.
func (s *Sim) NodeOfCore(core int) int {
	if core < 0 || core >= len(s.topo.nodeOf) {
		panic(fmt.Sprintf("simt: core %d out of range", core))
	}
	return s.topo.nodeOf[core]
}

// NodeCores returns the half-open core interval [lo, hi) of node n.
func (s *Sim) NodeCores(n int) (lo, hi int) {
	if n < 0 || n >= s.topo.nodes {
		panic(fmt.Sprintf("simt: node %d out of range", n))
	}
	return s.topo.coreRange(n)
}

// Pin restricts the thread to the cores of NUMA node n, taking effect
// at its next dispatch (sched_setaffinity semantics).  Pin(-1) clears
// the restriction.  Callable before Run on a freshly spawned thread or
// from the thread's own running context.
func (t *Thread) Pin(n int) {
	if n < -1 || n >= t.sim.topo.nodes {
		panic(fmt.Sprintf("simt: Pin to node %d of %d", n, t.sim.topo.nodes))
	}
	t.pinned = n
}

// Pinned returns the node the thread is pinned to, or -1 if unpinned.
func (t *Thread) Pinned() int { return t.pinned }

// Node returns the thread's current NUMA node: the pinned node when
// pinned, otherwise the node of the core it last ran on.  This is the
// node reclamation attributes the thread's work to.
func (t *Thread) Node() int {
	if t.pinned >= 0 {
		return t.pinned
	}
	return t.sim.topo.nodeOf[t.core]
}

// homeOf returns the home node of the heap line containing addr,
// assigning touch as its home on first contact (Linux's first-touch
// page placement).  Alloc pre-assigns every line of a fresh block to
// the allocating thread's node, so ordinary data-structure memory is
// homed where it was born.
func (s *Sim) homeOf(addr uint64, touch int) int {
	line := int(addr>>lineShift) - s.lineBase
	if line < 0 || line >= len(s.lineHome) {
		return touch // outside the arena (simulated nil, poison): local
	}
	if s.lineHome[line] < 0 {
		s.lineHome[line] = int8(touch)
	}
	return int(s.lineHome[line])
}

// setHome assigns node as the home of every line overlapping
// [addr, addr+bytes).
func (s *Sim) setHome(addr uint64, bytes int, node int) {
	first := int(addr>>lineShift) - s.lineBase
	last := int((addr+uint64(bytes)-1)>>lineShift) - s.lineBase
	for l := first; l <= last; l++ {
		if l >= 0 && l < len(s.lineHome) {
			s.lineHome[l] = int8(node)
		}
	}
}

// LineHome reports the home node of the line containing addr, or -1 if
// the line has no home yet.  Diagnostic; charges nothing.
func (s *Sim) LineHome(addr uint64) int {
	line := int(addr>>lineShift) - s.lineBase
	if line < 0 || line >= len(s.lineHome) {
		return -1
	}
	return int(s.lineHome[line])
}
