package simt

// Probe receives host-side notifications from the simulation's hot
// paths: allocator latencies, cross-node traffic, and signal sends.
// It exists so an observability layer can watch the substrate without
// simt importing it (the recorder lives above simt in the package DAG).
//
// Contract: a probe must never charge virtual cycles or otherwise
// perturb simulation state — callbacks fire after the instrumented
// operation has fully settled, and everything the scheduler decides on
// (clocks, queues, RNGs) must be identical with and without a probe
// attached.  All callbacks run in the acting thread's context, so like
// every other simt surface they need no synchronization.
type Probe interface {
	// Alloc fires after Thread.Alloc: dur is the allocation's full
	// virtual cost (including any remote-fill penalty); remote marks an
	// allocation served by a block resident on another node.
	Alloc(t *Thread, dur int64, remote bool)
	// Free fires after Thread.FreeAddr; flushed marks a free whose
	// staged cross-node batch flushed over the interconnect.
	Free(t *Thread, dur int64, flushed bool)
	// RemoteLineFill fires on each memory access that pulled a cache
	// line from a remote node.
	RemoteLineFill(t *Thread)
	// SignalSent fires after Thread.Signal delivers-or-queues a signal
	// to a live target.
	SignalSent(from, to *Thread)
}

// SetProbe attaches p (nil detaches).  Typically called before Run,
// but safe at any point between safepoints.
func (s *Sim) SetProbe(p Probe) { s.probe = p }
