package simt

import (
	"errors"
	"testing"

	"threadscan/internal/simmem"
)

func testConfig() Config {
	return Config{
		Cores:   2,
		Quantum: 10_000,
		Seed:    1,
		Heap:    simmem.Config{Words: 1 << 14, Check: true, Poison: true},
	}
}

func mustRun(t *testing.T, s *Sim) {
	t.Helper()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunSingleThread(t *testing.T) {
	s := New(testConfig())
	ran := false
	s.Spawn("t0", func(th *Thread) {
		th.Work(1000)
		ran = true
	})
	mustRun(t, s)
	if !ran {
		t.Fatal("thread body did not run")
	}
	if s.Clock() < 1000 {
		t.Fatalf("clock %d did not advance past work", s.Clock())
	}
}

func TestAllThreadsProgressFairly(t *testing.T) {
	// Four threads on one core: the scheduler must interleave them so
	// all finish in roughly the same virtual window (fairness).
	cfg := testConfig()
	cfg.Cores = 1
	s := New(cfg)
	finish := make([]int64, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn("worker", func(th *Thread) {
			th.Work(100_000)
			finish[i] = th.Now()
		})
	}
	mustRun(t, s)
	min, max := finish[0], finish[0]
	for _, f := range finish[1:] {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if max-min > 2*cfg.Quantum+4*DefaultCosts().ContextSwitch {
		t.Fatalf("unfair finish spread: min=%d max=%d", min, max)
	}
}

func TestVirtualTimeOverlapsAcrossCores(t *testing.T) {
	// Two threads doing W work each on two cores should finish in about
	// W virtual time, not 2W: the DES overlaps them.
	cfg := testConfig()
	cfg.Cores = 2
	s := New(cfg)
	for i := 0; i < 2; i++ {
		s.Spawn("w", func(th *Thread) { th.Work(500_000) })
	}
	mustRun(t, s)
	if c := s.Clock(); c > 600_000 {
		t.Fatalf("two cores did not overlap: clock=%d", c)
	}
}

func TestOversubscriptionSerializes(t *testing.T) {
	// Two threads on ONE core take about 2W.
	cfg := testConfig()
	cfg.Cores = 1
	s := New(cfg)
	for i := 0; i < 2; i++ {
		s.Spawn("w", func(th *Thread) { th.Work(500_000) })
	}
	mustRun(t, s)
	if c := s.Clock(); c < 1_000_000 {
		t.Fatalf("one core overlapped impossibly: clock=%d", c)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(testConfig())
	q := s.NewWaitQueue("never")
	s.Spawn("stuck", func(th *Thread) { q.Wait(th) })
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(dl.States) != 1 {
		t.Fatalf("deadlock states: %v", dl.States)
	}
}

func TestThreadPanicSurfacesViolation(t *testing.T) {
	s := New(testConfig())
	s.Spawn("uaf", func(th *Thread) {
		th.Alloc(0, 32)
		addr := th.Reg(0)
		th.FreeAddr(addr)
		th.Load(1, 0, 0) // use after free
	})
	err := s.Run()
	var v *simmem.Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected violation, got %v", err)
	}
	if v.Kind != simmem.VUseAfterFree {
		t.Fatalf("expected use-after-free, got %v", v.Kind)
	}
	var tp *ThreadPanic
	if !errors.As(err, &tp) || tp.Name != "uaf" {
		t.Fatalf("ThreadPanic metadata missing: %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, uint64, SimStats) {
		cfg := testConfig()
		cfg.Cores = 2
		cfg.Seed = 42
		s := New(cfg)
		var ops uint64
		for i := 0; i < 5; i++ {
			s.Spawn("w", func(th *Thread) {
				th.Alloc(0, 64)
				for j := 0; j < 500; j++ {
					th.StoreImm(0, 0, uint64(j))
					th.Load(1, 0, 0)
					if th.RNG().Intn(10) == 0 {
						th.Yield()
					}
					ops++
				}
			})
		}
		mustRun(t, s)
		return s.Clock(), ops, s.Stats()
	}
	c1, o1, s1 := run()
	c2, o2, s2 := run()
	if c1 != c2 || o1 != o2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d,%+v) vs (%d,%d,%+v)", c1, o1, s1, c2, o2, s2)
	}
}

func TestChaosModeStillCompletes(t *testing.T) {
	cfg := testConfig()
	cfg.Chaos = true
	cfg.Seed = 7
	s := New(cfg)
	total := 0
	for i := 0; i < 6; i++ {
		s.Spawn("w", func(th *Thread) {
			th.Work(20_000)
			total++
		})
	}
	mustRun(t, s)
	if total != 6 {
		t.Fatalf("chaos run lost threads: %d", total)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := New(testConfig())
	s.Spawn("w", func(th *Thread) {})
	mustRun(t, s)
	if err := s.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 1
	s := New(cfg)
	for i := 0; i < 2; i++ {
		s.Spawn("w", func(th *Thread) { th.Work(50_000) })
	}
	mustRun(t, s)
	if s.Stats().ContextSwitches < 2 {
		t.Fatalf("expected context switches on a shared core, got %+v", s.Stats())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New(testConfig())
	var after int64
	s.Spawn("sleeper", func(th *Thread) {
		before := th.Now()
		if th.Sleep(1_000_000) {
			t.Error("sleep spuriously interrupted")
		}
		after = th.Now() - before
	})
	mustRun(t, s)
	if after < 1_000_000 {
		t.Fatalf("sleep too short: %d", after)
	}
}

func TestSleeperDoesNotBlockCore(t *testing.T) {
	// One core: a long sleeper must not delay a worker.
	cfg := testConfig()
	cfg.Cores = 1
	s := New(cfg)
	var workerDone int64
	s.Spawn("sleeper", func(th *Thread) { th.Sleep(50_000_000) })
	s.Spawn("worker", func(th *Thread) {
		th.Work(100_000)
		workerDone = th.Now()
	})
	mustRun(t, s)
	if workerDone > 1_000_000 {
		t.Fatalf("worker delayed by sleeper: done at %d", workerDone)
	}
}

func TestCacheModelChargesMisses(t *testing.T) {
	// With the cache model on, a large scan costs more than repeated
	// access to one line.
	run := func(stride int) int64 {
		cfg := testConfig()
		cfg.CacheSim = true
		cfg.Heap.Words = 1 << 18
		s := New(cfg)
		s.Spawn("w", func(th *Thread) {
			th.Alloc(0, 1<<17) // 128 KiB block
			for i := 0; i < 2000; i++ {
				th.Load(1, 0, (i*stride)%(1<<14))
			}
		})
		mustRun(t, s)
		return s.Clock()
	}
	hot := run(0)   // same word every time
	cold := run(16) // new line every access
	if cold < hot+2000*DefaultCosts().MissPenalty/2 {
		t.Fatalf("cache model ineffective: hot=%d cold=%d", hot, cold)
	}
}

func TestStartAndExitHooksRunInOrder(t *testing.T) {
	s := New(testConfig())
	var events []string
	s.OnThreadStart(func(th *Thread) { events = append(events, "start") })
	s.OnThreadExit(func(th *Thread) { events = append(events, "exit") })
	s.Spawn("w", func(th *Thread) { events = append(events, "body") })
	mustRun(t, s)
	want := []string{"start", "body", "exit"}
	if len(events) != 3 || events[0] != want[0] || events[1] != want[1] || events[2] != want[2] {
		t.Fatalf("hook order: %v", events)
	}
}

func TestOnClockAdvanceHook(t *testing.T) {
	// The hook fires on every high-water advance with monotonically
	// increasing times, ending at the final clock — and installing a
	// read-only hook must not move any virtual result.
	cfg := testConfig()
	body := func(s *Sim) {
		for i := 0; i < 3; i++ {
			s.Spawn("w", func(th *Thread) {
				for j := 0; j < 50; j++ {
					th.Work(777)
					th.Yield()
				}
			})
		}
	}

	bare := New(cfg)
	body(bare)
	mustRun(t, bare)

	hooked := New(cfg)
	body(hooked)
	var seen []int64
	hooked.OnClockAdvance(func(now int64) { seen = append(seen, now) })
	mustRun(t, hooked)

	if len(seen) == 0 {
		t.Fatal("hook never fired")
	}
	last := int64(0)
	for i, now := range seen {
		if now <= last {
			t.Fatalf("hook time %d at index %d not above previous %d", now, i, last)
		}
		last = now
	}
	if last != hooked.Clock() {
		t.Errorf("final hook time %d != final clock %d", last, hooked.Clock())
	}
	if hooked.Clock() != bare.Clock() {
		t.Errorf("hook changed the schedule: clock %d != %d", hooked.Clock(), bare.Clock())
	}
}
