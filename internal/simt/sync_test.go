package simt

import (
	"testing"
	"testing/quick"
)

func TestMutexMutualExclusion(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 4
	s := New(cfg)
	m := s.NewMutex("counter")
	inside := 0
	violations := 0
	counter := 0
	for i := 0; i < 8; i++ {
		s.Spawn("w", func(th *Thread) {
			for j := 0; j < 50; j++ {
				m.Lock(th)
				inside++
				if inside != 1 {
					violations++
				}
				th.Work(100)
				counter++
				inside--
				m.Unlock(th)
				th.Work(50)
			}
		})
	}
	mustRun(t, s)
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	if counter != 400 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestMutexTryLock(t *testing.T) {
	s := New(testConfig())
	m := s.NewMutex("try")
	s.Spawn("t", func(th *Thread) {
		if !m.TryLock(th) {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock(th) {
			t.Error("TryLock on held mutex succeeded")
		}
		m.Unlock(th)
		if !m.TryLock(th) {
			t.Error("TryLock after unlock failed")
		}
		m.Unlock(th)
	})
	mustRun(t, s)
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s := New(testConfig())
	m := s.NewMutex("owner")
	holder := make(chan struct{}) // host-level: only to sequence spawns
	_ = holder
	s.Spawn("a", func(th *Thread) {
		m.Lock(th)
		th.Work(10_000)
		m.Unlock(th)
	})
	s.Spawn("b", func(th *Thread) {
		th.Work(100)
		defer func() {
			if recover() == nil {
				t.Error("unlock by non-owner did not panic")
			}
		}()
		m.Unlock(th)
	})
	// The panic in b surfaces as a ThreadPanic only if not recovered;
	// we recover inside, so the run can still fail if a was blocked.
	_ = s.Run()
}

func TestWaitQueueFIFO(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 1
	s := New(cfg)
	q := s.NewWaitQueue("fifo")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("waiter", func(th *Thread) {
			th.Work(int64(i+1) * 1000) // stagger arrival
			q.Wait(th)
			order = append(order, i)
		})
	}
	s.Spawn("waker", func(th *Thread) {
		th.Work(50_000)
		for q.Len() > 0 {
			q.WakeOne(th)
			th.Work(10_000)
		}
	})
	mustRun(t, s)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order: %v", order)
	}
}

func TestWakeAll(t *testing.T) {
	s := New(testConfig())
	q := s.NewWaitQueue("all")
	done := 0
	for i := 0; i < 5; i++ {
		s.Spawn("waiter", func(th *Thread) {
			q.Wait(th)
			done++
		})
	}
	s.Spawn("waker", func(th *Thread) {
		th.Work(50_000)
		if n := q.WakeAll(th); n != 5 {
			t.Errorf("WakeAll woke %d", n)
		}
	})
	mustRun(t, s)
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
}

func TestBarrierAlignsThreads(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 4
	s := New(cfg)
	b := s.NewBarrier("start", 4)
	var after []int64
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn("w", func(th *Thread) {
			th.Work(int64(i) * 100_000) // very uneven arrival
			b.Await(th)
			after = append(after, th.Now())
		})
	}
	mustRun(t, s)
	min, max := after[0], after[0]
	for _, v := range after[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min > 100_000 {
		t.Fatalf("barrier did not align threads: spread %d", max-min)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 2
	s := New(cfg)
	b := s.NewBarrier("gen", 2)
	counts := [2]int{}
	for i := 0; i < 2; i++ {
		s.Spawn("w", func(th *Thread) {
			for g := 0; g < 2; g++ {
				b.Await(th)
				counts[g]++
			}
		})
	}
	mustRun(t, s)
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("generation counts: %v", counts)
	}
}

// TestQuickMutexNeverCorrupts property-checks mutual exclusion over
// random thread counts, hold times and seeds, including chaos mode.
func TestQuickMutexNeverCorrupts(t *testing.T) {
	f := func(seed int64, nRaw, holdRaw uint8, chaos bool) bool {
		n := int(nRaw)%6 + 2
		hold := int64(holdRaw)%500 + 1
		cfg := testConfig()
		cfg.Cores = 3
		cfg.Seed = seed
		cfg.Chaos = chaos
		s := New(cfg)
		m := s.NewMutex("q")
		inside, bad, total := 0, 0, 0
		for i := 0; i < n; i++ {
			s.Spawn("w", func(th *Thread) {
				for j := 0; j < 20; j++ {
					m.Lock(th)
					inside++
					if inside != 1 {
						bad++
					}
					th.Work(hold)
					inside--
					total++
					m.Unlock(th)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Log(err)
			return false
		}
		return bad == 0 && total == n*20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHandshakeScanBarrier: the owner arms the handshake, signals its
// expectations, and Await releases only after every party acked —
// while still answering its own interrupts (Await spins through
// safepoints).  This is the collect's scan barrier extracted.
func TestHandshakeScanBarrier(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 4
	s := New(cfg)
	hs := s.NewHandshake("test")
	const parties = 3
	released := false
	acked := 0
	go1 := false
	for i := 0; i < parties; i++ {
		s.Spawn("party", func(th *Thread) {
			for !go1 {
				th.Pause()
			}
			th.Work(int64(500 * (th.ID() + 1))) // stagger the acks
			acked++
			hs.Ack(th)
		})
	}
	s.Spawn("owner", func(th *Thread) {
		hs.Arm()
		hs.Expect(parties)
		if hs.Outstanding() != parties || hs.Need() != parties {
			t.Errorf("armed handshake: need %d outstanding %d", hs.Need(), hs.Outstanding())
		}
		go1 = true
		hs.Await(th)
		released = true
		if acked != parties {
			t.Errorf("owner released after %d of %d acks", acked, parties)
		}
		if hs.Outstanding() != 0 {
			t.Errorf("outstanding %d after release", hs.Outstanding())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !released {
		t.Fatal("owner never released")
	}
	// Re-arming resets the generation.
	hs.Arm()
	if hs.Need() != 0 || hs.Outstanding() != 0 {
		t.Fatalf("re-armed handshake not empty: need %d", hs.Need())
	}
}
