package simt

// Signal delivery — the substrate ThreadScan is built on (paper §4.2,
// "Signaling").  Semantics mirror POSIX:
//
//   - A signal to a *running* thread is handled at its next safepoint
//     (the OS interrupts between instructions).
//   - A signal to a thread blocked in an interruptible wait (Sleep,
//     WaitQueue.Wait, Mutex.Lock) wakes it; the handler runs and the
//     wait either resumes or reports interruption (EINTR).
//   - A signal to a *descheduled* thread (oversubscription) is handled
//     when the thread is next dispatched — this queueing delay is the
//     mechanism behind the paper's Figure 4 overheads.
//   - Handlers run in the context of the receiving thread.  Delivery of
//     further signals is masked while a handler runs; pending signals
//     are delivered when it returns.

// Signal sends sig to target.  It must be called from the sending
// thread's own context.  Sending to an exited thread is a no-op that
// reports false.
func (t *Thread) Signal(target *Thread, sig SigNum) bool {
	if sig < 0 || sig >= MaxSignals {
		panic("simt: signal number out of range")
	}
	s := t.sim
	t.charge(s.cfg.Costs.SignalSend)
	if target.exited {
		return false
	}
	s.stats.SignalsSent++
	if p := s.probe; p != nil {
		p.SignalSent(t, target)
	}
	target.sigPending |= 1 << uint(sig)
	if target == t {
		// Self-signal: handled at the sender's next safepoint.
		return true
	}
	wake := t.now + s.cfg.Costs.WakeLatency
	switch {
	case target.waitQ != nil:
		// Blocked in an interruptible wait: wake it to run the handler.
		target.waitQ.remove(target)
		target.waitQ = nil
		target.interrupted = true
		target.runnable = true
		target.readyAt = maxI64(target.now, wake)
		s.stats.Wakeups++
	case target.sleeping:
		// Sleeping: cut the sleep short (EINTR).
		target.interrupted = true
		if wake < target.readyAt {
			target.readyAt = maxI64(target.now, wake)
		}
	}
	// Runnable or running: the pending bit is observed at the target's
	// next safepoint, after it gets (or keeps) a core.
	return true
}

// deliverSignals runs handlers for every pending signal, lowest number
// first.  Called only from safepoints with sigDepth == 0.
func (t *Thread) deliverSignals() {
	for sig := SigNum(0); sig < MaxSignals; sig++ {
		bit := uint32(1) << uint(sig)
		if t.sigPending&bit == 0 {
			continue
		}
		t.sigPending &^= bit
		h := t.sim.handlers[sig]
		t.sim.stats.SignalsDelivered++
		t.sigDepth++
		t.charge(t.sim.cfg.Costs.SignalDeliver)
		if h != nil {
			h(t, sig)
		}
		t.sigDepth--
	}
}

// InHandler reports whether the thread is currently executing a signal
// handler.
func (t *Thread) InHandler() bool { return t.sigDepth > 0 }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
