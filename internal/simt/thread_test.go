package simt

import (
	"errors"
	"testing"
)

// inThread runs body inside a one-thread simulation and fails the test
// on simulation error.
func inThread(t *testing.T, body func(th *Thread)) *Sim {
	t.Helper()
	s := New(testConfig())
	s.Spawn("t", body)
	mustRun(t, s)
	return s
}

func TestRegisterFile(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.SetReg(0, 123)
		th.SetReg(15, 456)
		if th.Reg(0) != 123 || th.Reg(15) != 456 {
			t.Error("register round trip failed")
		}
		th.CopyReg(1, 0)
		if th.Reg(1) != 123 {
			t.Error("CopyReg failed")
		}
	})
}

func TestRegisterBounds(t *testing.T) {
	inThread(t, func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range register access did not panic")
			}
		}()
		th.SetReg(NumRegs, 1)
	})
}

func TestLoadStoreThroughRegisters(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.Alloc(0, 64)
		th.SetReg(1, 777)
		th.Store(0, 2, 1)
		th.Load(2, 0, 2)
		if th.Reg(2) != 777 {
			t.Errorf("load got %d", th.Reg(2))
		}
		th.StoreImm(0, 3, 42)
		th.Load(3, 0, 3)
		if th.Reg(3) != 42 {
			t.Errorf("imm load got %d", th.Reg(3))
		}
	})
}

func TestCASThroughRegisters(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.Alloc(0, 8)
		th.StoreImm(0, 0, 5)
		th.SetReg(1, 5)
		th.SetReg(2, 9)
		if !th.CAS(0, 0, 1, 2) {
			t.Error("CAS should succeed")
		}
		if th.CAS(0, 0, 1, 2) {
			t.Error("CAS should fail the second time")
		}
		th.Load(3, 0, 0)
		if th.Reg(3) != 9 {
			t.Errorf("after CAS: %d", th.Reg(3))
		}
	})
}

func TestStackFrames(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.PushFrame(4)
		th.SetSlot(0, 10)
		th.SetSlot(3, 13)
		th.PushFrame(2)
		th.SetSlot(0, 99)
		if th.Slot(0) != 99 {
			t.Error("inner frame slot wrong")
		}
		th.PopFrame()
		if th.Slot(0) != 10 || th.Slot(3) != 13 {
			t.Error("outer frame clobbered")
		}
		th.PopFrame()
		if th.StackDepth() != 0 {
			t.Errorf("stack not empty: %d", th.StackDepth())
		}
	})
}

func TestStackOverflowPanics(t *testing.T) {
	inThread(t, func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("stack overflow did not panic")
			}
		}()
		for {
			th.PushFrame(64)
		}
	})
}

func TestFrameSlotsZeroed(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.PushFrame(3)
		th.SetSlot(1, 55)
		th.PopFrame()
		th.PushFrame(3)
		if th.Slot(1) != 0 {
			t.Error("recycled frame slot not zeroed")
		}
		th.PopFrame()
	})
}

func TestScanRootsSeesRegistersAndStack(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.SetReg(4, 0xAAAA0)
		th.PushFrame(2)
		th.SetSlot(1, 0xBBBB0)
		found := map[uint64]bool{}
		th.ScanRoots(func(w uint64) { found[w] = true })
		if !found[0xAAAA0] || !found[0xBBBB0] {
			t.Errorf("scan missed roots: %v", found)
		}
		if th.RootWords() != NumRegs+2 {
			t.Errorf("RootWords = %d", th.RootWords())
		}
		th.PopFrame()
	})
}

func TestScanDoesNotSeePoppedFrame(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.PushFrame(1)
		th.SetSlot(0, 0xCCCC0)
		th.PopFrame()
		th.PushFrame(1) // zeroed
		seen := false
		th.ScanRoots(func(w uint64) {
			if w == 0xCCCC0 {
				seen = true
			}
		})
		if seen {
			t.Error("scan saw a dead stack slot")
		}
		th.PopFrame()
	})
}

func TestLoadResultNeverInFlight(t *testing.T) {
	// A handler delivered during a Load must either see the old register
	// value or the loaded value — the address being loaded *from* is in
	// a register, so the node stays protected throughout.  This is the
	// register-discipline property Lemma 1's proof leans on.
	cfg := testConfig()
	s := New(cfg)
	var observed []uint64
	s.SetSignalHandler(0, func(th *Thread) {
		th.ScanRoots(func(w uint64) {
			if w != 0 {
				observed = append(observed, w)
			}
		})
	})
	var nodeAddr uint64
	target := s.Spawn("reader", func(th *Thread) {
		th.Alloc(0, 16)
		nodeAddr = th.Reg(0)
		th.StoreImm(0, 0, 0)
		for i := 0; i < 30_000; i++ { // long enough to span many quanta
			th.Load(1, 0, 0)
		}
	})
	s.Spawn("signaler", func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.Work(1_000)
			th.Signal(target, 0)
		}
	})
	mustRun(t, s)
	// Every observation that is an address must be the node address —
	// at every interruption point the register file held it.
	sawNode := false
	for _, w := range observed {
		if w == nodeAddr {
			sawNode = true
		}
	}
	if !sawNode {
		t.Fatal("handler never observed the node address in the register file")
	}
}

func TestWorkChargesExactly(t *testing.T) {
	inThread(t, func(th *Thread) {
		before := th.Cycles()
		th.Work(12345)
		if got := th.Cycles() - before; got != 12345 {
			t.Errorf("Work charged %d, want 12345", got)
		}
	})
}

func TestAllocFreeViaThread(t *testing.T) {
	s := inThread(t, func(th *Thread) {
		th.Alloc(0, 172)
		th.StoreImm(0, 0, 1)
		th.FreeAddr(th.Reg(0))
	})
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

func TestLoadAddrStoreAddr(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.Alloc(0, 32)
		addr := th.Reg(0)
		th.StoreAddr(addr+8, 31)
		if got := th.LoadAddr(addr + 8); got != 31 {
			t.Errorf("LoadAddr got %d", got)
		}
	})
}

func TestOpsCounter(t *testing.T) {
	inThread(t, func(th *Thread) {
		th.AddOps(3)
		th.AddOps(4)
		if th.Ops() != 7 {
			t.Errorf("ops = %d", th.Ops())
		}
	})
}

func TestHeapViolationIdentifiesThread(t *testing.T) {
	s := New(testConfig())
	s.Spawn("good", func(th *Thread) { th.Work(100) })
	s.Spawn("bad", func(th *Thread) {
		th.SetReg(0, 0)
		th.Load(1, 0, 0) // nil deref
	})
	err := s.Run()
	var tp *ThreadPanic
	if !errors.As(err, &tp) {
		t.Fatalf("want ThreadPanic, got %v", err)
	}
	if tp.Name != "bad" {
		t.Fatalf("blamed wrong thread: %s", tp.Name)
	}
}
