package simt

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"

	"threadscan/internal/simmem"
)

// Thread is one simulated thread: a register file, a word-array stack,
// a virtual clock, and a thread-cached view of the simulated heap.
//
// The register/stack discipline is the heart of the reproduction.  Every
// heap address a thread may dereference must live in a register or a
// stack slot at every safepoint; the memory primitives enforce this by
// construction, because they read addresses from and deliver results to
// registers.  ThreadScan's TS-Scan walks exactly these words.
//
// All methods must be called from the thread's own body/handler (they
// are not host-concurrency-safe; the scheduler serializes threads).
type Thread struct {
	sim  *Sim
	id   int
	name string
	body func(*Thread)

	regs   [NumRegs]uint64
	stack  []uint64
	sp     int
	frames []int

	cache *simmem.Cache
	rng   *rand.Rand

	// Virtual time.
	now        int64
	quantumEnd int64
	readyAt    int64
	wakeAt     int64
	core       int
	pinned     int // NUMA node affinity; -1 = any core

	// Scheduling state (owned by the scheduler and the single active
	// party; no synchronization needed).
	resume      chan quantum
	reason      yieldReason
	runnable    bool
	exited      bool
	released    bool
	waitQ       *WaitQueue
	sleeping    bool
	interrupted bool
	panicVal    any
	panicStack  string

	// Signals.
	sigPending uint32
	sigDepth   int

	// Accounting.
	cycles        int64
	handlerCycles int64
	waitCycles    int64
	ops           uint64 // free-form operation counter for workloads
}

// ID returns the thread's dense index (0..n-1), assigned in spawn
// order.  Reclamation schemes index their per-thread state with it.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's spawn name.
func (t *Thread) Name() string { return t.name }

// Sim returns the owning simulation.
func (t *Thread) Sim() *Sim { return t.sim }

// Now returns the thread's current virtual time in cycles.
func (t *Thread) Now() int64 { return t.now }

// Core returns the virtual core the thread was last dispatched on.
func (t *Thread) Core() int { return t.core }

// RNG returns the thread's deterministic random source.
func (t *Thread) RNG() *rand.Rand { return t.rng }

// MemCache returns the thread's heap allocation cache.
func (t *Thread) MemCache() *simmem.Cache { return t.cache }

// Cycles returns total virtual cycles consumed by this thread.
func (t *Thread) Cycles() int64 { return t.cycles }

// HandlerCycles returns virtual cycles consumed inside signal handlers.
func (t *Thread) HandlerCycles() int64 { return t.handlerCycles }

// WaitCycles returns cycles burned in Pause spin-waits.
func (t *Thread) WaitCycles() int64 { return t.waitCycles }

// Exited reports whether the thread's body has returned.
func (t *Thread) Exited() bool { return t.exited }

// AddOps adds to the thread's free-form operation counter.
func (t *Thread) AddOps(n uint64) { t.ops += n }

// Ops returns the free-form operation counter.
func (t *Thread) Ops() uint64 { return t.ops }

// main is the goroutine body: wait for the first dispatch, run hooks
// and the thread body, and report exit (or panic) to the scheduler.
func (t *Thread) main() {
	q, ok := <-t.resume
	if !ok {
		return
	}
	t.begin(q)
	defer func() {
		if r := recover(); r != nil {
			t.panicVal = r
			t.panicStack = string(debug.Stack())
			t.reason = yPanic
			t.sim.yieldCh <- t
		}
	}()
	// The thread cache binds to the thread's node at first dispatch
	// (the pinned node when pinned): under per-node pools its refills
	// draw from — and its frees return to — that node's share of the
	// arena.  On the flat machine this is node 0, exactly the old
	// unbound cache.
	t.cache = t.sim.heap.NewCacheOn(t.Node())
	for _, h := range t.sim.startHooks {
		h(t)
	}
	t.body(t)
	// The body has returned: its machine state is dead.  Clear the
	// register file and stack so exit hooks (which may trigger a final
	// scan) do not see stale references pinning nodes.
	t.regs = [NumRegs]uint64{}
	t.sp = 0
	t.frames = t.frames[:0]
	for _, h := range t.sim.exitHooks {
		h(t)
	}
	t.cache.Flush()
	t.reason = yExit
	t.sim.yieldCh <- t
}

func (t *Thread) begin(q quantum) {
	if q.start > t.now {
		t.now = q.start
	}
	t.quantumEnd = q.end
}

// yieldCore hands the core back to the scheduler and blocks until the
// next dispatch.  If the simulation was aborted, the goroutine exits.
func (t *Thread) yieldCore(reason yieldReason) {
	t.reason = reason
	t.sim.yieldCh <- t
	q, ok := <-t.resume
	if !ok {
		runtime.Goexit()
	}
	t.begin(q)
}

// charge advances the thread's virtual clock by cost cycles, routing
// the cycles to handler accounting when inside a signal handler.
func (t *Thread) charge(cost int64) {
	t.now += cost
	t.cycles += cost
	if t.sigDepth > 0 {
		t.handlerCycles += cost
	}
}

// Charge lets library code (reclamation schemes) account virtual work
// that has no dedicated primitive, e.g. per-word scan costs.
func (t *Thread) Charge(cost int64) { t.charge(cost) }

// safepoint is an instruction boundary: pending signals are delivered
// here, and the quantum is surrendered here when expired.  Between two
// safepoints a thread runs "atomically" with respect to the simulation.
func (t *Thread) safepoint() {
	for {
		if t.sigPending != 0 && t.sigDepth == 0 {
			t.deliverSignals()
			continue
		}
		if t.now >= t.quantumEnd {
			t.yieldCore(yQuantum)
			continue
		}
		return
	}
}

// Safepoint exposes an explicit instruction boundary, for library spin
// loops that otherwise execute no memory primitive.
func (t *Thread) Safepoint() { t.safepoint() }

// ---------------------------------------------------------------------
// Register file.

func (t *Thread) checkReg(r int) {
	if r < 0 || r >= NumRegs {
		panic(fmt.Sprintf("simt: register %d out of range", r))
	}
}

// Reg returns the value of register r.
func (t *Thread) Reg(r int) uint64 {
	t.checkReg(r)
	return t.regs[r]
}

// SetReg writes v to register r.  A register write is a pure
// register-file operation (no safepoint): values move in and out of
// registers atomically with respect to signal delivery, exactly as on
// real hardware where the handler sees the interrupted register state.
func (t *Thread) SetReg(r int, v uint64) {
	t.checkReg(r)
	t.charge(t.sim.cfg.Costs.RegOp)
	t.regs[r] = v
}

// CopyReg copies register src to dst.
func (t *Thread) CopyReg(dst, src int) { t.SetReg(dst, t.Reg(src)) }

// ---------------------------------------------------------------------
// Simulated stack.

// PushFrame reserves n zeroed stack slots and makes them the current
// frame.  Frames model the paper's stack-resident private references
// (e.g. a skip list's predecessor array).
func (t *Thread) PushFrame(n int) {
	if t.sp+n > len(t.stack) {
		panic(fmt.Sprintf("simt: thread %d stack overflow (%d + %d > %d)", t.id, t.sp, n, len(t.stack)))
	}
	t.charge(int64(n) * t.sim.cfg.Costs.RegOp)
	t.frames = append(t.frames, t.sp)
	for i := t.sp; i < t.sp+n; i++ {
		t.stack[i] = 0
	}
	t.sp += n
}

// PopFrame releases the current frame.
func (t *Thread) PopFrame() {
	if len(t.frames) == 0 {
		panic("simt: PopFrame with no frame")
	}
	base := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	t.sp = base
	t.charge(t.sim.cfg.Costs.RegOp)
}

func (t *Thread) slotIndex(i int) int {
	if len(t.frames) == 0 {
		panic("simt: stack slot access with no frame")
	}
	base := t.frames[len(t.frames)-1]
	idx := base + i
	if i < 0 || idx >= t.sp {
		panic(fmt.Sprintf("simt: stack slot %d out of frame", i))
	}
	return idx
}

// Slot returns slot i of the current frame.
func (t *Thread) Slot(i int) uint64 { return t.stack[t.slotIndex(i)] }

// SetSlot writes v to slot i of the current frame.
func (t *Thread) SetSlot(i int, v uint64) {
	t.charge(t.sim.cfg.Costs.RegOp)
	t.stack[t.slotIndex(i)] = v
}

// StackDepth returns the number of live stack words.
func (t *Thread) StackDepth() int { return t.sp }

// ScanRoots calls f for every word currently visible in the thread's
// register file and used stack — the root set a TS-Scan walks.  The
// caller accounts scan cost; ScanRoots itself charges nothing.
func (t *Thread) ScanRoots(f func(word uint64)) {
	for i := range t.regs {
		f(t.regs[i])
	}
	for i := 0; i < t.sp; i++ {
		f(t.stack[i])
	}
}

// RootWords returns the number of words ScanRoots will visit.
func (t *Thread) RootWords() int { return NumRegs + t.sp }

// ---------------------------------------------------------------------
// Memory primitives.  Addresses come from registers, results go to
// registers; a handler can therefore never observe an "in flight"
// reference that is in neither (paper Assumption 1.3).

// memCost returns the cost of an access to addr, consulting the
// per-core cache model when enabled and the NUMA topology when the
// machine has more than one node.  An access that must reach memory —
// a modeled cache miss, or any access when the cache model is off —
// is a line fill; a fill whose home node differs from the accessing
// core's node additionally pays Costs.RemoteFill (the interconnect
// hop) and counts in SimStats.RemoteLineFills.
func (t *Thread) memCost(base int64, addr uint64) int64 {
	fill := true
	if t.sim.caches != nil {
		fill = !t.sim.caches[t.core].access(addr)
		if fill {
			base += t.sim.cfg.Costs.MissPenalty
		}
	}
	if fill && t.sim.topo.nodes > 1 {
		node := t.Node()
		if t.sim.homeOf(addr, node) != node {
			t.sim.stats.RemoteLineFills++
			if p := t.sim.probe; p != nil {
				p.RemoteLineFill(t)
			}
			base += t.sim.cfg.Costs.RemoteFill
			// The fill migrates ownership to the accessor's socket
			// (see topology.go): subsequent accesses from this node
			// are local until the other node pulls the line back.
			t.sim.setHome(addr, 1, node)
		} else {
			t.sim.stats.LocalLineFills++
		}
	}
	return base
}

// Touch models a memory access to addr that carries no instruction
// cost of its own: it runs the same cache and topology accounting as
// Load — miss penalty, remote fill, ownership migration — and charges
// only those components.  Library code uses it for operations whose
// instruction cost is charged flat but which still move cache lines,
// e.g. the collect pipeline's sweep poisoning a freed block.
func (t *Thread) Touch(addr uint64) {
	if c := t.memCost(0, addr); c > 0 {
		t.charge(c)
	}
}

// Load loads the word at regs[addrReg] + offWords*8 into regs[dst].
func (t *Thread) Load(dst, addrReg int, offWords int) {
	addr := t.Reg(addrReg) + uint64(offWords)*simmem.WordSize
	t.charge(t.memCost(t.sim.cfg.Costs.Load, addr))
	t.safepoint()
	v := t.sim.heap.Load(addr)
	t.checkReg(dst)
	t.regs[dst] = v
}

// Store writes regs[srcReg] to the word at regs[addrReg] + offWords*8.
func (t *Thread) Store(addrReg int, offWords int, srcReg int) {
	t.storeVal(addrReg, offWords, t.Reg(srcReg))
}

// StoreImm writes the immediate val to regs[addrReg] + offWords*8.
// Used for scalar fields (keys, flags) that are not references.
func (t *Thread) StoreImm(addrReg int, offWords int, val uint64) {
	t.storeVal(addrReg, offWords, val)
}

func (t *Thread) storeVal(addrReg int, offWords int, val uint64) {
	addr := t.Reg(addrReg) + uint64(offWords)*simmem.WordSize
	t.charge(t.memCost(t.sim.cfg.Costs.Store, addr))
	t.safepoint()
	t.sim.heap.Store(addr, val)
}

// CAS compares-and-swaps the word at regs[addrReg] + offWords*8 from
// regs[oldReg] to regs[newReg], reporting success.
func (t *Thread) CAS(addrReg int, offWords int, oldReg, newReg int) bool {
	addr := t.Reg(addrReg) + uint64(offWords)*simmem.WordSize
	t.charge(t.memCost(t.sim.cfg.Costs.CAS, addr))
	t.safepoint()
	return t.sim.heap.CompareAndSwap(addr, t.Reg(oldReg), t.Reg(newReg))
}

// CASImm is CAS with immediate old/new values taken from registers by
// value; used by lock words where old/new are constants.
func (t *Thread) CASImm(addrReg int, offWords int, old, new uint64) bool {
	addr := t.Reg(addrReg) + uint64(offWords)*simmem.WordSize
	t.charge(t.memCost(t.sim.cfg.Costs.CAS, addr))
	t.safepoint()
	return t.sim.heap.CompareAndSwap(addr, old, new)
}

// Fence models a full memory barrier (mfence).  Hazard-pointer
// publication pays this on every traversal step — the cost the paper's
// §6 identifies as HP's scalability limit.
func (t *Thread) Fence() {
	t.charge(t.sim.cfg.Costs.Fence)
	t.safepoint()
}

// Alloc allocates size bytes and places the block address in regs[dst].
// Under a multi-node topology the fresh block's lines are homed on the
// allocating thread's node (first-touch placement).  A block *resident*
// on another node — its page was carved for a different node, the way a
// global pool recycles one socket's memory into another socket's malloc
// — counts in the heap's RemoteAllocs; when the heap has per-node pools
// it additionally counts in SimStats.AllocRemoteFills and pays
// Costs.RemoteFill for the cross-socket pull.  The global-policy cost
// model is left untouched so its captured baselines stay bit-identical.
func (t *Thread) Alloc(dst int, size int) {
	start := t.now
	remote := false
	t.charge(t.sim.cfg.Costs.Alloc + int64(size/simmem.WordSize))
	t.safepoint()
	addr := t.cache.Alloc(size)
	if t.sim.topo.nodes > 1 {
		if t.sim.heap.Pools() > 1 && t.sim.heap.ResidentNode(addr) != t.cache.Node() {
			t.sim.stats.AllocRemoteFills++
			remote = true
			t.charge(t.sim.cfg.Costs.RemoteFill)
		}
		t.sim.setHome(addr, size, t.Node())
	}
	t.checkReg(dst)
	t.regs[dst] = addr
	if p := t.sim.probe; p != nil {
		p.Alloc(t, t.now-start, remote)
	}
}

// FreeAddr returns the block at addr to the heap.  This is the
// *allocator* free used inside reclamation schemes once a node is
// proven unreachable; application code calls the scheme's Retire
// instead.  Under per-node pools the block routes to its home node;
// cross-node frees stage in the thread cache and flush to the home
// pool's remote-free inbox a batch at a time, charging Costs.RemoteFill
// once per flushed batch (TCMalloc's transfer-cache amortization).
func (t *Thread) FreeAddr(addr uint64) {
	start := t.now
	t.charge(t.sim.cfg.Costs.Free)
	t.safepoint()
	flushed := t.cache.Free(addr)
	if flushed {
		t.charge(t.sim.cfg.Costs.RemoteFill)
	}
	if p := t.sim.probe; p != nil {
		p.Free(t, t.now-start, flushed)
	}
}

// LoadAddr reads a heap word by absolute address, for library-internal
// structures (delete buffers, registered heap blocks).  Application
// data-structure code must use Load so references stay in registers.
func (t *Thread) LoadAddr(addr uint64) uint64 {
	t.charge(t.memCost(t.sim.cfg.Costs.Load, addr))
	t.safepoint()
	return t.sim.heap.Load(addr)
}

// StoreAddr writes a heap word by absolute address (library-internal).
func (t *Thread) StoreAddr(addr uint64, val uint64) {
	t.charge(t.memCost(t.sim.cfg.Costs.Store, addr))
	t.safepoint()
	t.sim.heap.Store(addr, val)
}

// ---------------------------------------------------------------------
// Control.

// Step charges one generic instruction and passes a safepoint.
func (t *Thread) Step() {
	t.charge(t.sim.cfg.Costs.Step)
	t.safepoint()
}

// Work burns cycles of simulated computation, passing safepoints every
// chunk so signals stay responsive (an application busy-loop cannot
// block the protocol — paper §1.2).
func (t *Thread) Work(cycles int64) {
	const chunk = 200
	for cycles > 0 {
		c := int64(chunk)
		if c > cycles {
			c = cycles
		}
		t.charge(c)
		cycles -= c
		t.safepoint()
	}
}

// Pause is one spin-wait iteration (the x86 PAUSE idiom): it charges
// the pause cost into wait accounting and passes a safepoint.
func (t *Thread) Pause() {
	t.charge(t.sim.cfg.Costs.Pause)
	t.waitCycles += t.sim.cfg.Costs.Pause
	t.safepoint()
}

// Yield surrenders the rest of the quantum voluntarily.
func (t *Thread) Yield() {
	t.yieldCore(yYield)
	t.safepoint()
}

// Sleep blocks for the given virtual duration.  It returns true if the
// sleep was interrupted by a signal (EINTR semantics): the handler has
// already run when Sleep returns.
func (t *Thread) Sleep(cycles int64) (interrupted bool) {
	t.sleeping = true
	t.interrupted = false
	t.wakeAt = t.now + cycles
	t.yieldCore(ySleep)
	t.sleeping = false
	intr := t.interrupted
	t.interrupted = false
	t.safepoint()
	return intr
}
