package simt

import (
	"testing"

	"threadscan/internal/simmem"
)

// The machine topology: core grouping, thread pinning, first-touch
// line homes, remote-fill charging with ownership migration, and the
// Nodes=1 flat-machine guarantee.

func numaConfig(cores, nodes int) Config {
	return Config{
		Cores:   cores,
		Nodes:   nodes,
		Quantum: 10_000,
		Seed:    1,
		Heap:    simmem.Config{Words: 1 << 14, Check: true, Poison: true},
	}
}

func TestTopologyCorePartition(t *testing.T) {
	for _, tc := range []struct{ cores, nodes int }{
		{4, 1}, {4, 2}, {8, 2}, {8, 3}, {5, 2}, {7, 3}, {6, 4}, {3, 8},
	} {
		s := New(numaConfig(tc.cores, tc.nodes))
		wantNodes := tc.nodes
		if wantNodes > tc.cores {
			wantNodes = tc.cores // clamped
		}
		if s.Nodes() != wantNodes {
			t.Fatalf("cores=%d nodes=%d: Nodes()=%d, want %d",
				tc.cores, tc.nodes, s.Nodes(), wantNodes)
		}
		covered := 0
		prevHi := 0
		for n := 0; n < s.Nodes(); n++ {
			lo, hi := s.NodeCores(n)
			if lo != prevHi {
				t.Fatalf("cores=%d nodes=%d: node %d starts at %d, want %d (contiguous)",
					tc.cores, tc.nodes, n, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("cores=%d nodes=%d: node %d is empty", tc.cores, tc.nodes, n)
			}
			for c := lo; c < hi; c++ {
				if s.NodeOfCore(c) != n {
					t.Fatalf("cores=%d nodes=%d: NodeOfCore(%d)=%d, want %d",
						tc.cores, tc.nodes, c, s.NodeOfCore(c), n)
				}
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.cores {
			t.Fatalf("cores=%d nodes=%d: partition covers %d cores", tc.cores, tc.nodes, covered)
		}
	}
}

func TestPinRestrictsDispatch(t *testing.T) {
	s := New(numaConfig(4, 2))
	bad := -1
	for n := 0; n < 2; n++ {
		n := n
		th := s.Spawn("pinned", func(th *Thread) {
			lo, hi := th.Sim().NodeCores(n)
			for i := 0; i < 50; i++ {
				th.Work(5_000) // crosses quanta, forcing re-dispatches
				if th.Core() < lo || th.Core() >= hi {
					bad = th.Core()
				}
				if th.Node() != n {
					t.Errorf("pinned thread reports node %d, want %d", th.Node(), n)
				}
			}
		})
		th.Pin(n)
		if th.Pinned() != n {
			t.Fatalf("Pinned()=%d after Pin(%d)", th.Pinned(), n)
		}
	}
	mustRun(t, s)
	if bad >= 0 {
		t.Fatalf("pinned thread dispatched on core %d outside its node", bad)
	}
}

func TestSpawnFromInheritsPin(t *testing.T) {
	s := New(numaConfig(4, 2))
	var childPin, grandPin int
	parent := s.Spawn("parent", func(th *Thread) {
		th.Work(2_000)
		child := s.SpawnFrom(th, "child", func(c *Thread) {
			childPin = c.Pinned()
			c.Work(2_000)
			grand := s.SpawnFrom(c, "grand", func(g *Thread) { g.Work(500) })
			grandPin = grand.Pinned()
		})
		if child.Pinned() != 1 {
			t.Errorf("child pinned to %d at spawn, want 1", child.Pinned())
		}
		th.Work(30_000) // outlive the descendants
	})
	parent.Pin(1)
	mustRun(t, s)
	if childPin != 1 || grandPin != 1 {
		t.Fatalf("pin inheritance: child %d grand %d, want 1 1", childPin, grandPin)
	}
}

// TestRemoteFillChargedAndMigrates: a line allocated on node 0 costs
// extra when node 1 fills it, ownership migrates with the fill, and
// the same access pattern on a flat machine charges nothing extra.
func TestRemoteFillChargedAndMigrates(t *testing.T) {
	run := func(nodes, readerNode int) (clock int64, st SimStats, home int) {
		s := New(numaConfig(4, nodes))
		var addr uint64
		alloc := s.Spawn("alloc", func(th *Thread) {
			th.Alloc(1, 64)
			addr = th.Reg(1)
			th.SetReg(1, 0)
		})
		alloc.Pin(0)
		reader := s.Spawn("reader", func(th *Thread) {
			th.Work(20_000) // let the allocator run first
			for i := 0; i < 10; i++ {
				th.LoadAddr(addr)
			}
		})
		if nodes > 1 {
			reader.Pin(readerNode)
		}
		mustRun(t, s)
		return s.Clock(), s.Stats(), s.LineHome(addr)
	}

	_, flatStats, _ := run(1, 0)
	if flatStats.RemoteLineFills != 0 || flatStats.LocalLineFills != 0 {
		t.Fatalf("flat machine counted fills: %+v", flatStats)
	}

	localClock, localStats, localHome := run(2, 0)
	if localStats.RemoteLineFills != 0 {
		t.Fatalf("same-node reads counted %d remote fills", localStats.RemoteLineFills)
	}
	if localHome != 0 {
		t.Fatalf("line home %d after local reads, want 0", localHome)
	}

	remoteClock, remoteStats, remoteHome := run(2, 1)
	// Without a cache model every access is a fill, but ownership
	// migrates on the first remote one — so exactly one of the ten
	// cross-node reads pays the hop.
	if remoteStats.RemoteLineFills != 1 {
		t.Fatalf("cross-node reads counted %d remote fills, want 1", remoteStats.RemoteLineFills)
	}
	if remoteHome != 1 {
		t.Fatalf("line home %d after remote fill, want 1 (migrated)", remoteHome)
	}
	// The two pinned runs differ only in the reader's node, so their
	// clocks differ by exactly the one remote fill.  (The flat run is
	// not cycle-comparable here: pinning narrows the reader's core
	// choice, which shifts context-switch charges.)
	if want := localClock + DefaultCosts().RemoteFill; remoteClock != want {
		t.Fatalf("cross-node clock %d, want local %d + one RemoteFill = %d",
			remoteClock, localClock, want)
	}
}

// TestFlatMachineIdenticalUnderNodeConfig: Nodes=1 must be the exact
// pre-topology machine — same clock, same scheduling — whatever other
// features are on.
func TestFlatMachineIdenticalUnderNodeConfig(t *testing.T) {
	run := func(nodes int) int64 {
		cfg := numaConfig(4, nodes)
		cfg.CacheSim = true
		s := New(cfg)
		for w := 0; w < 6; w++ {
			s.Spawn("w", func(th *Thread) {
				for i := 0; i < 40; i++ {
					th.Alloc(1, 64)
					th.LoadAddr(th.Reg(1))
					th.FreeAddr(th.Reg(1))
					th.SetReg(1, 0)
					th.Work(1_000)
				}
			})
		}
		mustRun(t, s)
		return s.Clock()
	}
	if a, b := run(0), run(1); a != b {
		t.Fatalf("Nodes=0 clock %d != Nodes=1 clock %d", a, b)
	}
}
