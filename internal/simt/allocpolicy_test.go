package simt

import (
	"testing"

	"threadscan/internal/simmem"
)

// The allocation-policy integration surface: node-bound thread caches,
// policy-routed allocs, sweep-to-home free routing, and the RemoteFill
// charges for cross-node pool traffic.

// allocConfig returns a 2-node, 4-core config with per-node pools under
// the given policy.
func allocConfig(policy simmem.Policy) Config {
	return Config{
		Cores:   4,
		Nodes:   2,
		Quantum: 10_000,
		Seed:    1,
		Heap:    simmem.Config{Words: 1 << 14, Check: true, Poison: true, Policy: policy},
	}
}

func TestHeapNodesMirrorTopology(t *testing.T) {
	s := New(allocConfig(simmem.PolicyLocal))
	if got := s.Heap().Pools(); got != 2 {
		t.Fatalf("heap pools = %d, want 2 (mirrored from Config.Nodes)", got)
	}
	flat := New(Config{Cores: 2, Heap: simmem.Config{Words: 1 << 14, Policy: simmem.PolicyLocal}})
	if got := flat.Heap().Pools(); got != 1 {
		t.Fatalf("flat machine built %d pools", got)
	}
	global := New(Config{Cores: 4, Nodes: 2, Heap: simmem.Config{Words: 1 << 14}})
	if got := global.Heap().Pools(); got != 1 {
		t.Fatalf("global policy built %d pools", got)
	}
}

func TestCacheBindsToPinnedNode(t *testing.T) {
	s := New(allocConfig(simmem.PolicyLocal))
	homes := make([]int, 2)
	for n := 0; n < 2; n++ {
		n := n
		th := s.Spawn("w", func(th *Thread) {
			if got := th.MemCache().Node(); got != n {
				t.Errorf("thread pinned to node %d got cache on node %d", n, got)
			}
			th.Alloc(1, 64)
			homes[n] = s.Heap().HomeNode(th.Reg(1))
		})
		th.Pin(n)
	}
	mustRun(t, s)
	for n := 0; n < 2; n++ {
		if homes[n] != n {
			t.Errorf("node %d thread allocated from region %d under localalloc", n, homes[n])
		}
	}
}

func TestRemoteAllocChargesFill(t *testing.T) {
	// Node 1 allocates a block resident on node 0 (freed there into
	// node 0's pool, handed out again under interleave): the hand-out
	// counts in AllocRemoteFills and charges RemoteFill, so the same
	// program costs more cycles than its all-local twin.
	run := func(policy simmem.Policy) (uint64, int64) {
		s := New(allocConfig(policy))
		var cycles int64
		th := s.Spawn("w", func(th *Thread) {
			for i := 0; i < 200; i++ {
				th.Alloc(1, 172)
			}
			cycles = th.Cycles()
		})
		th.Pin(0)
		mustRun(t, s)
		return s.Stats().AllocRemoteFills, cycles
	}
	localFills, localCycles := run(simmem.PolicyLocal)
	interFills, interCycles := run(simmem.PolicyInterleave)
	if localFills != 0 {
		t.Fatalf("localalloc charged %d alloc remote fills on a one-node workload", localFills)
	}
	if interFills == 0 {
		t.Fatal("interleave from one node never charged an alloc remote fill")
	}
	if interCycles <= localCycles {
		t.Fatalf("interleave cycles %d not above localalloc's %d despite %d charged fills",
			interCycles, localCycles, interFills)
	}
}

func TestCrossNodeFreeRoutesAndCharges(t *testing.T) {
	// Node 0 allocates, node 1 frees: every block must return to node
	// 0's pool (via the batched remote-free stage), and the freeing
	// thread is charged one RemoteFill per flushed batch.
	s := New(allocConfig(simmem.PolicyLocal))
	const n = 96 // 3 remote batches
	addrs := make([]uint64, 0, n)
	var freeCycles int64
	alloc := s.Spawn("alloc", func(th *Thread) {
		for i := 0; i < n; i++ {
			th.Alloc(1, 172)
			addrs = append(addrs, th.Reg(1))
		}
	})
	alloc.Pin(0)
	free := s.Spawn("free", func(th *Thread) {
		for len(addrs) < n {
			th.Pause()
		}
		start := th.Cycles()
		for _, a := range addrs {
			th.FreeAddr(a)
		}
		freeCycles = th.Cycles() - start
	})
	free.Pin(1)
	mustRun(t, s)

	st := s.Heap().Stats()
	if st.RemoteFrees != n {
		t.Fatalf("RemoteFrees = %d, want %d", st.RemoteFrees, n)
	}
	if st.HomeFrees != 0 {
		t.Fatalf("HomeFrees = %d, want 0", st.HomeFrees)
	}
	if s.Heap().MisplacedBlocks() != 0 {
		t.Fatalf("misplaced blocks: %d", s.Heap().MisplacedBlocks())
	}
	// Per-free cost must reflect batch amortization, not a per-block
	// hop: 3 flushes of RemoteFill on top of n Free costs.
	costs := s.Config().Costs
	want := int64(n)*costs.Free + 3*costs.RemoteFill
	if freeCycles != want {
		t.Fatalf("free cycles = %d, want %d (batched remote flushes)", freeCycles, want)
	}
}

// TestChurnedThreadsLeaveNoMisplacedBlocks is the Cache.Flush
// regression test: churned threads on a 2-node topology alloc on one
// node, free blocks of both nodes, and exit mid-run.  Every magazine
// and staged remote free must land in its home node's pool — before
// the spill/flush attribution fix, exits dumped everything into one
// list, which per-node pool accounting would surface as misplaced
// blocks.
func TestChurnedThreadsLeaveNoMisplacedBlocks(t *testing.T) {
	s := New(allocConfig(simmem.PolicyLocal))
	// Published blocks, per allocating node.  All simulated threads are
	// serialized by the scheduler, so plain host-side slices are safe.
	var pub [2][]uint64

	parent := s.Spawn("parent", func(th *Thread) {
		for g := 0; g < 3; g++ {
			for n := 0; n < 2; n++ {
				n := n
				w := s.SpawnFrom(th, "churn", func(w *Thread) {
					// Alloc locally: half published for the *other*
					// node's next churn worker to free (cross-node
					// routing), half freed here (home routing).
					for i := 0; i < 40; i++ {
						w.Alloc(1, 172)
						if i%2 == 0 {
							pub[n] = append(pub[n], w.Reg(1))
						} else {
							w.FreeAddr(w.Reg(1))
						}
					}
					for _, a := range pub[1-n] {
						w.FreeAddr(a)
					}
					pub[1-n] = pub[1-n][:0]
				})
				w.Pin(n)
			}
			th.Work(20_000)
		}
	})
	parent.Pin(0)
	mustRun(t, s)

	// Whatever is still in the channel was never freed — fine.  What
	// was freed must sit in its home pool.
	if got := s.Heap().MisplacedBlocks(); got != 0 {
		t.Fatalf("churned threads left %d misplaced free blocks", got)
	}
	st := s.Heap().Stats()
	if st.HomeFrees == 0 || st.RemoteFrees == 0 {
		t.Fatalf("churn exercised no mixed routing: %+v", st)
	}
}
