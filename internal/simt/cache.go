package simt

// coreCache is a per-core 4-way set-associative cache model over
// 64-byte lines.  It exists to reproduce the locality structure the
// paper's results depend on: the 1024-node linked list is
// cache-resident (so hazard fences dominate its per-step cost), while
// the 131k-node hash table misses on nearly every step (so fences are
// comparatively cheap there).
//
// Associativity matters: a direct-mapped model charges the Leaky
// baseline spurious conflict misses as its leaked footprint grows,
// inverting the paper's leaky-is-the-ceiling ordering.  Four ways with
// round-robin replacement tracks real L2 behaviour closely enough.
//
// A tag entry packs the cache generation with the line number; bumping
// the generation invalidates the whole cache in O(1).
type coreCache struct {
	tags    []uint64 // sets x ways
	victim  []uint8  // per-set round-robin replacement cursor
	gen     uint32
	setMask uint64
}

const (
	lineShift  = 6 // 64-byte lines
	cacheWays  = 4
	entryValid = 1 << 63
)

// newCoreCache builds a cache with the given total line count (rounded
// up to a power-of-two set count by the caller's config fill).
func newCoreCache(lines int) coreCache {
	sets := lines / cacheWays
	if sets < 1 {
		sets = 1
	}
	return coreCache{
		tags:    make([]uint64, sets*cacheWays),
		victim:  make([]uint8, sets),
		gen:     1,
		setMask: uint64(sets - 1),
	}
}

// access touches addr and reports whether it hit.
func (c *coreCache) access(addr uint64) bool {
	line := addr >> lineShift
	set := line & c.setMask
	base := int(set) * cacheWays
	entry := entryValid | uint64(c.gen)<<40 | (line & (1<<40 - 1))
	for w := 0; w < cacheWays; w++ {
		if c.tags[base+w] == entry {
			return true
		}
	}
	v := c.victim[set]
	c.tags[base+int(v)] = entry
	c.victim[set] = (v + 1) % cacheWays
	return false
}

// invalidate evicts every line in O(1) by bumping the generation.
// Kept for experiments that model cache-hostile environments; the
// scheduler does not call it on context switches (threads share the
// benchmark structure, so cross-thread reuse is real).
func (c *coreCache) invalidate() { c.gen++ }

var _ = (*coreCache).invalidate
