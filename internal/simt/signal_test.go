package simt

import "testing"

func TestSignalDeliveredToRunningThread(t *testing.T) {
	s := New(testConfig())
	handled := 0
	s.SetSignalHandler(0, func(th *Thread) { handled++ })
	target := s.Spawn("busy", func(th *Thread) { th.Work(200_000) })
	s.Spawn("sender", func(th *Thread) {
		th.Work(5_000)
		th.Signal(target, 0)
	})
	mustRun(t, s)
	if handled != 1 {
		t.Fatalf("handled = %d", handled)
	}
	if s.Stats().SignalsSent != 1 || s.Stats().SignalsDelivered != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestSignalInterruptsInfiniteAppLoop(t *testing.T) {
	// The paper's key progress property (§1.2): handler code runs even
	// if the application spins forever, because the OS interrupts at
	// instruction boundaries.  The "app loop" here only exits once the
	// handler has run, proving delivery does not require cooperation.
	s := New(testConfig())
	done := false
	s.SetSignalHandler(0, func(th *Thread) { done = true })
	target := s.Spawn("spinner", func(th *Thread) {
		th.Alloc(0, 16)
		for !done {
			th.Load(1, 0, 0) // tight heap-read loop, no voluntary yields
		}
	})
	s.Spawn("sender", func(th *Thread) {
		th.Work(50_000)
		th.Signal(target, 0)
	})
	mustRun(t, s)
	if !done {
		t.Fatal("handler never ran")
	}
}

func TestSignalInterruptsSleep(t *testing.T) {
	// EINTR semantics: a signal cuts a sleep short and the handler runs
	// before Sleep returns.
	s := New(testConfig())
	ranHandler := false
	s.SetSignalHandler(0, func(th *Thread) { ranHandler = true })
	var interrupted bool
	var wokeAt int64
	target := s.Spawn("sleeper", func(th *Thread) {
		interrupted = th.Sleep(100_000_000) // 100ms virtual
		wokeAt = th.Now()
	})
	s.Spawn("sender", func(th *Thread) {
		th.Work(10_000)
		th.Signal(target, 0)
	})
	mustRun(t, s)
	if !interrupted {
		t.Fatal("sleep not interrupted")
	}
	if !ranHandler {
		t.Fatal("handler did not run on wake")
	}
	if wokeAt > 10_000_000 {
		t.Fatalf("sleeper woke too late: %d", wokeAt)
	}
}

func TestSignalInterruptsMutexWait(t *testing.T) {
	// A thread blocked on a lock still answers signals — load-bearing
	// for ThreadScan's collect (a thread waiting for the reclaim lock
	// must still scan and ACK).
	s := New(testConfig())
	scans := 0
	s.SetSignalHandler(0, func(th *Thread) { scans++ })
	m := s.NewMutex("contended")
	release := false
	lockHeld := false
	var blocked *Thread
	blocked = s.Spawn("waiter", func(th *Thread) {
		for !lockHeld { // wait until the holder owns the lock
			th.Pause()
		}
		m.Lock(th)
		m.Unlock(th)
	})
	s.Spawn("holder", func(th *Thread) {
		m.Lock(th)
		lockHeld = true
		th.Work(20_000)
		th.Signal(blocked, 0)
		// The waiter must run its handler *while still unable to get
		// the lock*; spin until the handler has run.
		for scans == 0 {
			th.Pause()
		}
		release = true
		m.Unlock(th)
	})
	mustRun(t, s)
	if scans != 1 || !release {
		t.Fatalf("scans=%d release=%v", scans, release)
	}
}

func TestSignalToExitedThreadIsNoop(t *testing.T) {
	s := New(testConfig())
	s.SetSignalHandler(0, func(th *Thread) { t.Error("handler ran for exited thread") })
	target := s.Spawn("short", func(th *Thread) {})
	s.Spawn("sender", func(th *Thread) {
		th.Work(100_000) // target long gone
		if th.Signal(target, 0) {
			t.Error("Signal to exited thread reported delivery")
		}
	})
	mustRun(t, s)
}

func TestHandlerMasksSameSignal(t *testing.T) {
	// A signal arriving *while its own handler runs* is deferred until
	// the handler returns, not nested (and two signals pending before
	// delivery coalesce, as POSIX non-RT signals do).
	s := New(testConfig())
	depth, maxDepth, count := 0, 0, 0
	inHandler := false
	var target *Thread
	s.SetSignalHandler(0, func(th *Thread) {
		depth++
		count++
		if depth > maxDepth {
			maxDepth = depth
		}
		inHandler = true
		th.Work(30_000) // long handler spanning several quanta
		inHandler = false
		depth--
	})
	target = s.Spawn("receiver", func(th *Thread) { th.Work(200_000) })
	s.Spawn("sender", func(th *Thread) {
		th.Work(2_000)
		th.Signal(target, 0)
		for !inHandler { // wait until the handler is running...
			th.Pause()
		}
		th.Signal(target, 0) // ...then signal again, mid-handler
	})
	mustRun(t, s)
	if maxDepth != 1 {
		t.Fatalf("handler nested: depth %d", maxDepth)
	}
	if count != 2 {
		t.Fatalf("second signal lost: count %d", count)
	}
}

func TestSelfSignal(t *testing.T) {
	s := New(testConfig())
	ran := false
	s.SetSignalHandler(1, func(th *Thread) { ran = true })
	s.Spawn("self", func(th *Thread) {
		th.Signal(th, 1)
		th.Step() // next safepoint delivers
		if !ran {
			t.Error("self-signal not delivered at next safepoint")
		}
	})
	mustRun(t, s)
}

func TestSignalLatencyGrowsWithOversubscription(t *testing.T) {
	// Figure 4's mechanism: on an oversubscribed machine, a descheduled
	// thread answers a signal only when it gets a core again.  Measure
	// time from signal to handler completion at 1x and 8x subscription.
	latency := func(nThreads int) int64 {
		cfg := testConfig()
		cfg.Cores = 2
		cfg.Seed = 3
		s := New(cfg)
		var sentAt, handledAt int64
		s.SetSignalHandler(0, func(th *Thread) { handledAt = th.Now() })
		targets := make([]*Thread, nThreads)
		for i := 0; i < nThreads; i++ {
			targets[i] = s.Spawn("w", func(th *Thread) { th.Work(3_000_000) })
		}
		s.Spawn("sender", func(th *Thread) {
			th.Work(500_000) // mid-run
			sentAt = th.Now()
			th.Signal(targets[nThreads-1], 0)
		})
		mustRun(t, s)
		if handledAt == 0 {
			t.Fatal("signal never handled")
		}
		return handledAt - sentAt
	}
	l1 := latency(1)
	l8 := latency(16)
	if l8 < 2*l1 {
		t.Fatalf("oversubscription did not delay signal response: 1x=%d 16x=%d", l1, l8)
	}
}

func TestHandlerSeesConsistentStack(t *testing.T) {
	// The handler observes the thread's registers/stack exactly as they
	// were at the interrupted safepoint.
	s := New(testConfig())
	var snapshot []uint64
	s.SetSignalHandler(0, func(th *Thread) {
		snapshot = snapshot[:0]
		th.ScanRoots(func(w uint64) { snapshot = append(snapshot, w) })
	})
	target := s.Spawn("t", func(th *Thread) {
		th.PushFrame(1)
		th.SetSlot(0, 0x12340)
		th.SetReg(7, 0x56780)
		th.Work(100_000)
		th.PopFrame()
	})
	s.Spawn("sender", func(th *Thread) {
		th.Work(10_000)
		th.Signal(target, 0)
	})
	mustRun(t, s)
	var sawSlot, sawReg bool
	for _, w := range snapshot {
		if w == 0x12340 {
			sawSlot = true
		}
		if w == 0x56780 {
			sawReg = true
		}
	}
	if !sawSlot || !sawReg {
		t.Fatalf("handler snapshot incomplete: slot=%v reg=%v", sawSlot, sawReg)
	}
}
