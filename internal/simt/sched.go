package simt

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"threadscan/internal/simmem"
)

// Sim is one simulation instance: a heap, a set of threads, and the
// discrete-event scheduler that runs them.
//
// A Sim is used in three phases: configure (New, SetSignalHandler,
// OnThreadStart/OnThreadExit, Spawn), run (Run, which blocks until all
// threads exit or the simulation fails), inspect (Stats, Clock, Heap).
// The zero value is not usable; construct with New.
type Sim struct {
	cfg  Config
	heap *simmem.Heap
	rng  *rand.Rand

	threads []*Thread
	live    int
	started bool
	done    bool

	coreFree []int64 // per-core: virtual time the core becomes free
	coreLast []int   // per-core: last thread id dispatched (-1 none)
	caches   []coreCache

	topo     topology
	lineHome []int8 // per-arena-line home node (-1 unassigned); nil when Nodes == 1
	lineBase int    // arena base address >> lineShift

	yieldCh chan *Thread

	handlers   [MaxSignals]func(*Thread, SigNum)
	startHooks []func(*Thread)
	exitHooks  []func(*Thread)

	probe Probe // observability hooks; nil when detached

	clock   int64           // high-water mark of virtual time
	advance func(now int64) // host-side clock-advance hook; nil when detached

	stats SimStats
}

// SimStats aggregates scheduler-level counters.
type SimStats struct {
	Dispatches       uint64
	ContextSwitches  uint64
	SignalsSent      uint64
	SignalsDelivered uint64
	Wakeups          uint64

	// NUMA memory traffic (zero when Nodes == 1).  A "fill" is a
	// memory access that reached the line's home node: a modeled cache
	// miss when CacheSim is on, every access otherwise.
	LocalLineFills  uint64 `json:"local_line_fills,omitempty"`
	RemoteLineFills uint64 `json:"remote_line_fills,omitempty"`

	// AllocRemoteFills counts allocations that were handed a block
	// *resident* on a different node than the allocating thread and
	// were charged Costs.RemoteFill for the cross-socket pull.  Only
	// the per-node-pool policies charge (and count) here; under the
	// global policy the same hand-outs are visible observationally in
	// the heap's RemoteAllocs counter, but the cost model stays
	// bit-identical to its capture.
	AllocRemoteFills uint64 `json:"alloc_remote_fills,omitempty"`
}

// New creates a simulation from cfg.
func New(cfg Config) *Sim {
	cfg.fill()
	s := &Sim{
		cfg:      cfg,
		heap:     simmem.New(cfg.Heap),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		coreFree: make([]int64, cfg.Cores),
		coreLast: make([]int, cfg.Cores),
		yieldCh:  make(chan *Thread),
	}
	for i := range s.coreLast {
		s.coreLast[i] = -1
	}
	s.topo = newTopology(cfg.Nodes, cfg.Cores)
	if s.topo.nodes > 1 {
		base := s.heap.Base() >> lineShift
		lines := int((s.heap.Limit()-1)>>lineShift-base) + 1
		s.lineBase = int(base)
		s.lineHome = make([]int8, lines)
		for i := range s.lineHome {
			s.lineHome[i] = -1
		}
	}
	if cfg.CacheSim {
		s.caches = make([]coreCache, cfg.Cores)
		for i := range s.caches {
			s.caches[i] = newCoreCache(cfg.CacheSets)
		}
	}
	return s
}

// Heap returns the simulated heap shared by all threads.
func (s *Sim) Heap() *simmem.Heap { return s.heap }

// Config returns the (filled-in) configuration.
func (s *Sim) Config() Config { return s.cfg }

// Clock returns the virtual high-water mark in cycles.
func (s *Sim) Clock() int64 { return s.clock }

// Seconds converts cycles to virtual seconds at the configured rate.
func (s *Sim) Seconds(cycles int64) float64 { return float64(cycles) / float64(s.cfg.Hz) }

// Stats returns scheduler counters.
func (s *Sim) Stats() SimStats { return s.stats }

// OnClockAdvance installs a host-side hook invoked from the dispatch
// loop whenever the virtual high-water clock advances, with the new
// clock value.  The hook runs between thread quanta on the scheduler
// goroutine — never concurrently with a simulated thread — and must
// only *read* simulation state: it cannot charge cycles, so installing
// one (the metrics engine's ticker) cannot perturb the schedule.
// Unset, the cost is one nil comparison per dispatch.
func (s *Sim) OnClockAdvance(fn func(now int64)) { s.advance = fn }

// Threads returns all spawned threads, in spawn order.
func (s *Sim) Threads() []*Thread { return s.threads }

// SetSignalHandler installs the handler for sig.  Handlers run in the
// context of the receiving thread, at a safepoint, exactly like a POSIX
// handler runs between two instructions of the interrupted thread.
// Must be called before Run.
func (s *Sim) SetSignalHandler(sig SigNum, h func(*Thread)) {
	if sig < 0 || sig >= MaxSignals {
		panic("simt: signal number out of range")
	}
	s.handlers[sig] = func(t *Thread, _ SigNum) { h(t) }
}

// OnThreadStart registers a hook run in each thread's own context
// before its body (the analog of the paper's pthread_create hook, §4.2
// "Stack Boundaries").  Must be called before Run.
func (s *Sim) OnThreadStart(h func(*Thread)) { s.startHooks = append(s.startHooks, h) }

// OnThreadExit registers a hook run in each thread's own context after
// its body returns.
func (s *Sim) OnThreadExit(h func(*Thread)) { s.exitHooks = append(s.exitHooks, h) }

// Spawn adds a thread executing body.  Threads start runnable at
// virtual time zero when Run is called.  Must be called before Run;
// running threads create further threads with SpawnFrom.
func (s *Sim) Spawn(name string, body func(*Thread)) *Thread {
	if s.started {
		panic("simt: Spawn after Run (use SpawnFrom from a running thread)")
	}
	t := s.newThread(name, body)
	s.threads = append(s.threads, t)
	return t
}

// SpawnFrom adds a thread mid-run, from the context of the running
// thread parent — the analog of pthread_create during execution, which
// is what thread-churn workloads need.  The new thread becomes runnable
// at the parent's current virtual time (plus the context-switch cost the
// parent is charged for the creation) and runs every OnThreadStart hook
// in its own context at first dispatch, so reclamation schemes see a
// genuine mid-run registration.  Before Run it behaves exactly like
// Spawn.  Must not be called after Run has returned.
func (s *Sim) SpawnFrom(parent *Thread, name string, body func(*Thread)) *Thread {
	if !s.started {
		t := s.Spawn(name, body)
		if parent != nil {
			t.pinned = parent.pinned
		}
		return t
	}
	if s.done {
		panic("simt: SpawnFrom after the simulation finished")
	}
	if parent == nil || parent.exited {
		panic("simt: SpawnFrom requires a live parent thread")
	}
	parent.charge(s.cfg.Costs.ContextSwitch) // thread-creation cost
	t := s.newThread(name, body)
	t.pinned = parent.pinned // inherit the CPU mask, like fork
	t.readyAt = parent.now
	s.threads = append(s.threads, t)
	s.live++
	go t.main()
	return t
}

// newThread builds a thread record (shared by Spawn and SpawnFrom).
// The RNG seed depends only on Config.Seed and the spawn index, so runs
// with identical configs and schedules stay reproducible.
func (s *Sim) newThread(name string, body func(*Thread)) *Thread {
	return &Thread{
		sim:      s,
		id:       len(s.threads),
		name:     name,
		body:     body,
		resume:   make(chan quantum),
		stack:    make([]uint64, s.cfg.StackWords),
		runnable: true,
		pinned:   -1,
		rng:      rand.New(rand.NewSource(s.cfg.Seed ^ int64(uint64(len(s.threads)+1)*0x9E3779B97F4A7C15>>1))),
	}
}

// quantum is one scheduling grant: run from start until a safepoint at
// or after end.
type quantum struct {
	start, end int64
}

// yield reasons.
type yieldReason int

const (
	yQuantum yieldReason = iota // quantum expired (still runnable)
	yYield                      // voluntary yield (still runnable)
	ySleep                      // sleeping until readyAt
	yBlock                      // blocked on a wait queue
	yExit                       // body returned
	yPanic                      // body panicked (violation or bug)
)

// DeadlockError reports that live threads remain but none can run.
type DeadlockError struct {
	States []string
}

func (e *DeadlockError) Error() string {
	return "simt: deadlock — all live threads blocked:\n  " + strings.Join(e.States, "\n  ")
}

// TimeoutError reports that the virtual clock exceeded Config.MaxCycles.
type TimeoutError struct {
	Clock, Limit int64
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("simt: virtual clock %d exceeded MaxCycles %d (livelock?)", e.Clock, e.Limit)
}

// ThreadPanic wraps a panic raised inside a simulated thread, most
// commonly a *simmem.Violation from the checked heap.
type ThreadPanic struct {
	ThreadID int
	Name     string
	Value    any
	Stack    string
}

func (e *ThreadPanic) Error() string {
	return fmt.Sprintf("simt: thread %d (%s) panicked: %v", e.ThreadID, e.Name, e.Value)
}

// Unwrap exposes the panic value when it is an error (e.g. a heap
// violation), so callers can errors.As straight to *simmem.Violation.
func (e *ThreadPanic) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run executes the simulation until every thread exits.  It returns a
// *DeadlockError if all live threads block, or a *ThreadPanic if a
// thread panics (heap violations surface this way).
func (s *Sim) Run() error {
	if s.started {
		return errors.New("simt: Run called twice")
	}
	s.started = true
	s.live = len(s.threads)
	for _, t := range s.threads {
		go t.main()
	}
	defer s.release()

	for s.live > 0 {
		t := s.pickThread()
		if t == nil {
			s.done = true
			return s.deadlock()
		}
		core := s.pickCore(t)
		start := t.readyAt
		if s.coreFree[core] > start {
			start = s.coreFree[core]
		}
		if s.coreLast[core] != t.id {
			start += s.cfg.Costs.ContextSwitch
			s.stats.ContextSwitches++
			// The core's modeled cache deliberately survives the
			// switch: benchmark threads share one data structure, so
			// cross-thread reuse is real (and the paper's Figure 4
			// oversubscription overhead comes from scheduling latency,
			// not cache thrash).
		}
		s.coreLast[core] = t.id
		t.core = core
		s.stats.Dispatches++

		t.resume <- quantum{start, start + s.quantumLen()}
		<-s.yieldCh

		s.coreFree[core] = t.now
		if t.now > s.clock {
			s.clock = t.now
			if s.advance != nil {
				s.advance(s.clock)
			}
		}
		if s.cfg.MaxCycles > 0 && s.clock > s.cfg.MaxCycles {
			s.done = true
			return &TimeoutError{Clock: s.clock, Limit: s.cfg.MaxCycles}
		}
		switch t.reason {
		case yQuantum, yYield:
			t.readyAt = t.now
		case ySleep:
			t.readyAt = t.wakeAt
		case yBlock:
			t.runnable = false
		case yExit:
			t.runnable = false
			t.exited = true
			s.live--
		case yPanic:
			s.done = true
			s.live--
			return &ThreadPanic{ThreadID: t.id, Name: t.name, Value: t.panicVal, Stack: t.panicStack}
		}
	}
	s.done = true
	return nil
}

// pickThread selects the runnable thread with the earliest readyAt
// (FIFO tie-break by id for fairness; randomized under Chaos).
func (s *Sim) pickThread() *Thread {
	var best *Thread
	for _, t := range s.threads {
		if !t.runnable {
			continue
		}
		if best == nil || t.readyAt < best.readyAt {
			best = t
		}
	}
	if best == nil || !s.cfg.Chaos {
		return best
	}
	// Chaos: choose uniformly among threads ready within one quantum of
	// the earliest, scrambling the dispatch order.
	limit := best.readyAt + s.cfg.Quantum
	var pool []*Thread
	for _, t := range s.threads {
		if t.runnable && t.readyAt <= limit {
			pool = append(pool, t)
		}
	}
	return pool[s.rng.Intn(len(pool))]
}

// pickCore returns the index of the earliest-free core the thread may
// run on: any core when unpinned, the pinned node's block otherwise.
func (s *Sim) pickCore(t *Thread) int {
	lo, hi := 0, len(s.coreFree)
	if t.pinned >= 0 {
		lo, hi = s.topo.coreRange(t.pinned)
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if s.coreFree[i] < s.coreFree[best] {
			best = i
		}
	}
	return best
}

func (s *Sim) quantumLen() int64 {
	if s.cfg.Chaos {
		return 1 + s.rng.Int63n(s.cfg.Quantum)
	}
	return s.cfg.Quantum
}

// deadlock builds the diagnostic error.
func (s *Sim) deadlock() *DeadlockError {
	e := &DeadlockError{}
	for _, t := range s.threads {
		if t.exited {
			continue
		}
		where := "blocked"
		if t.waitQ != nil {
			where = "blocked on " + t.waitQ.name
		}
		e.States = append(e.States, fmt.Sprintf("thread %d (%s): %s at t=%d", t.id, t.name, where, t.now))
	}
	sort.Strings(e.States)
	return e
}

// release unparks every parked thread goroutine so they exit instead of
// leaking when Run returns early (deadlock or panic).
func (s *Sim) release() {
	for _, t := range s.threads {
		if !t.exited && !t.released {
			t.released = true
			close(t.resume)
		}
	}
	// Give released goroutines a chance to unwind promptly; correctness
	// does not depend on it (nothing sends on yieldCh after release).
	runtime.Gosched()
}
