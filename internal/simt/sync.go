package simt

// Synchronization primitives built on the scheduler.  Because exactly
// one simulated thread runs between safepoints, any sequence of Go-level
// state manipulation inside these primitives is atomic with respect to
// the simulation; the primitives only need to manage blocking and
// wakeup ordering.
//
// All waits here are *interruptible*: a signal removes the waiter from
// the queue, runs its handler, and the primitive retries.  This mirrors
// POSIX (futex waits return EINTR) and is load-bearing for ThreadScan —
// a thread blocked on the reclamation lock must still answer a scan
// request, or collect could deadlock (paper §4.2, "Progress").

// WaitQueue is a FIFO queue of blocked threads.
type WaitQueue struct {
	sim     *Sim
	name    string
	waiters []*Thread
}

// NewWaitQueue creates a wait queue; name appears in deadlock reports.
func (s *Sim) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{sim: s, name: name}
}

// Wait blocks the calling thread until WakeOne/WakeAll releases it or a
// signal interrupts it.  Pending handlers have run by the time Wait
// returns.  Returns true if the wait was interrupted by a signal.
func (q *WaitQueue) Wait(t *Thread) (interrupted bool) {
	q.waiters = append(q.waiters, t)
	t.waitQ = q
	t.yieldCore(yBlock)
	intr := t.interrupted
	t.interrupted = false
	t.safepoint()
	return intr
}

// WakeOne wakes the longest-waiting thread, if any.  Must be called
// from a running thread's context.
func (q *WaitQueue) WakeOne(waker *Thread) bool {
	if len(q.waiters) == 0 {
		return false
	}
	w := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	q.wake(w, waker)
	return true
}

// WakeAll wakes every waiter, returning the number woken.
func (q *WaitQueue) WakeAll(waker *Thread) int {
	n := len(q.waiters)
	for _, w := range q.waiters {
		q.wake(w, waker)
	}
	q.waiters = q.waiters[:0]
	return n
}

func (q *WaitQueue) wake(w *Thread, waker *Thread) {
	w.waitQ = nil
	w.runnable = true
	w.readyAt = maxI64(w.now, waker.now+q.sim.cfg.Costs.WakeLatency)
	q.sim.stats.Wakeups++
}

// Len returns the number of waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// remove deletes t from the queue (signal interruption path).
func (q *WaitQueue) remove(t *Thread) {
	for i, w := range q.waiters {
		if w == t {
			copy(q.waiters[i:], q.waiters[i+1:])
			q.waiters = q.waiters[:len(q.waiters)-1]
			return
		}
	}
}

// Mutex is a blocking, signal-interruptible mutual-exclusion lock.
// Fairness is FIFO-wakeup with competitive reacquire.
type Mutex struct {
	sim    *Sim
	q      *WaitQueue
	locked bool
	owner  *Thread
}

// NewMutex creates a mutex; name appears in deadlock reports.
func (s *Sim) NewMutex(name string) *Mutex {
	return &Mutex{sim: s, q: s.NewWaitQueue("mutex " + name)}
}

// Lock acquires the mutex, blocking as needed.  Signal handlers run
// while blocked (the wait is interruptible), so a thread parked on a
// lock still answers scan requests.
func (m *Mutex) Lock(t *Thread) {
	t.charge(m.sim.cfg.Costs.CAS)
	t.safepoint()
	for m.locked {
		m.q.Wait(t)
		t.charge(m.sim.cfg.Costs.CAS)
	}
	m.locked = true
	m.owner = t
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock(t *Thread) bool {
	t.charge(m.sim.cfg.Costs.CAS)
	t.safepoint()
	if m.locked {
		return false
	}
	m.locked = true
	m.owner = t
	return true
}

// Unlock releases the mutex and wakes one waiter.
func (m *Mutex) Unlock(t *Thread) {
	if !m.locked || m.owner != t {
		panic("simt: Unlock of mutex not held by caller")
	}
	m.locked = false
	m.owner = nil
	t.charge(m.sim.cfg.Costs.Store)
	m.q.WakeOne(t)
}

// Locked reports whether the mutex is currently held (diagnostics).
func (m *Mutex) Locked() bool { return m.locked }

// Barrier blocks threads until n of them arrive, then releases the
// generation together.  Used by workloads to align start lines.
type Barrier struct {
	sim     *Sim
	q       *WaitQueue
	n       int
	arrived int
	gen     int
}

// NewBarrier creates a barrier for n threads.
func (s *Sim) NewBarrier(name string, n int) *Barrier {
	return &Barrier{sim: s, q: s.NewWaitQueue("barrier " + name), n: n}
}

// Await blocks until n threads have called Await for this generation.
func (b *Barrier) Await(t *Thread) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.q.WakeAll(t)
		t.Step()
		return
	}
	for b.gen == gen {
		b.q.Wait(t)
	}
}
