package simt

// Synchronization primitives built on the scheduler.  Because exactly
// one simulated thread runs between safepoints, any sequence of Go-level
// state manipulation inside these primitives is atomic with respect to
// the simulation; the primitives only need to manage blocking and
// wakeup ordering.
//
// All waits here are *interruptible*: a signal removes the waiter from
// the queue, runs its handler, and the primitive retries.  This mirrors
// POSIX (futex waits return EINTR) and is load-bearing for ThreadScan —
// a thread blocked on the reclamation lock must still answer a scan
// request, or collect could deadlock (paper §4.2, "Progress").

// WaitQueue is a FIFO queue of blocked threads.
type WaitQueue struct {
	sim     *Sim
	name    string
	waiters []*Thread
}

// NewWaitQueue creates a wait queue; name appears in deadlock reports.
func (s *Sim) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{sim: s, name: name}
}

// Wait blocks the calling thread until WakeOne/WakeAll releases it or a
// signal interrupts it.  Pending handlers have run by the time Wait
// returns.  Returns true if the wait was interrupted by a signal.
func (q *WaitQueue) Wait(t *Thread) (interrupted bool) {
	q.waiters = append(q.waiters, t)
	t.waitQ = q
	t.yieldCore(yBlock)
	intr := t.interrupted
	t.interrupted = false
	t.safepoint()
	return intr
}

// WakeOne wakes the longest-waiting thread, if any.  Must be called
// from a running thread's context.
func (q *WaitQueue) WakeOne(waker *Thread) bool {
	if len(q.waiters) == 0 {
		return false
	}
	w := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	q.wake(w, waker)
	return true
}

// WakeAll wakes every waiter, returning the number woken.
func (q *WaitQueue) WakeAll(waker *Thread) int {
	n := len(q.waiters)
	for _, w := range q.waiters {
		q.wake(w, waker)
	}
	q.waiters = q.waiters[:0]
	return n
}

func (q *WaitQueue) wake(w *Thread, waker *Thread) {
	w.waitQ = nil
	w.runnable = true
	w.readyAt = maxI64(w.now, waker.now+q.sim.cfg.Costs.WakeLatency)
	q.sim.stats.Wakeups++
}

// Len returns the number of waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// remove deletes t from the queue (signal interruption path).
func (q *WaitQueue) remove(t *Thread) {
	for i, w := range q.waiters {
		if w == t {
			copy(q.waiters[i:], q.waiters[i+1:])
			q.waiters = q.waiters[:len(q.waiters)-1]
			return
		}
	}
}

// Mutex is a blocking, signal-interruptible mutual-exclusion lock.
// Fairness is FIFO-wakeup with competitive reacquire.
type Mutex struct {
	sim    *Sim
	q      *WaitQueue
	locked bool
	owner  *Thread
}

// NewMutex creates a mutex; name appears in deadlock reports.
func (s *Sim) NewMutex(name string) *Mutex {
	return &Mutex{sim: s, q: s.NewWaitQueue("mutex " + name)}
}

// Lock acquires the mutex, blocking as needed.  Signal handlers run
// while blocked (the wait is interruptible), so a thread parked on a
// lock still answers scan requests.
func (m *Mutex) Lock(t *Thread) {
	t.charge(m.sim.cfg.Costs.CAS)
	t.safepoint()
	for m.locked {
		m.q.Wait(t)
		t.charge(m.sim.cfg.Costs.CAS)
	}
	m.locked = true
	m.owner = t
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock(t *Thread) bool {
	t.charge(m.sim.cfg.Costs.CAS)
	t.safepoint()
	if m.locked {
		return false
	}
	m.locked = true
	m.owner = t
	return true
}

// Unlock releases the mutex and wakes one waiter.
func (m *Mutex) Unlock(t *Thread) {
	if !m.locked || m.owner != t {
		panic("simt: Unlock of mutex not held by caller")
	}
	m.locked = false
	m.owner = nil
	t.charge(m.sim.cfg.Costs.Store)
	m.q.WakeOne(t)
}

// Locked reports whether the mutex is currently held (diagnostics).
func (m *Mutex) Locked() bool { return m.locked }

// Handshake is the one-to-many acknowledgement barrier at the heart of
// a scan phase: an owner arms it, registers one expectation per party
// it signals, and spins until every party has acked.  ThreadScan's
// collect uses it as the scan barrier — and, under per-node
// reclamation, it is the *only* cross-node synchronization a collect
// performs: aggregation and sweep stay node-local, the handshake alone
// spans the machine.
//
// Cycle accounting is deliberately asymmetric, mirroring the protocol:
// Ack is free here (the acking side charges its own store+fence at the
// call site, exactly as a real ACK flag write would cost), while Await
// burns the owner's cycles in Pause spin-waits — the reclaimer-side
// wait the paper's Figure 4 charges to oversubscription.
// With concurrent collects, several handshakes can be armed at once
// against the same signal number; signal coalescing then delivers ONE
// handler run for several owners' sends.  ExpectFrom/Wants/AckFrom
// track *which* threads each owner is waiting on, so a handler can
// snapshot every handshake that wants it and satisfy them all with a
// single scan pass (one scan epoch shared across overlapping
// collects).  The anonymous Expect/Ack pair remains for the serial
// pipeline and stays bit-identical to it.
type Handshake struct {
	sim   *Sim
	name  string
	need  int
	got   int
	wants []bool // thread-id-indexed: owner awaits this thread's ack
}

// NewHandshake creates a handshake; name appears in diagnostics.
func (s *Sim) NewHandshake(name string) *Handshake {
	return &Handshake{sim: s, name: name}
}

// Arm resets the handshake for a new phase: zero expected, zero acked.
func (h *Handshake) Arm() {
	h.need, h.got = 0, 0
	for i := range h.wants {
		h.wants[i] = false
	}
}

// Expect registers n additional parties the owner will wait for.
func (h *Handshake) Expect(n int) { h.need += n }

// ExpectFrom registers one specific party the owner will wait for, so
// that party's handler can discover the expectation via Wants.
func (h *Handshake) ExpectFrom(t *Thread) {
	id := t.ID()
	for id >= len(h.wants) {
		h.wants = append(h.wants, false)
	}
	h.wants[id] = true
	h.need++
}

// Wants reports whether the owner is waiting on an ack from t.
func (h *Handshake) Wants(t *Thread) bool {
	id := t.ID()
	return id < len(h.wants) && h.wants[id]
}

// AckFrom records t's acknowledgement of an ExpectFrom expectation.
// Bookkeeping only, like Ack; the caller charges its own ACK store.
func (h *Handshake) AckFrom(t *Thread) {
	if id := t.ID(); id < len(h.wants) {
		h.wants[id] = false
	}
	h.got++
}

// Ack records one party's acknowledgement.  Bookkeeping only — the
// caller charges the visible-store cost of its ACK itself.
func (h *Handshake) Ack(*Thread) { h.got++ }

// Await spins (interruptibly — Pause passes safepoints, so the owner
// still answers signals) until every expected party has acked.
func (h *Handshake) Await(t *Thread) {
	for h.got < h.need {
		t.Pause()
	}
}

// Need returns the number of parties the current phase expects.
func (h *Handshake) Need() int { return h.need }

// Outstanding returns how many expected acks have not yet arrived.
func (h *Handshake) Outstanding() int { return h.need - h.got }

// Barrier blocks threads until n of them arrive, then releases the
// generation together.  Used by workloads to align start lines.
type Barrier struct {
	sim     *Sim
	q       *WaitQueue
	n       int
	arrived int
	gen     int
}

// NewBarrier creates a barrier for n threads.
func (s *Sim) NewBarrier(name string, n int) *Barrier {
	return &Barrier{sim: s, q: s.NewWaitQueue("barrier " + name), n: n}
}

// Await blocks until n threads have called Await for this generation.
func (b *Barrier) Await(t *Thread) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.q.WakeAll(t)
		t.Step()
		return
	}
	for b.gen == gen {
		b.q.Wait(t)
	}
}
