package simt

import (
	"testing"
	"testing/quick"

	"threadscan/internal/simmem"
)

// TestQuickClockMonotoneAndBounded property-checks two scheduler
// invariants over random configurations:
//
//  1. every thread's virtual clock is nondecreasing across observations;
//  2. total consumed CPU cycles never exceed cores x elapsed clock —
//     the simulated machine cannot manufacture compute.
func TestQuickClockMonotoneAndBounded(t *testing.T) {
	f := func(seed int64, coresRaw, threadsRaw uint8, chaos bool) bool {
		cores := int(coresRaw)%4 + 1
		threads := int(threadsRaw)%6 + 1
		cfg := Config{
			Cores: cores, Quantum: 5_000, Seed: seed, Chaos: chaos,
			MaxCycles: 2_000_000_000,
			Heap:      simmem.Config{Words: 1 << 14},
		}
		s := New(cfg)
		monotone := true
		for i := 0; i < threads; i++ {
			s.Spawn("w", func(th *Thread) {
				last := int64(0)
				for j := 0; j < 200; j++ {
					th.Work(int64(th.RNG().Intn(300)) + 1)
					if th.Now() < last {
						monotone = false
					}
					last = th.Now()
					if th.RNG().Intn(8) == 0 {
						th.Yield()
					}
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Log(err)
			return false
		}
		if !monotone {
			return false
		}
		var totalCycles int64
		for _, th := range s.Threads() {
			totalCycles += th.Cycles()
		}
		return totalCycles <= int64(cores)*s.Clock()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSignalsNeverLost property-checks signal delivery: every
// signal sent to a live, eventually-running thread is delivered (given
// coalescing: we count delivery occurrences, which must be >= 1 per
// burst and <= sends).
func TestQuickSignalsNeverLost(t *testing.T) {
	f := func(seed int64, burstsRaw uint8) bool {
		bursts := int(burstsRaw)%10 + 1
		cfg := Config{
			Cores: 2, Quantum: 2_000, Seed: seed,
			MaxCycles: 2_000_000_000,
			Heap:      simmem.Config{Words: 1 << 14},
		}
		s := New(cfg)
		delivered := 0
		handled := make(chan struct{}, 1) // unused; host-side sync not needed
		_ = handled
		s.SetSignalHandler(0, func(th *Thread) { delivered++ })
		ready := false
		done := false
		target := s.Spawn("target", func(th *Thread) {
			ready = true
			for !done {
				th.Work(100)
			}
		})
		s.Spawn("sender", func(th *Thread) {
			for !ready {
				th.Pause()
			}
			for i := 0; i < bursts; i++ {
				th.Signal(target, 0)
				// Wait until this burst is handled before the next, so
				// coalescing cannot merge across bursts.
				for delivered <= i {
					th.Pause()
				}
			}
			done = true
		})
		if err := s.Run(); err != nil {
			t.Log(err)
			return false
		}
		return delivered == bursts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminismAcrossConfigs property-checks that two runs with
// identical seeds and configs produce identical clocks and stats even
// under chaos scheduling.
func TestQuickDeterminismAcrossConfigs(t *testing.T) {
	run := func(seed int64, cores, threads int, chaos bool) (int64, SimStats) {
		cfg := Config{
			Cores: cores, Quantum: 3_000, Seed: seed, Chaos: chaos,
			MaxCycles: 2_000_000_000,
			Heap:      simmem.Config{Words: 1 << 14},
		}
		s := New(cfg)
		for i := 0; i < threads; i++ {
			s.Spawn("w", func(th *Thread) {
				th.Alloc(0, 64)
				for j := 0; j < 300; j++ {
					th.StoreImm(0, 0, uint64(j))
					th.Load(1, 0, 0)
					if th.RNG().Intn(16) == 0 {
						th.Yield()
					}
				}
				th.FreeAddr(th.Reg(0))
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Clock(), s.Stats()
	}
	f := func(seed int64, coresRaw, threadsRaw uint8, chaos bool) bool {
		cores := int(coresRaw)%3 + 1
		threads := int(threadsRaw)%5 + 1
		c1, s1 := run(seed, cores, threads, chaos)
		c2, s2 := run(seed, cores, threads, chaos)
		return c1 == c2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
