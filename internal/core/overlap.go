package core

import (
	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// Concurrent per-node collects (Config.PerNode without SerializeCollects).
//
// The serialized per-node pipeline (pernode.go) routes retirements to
// per-node sub-buffers but still funnels every collect through the one
// machine-wide reclamation lock: node 1's reclaimer waits for node 0's
// phase even though their shard groups, sweep lists, and freed lines
// are disjoint by construction.  This file retires that lock from the
// collect path.  Each node owns a nodeCollect — an admission mutex
// (at most one in-flight collect per node), a scan-barrier handshake,
// a shard group, and deferred sweep lists — and a node's reclaimer
// runs its whole trigger → aggregate → sort → signal → scan → sweep →
// free pipeline against its own nodeCollect only.  Collects on
// different nodes overlap freely; the only cross-node rendezvous left
// is the scan barrier itself, because any thread on any node may hold
// a reference to any address.
//
// Shared scan epochs.  With several collects in flight, one thread can
// be signaled by several reclaimers before it reaches a safepoint; the
// simulator coalesces those sends into a single handler run.  The
// handler therefore snapshots, at entry, every handshake that wants
// its ack (Handshake.ExpectFrom/Wants), scans ONCE — probing each
// wanting node's shard group per stack word, charging the word mask
// and range check a single time — and acks each wanting handshake
// individually.  One scan pass satisfies every collect whose signal it
// observed: overlapping collects share the scan epoch instead of
// re-walking the stack per node.  A collect armed after the snapshot
// is not lost: its send left the signal pending, so a later handler
// run (a distinct epoch, deterministically ordered by the scheduler)
// picks it up.
//
// Steal arbitration.  A thread that sees a remote node's backlog past
// StealThreshold TryLocks that node's slot instead of queueing on it:
// acquisition failure means the node's own reclaimer (or an earlier
// thief) is already collecting, so a stolen collect never targets a
// node whose reclaimer is active and never blocks an idle node's own
// collect — the lock-free shape of the serialized path's guarantee.
//
// Exit safety.  A thread exits by taking EVERY node's slot in
// ascending order (after the machine-wide registration lock — the one
// global lock order).  The waits are interruptible, so an in-flight
// phase counting the exiting thread still gets its scan and ack; once
// all slots are held, no handshake wants the thread and it can
// deregister without stranding a barrier.

// nodeCollect is one node's independent collect pipeline.
type nodeCollect struct {
	node int
	lock *simt.Mutex     // admits one in-flight collect for this node
	hs   *simt.Handshake // this node's scan barrier
	// shards is this node's shard group — single-node by construction
	// (routing put only node-homed addresses in nodeBuf[node]).
	shards *shardSet
	// reclaimerID is the thread driving the in-flight collect (-1
	// idle); help-sort attribution for this group compares against it.
	reclaimerID int
	active      bool // collect in flight over this group
	// pending holds sweep lists deferred by the last phase (HelpFree);
	// help holds the lists the current phase's scanners may claim.
	// All lists here are homed on node.
	pending []freeList
	help    []freeList
}

// backlogOf is the node's deferred sweep backlog — the quantity the
// steal threshold compares against for sweep stealing.
func (ts *ThreadScan) backlogOf(nc *nodeCollect) int {
	n := 0
	for _, list := range nc.help {
		n += len(list.addrs)
	}
	for _, list := range nc.pending {
		n += len(list.addrs)
	}
	return n
}

// maybeCollectOverlap checks the collect triggers after a routing
// drain, like maybeCollectRouted, but admission is per node: the
// drainer queues (interruptibly) on its own node's slot and TryLocks
// remote overloaded ones.
func (ts *ThreadScan) maybeCollectOverlap(t *simt.Thread) {
	my := t.Node()
	nc := ts.nc[my]
	if len(ts.nodeBuf[my]) >= ts.nodeTrigger[my] {
		nc.lock.Lock(t)
		if len(ts.nodeBuf[my]) >= ts.nodeTrigger[my] {
			if ts.cfg.CollectWatermark > 0 {
				ts.stats.WatermarkCollects++
				ts.obs.Instant(t, obs.KindWatermark)
			} else {
				ts.obs.Instant(t, obs.KindTrigger)
			}
			ts.collectNodeIn(t, nc)
		} else {
			// This node's reclaimer collected while we waited (§4.2).
			ts.stats.AvoidedCollects++
		}
		nc.lock.Unlock(t)
	}
	for n := 0; n < ts.nodes; n++ {
		if n == my || len(ts.nodeBuf[n]) < ts.stealAt {
			continue
		}
		other := ts.nc[n]
		// TryLock, not Lock: a held slot means the node's own reclaimer
		// (or an earlier thief) is already on it — stealing must target
		// only neglected nodes, and must never stall this thread behind
		// another node's phase.
		if !other.lock.TryLock(t) {
			continue
		}
		if len(ts.nodeBuf[n]) >= ts.stealAt {
			ts.stats.StolenCollects++
			ts.obs.Instant(t, obs.KindSteal)
			ts.collectNodeIn(t, other)
		} else {
			ts.stats.AvoidedCollects++
		}
		other.lock.Unlock(t)
	}
}

// collectForced is Collect under concurrent collects: route every live
// ring (under the registration lock), then run one phase per node with
// backlog, taking each node's slot in ascending order.
func (ts *ThreadScan) collectForced(t *simt.Thread) {
	ts.lock.Lock(t)
	ts.routeAllRings(t)
	ts.lock.Unlock(t)
	ran := false
	for _, nc := range ts.nc {
		nc.lock.Lock(t)
		if len(ts.nodeBuf[nc.node])+len(ts.nodeRemark[nc.node]) > 0 {
			ts.collectNodeIn(t, nc)
			ran = true
		}
		nc.lock.Unlock(t)
	}
	if !ran {
		// Nothing routed anywhere: still run one (empty) phase so a
		// forced collect ticks the HelpFree carry-over.
		nc := ts.nc[t.Node()]
		nc.lock.Lock(t)
		ts.collectNodeIn(t, nc)
		nc.lock.Unlock(t)
	}
}

// flushOverlap is FlushAll's per-node teardown pass: collect and drain
// every node, steal threshold notwithstanding.  Caller holds the
// registration lock and is marked flushing.
func (ts *ThreadScan) flushOverlap(t *simt.Thread) {
	ts.routeAllRings(t)
	for _, nc := range ts.nc {
		nc.lock.Lock(t)
		if len(ts.nodeBuf[nc.node])+len(ts.nodeRemark[nc.node]) > 0 {
			ts.collectNodeIn(t, nc)
		}
		ts.drainNodeListsIn(t, nc)
		// collectNodeIn defers this phase's unmarked nodes; at teardown,
		// free them immediately.
		for _, list := range nc.pending {
			for _, addr := range list.addrs {
				ts.freeNode(t, addr)
				ts.stats.NodeReclaimed[list.home]++
			}
		}
		nc.pending = nc.pending[:0]
		nc.lock.Unlock(t)
	}
}

// collectNodeIn is the per-node TS-Collect over nc's own pipeline —
// collectNode without the machine-wide lock.  Caller holds nc.lock.
func (ts *ThreadScan) collectNodeIn(t *simt.Thread, nc *nodeCollect) {
	if nc.active {
		panic("core: concurrent collect admitted on one node's collect slot")
	}
	c := ts.costs()
	start := t.Cycles()
	node := nc.node
	ts.stats.Collects++
	ts.stats.NodeCollects[node]++
	for _, other := range ts.nc {
		if other != nc && other.active {
			ts.stats.OverlappedCollects++
			break
		}
	}
	nc.reclaimerID = t.ID()
	nc.active = true
	ts.obs.BeginNode(t, obs.StageCollect, node)
	defer ts.obs.End(t)

	// The previous phase's deferred sweep lists become claimable by
	// this phase's scanners.
	nc.help = append(nc.help, nc.pending...)
	nc.pending = nc.pending[:0]

	// Aggregate the node's sub-buffer into the node's own shard group.
	// Single node by construction: no votes, no election.  Truncate
	// before charging, as in collectNode: aggregate-and-truncate is one
	// atomic step with respect to routeRing's lock-free appends.
	nc.shards.reset()
	n := len(ts.nodeBuf[node]) + len(ts.nodeRemark[node])
	for _, a := range ts.nodeBuf[node] {
		nc.shards.add(a, node)
	}
	for _, a := range ts.nodeRemark[node] {
		nc.shards.add(a, node)
	}
	ts.nodeBuf[node] = ts.nodeBuf[node][:0]
	ts.nodeRemark[node] = ts.nodeRemark[node][:0]
	t.Charge(int64(n) * (c.Load + c.Step))
	nc.shards.setHomes(node)

	if nc.shards.total == 0 {
		// Nothing new on this node, but deferred sweep work must still
		// move (teardown reaches here with empty sub-buffers).
		ts.drainNodeListsIn(t, nc)
		nc.active = false
		nc.reclaimerID = -1
		ts.stats.CollectCycles += t.Cycles() - start
		return
	}
	if nc.shards.total > ts.stats.MaxMaster {
		ts.stats.MaxMaster = nc.shards.total
	}

	// Same pipeline orders as the classic collect: serial sort-then-
	// signal at K = 1, signal-first with lazy sorting otherwise.
	if nc.shards.k() == 1 {
		ts.prepareShardIn(t, nc.shards, nc.reclaimerID, 0)
		ts.signalPeersIn(t, nc)
	} else {
		ts.signalPeersIn(t, nc)
	}
	// Scan our own roots for this collect only; if another node's
	// collect wants our scan too, its signal is pending and our handler
	// answers it at the next safepoint (the Await below passes many).
	ts.scanThreadMulti(t, []*nodeCollect{nc})

	// The scan barrier — the only cross-node rendezvous of the phase.
	ts.obs.BeginNode(t, obs.StageHandshake, node)
	nc.hs.Await(t)
	ts.obs.End(t)

	if nc.shards.k() > 1 {
		for i := range nc.shards.sub {
			ts.prepareShardIn(t, nc.shards, nc.reclaimerID, i)
		}
	}

	// Sweep.  Every line here is homed on node (routing put it there);
	// after the barrier no handler probes this group (no handshake
	// wants remain), so iterating it across freeNode's safepoints is
	// safe.
	ts.obs.BeginNode(t, obs.StageSweep, node)
	for si := range nc.shards.sub {
		sh := &nc.shards.sub[si]
		var deferred []uint64
		for i, addr := range sh.buf {
			if sh.marks[i] {
				ts.stats.Remarked++
				ts.nodeRemark[node] = append(ts.nodeRemark[node], addr)
				t.Charge(c.Store)
				continue
			}
			if !ts.cfg.HelpFree {
				ts.freeNode(t, addr)
				ts.stats.NodeReclaimed[node]++
				continue
			}
			deferred = append(deferred, addr)
			t.Charge(c.Store)
		}
		if len(deferred) > 0 {
			nc.pending = append(nc.pending, freeList{addrs: deferred, home: node})
		}
	}
	ts.obs.End(t)
	ts.drainNodeListsIn(t, nc)
	nc.active = false
	nc.reclaimerID = -1
	ts.stats.CollectCycles += t.Cycles() - start
}

// signalPeersIn signals every other registered thread for nc's collect,
// registering a per-thread expectation so the target's handler can
// discover which collects want its scan.  The whole loop runs between
// safepoints (Signal only charges), so expectation registration and
// signal-pending bits are set atomically with respect to every
// target's handler entry — a handler snapshot can never observe the
// signal without the want.
func (ts *ThreadScan) signalPeersIn(t *simt.Thread, nc *nodeCollect) {
	ts.obs.BeginNode(t, obs.StageSignal, nc.node)
	nc.hs.Arm()
	threads := ts.sim.Threads()
	for id := range ts.registered {
		if !ts.registered[id] || id == t.ID() {
			continue
		}
		if t.Signal(threads[id], ts.cfg.Signal) {
			nc.hs.ExpectFrom(threads[id])
		}
	}
	ts.obs.End(t)
}

// scanHandlerOverlap is TS-Scan under concurrent collects: one scan
// pass per handler run, shared by every collect whose signal the run
// observed.
func (ts *ThreadScan) scanHandlerOverlap(t *simt.Thread) {
	h0 := t.HandlerCycles()
	// Snapshot the collects that want this thread's ack BEFORE any
	// safepoint-passing work (helpFree frees, which yields): the
	// snapshot defines this scan epoch.  A collect arming mid-handler
	// keeps its pending signal and gets a later handler run instead.
	var wanting []*nodeCollect
	for _, nc := range ts.nc {
		if nc.active && nc.hs.Wants(t) {
			wanting = append(wanting, nc)
		}
	}
	if len(wanting) == 0 {
		// A coalesced delivery whose every collect was already
		// satisfied by an earlier epoch of ours: nothing to scan.
		ts.stats.HandlerCycles += t.HandlerCycles() - h0
		return
	}
	node := -1
	if len(wanting) == 1 {
		node = wanting[0].node
	}
	ts.obs.BeginNode(t, obs.StageScan, node)
	if ts.cfg.HelpFree {
		ts.helpFreeOverlap(t)
	}
	ts.helpSortOverlap(t, wanting)
	ts.scanThreadMulti(t, wanting)
	// ACK each wanting collect: one visible flag write per reclaimer.
	c := ts.costs()
	for _, nc := range wanting {
		t.Charge(c.Store + c.Fence)
		nc.hs.AckFrom(t)
	}
	ts.obs.End(t)
	ts.stats.HandlerCycles += t.HandlerCycles() - h0
}

// scanThreadMulti scans t's registers, stack, and registered heap
// blocks once, probing every collect in ncs per word — the shared scan
// epoch.  The word mask and heap range check are charged once per
// word; shard routing and lookup are charged per probed group, exactly
// as the serial pipeline charges them for its single group.
func (ts *ThreadScan) scanThreadMulti(t *simt.Thread, ncs []*nodeCollect) {
	ts.stats.ScannedThreads++
	c := ts.costs()
	words := 0
	scanWord := func(w uint64) {
		words++
		t.Charge(2 * c.Step) // mask + range check
		//tslint:ignore tagptr scanned-word pointer masking per paper §4.2, not a ring-entry tag
		p := w &^ 7
		if p == 0 || !ts.sim.Heap().Contains(p) {
			return
		}
		for _, nc := range ncs {
			ts.probeAddr(t, nc.shards, nc.reclaimerID, p)
		}
	}
	t.ScanRoots(scanWord)
	for _, blk := range ts.perThread[t.ID()].heapBlocks {
		for i := uint64(0); i < blk[1]; i++ {
			scanWord(t.LoadAddr(blk[0] + i*8))
		}
	}
	ts.stats.ScannedWords += uint64(words)
}

// helpSortOverlap claims a fair share of each wanting collect's
// unprepared shards, under the same locality gate as the serialized
// helpSort: a remote scanner leaves sort work to the collecting node
// unless that node's collect is past the steal threshold.  Shard
// groups here are single-home, so the affinity two-pass degenerates to
// index order.
func (ts *ThreadScan) helpSortOverlap(t *simt.Thread, wanting []*nodeCollect) {
	my := t.Node()
	for _, nc := range wanting {
		if nc.shards.k() <= 1 {
			continue
		}
		if my != nc.node && nc.shards.total < ts.stealAt {
			continue
		}
		share := len(nc.shards.sub)/(nc.hs.Need()+1) + 1
		for i := range nc.shards.sub {
			if share == 0 {
				break
			}
			sh := &nc.shards.sub[i]
			if !sh.ready && len(sh.buf) > 0 {
				ts.prepareShardIn(t, nc.shards, nc.reclaimerID, i)
				ts.countClaim(t, sh.home)
				share--
			}
		}
	}
}

// helpFreeOverlap frees one HelpFreeChunk-bounded unit from the
// per-node claimable sweep lists: the scanner's own node's lists
// first, then — only past the steal threshold — an overloaded remote
// node's, counting the steal.  Claiming pops a whole list before any
// free (FreeAddr passes safepoints), exactly like the serialized
// helpFree.
func (ts *ThreadScan) helpFreeOverlap(t *simt.Thread) {
	any := false
	for _, nc := range ts.nc {
		if len(nc.help) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	ts.obs.Begin(t, obs.StageFree)
	defer ts.obs.End(t)
	n := ts.cfg.HelpFreeChunk
	my := t.Node()
	for pass := 0; pass < 2 && n > 0; pass++ {
		for _, nc := range ts.nc {
			if n == 0 {
				break
			}
			local := nc.node == my
			if pass == 0 && !local {
				continue
			}
			if pass == 1 && (local || ts.backlogOf(nc) < ts.stealAt) {
				continue
			}
			n = ts.helpFreeLists(t, nc, n, !local)
		}
	}
}

// helpFreeLists frees up to budget addresses from nc's claimable
// lists, returning the unused budget.  stolen marks first claims as
// cross-node sweep steals.
func (ts *ThreadScan) helpFreeLists(t *simt.Thread, nc *nodeCollect, budget int, stolen bool) int {
	for budget > 0 && len(nc.help) > 0 {
		// Pop the whole list before freeing: FreeAddr passes
		// safepoints, and no other helper — or the phase-end drain —
		// may see these entries.
		pick := len(nc.help) - 1
		list := nc.help[pick]
		nc.help = nc.help[:pick]
		if !list.claimed {
			list.claimed = true
			ts.countClaim(t, list.home)
			if stolen {
				ts.stats.StolenSweeps++
			}
		}
		take := budget
		if take > len(list.addrs) {
			take = len(list.addrs)
		}
		for i := 0; i < take; i++ {
			addr := list.addrs[len(list.addrs)-1]
			list.addrs = list.addrs[:len(list.addrs)-1]
			if ts.nodes > 1 {
				ts.noteSweep(t, addr)
				t.Touch(addr)
			}
			t.FreeAddr(addr)
			ts.stats.HelpFreed++
			ts.stats.NodeReclaimed[list.home]++
		}
		budget -= take
		if len(list.addrs) > 0 {
			nc.help = append(nc.help, list)
		} else {
			ts.stats.HelpSweptShards++
		}
	}
	return budget
}

// drainNodeListsIn is the phase-end mop-up for nc: a home-node
// reclaimer (or any teardown flush) finishes whatever no scanner
// claimed, bounding deferral to one phase; a remote (stealing)
// reclaimer below the steal threshold re-defers instead, leaving the
// frees to the home node's scanners.
func (ts *ThreadScan) drainNodeListsIn(t *simt.Thread, nc *nodeCollect) {
	if len(nc.help) == 0 {
		return
	}
	my := t.Node()
	remote := nc.node != my && !ts.flushing(t)
	if remote && ts.backlogOf(nc) < ts.stealAt {
		nc.pending = append(nc.pending, nc.help...)
		nc.help = nc.help[:0]
		return
	}
	// Steal the whole slice before freeing (freeNode passes
	// safepoints, during which scanners' helpFree pops entries).
	lists := nc.help
	nc.help = nil
	ts.obs.BeginNode(t, obs.StageFree, nc.node)
	defer ts.obs.End(t)
	for _, list := range lists {
		if remote {
			ts.stats.StolenSweeps++
		}
		for _, addr := range list.addrs {
			ts.freeNode(t, addr)
			ts.stats.NodeReclaimed[list.home]++
		}
	}
}
