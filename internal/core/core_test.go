package core

import (
	"errors"
	"testing"

	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

const nodeSize = 64

func testSim(cores int, seed int64) *simt.Sim {
	return simt.New(simt.Config{
		Cores:     cores,
		Quantum:   10_000,
		Seed:      seed,
		MaxCycles: 60_000_000_000, // watchdog
		Heap:      simmem.Config{Words: 1 << 20, Check: true, Poison: true},
	})
}

// allocNode allocates a node into reg dst and tags word 0 with val.
func allocNode(th *simt.Thread, dst int, val uint64) uint64 {
	th.Alloc(dst, nodeSize)
	th.StoreImm(dst, 0, val)
	return th.Reg(dst)
}

// churn allocates and immediately retires n unreferenced nodes, using
// reg 15 as scratch.
func churn(ts *ThreadScan, th *simt.Thread, n int) {
	for i := 0; i < n; i++ {
		allocNode(th, 15, uint64(i))
		addr := th.Reg(15)
		th.SetReg(15, 0) // drop the reference before retiring
		ts.Free(th, addr)
	}
}

func TestUnreferencedNodesReclaimed(t *testing.T) {
	s := testSim(2, 1)
	ts := New(s, Config{BufferSize: 32})
	s.Spawn("worker", func(th *simt.Thread) {
		churn(ts, th, 200)
		if left := ts.FlushAll(th); left != 0 {
			t.Errorf("FlushAll left %d nodes", left)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
	st := ts.Stats()
	if st.Collects == 0 || st.Reclaimed != 200 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCollectTriggersWhenBufferFull(t *testing.T) {
	s := testSim(1, 1)
	ts := New(s, Config{BufferSize: 16})
	s.Spawn("worker", func(th *simt.Thread) {
		churn(ts, th, 16) // fills the buffer exactly; no collect yet
		if got := ts.Stats().Collects; got != 0 {
			t.Errorf("collect before overflow: %d", got)
		}
		churn(ts, th, 1) // 17th free overflows -> collect
		if got := ts.Stats().Collects; got != 1 {
			t.Errorf("collects after overflow: %d", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLemma1ReferencedNodeSurvives is the paper's safety property: a
// node whose address sits in another thread's register must not be
// freed by a collect, and with the checked heap any violation would
// panic the run.
func TestLemma1ReferencedNodeSurvives(t *testing.T) {
	s := testSim(2, 7)
	ts := New(s, Config{BufferSize: 16})
	var shared uint64
	readerHolds := false
	dropRef := false
	collectDone := false

	s.Spawn("reader", func(th *simt.Thread) {
		// Publish a node address, hold it in reg 5, read through it
		// while the other thread retires it and collects.
		shared = allocNode(th, 5, 42)
		readerHolds = true
		for !dropRef {
			th.Load(6, 5, 0) // would be use-after-free if reclaimed
			if th.Reg(6) != 42 {
				t.Error("node contents changed while referenced")
				break
			}
		}
		th.SetReg(5, 0)
		th.SetReg(6, 0)
		for !collectDone {
			th.Pause()
		}
	})
	s.Spawn("writer", func(th *simt.Thread) {
		for !readerHolds {
			th.Pause()
		}
		// The node is now "unlinked" (no shared refs — `shared` is a
		// host-side variable, invisible to scans by design) but the
		// reader still holds a private ref.
		ts.Free(th, shared)
		churn(ts, th, 64) // force several collects
		if got := ts.Stats().Remarked; got == 0 {
			t.Error("referenced node was never marked by a scan")
		}
		if !s.Heap().LiveAt(shared) {
			t.Error("referenced node was freed (Lemma 1 violated)")
		}
		dropRef = true
		// Reader cleared its registers; now reclamation must succeed
		// (Lemma 4: eventual reclamation).
		for s.Heap().LiveAt(shared) {
			churn(ts, th, 16)
			th.Work(1000)
		}
		collectDone = true
		ts.FlushAll(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// TestLemma3CollectCompletesDespiteSpinningThread: an application
// thread stuck in an infinite loop cannot stall reclamation, because
// the handler runs at instruction boundaries (the decisive advantage
// over epoch schemes, §1.2/§2).
func TestLemma3CollectCompletesDespiteSpinningThread(t *testing.T) {
	s := testSim(2, 3)
	ts := New(s, Config{BufferSize: 16})
	stop := false
	s.Spawn("spinner", func(th *simt.Thread) {
		th.Alloc(0, nodeSize)
		for !stop { // never yields voluntarily, never calls Free
			th.Load(1, 0, 0)
		}
		th.FreeAddr(th.Reg(0))
	})
	s.Spawn("reclaimer", func(th *simt.Thread) {
		churn(ts, th, 100) // triggers collects that must signal spinner
		if ts.Stats().Collects == 0 {
			t.Error("no collect happened")
		}
		if ts.Stats().ScannedThreads < 2*ts.Stats().Collects {
			t.Error("spinner never scanned: collect must have hung")
		}
		stop = true
		ts.FlushAll(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

func TestHeapBlockExtensionProtectsHiddenRef(t *testing.T) {
	// §4.3: a thread stores a private reference in a pre-allocated heap
	// block.  Without registration the node would be reclaimed; with
	// AddHeapBlock the scan finds and protects it.
	s := testSim(2, 5)
	ts := New(s, Config{BufferSize: 16})
	var node uint64
	hidden := false
	release := false
	s.Spawn("hider", func(th *simt.Thread) {
		th.Alloc(0, 256) // the private block
		block := th.Reg(0)
		ts.AddHeapBlock(th, block, 256)
		node = allocNode(th, 1, 9)
		th.Store(0, 3, 1) // stash the ref in the heap block...
		th.SetReg(1, 0)   // ...and drop it from registers
		hidden = true
		for !release {
			th.Pause()
		}
		th.Load(1, 0, 3) // re-load ref and verify the node survived
		th.Load(2, 1, 0)
		if th.Reg(2) != 9 {
			t.Error("hidden-ref node corrupted")
		}
		th.StoreImm(0, 3, 0) // clear the stashed ref
		ts.RemoveHeapBlock(th, block, 256)
		ts.Free(th, th.Reg(1))
		th.SetReg(1, 0)
		th.SetReg(2, 0)
		th.FreeAddr(block)
		th.SetReg(0, 0)
	})
	s.Spawn("collector", func(th *simt.Thread) {
		for !hidden {
			th.Pause()
		}
		churn(ts, th, 64)
		if !s.Heap().LiveAt(node) {
			t.Error("heap-block-protected node was reclaimed")
		}
		release = true
		for ts.Buffered() > 0 || s.Heap().Stats().LiveBlocks > 1 {
			churn(ts, th, 16)
			if ts.FlushAll(th) == 0 {
				break
			}
		}
		ts.FlushAll(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadExitOrphansBufferedNodes(t *testing.T) {
	s := testSim(2, 9)
	ts := New(s, Config{BufferSize: 1024})
	s.Spawn("short-lived", func(th *simt.Thread) {
		churn(ts, th, 50) // buffered, no collect (buffer 1024)
	})
	s.Spawn("survivor", func(th *simt.Thread) {
		th.Work(2_000_000) // outlive the first thread
		ts.Collect(th)
		if left := ts.FlushAll(th); left != 0 {
			t.Errorf("orphans not reclaimed: %d left", left)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

func TestHelpFreeSharesReclamation(t *testing.T) {
	s := testSim(2, 11)
	ts := New(s, Config{BufferSize: 16, HelpFree: true, HelpFreeChunk: 8})
	done := false
	s.Spawn("worker1", func(th *simt.Thread) {
		churn(ts, th, 300)
		done = true
		ts.FlushAll(th)
	})
	s.Spawn("worker2", func(th *simt.Thread) {
		for !done { // scans (and help-frees) when signaled
			th.Work(500)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := ts.Stats()
	if st.HelpFreed == 0 {
		t.Errorf("HelpFree mode never freed from a handler: %+v", st)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

func TestAvoidedCollectWhenDrainedWhileWaiting(t *testing.T) {
	// Two threads fill their buffers simultaneously; one becomes the
	// reclaimer and drains everyone, the other should discover its
	// buffer empty and skip its own collect (§4.2).
	s := testSim(2, 13)
	ts := New(s, Config{BufferSize: 64})
	for i := 0; i < 2; i++ {
		s.Spawn("worker", func(th *simt.Thread) {
			churn(ts, th, 400)
		})
	}
	s.Spawn("closer", func(th *simt.Thread) {
		th.Work(50_000_000)
		ts.FlushAll(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// AvoidedCollects is opportunistic — it depends on timing — but
	// with tiny buffers and simultaneous churn it should occur.
	if ts.Stats().AvoidedCollects == 0 {
		t.Logf("note: no avoided collects this run (timing-dependent); stats %+v", ts.Stats())
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

func TestFreeMasksMarkBits(t *testing.T) {
	s := testSim(1, 17)
	ts := New(s, Config{BufferSize: 8})
	s.Spawn("worker", func(th *simt.Thread) {
		addr := allocNode(th, 0, 1)
		th.SetReg(0, 0)
		ts.Free(th, addr|1) // Harris-style marked pointer
		ts.Collect(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("marked-pointer free leaked %d blocks", live)
	}
}

func TestStressManyThreadsNoViolations(t *testing.T) {
	// A battery of seeds, chaos scheduling, with every thread holding
	// transient references while others collect.  The checked heap
	// fails the run on any unsound free.
	for _, seed := range []int64{1, 2, 3} {
		s := simt.New(simt.Config{
			Cores: 3, Quantum: 2_000, Seed: seed, Chaos: true,
			MaxCycles: 60_000_000_000,
			Heap:      simmem.Config{Words: 1 << 20, Check: true, Poison: true},
		})
		ts := New(s, Config{BufferSize: 24})
		nThreads := 6
		for i := 0; i < nThreads; i++ {
			s.Spawn("worker", func(th *simt.Thread) {
				for j := 0; j < 120; j++ {
					// Hold a node in reg 2 while churning others.
					allocNode(th, 2, uint64(j))
					held := th.Reg(2)
					churn(ts, th, 3)
					th.Load(3, 2, 0) // must still be live
					if th.Reg(3) != uint64(j) {
						t.Errorf("seed %d: held node corrupted", seed)
					}
					th.SetReg(2, 0)
					th.SetReg(3, 0)
					ts.Free(th, held)
				}
				ts.FlushAll(th)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if live := s.Heap().Stats().LiveBlocks; live != 0 {
			t.Fatalf("seed %d: leaked %d blocks", seed, live)
		}
	}
}

func TestUnsoundSchemeIsCaught(t *testing.T) {
	// Failure injection: free a node immediately (no protocol) while a
	// reader holds a reference.  The checked heap must catch it — this
	// proves the safety tests above have teeth.
	s := testSim(2, 19)
	var shared uint64
	ready := false
	s.Spawn("reader", func(th *simt.Thread) {
		shared = allocNode(th, 0, 5)
		ready = true
		for i := 0; i < 100_000; i++ {
			th.Load(1, 0, 0)
		}
	})
	s.Spawn("unsound-freer", func(th *simt.Thread) {
		for !ready {
			th.Pause()
		}
		th.FreeAddr(shared) // no reclamation protocol: use-after-free
	})
	err := s.Run()
	var v *simmem.Violation
	if !errors.As(err, &v) {
		t.Fatalf("unsound free not caught, err=%v", err)
	}
	if v.Kind != simmem.VUseAfterFree {
		t.Fatalf("wrong violation kind: %v", v.Kind)
	}
}

// TestDoubleRetireFreedOnce is the dedup regression: the same address
// retired twice lands twice in the master buffer, and the sweep must
// free it exactly once (pre-dedup it called FreeAddr per occurrence —
// a double free the checked heap catches).
func TestDoubleRetireFreedOnce(t *testing.T) {
	s := testSim(1, 29)
	ts := New(s, Config{BufferSize: 32})
	s.Spawn("worker", func(th *simt.Thread) {
		addr := allocNode(th, 0, 1)
		th.SetReg(0, 0)
		ts.Free(th, addr)
		ts.Free(th, addr) // application double retire
		ts.Collect(th)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("double retire reached the allocator: %v", err)
	}
	st := ts.Stats()
	if st.DoubleRetires != 1 {
		t.Fatalf("DoubleRetires = %d, want 1", st.DoubleRetires)
	}
	if st.Reclaimed != 1 {
		t.Fatalf("Reclaimed = %d, want 1", st.Reclaimed)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// TestDoubleRetireReferencedSurvives covers the nastier half of the
// duplicate bug: with two copies in the master buffer, the probe marks
// only one (binary search lands on the first; the hash keeps the last),
// so the sweep would free the other copy of a node a thread still
// references — a use-after-free, not just a double free.  Dedup leaves
// one copy, the mark protects it, and the node survives until released.
func TestDoubleRetireReferencedSurvives(t *testing.T) {
	for _, kind := range []LookupKind{LookupBinary, LookupHash} {
		s := testSim(2, 37)
		ts := New(s, Config{BufferSize: 16, Lookup: kind})
		var node uint64
		holding, release := false, false
		s.Spawn("reader", func(th *simt.Thread) {
			node = allocNode(th, 5, 11)
			holding = true
			for !release {
				th.Load(6, 5, 0)
				if th.Reg(6) != 11 {
					t.Errorf("%v: referenced node clobbered", kind)
					break
				}
			}
			th.SetReg(5, 0)
			th.SetReg(6, 0)
		})
		s.Spawn("bug", func(th *simt.Thread) {
			for !holding {
				th.Pause()
			}
			ts.Free(th, node)
			ts.Free(th, node) // double retire while still referenced
			churn(ts, th, 64) // force collects
			if !s.Heap().LiveAt(node) {
				t.Errorf("%v: referenced double-retired node was freed", kind)
			}
			release = true
			for s.Heap().LiveAt(node) {
				churn(ts, th, 16)
				th.Work(1000)
			}
			ts.FlushAll(th)
		})
		if err := s.Run(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if st := ts.Stats(); st.DoubleRetires == 0 {
			t.Fatalf("%v: duplicate never counted: %+v", kind, st)
		}
		if live := s.Heap().Stats().LiveBlocks; live != 0 {
			t.Fatalf("%v: leaked %d blocks", kind, live)
		}
	}
}

// TestFlushDrainsHelpQueueWithEmptyRings: a flush whose final collect
// finds every ring empty must still finish the HelpFree work deferred
// by the previous phase — the early return used to skip the drain and
// leak the whole queue at teardown.
func TestFlushDrainsHelpQueueWithEmptyRings(t *testing.T) {
	s := testSim(1, 53)
	ts := New(s, Config{BufferSize: 8, HelpFree: true})
	s.Spawn("worker", func(th *simt.Thread) {
		churn(ts, th, 8)
		ts.Collect(th) // defers all 8 to pendingFree; rings now empty
		if left := ts.FlushAll(th); left != 0 {
			t.Errorf("FlushAll left %d help-queued nodes", left)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// TestWatermarkNoCollectStormWhenPinned: nodes pinned by live
// references are re-buffered as remarked every collect; they must not
// keep the watermark trigger armed, or every subsequent Free runs a
// futile signal-all collect that reclaims nothing.
func TestWatermarkNoCollectStormWhenPinned(t *testing.T) {
	const watermark = 16
	s := testSim(2, 59)
	ts := New(s, Config{BufferSize: 1024, CollectWatermark: watermark})
	release := false
	pinned := false
	s.Spawn("pinner", func(th *simt.Thread) {
		// Hold private references to `watermark` retired nodes: enough
		// pinned garbage to sit exactly at the trigger threshold.
		th.PushFrame(watermark)
		for i := 0; i < watermark; i++ {
			allocNode(th, 15, uint64(i))
			th.SetSlot(i, th.Reg(15))
			addr := th.Reg(15)
			th.SetReg(15, 0)
			ts.Free(th, addr)
		}
		pinned = true
		for !release {
			th.Pause()
		}
		for i := 0; i < watermark; i++ {
			th.SetSlot(i, 0)
		}
		th.PopFrame()
	})
	s.Spawn("worker", func(th *simt.Thread) {
		for !pinned {
			th.Pause()
		}
		churn(ts, th, 100) // 100 fresh frees against 16 pinned nodes
		st := ts.Stats()
		// Fresh retirement re-arms the trigger roughly once per
		// watermark's worth of frees — not once per Free.
		if max := uint64(100/watermark + 3); st.Collects > max {
			t.Errorf("collect storm: %d collects for 100 frees (want <= %d): %+v",
				st.Collects, max, st)
		}
		release = true
		for s.Heap().Stats().LiveBlocks > 0 {
			if ts.FlushAll(th) == 0 {
				break
			}
			th.Work(1000)
		}
		ts.FlushAll(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// TestWatermarkTriggersCollect: with the adaptive trigger, a collect
// starts when the global buffered count crosses the watermark — long
// before any single ring (here 16x the watermark) fills.
func TestWatermarkTriggersCollect(t *testing.T) {
	s := testSim(2, 41)
	ts := New(s, Config{BufferSize: 1024, CollectWatermark: 64})
	s.Spawn("worker", func(th *simt.Thread) {
		churn(ts, th, 200)
		if left := ts.FlushAll(th); left != 0 {
			t.Errorf("FlushAll left %d nodes", left)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := ts.Stats()
	if st.WatermarkCollects == 0 {
		t.Fatalf("watermark never triggered: %+v", st)
	}
	// No ring ever filled, so every master stayed near the watermark.
	if st.MaxMaster > 2*64 {
		t.Fatalf("MaxMaster = %d despite watermark 64", st.MaxMaster)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// TestShardedCollectReclaimsAll runs the hold-and-churn stress through
// the sharded pipeline: same safety and liveness as the serial collect,
// with the sort work visibly split into per-shard passes.
func TestShardedCollectReclaimsAll(t *testing.T) {
	s := testSim(3, 43)
	ts := New(s, Config{BufferSize: 24, Shards: 8})
	for i := 0; i < 4; i++ {
		s.Spawn("worker", func(th *simt.Thread) {
			for j := 0; j < 80; j++ {
				allocNode(th, 2, uint64(j))
				held := th.Reg(2)
				churn(ts, th, 3)
				th.Load(3, 2, 0)
				if th.Reg(3) != uint64(j) {
					t.Error("held node corrupted under sharded collect")
				}
				th.SetReg(2, 0)
				th.SetReg(3, 0)
				ts.Free(th, held)
			}
			ts.FlushAll(th)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := ts.Stats()
	if st.Reclaimed+st.HelpFreed != st.Frees {
		t.Fatalf("reclaimed %d+%d of %d frees", st.Reclaimed, st.HelpFreed, st.Frees)
	}
	if st.ShardsSorted <= st.Collects {
		t.Fatalf("sharded collect prepared %d shards over %d collects", st.ShardsSorted, st.Collects)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// TestShardedHelpProtocol: with sharding plus HelpFree, scanners must
// observably share the pipeline — sorting shards inside their handlers
// and claiming whole per-shard free lists to sweep.
func TestShardedHelpProtocol(t *testing.T) {
	s := simt.New(simt.Config{
		Cores: 3, Quantum: 2_000, Seed: 47,
		MaxCycles: 60_000_000_000,
		Heap:      simmem.Config{Words: 1 << 20, Check: true, Poison: true},
	})
	ts := New(s, Config{BufferSize: 64, Shards: 16, HelpFree: true})
	done := false
	s.Spawn("churner", func(th *simt.Thread) {
		churn(ts, th, 600)
		done = true
		ts.FlushAll(th)
	})
	for i := 0; i < 2; i++ {
		s.Spawn("scanner", func(th *simt.Thread) {
			for !done { // scans (and helps) when signaled
				th.Work(500)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := ts.Stats()
	if st.HelpSortedShards == 0 {
		t.Fatalf("scanners never help-sorted a shard: %+v", st)
	}
	if st.HelpSweptShards == 0 || st.HelpFreed == 0 {
		t.Fatalf("scanners never claimed a sweep list: %+v", st)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := testSim(2, 23)
	ts := New(s, Config{BufferSize: 16})
	s.Spawn("w", func(th *simt.Thread) {
		churn(ts, th, 100)
		ts.FlushAll(th)
	})
	s.Spawn("idle", func(th *simt.Thread) {
		th.Work(10_000_000)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := ts.Stats()
	if st.Frees != 100 {
		t.Errorf("Frees = %d", st.Frees)
	}
	if st.Reclaimed+st.HelpFreed != 100 {
		t.Errorf("Reclaimed = %d", st.Reclaimed)
	}
	if st.ScannedWords == 0 || st.ScannedThreads == 0 {
		t.Errorf("scan counters empty: %+v", st)
	}
	if st.MaxMaster == 0 || st.MaxMaster > 17 {
		t.Errorf("MaxMaster = %d", st.MaxMaster)
	}
	if st.CollectCycles == 0 {
		t.Errorf("no collect cycles recorded")
	}
}
