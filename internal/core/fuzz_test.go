package core

import (
	"encoding/binary"
	"testing"
)

// FuzzShardPipeline fuzzes the collect pipeline's pure stages — ring
// buffering, per-node routing tags, shard routing, sort/dedup, and
// mark sizing — against their invariants.  The seed corpus encodes the
// two regression families PR 2's bugs came from: non-power-of-two ring
// capacities driven across many wraps, and double retires (duplicate
// addresses that dedup must absorb exactly).
//
// Input encoding: byte 0 = shard count K (low 5 bits + 1), byte 1 =
// node count (low 3 bits + 1), byte 2 = ring capacity (low 4 bits +
// 1), then 8-byte little-endian words, each an address whose low 3
// bits select the retiring node (exactly how PerNode routing tags ring
// entries).
func FuzzShardPipeline(f *testing.F) {
	seed := func(k, nodes, ringCap byte, addrs ...uint64) {
		buf := []byte{k, nodes, ringCap}
		for _, a := range addrs {
			buf = binary.LittleEndian.AppendUint64(buf, a)
		}
		f.Add(buf)
	}
	// Non-power-of-two ring-wrap corpus (PR 2: staggered fills at
	// capacities where the index math cannot be a mask).
	seed(4, 1, 3, 8, 16, 24, 32, 40, 48, 56)
	seed(8, 2, 5, 100<<3, 101<<3, 102<<3, 103<<3, 104<<3, 105<<3)
	seed(1, 1, 7, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80)
	seed(16, 4, 11, 1<<12, 2<<12, 3<<12, 4<<12, 5<<12)
	// Double-retire corpus (PR 2: duplicates must be freed exactly
	// once, and the dup count must match the multiset).
	seed(4, 1, 4, 512, 512)
	seed(8, 2, 6, 1024, 2048, 1024, 2048, 1024)
	seed(2, 8, 9, 640|1, 640|2, 640|5) // same word, different node tags
	seed(32, 3, 13, 8, 8, 8, 8, 8, 8, 8, 8)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		k := int(data[0]&0x1F) + 1
		nodes := int(data[1]&0x07) + 1
		ringCap := int(data[2]&0x0F) + 1
		words := data[3:]

		// Decode the retire stream: word-aligned addresses tagged with
		// a node in the low bits, as freeRouted writes them.
		var tagged []uint64
		for len(words) >= 8 {
			w := binary.LittleEndian.Uint64(words)
			words = words[8:]
			addr := w &^ 7
			node := int(w&7) % nodes
			tagged = append(tagged, addr|uint64(node))
		}

		// Stage 1: ring buffering.  Push the stream through a bounded
		// ring with drains whenever it fills (the owner-drain pattern of
		// per-node routing); FIFO order and exact occupancy must hold at
		// every wrap offset, for any capacity.
		ring := NewRing(ringCap)
		var drained []uint64
		flush := func() {
			before := ring.Len()
			out, n := ring.Drain(nil)
			if n != before || len(out) != before {
				t.Fatalf("drain returned %d of %d buffered", n, before)
			}
			drained = append(drained, out...)
		}
		for _, v := range tagged {
			if !ring.Push(v) {
				if !ring.Full() || ring.Len() != ringCap {
					t.Fatalf("push refused while not full: len %d cap %d", ring.Len(), ringCap)
				}
				flush()
				if !ring.Push(v) {
					t.Fatal("push failed into freshly drained ring")
				}
			}
		}
		flush()
		if len(drained) != len(tagged) {
			t.Fatalf("ring lost values: %d of %d", len(drained), len(tagged))
		}
		for i, v := range drained {
			if v != tagged[i] {
				t.Fatalf("FIFO order broken at %d: %x != %x", i, v, tagged[i])
			}
		}

		// Stage 2: routing.  Untag and route into the shard set; the
		// routing must be a stable partition and home election (or
		// per-node setHomes) must stay in range.
		set := newShardSet(k, nodes)
		for _, v := range drained {
			addr := v &^ 7
			si := set.route(addr)
			if si < 0 || si >= set.k() || si != set.route(addr) {
				t.Fatalf("unstable or out-of-range route: %d of %d", si, set.k())
			}
			set.add(addr, int(v&7))
		}
		if set.total != len(drained) {
			t.Fatalf("shard set counted %d of %d adds", set.total, len(drained))
		}
		set.computeHomes()
		routed := 0
		for i := range set.sub {
			for _, a := range set.sub[i].buf {
				if set.route(a) != i {
					t.Fatalf("address %x landed outside its partition", a)
				}
			}
			if h := set.sub[i].home; h < 0 || h >= nodes {
				t.Fatalf("shard %d homed out of range: %d", i, h)
			}
			routed += len(set.sub[i].buf)
		}
		if routed != len(drained) {
			t.Fatalf("partition covers %d of %d addresses", routed, len(drained))
		}
		for n := 0; n < nodes; n++ {
			set.setHomes(n)
			for i := range set.sub {
				if set.sub[i].home != n {
					t.Fatalf("setHomes(%d) left shard %d on %d", n, i, set.sub[i].home)
				}
			}
		}

		// Stage 3: sort/dedup/mark per shard.  The dup count must match
		// the multiset, the output must be strictly sorted (so binary
		// probes are sound), dedup must be idempotent, and the mark
		// bitmap sized to the deduped buffer must cover every member a
		// probe could hit.
		for i := range set.sub {
			sh := &set.sub[i]
			uniq := map[uint64]int{}
			for _, a := range sh.buf {
				uniq[a]++
			}
			before := len(sh.buf)
			out, dups := sortDedup(sh.buf)
			if len(out) != len(uniq) || dups != before-len(uniq) {
				t.Fatalf("shard %d: dedup kept %d (want %d), dropped %d (want %d)",
					i, len(out), len(uniq), dups, before-len(uniq))
			}
			for j := 1; j < len(out); j++ {
				if out[j-1] >= out[j] {
					t.Fatalf("shard %d: not strictly sorted at %d", i, j)
				}
			}
			again, more := sortDedup(out)
			if more != 0 || len(again) != len(out) {
				t.Fatalf("shard %d: dedup not idempotent", i)
			}
			marks := make([]bool, len(out))
			for a := range uniq {
				lo, hi := 0, len(out)
				for lo < hi {
					mid := (lo + hi) / 2
					if out[mid] < a {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo >= len(out) || out[lo] != a {
					t.Fatalf("shard %d: member %x lost by dedup", i, a)
				}
				if lo >= len(marks) {
					t.Fatalf("shard %d: mark index %d outside bitmap %d", i, lo, len(marks))
				}
				marks[lo] = true
			}
			for j, m := range marks {
				if !m {
					t.Fatalf("shard %d: slot %d unreachable by any member probe", i, j)
				}
			}
			sh.buf = out
		}
	})
}
