package core

import (
	"testing"

	"threadscan/internal/simt"
)

// Per-node retirement routing and node-local reclaimers (Config.PerNode).

// pinnedChurners spawns workers pinned round-robin over both nodes,
// each churning n unreferenced nodes and flushing at the end.
func pinnedChurners(s *simt.Sim, ts *ThreadScan, workers, n int) {
	for w := 0; w < workers; w++ {
		node := w % 2
		th := s.Spawn("w", func(th *simt.Thread) {
			churn(ts, th, n)
			ts.FlushAll(th)
		})
		th.Pin(node)
	}
}

// TestPerNodeRoutingReclaimsAll: the routed pipeline keeps the classic
// guarantees — every retire is eventually reclaimed, nothing leaks —
// while both nodes demonstrably run their own collects and per-node
// reclaim accounting adds up.
func TestPerNodeRoutingReclaimsAll(t *testing.T) {
	for _, helpFree := range []bool{false, true} {
		s := numaSim(4, 2, 3)
		ts := New(s, Config{BufferSize: 32, Shards: 8, PerNode: true, HelpFree: helpFree})
		if !ts.PerNode() {
			t.Fatal("PerNode not active on a two-node machine")
		}
		pinnedChurners(s, ts, 4, 300)
		if err := s.Run(); err != nil {
			t.Fatalf("helpFree=%v: %v", helpFree, err)
		}
		if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
			t.Fatalf("helpFree=%v: leaked %d blocks", helpFree, lb)
		}
		st := ts.Stats()
		if st.Frees != st.Reclaimed+st.HelpFreed+st.DoubleRetires {
			t.Fatalf("helpFree=%v: lost nodes: %+v", helpFree, st)
		}
		if st.NodeCollects[0] == 0 || st.NodeCollects[1] == 0 {
			t.Fatalf("helpFree=%v: collects not per-node: %v", helpFree, st.NodeCollects)
		}
		var attributed uint64
		for _, r := range st.NodeReclaimed {
			attributed += r
		}
		if attributed != st.Reclaimed+st.HelpFreed {
			t.Fatalf("helpFree=%v: per-node reclaim attribution %d != %d freed",
				helpFree, attributed, st.Reclaimed+st.HelpFreed)
		}
		if ts.Buffered() != 0 {
			t.Fatalf("helpFree=%v: %d still buffered", helpFree, ts.Buffered())
		}
	}
}

// TestPerNodeSweepStaysLocal is the tentpole's central claim: with
// retirements routed to per-node shard groups and swept by node-local
// reclaimers, the steady-state sweep touches zero remotely-homed lines
// — where the classic globally-hashed pipeline, on the same pinned
// workload, pays remote fills for every line the reclaimer's socket
// did not retire.
func TestPerNodeSweepStaysLocal(t *testing.T) {
	run := func(perNode bool) Stats {
		s := numaSim(4, 2, 11)
		ts := New(s, Config{BufferSize: 32, Shards: 8, PerNode: perNode})
		pinnedChurners(s, ts, 4, 400)
		if err := s.Run(); err != nil {
			t.Fatalf("perNode=%v: %v", perNode, err)
		}
		if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
			t.Fatalf("perNode=%v: leaked %d blocks", perNode, lb)
		}
		return ts.Stats()
	}
	routed := run(true)
	classic := run(false)
	if routed.SweepRemoteFills != 0 {
		t.Errorf("per-node sweep paid %d remote fills, want 0", routed.SweepRemoteFills)
	}
	if classic.SweepRemoteFills == 0 {
		t.Errorf("classic pipeline paid no remote sweep fills — the contrast is vacuous")
	}
}

// TestPerNodeStealUnderSkew: when one node retires everything, the
// steal threshold decides whether the other node's threads share the
// work.  A tiny threshold must produce observable stealing (remote
// claims or stolen sweeps); a huge one must keep every claim local.
func TestPerNodeStealUnderSkew(t *testing.T) {
	run := func(steal int) Stats {
		s := numaSim(4, 2, 17)
		ts := New(s, Config{
			BufferSize: 16, Shards: 8, PerNode: true, HelpFree: true,
			StealThreshold: steal,
		})
		// Node 0 retires everything; node 1 only scans when signaled.
		done := false
		retirer := s.Spawn("retirer", func(th *simt.Thread) {
			churn(ts, th, 500)
			done = true
			ts.FlushAll(th)
		})
		retirer.Pin(0)
		for i := 0; i < 2; i++ {
			sc := s.Spawn("scanner", func(th *simt.Thread) {
				for !done {
					th.Work(500)
				}
			})
			sc.Pin(1)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("steal=%d: %v", steal, err)
		}
		if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
			t.Fatalf("steal=%d: leaked %d blocks", steal, lb)
		}
		return ts.Stats()
	}
	greedy := run(1)
	if greedy.StolenSweeps+greedy.RemoteShardClaims == 0 {
		t.Errorf("steal threshold 1 produced no cross-node help: %+v", greedy)
	}
	local := run(1 << 20)
	if local.StolenSweeps != 0 || local.StolenCollects != 0 || local.RemoteShardClaims != 0 {
		t.Errorf("huge steal threshold still stole: sweeps=%d collects=%d remote-claims=%d",
			local.StolenSweeps, local.StolenCollects, local.RemoteShardClaims)
	}
}

// TestPerNodeFlatMachineFallsBack: PerNode on a single-node machine is
// inert — the flat model's bit-identical contract must not depend on
// callers knowing the topology.
func TestPerNodeFlatMachineFallsBack(t *testing.T) {
	s := testSim(2, 5)
	ts := New(s, Config{BufferSize: 16, PerNode: true})
	if ts.PerNode() {
		t.Fatal("PerNode active on a flat machine")
	}
	s.Spawn("w", func(th *simt.Thread) {
		churn(ts, th, 100)
		if left := ts.FlushAll(th); left != 0 {
			t.Errorf("FlushAll left %d", left)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
		t.Fatalf("leaked %d blocks", lb)
	}
}

// TestPerNodeRemarkDoesNotRearmTrigger: marked (still-referenced)
// nodes re-buffer into the node's remark list, which must not count
// toward the collect trigger — pinned garbage sitting at the threshold
// would otherwise turn every subsequent ring drain into a futile
// signal-all collect (the per-node analog of the watermark storm).
func TestPerNodeRemarkDoesNotRearmTrigger(t *testing.T) {
	const trigger = 16
	s := numaSim(2, 2, 59)
	ts := New(s, Config{BufferSize: 8, PerNode: true, CollectWatermark: trigger})
	release := false
	pinned := false
	holder := s.Spawn("pinner", func(th *simt.Thread) {
		th.PushFrame(trigger)
		for i := 0; i < trigger; i++ {
			allocNode(th, 15, uint64(i))
			th.SetSlot(i, th.Reg(15))
			addr := th.Reg(15)
			th.SetReg(15, 0)
			ts.Free(th, addr)
		}
		pinned = true
		for !release {
			th.Pause()
		}
		for i := 0; i < trigger; i++ {
			th.SetSlot(i, 0)
		}
		th.PopFrame()
	})
	holder.Pin(0)
	worker := s.Spawn("worker", func(th *simt.Thread) {
		for !pinned {
			th.Pause()
		}
		churn(ts, th, 100)
		st := ts.Stats()
		// Ring drains happen every BufferSize frees; each may trip the
		// trigger at most once on fresh retirement.  A storm would run
		// a collect per drain *plus* one per remark re-buffer.
		if max := uint64(100/trigger + 100/8 + 3); st.Collects > max {
			t.Errorf("collect storm: %d collects for 100 frees (want <= %d)", st.Collects, max)
		}
		release = true
		for s.Heap().Stats().LiveBlocks > 0 {
			if ts.FlushAll(th) == 0 {
				break
			}
			th.Work(1000)
		}
		ts.FlushAll(th)
	})
	worker.Pin(0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
		t.Fatalf("leaked %d blocks", lb)
	}
}

// TestPerNodeChurnedThreadExitRoutes: a mid-run-spawned thread that
// exits with buffered retirements must route them (tagged with its
// inherited node) into the per-node sub-buffers — the routed analog of
// the orphan list — and a later collect must reclaim them.
func TestPerNodeChurnedThreadExitRoutes(t *testing.T) {
	s := numaSim(4, 2, 7)
	ts := New(s, Config{BufferSize: 1024, Shards: 4, PerNode: true})
	parent := s.Spawn("parent", func(th *simt.Thread) {
		for w := 0; w < 3; w++ {
			s.SpawnFrom(th, "churned", func(c *simt.Thread) {
				churn(ts, c, 40) // buffered only: ring 1024 never fills
			})
			th.Work(20_000)
		}
		th.Work(400_000) // let the children exit
		ts.Collect(th)
		if left := ts.FlushAll(th); left != 0 {
			t.Errorf("flush left %d", left)
		}
	})
	parent.Pin(1)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
		t.Fatalf("leaked %d blocks", lb)
	}
	st := ts.Stats()
	if st.Frees != 3*40 || st.Reclaimed+st.HelpFreed != st.Frees {
		t.Fatalf("stats: %+v", st)
	}
	// All churned children inherited node 1; their exits routed there.
	if st.NodeCollects[1] == 0 {
		t.Fatalf("no node-1 collect despite node-1 retirement: %v", st.NodeCollects)
	}
	if st.NodeReclaimed[0] != 0 {
		t.Fatalf("node-0 attributed %d reclaims; only node-1 threads retired", st.NodeReclaimed[0])
	}
}
