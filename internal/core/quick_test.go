package core

import (
	"testing"
	"testing/quick"

	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

// runLookupWorkload runs a fixed seeded workload under the given lookup
// kind and returns (reclaimed+helpFreed, remarked, leakedBlocks).
func runLookupWorkload(t *testing.T, kind LookupKind, seed int64) (uint64, uint64, uint64) {
	t.Helper()
	s := simt.New(simt.Config{
		Cores: 2, Quantum: 5_000, Seed: seed,
		MaxCycles: 60_000_000_000,
		Heap:      simmem.Config{Words: 1 << 19, Check: true, Poison: true},
	})
	ts := New(s, Config{BufferSize: 16, Lookup: kind})
	for w := 0; w < 3; w++ {
		s.Spawn("worker", func(th *simt.Thread) {
			for j := 0; j < 60; j++ {
				allocNode(th, 2, uint64(j))
				held := th.Reg(2)
				churn(ts, th, 4)
				th.SetReg(2, 0)
				ts.Free(th, held)
			}
			ts.FlushAll(th)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("lookup %v seed %d: %v", kind, seed, err)
	}
	st := ts.Stats()
	return st.Reclaimed + st.HelpFreed, st.Remarked, s.Heap().Stats().LiveBlocks
}

// TestQuickLookupKindsEquivalent: the three scan membership structures
// (binary search, linear scan, hash set) must produce identical
// reclamation decisions — they are cost-model variants of the same
// predicate (ablation A3).
func TestQuickLookupKindsEquivalent(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		fb, _, lb := runLookupWorkload(t, LookupBinary, seed)
		fl, _, ll := runLookupWorkload(t, LookupLinear, seed)
		fh, _, lh := runLookupWorkload(t, LookupHash, seed)
		if lb != 0 || ll != 0 || lh != 0 {
			t.Logf("seed %d leaked: %d %d %d", seed, lb, ll, lh)
			return false
		}
		// Every node retired was eventually reclaimed in each mode.
		return fb == fl && fl == fh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEventualReclamation (Lemma 4): for arbitrary small
// configurations, once references are dropped every retired node is
// freed and nothing leaks.
func TestQuickEventualReclamation(t *testing.T) {
	f := func(seed int64, bufRaw, threadsRaw uint8) bool {
		buf := int(bufRaw)%48 + 4
		n := int(threadsRaw)%4 + 1
		s := simt.New(simt.Config{
			Cores: 2, Quantum: 5_000, Seed: seed, Chaos: seed%2 == 0,
			MaxCycles: 60_000_000_000,
			Heap:      simmem.Config{Words: 1 << 19, Check: true, Poison: true},
		})
		ts := New(s, Config{BufferSize: buf})
		for w := 0; w < n; w++ {
			s.Spawn("worker", func(th *simt.Thread) {
				churn(ts, th, 150)
				ts.FlushAll(th)
			})
		}
		if err := s.Run(); err != nil {
			t.Log(err)
			return false
		}
		return s.Heap().Stats().LiveBlocks == 0 && ts.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
