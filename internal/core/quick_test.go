package core

import (
	"testing"
	"testing/quick"

	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

// runLookupWorkload runs a fixed seeded workload under the given lookup
// kind and returns (reclaimed+helpFreed, remarked, leakedBlocks).
func runLookupWorkload(t *testing.T, kind LookupKind, seed int64) (uint64, uint64, uint64) {
	t.Helper()
	s := simt.New(simt.Config{
		Cores: 2, Quantum: 5_000, Seed: seed,
		MaxCycles: 60_000_000_000,
		Heap:      simmem.Config{Words: 1 << 19, Check: true, Poison: true},
	})
	ts := New(s, Config{BufferSize: 16, Lookup: kind})
	for w := 0; w < 3; w++ {
		s.Spawn("worker", func(th *simt.Thread) {
			for j := 0; j < 60; j++ {
				allocNode(th, 2, uint64(j))
				held := th.Reg(2)
				churn(ts, th, 4)
				th.SetReg(2, 0)
				ts.Free(th, held)
			}
			ts.FlushAll(th)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("lookup %v seed %d: %v", kind, seed, err)
	}
	st := ts.Stats()
	return st.Reclaimed + st.HelpFreed, st.Remarked, s.Heap().Stats().LiveBlocks
}

// TestQuickLookupKindsEquivalent: the three scan membership structures
// (binary search, linear scan, hash set) must produce identical
// reclamation decisions — they are cost-model variants of the same
// predicate (ablation A3).
func TestQuickLookupKindsEquivalent(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		fb, _, lb := runLookupWorkload(t, LookupBinary, seed)
		fl, _, ll := runLookupWorkload(t, LookupLinear, seed)
		fh, _, lh := runLookupWorkload(t, LookupHash, seed)
		if lb != 0 || ll != 0 || lh != 0 {
			t.Logf("seed %d leaked: %d %d %d", seed, lb, ll, lh)
			return false
		}
		// Every node retired was eventually reclaimed in each mode.
		return fb == fl && fl == fh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShardRoutePartition: routing is a partition of the address
// space — every address maps to exactly one in-range shard,
// deterministically, and adding n addresses distributes exactly n nodes
// with each one findable in (only) its routed shard.
func TestQuickShardRoutePartition(t *testing.T) {
	f := func(kRaw uint8, addrsRaw []uint32) bool {
		set := newShardSet(int(kRaw)%32+1, 1)
		for _, raw := range addrsRaw {
			addr := uint64(raw) &^ 7
			i := set.route(addr)
			if i < 0 || i >= set.k() || i != set.route(addr) {
				return false
			}
			set.add(addr, 0)
		}
		if set.total != len(addrsRaw) {
			return false
		}
		n := 0
		for i := range set.sub {
			for _, a := range set.sub[i].buf {
				if set.route(a) != i {
					return false // landed outside its partition
				}
			}
			n += len(set.sub[i].buf)
		}
		return n == len(addrsRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortDedupIdempotent: sortDedup yields a sorted duplicate-free
// buffer whose dup count matches the multiset, and applying it to its
// own output changes nothing.
func TestQuickSortDedupIdempotent(t *testing.T) {
	f := func(raw []uint16) bool {
		buf := make([]uint64, len(raw))
		uniq := map[uint64]bool{}
		for i, v := range raw {
			buf[i] = uint64(v) &^ 7
			uniq[buf[i]] = true
		}
		out, dups := sortDedup(buf)
		if len(out) != len(uniq) || dups != len(raw)-len(uniq) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false
			}
		}
		again, more := sortDedup(out)
		if more != 0 || len(again) != len(out) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShardedEquivalent: the sharded pipeline must make the same
// reclamation decisions as the serial collect — K only repartitions the
// master buffer, it never changes the membership predicate.
func TestQuickShardedEquivalent(t *testing.T) {
	run := func(seed int64, shards int) (uint64, uint64) {
		s := simt.New(simt.Config{
			Cores: 2, Quantum: 5_000, Seed: seed,
			MaxCycles: 60_000_000_000,
			Heap:      simmem.Config{Words: 1 << 19, Check: true, Poison: true},
		})
		ts := New(s, Config{BufferSize: 16, Shards: shards})
		for w := 0; w < 3; w++ {
			s.Spawn("worker", func(th *simt.Thread) {
				for j := 0; j < 60; j++ {
					allocNode(th, 2, uint64(j))
					held := th.Reg(2)
					churn(ts, th, 4)
					th.SetReg(2, 0)
					ts.Free(th, held)
				}
				ts.FlushAll(th)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("shards %d seed %d: %v", shards, seed, err)
		}
		if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
			t.Fatalf("shards %d seed %d: leaked %d", shards, seed, lb)
		}
		st := ts.Stats()
		return st.Frees, st.Reclaimed + st.HelpFreed
	}
	f := func(seedRaw uint8, kRaw uint8) bool {
		seed := int64(seedRaw)
		k := 2 << (kRaw % 4) // 2..16
		f1, r1 := run(seed, 1)
		fk, rk := run(seed, k)
		return f1 == fk && r1 == rk && f1 == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEventualReclamation (Lemma 4): for arbitrary small
// configurations, once references are dropped every retired node is
// freed and nothing leaks.
func TestQuickEventualReclamation(t *testing.T) {
	f := func(seed int64, bufRaw, threadsRaw uint8) bool {
		buf := int(bufRaw)%48 + 4
		n := int(threadsRaw)%4 + 1
		s := simt.New(simt.Config{
			Cores: 2, Quantum: 5_000, Seed: seed, Chaos: seed%2 == 0,
			MaxCycles: 60_000_000_000,
			Heap:      simmem.Config{Words: 1 << 19, Check: true, Poison: true},
		})
		ts := New(s, Config{BufferSize: buf})
		for w := 0; w < n; w++ {
			s.Spawn("worker", func(th *simt.Thread) {
				churn(ts, th, 150)
				ts.FlushAll(th)
			})
		}
		if err := s.Run(); err != nil {
			t.Log(err)
			return false
		}
		return s.Heap().Stats().LiveBlocks == 0 && ts.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
