package core

// Node-tagged ring entries.
//
// Per-node retirement routing (pernode.go) rides the retiring thread's
// NUMA node in the low three bits of a word-aligned address, so a ring
// entry is NOT an address until it has been masked.  The tag layout —
// which bits, how many nodes — lives in this file and nowhere else;
// the tagptr analyzer (internal/lint) rejects inline re-masking and
// any use of an unmasked entry as an address.

// entryTagMask covers the low bits that carry the node tag; word
// alignment guarantees real addresses have them clear.
const entryTagMask = MaxRoutedNodes - 1

// tagEntry packs an address and its retiring node into one ring entry.
func tagEntry(addr uint64, node int) uint64 {
	return addr | uint64(node)
}

// entryAddr recovers the address from a tagged ring entry.
func entryAddr(v uint64) uint64 {
	return v &^ entryTagMask
}

// entryNode recovers the retiring node from a tagged ring entry.
func entryNode(v uint64) int {
	return int(v & entryTagMask)
}
