// Package core implements ThreadScan (Alistarh, Leiserson, Matveev,
// Shavit — SPAA'15): automatic concurrent memory reclamation by
// signal-driven stack scanning.
//
// The protocol, exactly as in the paper's Algorithm 1 plus the §4.2
// implementation details:
//
//   - Each thread owns a bounded delete buffer (an SPSC ring).  Free
//     appends the retired node; the node must already be unlinked
//     (Assumption 1.1).
//   - When a thread's buffer is full it becomes the reclaimer: it takes
//     the reclamation lock, aggregates every thread's buffer into a
//     sorted master buffer, and signals all other threads (TS-Collect).
//   - Each signaled thread — in its signal handler, wherever it happens
//     to be, including blocked in a lock or spinning in application
//     code — scans its registers and stack word by word, binary-searches
//     each word in the master buffer, marks hits, and ACKs (TS-Scan).
//   - The reclaimer scans itself, waits for all ACKs, then frees every
//     unmarked node.  Marked nodes may still be referenced and are
//     re-buffered for the next phase.
//
// The §4.3 extension (AddHeapBlock/RemoveHeapBlock) lets a thread
// register private heap regions to be scanned along with its stack, and
// the §7 future-work idea — sharing free() work with scanners — is
// implemented behind Config.HelpFree for ablation.
package core

import (
	"fmt"
	"sort"

	"threadscan/internal/simt"
)

// DefaultBufferSize is the per-thread delete buffer capacity used in the
// paper's evaluation ("configured to store up to 1024 pointers per
// thread", §6).
const DefaultBufferSize = 1024

// LookupKind selects how TS-Scan tests a stack word for membership in
// the master buffer.  The paper sorts and binary-searches (§4.1); the
// alternatives exist for the A3 ablation.
type LookupKind int

const (
	// LookupBinary sorts the master buffer and binary-searches each
	// word (the paper's design).
	LookupBinary LookupKind = iota
	// LookupLinear scans the master buffer linearly per word.
	LookupLinear
	// LookupHash builds a hash set over the master buffer.
	LookupHash
)

func (k LookupKind) String() string {
	switch k {
	case LookupBinary:
		return "binary"
	case LookupLinear:
		return "linear"
	case LookupHash:
		return "hash"
	default:
		return fmt.Sprintf("LookupKind(%d)", int(k))
	}
}

// Config parameterizes a ThreadScan instance.
type Config struct {
	// BufferSize is the per-thread delete buffer capacity.  Defaults to
	// DefaultBufferSize (1024); the paper tunes 4096 for the
	// oversubscribed hash table.
	BufferSize int

	// Signal is the simulated signal number used for scan requests.
	Signal simt.SigNum

	// Lookup selects the scan membership structure (ablation A3).
	Lookup LookupKind

	// HelpFree enables the paper's §7 future-work extension: unmarked
	// nodes are queued and freed in chunks by the *next* phase's
	// scanners instead of all by the reclaimer, trading reclaimer
	// latency for handler work.
	HelpFree bool

	// HelpFreeChunk is how many queued nodes one scanner frees per
	// TS-Scan when HelpFree is on.  Defaults to 128.
	HelpFreeChunk int
}

func (c *Config) fill() {
	if c.BufferSize <= 0 {
		c.BufferSize = DefaultBufferSize
	}
	if c.HelpFreeChunk <= 0 {
		c.HelpFreeChunk = 128
	}
}

// Stats aggregates protocol activity.
type Stats struct {
	Frees           uint64 // nodes handed to Free
	Collects        uint64 // reclamation phases
	AvoidedCollects uint64 // buffer drained while waiting for the lock
	Reclaimed       uint64 // nodes freed to the allocator
	Remarked        uint64 // nodes found referenced, re-buffered
	ScannedWords    uint64 // stack+register+heap-block words examined
	ScannedThreads  uint64 // TS-Scan executions (incl. reclaimer's own)
	HelpFreed       uint64 // nodes freed by scanners (HelpFree mode)
	MaxMaster       int    // largest master buffer seen
	HandlerCycles   int64  // virtual cycles spent inside scan handlers
	CollectCycles   int64  // virtual cycles spent inside TS-Collect
}

// ThreadScan is one reclamation domain shared by all threads of a
// simulation.  Create it with New before Sim.Run; it hooks thread
// start/exit and installs the scan signal handler.
type ThreadScan struct {
	sim *simt.Sim
	cfg Config

	lock *simt.Mutex // at most one reclaimer (paper §4.2)

	perThread  []*tsThread
	registered []bool

	// Collect state (valid while lock is held).
	master   []uint64
	marks    []bool
	hashSet  map[uint64]int
	acksGot  int
	acksNeed int

	orphans     []uint64 // buffered nodes of exited threads
	pendingFree []uint64 // HelpFree: unmarked nodes awaiting the next phase
	helpQueue   []uint64 // HelpFree: queue scanners drain during this phase

	stats Stats
}

// tsThread is the per-thread state.
type tsThread struct {
	ring       *Ring
	heapBlocks [][2]uint64 // {startAddr, words} private regions (§4.3)
}

// New creates a ThreadScan domain bound to sim and installs its hooks.
// Call before sim.Run.
func New(sim *simt.Sim, cfg Config) *ThreadScan {
	cfg.fill()
	ts := &ThreadScan{sim: sim, cfg: cfg, lock: sim.NewMutex("threadscan.reclaim")}
	sim.SetSignalHandler(cfg.Signal, ts.scanHandler)
	sim.OnThreadStart(ts.threadStart)
	sim.OnThreadExit(ts.threadExit)
	return ts
}

// Stats returns a snapshot of protocol counters.
func (ts *ThreadScan) Stats() Stats { return ts.stats }

// BufferSize returns the per-thread delete buffer capacity.
func (ts *ThreadScan) BufferSize() int { return ts.cfg.BufferSize }

// threadStart registers a thread with the domain (the analog of the
// paper's pthread_create hook).
func (ts *ThreadScan) threadStart(t *simt.Thread) {
	ts.lock.Lock(t)
	id := t.ID()
	for len(ts.perThread) <= id {
		ts.perThread = append(ts.perThread, nil)
		ts.registered = append(ts.registered, false)
	}
	ts.perThread[id] = &tsThread{ring: NewRing(ts.cfg.BufferSize)}
	ts.registered[id] = true
	ts.lock.Unlock(t)
}

// threadExit deregisters a thread, moving its unprocessed buffer to the
// orphan list so its nodes are still reclaimed by future collects.
func (ts *ThreadScan) threadExit(t *simt.Thread) {
	ts.lock.Lock(t)
	id := t.ID()
	ts.registered[id] = false
	var n int
	ts.orphans, n = ts.perThread[id].ring.Drain(ts.orphans)
	t.Charge(int64(n) * ts.costs().Load)
	ts.lock.Unlock(t)
}

// Free is the paper's free(): hand an *unlinked* node to the
// reclamation domain.  The node must be unreachable from shared memory
// (Assumption 1.1); ThreadScan decides when it is safe to deallocate.
// When the calling thread's buffer is full, Free triggers TS-Collect
// and does not return until the phase completes.
func (ts *ThreadScan) Free(t *simt.Thread, addr uint64) {
	addr &^= 7 // tolerate mark bits; the buffer stores node bases
	c := ts.costs()
	t.Charge(c.Store + c.Step)
	ts.stats.Frees++
	tt := ts.perThread[t.ID()]
	if tt.ring.Push(addr) {
		return
	}
	// Buffer full: become the reclaimer (or discover someone else just
	// drained us while we waited for the lock — paper §4.2: "a thread
	// waiting to become a reclaimer will probably discover that its
	// buffer has been drained ... and that it can go back to work").
	ts.lock.Lock(t)
	if tt.ring.Push(addr) {
		ts.stats.AvoidedCollects++
		ts.lock.Unlock(t)
		return
	}
	ts.collect(t)
	if !tt.ring.Push(addr) {
		// The collect re-buffered more marked (still-referenced) nodes
		// than the ring holds; park the newcomer with the orphans, the
		// next master buffer includes both.
		ts.orphans = append(ts.orphans, addr)
	}
	ts.lock.Unlock(t)
}

// Collect forces a reclamation phase from thread t, regardless of
// buffer occupancy.  Used by tests, teardown, and the harness.
func (ts *ThreadScan) Collect(t *simt.Thread) {
	ts.lock.Lock(t)
	ts.collect(t)
	ts.lock.Unlock(t)
}

// AddHeapBlock registers a thread-private heap region to be scanned
// along with t's stack and registers (§4.3 extension).  startAddr must
// be word-aligned; length is in bytes.
func (ts *ThreadScan) AddHeapBlock(t *simt.Thread, startAddr uint64, length int) {
	if startAddr%8 != 0 {
		panic("core: AddHeapBlock start not word-aligned")
	}
	tt := ts.perThread[t.ID()]
	tt.heapBlocks = append(tt.heapBlocks, [2]uint64{startAddr, uint64((length + 7) / 8)})
	t.Charge(ts.costs().Store)
}

// RemoveHeapBlock unregisters a region previously added by AddHeapBlock.
func (ts *ThreadScan) RemoveHeapBlock(t *simt.Thread, startAddr uint64, length int) {
	tt := ts.perThread[t.ID()]
	want := [2]uint64{startAddr, uint64((length + 7) / 8)}
	for i, b := range tt.heapBlocks {
		if b == want {
			tt.heapBlocks = append(tt.heapBlocks[:i], tt.heapBlocks[i+1:]...)
			t.Charge(ts.costs().Store)
			return
		}
	}
	panic("core: RemoveHeapBlock of unregistered block")
}

// RegisteredThreads returns the number of threads currently registered
// with the domain (start-hooked but not yet exit-hooked).  After a
// simulation completes it must be zero: a nonzero count means a thread
// exited without deregistering — the leak thread-churn tests hunt for.
func (ts *ThreadScan) RegisteredThreads() int {
	n := 0
	for _, r := range ts.registered {
		if r {
			n++
		}
	}
	return n
}

// Buffered returns the number of retired-but-unreclaimed nodes across
// all buffers (diagnostics and leak accounting).
func (ts *ThreadScan) Buffered() int {
	n := len(ts.orphans) + len(ts.pendingFree) + len(ts.helpQueue)
	for _, tt := range ts.perThread {
		if tt != nil {
			n += tt.ring.Len()
		}
	}
	return n
}

// FlushAll runs collect phases from thread t until no buffered nodes
// remain or progress stops (nodes still referenced by live threads).
// It returns the number of nodes still buffered.  Intended for
// teardown, after application threads have dropped their references.
func (ts *ThreadScan) FlushAll(t *simt.Thread) int {
	for i := 0; i < 4; i++ {
		if ts.Buffered() == 0 {
			return 0
		}
		before := ts.stats.Reclaimed + ts.stats.HelpFreed
		ts.lock.Lock(t)
		ts.collect(t)
		// collect defers this phase's unmarked nodes under HelpFree;
		// at teardown, free them immediately.
		for _, addr := range ts.pendingFree {
			ts.freeNode(t, addr)
		}
		ts.pendingFree = ts.pendingFree[:0]
		ts.lock.Unlock(t)
		if ts.stats.Reclaimed+ts.stats.HelpFreed == before {
			break
		}
	}
	return ts.Buffered()
}

func (ts *ThreadScan) costs() simt.CostModel { return ts.sim.Config().Costs }

// collect is TS-Collect (Algorithm 1, lines 1–16).  Caller holds the
// reclamation lock.
func (ts *ThreadScan) collect(t *simt.Thread) {
	c := ts.costs()
	start := t.Cycles()
	ts.stats.Collects++

	// HelpFree: the previous phase's unmarked nodes become this phase's
	// help queue — scanners free chunks of it inside their handlers
	// (§7: "TS-Scan would then check to see whether there are any
	// pending nodes to free (from a previous iteration)").
	ts.helpQueue = append(ts.helpQueue, ts.pendingFree...)
	ts.pendingFree = ts.pendingFree[:0]

	// Aggregate all delete buffers into the master buffer (§4.2's
	// distributed-buffer design).
	ts.master = ts.master[:0]
	for id, tt := range ts.perThread {
		if tt == nil || !ts.registered[id] {
			continue
		}
		var n int
		ts.master, n = tt.ring.Drain(ts.master)
		t.Charge(int64(n) * (c.Load + c.Step))
	}
	if len(ts.orphans) > 0 {
		ts.master = append(ts.master, ts.orphans...)
		t.Charge(int64(len(ts.orphans)) * (c.Load + c.Step))
		ts.orphans = ts.orphans[:0]
	}
	if len(ts.master) == 0 {
		return
	}
	if len(ts.master) > ts.stats.MaxMaster {
		ts.stats.MaxMaster = len(ts.master)
	}

	// Sort (Algorithm 1 line 2) so scans can binary-search.
	switch ts.cfg.Lookup {
	case LookupBinary, LookupLinear:
		sort.Slice(ts.master, func(i, j int) bool { return ts.master[i] < ts.master[j] })
		t.Charge(int64(len(ts.master)) * int64(log2ceil(len(ts.master))) * 2 * c.Step)
	case LookupHash:
		if ts.hashSet == nil {
			ts.hashSet = make(map[uint64]int, len(ts.master))
		} else {
			clear(ts.hashSet)
		}
		for i, a := range ts.master {
			ts.hashSet[a] = i
		}
		t.Charge(int64(len(ts.master)) * (c.Store + 2*c.Step))
	}
	if cap(ts.marks) < len(ts.master) {
		ts.marks = make([]bool, len(ts.master))
	} else {
		ts.marks = ts.marks[:len(ts.master)]
		for i := range ts.marks {
			ts.marks[i] = false
		}
	}

	// Signal every other registered thread (lines 3–5).  Exited threads
	// deregister under the lock, so everyone signaled will ACK.
	ts.acksGot, ts.acksNeed = 0, 0
	threads := ts.sim.Threads()
	for id := range ts.registered {
		if !ts.registered[id] || id == t.ID() {
			continue
		}
		if t.Signal(threads[id], ts.cfg.Signal) {
			ts.acksNeed++
		}
	}

	// Scan our own stack and registers (line 7).
	ts.scanThread(t)

	// Wait for all ACKs (line 9).  The wait burns reclaimer cycles —
	// the cost Figure 4 charges to oversubscription.
	for ts.acksGot < ts.acksNeed {
		t.Pause()
	}

	// Sweep (lines 11–15): free unmarked nodes, re-buffer marked ones.
	// Under HelpFree, unmarked nodes are deferred to the next phase's
	// scanners instead of being freed here.
	tt := ts.perThread[t.ID()]
	for i, addr := range ts.master {
		if ts.marks[i] {
			ts.stats.Remarked++
			if !tt.ring.Push(addr) {
				ts.orphans = append(ts.orphans, addr)
			}
			t.Charge(c.Store)
			continue
		}
		if ts.cfg.HelpFree {
			ts.pendingFree = append(ts.pendingFree, addr)
			t.Charge(c.Store)
		} else {
			ts.freeNode(t, addr)
		}
	}
	// Whatever this phase's scanners did not help-free, the reclaimer
	// finishes, bounding deferral to one phase.
	ts.drainHelpQueue(t)
	ts.stats.CollectCycles += t.Cycles() - start
}

// freeNode returns a proven-unreferenced node to the allocator.
func (ts *ThreadScan) freeNode(t *simt.Thread, addr uint64) {
	t.FreeAddr(addr)
	ts.stats.Reclaimed++
}

// drainHelpQueue frees every remaining help-queue node.  The queue is
// stolen in one step (atomic between safepoints) because freeNode
// passes safepoints, during which scanners' helpFree could otherwise
// pop — and double-free — the same entries.
func (ts *ThreadScan) drainHelpQueue(t *simt.Thread) {
	q := ts.helpQueue
	ts.helpQueue = nil
	for _, addr := range q {
		ts.freeNode(t, addr)
	}
}

// scanHandler is TS-Scan (Algorithm 1, lines 18–26), run in the signal
// handler of every signaled thread.
func (ts *ThreadScan) scanHandler(t *simt.Thread) {
	h0 := t.HandlerCycles()
	if ts.cfg.HelpFree {
		ts.helpFree(t)
	}
	ts.scanThread(t)
	// ACK (line 25): a store visible to the reclaimer.
	c := ts.costs()
	t.Charge(c.Store + c.Fence)
	ts.acksGot++
	ts.stats.HandlerCycles += t.HandlerCycles() - h0
}

// helpFree frees up to one chunk of the previous phase's unmarked nodes
// (§7 future work).  Safe for any thread: queued nodes are already
// proven unreferenced.
func (ts *ThreadScan) helpFree(t *simt.Thread) {
	n := ts.cfg.HelpFreeChunk
	if n > len(ts.helpQueue) {
		n = len(ts.helpQueue)
	}
	for i := 0; i < n; i++ {
		// Pop before freeing: FreeAddr passes a safepoint, and another
		// scanner (or the reclaimer's drain) must not see this entry.
		addr := ts.helpQueue[len(ts.helpQueue)-1]
		ts.helpQueue = ts.helpQueue[:len(ts.helpQueue)-1]
		t.FreeAddr(addr)
		ts.stats.HelpFreed++
	}
}

// scanThread scans t's registers, stack, and registered heap blocks
// against the master buffer, marking hits.
func (ts *ThreadScan) scanThread(t *simt.Thread) {
	ts.stats.ScannedThreads++
	words := 0
	t.ScanRoots(func(w uint64) {
		words++
		ts.probe(t, w)
	})
	for _, blk := range ts.perThread[t.ID()].heapBlocks {
		for i := uint64(0); i < blk[1]; i++ {
			w := t.LoadAddr(blk[0] + i*8)
			words++
			ts.probe(t, w)
		}
	}
	ts.stats.ScannedWords += uint64(words)
}

// probe masks the word's low-order bits (§4.2 "Pointer Operations") and
// looks it up in the master buffer, marking on a hit.  The three lookup
// structures are semantically identical; they differ only in cost.
func (ts *ThreadScan) probe(t *simt.Thread, w uint64) {
	c := ts.costs()
	t.Charge(2 * c.Step) // mask + range check
	p := w &^ 7
	if p == 0 || !ts.sim.Heap().Contains(p) {
		return
	}
	idx := -1
	switch ts.cfg.Lookup {
	case LookupBinary:
		lo, hi := 0, len(ts.master)
		for lo < hi {
			mid := (lo + hi) / 2
			t.Charge(c.Load + c.Step)
			if ts.master[mid] < p {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ts.master) && ts.master[lo] == p {
			idx = lo
		}
	case LookupLinear:
		for i, a := range ts.master {
			t.Charge(c.Load)
			if a == p {
				idx = i
				break
			}
		}
	case LookupHash:
		t.Charge(c.Load + 3*c.Step)
		if i, ok := ts.hashSet[p]; ok {
			idx = i
		}
	}
	if idx >= 0 && !ts.marks[idx] {
		ts.marks[idx] = true
		t.Charge(c.Store)
	}
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
