// Package core implements ThreadScan (Alistarh, Leiserson, Matveev,
// Shavit — SPAA'15): automatic concurrent memory reclamation by
// signal-driven stack scanning.
//
// The protocol, exactly as in the paper's Algorithm 1 plus the §4.2
// implementation details:
//
//   - Each thread owns a bounded delete buffer (an SPSC ring).  Free
//     appends the retired node; the node must already be unlinked
//     (Assumption 1.1).
//   - When a thread's buffer is full it becomes the reclaimer: it takes
//     the reclamation lock, aggregates every thread's buffer into a
//     sorted master buffer, and signals all other threads (TS-Collect).
//   - Each signaled thread — in its signal handler, wherever it happens
//     to be, including blocked in a lock or spinning in application
//     code — scans its registers and stack word by word, binary-searches
//     each word in the master buffer, marks hits, and ACKs (TS-Scan).
//   - The reclaimer scans itself, waits for all ACKs, then frees every
//     unmarked node.  Marked nodes may still be referenced and are
//     re-buffered for the next phase.
//
// The §4.3 extension (AddHeapBlock/RemoveHeapBlock) lets a thread
// register private heap regions to be scanned along with its stack.
//
// Beyond the paper, TS-Collect scales out as a sharded, scanner-assisted
// pipeline: Config.Shards splits the master buffer into K address-sharded
// sub-buffers (see shard.go) that are sorted and swept as independently
// claimable units, Config.CollectWatermark adds an adaptive global
// trigger so a collect can start before any single ring fills, and the
// §7 future-work idea — sharing reclamation work with scanners — grows
// from the original HelpFree chunk queue into a general help protocol:
// scanners claim whole shards to sort before scanning, and (under
// HelpFree) claim whole per-shard free lists to sweep.  With Shards <= 1
// and the watermark off, the protocol is bit-identical in virtual-cycle
// charges to the paper's serial collect.
//
// On a multi-node topology, Config.PerNode restructures the pipeline
// once more (see pernode.go): retirements are routed to per-node shard
// groups at Free time and each node runs its own reclaimer over its own
// group, with a cross-node handshake only at the scan barrier.
package core

import (
	"fmt"

	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// DefaultBufferSize is the per-thread delete buffer capacity used in the
// paper's evaluation ("configured to store up to 1024 pointers per
// thread", §6).
const DefaultBufferSize = 1024

// LookupKind selects how TS-Scan tests a stack word for membership in
// the master buffer.  The paper sorts and binary-searches (§4.1); the
// alternatives exist for the A3 ablation.
type LookupKind int

const (
	// LookupBinary sorts the master buffer and binary-searches each
	// word (the paper's design).
	LookupBinary LookupKind = iota
	// LookupLinear scans the master buffer linearly per word.
	LookupLinear
	// LookupHash builds a hash set over the master buffer.
	LookupHash
)

func (k LookupKind) String() string {
	switch k {
	case LookupBinary:
		return "binary"
	case LookupLinear:
		return "linear"
	case LookupHash:
		return "hash"
	default:
		return fmt.Sprintf("LookupKind(%d)", int(k))
	}
}

// ClaimPolicy selects the order in which threads claim shard work
// units — sort claims in the scan handler, sweep-list claims under
// HelpFree — when the simulated machine has more than one NUMA node.
type ClaimPolicy int

const (
	// ClaimAffinity (the default) claims local work first: shards
	// homed on the claiming thread's node, then remote shards as a
	// work-stealing fallback so no unit waits on an idle node and the
	// help protocol keeps its wait-free-ish progress.
	ClaimAffinity ClaimPolicy = iota
	// ClaimRoundRobin ignores topology and claims in index order —
	// the pre-topology behaviour, kept as the A6 ablation's control.
	ClaimRoundRobin
)

func (p ClaimPolicy) String() string {
	switch p {
	case ClaimAffinity:
		return "affinity"
	case ClaimRoundRobin:
		return "rr"
	default:
		return fmt.Sprintf("ClaimPolicy(%d)", int(p))
	}
}

// Config parameterizes a ThreadScan instance.
type Config struct {
	// BufferSize is the per-thread delete buffer capacity.  Defaults to
	// DefaultBufferSize (1024); the paper tunes 4096 for the
	// oversubscribed hash table.
	BufferSize int

	// Signal is the simulated signal number used for scan requests.
	Signal simt.SigNum

	// Lookup selects the scan membership structure (ablation A3).
	Lookup LookupKind

	// Shards is K, the number of address-sharded master sub-buffers the
	// collect pipeline uses (rounded up to a power of two).  1 (the
	// default) reproduces the paper's single serial master buffer
	// exactly; larger K shrinks per-probe search depth and lets
	// scanners claim shards to sort inside their handlers.
	Shards int

	// CollectWatermark, when positive, triggers a collect as soon as
	// the *global* buffered count (all rings plus orphans) reaches the
	// watermark, instead of only when one thread's own ring fills.
	// Under skewed retirement this spreads reclaimer duty across
	// threads; 0 (the default) disables the trigger.
	CollectWatermark int

	// HelpFree enables the paper's §7 future-work extension: unmarked
	// nodes are queued and freed by the *next* phase's scanners instead
	// of all by the reclaimer, trading reclaimer latency for handler
	// work.  With Shards <= 1 scanners drain chunks of one queue; with
	// sharding they claim per-shard lists, chunk-bounded the same way.
	HelpFree bool

	// HelpFreeChunk caps how many queued nodes one scanner frees per
	// TS-Scan when HelpFree is on.  Defaults to 128.
	HelpFreeChunk int

	// Claim is the shard-claim order under a multi-node topology.
	// Irrelevant (and free of any effect on cycle charges) when the
	// simulation has a single node.
	Claim ClaimPolicy

	// PerNode enables per-node retirement routing and node-local
	// reclaimers (see pernode.go).  Free tags each retired address with
	// the retiring thread's NUMA node; a full ring is drained by its
	// *owner* into per-node sub-buffers (ring → home-node sub-buffer),
	// and each node runs its own collects over its own single-node
	// shard group — the only cross-node synchronization is the scan
	// barrier handshake.  Requires a multi-node topology (silently
	// inert when the machine is flat, keeping the flat model
	// bit-identical) and at most 8 nodes (the tag rides in the ring
	// entry's low three bits).
	PerNode bool

	// StealThreshold is the per-node backlog (in buffered addresses) at
	// which other nodes start stealing reclamation work under PerNode —
	// the rebalancing story for one-node-retires-everything skew.
	// Below it, sort and sweep work stays strictly node-local (remote
	// scanners scan but do not claim); above it, remote threads collect
	// for the overloaded node, help-sort its shards, and sweep its
	// deferred lists, trading remote fills for bounded memory.
	// Defaults to 4x the largest per-node collect trigger (which is
	// CollectWatermark/nodes when the watermark is set, else
	// BufferSize x the node's core count).
	StealThreshold int

	// SerializeCollects forces per-node collects back onto one
	// machine-wide reclamation lock — the pre-overlap pipeline, kept as
	// the A9 ablation's control.  By default (false) PerNode collects on
	// different nodes run truly concurrently: each node's reclaimer owns
	// a per-node collect slot, handshake, and shard group (see
	// overlap.go), and the only cross-node rendezvous is the scan
	// barrier.  Irrelevant when PerNode is off.
	SerializeCollects bool

	// Obs, when non-nil, records collect-lifecycle spans (trigger,
	// signal broadcast, scan, handshake wait, shard sort, sweep, free)
	// against the recorder.  Recording never charges virtual cycles, so
	// attaching a recorder cannot change any simulation outcome; nil
	// (the default) makes every recording site a no-op.
	Obs *obs.Recorder
}

func (c *Config) fill() {
	if c.BufferSize <= 0 {
		c.BufferSize = DefaultBufferSize
	}
	if c.HelpFreeChunk <= 0 {
		c.HelpFreeChunk = 128
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Stats aggregates protocol activity.
type Stats struct {
	Frees           uint64 // nodes handed to Free
	Collects        uint64 // reclamation phases
	AvoidedCollects uint64 // buffer drained while waiting for the lock
	Reclaimed       uint64 // nodes freed to the allocator
	Remarked        uint64 // nodes found referenced, re-buffered
	ScannedWords    uint64 // stack+register+heap-block words examined
	ScannedThreads  uint64 // TS-Scan executions (incl. reclaimer's own)
	HelpFreed       uint64 // nodes freed by scanners (HelpFree mode)
	MaxMaster       int    // largest master buffer seen

	DoubleRetires     uint64 // duplicate retires of one address absorbed by dedup
	WatermarkCollects uint64 // collects triggered by the global watermark
	ShardsSorted      uint64 // shard prepare passes (== Collects when K == 1)
	HelpSortedShards  uint64 // shards prepared by scanners, not the reclaimer
	HelpSweptShards   uint64 // per-shard free lists claimed by scanners

	// Claim locality under a multi-node topology (zero when flat).
	// Every claim of a shard work unit — a prepare (sort) claim or a
	// HelpFree sweep-list claim — counts as local when the claiming
	// thread's node matches the shard's home, else remote.
	LocalShardClaims  uint64
	RemoteShardClaims uint64

	// SweepRemoteFills counts sweep-side frees (reclaimer sweeps, drain
	// mop-ups, and scanner help-frees) that touched a line homed on a
	// *different* node than the freeing thread — the cross-socket
	// traffic per-node routing exists to eliminate.  Zero on the flat
	// machine; with PerNode on and an affinity claim order it is zero
	// by construction on pinned workloads.  Teardown drains (FlushAll)
	// are excluded: flushing every node from one thread is a one-time
	// cross-node sweep by design, not a steady-state cost.
	SweepRemoteFills uint64

	// Per-node reclaimer accounting (PerNode mode only; nil otherwise).
	// NodeCollects[n] counts collect phases run over node n's shard
	// group; NodeReclaimed[n] counts nodes freed out of node-n-homed
	// work units (by any thread).
	NodeCollects  []uint64
	NodeReclaimed []uint64

	// Steal accounting under PerNode: collects run for a node by a
	// thread of another node, and sweep lists drained cross-node, both
	// gated by Config.StealThreshold.  With concurrent collects
	// (SerializeCollects off) a steal additionally requires the target
	// node's collect slot to be free — TryLock arbitration means a
	// stolen collect never targets a node whose own reclaimer is
	// active, and never blocks an idle node's own collect.
	StolenCollects uint64
	StolenSweeps   uint64

	// OverlappedCollects counts collect phases that began while at
	// least one other node's collect was already in flight — the
	// concurrency the per-node collect slots exist to admit.  Always
	// zero under SerializeCollects (and in classic mode).
	OverlappedCollects uint64

	HandlerCycles int64 // virtual cycles spent inside scan handlers
	CollectCycles int64 // virtual cycles spent inside TS-Collect
}

// ThreadScan is one reclamation domain shared by all threads of a
// simulation.  Create it with New before Sim.Run; it hooks thread
// start/exit and installs the scan signal handler.
type ThreadScan struct {
	sim *simt.Sim
	cfg Config
	obs *obs.Recorder // == cfg.Obs; nil-safe on every call

	lock *simt.Mutex // at most one reclaimer (paper §4.2)

	perThread  []*tsThread
	registered []bool

	// Collect state (valid while lock is held).
	shards      *shardSet
	scratch     []uint64        // ring-drain staging
	hs          *simt.Handshake // the scan barrier (ACK handshake)
	reclaimerID int             // thread driving the current collect (help attribution)

	// Per-node reclamation state (PerNode mode; see pernode.go).
	// nodeBuf[n] is node n's home sub-buffer — addresses routed there
	// at Free time, single-node by construction.  nodeRemark[n] holds
	// node n's re-buffered marked (still-referenced) nodes; like the
	// classic path's ringCount exclusion, they do not count toward the
	// collect trigger, or pinned garbage would arm it permanently.
	perNode     bool
	collecting  int // node of the in-flight per-node collect (-1 idle)
	nodeBuf     [][]uint64
	nodeRemark  [][]uint64
	nodeTrigger []int // per-node sub-buffer size that triggers a collect
	stealAt     int   // per-node backlog at which remote stealing engages

	// Concurrent per-node collects (PerNode without SerializeCollects;
	// see overlap.go).  nc[n] is node n's independent collect pipeline —
	// its own admission lock, scan handshake, shard group, and sweep
	// lists — so collects on different nodes overlap; the machine-wide
	// lock above then guards only thread registration.
	overlap bool
	nc      []*nodeCollect

	// ringCount approximates the number of nodes buffered since the
	// last collect began (fresh retirement pressure) for the watermark
	// trigger; a real implementation would keep it in a relaxed atomic.
	// Remarked re-buffers deliberately do not count: nodes pinned by
	// live references would otherwise hold the count above the
	// watermark and turn every subsequent Free into a futile collect.
	ringCount int

	// nodes caches sim.Nodes(); 1 disables every topology code path.
	nodes int

	orphans []uint64 // buffered nodes of exited threads
	// orphanHome attributes each orphan to the NUMA node of the thread
	// that parked it, in lockstep with orphans.  Nil when flat.
	orphanHome []int8

	// HelpFree state.  pendingFree/helpQueue is the classic single
	// chunked queue (Shards <= 1); pendingShards/helpShards hold whole
	// per-shard free lists — each tagged with its shard's home node —
	// that scanners claim under the sharded pipeline.
	pendingFree   []uint64
	helpQueue     []uint64
	pendingShards []freeList
	helpShards    []freeList

	stats Stats
}

// freeList is one claimable sweep unit: the unmarked nodes of one
// shard, tagged with the shard's home node so claimers can prefer
// sweeping locally-homed lines.  claimed marks that the unit has been
// counted in the claim-locality stats, so a chunk-bounded remainder
// re-appended for the next helper is not counted again.
type freeList struct {
	addrs   []uint64
	home    int
	claimed bool
}

// tsThread is the per-thread state.
type tsThread struct {
	ring       *Ring
	heapBlocks [][2]uint64 // {startAddr, words} private regions (§4.3)
	inFlush    bool        // inside FlushAll (this thread's teardown sweeps skip steal/fill stats)
}

// New creates a ThreadScan domain bound to sim and installs its hooks.
// Call before sim.Run.
func New(sim *simt.Sim, cfg Config) *ThreadScan {
	cfg.fill()
	ts := &ThreadScan{
		sim:        sim,
		cfg:        cfg,
		obs:        cfg.Obs,
		lock:       sim.NewMutex("threadscan.reclaim"),
		shards:     newShardSet(cfg.Shards, sim.Nodes()),
		hs:         sim.NewHandshake("threadscan.scan"),
		nodes:      sim.Nodes(),
		collecting: -1,
	}
	if cfg.PerNode && ts.nodes > 1 {
		if ts.nodes > MaxRoutedNodes {
			panic(fmt.Sprintf("core: PerNode routing supports at most %d nodes (node tag rides in the ring entry's low bits), got %d",
				MaxRoutedNodes, ts.nodes))
		}
		ts.perNode = true
		ts.nodeBuf = make([][]uint64, ts.nodes)
		ts.nodeRemark = make([][]uint64, ts.nodes)
		// One reclaimer per node needs one trigger per node.  With the
		// watermark set, the global threshold splits evenly across
		// nodes; otherwise the default matches the classic cadence —
		// a node collects once its threads (approximated by its cores)
		// have each buffered about one ring's worth.
		ts.nodeTrigger = make([]int, ts.nodes)
		maxTrigger := 1
		for n := range ts.nodeTrigger {
			tr := cfg.CollectWatermark / ts.nodes
			if cfg.CollectWatermark <= 0 {
				lo, hi := sim.NodeCores(n)
				tr = cfg.BufferSize * (hi - lo)
			}
			if tr < 1 {
				tr = 1
			}
			ts.nodeTrigger[n] = tr
			if tr > maxTrigger {
				maxTrigger = tr
			}
		}
		ts.stealAt = cfg.StealThreshold
		if ts.stealAt <= 0 {
			ts.stealAt = 4 * maxTrigger
		}
		ts.stats.NodeCollects = make([]uint64, ts.nodes)
		ts.stats.NodeReclaimed = make([]uint64, ts.nodes)
		if !cfg.SerializeCollects {
			ts.overlap = true
			ts.nc = make([]*nodeCollect, ts.nodes)
			for n := range ts.nc {
				ts.nc[n] = &nodeCollect{
					node:        n,
					lock:        sim.NewMutex(fmt.Sprintf("threadscan.reclaim.n%d", n)),
					hs:          sim.NewHandshake(fmt.Sprintf("threadscan.scan.n%d", n)),
					shards:      newShardSet(cfg.Shards, ts.nodes),
					reclaimerID: -1,
				}
			}
		}
	}
	sim.SetSignalHandler(cfg.Signal, ts.scanHandler)
	sim.OnThreadStart(ts.threadStart)
	sim.OnThreadExit(ts.threadExit)
	return ts
}

// Stats returns a snapshot of protocol counters.  The per-node slices
// are copied so the snapshot stays stable while collects continue.
func (ts *ThreadScan) Stats() Stats {
	st := ts.stats
	st.NodeCollects = append([]uint64(nil), ts.stats.NodeCollects...)
	st.NodeReclaimed = append([]uint64(nil), ts.stats.NodeReclaimed...)
	return st
}

// PerNode reports whether per-node retirement routing is active (the
// config asked for it and the machine has more than one node).
func (ts *ThreadScan) PerNode() bool { return ts.perNode }

// BufferSize returns the per-thread delete buffer capacity.
func (ts *ThreadScan) BufferSize() int { return ts.cfg.BufferSize }

// Shards returns the collect pipeline's shard count K.
func (ts *ThreadScan) Shards() int { return ts.shards.k() }

// threadStart registers a thread with the domain (the analog of the
// paper's pthread_create hook).
func (ts *ThreadScan) threadStart(t *simt.Thread) {
	ts.lock.Lock(t)
	id := t.ID()
	for len(ts.perThread) <= id {
		ts.perThread = append(ts.perThread, nil)
		ts.registered = append(ts.registered, false)
	}
	ts.perThread[id] = &tsThread{ring: NewRing(ts.cfg.BufferSize)}
	ts.registered[id] = true
	ts.lock.Unlock(t)
}

// threadExit deregisters a thread, moving its unprocessed buffer to the
// orphan list so its nodes are still reclaimed by future collects.
// ringCount is unchanged: orphans stay part of the global buffered
// count.
func (ts *ThreadScan) threadExit(t *simt.Thread) {
	ts.lock.Lock(t)
	if ts.overlap {
		// An in-flight collect's scan barrier may count this thread.
		// Hold every node's collect slot (ascending — the one global
		// lock order) so no phase is mid-handshake when we vanish; the
		// waits are interruptible, so pending scan requests are still
		// answered — and acked — from right here, and by the time all
		// slots are held no handshake wants us.
		for _, nc := range ts.nc {
			nc.lock.Lock(t)
		}
	}
	id := t.ID()
	ts.registered[id] = false
	if ts.overlap {
		ts.routeRing(t, ts.perThread[id])
		for i := len(ts.nc) - 1; i >= 0; i-- {
			ts.nc[i].lock.Unlock(t)
		}
		ts.lock.Unlock(t)
		return
	}
	if ts.perNode {
		// Routed mode has no orphan list: the exiting thread's buffered
		// entries carry their node tags, so they drain straight into the
		// per-node sub-buffers they were destined for (routeRing charges
		// the copy).
		ts.routeRing(t, ts.perThread[id])
		ts.lock.Unlock(t)
		return
	}
	var n int
	ts.orphans, n = ts.perThread[id].ring.Drain(ts.orphans)
	if ts.nodes > 1 {
		node := int8(t.Node())
		for i := 0; i < n; i++ {
			ts.orphanHome = append(ts.orphanHome, node)
		}
	}
	t.Charge(int64(n) * ts.costs().Load)
	ts.lock.Unlock(t)
}

// Free is the paper's free(): hand an *unlinked* node to the
// reclamation domain.  The node must be unreachable from shared memory
// (Assumption 1.1); ThreadScan decides when it is safe to deallocate.
// When the calling thread's buffer is full — or, with the watermark
// trigger enabled, when the global buffered count crosses the
// watermark — Free triggers TS-Collect and does not return until the
// phase completes.
func (ts *ThreadScan) Free(t *simt.Thread, addr uint64) {
	addr &^= 7 // tolerate mark bits; the buffer stores node bases
	c := ts.costs()
	t.Charge(c.Store + c.Step)
	ts.stats.Frees++
	tt := ts.perThread[t.ID()]
	if ts.perNode {
		ts.freeRouted(t, tt, addr)
		return
	}
	if tt.ring.Push(addr) {
		ts.ringCount++
		if ts.cfg.CollectWatermark > 0 {
			t.Charge(c.Load) // read the shared buffered-count estimate
			if ts.ringCount >= ts.cfg.CollectWatermark {
				ts.lock.Lock(t)
				if ts.ringCount >= ts.cfg.CollectWatermark {
					ts.stats.WatermarkCollects++
					ts.obs.Instant(t, obs.KindWatermark)
					ts.collect(t)
				} else {
					// Another reclaimer collected while we waited.
					ts.stats.AvoidedCollects++
				}
				ts.lock.Unlock(t)
			}
		}
		return
	}
	// Buffer full: become the reclaimer (or discover someone else just
	// drained us while we waited for the lock — paper §4.2: "a thread
	// waiting to become a reclaimer will probably discover that its
	// buffer has been drained ... and that it can go back to work").
	ts.lock.Lock(t)
	if tt.ring.Push(addr) {
		ts.ringCount++
		ts.stats.AvoidedCollects++
		ts.lock.Unlock(t)
		return
	}
	ts.obs.Instant(t, obs.KindTrigger)
	ts.collect(t)
	ts.ringCount++
	if !tt.ring.Push(addr) {
		// The collect re-buffered more marked (still-referenced) nodes
		// than the ring holds; park the newcomer with the orphans, the
		// next master buffer includes both.
		ts.parkOrphan(t, addr)
	}
	ts.lock.Unlock(t)
}

// parkOrphan appends addr to the orphan list, attributed to the NUMA
// node of the parking thread for shard-home election.
func (ts *ThreadScan) parkOrphan(t *simt.Thread, addr uint64) {
	ts.orphans = append(ts.orphans, addr)
	if ts.nodes > 1 {
		ts.orphanHome = append(ts.orphanHome, int8(t.Node()))
	}
}

// Collect forces a reclamation phase from thread t, regardless of
// buffer occupancy.  Used by tests, teardown, and the harness.  Under
// per-node routing it routes every live ring and collects each node
// with backlog (ascending node order, for determinism).
func (ts *ThreadScan) Collect(t *simt.Thread) {
	if ts.overlap {
		ts.collectForced(t)
		return
	}
	ts.lock.Lock(t)
	if ts.perNode {
		ts.routeAllRings(t)
		ran := false
		for n := range ts.nodeBuf {
			if len(ts.nodeBuf[n])+len(ts.nodeRemark[n]) > 0 {
				ts.collectNode(t, n)
				ran = true
			}
		}
		if !ran {
			// Nothing routed anywhere: still run one (empty) phase so a
			// forced collect ticks the HelpFree carry-over, as in the
			// classic path.
			ts.collectNode(t, t.Node())
		}
	} else {
		ts.collect(t)
	}
	ts.lock.Unlock(t)
}

// AddHeapBlock registers a thread-private heap region to be scanned
// along with t's stack and registers (§4.3 extension).  startAddr must
// be word-aligned; length is in bytes.
func (ts *ThreadScan) AddHeapBlock(t *simt.Thread, startAddr uint64, length int) {
	if startAddr%8 != 0 {
		panic("core: AddHeapBlock start not word-aligned")
	}
	tt := ts.perThread[t.ID()]
	tt.heapBlocks = append(tt.heapBlocks, [2]uint64{startAddr, uint64((length + 7) / 8)})
	t.Charge(ts.costs().Store)
}

// RemoveHeapBlock unregisters a region previously added by AddHeapBlock.
func (ts *ThreadScan) RemoveHeapBlock(t *simt.Thread, startAddr uint64, length int) {
	tt := ts.perThread[t.ID()]
	want := [2]uint64{startAddr, uint64((length + 7) / 8)}
	for i, b := range tt.heapBlocks {
		if b == want {
			tt.heapBlocks = append(tt.heapBlocks[:i], tt.heapBlocks[i+1:]...)
			t.Charge(ts.costs().Store)
			return
		}
	}
	panic("core: RemoveHeapBlock of unregistered block")
}

// RegisteredThreads returns the number of threads currently registered
// with the domain (start-hooked but not yet exit-hooked).  After a
// simulation completes it must be zero: a nonzero count means a thread
// exited without deregistering — the leak thread-churn tests hunt for.
func (ts *ThreadScan) RegisteredThreads() int {
	n := 0
	for _, r := range ts.registered {
		if r {
			n++
		}
	}
	return n
}

// Buffered returns the number of retired-but-unreclaimed nodes across
// all buffers (diagnostics and leak accounting).
func (ts *ThreadScan) Buffered() int {
	n := len(ts.orphans) + len(ts.pendingFree) + len(ts.helpQueue)
	for _, list := range ts.pendingShards {
		n += len(list.addrs)
	}
	for _, list := range ts.helpShards {
		n += len(list.addrs)
	}
	for _, tt := range ts.perThread {
		if tt != nil {
			n += tt.ring.Len()
		}
	}
	for i := range ts.nodeBuf {
		n += len(ts.nodeBuf[i]) + len(ts.nodeRemark[i])
	}
	for _, nc := range ts.nc {
		for _, list := range nc.pending {
			n += len(list.addrs)
		}
		for _, list := range nc.help {
			n += len(list.addrs)
		}
	}
	return n
}

// FlushAll runs collect phases from thread t until no buffered nodes
// remain or progress stops (nodes still referenced by live threads).
// It returns the number of nodes still buffered.  Intended for
// teardown, after application threads have dropped their references.
func (ts *ThreadScan) FlushAll(t *simt.Thread) int {
	// Mark this thread (not the domain) as flushing: its teardown
	// sweeps are excluded from the steady-state locality stats, while
	// other threads' concurrent genuine collects keep counting.
	if tt := ts.perThread[t.ID()]; tt != nil {
		tt.inFlush = true
		defer func() { tt.inFlush = false }()
	}
	for i := 0; i < 4; i++ {
		if ts.Buffered() == 0 {
			return 0
		}
		before := ts.stats.Reclaimed + ts.stats.HelpFreed
		ts.lock.Lock(t)
		if ts.overlap {
			ts.flushOverlap(t)
		} else if ts.perNode {
			ts.routeAllRings(t)
			for n := range ts.nodeBuf {
				if len(ts.nodeBuf[n])+len(ts.nodeRemark[n]) > 0 {
					ts.collectNode(t, n)
				}
			}
			// At teardown, unclaimed sweep lists of *every* node are
			// drained here, steal threshold notwithstanding.
			ts.drainHelpQueue(t)
		} else {
			ts.collect(t)
		}
		// collect defers this phase's unmarked nodes under HelpFree;
		// at teardown, free them immediately.
		for _, addr := range ts.pendingFree {
			ts.freeNode(t, addr)
		}
		ts.pendingFree = ts.pendingFree[:0]
		for _, list := range ts.pendingShards {
			for _, addr := range list.addrs {
				ts.freeNode(t, addr)
				if ts.perNode {
					ts.stats.NodeReclaimed[list.home]++
				}
			}
		}
		ts.pendingShards = ts.pendingShards[:0]
		ts.lock.Unlock(t)
		if ts.stats.Reclaimed+ts.stats.HelpFreed == before {
			break
		}
	}
	return ts.Buffered()
}

func (ts *ThreadScan) costs() simt.CostModel { return ts.sim.Config().Costs }

// collect is TS-Collect (Algorithm 1, lines 1–16), run as a sharded
// pipeline: aggregate into K address-sharded sub-buffers, prepare
// (sort+dedup) each shard as an independently claimable unit, scan,
// sweep shard by shard.  Caller holds the reclamation lock.
func (ts *ThreadScan) collect(t *simt.Thread) {
	c := ts.costs()
	start := t.Cycles()
	ts.stats.Collects++
	ts.reclaimerID = t.ID()
	ts.obs.Begin(t, obs.StageCollect)
	defer ts.obs.End(t)

	// HelpFree: the previous phase's unmarked nodes become this phase's
	// help queue — scanners free them inside their handlers (§7:
	// "TS-Scan would then check to see whether there are any pending
	// nodes to free (from a previous iteration)").
	ts.helpQueue = append(ts.helpQueue, ts.pendingFree...)
	ts.pendingFree = ts.pendingFree[:0]
	ts.helpShards = append(ts.helpShards, ts.pendingShards...)
	ts.pendingShards = ts.pendingShards[:0]

	// Aggregate all delete buffers into the sharded master buffer
	// (§4.2's distributed-buffer design).  K=1 drains straight into
	// the single shard — no routing, no staging copy on the hot path.
	// Each drained address votes for the NUMA node of the thread that
	// buffered it (the ring owner's node at drain time — exact for
	// pinned threads, the retirer's last node otherwise), electing
	// every shard's home for the affinity-first claim order.
	ts.shards.reset()
	k1 := ts.shards.k() == 1
	multiNode := ts.nodes > 1
	threads := ts.sim.Threads()
	for id, tt := range ts.perThread {
		if tt == nil || !ts.registered[id] {
			continue
		}
		node := 0
		if multiNode {
			node = threads[id].Node()
		}
		var n int
		if k1 {
			sh := &ts.shards.sub[0]
			sh.buf, n = tt.ring.Drain(sh.buf)
			ts.shards.total += n
			if multiNode {
				sh.votes[node] += uint32(n)
			}
		} else {
			ts.scratch, n = tt.ring.Drain(ts.scratch[:0])
			for _, a := range ts.scratch {
				ts.shards.add(a, node)
			}
		}
		t.Charge(int64(n) * (c.Load + c.Step))
	}
	if len(ts.orphans) > 0 {
		if k1 {
			sh := &ts.shards.sub[0]
			sh.buf = append(sh.buf, ts.orphans...)
			ts.shards.total += len(ts.orphans)
			if multiNode {
				for _, h := range ts.orphanHome {
					sh.votes[h]++
				}
			}
		} else {
			for i, a := range ts.orphans {
				node := 0
				if multiNode {
					node = int(ts.orphanHome[i])
				}
				ts.shards.add(a, node)
			}
		}
		t.Charge(int64(len(ts.orphans)) * (c.Load + c.Step))
		ts.orphans = ts.orphans[:0]
		ts.orphanHome = ts.orphanHome[:0]
	}
	ts.shards.computeHomes()
	ts.ringCount = 0
	if ts.shards.total == 0 {
		// Nothing new to scan, but outstanding HelpFree work deferred
		// by the previous phase must still be finished — teardown
		// reaches here with empty rings and a populated help queue,
		// which would otherwise leak permanently.
		ts.drainHelpQueue(t)
		ts.stats.CollectCycles += t.Cycles() - start
		return
	}
	if ts.shards.total > ts.stats.MaxMaster {
		ts.stats.MaxMaster = ts.shards.total
	}

	if ts.shards.k() == 1 {
		// The paper's serial order: sort (Algorithm 1 line 2), then
		// signal (lines 3–5).
		ts.prepareShard(t, 0)
		ts.signalPeers(t)
	} else {
		// Pipelined order: signal first, sort lazily.  Every probe
		// (ours and the scanners') prepares its target shard on demand,
		// and each handler additionally claims a fair share of shards
		// to sort, so the sort work the paper serializes on the
		// reclaimer overlaps the scan phase across all signaled
		// threads.
		ts.signalPeers(t)
	}

	// Scan our own stack and registers (line 7).
	ts.scanThread(t)

	// Wait for all ACKs (line 9) — the scan barrier.  The wait burns
	// reclaimer cycles: the cost Figure 4 charges to oversubscription.
	ts.obs.Begin(t, obs.StageHandshake)
	ts.hs.Await(t)
	ts.obs.End(t)

	// Prepare whatever shards no probe touched and no scanner claimed
	// (their nodes are unmarked by definition — nothing probed them —
	// but the sweep still needs them sorted, deduped, and mark-sized).
	if ts.shards.k() > 1 {
		for i := range ts.shards.sub {
			ts.prepareShard(t, i)
		}
	}

	// Sweep (lines 11–15): free unmarked nodes, re-buffer marked ones.
	// Under HelpFree, unmarked nodes are deferred to the next phase's
	// scanners instead of being freed here — as one chunked queue when
	// unsharded, as whole claimable per-shard lists when sharded.
	tt := ts.perThread[t.ID()]
	ts.obs.Begin(t, obs.StageSweep)
	for si := range ts.shards.sub {
		sh := &ts.shards.sub[si]
		var deferred []uint64
		for i, addr := range sh.buf {
			if sh.marks[i] {
				ts.stats.Remarked++
				if !tt.ring.Push(addr) {
					ts.parkOrphan(t, addr)
				}
				t.Charge(c.Store)
				continue
			}
			if !ts.cfg.HelpFree {
				ts.freeNode(t, addr)
				continue
			}
			if ts.shards.k() == 1 {
				ts.pendingFree = append(ts.pendingFree, addr)
			} else {
				deferred = append(deferred, addr)
			}
			t.Charge(c.Store)
		}
		if len(deferred) > 0 {
			ts.pendingShards = append(ts.pendingShards, freeList{addrs: deferred, home: sh.home})
		}
	}
	ts.obs.End(t)
	// Whatever this phase's scanners did not help-free, the reclaimer
	// finishes, bounding deferral to one phase.
	ts.drainHelpQueue(t)
	ts.stats.CollectCycles += t.Cycles() - start
}

// signalPeers signals every other registered thread (Algorithm 1 lines
// 3–5).  Exited threads deregister under the lock, so everyone signaled
// will ACK.
func (ts *ThreadScan) signalPeers(t *simt.Thread) {
	ts.obs.Begin(t, obs.StageSignal)
	ts.hs.Arm()
	threads := ts.sim.Threads()
	for id := range ts.registered {
		if !ts.registered[id] || id == t.ID() {
			continue
		}
		if t.Signal(threads[id], ts.cfg.Signal) {
			ts.hs.Expect(1)
		}
	}
	ts.obs.End(t)
}

// prepareShard makes shard i probe-ready — sort+dedup (binary/linear)
// or hash-set build (hash), plus the mark bitmap — charging the paper's
// cost model to the preparing thread, which under sharding may be a
// scanner inside its handler rather than the reclaimer.  The prepare is
// atomic between safepoints, so a shard is claimed and prepared by
// exactly one thread.  Reports whether this call did the work.
func (ts *ThreadScan) prepareShard(t *simt.Thread, i int) bool {
	return ts.prepareShardIn(t, ts.shards, ts.reclaimerID, i)
}

// prepareShardIn is prepareShard over an explicit shard group: under
// concurrent collects each node's group prepares independently, and
// help attribution compares against that group's own reclaimer.
func (ts *ThreadScan) prepareShardIn(t *simt.Thread, ss *shardSet, reclaimerID, i int) bool {
	sh := &ss.sub[i]
	if sh.ready {
		return false
	}
	if len(sh.buf) == 0 {
		// Drop last collect's membership state: a stale hash entry (or
		// mark slot) must not let a probe "hit" in a now-empty shard.
		if sh.hash != nil {
			clear(sh.hash)
		}
		sh.marks = sh.marks[:0]
		sh.ready = true
		return false
	}
	ts.obs.Begin(t, obs.StageSort)
	c := ts.costs()
	n := len(sh.buf)
	switch ts.cfg.Lookup {
	case LookupBinary, LookupLinear:
		var dups int
		sh.buf, dups = sortDedup(sh.buf)
		t.Charge(int64(n) * int64(log2ceil(n)) * 2 * c.Step)
		if dups > 0 {
			ts.stats.DoubleRetires += uint64(dups)
			t.Charge(int64(dups) * c.Step)
		}
	case LookupHash:
		if sh.hash == nil {
			sh.hash = make(map[uint64]int, n)
		} else {
			clear(sh.hash)
		}
		kept := sh.buf[:0]
		for _, a := range sh.buf {
			if _, dup := sh.hash[a]; dup {
				ts.stats.DoubleRetires++
				t.Charge(c.Step)
				continue
			}
			sh.hash[a] = len(kept)
			kept = append(kept, a)
		}
		sh.buf = kept
		t.Charge(int64(n) * (c.Store + 2*c.Step))
	}
	if cap(sh.marks) < len(sh.buf) {
		sh.marks = make([]bool, len(sh.buf))
	} else {
		sh.marks = sh.marks[:len(sh.buf)]
		for j := range sh.marks {
			sh.marks[j] = false
		}
	}
	sh.ready = true
	ts.stats.ShardsSorted++
	if t.ID() != reclaimerID {
		ts.stats.HelpSortedShards++
	}
	ts.obs.End(t)
	return true
}

// countClaim records the locality of one *voluntary* help-protocol
// claim — a helpSort prepare or a helpFree sweep-list claim — against
// the claiming thread's node.  Forced prepares (probe-on-demand, the
// reclaimer's post-ACK mop-up) are not counted: the counters measure
// what the claim policy chose, not what the protocol compelled.  Pure
// bookkeeping — no cycle charge, and a no-op on the flat machine.
func (ts *ThreadScan) countClaim(t *simt.Thread, home int) {
	if ts.nodes <= 1 {
		return
	}
	if t.Node() == home {
		ts.stats.LocalShardClaims++
	} else {
		ts.stats.RemoteShardClaims++
	}
}

// freeNode returns a proven-unreferenced node to the allocator.  On a
// multi-node machine the free touches the block's line (poisoning and
// free-list relinking are stores), so sweeping a remotely-owned node
// pays the interconnect hop — the traffic the affinity-first claim
// order exists to avoid.
func (ts *ThreadScan) freeNode(t *simt.Thread, addr uint64) {
	if ts.nodes > 1 {
		ts.noteSweep(t, addr)
		t.Touch(addr)
	}
	t.FreeAddr(addr)
	ts.stats.Reclaimed++
}

// noteSweep records whether a sweep-side touch of addr will cross the
// interconnect: the line's current home is a different node than the
// freeing thread's.  Checked *before* the Touch, which migrates
// ownership.  Pure bookkeeping — no cycle charge.
func (ts *ThreadScan) noteSweep(t *simt.Thread, addr uint64) {
	if ts.flushing(t) {
		return
	}
	if h := ts.sim.LineHome(addr); h >= 0 && h != t.Node() {
		ts.stats.SweepRemoteFills++
	}
}

// flushing reports whether t is inside its own FlushAll — the teardown
// window whose deliberately cross-node sweeps stay out of the
// steady-state steal and fill statistics.
func (ts *ThreadScan) flushing(t *simt.Thread) bool {
	id := t.ID()
	return id < len(ts.perThread) && ts.perThread[id] != nil && ts.perThread[id].inFlush
}

// drainHelpQueue frees every remaining help-queue node — the chunked
// queue and any unclaimed per-shard lists.  Each is stolen in one step
// (atomic between safepoints) because freeNode passes safepoints,
// during which scanners' helpFree could otherwise pop — and double-free
// — the same entries.
func (ts *ThreadScan) drainHelpQueue(t *simt.Thread) {
	if len(ts.helpQueue) == 0 && len(ts.helpShards) == 0 {
		return
	}
	ts.obs.Begin(t, obs.StageFree)
	q := ts.helpQueue
	ts.helpQueue = nil
	for _, addr := range q {
		ts.freeNode(t, addr)
	}
	lists := ts.helpShards
	ts.helpShards = nil
	for _, list := range lists {
		for _, addr := range list.addrs {
			ts.freeNode(t, addr)
			if ts.perNode {
				ts.stats.NodeReclaimed[list.home]++
			}
		}
	}
	ts.obs.End(t)
}

// scanHandler is TS-Scan (Algorithm 1, lines 18–26), run in the signal
// handler of every signaled thread.  Under the sharded pipeline the
// handler is also where the help protocol runs: free a unit of the
// previous phase's queue, claim an unprepared shard to sort, then scan.
func (ts *ThreadScan) scanHandler(t *simt.Thread) {
	if ts.overlap {
		ts.scanHandlerOverlap(t)
		return
	}
	h0 := t.HandlerCycles()
	ts.obs.Begin(t, obs.StageScan)
	if ts.cfg.HelpFree {
		ts.helpFree(t)
	}
	if ts.shards.k() > 1 {
		ts.helpSort(t)
	}
	ts.scanThread(t)
	// ACK (line 25): a store visible to the reclaimer.
	c := ts.costs()
	t.Charge(c.Store + c.Fence)
	ts.hs.Ack(t)
	ts.obs.End(t)
	ts.stats.HandlerCycles += t.HandlerCycles() - h0
}

// helpSort claims a fair share of the unprepared shards — K divided by
// the number of scanning threads — and sorts them, sharing the sort
// work the paper serializes on the reclaimer.  Probing prepares further
// shards on demand; bounding the claim keeps one early scanner from
// hogging the whole pipeline inside a single quantum.
//
// Under ClaimAffinity on a multi-node machine the share is claimed
// local-first: shards homed on the scanner's node before remote ones,
// so sort work lands on the socket whose threads retired the
// addresses.  The remote pass is the work-stealing fallback — a
// scanner with no local work left still helps, so the protocol's
// progress guarantee is untouched; only the claim *order* changes.
func (ts *ThreadScan) helpSort(t *simt.Thread) {
	if ts.perNode && t.Node() != ts.collecting && ts.shards.total < ts.stealAt {
		// Per-node collect below the steal threshold: remote scanners
		// scan (they must — the barrier counts them) but leave the sort
		// work to the collecting node, keeping it free of remote fills.
		return
	}
	share := len(ts.shards.sub)/(ts.hs.Need()+1) + 1
	if ts.nodes > 1 && ts.cfg.Claim == ClaimAffinity {
		my := t.Node()
		for pass := 0; pass < 2; pass++ {
			local := pass == 0
			for i := range ts.shards.sub {
				if share == 0 {
					return
				}
				sh := &ts.shards.sub[i]
				if (sh.home == my) == local && !sh.ready && len(sh.buf) > 0 {
					ts.prepareShard(t, i)
					ts.countClaim(t, sh.home)
					share--
				}
			}
		}
		return
	}
	for i := range ts.shards.sub {
		if share == 0 {
			return
		}
		sh := &ts.shards.sub[i]
		if !sh.ready && len(sh.buf) > 0 {
			ts.prepareShard(t, i)
			ts.countClaim(t, sh.home)
			share--
		}
	}
}

// helpFree frees one HelpFreeChunk-bounded unit of the previous
// phase's unmarked nodes (§7 future work): from a claimed per-shard
// list under the sharded pipeline, else from the chunked queue.  Safe
// for any thread: queued nodes are already proven unreferenced.
//
// Under ClaimAffinity a scanner only claims sweep lists homed on its
// own node: freeing a node touches its line (the allocator poisons
// and relinks it), so sweeping a remote list would drag every freed
// line across the interconnect — strictly worse than leaving the list
// to a home-node scanner or to the reclaimer's end-of-phase drain,
// which finishes whatever no scanner claimed, on the same phase.
// That drain is the progress fallback; the claim policy only decides
// who sweeps sooner, never whether the memory is reclaimed.
func (ts *ThreadScan) helpFree(t *simt.Thread) {
	if len(ts.helpShards) == 0 && len(ts.helpQueue) == 0 {
		return
	}
	ts.obs.Begin(t, obs.StageFree)
	defer ts.obs.End(t)
	n := ts.cfg.HelpFreeChunk
	// Per-node routing enforces home-gated sweeping regardless of the
	// claim policy: StealThreshold's contract — below it, remote
	// scanners do not claim — is part of the routing design, not of
	// the A6 claim-order ablation, so the rr control may not bypass it
	// (and bypassing it would also dodge the StolenSweeps accounting).
	affinity := ts.nodes > 1 && (ts.cfg.Claim == ClaimAffinity || ts.perNode)
	for n > 0 && len(ts.helpShards) > 0 {
		// Claim a whole list before freeing (FreeAddr passes
		// safepoints, and no other helper — or the reclaimer's drain —
		// may see these entries), but cap the handler's total work at
		// one chunk: an oversized remainder goes back for the next
		// helper, preserving the bounded-handler-latency trade
		// HelpFreeChunk exists for.
		pick := len(ts.helpShards) - 1
		stolen := false
		if affinity {
			my := t.Node()
			pick = -1
			for i := len(ts.helpShards) - 1; i >= 0; i-- {
				if ts.helpShards[i].home == my {
					pick = i
					break
				}
			}
			if pick < 0 {
				if !ts.perNode || ts.deferredBacklog() < ts.stealAt {
					break // no local list; leave remote ones to their node
				}
				// Per-node mode with the deferred backlog past the steal
				// threshold: the home node is not keeping up, so sweep a
				// remote list anyway — bounded memory beats locality.
				pick = len(ts.helpShards) - 1
				stolen = true
			}
		}
		list := ts.helpShards[pick]
		ts.helpShards = append(ts.helpShards[:pick], ts.helpShards[pick+1:]...)
		if !list.claimed {
			list.claimed = true
			ts.countClaim(t, list.home) // once per work unit, at first claim
			if stolen {
				ts.stats.StolenSweeps++
			}
		}
		take := n
		if take > len(list.addrs) {
			take = len(list.addrs)
		}
		for i := 0; i < take; i++ {
			addr := list.addrs[len(list.addrs)-1]
			list.addrs = list.addrs[:len(list.addrs)-1]
			if ts.nodes > 1 {
				ts.noteSweep(t, addr)
				t.Touch(addr)
			}
			t.FreeAddr(addr)
			ts.stats.HelpFreed++
			if ts.perNode {
				ts.stats.NodeReclaimed[list.home]++
			}
		}
		n -= take
		if len(list.addrs) > 0 {
			ts.helpShards = append(ts.helpShards, list)
		} else {
			ts.stats.HelpSweptShards++
		}
	}
	if n > len(ts.helpQueue) {
		n = len(ts.helpQueue)
	}
	for i := 0; i < n; i++ {
		// Pop before freeing: FreeAddr passes a safepoint, and another
		// scanner (or the reclaimer's drain) must not see this entry.
		addr := ts.helpQueue[len(ts.helpQueue)-1]
		ts.helpQueue = ts.helpQueue[:len(ts.helpQueue)-1]
		if ts.nodes > 1 {
			ts.noteSweep(t, addr)
			t.Touch(addr)
		}
		t.FreeAddr(addr)
		ts.stats.HelpFreed++
	}
}

// deferredBacklog is the total address count across deferred and
// claimable per-shard sweep lists — the quantity the steal threshold
// compares against.
func (ts *ThreadScan) deferredBacklog() int {
	n := 0
	for _, list := range ts.helpShards {
		n += len(list.addrs)
	}
	for _, list := range ts.pendingShards {
		n += len(list.addrs)
	}
	return n
}

// scanThread scans t's registers, stack, and registered heap blocks
// against the master buffer, marking hits.
func (ts *ThreadScan) scanThread(t *simt.Thread) {
	ts.stats.ScannedThreads++
	words := 0
	t.ScanRoots(func(w uint64) {
		words++
		ts.probe(t, w)
	})
	for _, blk := range ts.perThread[t.ID()].heapBlocks {
		for i := uint64(0); i < blk[1]; i++ {
			w := t.LoadAddr(blk[0] + i*8)
			words++
			ts.probe(t, w)
		}
	}
	ts.stats.ScannedWords += uint64(words)
}

// probe masks the word's low-order bits (§4.2 "Pointer Operations"),
// routes it to its shard, and looks it up there, marking on a hit.  If
// the shard has not been prepared yet (sharded pipeline only), the
// probing thread claims and prepares it on the spot — scan-side help.
// The three lookup structures are semantically identical; they differ
// only in cost.
func (ts *ThreadScan) probe(t *simt.Thread, w uint64) {
	c := ts.costs()
	t.Charge(2 * c.Step) // mask + range check
	//tslint:ignore tagptr scanned-word pointer masking per paper §4.2, not a ring-entry tag
	p := w &^ 7
	if p == 0 || !ts.sim.Heap().Contains(p) {
		return
	}
	ts.probeAddr(t, ts.shards, ts.reclaimerID, p)
}

// probeAddr routes an in-heap, mask-cleaned address to its shard in ss
// and looks it up there, marking on a hit.  Split from probe so a
// single scan pass can probe several nodes' shard groups per word
// (shared scan epoch under concurrent collects) while charging the
// mask + range check only once.
func (ts *ThreadScan) probeAddr(t *simt.Thread, ss *shardSet, reclaimerID int, p uint64) {
	c := ts.costs()
	si := 0
	if ss.k() > 1 {
		t.Charge(c.Step) // shard routing: multiply + shift
		si = ss.route(p)
		if !ss.sub[si].ready {
			ts.prepareShardIn(t, ss, reclaimerID, si)
		}
	}
	sh := &ss.sub[si]
	idx := -1
	switch ts.cfg.Lookup {
	case LookupBinary:
		lo, hi := 0, len(sh.buf)
		for lo < hi {
			mid := (lo + hi) / 2
			t.Charge(c.Load + c.Step)
			if sh.buf[mid] < p {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(sh.buf) && sh.buf[lo] == p {
			idx = lo
		}
	case LookupLinear:
		for i, a := range sh.buf {
			t.Charge(c.Load)
			if a == p {
				idx = i
				break
			}
		}
	case LookupHash:
		t.Charge(c.Load + 3*c.Step)
		if i, ok := sh.hash[p]; ok {
			idx = i
		}
	}
	if idx >= 0 && !sh.marks[idx] {
		sh.marks[idx] = true
		t.Charge(c.Store)
	}
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
