package core

import (
	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// Per-node retirement routing and node-local reclaimers (Config.PerNode).
//
// The classic collect hashes every retired address into globally shared
// shards and elects a single reclaimer, so on a multi-node machine a
// shard's member addresses span sockets even when its home is clear,
// and the whole collect serializes on whichever socket the reclaimer
// happens to run — the cross-socket bottleneck the paper's scalability
// argument (and Hyaline's per-thread batch locality argument) warns
// about.  Per-node mode restructures the pipeline around the topology:
//
//   - Free tags each retired address with the retiring thread's NUMA
//     node in the ring entry's low three bits (word-aligned addresses
//     leave them free; maxRoutedNodes bounds the node count).  The tag
//     is taken at Free time, so an unpinned thread that migrates
//     attributes each retire exactly.
//   - A full ring is drained by its *owner* — ring → home-node
//     sub-buffer — so the SPSC ring becomes genuinely single-thread
//     and no reclaimer ever reads another thread's ring on the hot
//     path.  nodeBuf[n] therefore holds only node-n-retired addresses:
//     every shard built from it is single-node *by construction*, and
//     its sweep touches zero remote lines.
//   - Each node runs its own collects: the thread whose drain pushes
//     its node's sub-buffer past the trigger becomes that node's
//     reclaimer and collects over that node's shard group only.  The
//     scan barrier handshake (simt.Handshake) is the sole cross-node
//     synchronization — every thread still scans, because any thread
//     on any node may hold a reference to any address.
//   - Rebalancing under one-node-retires-everything skew: below
//     Config.StealThreshold all sort and sweep work stays node-local;
//     above it remote threads collect for the overloaded node
//     (StolenCollects), help-sort its shards, and sweep its deferred
//     lists (StolenSweeps) — bounded memory beats perfect locality.
//
// With PerNode off (or on a flat machine) none of this code runs and
// the protocol is bit-identical to the classic pipeline — the contract
// the captured-baseline replay test enforces.

// MaxRoutedNodes bounds the topology PerNode supports: the node tag
// rides in the low three bits of a word-aligned ring entry.  Exported
// so front ends (tsbench flag validation) share the single limit.
const MaxRoutedNodes = 8

// freeRouted is Free's per-node path: tag, buffer, and — when the
// owner's ring fills — drain to the home sub-buffers and check the
// collect triggers.  Caller has already charged the buffer store and
// counted the free.
func (ts *ThreadScan) freeRouted(t *simt.Thread, tt *tsThread, addr uint64) {
	tag := tagEntry(addr, t.Node())
	if tt.ring.Push(tag) {
		return
	}
	// Ring full: the owner routes its own buffer (no other thread ever
	// drains it in this mode), then retries the push — the ring is now
	// empty, so it cannot fail.
	ts.routeRing(t, tt)
	tt.ring.Push(tag)
	ts.maybeCollectRouted(t)
}

// routeRing drains tt's ring into the per-node sub-buffers by tag,
// charging the staging copy (one load + one store per entry).  The
// whole routine runs between safepoints, so it is atomic with respect
// to the simulation and needs no lock.
func (ts *ThreadScan) routeRing(t *simt.Thread, tt *tsThread) int {
	var n int
	ts.scratch, n = tt.ring.Drain(ts.scratch[:0])
	for _, v := range ts.scratch {
		node := entryNode(v)
		ts.nodeBuf[node] = append(ts.nodeBuf[node], entryAddr(v))
	}
	c := ts.costs()
	t.Charge(int64(n) * (c.Load + c.Store))
	return n
}

// routeAllRings routes every registered thread's ring (teardown and
// forced collects; the steady-state path never reads a remote ring).
// Caller holds the reclamation lock.
func (ts *ThreadScan) routeAllRings(t *simt.Thread) {
	for id, tt := range ts.perThread {
		if tt == nil || !ts.registered[id] {
			continue
		}
		ts.routeRing(t, tt)
	}
}

// maybeCollectRouted checks the collect triggers after a routing drain:
// the drainer's own node first (the common case — the thread that
// pushed its node's sub-buffer over the trigger is, by construction of
// the routing, a thread of that node), then any *remote* node whose
// backlog passed the steal threshold.  A remote node gets that far only
// when its own threads are not collecting — retirers that migrated
// away, or exited threads' routed buffers — and unbounded growth there
// is worse than a stolen, remote collect.
func (ts *ThreadScan) maybeCollectRouted(t *simt.Thread) {
	if ts.overlap {
		ts.maybeCollectOverlap(t)
		return
	}
	my := t.Node()
	if len(ts.nodeBuf[my]) >= ts.nodeTrigger[my] {
		ts.lock.Lock(t)
		if len(ts.nodeBuf[my]) >= ts.nodeTrigger[my] {
			if ts.cfg.CollectWatermark > 0 {
				ts.stats.WatermarkCollects++
				ts.obs.Instant(t, obs.KindWatermark)
			} else {
				ts.obs.Instant(t, obs.KindTrigger)
			}
			ts.collectNode(t, my)
		} else {
			// Another reclaimer collected while we waited (§4.2).
			ts.stats.AvoidedCollects++
		}
		ts.lock.Unlock(t)
	}
	for n := 0; n < ts.nodes; n++ {
		if n == my || len(ts.nodeBuf[n]) < ts.stealAt {
			continue
		}
		ts.lock.Lock(t)
		if len(ts.nodeBuf[n]) >= ts.stealAt {
			ts.stats.StolenCollects++
			ts.obs.Instant(t, obs.KindSteal)
			ts.collectNode(t, n)
		} else {
			ts.stats.AvoidedCollects++
		}
		ts.lock.Unlock(t)
	}
}

// collectNode is the per-node TS-Collect: one phase over node's shard
// group only.  Aggregation reads just that node's sub-buffer (plus its
// re-buffered marked nodes), every shard is homed on the node without
// an election, and the sweep — local by construction — re-buffers
// marked nodes into the node's remark list so pinned garbage cannot
// re-arm the trigger.  Caller holds the reclamation lock.
func (ts *ThreadScan) collectNode(t *simt.Thread, node int) {
	c := ts.costs()
	start := t.Cycles()
	ts.stats.Collects++
	ts.stats.NodeCollects[node]++
	ts.reclaimerID = t.ID()
	ts.collecting = node
	ts.obs.Begin(t, obs.StageCollect)
	defer ts.obs.End(t)

	// The previous phase's deferred per-shard sweep lists become
	// claimable by this phase's scanners (each list keeps the home of
	// the node that deferred it — not necessarily this one).
	ts.helpShards = append(ts.helpShards, ts.pendingShards...)
	ts.pendingShards = ts.pendingShards[:0]

	// Aggregate the node's sub-buffer into the shard group.  Single
	// node by construction: no votes, no election.
	ts.shards.reset()
	n := len(ts.nodeBuf[node]) + len(ts.nodeRemark[node])
	for _, a := range ts.nodeBuf[node] {
		ts.shards.add(a, node)
	}
	for _, a := range ts.nodeRemark[node] {
		ts.shards.add(a, node)
	}
	// Truncate before charging: aggregate-and-truncate must be one
	// atomic step with respect to routeRing's lock-free appends, and
	// that property should not hinge on Charge never passing a
	// safepoint.
	ts.nodeBuf[node] = ts.nodeBuf[node][:0]
	ts.nodeRemark[node] = ts.nodeRemark[node][:0]
	t.Charge(int64(n) * (c.Load + c.Step))
	ts.shards.setHomes(node)

	if ts.shards.total == 0 {
		// Nothing new on this node, but deferred sweep work must still
		// move (teardown reaches here with empty sub-buffers).
		ts.drainNodeLists(t)
		ts.collecting = -1
		ts.stats.CollectCycles += t.Cycles() - start
		return
	}
	if ts.shards.total > ts.stats.MaxMaster {
		ts.stats.MaxMaster = ts.shards.total
	}

	// Same pipeline orders as the classic collect: serial sort-then-
	// signal at K = 1, signal-first with lazy sorting otherwise.
	if ts.shards.k() == 1 {
		ts.prepareShard(t, 0)
		ts.signalPeers(t)
	} else {
		ts.signalPeers(t)
	}
	ts.scanThread(t)

	// The scan barrier — the only cross-node handshake of the phase.
	ts.obs.Begin(t, obs.StageHandshake)
	ts.hs.Await(t)
	ts.obs.End(t)

	if ts.shards.k() > 1 {
		for i := range ts.shards.sub {
			ts.prepareShard(t, i)
		}
	}

	// Sweep.  Every line here is homed on node (routing put it there),
	// so a reclaimer of that node frees without a single remote fill.
	ts.obs.Begin(t, obs.StageSweep)
	for si := range ts.shards.sub {
		sh := &ts.shards.sub[si]
		var deferred []uint64
		for i, addr := range sh.buf {
			if sh.marks[i] {
				ts.stats.Remarked++
				ts.nodeRemark[node] = append(ts.nodeRemark[node], addr)
				t.Charge(c.Store)
				continue
			}
			if !ts.cfg.HelpFree {
				ts.freeNode(t, addr)
				ts.stats.NodeReclaimed[node]++
				continue
			}
			deferred = append(deferred, addr)
			t.Charge(c.Store)
		}
		if len(deferred) > 0 {
			ts.pendingShards = append(ts.pendingShards, freeList{addrs: deferred, home: node})
		}
	}
	ts.obs.End(t)
	ts.drainNodeLists(t)
	ts.collecting = -1
	ts.stats.CollectCycles += t.Cycles() - start
}

// drainNodeLists is the per-node end-of-phase mop-up: the reclaimer
// finishes sweep lists homed on its *own* node (local frees), and
// re-defers remote-homed lists for their home node's scanners — unless
// the deferred backlog has passed the steal threshold, in which case
// it drains them too, so deferral stays bounded even when a node has
// no thread left to sweep for it.
func (ts *ThreadScan) drainNodeLists(t *simt.Thread) {
	if len(ts.helpShards) == 0 {
		return
	}
	overloaded := ts.deferredBacklog() >= ts.stealAt || ts.flushing(t)
	lists := ts.helpShards
	ts.helpShards = nil
	ts.obs.Begin(t, obs.StageFree)
	defer ts.obs.End(t)
	my := t.Node()
	for _, list := range lists {
		if list.home != my && !overloaded {
			ts.pendingShards = append(ts.pendingShards, list)
			continue
		}
		if list.home != my && !ts.flushing(t) {
			// Teardown drains are by-design cross-node; only count a
			// steal when the threshold forced one mid-run.
			ts.stats.StolenSweeps++
		}
		for _, addr := range list.addrs {
			ts.freeNode(t, addr)
			ts.stats.NodeReclaimed[list.home]++
		}
	}
}
