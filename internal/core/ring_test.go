package core

import (
	"testing"
	"testing/quick"
)

func TestRingPushDrain(t *testing.T) {
	r := NewRing(4)
	for i := uint64(1); i <= 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(5) {
		t.Fatal("push into full ring succeeded")
	}
	if !r.Full() || r.Len() != 4 {
		t.Fatalf("Full=%v Len=%d", r.Full(), r.Len())
	}
	out, n := r.Drain(nil)
	if n != 4 || len(out) != 4 {
		t.Fatalf("drained %d", n)
	}
	for i, v := range out {
		if v != uint64(i+1) {
			t.Fatalf("FIFO order broken: %v", out)
		}
	}
	if r.Len() != 0 {
		t.Fatal("ring not empty after drain")
	}
}

func TestRingWrapsAround(t *testing.T) {
	r := NewRing(3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(uint64(round*3 + i)) {
				t.Fatal("push failed")
			}
		}
		out, _ := r.Drain(nil)
		for i, v := range out {
			if v != uint64(round*3+i) {
				t.Fatalf("round %d: %v", round, out)
			}
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap %d", r.Cap())
	}
	if !r.Push(9) || r.Push(10) {
		t.Fatal("capacity-1 semantics broken")
	}
}

// TestRingNonPowerOfTwoWrap drives head and tail across many wraps at
// capacities where the index math cannot be a mask: staggered
// push/drain cycles must preserve FIFO order and exact occupancy at
// every wrap offset.
func TestRingNonPowerOfTwoWrap(t *testing.T) {
	for _, capacity := range []int{3, 5, 6, 7, 11} {
		r := NewRing(capacity)
		next, expect := uint64(0), uint64(0)
		// Stagger by filling to capacity, then draining, so every round
		// starts one slot deeper into the buffer than a full cycle.
		for round := 0; round < 4*capacity; round++ {
			fill := round%capacity + 1
			for i := 0; i < fill; i++ {
				if !r.Push(next) {
					t.Fatalf("cap %d round %d: push refused at len %d", capacity, round, r.Len())
				}
				next++
			}
			if r.Len() != fill {
				t.Fatalf("cap %d round %d: Len %d want %d", capacity, round, r.Len(), fill)
			}
			out, n := r.Drain(nil)
			if n != fill {
				t.Fatalf("cap %d round %d: drained %d want %d", capacity, round, n, fill)
			}
			for _, v := range out {
				if v != expect {
					t.Fatalf("cap %d round %d: got %d want %d", capacity, round, v, expect)
				}
				expect++
			}
		}
		if expect != next {
			t.Fatalf("cap %d: lost values: %d of %d", capacity, expect, next)
		}
	}
}

// TestQuickRingFIFO property-checks that any interleaving of pushes and
// drains preserves FIFO order and never loses or duplicates values.
func TestQuickRingFIFO(t *testing.T) {
	f := func(capRaw uint8, ops []bool) bool {
		capacity := int(capRaw)%16 + 1
		r := NewRing(capacity)
		next := uint64(0)     // next value to push
		expected := uint64(0) // next value we must see on drain
		for _, push := range ops {
			if push {
				if r.Push(next) {
					next++
				} else if r.Len() != capacity {
					return false // refused while not full
				}
			} else {
				out, _ := r.Drain(nil)
				for _, v := range out {
					if v != expected {
						return false
					}
					expected++
				}
			}
		}
		out, _ := r.Drain(nil)
		for _, v := range out {
			if v != expected {
				return false
			}
			expected++
		}
		return expected == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
