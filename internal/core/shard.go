package core

import "sort"

// The sharded master buffer of the TS-Collect pipeline.
//
// The paper's TS-Collect aggregates every delete buffer into one master
// buffer that a single reclaimer sorts and later sweeps alone — the
// serial section Stamp-it and Crystalline identify as the reclaimer
// bottleneck.  A shardSet splits that master buffer into K
// address-sharded sub-buffers, each with its own sorted array (or hash
// set) and mark bitmap, so that
//
//   - probes binary-search one shard: log2(n/K) steps instead of
//     log2(n), on a cache-friendlier footprint;
//   - sorting parallelizes: shards are claimed and prepared
//     independently, by the reclaimer *or* by scanners inside their
//     signal handlers (the §7 help idea generalized from freeing to the
//     whole pipeline);
//   - the sweep decomposes into per-shard work lists that next-phase
//     scanners can claim whole.
//
// K = 1 degenerates to the paper's single master buffer, bit-identical
// in virtual-cycle charges to the unsharded protocol.
//
// Under a multi-node topology (simt Config.Nodes > 1) each shard also
// carries a *home node*: the NUMA node whose threads retired the
// plurality of its addresses this phase.  Claiming a shard homed on
// one's own node means sorting and sweeping cache-warm, locally-homed
// lines; the affinity-first claim order (ClaimAffinity) exists to make
// that the common case.
type shardSet struct {
	shift uint // 64 - log2(K); route() uses a Fibonacci multiplicative hash
	nodes int  // NUMA nodes of the owning simulation (1 = flat)
	total int  // nodes added since the last reset
	sub   []shard
}

// shard is one address partition of the master buffer.
type shard struct {
	buf   []uint64       // partition members; sorted+deduped once ready
	marks []bool         // [i] set when buf[i] was seen by a scan
	hash  map[uint64]int // LookupHash membership (addr -> index in buf)
	ready bool           // prepared (sorted/hashed, deduped, marks sized)
	votes []uint32       // per-node retire attribution (nil when flat)
	home  int            // plurality node of votes; fixed after computeHomes
}

// newShardSet creates a set of k shards; k is rounded up to a power of
// two (minimum 1) so routing is a cheap multiply-and-shift.  nodes is
// the machine's NUMA node count; votes are only kept when it exceeds 1.
func newShardSet(k, nodes int) *shardSet {
	if k < 1 {
		k = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	pow := 1
	sh := uint(64)
	for pow < k {
		pow <<= 1
		sh--
	}
	s := &shardSet{shift: sh, nodes: nodes, sub: make([]shard, pow)}
	if nodes > 1 {
		for i := range s.sub {
			s.sub[i].votes = make([]uint32, nodes)
		}
	}
	return s
}

// k returns the shard count.
func (s *shardSet) k() int { return len(s.sub) }

// route maps a node address to its shard index.  Word-aligned addresses
// share their low three bits, so the hash runs on addr>>3; the
// multiplicative constant (2^64/phi) spreads the heap's mostly-linear
// address patterns across shards.
func (s *shardSet) route(addr uint64) int {
	if len(s.sub) == 1 {
		return 0
	}
	return int((addr >> 3) * 0x9E3779B97F4A7C15 >> s.shift)
}

// add appends addr to its shard, attributing the retire to node for
// home election.  Caller charges aggregation cost.
func (s *shardSet) add(addr uint64, node int) {
	sh := &s.sub[s.route(addr)]
	sh.buf = append(sh.buf, addr)
	if sh.votes != nil {
		sh.votes[node]++
	}
	s.total++
}

// computeHomes elects each shard's home node: the node that retired
// the plurality of its addresses this phase (ties to the lower node
// index, so election is deterministic).  Empty shards stay homed on
// node 0; they hold no work to claim.  Bookkeeping only — charges
// nothing, so the flat machine's cycle charges are untouched.
func (s *shardSet) computeHomes() {
	if s.nodes <= 1 {
		return
	}
	for i := range s.sub {
		sh := &s.sub[i]
		best := 0
		for n := 1; n < s.nodes; n++ {
			if sh.votes[n] > sh.votes[best] {
				best = n
			}
		}
		sh.home = best
	}
}

// setHomes homes every shard on node without an election — the
// per-node pipeline's case, where the whole group is single-node by
// construction.  Bookkeeping only; charges nothing.
func (s *shardSet) setHomes(node int) {
	for i := range s.sub {
		s.sub[i].home = node
	}
}

// reset empties every shard for the next collect, retaining capacity.
func (s *shardSet) reset() {
	for i := range s.sub {
		s.sub[i].buf = s.sub[i].buf[:0]
		s.sub[i].ready = false
		s.sub[i].home = 0
		for n := range s.sub[i].votes {
			s.sub[i].votes[n] = 0
		}
	}
	s.total = 0
}

// sortDedup sorts buf ascending and compacts duplicate addresses in
// place, returning the compacted slice and the number of copies
// removed.  Duplicates arise only from double retires; keeping one copy
// makes the sweep free such an address exactly once (and the mark of a
// referenced address protect every retire of it).  Idempotent: applying
// it to its own output removes nothing further.
func sortDedup(buf []uint64) ([]uint64, int) {
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	dups := 0
	w := 0
	for i, a := range buf {
		if i > 0 && a == buf[w-1] {
			dups++
			continue
		}
		buf[w] = a
		w++
	}
	return buf[:w], dups
}
