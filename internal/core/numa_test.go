package core

import (
	"testing"
	"testing/quick"

	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

// NUMA shard affinity: home election, claim accounting, and the
// interaction of mid-run thread churn (simt.SpawnFrom) with the
// sharded collect pipeline.

func numaSim(cores, nodes int, seed int64) *simt.Sim {
	return simt.New(simt.Config{
		Cores: cores, Nodes: nodes, Quantum: 10_000, Seed: seed,
		MaxCycles: 60_000_000_000,
		Heap:      simmem.Config{Words: 1 << 20, Check: true, Poison: true},
	})
}

// TestChurnedThreadsInheritHomeAndVote (the SpawnFrom x sharded-collect
// interaction): threads spawned mid-run from a pinned parent must
// inherit its node, and their retires must appear in shard-affinity
// accounting — every shard that received only their addresses is homed
// on the inherited node.
func TestChurnedThreadsInheritHomeAndVote(t *testing.T) {
	s := numaSim(4, 2, 1)
	ts := New(s, Config{BufferSize: 256, Shards: 8})

	// The parent is pinned to node 1 and spawns every retiring worker
	// mid-run; nobody else calls Free, so all shard votes come from
	// inherited-node threads.
	var inherited []int
	collector := s.Spawn("collector", func(th *simt.Thread) {
		th.Work(400_000) // let the churned workers retire first
		ts.Collect(th)
	})
	collector.Pin(0)
	parent := s.Spawn("parent", func(th *simt.Thread) {
		for w := 0; w < 3; w++ {
			c := s.SpawnFrom(th, "churned", func(c *simt.Thread) {
				inherited = append(inherited, c.Pinned())
				churn(ts, c, 40)
			})
			if c.Pinned() != 1 {
				t.Errorf("churned worker pinned to %d at spawn, want 1", c.Pinned())
			}
			th.Work(10_000)
		}
		th.Work(300_000) // keep the domain membership stable through the collect
	})
	parent.Pin(1)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if len(inherited) != 3 {
		t.Fatalf("spawned %d churned workers, want 3", len(inherited))
	}
	for _, p := range inherited {
		if p != 1 {
			t.Fatalf("churned worker ran with pin %d, want inherited 1", p)
		}
	}
	// Every non-empty shard of the last collect was fed exclusively by
	// node-1 threads, so home election must put each on node 1.
	nonEmpty := 0
	for i := range ts.shards.sub {
		sh := &ts.shards.sub[i]
		if len(sh.buf) == 0 && sh.votes[0] == 0 && sh.votes[1] == 0 {
			continue
		}
		nonEmpty++
		if sh.home != 1 {
			t.Fatalf("shard %d homed on %d (votes %v), want 1", i, sh.home, sh.votes)
		}
		if sh.votes[0] != 0 {
			t.Fatalf("shard %d counts %d node-0 votes; only node-1 threads retired", i, sh.votes[0])
		}
	}
	if nonEmpty == 0 {
		t.Fatal("collect saw no shard votes — churned retires never reached the pipeline")
	}
	st := ts.Stats()
	if st.Frees != 3*40 {
		t.Fatalf("Frees = %d, want %d", st.Frees, 3*40)
	}
}

// TestAffinityClaimAccounting: under ClaimAffinity on a two-node
// machine with retirement on both nodes, voluntary claims happen and
// the local share dominates; under ClaimRoundRobin the same workload
// claims mostly blind.  Both policies reclaim everything.
func TestAffinityClaimAccounting(t *testing.T) {
	run := func(claim ClaimPolicy) Stats {
		s := numaSim(4, 2, 7)
		ts := New(s, Config{BufferSize: 64, Shards: 8, HelpFree: true, Claim: claim})
		for w := 0; w < 4; w++ {
			node := w % 2
			th := s.Spawn("w", func(th *simt.Thread) {
				churn(ts, th, 400)
				ts.FlushAll(th)
			})
			th.Pin(node)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("claim %v: %v", claim, err)
		}
		if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
			t.Fatalf("claim %v leaked %d blocks", claim, lb)
		}
		return ts.Stats()
	}
	aff := run(ClaimAffinity)
	rr := run(ClaimRoundRobin)
	if aff.LocalShardClaims+aff.RemoteShardClaims == 0 {
		t.Fatal("affinity run recorded no voluntary claims")
	}
	if rr.LocalShardClaims+rr.RemoteShardClaims == 0 {
		t.Fatal("round-robin run recorded no voluntary claims")
	}
	if aff.LocalShardClaims <= aff.RemoteShardClaims {
		t.Fatalf("affinity claims not local-dominant: local %d remote %d",
			aff.LocalShardClaims, aff.RemoteShardClaims)
	}
	if aff.Frees != aff.Reclaimed+aff.HelpFreed+aff.DoubleRetires {
		t.Fatalf("affinity lost nodes: %+v", aff)
	}
	if rr.Frees != rr.Reclaimed+rr.HelpFreed+rr.DoubleRetires {
		t.Fatalf("round-robin lost nodes: %+v", rr)
	}
}

// TestQuickHomeAssignmentPartition (property): under random
// topologies — including non-power-of-two node counts — home election
// is a partition of the shard set: every shard gets exactly one
// in-range home, the per-node claim sets are disjoint, and their
// union covers all shards.  Ties break deterministically to the
// lowest node.
func TestQuickHomeAssignmentPartition(t *testing.T) {
	f := func(kRaw, nodesRaw uint8, retires []uint16) bool {
		k := int(kRaw)%32 + 1
		nodes := int(nodesRaw)%7 + 1 // 1..7: exercises 3, 5, 6, 7
		set := newShardSet(k, nodes)
		votes := make([]map[int]uint32, set.k())
		for i := range votes {
			votes[i] = map[int]uint32{}
		}
		for _, r := range retires {
			addr := uint64(r) &^ 7
			node := int(r) % nodes
			set.add(addr, node)
			votes[set.route(addr)][node]++
		}
		set.computeHomes()

		claimSets := make([][]int, nodes)
		for i := range set.sub {
			home := set.sub[i].home
			if home < 0 || home >= nodes {
				return false // out-of-range home
			}
			claimSets[home] = append(claimSets[home], i)
			// Plurality with ties to the lowest node.
			if nodes > 1 {
				best := 0
				for n := 1; n < nodes; n++ {
					if votes[i][n] > votes[i][best] {
						best = n
					}
				}
				if home != best {
					return false
				}
			}
		}
		covered := 0
		seen := map[int]bool{}
		for _, cs := range claimSets {
			for _, i := range cs {
				if seen[i] {
					return false // shard in two claim sets
				}
				seen[i] = true
				covered++
			}
		}
		return covered == set.k() // union covers every shard
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
