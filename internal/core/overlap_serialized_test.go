package core

import (
	"testing"

	"threadscan/internal/simt"
)

// The serialized control path (Config.SerializeCollects): per-node
// routing kept, but every collect forced back onto the machine-wide
// reclamation lock.  It is the A9 ablation's baseline, so it must keep
// every guarantee of the routed pipeline while never overlapping a
// collect phase.

// TestSerializedCollectsKeepRoutedGuarantees mirrors
// TestPerNodeRoutingReclaimsAll on the serialized path: nothing leaks,
// both nodes run their own collects, reclaim accounting adds up — and
// OverlappedCollects stays pinned at zero.
func TestSerializedCollectsKeepRoutedGuarantees(t *testing.T) {
	for _, helpFree := range []bool{false, true} {
		s := numaSim(4, 2, 3)
		ts := New(s, Config{
			BufferSize: 32, Shards: 8, PerNode: true, HelpFree: helpFree,
			SerializeCollects: true,
		})
		if !ts.PerNode() {
			t.Fatal("PerNode not active on a two-node machine")
		}
		pinnedChurners(s, ts, 4, 300)
		if err := s.Run(); err != nil {
			t.Fatalf("helpFree=%v: %v", helpFree, err)
		}
		if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
			t.Fatalf("helpFree=%v: leaked %d blocks", helpFree, lb)
		}
		st := ts.Stats()
		if st.OverlappedCollects != 0 {
			t.Fatalf("helpFree=%v: serialized run overlapped %d collects",
				helpFree, st.OverlappedCollects)
		}
		if st.Frees != st.Reclaimed+st.HelpFreed+st.DoubleRetires {
			t.Fatalf("helpFree=%v: lost nodes: %+v", helpFree, st)
		}
		if st.NodeCollects[0] == 0 || st.NodeCollects[1] == 0 {
			t.Fatalf("helpFree=%v: collects not per-node: %v", helpFree, st.NodeCollects)
		}
		if ts.Buffered() != 0 {
			t.Fatalf("helpFree=%v: %d still buffered", helpFree, ts.Buffered())
		}
	}
}

// TestSerializedStealCollectsSkewedBacklog: with the self-collect
// watermark set astronomically high, neither node ever trips its own
// trigger — so the only way the backlog drains mid-run is the steal
// branch, where a drain on one node notices the other's sub-buffer
// past StealThreshold and collects it under the shared lock.
func TestSerializedStealCollectsSkewedBacklog(t *testing.T) {
	s := numaSim(4, 2, 17)
	ts := New(s, Config{
		BufferSize: 16, PerNode: true, SerializeCollects: true,
		CollectWatermark: 1 << 20, StealThreshold: 64,
	})
	heavy := s.Spawn("heavy", func(th *simt.Thread) {
		churn(ts, th, 400)
		ts.FlushAll(th)
	})
	heavy.Pin(0)
	light := s.Spawn("light", func(th *simt.Thread) {
		churn(ts, th, 100)
		ts.FlushAll(th)
	})
	light.Pin(1)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
		t.Fatalf("leaked %d blocks", lb)
	}
	st := ts.Stats()
	if st.StolenCollects == 0 {
		t.Error("no stolen collect despite a backlog past the steal threshold")
	}
	if st.OverlappedCollects != 0 {
		t.Errorf("serialized run overlapped %d collects", st.OverlappedCollects)
	}
}

// TestSerializedForcedCollectDrainsAllNodes: a forced Collect on the
// serialized path routes every live ring and collects each node with
// backlog; a second forced Collect with nothing buffered still runs
// one empty phase (the HelpFree carry-over tick), as in classic mode.
func TestSerializedForcedCollectDrainsAllNodes(t *testing.T) {
	s := numaSim(2, 2, 7)
	ts := New(s, Config{BufferSize: 1024, PerNode: true, SerializeCollects: true})
	w := s.Spawn("w", func(th *simt.Thread) {
		churn(ts, th, 50) // buffered only: the 1024-slot ring never drains
		ts.Collect(th)    // routes the ring, collects the backlogged node
		ts.Collect(th)    // nothing routed anywhere: empty-phase fallback
		if left := ts.FlushAll(th); left != 0 {
			t.Errorf("FlushAll left %d", left)
		}
	})
	w.Pin(0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if lb := s.Heap().Stats().LiveBlocks; lb != 0 {
		t.Fatalf("leaked %d blocks", lb)
	}
	st := ts.Stats()
	if st.NodeCollects[0] < 2 {
		t.Fatalf("expected >=2 node-0 collects (one routed, one empty), got %v", st.NodeCollects)
	}
	if st.Frees != 50 || st.Reclaimed+st.HelpFreed != 50 {
		t.Fatalf("stats: %+v", st)
	}
}
