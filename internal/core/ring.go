package core

// Ring is the per-thread delete buffer: a bounded single-producer,
// single-consumer circular array (paper §4.2, "Reclamation").  The
// owning thread pushes retired node addresses; the current reclaimer —
// unique, because collects are serialized by a lock — drains it into
// the master buffer.  Head and tail are monotone counters; the paper's
// "single-reader, single-writer, so concurrent accesses are simple and
// inexpensive" property maps here to push/drain being safepoint-atomic.
type Ring struct {
	buf  []uint64
	head uint64 // next index to read (reclaimer)
	tail uint64 // next index to write (owner)
}

// NewRing creates a ring with the given capacity (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]uint64, capacity)}
}

// Push appends v, reporting false when the ring is full.
func (r *Ring) Push(v uint64) bool {
	if r.tail-r.head == uint64(len(r.buf)) {
		return false
	}
	r.buf[r.tail%uint64(len(r.buf))] = v
	r.tail++
	return true
}

// Drain appends every buffered value to out and empties the ring,
// returning the extended slice and the number of values drained.
func (r *Ring) Drain(out []uint64) ([]uint64, int) {
	n := 0
	for r.head < r.tail {
		out = append(out, r.buf[r.head%uint64(len(r.buf))])
		r.head++
		n++
	}
	return out, n
}

// Len returns the number of buffered values.
func (r *Ring) Len() int { return int(r.tail - r.head) }

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Full reports whether a Push would fail.
func (r *Ring) Full() bool { return r.tail-r.head == uint64(len(r.buf)) }
