package harness

import (
	"testing"

	"threadscan/internal/workload"
)

// The cross-scheme differential harness: every registered reclamation
// scheme family (leaky, hazard, epoch, threadscan, stacktrack, hyaline
// — slow-epoch is an epoch configuration), every builtin scenario, one
// seed.
//
// Two layers:
//
//   - Sequential differential: with one worker on an op budget
//     (Scenario.OpsPerWorker) the executed op stream is a function of
//     the seed alone, so every scheme must produce the *identical*
//     op-trace digest and final structure size — reclamation is
//     semantically invisible to the data structure.  Any divergence
//     means a scheme corrupted a structure (or the engine leaked
//     scheme cost into the op stream).
//
//   - Full-suite soundness: the real (timed, concurrent, churning)
//     scenarios run under every scheme on the *checked* heap, which
//     turns any use-after-free or double free into a run-failing
//     violation.  On top of that: no accounting skew, no leaked
//     registrations, and retired == freed + pending for every scheme.

// differentialSchemes are the scheme families under test, derived from
// the harness registry so a newly registered family cannot silently
// miss the suite (slow-epoch is excluded there as an epoch
// configuration, not a family).
var differentialSchemes = DifferentialSchemeNames()

// TestDifferentialSchemesAgreeSequential: serialized op-budget variant
// of every builtin scenario; all five schemes must agree bit-for-bit
// on the op trace and the final structure.
func TestDifferentialSchemesAgreeSequential(t *testing.T) {
	for _, base := range workload.Builtins() {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			t.Parallel()
			spec := base
			spec.DS = "list"
			spec.Scheme = ""
			spec.Threads = 1
			spec.Cores = 1
			spec.Nodes = 1 // serialized: topology out of the picture
			spec.PinPolicy = ""
			spec.WorkerMix = nil // one worker; role groups degenerate
			spec.Churn = nil     // churn timing is scheme-dependent
			spec.PerNode = false
			spec.Prefill = 128
			spec.Seed = 17
			spec.OpsPerWorker = 2000

			type outcome struct {
				scheme    string
				trace     uint64
				finalSize int
				ops       uint64
			}
			var ref *outcome
			for _, scheme := range differentialSchemes {
				s := spec
				s.Scheme = scheme
				r, err := RunScenario(s)
				if err != nil {
					t.Fatalf("%s: %v", scheme, err)
				}
				if r.AccountingError != "" {
					t.Fatalf("%s: %s", scheme, r.AccountingError)
				}
				got := &outcome{scheme: scheme, trace: r.TraceHash, finalSize: r.FinalSize, ops: r.Ops}
				if ref == nil {
					ref = got
					continue
				}
				if got.trace != ref.trace || got.finalSize != ref.finalSize {
					t.Errorf("%s diverged from %s:\n  trace %x != %x\n  final size %d != %d",
						scheme, ref.scheme, got.trace, ref.trace, got.finalSize, ref.finalSize)
				}
			}
		})
	}
}

// TestDifferentialSchemesAgreeConcurrent: the commutativity-aware
// extension of the sequential differential (a ROADMAP open item).  With
// an op budget, each worker's (op, key) stream is a function of the
// seed alone even on a *concurrent* run — only the interleaving (and so
// the success bits) is scheme-dependent.  Sorting per-key histories
// into canonical (worker, index) order and hashing without the success
// bits therefore yields a digest every scheme must reproduce
// bit-for-bit; the success bits are checked per scheme against the set
// alternation invariant (net successful inserts over initial presence
// is a bit).  Any divergence means a scheme corrupted the structure, or
// the engine leaked scheme timing into the op streams.
//
// The same digest argument covers the stack and queue: their (op, key)
// streams are equally seed-determined, and their schedule-dependent pop
// *values* are checked against the per-element conservation ledger
// instead (pops of a value never exceed its pushes plus prefill).
func TestDifferentialSchemesAgreeConcurrent(t *testing.T) {
	for _, base := range workload.Builtins() {
		for _, dsName := range []string{"list", "stack", "queue"} {
			base, dsName := base, dsName
			t.Run(base.Name+"/"+dsName, func(t *testing.T) {
				t.Parallel()
				spec := base
				spec.DS = dsName
				spec.Scheme = ""
				spec.Threads = 4
				spec.Cores = 4
				spec.WorkerMix = nil // groups must divide the fixed 4 workers identically
				spec.Churn = nil     // churn spawn timing is scheme-dependent
				spec.Prefill = 128
				spec.Seed = 23
				spec.OpsPerWorker = 400

				var refScheme string
				var refDigest uint64
				for _, scheme := range differentialSchemes {
					s := spec
					s.Scheme = scheme
					r, err := RunScenario(s)
					if err != nil {
						t.Fatalf("%s: %v", scheme, err)
					}
					if r.AccountingError != "" {
						t.Fatalf("%s: %s", scheme, r.AccountingError)
					}
					if r.KeyedError != "" {
						t.Errorf("%s: keyed semantics: %s", scheme, r.KeyedError)
					}
					if r.KeyedDigest == 0 {
						t.Fatalf("%s: no keyed digest collected on an op-budget run", scheme)
					}
					if refScheme == "" {
						refScheme, refDigest = scheme, r.KeyedDigest
						continue
					}
					if r.KeyedDigest != refDigest {
						t.Errorf("%s keyed digest %x diverged from %s's %x",
							scheme, r.KeyedDigest, refScheme, refDigest)
					}
				}
			})
		}
	}
}

// TestDifferentialFullSuiteSoundness: every builtin scenario, every
// scheme, the real concurrent shape (threads, churn, pinning, per-node
// routing) on the checked heap.  A use-after-free or double free fails
// the run; the assertions below catch quieter corruption.
func TestDifferentialFullSuiteSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential suite skipped in -short")
	}
	for _, base := range workload.Builtins() {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			t.Parallel()
			for _, scheme := range differentialSchemes {
				spec := base.Scale(0.125)
				spec.DS = "stack"
				spec.Scheme = scheme
				spec.Seed = 7
				r, err := RunScenario(spec)
				if err != nil {
					t.Fatalf("%s: %v", scheme, err)
				}
				if r.AccountingError != "" {
					t.Errorf("%s: %s", scheme, r.AccountingError)
				}
				st := r.SchemeStats
				if scheme == "leaky" {
					// Leaky's contract is the inverse: it frees nothing.
					if st.Freed != 0 {
						t.Errorf("leaky freed %d nodes", st.Freed)
					}
					continue
				}
				if st.Retired != st.Freed+st.Pending {
					t.Errorf("%s: retired %d != freed %d + pending %d",
						scheme, st.Retired, st.Freed, st.Pending)
				}
				if r.LeakedRegistrations > 0 {
					t.Errorf("%s: %d leaked registrations", scheme, r.LeakedRegistrations)
				}
			}
		})
	}
}

// TestDifferentialDigestReproducible: the same scenario, scheme, and
// seed must reproduce the op-trace digest exactly — per scheme, on the
// full concurrent shape.  This is the determinism contract that makes
// the sequential differential meaningful (and baseline replay
// possible at all).
func TestDifferentialDigestReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("digest reproducibility skipped in -short")
	}
	for _, scheme := range differentialSchemes {
		spec, ok := workload.ByName("retire-burst")
		if !ok {
			t.Fatal("retire-burst builtin missing")
		}
		spec = spec.Scale(0.25)
		spec.DS, spec.Scheme, spec.Seed = "queue", scheme, 29
		a, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		b, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if a.TraceHash != b.TraceHash || a.Ops != b.Ops || a.ElapsedCycles != b.ElapsedCycles {
			t.Errorf("%s: reruns diverged: trace %x/%x ops %d/%d cycles %d/%d",
				scheme, a.TraceHash, b.TraceHash, a.Ops, b.Ops, a.ElapsedCycles, b.ElapsedCycles)
		}
	}
}
