package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestRobustBoundedGarbageContrast is the robustness regression the
// hyaline family exists to win: on the stalled-scanner adversary (one
// reader descheduled mid-operation — deaf to signals — under heavy
// churn and thread turnover), epoch's grace periods and ThreadScan's
// scan barrier both inherit the stall, so their exact peak retired
// garbage grows with the stall length.  Hyaline frees every batch the
// victim never entered underneath it, so its peak is independent of how
// long the victim sleeps.
//
// The harness is deterministic, so the peaks are exact replays; the
// ratios below carry slack only to survive future tuning of the
// scenario, not run-to-run noise.
func TestRobustBoundedGarbageContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme stall sweep")
	}
	stalls := []int64{1_000_000, 6_000_000}
	rows, err := AblationRobust("stalled-scanner", stalls, SweepParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(stalls) {
		t.Fatalf("rows: %d", len(rows))
	}
	// peak[scheme][stall index], in row order (stalls ascending per scheme).
	peaks := map[string][]uint64{}
	for _, r := range rows {
		p := r.Result.Footprint.ExactPeakRetiredWords
		if p == 0 {
			t.Fatalf("%s/%d: zero exact peak", r.Scheme, r.StallCycles)
		}
		peaks[r.Scheme] = append(peaks[r.Scheme], p)
	}
	for _, scheme := range []string{"epoch", "threadscan"} {
		p := peaks[scheme]
		short, long := float64(p[0]), float64(p[len(p)-1])
		if long < short*1.2 {
			t.Errorf("%s: peak retired words did not grow with the stall: %.0f @ %d -> %.0f @ %d",
				scheme, short, stalls[0], long, stalls[len(stalls)-1])
		}
	}
	hy := peaks["hyaline"]
	short, long := float64(hy[0]), float64(hy[len(hy)-1])
	if long > short*1.15 {
		t.Errorf("hyaline: peak retired words grew with the stall: %.0f @ %d -> %.0f @ %d",
			short, stalls[0], long, stalls[len(stalls)-1])
	}
	// The robust scheme's peak must also sit below the growers' stalled
	// peaks — bounded in absolute terms, not just flat.
	for _, scheme := range []string{"epoch", "threadscan"} {
		if grew := peaks[scheme][len(stalls)-1]; float64(grew) < long {
			t.Errorf("hyaline peak %0.f not below %s's stalled peak %d", long, scheme, grew)
		}
	}
	var buf bytes.Buffer
	if err := WriteRobustTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stall_cycles", "exact_peak_words", "hyaline", "epoch", "threadscan"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("robust table missing %q:\n%s", want, buf.String())
		}
	}
}
