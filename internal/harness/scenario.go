// Scenario engine: executes the declarative workloads of
// internal/workload against the simulated substrate — phased op mixes,
// skewed key distributions, mid-run thread churn (via simt.SpawnFrom),
// and footprint telemetry — where the classic Run executes only the
// paper's single workload shape.

package harness

import (
	"fmt"
	"time"

	"threadscan/internal/core"
	"threadscan/internal/ds"
	"threadscan/internal/obs"
	"threadscan/internal/reclaim"
	"threadscan/internal/simmem"
	"threadscan/internal/simt"
	"threadscan/internal/workload"
)

// ScenarioResult is one scenario outcome.
type ScenarioResult struct {
	Scenario workload.Scenario `json:"-"`

	Name   string `json:"scenario"`
	DS     string `json:"ds"`
	Scheme string `json:"scheme"`

	Threads int `json:"threads"` // persistent workers
	Cores   int `json:"cores"`

	// Topology of the run (1/"" = flat machine, no pinning).
	Nodes     int    `json:"nodes,omitempty"`
	PinPolicy string `json:"pin_policy,omitempty"`

	// PerNode reports whether threadscan's per-node retirement routing
	// was requested; the per-node counter breakdowns live in
	// SchemeStats (NodeCollects, NodeReclaimed, SweepRemoteFills...).
	PerNode bool `json:"per_node,omitempty"`

	// AllocPolicy is the allocator's NUMA placement policy the run used
	// (empty = global, the single-pool heap).  The allocation counters
	// live in Heap (RemoteAllocs, HomeFrees, RemoteFrees) and Sim
	// (AllocRemoteFills).
	AllocPolicy string `json:"alloc_policy,omitempty"`

	Ops           uint64 `json:"ops"`
	ElapsedCycles int64  `json:"elapsed_cycles"`
	MeasuredStart int64  `json:"measured_start_cycles"` // virtual time the measured window opened

	VirtualSeconds float64 `json:"virtual_seconds"`
	Throughput     float64 `json:"throughput_ops_per_vsec"`

	// TraceHash digests the full op stream (per worker, in spawn
	// order): equal seeds must yield equal hashes.
	TraceHash uint64 `json:"trace_hash"`

	// KeyedDigest is the commutativity-aware digest of per-key op
	// histories in canonical (worker, index) order, success bits
	// excluded (see workload.MergeKeyed).  Collected only on op-budget
	// runs (OpsPerWorker > 0), where it is schedule-independent: every
	// scheme must reproduce it even on concurrent runs, which is what
	// extends the cross-scheme differential beyond serialized ones.
	KeyedDigest uint64 `json:"keyed_digest,omitempty"`

	// KeyedError reports a per-key set-semantics violation (net
	// successful inserts inconsistent with presence being a bit) on an
	// op-budget run over a set structure.  Empty for a sound scheme.
	KeyedError string `json:"keyed_error,omitempty"`

	FinalSize int `json:"final_size"`

	ChurnWorkers int `json:"churn_workers"` // mid-run spawned-and-exited threads

	// LeakedRegistrations counts threads still registered with the
	// ThreadScan domain after every thread exited (must be 0; -1 for
	// other schemes).
	LeakedRegistrations int `json:"leaked_registrations"`

	// AccountingError is set when the footprint sampler caught the
	// scheme reporting more nodes freed than retired (the skew is also
	// in Footprint.AccountingSkew).  Empty for a sound scheme.
	AccountingError string `json:"accounting_error,omitempty"`

	Footprint Footprint `json:"footprint"`

	// Metrics carries every named timeline the metrics engine sampled:
	// one Series of (vcycle, value) points per registered source, in
	// registration order, with steady-window digests precomputed.
	// Present only when Scenario.MetricsEvery enabled the engine —
	// sampling reads host-side state on clock ticks and never charges
	// virtual cycles, so every other field is identical either way.
	Metrics []obs.Series `json:"metrics,omitempty"`

	// Latency is the observability summary for the run: per-op latency
	// quantiles, max pause, and per-stage breakdowns.  Always present —
	// RunScenario attaches a histogram-only recorder by default, which
	// never charges virtual cycles, so every other field is identical
	// with or without it.
	Latency *obs.Summary `json:"latency"`

	SchemeStats reclaim.Stats `json:"scheme_stats"`
	Core        *core.Stats   `json:"threadscan_stats,omitempty"`
	Sim         simt.SimStats `json:"sim_stats"`
	Heap        simmem.Stats  `json:"heap_stats"`

	WallTime time.Duration `json:"-"`
}

// scenarioNodeWords reports the allocator words one structure node
// occupies (for garbage accounting and arena sizing), from the spec
// alone.
func scenarioNodeWords(spec *workload.Scenario) (int, error) {
	nb := spec.NodeBytes
	switch spec.DS {
	case "list", "hash":
		if nb <= 0 {
			nb = ds.DefaultNodeBytes
		}
	case "skiplist":
		nb = 15 * 8 // fixed-size nodes, as in the paper
	case "stack":
		if nb <= 0 {
			nb = ds.DefaultStackNodeBytes
		}
	case "queue":
		if nb <= 0 {
			nb = ds.DefaultQueueNodeBytes
		}
	default:
		return 0, fmt.Errorf("harness: unknown data structure %q", spec.DS)
	}
	return simmem.ClassSizeBytes(nb) / 8, nil
}

// buildTarget constructs the scenario's structure.
func buildTarget(sim *simt.Sim, sc reclaim.Scheme, spec *workload.Scenario) (workload.Target, error) {
	var structure any
	switch spec.DS {
	case "list":
		structure = ds.NewList(sim, sc, spec.NodeBytes)
	case "hash":
		buckets := spec.Buckets
		if buckets == 0 {
			buckets = int(spec.KeyRange / 32)
			if buckets < 1 {
				buckets = 1
			}
		}
		structure = ds.NewHashTable(sim, sc, buckets, spec.NodeBytes)
	case "skiplist":
		structure = ds.NewSkipList(sim, sc)
	case "stack":
		structure = ds.NewStack(sim, sc, spec.NodeBytes)
	case "queue":
		structure = ds.NewQueue(sim, sc, spec.NodeBytes)
	default:
		return nil, fmt.Errorf("harness: unknown data structure %q", spec.DS)
	}
	return workload.TargetFor(structure)
}

// scenarioHeapWords sizes the arena for the worst case the scenario can
// produce: the live set, every scheme's buffered retirees, and — since
// Leaky never frees — every allocation the run could possibly make.
// Inserts are bounded per core and phase by the mix: with i% inserts at
// a floor of insCost cycles and the rest at otherCost (a pop or peek on
// an empty container is only a handful of loads), at most
// duration*i / (i*insCost + (100-i)*otherCost) inserts fit in a phase.
func scenarioHeapWords(spec *workload.Scenario, nodeWords int) int {
	if spec.HeapWords > 0 {
		return spec.HeapWords
	}
	nodeScale := policyHeapScale(spec.AllocPolicy, spec.Nodes)
	insCost, otherCost := int64(100), int64(10) // stack/queue floors
	switch spec.DS {
	case "list", "hash", "skiplist":
		insCost, otherCost = 250, 60 // every op traverses
	}
	var allocNodes64 int64
	for _, p := range spec.Phases {
		// A worker-group mix override can be more insert-heavy than
		// the phase mix; size for the hungriest group.
		i := int64(p.Mix.InsertPct)
		for _, m := range spec.WorkerMix {
			if int64(m.InsertPct) > i {
				i = int64(m.InsertPct)
			}
		}
		if i == 0 {
			continue
		}
		allocNodes64 += p.Duration * i / (i*insCost + (100-i)*otherCost)
	}
	allocNodes := int(allocNodes64) * spec.Cores
	workers := spec.Threads + 2
	if spec.Churn != nil {
		workers += spec.Churn.TotalWorkers()
	}
	buf, batch := spec.BufferSize, spec.Batch
	if buf == 0 {
		buf = core.DefaultBufferSize
	}
	if batch == 0 {
		batch = 1024
	}
	liveMax := int(spec.KeyRange) + spec.Prefill + allocNodes + workers*(buf+batch) + 4096
	words := liveMax * nodeWords * 3 / 2 * nodeScale
	p := 1 << 16
	for p < words {
		p <<= 1
	}
	return p
}

// scenarioRun carries the mutable run state.  Every field is touched
// only from simulated-thread contexts, which the discrete-event
// scheduler serializes — no host synchronization needed, and the run
// stays deterministic.
type scenarioRun struct {
	spec   *workload.Scenario
	sim    *simt.Sim
	scheme reclaim.Scheme
	target workload.Target
	rec    *obs.Recorder // nil-safe on every call

	phaseEnd []int64 // cumulative phase end offsets

	mutators     int  // workers that may still hold references
	spawningDone bool // controller finished launching churn generations
	churned      int  // churn workers that ran and exited

	startAt  map[int]int64 // thread id -> measured-phase start
	finishAt map[int]int64
	traces   map[int]uint64                // thread id -> op-trace digest
	keyed    map[int]*workload.KeyedTrace  // thread id -> per-key history (op-budget runs)
	ledgers  map[int]*workload.ValueLedger // thread id -> per-element push/pop counts (op-budget LIFO/FIFO runs)
	mixOf    map[int]*workload.Mix         // thread id -> role-group mix override (nil = phase mix)
	stalls   map[int]bool                  // thread id -> errant stall victim

	sampler *footprintSampler
}

// work drives ops from base until deadline, crossing phase boundaries
// at absolute virtual times so all workers change phase together.
// With Scenario.OpsPerWorker set, the deadline is replaced by a fixed
// operation budget and phase boundaries land proportionally along the
// op index — the executed stream then depends only on the seed, not on
// the scheme's cost model (the differential harness's lever).
func (r *scenarioRun) work(th *simt.Thread, base, deadline int64) {
	rng := th.RNG()
	tr := workload.NewTrace()
	var keyed *workload.KeyedTrace
	var ledger *workload.ValueLedger
	vt, hasValues := r.target.(workload.ValueTarget)
	if r.spec.OpsPerWorker > 0 {
		// Op-budget runs also keep per-key histories: the stream is
		// seed-determined, so the canonicalized histories support exact
		// cross-scheme comparison even on concurrent runs.
		keyed = workload.NewKeyedTrace(th.ID())
		if hasValues {
			// LIFO/FIFO targets additionally track removes by *value* —
			// the element a pop observes — for the conservation check.
			ledger = workload.NewValueLedger()
		}
	}
	phase := 0
	override := r.mixOf[th.ID()]
	gen := workload.NewKeyGen(r.spec.Phases[0].Dist, r.spec.KeyRange, rng)
	doOp := func(frac float64) {
		if frac >= 1 {
			frac = 0.999999 // oversubscribed final-phase overhang
		}
		key := gen.Key(frac)
		mix := r.spec.Phases[phase].Mix
		if override != nil {
			mix = *override
		}
		op := mix.Pick(rng.Intn(100))
		opStart := th.Now()
		var ok bool
		if ledger != nil {
			var val uint64
			val, ok = vt.ApplyValue(th, op, key)
			switch op {
			case workload.OpInsert:
				ledger.Push(key)
			case workload.OpRemove:
				if ok {
					ledger.Pop(val)
				}
			}
		} else {
			ok = r.target.Apply(th, op, key)
		}
		r.rec.Observe(th, obs.StageOp, th.Now()-opStart)
		tr.Record(op, key, ok)
		if keyed != nil {
			keyed.Record(op, key, ok)
		}
		th.AddOps(1)
	}
	sinceStall := 0
	maybeStall := func() {
		if !r.stalls[th.ID()] {
			return
		}
		sinceStall++
		if sinceStall < r.spec.StallEvery {
			return
		}
		sinceStall = 0
		// One errant, empty operation stalled mid-bracket (A4 and the
		// adversarial builtins).  No rng draw, no trace record, no op
		// count: the injection is invisible to the op-stream digests
		// and to the op budget.
		r.scheme.BeginOp(th)
		if r.spec.StallKind == "preempt" {
			// A descheduled thread: Charge crosses no safepoint, so the
			// victim is deaf to scan signals until the stall completes.
			th.Charge(r.spec.StallCycles)
		} else {
			th.Work(r.spec.StallCycles)
		}
		r.scheme.EndOp(th)
	}
	if budget := r.spec.OpsPerWorker; budget > 0 {
		total := r.spec.TotalDuration()
		for i := 0; i < budget; i++ {
			for phase < len(r.spec.Phases)-1 && int64(i)*total >= r.phaseEnd[phase]*int64(budget) {
				phase++
				gen = workload.NewKeyGen(r.spec.Phases[phase].Dist, r.spec.KeyRange, rng)
			}
			startOp := int64(0)
			if phase > 0 {
				startOp = r.phaseEnd[phase-1] * int64(budget) / total
			}
			phaseOps := r.spec.Phases[phase].Duration * int64(budget) / total
			if phaseOps < 1 {
				phaseOps = 1
			}
			doOp(float64(int64(i)-startOp) / float64(phaseOps))
			maybeStall()
		}
	} else {
		for th.Now() < deadline {
			for phase < len(r.spec.Phases)-1 && th.Now() >= base+r.phaseEnd[phase] {
				phase++
				gen = workload.NewKeyGen(r.spec.Phases[phase].Dist, r.spec.KeyRange, rng)
			}
			phaseStart := base
			if phase > 0 {
				phaseStart += r.phaseEnd[phase-1]
			}
			doOp(float64(th.Now()-phaseStart) / float64(r.spec.Phases[phase].Duration))
			maybeStall()
		}
	}
	r.traces[th.ID()] = tr.Sum()
	if keyed != nil {
		r.keyed[th.ID()] = keyed
	}
	if ledger != nil {
		r.ledgers[th.ID()] = ledger
	}
}

// retire ends a worker's mutating life: drop every stale reference,
// then leave the mutator count.
func (r *scenarioRun) retire(th *simt.Thread) {
	for reg := 0; reg < simt.NumRegs; reg++ {
		th.SetReg(reg, 0)
	}
	r.mutators--
}

// RunScenario executes one scenario and returns its result, recording
// latency histograms (but no trace spans) into a fresh recorder.
func RunScenario(spec workload.Scenario) (ScenarioResult, error) {
	return RunScenarioRecorded(spec, obs.NewRecorder())
}

// RunScenarioRecorded executes one scenario with the given recorder
// attached to the simulator, the allocator, and the reclamation scheme.
// Pass obs.NewTraceRecorder() to additionally capture per-thread spans
// for Chrome-trace export, or nil to disable observability entirely
// (the hot path then never allocates).  The recorder never charges
// virtual cycles: every result field except Latency is identical across
// all three choices.
func RunScenarioRecorded(spec workload.Scenario, rec *obs.Recorder) (ScenarioResult, error) {
	if err := spec.Fill(); err != nil {
		return ScenarioResult{}, err
	}
	total := spec.TotalDuration()
	quantum := spec.Quantum
	if quantum == 0 {
		quantum = 125_000
	}
	workers := spec.Threads
	if spec.Churn != nil {
		workers += spec.Churn.TotalWorkers()
	}

	// Scheme construction reuses the classic harness builder; the
	// remaining Config fields only feed defaults it fills itself.
	// Slow-epoch's errant victim is the first worker (thread 1 — the
	// sampler occupies id 0).
	claim := core.ClaimAffinity
	if spec.ClaimPolicy == "rr" {
		claim = core.ClaimRoundRobin
	}
	schemeCfg := Config{
		Scheme:         spec.Scheme,
		BufferSize:     spec.BufferSize,
		Batch:          spec.Batch,
		Shards:         spec.Shards,
		Watermark:      spec.Watermark,
		HelpFree:       spec.HelpFree,
		Claim:          claim,
		PerNode:        spec.PerNode,
		StealThreshold: spec.StealThreshold,
		SerializeColl:  spec.SerializeCollects,
		DelayVictim:    1,
		Obs:            rec,
	}
	schemeCfg.fill()

	nodeWords, err := scenarioNodeWords(&spec)
	if err != nil {
		return ScenarioResult{}, err
	}

	// An op-budget run is bounded by work, not the clock; give the
	// watchdog headroom for the slowest scheme's per-op cost.
	watchdog := total*int64(workers+4)*4 + 4_000_000_000
	if spec.OpsPerWorker > 0 {
		watchdog += int64(spec.OpsPerWorker) * int64(workers+4) * 100_000
		if spec.StallCycles > 0 {
			// Op-budget victims still take every injected stall.
			stallsPer := int64(spec.OpsPerWorker / spec.StallEvery)
			watchdog += (stallsPer + 1) * spec.StallCycles * int64(spec.StallVictims+1)
		}
	}
	allocPolicy, err := simmem.ParsePolicy(spec.AllocPolicy)
	if err != nil {
		return ScenarioResult{}, err
	}
	sim := simt.New(simt.Config{
		Cores:      spec.Cores,
		Nodes:      spec.Nodes,
		Quantum:    quantum,
		Seed:       spec.Seed,
		Chaos:      spec.Chaos,
		StackWords: 256,
		MaxCycles:  watchdog,
		Heap: simmem.Config{
			Words: scenarioHeapWords(&spec, nodeWords), Check: true, Poison: true,
			Policy: allocPolicy},
	})
	if rec != nil {
		sim.SetProbe(rec)
		sim.Heap().SetObserver(rec)
	}
	sc, tsCore, err := BuildScheme(sim, schemeCfg)
	if err != nil {
		return ScenarioResult{}, err
	}
	target, err := buildTarget(sim, sc, &spec)
	if err != nil {
		return ScenarioResult{}, err
	}

	// The metrics engine is always constructed — the footprint sampler
	// stores its series through it — but the virtual-time ticker and
	// the polled counter surface only attach when the scenario asked
	// for timelines.  Ticking happens on the scheduler's clock-advance
	// hook: host-side reads between thread quanta, zero virtual cost.
	met := obs.NewMetrics(spec.MetricsEvery)
	if spec.MetricsEvery > 0 {
		registerScenarioMetrics(met, sim, sc, tsCore, rec)
		sim.OnClockAdvance(met.Tick)
	}

	r := &scenarioRun{
		spec:     &spec,
		sim:      sim,
		scheme:   sc,
		target:   target,
		rec:      rec,
		startAt:  make(map[int]int64),
		finishAt: make(map[int]int64),
		traces:   make(map[int]uint64),
		keyed:    make(map[int]*workload.KeyedTrace),
		ledgers:  make(map[int]*workload.ValueLedger),
		mixOf:    make(map[int]*workload.Mix),
		stalls:   make(map[int]bool),
		sampler:  newFootprintSampler(sim, sc, nodeWords, spec.SampleEvery, met),
	}
	var cum int64
	for _, p := range spec.Phases {
		cum += p.Duration
		r.phaseEnd = append(r.phaseEnd, cum)
	}

	nT := spec.Threads
	participants := nT
	if spec.Churn != nil {
		participants++ // the churn controller joins the start line
	}
	startBar := sim.NewBarrier("scenario-start", participants)
	r.mutators = nT

	// The sampler spawns first (thread id 0): it must register with the
	// reclamation scheme before the workers make the registration lock
	// hot, or a retire-storm can starve it out of its first dispatch
	// for the whole run (registration contends with TS-Collect, which
	// holds the same lock — the price of mid-run registration that the
	// churn scenarios measure on purpose; telemetry should not pay it).
	sim.Spawn("sampler", r.sampler.run)

	for i := 0; i < nT; i++ {
		i := i
		th := sim.Spawn(fmt.Sprintf("w%d", i), func(th *simt.Thread) {
			for k := i; k < spec.Prefill; k += nT {
				key := ds.MinKey + uint64(k)*spec.KeyRange/uint64(spec.Prefill)
				r.target.Apply(th, workload.OpInsert, key)
			}
			startBar.Await(th)
			start := th.Now()
			r.startAt[th.ID()] = start
			r.work(th, start, start+total)
			r.finishAt[th.ID()] = th.Now()
			r.retire(th)
			if i == 0 {
				// Last responsibilities fall to worker 0: wait until
				// every mutator (persistent or churned) has dropped its
				// references, then flush the scheme and stop telemetry.
				for r.mutators > 0 || !r.spawningDone {
					th.Pause()
				}
				sc.Flush(th)
				r.sampler.stop = true
			}
		})
		if node := spec.WorkerNode(i); node >= 0 {
			th.Pin(node)
		}
		if m := spec.WorkerGroupMix(i); m != nil {
			r.mixOf[th.ID()] = m
		}
		if spec.StallCycles > 0 && i < spec.StallVictims {
			r.stalls[th.ID()] = true
		}
	}

	if spec.Churn != nil {
		ch := spec.Churn
		sim.Spawn("churn-ctl", func(th *simt.Thread) {
			startBar.Await(th)
			start := th.Now()
			spawned := 0
			for g := 0; g < ch.Generations; g++ {
				for at := start + ch.Start(g); th.Now() < at; {
					th.Sleep(at - th.Now()) // re-sleep across EINTR
				}
				for j := 0; j < ch.Workers; j++ {
					r.mutators++
					name := fmt.Sprintf("churn%d.%d", g, j)
					w := sim.SpawnFrom(th, name, func(w *simt.Thread) {
						end := w.Now() + ch.Life
						if max := start + total; end > max {
							end = max
						}
						r.work(w, start, end)
						r.retire(w)
						r.churned++
					})
					// Churn workers populate every node in turn under
					// either pinning policy (the controller itself is
					// unpinned, so they'd otherwise inherit no mask).
					if spec.PinPolicy == "rr" || spec.PinPolicy == "split" {
						w.Pin(spawned % spec.Nodes)
					}
					spawned++
				}
			}
			r.spawningDone = true
		})
	} else {
		r.spawningDone = true
	}

	wallStart := wallNow()
	if err := sim.Run(); err != nil {
		return ScenarioResult{}, fmt.Errorf("scenario %s (%s/%s): %w",
			spec.Name, spec.DS, spec.Scheme, err)
	}

	res := ScenarioResult{
		Scenario:            spec,
		Name:                spec.Name,
		DS:                  spec.DS,
		Scheme:              spec.Scheme,
		Threads:             spec.Threads,
		Cores:               spec.Cores,
		Nodes:               spec.Nodes,
		PinPolicy:           spec.PinPolicy,
		PerNode:             spec.PerNode,
		AllocPolicy:         spec.AllocPolicy,
		ChurnWorkers:        r.churned,
		LeakedRegistrations: -1,
		Latency:             rec.Summary(),
		Footprint:           r.sampler.fp,
		SchemeStats:         sc.Stats(),
		Sim:                 sim.Stats(),
		Heap:                sim.Heap().Stats(),
		FinalSize:           target.Size(),
		WallTime:            wallSince(wallStart),
	}
	if spec.MetricsEvery > 0 {
		res.Metrics = met.Series()
	}
	if tsCore != nil {
		st := tsCore.Stats()
		res.Core = &st
		res.LeakedRegistrations = tsCore.RegisteredThreads()
	}
	if skew := r.sampler.fp.AccountingSkew; skew > 0 {
		res.AccountingError = fmt.Sprintf(
			"scheme %s freed %d more nodes than it retired", spec.Scheme, skew)
	}
	var sums []uint64
	var keyedTraces []*workload.KeyedTrace
	var valueLedgers []*workload.ValueLedger
	var minStart, maxFinish int64
	first := true
	for _, th := range sim.Threads() {
		res.Ops += th.Ops()
		if s, ok := r.startAt[th.ID()]; ok {
			if first || s < minStart {
				minStart = s
			}
			first = false
		}
		if f, ok := r.finishAt[th.ID()]; ok && f > maxFinish {
			maxFinish = f
		}
		if sum, ok := r.traces[th.ID()]; ok {
			sums = append(sums, sum) // Threads() is spawn-ordered
		}
		if kt, ok := r.keyed[th.ID()]; ok {
			keyedTraces = append(keyedTraces, kt)
		}
		if vl, ok := r.ledgers[th.ID()]; ok {
			valueLedgers = append(valueLedgers, vl)
		}
	}
	res.TraceHash = workload.CombineTraces(sums)
	if spec.OpsPerWorker > 0 {
		summary := workload.MergeKeyed(keyedTraces)
		res.KeyedDigest = summary.Digest
		switch spec.DS {
		case "list", "hash", "skiplist":
			// Initial presence is the prefill stripe (the exact keys the
			// workers inserted before the measured window).
			prefilled := make(map[uint64]bool, spec.Prefill)
			for k := 0; k < spec.Prefill; k++ {
				prefilled[ds.MinKey+uint64(k)*spec.KeyRange/uint64(spec.Prefill)] = true
			}
			res.KeyedError = summary.CheckSetSemantics(func(key uint64) bool {
				return prefilled[key]
			})
		case "stack", "queue":
			// Initial contents are the prefill stripe values, *with*
			// multiplicity — the stripe's integer division can land two
			// prefill slots on the same value, and LIFO/FIFO structures
			// hold duplicates.
			p0 := make(map[uint64]int, spec.Prefill)
			for k := 0; k < spec.Prefill; k++ {
				p0[ds.MinKey+uint64(k)*spec.KeyRange/uint64(spec.Prefill)]++
			}
			res.KeyedError = workload.MergeValueLedgers(valueLedgers).
				CheckConservation(func(v uint64) int { return p0[v] })
		}
	}
	res.ElapsedCycles = maxFinish - minStart
	res.MeasuredStart = minStart
	res.VirtualSeconds = float64(res.ElapsedCycles) / 1e9
	if res.VirtualSeconds > 0 {
		res.Throughput = float64(res.Ops) / res.VirtualSeconds
	}
	return res, nil
}
