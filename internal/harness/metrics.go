package harness

import (
	"threadscan/internal/core"
	"threadscan/internal/obs"
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// Metrics wiring: registers the run's counter surface — scheme, core
// pipeline, scheduler, allocator, and latency histograms — as named
// timelines on the metrics engine.  Registration is cold-path (before
// sim.Run); the closures built here are only *read* by the engine's
// ticker, never charge virtual cycles, and therefore cannot perturb
// the schedule (TestMetricsOffIsBitIdentical holds the receipt).
//
// Series names are part of the exported-metrics contract: CI's smoke
// test and the metrics-diff baselines key on them.
func registerScenarioMetrics(m *obs.Metrics, sim *simt.Sim, sc reclaim.Scheme, tsCore *core.ThreadScan, rec *obs.Recorder) {
	if !m.Enabled() {
		return
	}

	// Progress: the cumulative op total across every thread spawned so
	// far, plus its windowed view (ops per window = throughput shape).
	opsNow := func() uint64 {
		var n uint64
		for _, th := range sim.Threads() {
			n += th.Ops()
		}
		return n
	}
	m.Counter("ops", opsNow)
	m.Rate("throughput", opsNow)

	// Scheme garbage accounting — the bounded-footprint axis.  The
	// gauge clamps Freed > Retired skew to zero exactly like the
	// footprint sampler does, so the two garbage views agree.
	m.Counter("retired", func() uint64 { return sc.Stats().Retired })
	m.Counter("freed", func() uint64 { return sc.Stats().Freed })
	m.Gauge("garbage_nodes", func() float64 {
		st := sc.Stats()
		if st.Freed > st.Retired {
			return 0
		}
		return float64(st.Retired - st.Freed)
	})
	m.Counter("grace_waits", func() uint64 { return sc.Stats().GraceWaits })
	m.Counter("grace_wait_cycles", func() uint64 { return uint64(sc.Stats().GraceWaitCycles) })

	// Scheduler and allocator NUMA traffic.
	m.Counter("remote_line_fills", func() uint64 { return sim.Stats().RemoteLineFills })
	m.Counter("alloc_remote_fills", func() uint64 { return sim.Stats().AllocRemoteFills })
	m.Gauge("live_words", func() float64 { return float64(sim.Heap().Stats().LiveBytes / 8) })
	m.Counter("remote_allocs", func() uint64 { return sim.Heap().Stats().RemoteAllocs })
	m.Counter("remote_frees", func() uint64 { return sim.Heap().Stats().RemoteFrees })

	// ThreadScan pipeline counters (absent for epoch/hazard/leaky...).
	if tsCore != nil {
		m.Counter("collects", func() uint64 { return tsCore.Stats().Collects })
		m.Counter("watermark_collects", func() uint64 { return tsCore.Stats().WatermarkCollects })
		m.Counter("steals", func() uint64 {
			st := tsCore.Stats()
			return st.StolenCollects + st.StolenSweeps
		})
		m.Counter("overlapped_collects", func() uint64 { return tsCore.Stats().OverlappedCollects })
		m.Counter("local_shard_claims", func() uint64 { return tsCore.Stats().LocalShardClaims })
		m.Counter("remote_shard_claims", func() uint64 { return tsCore.Stats().RemoteShardClaims })
		m.Counter("sweep_remote_fills", func() uint64 { return tsCore.Stats().SweepRemoteFills })
	}

	// Windowed latency quantiles from the recorder's cumulative per-op
	// histogram: each point digests only that window's observations.
	if rec.Enabled() {
		m.Quantile("op_p50", 0.50, func(h *obs.Hist) { rec.MergeStageInto(obs.StageOp, h) })
		m.Quantile("op_p99", 0.99, func(h *obs.Hist) { rec.MergeStageInto(obs.StageOp, h) })
	}
}
