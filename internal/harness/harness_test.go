package harness

import (
	"bytes"
	"strings"
	"testing"

	"threadscan/internal/core"
)

func quickCfg(dsName, scheme string, threads int) Config {
	return Config{
		DS: dsName, Scheme: scheme, Threads: threads, Cores: 4,
		Duration: 2_000_000, // 2 virtual ms: fast unit runs
		Seed:     1,
		KeyRange: 512, Prefill: 256, Buckets: 16,
		BufferSize: 128, Batch: 128,
	}
}

func TestRunProducesOps(t *testing.T) {
	r, err := Run(quickCfg("list", "threadscan", 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.Throughput <= 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.Core == nil {
		t.Fatal("missing ThreadScan core stats")
	}
	if r.ElapsedCycles < 2_000_000 {
		t.Fatalf("elapsed %d shorter than per-thread budget", r.ElapsedCycles)
	}
}

func TestRunAllCombinations(t *testing.T) {
	for _, dsName := range []string{"list", "hash", "skiplist"} {
		for _, scheme := range []string{"leaky", "hazard", "epoch", "slow-epoch", "threadscan", "stacktrack"} {
			cfg := quickCfg(dsName, scheme, 2)
			cfg.SlowDelay = 200_000 // scaled-down errant delay
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", dsName, scheme, err)
			}
			if r.Ops == 0 {
				t.Fatalf("%s/%s: no ops", dsName, scheme)
			}
			// Reclamation accounting: every scheme but leaky must have
			// freed what it retired once flushed.
			if scheme != "leaky" && r.Scheme.Retired != r.Scheme.Freed {
				t.Fatalf("%s/%s: retired %d != freed %d",
					dsName, scheme, r.Scheme.Retired, r.Scheme.Freed)
			}
			if scheme == "leaky" && r.Scheme.Retired > 0 && r.Scheme.Leaked != r.Scheme.Retired {
				t.Fatalf("leaky accounting: %+v", r.Scheme)
			}
		}
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	if _, err := Run(quickCfg("btree", "leaky", 1)); err == nil {
		t.Error("unknown ds accepted")
	}
	if _, err := Run(quickCfg("list", "magic", 1)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run(quickCfg("list", "threadscan", 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg("list", "threadscan", 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.ElapsedCycles != b.ElapsedCycles {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d ops/cycles",
			a.Ops, a.ElapsedCycles, b.Ops, b.ElapsedCycles)
	}
}

func TestOversubscriptionDividesPerThreadWork(t *testing.T) {
	// Duration is a wall-clock window (the paper's methodology): 8
	// threads on 2 cores run for the same elapsed window as 2 threads
	// on 2 cores, but each gets ~1/4 of the CPU, so per-thread ops
	// drop ~4x.
	base := quickCfg("list", "leaky", 2)
	base.Cores = 2
	over := quickCfg("list", "leaky", 8)
	over.Cores = 2
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	elapsedRatio := float64(ro.ElapsedCycles) / float64(rb.ElapsedCycles)
	if elapsedRatio > 1.5 || elapsedRatio < 0.67 {
		t.Fatalf("elapsed should be a fixed window: ratio %.2f", elapsedRatio)
	}
	perBase := float64(rb.Ops) / 2
	perOver := float64(ro.Ops) / 8
	if r := perBase / perOver; r < 2.5 || r > 6.5 {
		t.Fatalf("per-thread ops ratio %.2f, want ~4 (base %d over %d)", r, rb.Ops, ro.Ops)
	}
}

func TestFigureSweepAndRendering(t *testing.T) {
	p := SweepParams{
		Scale:        ScaleQuick,
		ThreadCounts: []int{1, 2},
		Cores:        2,
		Duration:     1_000_000,
		Seed:         7,
	}
	fig, err := RunFig3("list", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(Fig3Schemes) {
		t.Fatalf("series: %d", len(fig.Series))
	}
	var tbl, csvBuf bytes.Buffer
	if err := WriteTable(&tbl, fig); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csvBuf, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "threadscan") {
		t.Fatalf("table missing scheme column:\n%s", tbl.String())
	}
	lines := strings.Count(csvBuf.String(), "\n")
	if lines != 1+len(Fig3Schemes)*2 {
		t.Fatalf("csv rows = %d:\n%s", lines, csvBuf.String())
	}
}

func TestFig4AddsTunedHashVariant(t *testing.T) {
	p := SweepParams{
		Scale:        ScaleQuick,
		ThreadCounts: []int{4},
		Cores:        2,
		Duration:     1_000_000,
		Seed:         3,
	}
	fig, err := RunFig4("hash", p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range fig.Series {
		if s.Name == "threadscan-tuned" {
			found = true
			base := 128 // quick-scale buffer
			if s.Results[0].Config.BufferSize != 4*base {
				t.Fatalf("tuned variant buffer = %d, want %d", s.Results[0].Config.BufferSize, 4*base)
			}
		}
	}
	if !found {
		t.Fatal("tuned hash variant missing from Figure 4")
	}
}

func TestAblationBuffer(t *testing.T) {
	p := SweepParams{Scale: ScaleQuick, Cores: 2, Duration: 1_000_000, Seed: 5}
	rows, err := AblationBuffer([]int{64, 256}, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Larger buffers mean fewer collects.
	if rows[1].Result.Core.Collects > rows[0].Result.Core.Collects {
		t.Fatalf("collects did not drop with buffer size: %d -> %d",
			rows[0].Result.Core.Collects, rows[1].Result.Core.Collects)
	}
	var buf bytes.Buffer
	if err := WriteBufferTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestAblationLookupAgree(t *testing.T) {
	p := SweepParams{Scale: ScaleQuick, Cores: 2, Duration: 1_000_000, Seed: 9}
	rows, err := AblationLookup(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Lookup != core.LookupBinary {
		t.Fatal("first row should be the paper's binary search")
	}
	var buf bytes.Buffer
	if err := WriteLookupTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestAblationStallShowsContrast(t *testing.T) {
	p := SweepParams{Scale: ScaleQuick, Cores: 2, Duration: 8_000_000, Seed: 11}
	rows, err := AblationStall(p, 3, 50, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var epochWait, tsWait int64
	for _, r := range rows {
		switch r.Scheme {
		case "epoch":
			epochWait = r.Result.SchemeStats.GraceWaitCycles
		case "threadscan":
			tsWait = r.Result.SchemeStats.GraceWaitCycles
		}
	}
	if tsWait != 0 {
		t.Fatalf("threadscan reported grace waits: %d", tsWait)
	}
	if epochWait == 0 {
		t.Fatal("epoch reclaimers never waited despite the stalled thread")
	}
	var buf bytes.Buffer
	if err := WriteStallTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
}
