package harness

import (
	"testing"

	"threadscan/internal/reclaim"
	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

// skewScheme is a stub whose accounting is broken in the way the
// sampler must survive: it reports more nodes freed than retired.
type skewScheme struct {
	retired, freed uint64
}

func (s *skewScheme) Name() string                        { return "skew-stub" }
func (s *skewScheme) Discipline() reclaim.Discipline      { return reclaim.DisciplineNone }
func (s *skewScheme) BeginOp(*simt.Thread)                {}
func (s *skewScheme) EndOp(*simt.Thread)                  {}
func (s *skewScheme) Protect(*simt.Thread, int, int) bool { return false }
func (s *skewScheme) Retire(_ *simt.Thread, _ uint64)     { s.retired++ }
func (s *skewScheme) Flush(*simt.Thread) int              { return 0 }
func (s *skewScheme) Stats() reclaim.Stats {
	return reclaim.Stats{Retired: s.retired, Freed: s.freed}
}

// TestFootprintGarbageClampsUnderflow: a scheme whose Freed outruns its
// Retired must read as zero garbage, not wrap the uint64 subtraction to
// ~1.8e19 and poison PeakRetiredNodes; the skew is recorded instead.
func TestFootprintGarbageClampsUnderflow(t *testing.T) {
	stub := &skewScheme{retired: 10, freed: 17}
	f := newFootprintSampler(nil, stub, 8, 1000, nil)
	if g := f.garbage(); g != 0 {
		t.Fatalf("garbage = %d, want 0 (clamped)", g)
	}
	if f.fp.AccountingSkew != 7 {
		t.Fatalf("AccountingSkew = %d, want 7", f.fp.AccountingSkew)
	}
	// The skew high-water mark tracks the worst observation.
	stub.freed = 13
	if f.garbage() != 0 || f.fp.AccountingSkew != 7 {
		t.Fatalf("skew high-water mark regressed: %+v", f.fp)
	}
	stub.freed = 9
	if g := f.garbage(); g != 1 {
		t.Fatalf("garbage = %d, want 1 once accounting recovers", g)
	}
}

// TestFootprintSamplerSurvivesSkewedScheme runs the sampler thread
// against the skewed stub end to end: peaks stay sane and the final
// sample reports zero, not an absurd phantom graveyard.
func TestFootprintSamplerSurvivesSkewedScheme(t *testing.T) {
	sim := simt.New(simt.Config{
		Cores: 1, Quantum: 10_000, Seed: 1,
		MaxCycles: 1_000_000_000,
		Heap:      simmem.Config{Words: 1 << 16},
	})
	stub := &skewScheme{retired: 3, freed: 5}
	f := newFootprintSampler(sim, stub, 8, 10_000, nil)
	sim.Spawn("sampler", f.run)
	sim.Spawn("closer", func(th *simt.Thread) {
		th.Work(100_000)
		f.stop = true
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if f.fp.PeakRetiredNodes != 0 || f.fp.FinalRetiredNodes != 0 {
		t.Fatalf("skew leaked into peaks: %+v", f.fp)
	}
	if f.fp.AccountingSkew != 2 {
		t.Fatalf("AccountingSkew = %d, want 2", f.fp.AccountingSkew)
	}
}
