package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"threadscan/internal/core"
	"threadscan/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out (A1-A4).  Each
// returns its rows and can render itself as a table.

// BufferRow is one point of the delete-buffer-size ablation (A1 — the
// paper's §6 tuning: "increasing the size of the delete buffer ... is a
// useful way of amortizing the cost of signals and of waiting.
// However, it also increases the size of the list of pointers").
type BufferRow struct {
	BufferSize int
	Result     Result
}

// AblationBuffer sweeps the per-thread delete buffer size on the
// oversubscribed hash table.
func AblationBuffer(sizes []int, p SweepParams, threads int) ([]BufferRow, error) {
	p.fill(4)
	if len(sizes) == 0 {
		sizes = []int{32, 64, 128, 256, 512, 1024}
	}
	if threads <= 0 {
		threads = p.Cores * 4
	}
	var rows []BufferRow
	for _, b := range sizes {
		cfg := baseConfig("hash", p)
		cfg.Scheme = "threadscan"
		cfg.Threads = threads
		cfg.Cores = p.Cores
		cfg.BufferSize = b
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BufferRow{BufferSize: b, Result: r})
	}
	return rows, nil
}

// WriteBufferTable renders the A1 ablation.
func WriteBufferTable(w io.Writer, rows []BufferRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "# A1: delete-buffer size (oversubscribed hash table)")
	fmt.Fprintln(tw, "buffer\tthroughput\tcollects\tmax_master\tsignals")
	for _, row := range rows {
		c := row.Result.Core
		fmt.Fprintf(tw, "%d\t%.0f\t%d\t%d\t%d\n",
			row.BufferSize, row.Result.Throughput, c.Collects, c.MaxMaster,
			row.Result.Sim.SignalsSent)
	}
	return tw.Flush()
}

// LookupRow is one point of the scan-lookup ablation (A3 — sorted
// binary search, the paper's §4.1 design, vs linear scan vs hash set).
type LookupRow struct {
	Lookup core.LookupKind
	Result Result
}

// AblationLookup compares TS-Scan membership structures on the list.
func AblationLookup(p SweepParams, threads int) ([]LookupRow, error) {
	p.fill(3)
	if threads <= 0 {
		threads = p.Cores
	}
	var rows []LookupRow
	for _, k := range []core.LookupKind{core.LookupBinary, core.LookupLinear, core.LookupHash} {
		cfg := baseConfig("list", p)
		cfg.Scheme = "threadscan"
		cfg.Threads = threads
		cfg.Cores = p.Cores
		cfg.Lookup = k
		// Linear lookup is quadratic in the master buffer; keep the
		// buffers modest so the ablation finishes.
		cfg.BufferSize = 256
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LookupRow{Lookup: k, Result: r})
	}
	return rows, nil
}

// WriteLookupTable renders the A3 ablation.
func WriteLookupTable(w io.Writer, rows []LookupRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "# A3: TS-Scan lookup structure (list, buffer 256)")
	fmt.Fprintln(tw, "lookup\tthroughput\thandler_cycles\tscanned_words")
	for _, row := range rows {
		c := row.Result.Core
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\n",
			row.Lookup, row.Result.Throughput, c.HandlerCycles, c.ScannedWords)
	}
	return tw.Flush()
}

// ScanCostRow is one point of the scan-overhead breakdown (A2 — "Stack
// scans are the main source of overhead for ThreadScan, although ...
// the overhead is well amortized across threads and against reclaimed
// nodes", §1.2).
type ScanCostRow struct {
	Threads int
	Result  Result
}

// AblationScanCost measures scan overhead vs thread count on the list,
// with and without HelpFree (the §7 latency-sharing extension).
func AblationScanCost(p SweepParams, helpFree bool) ([]ScanCostRow, error) {
	p.fill(3)
	var rows []ScanCostRow
	for _, n := range p.ThreadCounts {
		cfg := baseConfig("list", p)
		cfg.Scheme = "threadscan"
		cfg.Threads = n
		cfg.Cores = p.Cores
		cfg.HelpFree = helpFree
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScanCostRow{Threads: n, Result: r})
	}
	return rows, nil
}

// WriteScanCostTable renders the A2 ablation: handler cycles per
// reclaimed node and the handler share of total cycles.
func WriteScanCostTable(w io.Writer, rows []ScanCostRow, helpFree bool) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# A2: scan cost breakdown (list, HelpFree=%v)\n", helpFree)
	fmt.Fprintln(tw, "threads\tthroughput\tcollects\treclaimed\thandler_cyc/node\tcollect_cyc/node")
	for _, row := range rows {
		c := row.Result.Core
		reclaimed := c.Reclaimed + c.HelpFreed
		if reclaimed == 0 {
			reclaimed = 1
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%d\t%d\t%.1f\t%.1f\n",
			row.Threads, row.Result.Throughput, c.Collects, reclaimed,
			float64(c.HandlerCycles)/float64(reclaimed),
			float64(c.CollectCycles)/float64(reclaimed))
	}
	return tw.Flush()
}

// ShardRow is one point of the sharded-collect ablation (A5): the
// collect pipeline's shard count K crossed with the global watermark
// trigger, on a scenario whose retirement pattern actually stresses the
// reclaimer's serial section.
type ShardRow struct {
	Shards    int
	Watermark int
	Result    ScenarioResult
}

// AblationShards sweeps the collect pipeline's K and the watermark
// trigger on a built-in scenario (default zipfian-skew — the skewed
// retirement shape whose single hot reclaimer the pipeline exists to
// break up).  Each K runs with the watermark off and at half the
// aggregate delete-buffer capacity.  Of SweepParams, Seed, Cores, and
// Quantum pass straight through; Duration stretches every scenario
// phase proportionally, normalized so tsbench's 50ms -duration-ms
// default runs the scenario at its built-in length (pass 100ms for 2x,
// 25ms for 0.5x; 0 also keeps the built-in length — note this
// reference is the CLI default, not the figure sweeps' 20ms window).
// Scale and CacheSim do not apply to scenario runs.
func AblationShards(scenarioName string, ks []int, p SweepParams) ([]ShardRow, error) {
	if scenarioName == "" {
		scenarioName = "zipfian-skew"
	}
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8, 16}
	}
	base, ok := workload.ByName(scenarioName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown scenario %q", scenarioName)
	}
	if p.Duration > 0 {
		base = base.Scale(float64(p.Duration) / 50_000_000)
	}
	base.DS = "list"
	base.Scheme = "threadscan"
	if p.Seed != 0 {
		base.Seed = p.Seed
	}
	if p.Cores > 0 {
		base.Cores = p.Cores
	}
	if p.Quantum > 0 {
		base.Quantum = p.Quantum
	}
	if err := base.Fill(); err != nil {
		return nil, err
	}
	watermark := base.Threads * base.BufferSize / 2
	var rows []ShardRow
	for _, k := range ks {
		for _, wm := range []int{0, watermark} {
			spec := base
			spec.Shards = k
			spec.Watermark = wm
			r, err := RunScenario(spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ShardRow{Shards: k, Watermark: wm, Result: r})
		}
	}
	return rows, nil
}

// WriteShardTable renders the A5 ablation: the reclaimer's serial
// section (collect cycles) against throughput and the help protocol's
// work sharing, per K and watermark setting.
func WriteShardTable(w io.Writer, rows []ShardRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(rows) > 0 {
		fmt.Fprintf(tw, "# A5: sharded collect pipeline (%s, list/threadscan)\n", rows[0].Result.Name)
	}
	fmt.Fprintln(tw, "shards\twatermark\tthroughput\tcollects\tcollect_cyc\thandler_cyc\thelp_sorted\thelp_swept\tpeak_garbage")
	for _, row := range rows {
		c := row.Result.Core
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Shards, row.Watermark, row.Result.Throughput,
			c.Collects, c.CollectCycles, c.HandlerCycles,
			c.HelpSortedShards, c.HelpSweptShards,
			row.Result.Footprint.PeakRetiredNodes)
	}
	return tw.Flush()
}

// NUMARow is one point of the topology ablation (A6): one scenario run
// under one shard-claim policy on a two-node machine.
type NUMARow struct {
	Scenario string
	Claim    string
	Result   ScenarioResult
}

// AblationNUMA contrasts affinity-first against round-robin shard
// claiming on the NUMA scenarios (default numa-split, the worst-case
// cross-socket retirement shape, with numa-balanced as its control).
// SweepParams pass through as in AblationShards: Duration normalizes
// against the 50ms CLI default, Seed and Quantum apply directly; Cores
// is ignored (the scenarios fix their own core/node geometry).
func AblationNUMA(scenarioNames []string, p SweepParams) ([]NUMARow, error) {
	if len(scenarioNames) == 0 {
		scenarioNames = []string{"numa-split", "numa-balanced"}
	}
	var rows []NUMARow
	for _, name := range scenarioNames {
		base, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown scenario %q", name)
		}
		if p.Duration > 0 {
			base = base.Scale(float64(p.Duration) / 50_000_000)
		}
		base.DS = "stack"
		base.Scheme = "threadscan"
		if p.Seed != 0 {
			base.Seed = p.Seed
		}
		if p.Quantum > 0 {
			base.Quantum = p.Quantum
		}
		// A flat or unsharded scenario would make the claim-policy
		// contrast vacuous (ClaimPolicy only acts when nodes > 1 and
		// K > 1), so non-NUMA scenarios passed via -ablation-scenario
		// are lifted onto a pinned two-node machine with a sharded,
		// help-swept pipeline.
		if base.Nodes < 2 {
			base.Nodes = 2
		}
		if base.PinPolicy == "" || base.PinPolicy == "none" {
			base.PinPolicy = "rr"
		}
		if base.Shards <= 1 {
			base.Shards = 8
			base.HelpFree = true
		}
		for _, claim := range []string{"affinity", "rr"} {
			spec := base
			spec.ClaimPolicy = claim
			r, err := RunScenario(spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, NUMARow{Scenario: name, Claim: claim, Result: r})
		}
	}
	return rows, nil
}

// WriteNUMATable renders the A6 ablation: claim locality, cross-node
// memory traffic, and throughput per scenario and claim policy.
func WriteNUMATable(w io.Writer, rows []NUMARow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "# A6: NUMA shard affinity (stack/threadscan)")
	fmt.Fprintln(tw, "scenario\tclaim\tthroughput\tcollects\tlocal_claims\tremote_claims\tremote_fills\thelp_sorted\thelp_swept")
	for _, row := range rows {
		c := row.Result.Core
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Scenario, row.Claim, row.Result.Throughput,
			c.Collects, c.LocalShardClaims, c.RemoteShardClaims,
			row.Result.Sim.RemoteLineFills,
			c.HelpSortedShards, c.HelpSweptShards)
	}
	return tw.Flush()
}

// PerNodeRow is one point of the per-node reclamation ablation (A7):
// one scenario under one retirement-routing regime on a multi-node
// machine.  The three regimes tell the locality story in order:
// "global/rr" is the topology-blind pipeline, "global/affinity" is the
// A6 answer (globally hashed shards, affinity-first *claiming*), and
// "pernode" is this layer's answer — route at Free time, reclaim
// node-locally — which eliminates the sweep-side remote fills claiming
// alone cannot (a claimed shard still holds the other socket's lines).
type PerNodeRow struct {
	Scenario string
	Routing  string // global/rr | global/affinity | pernode
	Result   ScenarioResult
}

// AblationPerNode contrasts per-node retirement routing against the
// globally hashed pipeline under both claim policies (default:
// numa-split, the worst-case cross-socket shape, and
// numa-skewed-retire, the rebalancing adversary).  SweepParams pass
// through as in AblationNUMA: Duration normalizes against the 50ms CLI
// default, Seed and Quantum apply directly; Cores is ignored (the
// scenarios fix their own geometry).
func AblationPerNode(scenarioNames []string, p SweepParams) ([]PerNodeRow, error) {
	if len(scenarioNames) == 0 {
		scenarioNames = []string{"numa-split", "numa-skewed-retire"}
	}
	regimes := []struct {
		name    string
		claim   string
		perNode bool
	}{
		{"global/rr", "rr", false},
		{"global/affinity", "affinity", false},
		{"pernode", "affinity", true},
	}
	var rows []PerNodeRow
	for _, name := range scenarioNames {
		base, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown scenario %q", name)
		}
		if p.Duration > 0 {
			base = base.Scale(float64(p.Duration) / 50_000_000)
		}
		base.DS = "stack"
		base.Scheme = "threadscan"
		if p.Seed != 0 {
			base.Seed = p.Seed
		}
		if p.Quantum > 0 {
			base.Quantum = p.Quantum
		}
		// Routing needs a topology and claimable units, same lift as A6.
		if base.Nodes < 2 {
			base.Nodes = 2
		}
		if base.PinPolicy == "" || base.PinPolicy == "none" {
			base.PinPolicy = "rr"
		}
		if base.Shards <= 1 {
			base.Shards = 8
			base.HelpFree = true
		}
		for _, reg := range regimes {
			spec := base
			spec.ClaimPolicy = reg.claim
			spec.PerNode = reg.perNode
			r, err := RunScenario(spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PerNodeRow{Scenario: name, Routing: reg.name, Result: r})
		}
	}
	return rows, nil
}

// WritePerNodeTable renders the A7 ablation: sweep-side remote fills
// (the metric routing exists to zero), machine-wide remote fills,
// claim locality, steal activity, and the per-node collect balance.
func WritePerNodeTable(w io.Writer, rows []PerNodeRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "# A7: per-node retirement routing (stack/threadscan)")
	fmt.Fprintln(tw, "scenario\trouting\tthroughput\tcollects\tsweep-remote-fills\tremote-fills\tlocal-claims\tremote-claims\tstolen\tnode-collects")
	for _, row := range rows {
		c := row.Result.Core
		nodeCollects := "-"
		if len(c.NodeCollects) > 0 {
			nodeCollects = ""
			for i, n := range c.NodeCollects {
				if i > 0 {
					nodeCollects += "/"
				}
				nodeCollects += fmt.Sprintf("%d", n)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			row.Scenario, row.Routing, row.Result.Throughput, c.Collects,
			c.SweepRemoteFills, row.Result.Sim.RemoteLineFills,
			c.LocalShardClaims, c.RemoteShardClaims,
			c.StolenCollects+c.StolenSweeps, nodeCollects)
	}
	return tw.Flush()
}

// OverlapRow is one point of the concurrent-collect ablation (A9): one
// scenario at one node count, per-node collects serialized on the
// machine-wide reclamation lock vs running truly concurrently on the
// per-node collect slots.
type OverlapRow struct {
	Scenario string
	Nodes    int
	Mode     string // serialized | overlapped

	// CollectThroughput is reclaimed nodes — reclaimer sweeps plus
	// scanner help-frees — per virtual second: the collect-pipeline
	// capacity the per-node collect slots exist to scale.  With one
	// machine-wide lock it saturates at one pipeline's rate no matter
	// how many nodes retire; overlapped it should grow near-linearly
	// in the node count.
	CollectThroughput float64

	Result ScenarioResult
}

// overlapScale fixes the A9 scaling geometry: per-node resources are
// held constant (cores, threads, key range, prefill per node) while
// the node count sweeps, so each added node brings one more retire
// stream and one more collect pipeline.  A skewed base (any worker-mix
// entry with no updates, i.e. numa-skewed-retire) keeps all retirement
// on node 0 — the shape that cannot scale and shows the steal path
// stays live; a symmetric base retires on every node.
func overlapScale(base workload.Scenario, nodes int) workload.Scenario {
	const (
		coresPerNode   = 4
		threadsPerNode = 4
	)
	spec := base
	spec.Nodes = nodes
	spec.Cores = coresPerNode * nodes
	spec.Threads = threadsPerNode * nodes
	spec.PinPolicy = "rr"
	spec.KeyRange = base.KeyRange * uint64(nodes)
	spec.Prefill = base.Prefill * nodes
	// Keep the collect trigger well above threads x stack words so
	// sweep and aggregate — the per-node work — dominate the scan —
	// the all-threads work — and the pipeline is worth overlapping.
	spec.BufferSize = 512
	skewed := false
	for _, m := range base.WorkerMix {
		if m.InsertPct == 0 && m.RemovePct == 0 {
			skewed = true
		}
	}
	retire := workload.Mix{InsertPct: 40, RemovePct: 40}
	if skewed {
		// Node 0 retires everything; the other nodes only read.
		mix := make([]workload.Mix, nodes)
		mix[0] = retire
		spec.WorkerMix = mix
	} else {
		// Node-symmetric retire pressure: every node drives its own
		// collect pipeline equally.
		spec.WorkerMix = nil
	}
	phases := make([]workload.Phase, len(base.Phases))
	copy(phases, base.Phases)
	for i := range phases {
		phases[i].Mix = retire
	}
	spec.Phases = phases
	return spec
}

// AblationOverlap contrasts serialized against concurrent per-node
// collects across node counts (A9).  Defaults: per-node-reclaim (the
// symmetric routing shape, where collect throughput should scale
// near-linearly in nodes once collects overlap) and numa-skewed-retire
// (the single-retiring-node adversary, which cannot scale and checks
// that steal arbitration under overlap stays sound).  SweepParams pass
// through as in AblationNUMA; Cores is ignored (the sweep fixes four
// cores and four threads per node).
func AblationOverlap(scenarioNames []string, nodeCounts []int, p SweepParams) ([]OverlapRow, error) {
	if len(scenarioNames) == 0 {
		scenarioNames = []string{"per-node-reclaim", "numa-skewed-retire"}
	}
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4}
	}
	modes := []struct {
		name      string
		serialize bool
	}{
		{"serialized", true},
		{"overlapped", false},
	}
	var rows []OverlapRow
	for _, name := range scenarioNames {
		base, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown scenario %q", name)
		}
		if p.Duration > 0 {
			base = base.Scale(float64(p.Duration) / 50_000_000)
		}
		base.DS = "stack"
		base.Scheme = "threadscan"
		if p.Seed != 0 {
			base.Seed = p.Seed
		}
		if p.Quantum > 0 {
			base.Quantum = p.Quantum
		}
		for _, n := range nodeCounts {
			spec := overlapScale(base, n)
			for _, mode := range modes {
				s := spec
				s.SerializeCollects = mode.serialize
				r, err := RunScenario(s)
				if err != nil {
					return nil, err
				}
				ct := 0.0
				if r.Core != nil && r.VirtualSeconds > 0 {
					ct = float64(r.Core.Reclaimed+r.Core.HelpFreed) / r.VirtualSeconds
				}
				rows = append(rows, OverlapRow{
					Scenario: name, Nodes: n, Mode: mode.name,
					CollectThroughput: ct, Result: r,
				})
			}
		}
	}
	return rows, nil
}

// WriteOverlapTable renders the A9 ablation: collect throughput per
// node count with serialized and overlapped side by side, plus the
// overlap and steal evidence (overlapped collect count, stolen work,
// per-node collect balance).
func WriteOverlapTable(w io.Writer, rows []OverlapRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "# A9: concurrent per-node collects (stack/threadscan, 4 cores + 4 threads per node)")
	fmt.Fprintln(tw, "scenario\tnodes\tmode\tcollect-throughput\tcollects\toverlapped\tstolen\tops-throughput\tnode-collects")
	for _, row := range rows {
		c := row.Result.Core
		nodeCollects := "-"
		if len(c.NodeCollects) > 0 {
			nodeCollects = ""
			for i, n := range c.NodeCollects {
				if i > 0 {
					nodeCollects += "/"
				}
				nodeCollects += fmt.Sprintf("%d", n)
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.0f\t%d\t%d\t%d\t%.0f\t%s\n",
			row.Scenario, row.Nodes, row.Mode, row.CollectThroughput,
			c.Collects, c.OverlappedCollects,
			c.StolenCollects+c.StolenSweeps,
			row.Result.Throughput, nodeCollects)
	}
	return tw.Flush()
}

// AllocPoolRow is one point of the allocation-subsystem ablation (A8):
// one scenario under one allocator policy x retirement-routing regime
// on a multi-node machine.  The regimes tell the allocation-locality
// story in order: "global" is the single machine-wide pool (PR 4's end
// state — the sweep is node-local but a freed block is recycled by
// whichever node allocs next), "interleave" and "membind" are the
// numactl contrast points, and "localalloc" — with and without
// per-node retirement routing — is this layer's answer: per-node pools
// serve allocs node-locally and sweep-to-home routing returns every
// freed block to its resident node, closing the retire-on-N →
// collect-on-N → realloc-on-N loop.
type AllocPoolRow struct {
	Scenario string
	Policy   string // global | localalloc | membind | interleave
	Routing  string // global | pernode
	Result   ScenarioResult
}

// AblationAllocPool crosses allocator policies with retirement routing
// on the NUMA scenarios (default numa-split, the worst-case
// cross-socket shape, with realloc-local's closed loop as the second
// subject).  SweepParams pass through as in AblationNUMA: Duration
// normalizes against the 50ms CLI default, Seed and Quantum apply
// directly; Cores is ignored (the scenarios fix their own geometry).
func AblationAllocPool(scenarioNames []string, p SweepParams) ([]AllocPoolRow, error) {
	if len(scenarioNames) == 0 {
		scenarioNames = []string{"numa-split", "realloc-local"}
	}
	regimes := []struct {
		policy  string
		perNode bool
	}{
		{"global", false},
		{"global", true},
		{"interleave", true},
		{"membind", true},
		{"localalloc", false},
		{"localalloc", true},
	}
	var rows []AllocPoolRow
	for _, name := range scenarioNames {
		base, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown scenario %q", name)
		}
		if p.Duration > 0 {
			base = base.Scale(float64(p.Duration) / 50_000_000)
		}
		base.DS = "stack"
		base.Scheme = "threadscan"
		if p.Seed != 0 {
			base.Seed = p.Seed
		}
		if p.Quantum > 0 {
			base.Quantum = p.Quantum
		}
		// Pools need a topology and the routing needs claim units, the
		// same lift as A6/A7.
		if base.Nodes < 2 {
			base.Nodes = 2
		}
		if base.PinPolicy == "" || base.PinPolicy == "none" {
			base.PinPolicy = "rr"
		}
		if base.Shards <= 1 {
			base.Shards = 8
			base.HelpFree = true
		}
		for _, reg := range regimes {
			spec := base
			spec.AllocPolicy = reg.policy
			spec.PerNode = reg.perNode
			r, err := RunScenario(spec)
			if err != nil {
				return nil, err
			}
			routing := "global"
			if reg.perNode {
				routing = "pernode"
			}
			rows = append(rows, AllocPoolRow{
				Scenario: name, Policy: reg.policy, Routing: routing, Result: r})
		}
	}
	return rows, nil
}

// WriteAllocPoolTable renders the A8 ablation: alloc-side locality
// (remote hand-outs and their charged fills), free routing
// (home/remote frees), the sweep-side fills A7 zeroes, and throughput
// per policy and routing regime.
func WriteAllocPoolTable(w io.Writer, rows []AllocPoolRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "# A8: NUMA allocation pools (stack/threadscan)")
	fmt.Fprintln(tw, "scenario\tpolicy\trouting\tthroughput\tremote-allocs\talloc-remote-fills\thome-frees\tremote-frees\tsweep-remote-fills\tremote-fills")
	for _, row := range rows {
		c := row.Result.Core
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Scenario, row.Policy, row.Routing, row.Result.Throughput,
			row.Result.Heap.RemoteAllocs, row.Result.Sim.AllocRemoteFills,
			row.Result.Heap.HomeFrees, row.Result.Heap.RemoteFrees,
			c.SweepRemoteFills, row.Result.Sim.RemoteLineFills)
	}
	return tw.Flush()
}

// StallRow is one point of the errant-thread experiment (A4): the same
// application stall under Epoch vs ThreadScan.
type StallRow struct {
	Scheme string
	Result ScenarioResult
}

// AblationStall injects a periodically stalled thread (the first worker
// runs one empty operation stalled for stallCycles every stallEvery
// ops) and compares schemes.  Epoch reclaimers inherit the stall;
// ThreadScan's signal handler runs *inside* the stalled thread, so
// collects finish regardless — the paper's central liveness claim
// (§1.2, §2).  The stall is an *application* stall (StallKind "work"):
// the victim still reaches safepoints, so signals are delivered
// mid-stall.  Runs through the scenario engine and its declarative
// stall knobs — the same path the adversarial builtins use.
func AblationStall(p SweepParams, threads int, stallEvery int, stallCycles int64) ([]StallRow, error) {
	p.fill(3)
	if threads <= 0 {
		threads = p.Cores
	}
	if stallEvery <= 0 {
		stallEvery = 200
	}
	if stallCycles <= 0 {
		stallCycles = 2_000_000 // 2ms
	}
	duration := p.Duration
	if duration <= 0 {
		duration = 20_000_000
	}
	var rows []StallRow
	for _, scheme := range []string{"epoch", "threadscan"} {
		spec := workload.Scenario{
			Name:    "a4-errant-stall",
			DS:      "list",
			Scheme:  scheme,
			Threads: threads,
			Cores:   p.Cores,
			// The paper's list shape (§6), as baseConfig sizes it.
			KeyRange: 2048,
			Prefill:  1024,
			Seed:     p.Seed,
			Quantum:  p.Quantum,
			Phases: []workload.Phase{{
				Name: "stalled", Duration: duration,
				Mix: workload.Mix{InsertPct: 10, RemovePct: 10},
			}},
			StallEvery:   stallEvery,
			StallCycles:  stallCycles,
			StallVictims: 1,
			StallKind:    "work",
			// Small batches so reclamation happens often enough to
			// overlap the stall windows.
			Batch:      32,
			BufferSize: 64,
		}
		r, err := RunScenario(spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StallRow{Scheme: scheme, Result: r})
	}
	return rows, nil
}

// WriteStallTable renders the A4 experiment.
func WriteStallTable(w io.Writer, rows []StallRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "# A4: errant stalled thread (list; first worker stalls mid-operation)")
	fmt.Fprintln(tw, "scheme\tthroughput\treclaim_passes\tgrace_wait_cycles\tfreed\tpeak_garbage")
	for _, row := range rows {
		st := row.Result.SchemeStats
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%d\t%d\n",
			row.Scheme, row.Result.Throughput, st.ReclaimPasses,
			st.GraceWaitCycles, st.Freed,
			row.Result.Footprint.ExactPeakRetiredNodes)
	}
	return tw.Flush()
}

// RobustRow is one point of the robustness ablation (A10): one scheme
// at one stall length on the stalled-scanner adversary.
type RobustRow struct {
	Scheme      string
	StallCycles int64
	Result      ScenarioResult
}

// AblationRobust is A10: the bounded-garbage contrast the robust
// family exists for.  A preempted reader (deaf to signals, parked
// mid-operation) holds its position for increasing stall lengths while
// the other workers churn; epoch's grace periods and ThreadScan's scan
// barrier both inherit the stall, so their exact peak retired garbage
// grows with it, while hyaline's per-batch reference counts let every
// batch the victim never entered free underneath it — its peak stays
// bounded, independent of stall length.  Default subject: the
// stalled-scanner builtin; SweepParams pass through as in
// AblationShards (Duration normalizes against the 50ms CLI default,
// Seed and Quantum apply directly; Cores is ignored — the scenario
// fixes its geometry).  The stall lengths are absolute (not scaled by
// Duration).
func AblationRobust(scenarioName string, stallCycles []int64, p SweepParams) ([]RobustRow, error) {
	if scenarioName == "" {
		scenarioName = "stalled-scanner"
	}
	if len(stallCycles) == 0 {
		stallCycles = []int64{1_000_000, 2_000_000, 6_000_000}
	}
	base, ok := workload.ByName(scenarioName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown scenario %q", scenarioName)
	}
	if p.Duration > 0 {
		base = base.Scale(float64(p.Duration) / 50_000_000)
	}
	base.DS = "list"
	if p.Seed != 0 {
		base.Seed = p.Seed
	}
	if p.Quantum > 0 {
		base.Quantum = p.Quantum
	}
	var rows []RobustRow
	for _, scheme := range []string{"epoch", "threadscan", "hyaline"} {
		for _, stall := range stallCycles {
			spec := base
			spec.Scheme = scheme
			spec.StallCycles = stall
			r, err := RunScenario(spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RobustRow{Scheme: scheme, StallCycles: stall, Result: r})
		}
	}
	return rows, nil
}

// WriteRobustTable renders the A10 ablation: the exact peak retired
// garbage (the robustness metric) against stall length per scheme,
// with the sampled peak alongside to show the aliasing the exact
// counter fixes.
func WriteRobustTable(w io.Writer, rows []RobustRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(rows) > 0 {
		fmt.Fprintf(tw, "# A10: bounded garbage under preemption (%s, list)\n", rows[0].Result.Name)
	}
	fmt.Fprintln(tw, "scheme\tstall_cycles\tthroughput\texact_peak_nodes\texact_peak_words\tsampled_peak_nodes\tfreed\tpending")
	for _, row := range rows {
		st := row.Result.SchemeStats
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%d\t%d\t%d\t%d\n",
			row.Scheme, row.StallCycles, row.Result.Throughput,
			row.Result.Footprint.ExactPeakRetiredNodes,
			row.Result.Footprint.ExactPeakRetiredWords,
			row.Result.Footprint.PeakRetiredNodes,
			st.Freed, st.Pending)
	}
	return tw.Flush()
}
