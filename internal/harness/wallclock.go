package harness

import "time"

// The harness is held to the same determinism bar as the simulated
// packages (it computes digests and results from simulation output),
// but it legitimately measures one host-side quantity: how long the
// simulation took to run, reported as WallTime metadata that never
// feeds a digest.  wallNow is the single sanctioned wall-clock entry
// point — the simdeterminism analyzer allowlists exactly this symbol,
// so any other time.Now/Since in the harness is a lint error.

// wallNow reads the host clock for WallTime metadata.
func wallNow() time.Time {
	return time.Now()
}

// wallSince returns the host time elapsed since t0, via wallNow so the
// banned API surface stays one function wide.
func wallSince(t0 time.Time) time.Duration {
	return wallNow().Sub(t0)
}
