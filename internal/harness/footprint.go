package harness

import (
	"threadscan/internal/obs"
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// Memory-footprint telemetry: the Hyaline-style robustness metric.
// Throughput says how fast a scheme runs; the footprint time series
// says how much retired-but-unreclaimed garbage it lets accumulate
// while running — the axis on which the related work (Hyaline,
// Crystalline) argues reclamation schemes must actually be compared.
// A scheme with great throughput and unbounded peak garbage (Leaky is
// the limit case) fails workloads a bounded scheme survives.

// FootprintSample is one point of the time series.
type FootprintSample struct {
	At int64 `json:"at_cycles"` // virtual time of the sample

	// LiveWords is every live allocation in the arena: structure nodes,
	// retired-but-unreclaimed nodes, and infrastructure words.
	LiveWords uint64 `json:"live_words"`

	// RetiredNodes / RetiredWords are nodes handed to Retire and not
	// yet returned to the allocator — the scheme's garbage at this
	// instant (delete buffers, retire lists, orphans, leaked nodes).
	RetiredNodes uint64 `json:"retired_nodes"`
	RetiredWords uint64 `json:"retired_words"`
}

// Footprint is the sampled series plus its peaks.
type Footprint struct {
	SampleEvery int64 `json:"sample_every_cycles"`
	NodeWords   int   `json:"node_words"` // allocator words per structure node

	Samples []FootprintSample `json:"samples,omitempty"`

	PeakLiveWords    uint64 `json:"peak_live_words"`
	PeakRetiredNodes uint64 `json:"peak_retired_nodes"`
	PeakRetiredWords uint64 `json:"peak_retired_words"` // peak unreclaimed garbage

	// ExactPeakRetiredNodes/Words are the scheme-maintained running
	// peak (reclaim.Stats.PeakRetired), updated at every Retire and
	// free rather than on the sampling cadence — the headline
	// robustness metric.  The sampled peaks above can only undercount
	// it: a retire burst fully reclaimed within one SampleEvery window
	// never appears in the series.  Zero for Leaky, whose graveyard is
	// counted in Leaked (and in the sampled series) instead.
	ExactPeakRetiredNodes uint64 `json:"exact_peak_retired_nodes"`
	ExactPeakRetiredWords uint64 `json:"exact_peak_retired_words"`

	// PeakUndercountNodes reconciles the two: how far the sampled peak
	// fell short of the exact one (exact - sampled, clamped at zero) —
	// the aliasing error the sampling cadence introduced on this run.
	PeakUndercountNodes uint64 `json:"peak_undercount_nodes,omitempty"`

	// FinalRetiredNodes is the garbage still held after teardown flush:
	// 0 for every sound reclaiming scheme, the whole graveyard for
	// Leaky.
	FinalRetiredNodes uint64 `json:"final_retired_nodes"`

	// AccountingSkew is the largest Freed-minus-Retired excess any
	// sample observed.  A sound scheme never frees more than was
	// retired, so nonzero skew flags broken scheme accounting; the
	// sampler clamps the garbage estimate at zero instead of letting
	// the uint64 subtraction wrap to ~1.8e19 and poison the peaks.
	AccountingSkew uint64 `json:"accounting_skew,omitempty"`
}

// footprintSampler runs inside a dedicated simulated thread, sampling
// scheme and heap counters on a virtual-time cadence.  Reading the
// counters is host-side work (the discrete-event scheduler serializes
// all threads, so a quiescent read is always consistent); the sampler
// charges a token cost per sample so it occupies a core slot like a
// real monitoring thread would.
//
// Storage lives in the metrics engine: the sampler pushes each point
// into two PushedSeries — the first series migrated off ad-hoc slices
// — and rebuilds the byte-compatible Footprint.Samples view from them
// at teardown.  The sampling *thread* is unchanged (same spawn slot,
// same 200-cycle charge, same cadence), so schedules and every derived
// digest stay bit-identical to the pre-engine harness.
type footprintSampler struct {
	sim     *simt.Sim
	scheme  reclaim.Scheme
	fp      Footprint
	stop    bool
	garbSer *obs.PushedSeries
	liveSer *obs.PushedSeries
}

// newFootprintSampler wires a sampler into m's registry.  A nil or
// disabled engine (footprint telemetry predates the metrics flag and
// is always on) gets a private one so there is a single storage path.
func newFootprintSampler(sim *simt.Sim, scheme reclaim.Scheme, nodeWords int, every int64, m *obs.Metrics) *footprintSampler {
	if !m.Enabled() {
		m = obs.NewMetrics(0)
	}
	return &footprintSampler{
		sim:     sim,
		scheme:  scheme,
		fp:      Footprint{SampleEvery: every, NodeWords: nodeWords},
		garbSer: m.Pushed("footprint_garbage_nodes", obs.SeriesGauge),
		liveSer: m.Pushed("footprint_live_words", obs.SeriesGauge),
	}
}

// run is the sampler thread body: sample every SampleEvery cycles until
// stopped, then take one final post-flush sample.
func (f *footprintSampler) run(th *simt.Thread) {
	for !f.stop {
		f.sample(th)
		next := th.Now() + f.fp.SampleEvery
		for th.Now() < next && !f.stop {
			th.Sleep(next - th.Now()) // re-sleep across EINTR (scan signals)
		}
	}
	f.sample(th)
	f.fp.FinalRetiredNodes = f.garbage()
	if f.fp.ExactPeakRetiredNodes > f.fp.PeakRetiredNodes {
		f.fp.PeakUndercountNodes = f.fp.ExactPeakRetiredNodes - f.fp.PeakRetiredNodes
	}
	f.rebuildSamples()
}

// rebuildSamples materializes the legacy Footprint.Samples view from
// the pushed series, field for field what the ad-hoc slice held.
func (f *footprintSampler) rebuildSamples() {
	garb, live := f.garbSer.Points(), f.liveSer.Points()
	if len(garb) == 0 {
		return
	}
	f.fp.Samples = make([]FootprintSample, len(garb))
	for i, p := range garb {
		retired := uint64(p.V)
		f.fp.Samples[i] = FootprintSample{
			At:           p.At,
			LiveWords:    uint64(live[i].V),
			RetiredNodes: retired,
			RetiredWords: retired * uint64(f.fp.NodeWords),
		}
	}
}

func (f *footprintSampler) garbage() uint64 {
	st := f.scheme.Stats()
	if st.PeakRetired > f.fp.ExactPeakRetiredNodes {
		f.fp.ExactPeakRetiredNodes = st.PeakRetired
		f.fp.ExactPeakRetiredWords = st.PeakRetired * uint64(f.fp.NodeWords)
	}
	if st.Freed > st.Retired {
		// Scheme accounting skew: record it (the run surfaces it as an
		// error) and clamp rather than wrap.
		if skew := st.Freed - st.Retired; skew > f.fp.AccountingSkew {
			f.fp.AccountingSkew = skew
		}
		return 0
	}
	return st.Retired - st.Freed
}

func (f *footprintSampler) sample(th *simt.Thread) {
	th.Charge(200) // counter reads + stores
	retired := f.garbage()
	at := th.Now()
	live := f.sim.Heap().Stats().LiveBytes / 8
	f.garbSer.Put(at, float64(retired))
	f.liveSer.Put(at, float64(live))
	if live > f.fp.PeakLiveWords {
		f.fp.PeakLiveWords = live
	}
	if retired > f.fp.PeakRetiredNodes {
		f.fp.PeakRetiredNodes = retired
		f.fp.PeakRetiredWords = retired * uint64(f.fp.NodeWords)
	}
}
