// Package harness drives the paper's evaluation (§6): workload
// generation, prefill, measurement, teardown, and the sweeps that
// regenerate every figure plus the ablations DESIGN.md calls out.
//
// Methodology mirrors the paper: a sorted-set workload with a 20%
// update ratio (half inserts, half removes, "so about 10% of all
// operations were node removals"), keys uniform over a range twice the
// steady-state size, structures prefilled to half the range.  Time is
// virtual: every thread runs until a fixed virtual wall-clock deadline
// (a thread's clock advances while it waits for a core, exactly like
// wall time in the paper's 10-second runs), and throughput is total
// completed operations per virtual second — so under oversubscription
// each thread contributes proportionally fewer operations, as on the
// paper's 40-core machine.
package harness

import (
	"fmt"
	"time"

	"threadscan/internal/core"
	"threadscan/internal/ds"
	"threadscan/internal/obs"
	"threadscan/internal/reclaim"
	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

// Config describes one experiment (one data point).
type Config struct {
	DS     string // list | hash | skiplist
	Scheme string // any name in SchemeNames (leaky | hazard | ... | hyaline)

	Threads int
	Cores   int
	Nodes   int // NUMA nodes (0/1 = flat machine)

	// AllocPolicy is the allocator's NUMA placement policy: "" /
	// "global" (single pool), "localalloc", "membind", or "interleave"
	// (per-node pools; see simmem.Policy).  Inert on a flat machine.
	AllocPolicy string

	// Duration is the measured phase's virtual wall-clock window in
	// cycles (1e9 cycles = 1 virtual second at the default Hz).  Each
	// thread runs until its clock — which advances through both
	// execution and core-queue waits — passes the deadline.
	Duration int64

	Seed int64

	// Workload shape.
	KeyRange      uint64
	Prefill       int
	UpdatePercent int // 20 => 10% inserts + 10% removes (paper §6)

	// Structure parameters.
	NodeBytes int // list/hash node padding; 0 = paper's 172
	Buckets   int // hash; 0 = KeyRange/32 (paper: expected bucket 32)

	// Scheme parameters.
	BufferSize     int              // threadscan delete buffer; 0 = 1024
	HelpFree       bool             // threadscan §7 extension
	Shards         int              // threadscan collect shards K; 0 = 1 (serial)
	Watermark      int              // threadscan global collect watermark; 0 = off
	Claim          core.ClaimPolicy // threadscan shard-claim order (NUMA ablation A6)
	PerNode        bool             // threadscan per-node routing + node-local reclaimers (A7)
	StealThreshold int              // threadscan per-node steal threshold; 0 = core default
	SerializeColl  bool             // threadscan: serialize per-node collects (A9 control)
	Lookup         core.LookupKind  // threadscan scan lookup (ablation A3)
	Batch          int              // hazard/epoch/stacktrack batch; 0 = 1024
	SlowDelay      int64            // slow-epoch cleanup stall; 0 = 40ms
	DelayVictim    int              // slow-epoch errant thread id; 0 = thread 0
	SegmentLen     int              // stacktrack segment; 0 = 16

	// Errant-thread injection (ablation A4): thread 0 executes one
	// empty operation stalled for StallCycles every StallEvery ops.
	StallEvery  int
	StallCycles int64

	// Simulator knobs (0 = defaults).
	Quantum   int64
	Hz        int64
	HeapWords int
	CacheSim  bool
	Chaos     bool

	// Obs, when non-nil, records lifecycle spans and latency histograms
	// for the run (threaded into every scheme and attached to the
	// simulator as its probe).  Recording never charges virtual cycles,
	// so results are bit-identical with or without it.
	Obs *obs.Recorder
}

func (c *Config) fill() {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Cores <= 0 {
		c.Cores = c.Threads
	}
	if c.Duration <= 0 {
		c.Duration = 20_000_000 // 20 virtual ms
	}
	if c.KeyRange == 0 {
		c.KeyRange = 2048
	}
	if c.Prefill == 0 {
		c.Prefill = int(c.KeyRange / 2)
	}
	if c.UpdatePercent == 0 {
		c.UpdatePercent = 20
	}
	if c.Buckets == 0 {
		c.Buckets = int(c.KeyRange / 32)
		if c.Buckets < 1 {
			c.Buckets = 1
		}
	}
	if c.BufferSize == 0 {
		c.BufferSize = core.DefaultBufferSize
	}
	if c.Batch == 0 {
		c.Batch = 1024
	}
	if c.SlowDelay == 0 {
		c.SlowDelay = 40_000_000 // the paper's 40ms at 1 GHz
	}
	if c.SegmentLen == 0 {
		c.SegmentLen = 16
	}
	if c.Hz == 0 {
		c.Hz = 1_000_000_000
	}
	if c.HeapWords == 0 {
		c.HeapWords = c.heapWordsEstimate() * policyHeapScale(c.AllocPolicy, c.Nodes)
	}
}

// policyHeapScale is the factor a heap-words estimate grows by under a
// per-node allocation policy: regions split the arena Nodes ways, so
// scaling keeps each node the headroom a global pool would have
// machine-wide (membind has no fallback to borrow it back).  Shared by
// the classic runner and the scenario engine so the two paths cannot
// drift.
func policyHeapScale(allocPolicy string, nodes int) int {
	if pol, err := simmem.ParsePolicy(allocPolicy); err == nil &&
		pol != simmem.PolicyGlobal && nodes > 1 {
		return nodes
	}
	return 1
}

// heapWordsEstimate sizes the arena from the workload: live structure
// nodes plus every scheme's worst-case buffered retirees plus slack.
func (c *Config) heapWordsEstimate() int {
	nodeBytes := c.NodeBytes
	if nodeBytes <= 0 {
		nodeBytes = ds.DefaultNodeBytes
	}
	per := simmem.ClassSizeBytes(nodeBytes)
	if c.DS == "skiplist" {
		per = simmem.ClassSizeBytes(15 * 8)
	}
	buffered := c.Threads*(c.BufferSize+c.Batch) + 4*c.Batch
	liveMax := int(c.KeyRange) + buffered + 4096
	words := liveMax * (per / 8) * 2
	p := 1 << 16
	for p < words {
		p <<= 1
	}
	return p
}

// Result is one experiment outcome.
type Result struct {
	Config Config

	Ops            uint64  // completed operations (all types)
	ElapsedCycles  int64   // global virtual time of the measured phase
	VirtualSeconds float64 // ElapsedCycles at Hz
	Throughput     float64 // Ops / VirtualSeconds

	FinalSize int // structure size after teardown

	Scheme reclaim.Stats
	Core   *core.Stats // ThreadScan protocol counters (nil otherwise)
	Sim    simt.SimStats
	Heap   simmem.Stats

	WallTime time.Duration // host time spent simulating (meta)
}

// schemeEntry is one registered reclamation scheme family: its name and
// the constructor binding it to a simulator under a harness Config.
type schemeEntry struct {
	name string
	// differential marks families compared by the cross-scheme
	// differential suite.  slow-epoch is excluded: it is the epoch
	// family with an injected stall, not a distinct discipline.
	differential bool
	build        func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan)
}

// schemeRegistry is the single source of truth for scheme names.
// BuildScheme, SchemeNames, the differential suite, and the CLI
// -scheme validation all derive from it; adding a family here is the
// only plumbing a new scheme needs.  Order is presentation order.
var schemeRegistry = []schemeEntry{
	{name: "leaky", differential: true,
		build: func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan) {
			return reclaim.NewLeaky(sim), nil
		}},
	{name: "hazard", differential: true,
		build: func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan) {
			return reclaim.NewHazard(sim, reclaim.HazardConfig{
				Slots: ds.SkipListHazardSlots, Batch: cfg.Batch, Obs: cfg.Obs}), nil
		}},
	{name: "epoch", differential: true,
		build: func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan) {
			return reclaim.NewEpoch(sim, reclaim.EpochConfig{
				Batch: cfg.Batch, Obs: cfg.Obs}), nil
		}},
	{name: "slow-epoch",
		build: func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan) {
			return reclaim.NewEpoch(sim, reclaim.EpochConfig{
				Batch: cfg.Batch, DelayCycles: cfg.SlowDelay,
				DelayVictim: cfg.DelayVictim, Obs: cfg.Obs}), nil
		}},
	{name: "threadscan", differential: true,
		build: func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan) {
			ts := reclaim.NewThreadScan(sim, core.Config{
				BufferSize: cfg.BufferSize, HelpFree: cfg.HelpFree, Lookup: cfg.Lookup,
				Shards: cfg.Shards, CollectWatermark: cfg.Watermark, Claim: cfg.Claim,
				PerNode: cfg.PerNode, StealThreshold: cfg.StealThreshold,
				SerializeCollects: cfg.SerializeColl, Obs: cfg.Obs})
			return ts, ts.Core()
		}},
	{name: "stacktrack", differential: true,
		build: func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan) {
			return reclaim.NewStackTrack(sim, reclaim.StackTrackConfig{
				SegmentLen: cfg.SegmentLen, Batch: cfg.Batch, Obs: cfg.Obs}), nil
		}},
	{name: "hyaline", differential: true,
		build: func(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan) {
			return reclaim.NewHyaline(sim, reclaim.HyalineConfig{
				Batch: cfg.Batch, Obs: cfg.Obs}), nil
		}},
}

// SchemeNames returns every registered scheme name in registry order.
func SchemeNames() []string {
	names := make([]string, len(schemeRegistry))
	for i, e := range schemeRegistry {
		names[i] = e.name
	}
	return names
}

// DifferentialSchemeNames returns the families the cross-scheme
// differential suite compares (every registered family except scheme
// *configurations* such as slow-epoch).
func DifferentialSchemeNames() []string {
	var names []string
	for _, e := range schemeRegistry {
		if e.differential {
			names = append(names, e.name)
		}
	}
	return names
}

// KnownScheme reports whether name is a registered scheme, letting
// CLIs reject typos at flag-parse time instead of mid-sweep.
func KnownScheme(name string) bool {
	for _, e := range schemeRegistry {
		if e.name == name {
			return true
		}
	}
	return false
}

// BuildScheme constructs the named scheme bound to sim, returning the
// inner ThreadScan core when applicable.
func BuildScheme(sim *simt.Sim, cfg Config) (reclaim.Scheme, *core.ThreadScan, error) {
	for _, e := range schemeRegistry {
		if e.name == cfg.Scheme {
			sc, tsCore := e.build(sim, cfg)
			return sc, tsCore, nil
		}
	}
	return nil, nil, fmt.Errorf("harness: unknown scheme %q (known: %v)",
		cfg.Scheme, SchemeNames())
}

// BuildSet constructs the named structure.
func BuildSet(sim *simt.Sim, sc reclaim.Scheme, cfg Config) (ds.Set, error) {
	switch cfg.DS {
	case "list":
		return ds.NewList(sim, sc, cfg.NodeBytes), nil
	case "hash":
		return ds.NewHashTable(sim, sc, cfg.Buckets, cfg.NodeBytes), nil
	case "skiplist":
		return ds.NewSkipList(sim, sc), nil
	default:
		return nil, fmt.Errorf("harness: unknown data structure %q", cfg.DS)
	}
}

// Run executes one experiment and returns its Result.
func Run(cfg Config) (Result, error) {
	cfg.fill()
	allocPolicy, err := simmem.ParsePolicy(cfg.AllocPolicy)
	if err != nil {
		return Result{}, err
	}
	sim := simt.New(simt.Config{
		Cores:      cfg.Cores,
		Nodes:      cfg.Nodes,
		Quantum:    cfg.Quantum,
		Seed:       cfg.Seed,
		Hz:         cfg.Hz,
		Chaos:      cfg.Chaos,
		CacheSim:   cfg.CacheSim,
		StackWords: 256,
		MaxCycles:  cfg.Duration*int64(cfg.Threads+4)*4 + 4_000_000_000,
		Heap:       simmem.Config{Words: cfg.HeapWords, Check: false, Poison: true, Policy: allocPolicy},
	})
	if cfg.Obs != nil {
		sim.SetProbe(cfg.Obs)
		sim.Heap().SetObserver(cfg.Obs)
	}
	sc, tsCore, err := BuildScheme(sim, cfg)
	if err != nil {
		return Result{}, err
	}
	set, err := BuildSet(sim, sc, cfg)
	if err != nil {
		return Result{}, err
	}

	nT := cfg.Threads
	startBar := sim.NewBarrier("measure-start", nT)
	endBar := sim.NewBarrier("measure-end", nT)
	tearBar := sim.NewBarrier("teardown", nT)

	opsPer := make([]uint64, nT)
	startAt := make([]int64, nT)
	finishAt := make([]int64, nT)

	insThreshold := uint64(cfg.UpdatePercent) / 2
	remThreshold := uint64(cfg.UpdatePercent)

	for i := 0; i < nT; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("w%d", i), func(th *simt.Thread) {
			// Prefill: evenly spaced keys, striped across threads.
			for k := i; k < cfg.Prefill; k += nT {
				key := ds.MinKey + uint64(k)*cfg.KeyRange/uint64(cfg.Prefill)
				set.Insert(th, key)
			}
			startBar.Await(th)

			rng := th.RNG()
			start := th.Now()
			startAt[i] = start
			deadline := start + cfg.Duration
			ops := uint64(0)
			sinceStall := 0
			for th.Now() < deadline {
				if cfg.StallCycles > 0 && i == 0 {
					sinceStall++
					if sinceStall >= cfg.StallEvery {
						sinceStall = 0
						// One errant, empty, stalled operation (A4).
						sc.BeginOp(th)
						th.Work(cfg.StallCycles)
						sc.EndOp(th)
						ops++
						continue
					}
				}
				key := ds.MinKey + uint64(rng.Int63n(int64(cfg.KeyRange)))
				switch r := uint64(rng.Intn(100)); {
				case r < insThreshold:
					set.Insert(th, key)
				case r < remThreshold:
					set.Remove(th, key)
				default:
					set.Contains(th, key)
				}
				ops++
			}
			finishAt[i] = th.Now()
			opsPer[i] = ops
			endBar.Await(th)

			// Teardown: drop stale references, then flush reclaim
			// state so leak accounting is exact.
			for r := 0; r < simt.NumRegs; r++ {
				th.SetReg(r, 0)
			}
			tearBar.Await(th)
			sc.Flush(th)
		})
	}

	wallStart := wallNow()
	if err := sim.Run(); err != nil {
		return Result{}, fmt.Errorf("harness: %s/%s t=%d: %w", cfg.DS, cfg.Scheme, cfg.Threads, err)
	}
	res := Result{
		Config:   cfg,
		WallTime: wallSince(wallStart),
		Scheme:   sc.Stats(),
		Sim:      sim.Stats(),
		Heap:     sim.Heap().Stats(),
	}
	if tsCore != nil {
		st := tsCore.Stats()
		res.Core = &st
	}
	var minStart, maxFinish int64
	for i := 0; i < nT; i++ {
		res.Ops += opsPer[i]
		if i == 0 || startAt[i] < minStart {
			minStart = startAt[i]
		}
		if finishAt[i] > maxFinish {
			maxFinish = finishAt[i]
		}
	}
	res.ElapsedCycles = maxFinish - minStart
	res.VirtualSeconds = float64(res.ElapsedCycles) / float64(cfg.Hz)
	if res.VirtualSeconds > 0 {
		res.Throughput = float64(res.Ops) / res.VirtualSeconds
	}
	switch v := set.(type) {
	case *ds.List:
		res.FinalSize = v.Len()
	case *ds.HashTable:
		res.FinalSize = v.Len()
	case *ds.SkipList:
		res.FinalSize = v.Len()
	}
	return res, nil
}
