package harness

import (
	"encoding/json"
	"os"
	"testing"

	"threadscan/internal/workload"
)

// TestFlatModelMatchesCapturedBaseline: Nodes=1 (every pre-existing
// scenario) must reproduce the captured suite's virtual-cycle results
// bit-identically — the topology refactor's safety contract.  The
// golden file is BENCH_baseline.json at the repo root, regenerated
// with `tsbench scenarios -seed 1 -json BENCH_baseline.json`.
func TestFlatModelMatchesCapturedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline replay skipped in -short")
	}
	raw, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no captured baseline: %v", err)
	}
	var baseline []struct {
		Scenario      string  `json:"scenario"`
		DS            string  `json:"ds"`
		Scheme        string  `json:"scheme"`
		Ops           uint64  `json:"ops"`
		ElapsedCycles int64   `json:"elapsed_cycles"`
		TraceHash     uint64  `json:"trace_hash"`
		FinalSize     int     `json:"final_size"`
		Throughput    float64 `json:"throughput_ops_per_vsec"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}

	// Replay a cross-section of the grid: one flat scenario per family
	// against distinct structures and schemes, plus a multi-node row —
	// Nodes > 1 with per-node routing *disabled* must also stay
	// bit-identical, the per-node refactor's safety contract.  (The
	// full grid is the CI bench job's business; this keeps `go test`
	// minutes-free.)
	want := map[[3]string]bool{
		{"uniform-baseline", "list", "threadscan"}: true,
		{"delete-storm", "stack", "epoch"}:         true,
		{"thread-churn", "queue", "threadscan"}:    true,
		{"numa-split", "stack", "threadscan"}:      true,
	}
	replayed := 0
	for _, b := range baseline {
		if !want[[3]string{b.Scenario, b.DS, b.Scheme}] {
			continue
		}
		replayed++
		b := b
		t.Run(b.Scenario+"/"+b.DS+"/"+b.Scheme, func(t *testing.T) {
			t.Parallel()
			spec, ok := workload.ByName(b.Scenario)
			if !ok {
				t.Fatalf("baseline names unknown scenario %q", b.Scenario)
			}
			spec.DS, spec.Scheme, spec.Seed = b.DS, b.Scheme, 1
			r, err := RunScenario(spec)
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops != b.Ops || r.ElapsedCycles != b.ElapsedCycles ||
				r.TraceHash != b.TraceHash || r.FinalSize != b.FinalSize {
				t.Errorf("diverged from captured baseline:\n  ops %d != %d\n  cycles %d != %d\n  trace %x != %x\n  final %d != %d",
					r.Ops, b.Ops, r.ElapsedCycles, b.ElapsedCycles,
					r.TraceHash, b.TraceHash, r.FinalSize, b.FinalSize)
			}
		})
	}
	if replayed != len(want) {
		t.Fatalf("replayed %d of %d baseline rows — regenerate BENCH_baseline.json?", replayed, len(want))
	}
}

// TestNUMAAffinityBeatsRoundRobin (the A6 claim): on the numa-split
// scenario, affinity-first claiming must reduce both remote shard
// claims and remote line fills versus round-robin, without giving up
// throughput.
func TestNUMAAffinityBeatsRoundRobin(t *testing.T) {
	if testing.Short() {
		t.Skip("NUMA ablation skipped in -short")
	}
	run := func(claim string) ScenarioResult {
		spec, ok := workload.ByName("numa-split")
		if !ok {
			t.Fatal("numa-split builtin missing")
		}
		spec = spec.Scale(0.5)
		spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
		spec.ClaimPolicy = claim
		r, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("claim %s: %v", claim, err)
		}
		return r
	}
	aff := run("affinity")
	rr := run("rr")
	if aff.Core.RemoteShardClaims >= rr.Core.RemoteShardClaims {
		t.Errorf("affinity remote claims %d, round-robin %d — affinity should claim less remotely",
			aff.Core.RemoteShardClaims, rr.Core.RemoteShardClaims)
	}
	if aff.Sim.RemoteLineFills >= rr.Sim.RemoteLineFills {
		t.Errorf("affinity remote fills %d, round-robin %d — affinity should fill less remotely",
			aff.Sim.RemoteLineFills, rr.Sim.RemoteLineFills)
	}
	if aff.Throughput < 0.95*rr.Throughput {
		t.Errorf("affinity throughput %.0f below round-robin %.0f", aff.Throughput, rr.Throughput)
	}
	// Both runs reclaim everything they retired (the policy moves
	// work, never drops it).
	for name, r := range map[string]ScenarioResult{"affinity": aff, "rr": rr} {
		if r.SchemeStats.Retired != r.SchemeStats.Freed+r.SchemeStats.Pending {
			t.Errorf("%s: retired %d != freed %d + pending %d",
				name, r.SchemeStats.Retired, r.SchemeStats.Freed, r.SchemeStats.Pending)
		}
	}
}

// TestScenarioPinPolicies: the engine pins workers (and churn
// workers) per policy, runs them to completion, and reports topology
// in the result.
func TestScenarioPinPolicies(t *testing.T) {
	for _, pin := range []string{"none", "rr", "split"} {
		spec := workload.Scenario{
			Name: "pin-" + pin, DS: "stack", Scheme: "threadscan",
			Threads: 4, Cores: 4, Nodes: 2, PinPolicy: pin,
			KeyRange: 256, Prefill: 64, Seed: 3,
			Phases: []workload.Phase{{Duration: 400_000,
				Mix: workload.Mix{InsertPct: 30, RemovePct: 30}}},
			Churn: &workload.Churn{Workers: 1, Generations: 1},
		}
		r, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("pin %s: %v", pin, err)
		}
		if r.Nodes != 2 || r.PinPolicy != pin {
			t.Fatalf("pin %s: result topology %d/%q", pin, r.Nodes, r.PinPolicy)
		}
		if r.Ops == 0 || r.ChurnWorkers != 1 {
			t.Fatalf("pin %s: ops %d churned %d", pin, r.Ops, r.ChurnWorkers)
		}
	}
}

// TestWorkerMixRoles: a producer/consumer WorkerMix actually skews
// per-role op streams — with producers-only inserting, the structure
// grows well past what a uniform mix leaves behind.
func TestWorkerMixRoles(t *testing.T) {
	base := workload.Scenario{
		Name: "roles", DS: "stack", Scheme: "leaky",
		Threads: 4, Cores: 4,
		KeyRange: 256, Prefill: 0, Seed: 5,
		Phases: []workload.Phase{{Duration: 400_000,
			Mix: workload.Mix{InsertPct: 10, RemovePct: 10}}},
	}
	uniform, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	roles := base
	roles.WorkerMix = []workload.Mix{
		{InsertPct: 90, RemovePct: 0},
		{InsertPct: 0, RemovePct: 20},
	}
	skewed, err := RunScenario(roles)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.FinalSize <= uniform.FinalSize {
		t.Fatalf("producer-heavy roles left size %d, uniform left %d — WorkerMix had no effect",
			skewed.FinalSize, uniform.FinalSize)
	}
}
