package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"threadscan/internal/obs"
	"threadscan/internal/workload"
)

// TestObservabilityOffIsBitIdentical: the observability layer's safety
// contract.  Replaying the captured baseline with recording disabled
// (nil recorder) AND with full span tracing must both reproduce every
// virtual-cycle result bit-identically — the recorder never charges
// cycles, so only host-side memory differs.
func TestObservabilityOffIsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline replay skipped in -short")
	}
	raw, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no captured baseline: %v", err)
	}
	var baseline []struct {
		Scenario      string `json:"scenario"`
		DS            string `json:"ds"`
		Scheme        string `json:"scheme"`
		Ops           uint64 `json:"ops"`
		ElapsedCycles int64  `json:"elapsed_cycles"`
		TraceHash     uint64 `json:"trace_hash"`
		FinalSize     int    `json:"final_size"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	want := map[[3]string]bool{
		{"uniform-baseline", "list", "threadscan"}: true,
		{"delete-storm", "stack", "epoch"}:         true,
		{"thread-churn", "queue", "threadscan"}:    true,
		{"numa-split", "stack", "threadscan"}:      true,
	}
	recorders := map[string]func() *obs.Recorder{
		"disabled": func() *obs.Recorder { return nil },
		"tracing":  obs.NewTraceRecorder,
	}
	replayed := 0
	for _, b := range baseline {
		if !want[[3]string{b.Scenario, b.DS, b.Scheme}] {
			continue
		}
		replayed++
		for mode, mk := range recorders {
			b, mk := b, mk
			t.Run(b.Scenario+"/"+b.DS+"/"+b.Scheme+"/"+mode, func(t *testing.T) {
				t.Parallel()
				spec, ok := workload.ByName(b.Scenario)
				if !ok {
					t.Fatalf("baseline names unknown scenario %q", b.Scenario)
				}
				spec.DS, spec.Scheme, spec.Seed = b.DS, b.Scheme, 1
				r, err := RunScenarioRecorded(spec, mk())
				if err != nil {
					t.Fatal(err)
				}
				if r.Ops != b.Ops || r.ElapsedCycles != b.ElapsedCycles ||
					r.TraceHash != b.TraceHash || r.FinalSize != b.FinalSize {
					t.Errorf("diverged from baseline:\n  ops %d != %d\n  cycles %d != %d\n  trace %x != %x\n  final %d != %d",
						r.Ops, b.Ops, r.ElapsedCycles, b.ElapsedCycles,
						r.TraceHash, b.TraceHash, r.FinalSize, b.FinalSize)
				}
				if r.Latency == nil {
					t.Error("Latency summary missing")
				}
			})
		}
	}
	if replayed != len(want) {
		t.Fatalf("replayed %d of %d baseline rows — regenerate BENCH_baseline.json?", replayed, len(want))
	}
}

// TestChurnedThreadsMergeOnce: SpawnFrom-churned workers record into
// the same recorder as persistent workers; every op observed exactly
// once (no loss, no double count), proven by the histogram count
// matching the engine's own op total.
func TestChurnedThreadsMergeOnce(t *testing.T) {
	spec, ok := workload.ByName("thread-churn")
	if !ok {
		t.Fatal("thread-churn builtin missing")
	}
	spec = spec.Scale(0.25)
	spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
	rec := obs.NewRecorder()
	res, err := RunScenarioRecorded(spec, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnWorkers == 0 {
		t.Fatal("scenario churned no workers — test proves nothing")
	}
	if got := rec.StageCount(obs.StageOp); got != int64(res.Ops) {
		t.Errorf("recorder op count %d != engine ops %d (churned threads lost or double-counted)",
			got, res.Ops)
	}
	if res.Latency.Op.Count != int64(res.Ops) {
		t.Errorf("summary op count %d != engine ops %d", res.Latency.Op.Count, res.Ops)
	}
	if res.Latency.Op.P50 <= 0 || res.Latency.Op.P999 < res.Latency.Op.P50 {
		t.Errorf("implausible op quantiles: %+v", res.Latency.Op)
	}
}

// TestTraceCoversLifecycle: a traced numa-split run must contain at
// least one complete span for every collect-lifecycle stage the
// acceptance criteria name.
func TestTraceCoversLifecycle(t *testing.T) {
	spec, ok := workload.ByName("numa-split")
	if !ok {
		t.Fatal("numa-split builtin missing")
	}
	spec = spec.Scale(0.5)
	spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
	rec := obs.NewTraceRecorder()
	res, err := RunScenarioRecorded(spec, rec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runs := []obs.TraceRun{{Label: "numa-split stack/threadscan", Rec: rec}}
	for _, pw := range res.Scenario.PhaseWindows() {
		runs[0].Windows = append(runs[0].Windows, obs.Window{
			Name: pw.Name, Start: res.MeasuredStart + pw.Start, End: res.MeasuredStart + pw.End})
	}
	if err := obs.WriteChromeTrace(&buf, runs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans[e.Name]++
		}
	}
	for _, stage := range []string{"signal", "scan", "handshake-wait", "sort", "sweep", "free"} {
		if spans[stage] == 0 {
			t.Errorf("trace has no %q span (spans present: %v)", stage, spans)
		}
	}
	if spans["ferry"] == 0 {
		t.Errorf("trace has no phase window row (spans present: %v)", spans)
	}
}
