package harness

import (
	"testing"

	"threadscan/internal/workload"
)

// runAllocPolicy runs numa-split (stack/threadscan) under one allocator
// policy x routing regime at half scale.
func runAllocPolicy(t *testing.T, policy string, perNode bool) ScenarioResult {
	t.Helper()
	spec, ok := workload.ByName("numa-split")
	if !ok {
		t.Fatal("numa-split builtin missing")
	}
	spec = spec.Scale(0.5)
	spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
	spec.AllocPolicy = policy
	spec.PerNode = perNode
	r, err := RunScenario(spec)
	if err != nil {
		t.Fatalf("%s/pernode=%v: %v", policy, perNode, err)
	}
	if r.AccountingError != "" {
		t.Fatalf("%s/pernode=%v: %s", policy, perNode, r.AccountingError)
	}
	return r
}

// TestAllocPoolLocalallocClosesAllocLeak is the A8 claim: on
// numa-split, localalloc + the per-node sweep serve every allocation
// from the requester's own node — alloc-side remote hand-outs drop to
// zero — at equal or better throughput than the global pool, which
// leaks locality (and leaks *more* once the per-node sweep recycles
// faster).
func TestAllocPoolLocalallocClosesAllocLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("allocpool ablation skipped in -short")
	}
	globalFlat := runAllocPolicy(t, "global", false)
	globalPN := runAllocPolicy(t, "global", true)
	localPN := runAllocPolicy(t, "localalloc", true)

	// The global pool hands out cross-resident blocks; per-node pools
	// must not, ever.
	if globalFlat.Heap.RemoteAllocs == 0 {
		t.Error("global pool on numa-split produced no remote hand-outs — the leak the ablation demonstrates is gone")
	}
	if localPN.Heap.RemoteAllocs != 0 {
		t.Errorf("localalloc handed out %d cross-resident blocks, want 0", localPN.Heap.RemoteAllocs)
	}
	if localPN.Sim.AllocRemoteFills != 0 {
		t.Errorf("localalloc charged %d alloc-side remote fills, want 0", localPN.Sim.AllocRemoteFills)
	}
	if localPN.Heap.RemoteAllocs >= globalPN.Heap.RemoteAllocs ||
		localPN.Heap.RemoteAllocs >= globalFlat.Heap.RemoteAllocs {
		t.Errorf("localalloc remote allocs %d not below global's (flat %d, pernode %d)",
			localPN.Heap.RemoteAllocs, globalFlat.Heap.RemoteAllocs, globalPN.Heap.RemoteAllocs)
	}

	// The sweep side stays closed (A7's result must survive the pools).
	if localPN.Core.SweepRemoteFills != 0 {
		t.Errorf("per-node sweep paid %d remote fills under localalloc", localPN.Core.SweepRemoteFills)
	}

	// Free routing actually engaged: consumers return producer-resident
	// blocks to node 0's pool.
	if localPN.Heap.HomeFrees == 0 || localPN.Heap.RemoteFrees == 0 {
		t.Errorf("localalloc routed no frees: home %d remote %d",
			localPN.Heap.HomeFrees, localPN.Heap.RemoteFrees)
	}

	// Equal or better throughput than the global-pool configuration,
	// and within noise of global + per-node routing (the batched
	// remote-free flushes are the only added cost).
	if localPN.Throughput <= globalFlat.Throughput {
		t.Errorf("localalloc+pernode throughput %.0f not above the global pool's %.0f",
			localPN.Throughput, globalFlat.Throughput)
	}
	if localPN.Throughput < 0.95*globalPN.Throughput {
		t.Errorf("localalloc+pernode throughput %.0f fell more than 5%% below global+pernode's %.0f",
			localPN.Throughput, globalPN.Throughput)
	}

	// Nothing is lost to the routing: everything retired is freed or
	// still pending, for every regime.
	for name, r := range map[string]ScenarioResult{
		"global": globalFlat, "global+pernode": globalPN, "localalloc+pernode": localPN,
	} {
		st := r.SchemeStats
		if st.Retired != st.Freed+st.Pending {
			t.Errorf("%s: retired %d != freed %d + pending %d", name, st.Retired, st.Freed, st.Pending)
		}
	}
}

// TestMembindMatchesLocalallocUnderBalancedPressure: with both
// regions sized for the workload, membind behaves exactly like
// localalloc (the fallback never fires) — the numactl contrast is a
// safety-margin story, not a steady-state one.
func TestMembindMatchesLocalallocUnderBalancedPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("membind contrast skipped in -short")
	}
	local := runAllocPolicy(t, "localalloc", true)
	bind := runAllocPolicy(t, "membind", true)
	if local.TraceHash != bind.TraceHash || local.Ops != bind.Ops ||
		local.ElapsedCycles != bind.ElapsedCycles {
		t.Errorf("membind diverged from localalloc without region pressure:\n  trace %x/%x ops %d/%d cycles %d/%d",
			bind.TraceHash, local.TraceHash, bind.Ops, local.Ops, bind.ElapsedCycles, local.ElapsedCycles)
	}
}

// TestScenarioChurnOnNodePools: thread churn on a 2-node topology with
// per-node pools — churned workers' cache flushes route through the
// home-attribution path while the run is in flight, and the checked
// heap plus scheme accounting verify nothing is lost or double-freed.
func TestScenarioChurnOnNodePools(t *testing.T) {
	spec, ok := workload.ByName("thread-churn")
	if !ok {
		t.Fatal("thread-churn builtin missing")
	}
	spec = spec.Scale(0.5)
	spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 11
	spec.Nodes = 2
	spec.PinPolicy = "rr"
	spec.AllocPolicy = "localalloc"
	r, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccountingError != "" {
		t.Fatal(r.AccountingError)
	}
	if r.ChurnWorkers == 0 {
		t.Fatal("no churn workers ran")
	}
	if r.LeakedRegistrations > 0 {
		t.Fatalf("%d leaked registrations", r.LeakedRegistrations)
	}
	st := r.SchemeStats
	if st.Retired != st.Freed+st.Pending {
		t.Fatalf("retired %d != freed %d + pending %d", st.Retired, st.Freed, st.Pending)
	}
	if r.Heap.HomeFrees == 0 {
		t.Fatal("node pools never saw a home-routed free")
	}
}

// TestAblationAllocPoolRuns: the A8 sweep itself (the table tsbench
// renders) completes across every policy x routing regime.
func TestAblationAllocPoolRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("A8 sweep skipped in -short")
	}
	rows, err := AblationAllocPool([]string{"numa-split"}, SweepParams{Duration: 12_500_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("A8 produced %d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if row.Result.Ops == 0 {
			t.Errorf("%s/%s/%s ran no ops", row.Scenario, row.Policy, row.Routing)
		}
	}
}
