package harness

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"threadscan/internal/obs"
	"threadscan/internal/workload"
)

func findSeries(t *testing.T, series []obs.Series, name string) obs.Series {
	t.Helper()
	for _, s := range series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q missing (have %d series)", name, len(series))
	return obs.Series{}
}

func maxValue(s obs.Series) float64 {
	var mx float64
	for _, p := range s.Points {
		if p.V > mx {
			mx = p.V
		}
	}
	return mx
}

// TestMetricsOffIsBitIdentical: the metrics engine's safety contract.
// Replaying the captured baseline with full metrics sampling enabled
// (every registered series ticking on the footprint cadence) must
// reproduce every virtual-cycle result bit-identically: samplers read
// state on clock advance but never charge cycles, so the schedule —
// and therefore ops, elapsed cycles, trace hash, and final size —
// cannot move.  Only host-side memory differs.
func TestMetricsOffIsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline replay skipped in -short")
	}
	raw, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no captured baseline: %v", err)
	}
	var baseline []struct {
		Scenario      string `json:"scenario"`
		DS            string `json:"ds"`
		Scheme        string `json:"scheme"`
		Ops           uint64 `json:"ops"`
		ElapsedCycles int64  `json:"elapsed_cycles"`
		TraceHash     uint64 `json:"trace_hash"`
		FinalSize     int    `json:"final_size"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	want := map[[3]string]bool{
		{"uniform-baseline", "list", "threadscan"}: true,
		{"delete-storm", "stack", "epoch"}:         true,
		{"thread-churn", "queue", "threadscan"}:    true,
		{"numa-split", "stack", "threadscan"}:      true,
	}
	replayed := 0
	for _, b := range baseline {
		if !want[[3]string{b.Scenario, b.DS, b.Scheme}] {
			continue
		}
		replayed++
		b := b
		t.Run(b.Scenario+"/"+b.DS+"/"+b.Scheme, func(t *testing.T) {
			t.Parallel()
			spec, ok := workload.ByName(b.Scenario)
			if !ok {
				t.Fatalf("baseline names unknown scenario %q", b.Scenario)
			}
			spec.DS, spec.Scheme, spec.Seed = b.DS, b.Scheme, 1
			spec.MetricsEvery = -1 // full sampling on the footprint cadence
			r, err := RunScenarioRecorded(spec, obs.NewRecorder())
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops != b.Ops || r.ElapsedCycles != b.ElapsedCycles ||
				r.TraceHash != b.TraceHash || r.FinalSize != b.FinalSize {
				t.Errorf("metrics sampling perturbed the run:\n  ops %d != %d\n  cycles %d != %d\n  trace %x != %x\n  final %d != %d",
					r.Ops, b.Ops, r.ElapsedCycles, b.ElapsedCycles,
					r.TraceHash, b.TraceHash, r.FinalSize, b.FinalSize)
			}
			if len(r.Metrics) == 0 {
				t.Error("metrics were requested but no series came back — test proves nothing")
			}
		})
	}
	if replayed != len(want) {
		t.Fatalf("replayed %d of %d baseline rows — regenerate BENCH_baseline.json?", replayed, len(want))
	}
}

// TestFootprintSeriesReconciles: the footprint sampler is the first
// series migrated into the metrics engine; its pushed series, the
// rebuilt legacy Samples view, and the scheme's exact running peak
// must all tell one consistent story.
func TestFootprintSeriesReconciles(t *testing.T) {
	spec, ok := workload.ByName("per-node-reclaim")
	if !ok {
		t.Fatal("per-node-reclaim builtin missing")
	}
	spec = spec.Scale(0.25)
	spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
	spec.MetricsEvery = -1
	res, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	garb := findSeries(t, res.Metrics, "footprint_garbage_nodes")
	live := findSeries(t, res.Metrics, "footprint_live_words")
	if len(garb.Points) == 0 {
		t.Fatal("footprint series has no points")
	}

	// The legacy Samples view is rebuilt from the series, field for
	// field: same length, same timestamps, same values.
	fp := res.Footprint
	if len(fp.Samples) != len(garb.Points) || len(fp.Samples) != len(live.Points) {
		t.Fatalf("sample count mismatch: %d samples vs %d garbage / %d live points",
			len(fp.Samples), len(garb.Points), len(live.Points))
	}
	for i, s := range fp.Samples {
		if s.At != garb.Points[i].At || s.At != live.Points[i].At {
			t.Fatalf("sample %d timestamp mismatch: %d vs %d/%d",
				i, s.At, garb.Points[i].At, live.Points[i].At)
		}
		if s.RetiredNodes != uint64(garb.Points[i].V) || s.LiveWords != uint64(live.Points[i].V) {
			t.Fatalf("sample %d value mismatch: retired %d vs %.0f, live %d vs %.0f",
				i, s.RetiredNodes, garb.Points[i].V, s.LiveWords, live.Points[i].V)
		}
		if s.RetiredWords != s.RetiredNodes*uint64(fp.NodeWords) {
			t.Fatalf("sample %d retired words %d != nodes %d * %d",
				i, s.RetiredWords, s.RetiredNodes, fp.NodeWords)
		}
	}

	// The sampled peak is the series maximum, and the exact scheme-side
	// peak reconciles with it through the recorded undercount.
	if got := uint64(maxValue(garb)); got != fp.PeakRetiredNodes {
		t.Errorf("series max %d != sampled peak %d", got, fp.PeakRetiredNodes)
	}
	if fp.ExactPeakRetiredNodes < fp.PeakRetiredNodes {
		t.Errorf("exact peak %d below sampled peak %d — exact tracking broken",
			fp.ExactPeakRetiredNodes, fp.PeakRetiredNodes)
	}
	if want := fp.ExactPeakRetiredNodes - fp.PeakRetiredNodes; fp.PeakUndercountNodes != want {
		t.Errorf("undercount %d != exact %d - sampled %d",
			fp.PeakUndercountNodes, fp.ExactPeakRetiredNodes, fp.PeakRetiredNodes)
	}
}

// TestMetricsSeriesPresent mirrors the CI smoke: a traced
// per-node-reclaim run must emit non-empty timelines for the named
// series the exported-metrics contract promises.
func TestMetricsSeriesPresent(t *testing.T) {
	spec, ok := workload.ByName("per-node-reclaim")
	if !ok {
		t.Fatal("per-node-reclaim builtin missing")
	}
	spec = spec.Scale(0.25)
	spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
	spec.MetricsEvery = -1
	res, err := RunScenarioRecorded(spec, obs.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	named := []string{
		"ops", "throughput", "garbage_nodes", "op_p99",
		"remote_line_fills", "steals", "footprint_garbage_nodes",
	}
	nonEmpty := 0
	for _, s := range res.Metrics {
		if len(s.Points) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 6 {
		t.Errorf("only %d non-empty series (want >= 6)", nonEmpty)
	}
	for _, name := range named {
		if s := findSeries(t, res.Metrics, name); len(s.Points) == 0 {
			t.Errorf("series %q is empty", name)
		}
	}
	// Throughput's steady digest should be a sane ops-per-window level.
	tp := findSeries(t, res.Metrics, "throughput")
	if tp.SteadyMean <= 0 {
		t.Errorf("throughput steady mean %.2f, want > 0", tp.SteadyMean)
	}
}

// TestRobustContrastOverTime is A10's bounded-garbage contrast read
// off the timelines instead of scalar peaks: pin a scanner for 6M
// cycles on stalled-scanner and watch the garbage series.  Hyaline's
// per-batch reference counting keeps reclaiming while the scanner is
// out, so its timeline plateaus at its bound and stays flat; epoch
// and threadscan gate reclamation on the stalled thread, so their
// garbage keeps climbing until the stall ends.
//
// The slope window [2.5M, 7.4M] starts after every scheme's warmup
// ramp has plateaued and ends before the post-stall collect collapses
// the growers' series back toward zero.
func TestRobustContrastOverTime(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme stall runs skipped in -short")
	}
	const winLo, winHi = 2_500_000, 7_400_000
	type shape struct {
		slope float64 // per million cycles over the stall window
		max   float64
	}
	shapes := map[string]shape{}
	for _, scheme := range []string{"epoch", "threadscan", "hyaline"} {
		spec, ok := workload.ByName("stalled-scanner")
		if !ok {
			t.Fatal("stalled-scanner builtin missing")
		}
		spec.DS, spec.Scheme, spec.Seed = "list", scheme, 1
		spec.StallCycles = 6_000_000
		spec.MetricsEvery = -1
		res, err := RunScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		garb := findSeries(t, res.Metrics, "garbage_nodes")
		w := garb.Window(winLo, winHi)
		if len(w) < 10 {
			t.Fatalf("%s: only %d points in the stall window — cadence changed?", scheme, len(w))
		}
		shapes[scheme] = shape{
			slope: obs.Series{Points: w}.Slope(),
			max:   maxValue(garb),
		}
		t.Logf("%-10s stall-window slope %+.1f/Mcyc, peak %.0f", scheme, shapes[scheme].slope, shapes[scheme].max)
	}
	// Hyaline: flat at its bound (measured slope is exactly 0; allow
	// slack for future scheduling shifts).
	if s := shapes["hyaline"]; math.Abs(s.slope) > 5 {
		t.Errorf("hyaline garbage slope %+.1f/Mcyc in stall window, want flat (|slope| <= 5)", s.slope)
	}
	for _, grower := range []string{"epoch", "threadscan"} {
		g := shapes[grower]
		// Garbage keeps accumulating while the scanner is stalled
		// (measured slopes are +47 to +58 per Mcyc).
		if g.slope < 10 {
			t.Errorf("%s garbage slope %+.1f/Mcyc in stall window, want clearly positive (>= 10)", grower, g.slope)
		}
		// And the stall-end peak dwarfs hyaline's bound (measured
		// ratios are 3.1x and 3.7x).
		if g.max < 2*shapes["hyaline"].max {
			t.Errorf("%s peak garbage %.0f not >= 2x hyaline bound %.0f", grower, g.max, shapes["hyaline"].max)
		}
	}
}
