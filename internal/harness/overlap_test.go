package harness

import (
	"testing"

	"threadscan/internal/obs"
	"threadscan/internal/workload"
)

// overlapTestSpec is the per-node-reclaim A9 shape at the given node
// count, scaled to a short window (the ratios stabilize within a few
// collects per node).
func overlapTestSpec(t *testing.T, nodes int) workload.Scenario {
	t.Helper()
	base, ok := workload.ByName("per-node-reclaim")
	if !ok {
		t.Fatal("per-node-reclaim builtin missing")
	}
	base = base.Scale(0.2)
	base.DS = "stack"
	base.Scheme = "threadscan"
	base.Seed = 1
	return overlapScale(base, nodes)
}

// TestOverlapScalingRegression is the A9 acceptance gate: on the
// per-node-reclaim shape with fixed per-node geometry, concurrent
// collects must scale collect throughput by at least 1.7x from one
// node to two and at least 3x from one node to four, while the
// serialized control never overlaps a phase.
func TestOverlapScalingRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("A9 sweep skipped in -short")
	}
	rows, err := AblationOverlap([]string{"per-node-reclaim"}, []int{1, 2, 4},
		SweepParams{Duration: 10_000_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]interface{}]OverlapRow{}
	for _, row := range rows {
		byKey[[2]interface{}{row.Nodes, row.Mode}] = row
		c := row.Result.Core
		if row.Mode == "serialized" && c.OverlappedCollects != 0 {
			t.Errorf("serialized run at %d nodes overlapped %d collects — the machine-wide lock leaked",
				row.Nodes, c.OverlappedCollects)
		}
		if row.Mode == "overlapped" && row.Nodes >= 2 && c.OverlappedCollects == 0 {
			t.Errorf("overlapped run at %d nodes never overlapped a collect — the sweep proves nothing",
				row.Nodes)
		}
	}
	// At one node PerNode is inert, so both modes are the same classic
	// pipeline — the common scaling baseline.
	s1, o1 := byKey[[2]interface{}{1, "serialized"}], byKey[[2]interface{}{1, "overlapped"}]
	if s1.Result.Ops != o1.Result.Ops || s1.Result.ElapsedCycles != o1.Result.ElapsedCycles ||
		s1.Result.TraceHash != o1.Result.TraceHash {
		t.Errorf("single-node serialized and overlapped runs diverged: ops %d/%d cycles %d/%d",
			s1.Result.Ops, o1.Result.Ops, s1.Result.ElapsedCycles, o1.Result.ElapsedCycles)
	}
	base := o1.CollectThroughput
	if base <= 0 {
		t.Fatal("single-node run reclaimed nothing")
	}
	for _, want := range []struct {
		nodes int
		ratio float64
	}{{2, 1.7}, {4, 3.0}} {
		got := byKey[[2]interface{}{want.nodes, "overlapped"}].CollectThroughput / base
		if got < want.ratio {
			t.Errorf("overlapped collect throughput at %d nodes scaled %.2fx over one node, want >= %.1fx",
				want.nodes, got, want.ratio)
		}
	}
}

// TestStealUnderOverlapChaos stresses steal arbitration while collects
// overlap: node 0 retires far past the steal threshold while node 1
// runs its own collects, under the chaos scheduler across seeds.  The
// checked, poisoned heap faults any double free, the per-node collect
// slot panics on double admission, and the accounting must balance —
// every retired node freed exactly once or still pending.  Steals
// never target a node whose own reclaimer is active by construction
// (slot TryLock), so surviving the sweep with both steals and overlaps
// observed is the assertion.
func TestStealUnderOverlapChaos(t *testing.T) {
	base, ok := workload.ByName("numa-skewed-retire")
	if !ok {
		t.Fatal("numa-skewed-retire builtin missing")
	}
	base = base.Scale(0.4)
	base.DS = "stack"
	base.Scheme = "threadscan"
	// Node 1 retires too (unlike the builtin's pure readers), so its
	// own collects run while its threads steal node 0's backlog.
	base.WorkerMix = []workload.Mix{
		{InsertPct: 50, RemovePct: 50},
		{InsertPct: 10, RemovePct: 10},
	}
	base.Chaos = true
	var stole, overlapped uint64
	for seed := int64(1); seed <= 5; seed++ {
		spec := base
		spec.Seed = seed
		r, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.AccountingError != "" {
			t.Errorf("seed %d: %s", seed, r.AccountingError)
		}
		if r.LeakedRegistrations != 0 {
			t.Errorf("seed %d: %d leaked registrations", seed, r.LeakedRegistrations)
		}
		s := r.SchemeStats
		if s.Freed+s.Pending != s.Retired {
			t.Errorf("seed %d: free accounting unbalanced: freed %d + pending %d != retired %d",
				seed, s.Freed, s.Pending, s.Retired)
		}
		stole += s.StolenCollects
		overlapped += s.OverlappedCollects
	}
	if stole == 0 {
		t.Error("no seed stole a collect — the sweep never exercised steal-under-overlap")
	}
	if overlapped == 0 {
		t.Error("no seed overlapped collects — the sweep never exercised overlap")
	}
}

// TestOverlapCollectSpansDistinctNodes: the obs acceptance — two
// concurrently in-flight collects must be attributed to their own
// nodes in the trace, with genuinely overlapping time ranges.
func TestOverlapCollectSpansDistinctNodes(t *testing.T) {
	spec := overlapTestSpec(t, 4)
	rec := obs.NewTraceRecorder()
	if _, err := RunScenarioRecorded(spec, rec); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans(obs.StageCollect)
	if len(spans) < 2 {
		t.Fatalf("run produced %d collect spans, need at least 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Node < 0 {
			t.Fatalf("collect span without node attribution: %+v", sp)
		}
	}
	found := false
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.Node != b.Node && a.Start < b.Start+b.Dur && b.Start < a.Start+a.Dur {
				found = true
			}
		}
	}
	if !found {
		t.Error("no two time-overlapping collect spans with distinct nodes — overlap invisible in the trace")
	}
}

// TestOverlapZeroCostReplay: recording overlapped collects (node
// attribution included) charges no virtual cycles — a traced run is
// bit-identical to an untraced one.
func TestOverlapZeroCostReplay(t *testing.T) {
	spec := overlapTestSpec(t, 2)
	bare, err := RunScenarioRecorded(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunScenarioRecorded(spec, obs.NewTraceRecorder())
	if err != nil {
		t.Fatal(err)
	}
	if bare.Ops != traced.Ops || bare.ElapsedCycles != traced.ElapsedCycles ||
		bare.TraceHash != traced.TraceHash || bare.FinalSize != traced.FinalSize {
		t.Errorf("tracing changed the run: ops %d/%d cycles %d/%d trace %x/%x final %d/%d",
			bare.Ops, traced.Ops, bare.ElapsedCycles, traced.ElapsedCycles,
			bare.TraceHash, traced.TraceHash, bare.FinalSize, traced.FinalSize)
	}
	if bare.SchemeStats.OverlappedCollects == 0 {
		t.Error("replay pair never overlapped a collect — zero-cost claim untested on the overlap path")
	}
}
