package harness

import (
	"testing"

	"threadscan/internal/workload"
)

// Scenario-level checks for per-node retirement routing (the A7
// ablation's claims, pinned down as tests).

// TestPerNodeRoutingEliminatesRemoteSweeps: on numa-split — producers
// pinned to node 0 retiring into consumers pinned to node 1 — per-node
// routing must drive the sweep's remote line fills to exactly zero,
// where the globally hashed pipeline (even with affinity claiming)
// pays them on every cross-socket shard, and it must not give up
// throughput doing so.
func TestPerNodeRoutingEliminatesRemoteSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("per-node ablation skipped in -short")
	}
	run := func(perNode bool) ScenarioResult {
		spec, ok := workload.ByName("numa-split")
		if !ok {
			t.Fatal("numa-split builtin missing")
		}
		spec = spec.Scale(0.5)
		spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
		spec.PerNode = perNode
		r, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("perNode=%v: %v", perNode, err)
		}
		return r
	}
	routed := run(true)
	global := run(false)
	if got := routed.Core.SweepRemoteFills; got != 0 {
		t.Errorf("per-node routing left %d sweep-side remote fills, want 0", got)
	}
	if global.Core.SweepRemoteFills == 0 {
		t.Error("global pipeline paid no sweep remote fills — the contrast is vacuous")
	}
	if routed.Throughput < global.Throughput {
		t.Errorf("per-node throughput %.0f below global %.0f", routed.Throughput, global.Throughput)
	}
	// Both nodes ran their own collects, and nothing was lost.
	if len(routed.Core.NodeCollects) != 2 ||
		routed.Core.NodeCollects[0] == 0 || routed.Core.NodeCollects[1] == 0 {
		t.Errorf("collects not per-node: %v", routed.Core.NodeCollects)
	}
	for name, r := range map[string]ScenarioResult{"pernode": routed, "global": global} {
		if r.SchemeStats.Retired != r.SchemeStats.Freed+r.SchemeStats.Pending {
			t.Errorf("%s: retired %d != freed %d + pending %d",
				name, r.SchemeStats.Retired, r.SchemeStats.Freed, r.SchemeStats.Pending)
		}
		if r.LeakedRegistrations != 0 {
			t.Errorf("%s: %d leaked registrations", name, r.LeakedRegistrations)
		}
	}
	if !routed.PerNode || global.PerNode {
		t.Errorf("result PerNode flags wrong: routed=%v global=%v", routed.PerNode, global.PerNode)
	}
}

// TestPerNodeSkewedRetireRebalances: on numa-skewed-retire (node 0
// retires everything) the low steal threshold must produce observable
// cross-node work sharing — stolen sweeps or remote shard claims —
// while all collects originate on the retiring node.
func TestPerNodeSkewedRetireRebalances(t *testing.T) {
	if testing.Short() {
		t.Skip("per-node skew scenario skipped in -short")
	}
	spec, ok := workload.ByName("numa-skewed-retire")
	if !ok {
		t.Fatal("numa-skewed-retire builtin missing")
	}
	spec = spec.Scale(0.5)
	spec.DS, spec.Scheme, spec.Seed = "stack", "threadscan", 1
	r, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Core
	if c.NodeCollects[0] == 0 {
		t.Fatalf("retiring node ran no collects: %v", c.NodeCollects)
	}
	if c.NodeCollects[1] != 0 {
		t.Errorf("read-only node ran %d collects; only node 0 retires", c.NodeCollects[1])
	}
	if c.StolenSweeps+c.RemoteShardClaims == 0 {
		t.Errorf("skewed retirement produced no cross-node help: stolen=%d remote-claims=%d",
			c.StolenSweeps, c.RemoteShardClaims)
	}
	if r.SchemeStats.Retired != r.SchemeStats.Freed+r.SchemeStats.Pending {
		t.Errorf("retired %d != freed %d + pending %d",
			r.SchemeStats.Retired, r.SchemeStats.Freed, r.SchemeStats.Pending)
	}
}

// TestAblationPerNodeRuns: the A7 sweep produces a row per scenario
// and routing regime with the counters the table renders.
func TestAblationPerNodeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep skipped in -short")
	}
	rows, err := AblationPerNode([]string{"numa-split"}, SweepParams{Duration: 10_000_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 routing regimes", len(rows))
	}
	byRouting := map[string]ScenarioResult{}
	for _, row := range rows {
		if row.Result.Core == nil {
			t.Fatalf("%s/%s: no core stats", row.Scenario, row.Routing)
		}
		byRouting[row.Routing] = row.Result
	}
	if got := byRouting["pernode"].Core.SweepRemoteFills; got != 0 {
		t.Errorf("A7 pernode row reports %d sweep remote fills, want 0", got)
	}
	if byRouting["global/rr"].Core.SweepRemoteFills == 0 {
		t.Error("A7 global/rr row reports no sweep remote fills")
	}
}
