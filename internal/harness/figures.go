package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// Scale selects workload sizes: Quick keeps simulations laptop-fast
// while preserving every structural property; Paper uses the exact §6
// parameters (131k-node hash table, 128k-node skip list, 40 cores).
type Scale int

const (
	// ScaleQuick shrinks the big structures and core count.
	ScaleQuick Scale = iota
	// ScalePaper uses the paper's §6 parameters verbatim.
	ScalePaper
)

// SweepParams parameterizes a figure sweep.
type SweepParams struct {
	Scale        Scale
	ThreadCounts []int // per-point thread counts; nil = per-figure default
	Cores        int   // virtual cores; 0 = per-scale default
	Duration     int64 // per-thread virtual cycles; 0 = default (20ms)
	Quantum      int64 // scheduler timeslice in cycles; 0 = simt default
	Seed         int64
	CacheSim     bool
}

// baseConfig returns the per-structure workload of §6 at the chosen
// scale.  Reclamation batch sizes follow the measurement window: the
// paper's 1024-pointer buffers amortize over 10-second runs; quick runs
// measure tens of virtual milliseconds, so buffers scale to 128 (and
// the errant delay to 4ms) to keep the same reclamations-per-run ratio.
func baseConfig(dsName string, p SweepParams) Config {
	cfg := Config{DS: dsName, Duration: p.Duration, Seed: p.Seed,
		CacheSim: p.CacheSim, Quantum: p.Quantum}
	if cfg.Quantum == 0 {
		// The timeslice sets the signal-response rotation under
		// oversubscription ((threads/cores) x quantum) and must keep
		// the paper's ratio of collect cost to inter-collect interval.
		// Paper scale: 1ms (Linux-like) against 1024-deep buffers.
		// Quick scale: buffers shrink 8x, so the quantum does too.
		if p.Scale == ScalePaper {
			cfg.Quantum = 1_000_000
		} else {
			cfg.Quantum = 125_000
		}
	}
	if p.Scale == ScalePaper {
		cfg.BufferSize = 1024
		cfg.Batch = 1024
		cfg.SlowDelay = 40_000_000 // the paper's 40ms
	} else {
		// Scaled so that (a) several reclamation phases happen per
		// measured window, as in the paper's 10s runs, and (b) the
		// buffer stays well above the stale-register pinning floor
		// (~15 re-marked nodes per thread) so marked nodes do not
		// dominate the delete buffers.
		cfg.BufferSize = 128
		cfg.Batch = 128
		// The errant delay must exceed a reclaimer's inter-cleanup
		// interval (~5ms of thread time at these op rates) to show the
		// paper's collapse; 8ms keeps the paper's delay:batch ratio.
		cfg.SlowDelay = 8_000_000
	}
	switch dsName {
	case "list":
		// "Linked lists were 1024 nodes long, and the range of values
		// was 2048" — small enough to use verbatim at every scale.
		cfg.KeyRange = 2048
		cfg.Prefill = 1024
	case "hash":
		if p.Scale == ScalePaper {
			// "Hash tables contained 131,072 nodes with a range of
			// 262,144.  The expected bucket size was 32 nodes."
			cfg.KeyRange = 262_144
			cfg.Prefill = 131_072
			cfg.Buckets = 4096
		} else {
			cfg.KeyRange = 16_384
			cfg.Prefill = 8_192
			cfg.Buckets = 256
		}
	case "skiplist":
		if p.Scale == ScalePaper {
			// "Skip lists contained 128,000 nodes with a range of
			// values of 256,000."
			cfg.KeyRange = 256_000
			cfg.Prefill = 128_000
		} else {
			cfg.KeyRange = 16_000
			cfg.Prefill = 8_000
		}
	}
	return cfg
}

func (p *SweepParams) fill(fig int) {
	if p.Cores == 0 {
		if p.Scale == ScalePaper {
			p.Cores = 40 // the paper's 40-core, 80-thread Xeon
		} else {
			p.Cores = 8
		}
	}
	if len(p.ThreadCounts) == 0 {
		switch {
		case fig == 3 && p.Scale == ScalePaper:
			p.ThreadCounts = []int{1, 10, 20, 40, 60, 80}
		case fig == 3:
			p.ThreadCounts = []int{1, 2, 4, 8, 16}
		case fig == 4 && p.Scale == ScalePaper:
			// "threads up to 200" on 40 cores.
			p.ThreadCounts = []int{40, 80, 120, 160, 200}
		default:
			p.ThreadCounts = []int{8, 16, 24, 32, 40}
		}
	}
}

// Series is one scheme's curve across thread counts.
type Series struct {
	Name    string
	Results []Result
}

// Figure is a reproduced figure panel: throughput-vs-threads curves for
// one data structure under several schemes.
type Figure struct {
	Title        string
	DS           string
	ThreadCounts []int
	Series       []Series
}

// runSweep produces one panel for the named schemes.  The variant hook
// may adjust each point's Config (e.g. the tuned 4096 buffer).
func runSweep(title, dsName string, schemes []string, p SweepParams,
	variant func(*Config, string)) (Figure, error) {
	fig := Figure{Title: title, DS: dsName, ThreadCounts: p.ThreadCounts}
	for _, scheme := range schemes {
		s := Series{Name: scheme}
		for _, n := range p.ThreadCounts {
			cfg := baseConfig(dsName, p)
			cfg.Scheme = scheme
			cfg.Threads = n
			cfg.Cores = p.Cores
			if variant != nil {
				variant(&cfg, scheme)
			}
			r, err := Run(cfg)
			if err != nil {
				return fig, err
			}
			s.Results = append(s.Results, r)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3Schemes are the five techniques of Figure 3, in the paper's order.
var Fig3Schemes = []string{"leaky", "hazard", "epoch", "slow-epoch", "threadscan"}

// Fig4Schemes are the techniques kept for the oversubscription study:
// "Slow Epoch and Hazard Pointers were not included ... since they were
// shown not to scale well in normal circumstances" (§6).
var Fig4Schemes = []string{"leaky", "epoch", "threadscan"}

// RunFig3 reproduces one panel of Figure 3: throughput vs thread count,
// threads <= hardware contexts.
func RunFig3(dsName string, p SweepParams) (Figure, error) {
	p.fill(3)
	title := fmt.Sprintf("Figure 3 (%s): throughput, %d cores", dsName, p.Cores)
	return runSweep(title, dsName, Fig3Schemes, p, nil)
}

// RunFig4 reproduces one panel of Figure 4: the oversubscribed system
// (threads >> cores).  For the hash table it adds the paper's tuned
// variant — "increasing the length of the per-thread delete buffer
// length to 4096", i.e. 4x the base buffer at either scale.
func RunFig4(dsName string, p SweepParams) (Figure, error) {
	p.fill(4)
	schemes := Fig4Schemes
	if dsName == "hash" {
		schemes = append(append([]string{}, schemes...), "threadscan-tuned")
	}
	title := fmt.Sprintf("Figure 4 (%s): oversubscription, %d cores", dsName, p.Cores)
	return runSweep(title, dsName, schemes, p, func(cfg *Config, scheme string) {
		if scheme == "threadscan-tuned" {
			cfg.Scheme = "threadscan"
			cfg.BufferSize = 4 * cfg.BufferSize
		}
	})
}

// WriteTable renders a figure as an aligned text table of throughput
// (operations per virtual second).
func WriteTable(w io.Writer, f Figure) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %s\n", f.Title)
	fmt.Fprint(tw, "threads")
	for _, s := range f.Series {
		fmt.Fprintf(tw, "\t%s", s.Name)
	}
	fmt.Fprintln(tw)
	for i, n := range f.ThreadCounts {
		fmt.Fprintf(tw, "%d", n)
		for _, s := range f.Series {
			fmt.Fprintf(tw, "\t%.0f", s.Results[i].Throughput)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV renders a figure as CSV rows:
// ds,scheme,threads,cores,ops,elapsed_cycles,throughput.
func WriteCSV(w io.Writer, f Figure) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"ds", "scheme", "threads", "cores", "ops",
		"elapsed_cycles", "throughput_ops_per_vsec"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, r := range s.Results {
			rec := []string{
				f.DS, s.Name,
				strconv.Itoa(r.Config.Threads),
				strconv.Itoa(r.Config.Cores),
				strconv.FormatUint(r.Ops, 10),
				strconv.FormatInt(r.ElapsedCycles, 10),
				strconv.FormatFloat(r.Throughput, 'f', 0, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
