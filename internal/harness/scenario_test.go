package harness

import (
	"testing"

	"threadscan/internal/workload"
)

// tinyScenario keeps unit runs fast: short phases, few threads.
func tinyScenario(ds, scheme string) workload.Scenario {
	return workload.Scenario{
		Name:     "tiny",
		DS:       ds,
		Scheme:   scheme,
		Threads:  3,
		Cores:    2,
		KeyRange: 256, Prefill: 128,
		Seed:       1,
		BufferSize: 64, Batch: 64,
		Quantum: 20_000,
		Phases: []workload.Phase{
			{Name: "a", Duration: 400_000, Mix: workload.Mix{InsertPct: 20, RemovePct: 20}},
			{Name: "b", Duration: 400_000, Mix: workload.Mix{InsertPct: 5, RemovePct: 60},
				Dist: workload.Dist{Kind: workload.DistZipf, Theta: 1.3}},
		},
	}
}

func TestRunScenarioBasics(t *testing.T) {
	for _, ds := range []string{"list", "stack", "queue"} {
		for _, scheme := range []string{"leaky", "epoch", "threadscan"} {
			ds, scheme := ds, scheme
			t.Run(ds+"/"+scheme, func(t *testing.T) {
				r, err := RunScenario(tinyScenario(ds, scheme))
				if err != nil {
					t.Fatal(err)
				}
				if r.Ops == 0 || r.Throughput <= 0 {
					t.Fatalf("empty result: ops=%d tput=%f", r.Ops, r.Throughput)
				}
				if len(r.Footprint.Samples) < 4 {
					t.Fatalf("footprint barely sampled: %d points", len(r.Footprint.Samples))
				}
				st := r.SchemeStats
				if scheme == "leaky" {
					// Leaky's garbage only grows; the final sample must
					// hold the whole graveyard.
					if st.Retired == 0 || r.Footprint.FinalRetiredNodes != st.Retired {
						t.Fatalf("leaky garbage accounting: %+v vs %+v", st, r.Footprint)
					}
				} else {
					if st.Retired != st.Freed {
						t.Fatalf("retired %d != freed %d after flush", st.Retired, st.Freed)
					}
					if r.Footprint.FinalRetiredNodes != 0 {
						t.Fatalf("final garbage %d, want 0", r.Footprint.FinalRetiredNodes)
					}
				}
				if st.Retired > 0 && r.Footprint.PeakRetiredNodes == 0 {
					t.Fatal("peak garbage never observed despite retirements")
				}
			})
		}
	}
}

func TestRunScenarioDeterministicTrace(t *testing.T) {
	for _, ds := range []string{"list", "queue"} {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			spec := tinyScenario(ds, "threadscan")
			spec.Churn = &workload.Churn{Workers: 2, Generations: 2}
			a, err := RunScenario(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunScenario(spec)
			if err != nil {
				t.Fatal(err)
			}
			if a.TraceHash != b.TraceHash || a.Ops != b.Ops {
				t.Fatalf("same seed diverged: %x/%d vs %x/%d",
					a.TraceHash, a.Ops, b.TraceHash, b.Ops)
			}
			spec.Seed = 2
			c, err := RunScenario(spec)
			if err != nil {
				t.Fatal(err)
			}
			if c.TraceHash == a.TraceHash {
				t.Fatal("different seed produced an identical op trace")
			}
		})
	}
}

// TestRunScenarioChurn is the churn acceptance test: mid-run worker
// exit and spawn on the checked heap must produce zero violations (any
// violation fails Run) and zero leaked registrations, and the scheme
// must still reclaim everything.
func TestRunScenarioChurn(t *testing.T) {
	for _, ds := range []string{"list", "stack", "queue"} {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			spec := tinyScenario(ds, "threadscan")
			spec.Name = "churn-unit"
			spec.Phases = []workload.Phase{{
				Name: "churny", Duration: 1_200_000,
				Mix: workload.Mix{InsertPct: 20, RemovePct: 20},
			}}
			spec.Churn = &workload.Churn{Workers: 2, Generations: 3}
			r, err := RunScenario(spec)
			if err != nil {
				t.Fatal(err) // a heap violation would surface here
			}
			if r.ChurnWorkers != 6 {
				t.Fatalf("churned %d workers, want 6", r.ChurnWorkers)
			}
			if r.LeakedRegistrations != 0 {
				t.Fatalf("leaked %d registrations", r.LeakedRegistrations)
			}
			st := r.SchemeStats
			if st.Retired != st.Freed {
				t.Fatalf("retired %d != freed %d", st.Retired, st.Freed)
			}
		})
	}
}

// TestScenarioEpochTeardownClean is the teardown-leak regression: under
// thread churn, epoch's Flush (run by one worker) must drain every
// still-registered thread's retire list, not just the flusher's own —
// anything left shows up as phantom FinalRetiredNodes.
func TestScenarioEpochTeardownClean(t *testing.T) {
	churn, ok := workload.ByName("thread-churn")
	if !ok {
		t.Fatal("thread-churn builtin missing")
	}
	spec := churn.Scale(0.5)
	spec.DS = "list"
	spec.Scheme = "epoch"
	r, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Footprint.FinalRetiredNodes != 0 {
		t.Fatalf("epoch teardown leaked %d nodes", r.Footprint.FinalRetiredNodes)
	}
	st := r.SchemeStats
	if st.Retired != st.Freed {
		t.Fatalf("retired %d != freed %d after flush", st.Retired, st.Freed)
	}
	if r.AccountingError != "" {
		t.Fatalf("accounting error: %s", r.AccountingError)
	}
}

// TestScenarioGarbageContrast checks the robustness metric does its
// job: under a delete-heavy phase, leaky's peak unreclaimed garbage
// must dwarf threadscan's, and threadscan's peak must stay within the
// same order as its buffering capacity.
func TestScenarioGarbageContrast(t *testing.T) {
	// Long enough that leaky's graveyard outgrows a reclaiming
	// scheme's transient buffer occupancy by a wide margin.
	storm := func(scheme string) workload.Scenario {
		spec := tinyScenario("list", scheme)
		spec.Phases = []workload.Phase{{
			Name: "storm", Duration: 4_000_000,
			Mix: workload.Mix{InsertPct: 30, RemovePct: 40},
		}}
		return spec
	}
	leaky, err := RunScenario(storm("leaky"))
	if err != nil {
		t.Fatal(err)
	}
	ts, err := RunScenario(storm("threadscan"))
	if err != nil {
		t.Fatal(err)
	}
	if leaky.Footprint.PeakRetiredNodes <= 2*ts.Footprint.PeakRetiredNodes {
		t.Fatalf("robustness metric shows no contrast: leaky peak %d, threadscan peak %d",
			leaky.Footprint.PeakRetiredNodes, ts.Footprint.PeakRetiredNodes)
	}
}

func TestRunScenarioOversubscribed(t *testing.T) {
	spec := tinyScenario("stack", "threadscan")
	spec.Threads = 8
	spec.Cores = 2
	r, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 {
		t.Fatal("no ops under oversubscription")
	}
	if r.LeakedRegistrations != 0 {
		t.Fatalf("leaked registrations: %d", r.LeakedRegistrations)
	}
}

func TestRunScenarioRejectsUnknown(t *testing.T) {
	if _, err := RunScenario(workload.Scenario{DS: "btree"}); err == nil {
		t.Error("unknown ds accepted")
	}
	if _, err := RunScenario(workload.Scenario{Scheme: "magic"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestBuiltinSuiteQuick runs every built-in scenario shape (briefly,
// scaled down) on one structure/scheme pair to keep the suite honest.
func TestBuiltinSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep skipped in -short")
	}
	for _, base := range workload.Builtins() {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			spec := base.Scale(0.25)
			spec.DS = "stack"
			spec.Scheme = "threadscan"
			r, err := RunScenario(spec)
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops == 0 {
				t.Fatal("no ops")
			}
			if spec.Churn != nil && r.ChurnWorkers == 0 {
				t.Fatal("churn scenario churned nobody")
			}
		})
	}
}

// TestRunScenarioLargeHashArena: a hash scenario whose bucket array
// alone exceeds 64k words must size its arena from the spec and run
// (an earlier draft probed the structure on a tiny throwaway heap and
// panicked here).
func TestRunScenarioLargeHashArena(t *testing.T) {
	spec := tinyScenario("hash", "threadscan")
	spec.KeyRange = 1 << 21
	spec.Prefill = 4096
	spec.HeapWords = 1 << 21 // modest arena; the buggy probe ignored this
	spec.Phases = spec.Phases[:1]
	spec.Phases[0].Duration = 200_000
	r, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 {
		t.Fatal("no ops")
	}
}
