package obs

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Values below histSubBuckets get a bucket each, so recovery is exact.
func TestHistExactBelowSubBuckets(t *testing.T) {
	for v := int64(0); v < histSubBuckets; v++ {
		h := NewHist()
		h.Observe(v)
		if got := h.Quantile(0.5); got != v {
			t.Errorf("Quantile(0.5) after Observe(%d) = %d", v, got)
		}
		if got := h.Quantile(1); got != v {
			t.Errorf("Quantile(1) after Observe(%d) = %d", v, got)
		}
	}
}

func TestHistBoundaries(t *testing.T) {
	h := NewHist()
	h.Observe(0)
	h.Observe(-17) // negative durations clamp to 0, never index out of range
	h.Observe(1)
	h.Observe(math.MaxInt64)
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Max() != math.MaxInt64 {
		t.Fatalf("Max = %d, want MaxInt64", h.Max())
	}
	// The top value lands in the last row without panicking, and the
	// quantile clamp keeps the estimate at the exact observed max.
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("Quantile(1) = %d, want MaxInt64", got)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Fatalf("Quantile(0.25) = %d, want 0", got)
	}
}

func TestHistBucketOfRange(t *testing.T) {
	// Every representative value round-trips into a bucket whose
	// representative is >= it (upper-bound recovery) — probed across
	// all rows, including both edges of each.
	for e := 0; e < 63; e++ {
		for _, v := range []int64{1 << e, 1<<e + 1, 1<<(e+1) - 1} {
			if v <= 0 {
				continue
			}
			idx := bucketOf(v)
			if idx < 0 || idx >= histBuckets {
				t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
			}
			if rep := bucketValue(idx); rep < v {
				t.Fatalf("bucketValue(bucketOf(%d)) = %d < value", v, rep)
			}
		}
	}
}

// The bucket representative is an upper bound within 1/16 (6.25%) of
// the true value.  The clamp-to-max shortcut must not be what passes
// this, so each probe rides with a far larger observation.
func TestHistBoundedRelativeError(t *testing.T) {
	for v := int64(1); v <= 100_000; v = v*7/4 + 1 {
		h := NewHist()
		h.Observe(v)
		h.Observe(1 << 50)
		got := h.Quantile(0.5) // rank 1 of 2: the bucket holding v
		if got < v {
			t.Fatalf("Quantile(0.5) = %d < observed %d", got, v)
		}
		if got > v+v/16 {
			t.Fatalf("Quantile(0.5) = %d exceeds %d by more than 6.25%%", got, v)
		}
	}
}

func TestHistQuantileKnownDistribution(t *testing.T) {
	h := NewHist()
	for v := int64(1); v <= 31; v++ {
		h.Observe(v)
	}
	// All values exact: rank ceil(q*31) recovers the true order statistic.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0, 1}, {0.5, 16}, {0.999, 31}, {1, 31}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if h.Sum() != 31*32/2 {
		t.Errorf("Sum = %d, want %d", h.Sum(), 31*32/2)
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram not all-zero: %+v", h)
	}
}

func TestHistMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a, b := NewHist(), NewHist()
	for i := 0; i < 1000; i++ {
		a.Observe(rng.Int63n(1 << 30))
		b.Observe(rng.Int63n(1 << 10))
	}
	ab, ba := *a, *b // Hist is a value type: plain copies
	ab.Merge(b)
	ba.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatal("a.Merge(b) != b.Merge(a)")
	}
	if ab.Count() != a.Count()+b.Count() {
		t.Fatalf("merged Count = %d, want %d", ab.Count(), a.Count()+b.Count())
	}
	if ab.Sum() != a.Sum()+b.Sum() {
		t.Fatalf("merged Sum = %d, want %d", ab.Sum(), a.Sum()+b.Sum())
	}
	// Merging must preserve quantiles of the union exactly (same buckets).
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		union := NewHist()
		union.Merge(a)
		union.Merge(b)
		if ab.Quantile(q) != union.Quantile(q) {
			t.Errorf("Quantile(%v) differs between merge orders", q)
		}
	}
}

func TestHistObserveDoesNotAllocate(t *testing.T) {
	h := NewHist()
	if allocs := testing.AllocsPerRun(100, func() {
		h.Observe(12345)
	}); allocs != 0 {
		t.Fatalf("Observe allocated %v times per run", allocs)
	}
}
