package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Metrics export, the sparkline timeline report, and the cross-run
// regression differ.  All writers take io.Writer — file handling is
// cmd/ business, same split as the Chrome-trace exporter.

// MetricsCell is one grid cell's timelines: a scenario/ds/scheme
// coordinate plus every series the run's engine sampled.
type MetricsCell struct {
	Scenario string   `json:"scenario"`
	DS       string   `json:"ds"`
	Scheme   string   `json:"scheme"`
	Series   []Series `json:"series"`
}

// Label returns the cell's display coordinate.
func (c MetricsCell) Label() string {
	return fmt.Sprintf("%s %s/%s", c.Scenario, c.DS, c.Scheme)
}

// WriteMetricsJSON writes cells as indented JSON — the interchange
// format tsbench timeline and tsbench metrics-diff read back.
func WriteMetricsJSON(w io.Writer, cells []MetricsCell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// ReadMetricsJSON reads a WriteMetricsJSON document.
func ReadMetricsJSON(r io.Reader) ([]MetricsCell, error) {
	var cells []MetricsCell
	if err := json.NewDecoder(r).Decode(&cells); err != nil {
		return nil, err
	}
	return cells, nil
}

// WriteMetricsCSV writes cells in long format — one row per point —
// for spreadsheet/pandas plotting:
// scenario,ds,scheme,series,kind,at_cycles,value.
func WriteMetricsCSV(w io.Writer, cells []MetricsCell) error {
	if _, err := fmt.Fprintln(w, "scenario,ds,scheme,series,kind,at_cycles,value"); err != nil {
		return err
	}
	for _, c := range cells {
		for _, s := range c.Series {
			for _, p := range s.Points {
				if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%d,%g\n",
					c.Scenario, c.DS, c.Scheme, s.Name, s.Kind, p.At, p.V); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Cross-run regression diff.

// Drift is one flagged difference between two runs' timelines.
type Drift struct {
	Cell   string  // cell label, "scenario ds/scheme"
	Series string  // series name, "" for whole-cell problems
	Reason string  // "steady-mean" | "missing-series" | "missing-cell"
	Old    float64 // old steady mean (when applicable)
	New    float64 // new steady mean
	Shift  float64 // relative shift that tripped the tolerance
}

// DiffNoiseFloor is the absolute steady-mean level below which series
// are not compared: a series idling within one unit per window (a
// stray steal, a single remote fill) is noise, not a regression.
const DiffNoiseFloor = 1.0

// DiffMetrics compares two exported metric sets and returns every
// drift: a series whose steady-state mean (windowed deltas for
// counters, levels otherwise — see Series.Steady) shifted by more than
// tol relative to the larger magnitude, a series present in old but
// missing from new, or a whole cell missing from new.  Cells are
// matched by (scenario, ds, scheme); extra cells or series in new are
// ignored (growing coverage is not a regression).  Self-comparison
// returns nil.
func DiffMetrics(oldCells, newCells []MetricsCell, tol float64) []Drift {
	newByKey := map[string]MetricsCell{}
	for _, c := range newCells {
		newByKey[c.Scenario+"\x00"+c.DS+"\x00"+c.Scheme] = c
	}
	var drifts []Drift
	for _, oc := range oldCells {
		nc, ok := newByKey[oc.Scenario+"\x00"+oc.DS+"\x00"+oc.Scheme]
		if !ok {
			drifts = append(drifts, Drift{Cell: oc.Label(), Reason: "missing-cell"})
			continue
		}
		newSeries := map[string]Series{}
		for _, s := range nc.Series {
			newSeries[s.Name] = s
		}
		for _, os := range oc.Series {
			ns, ok := newSeries[os.Name]
			if !ok {
				drifts = append(drifts, Drift{Cell: oc.Label(), Series: os.Name, Reason: "missing-series"})
				continue
			}
			om, nm := os.SteadyMean, ns.SteadyMean
			base := math.Max(math.Abs(om), math.Abs(nm))
			if base < DiffNoiseFloor {
				continue // both idle at noise level
			}
			shift := math.Abs(nm-om) / base
			if shift > tol {
				drifts = append(drifts, Drift{
					Cell: oc.Label(), Series: os.Name, Reason: "steady-mean",
					Old: om, New: nm, Shift: shift,
				})
			}
		}
	}
	sort.Slice(drifts, func(i, j int) bool {
		if drifts[i].Shift != drifts[j].Shift {
			return drifts[i].Shift > drifts[j].Shift
		}
		if drifts[i].Cell != drifts[j].Cell {
			return drifts[i].Cell < drifts[j].Cell
		}
		return drifts[i].Series < drifts[j].Series
	})
	return drifts
}

// WriteDriftTable renders drifts, worst shift first.
func WriteDriftTable(w io.Writer, drifts []Drift) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cell\tseries\treason\told\tnew\tshift")
	for _, d := range drifts {
		switch d.Reason {
		case "steady-mean":
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.4g\t%.4g\t%+.1f%%\n",
				d.Cell, d.Series, d.Reason, d.Old, d.New, 100*(d.New-d.Old)/math.Max(math.Abs(d.Old), DiffNoiseFloor))
		default:
			fmt.Fprintf(tw, "%s\t%s\t%s\t-\t-\t-\n", d.Cell, d.Series, d.Reason)
		}
	}
	return tw.Flush()
}

// ---------------------------------------------------------------------
// Timeline report.

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a fixed-height unicode strip, scaled
// min..max per series (a flat series renders as all-▁).
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width > 0 && len(vals) > width {
		// Downsample by bucketing: each output rune is the mean of its
		// span, so spikes shrink but trends survive.
		buck := make([]float64, width)
		for i := range buck {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			buck[i] = sum / float64(hi-lo)
		}
		vals = buck
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if mx > mn {
			idx = int((v - mn) / (mx - mn) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// WriteTimeline renders every cell's series as sparkline rows with
// min/mean/max and the steady-window digest.  Counters are rendered as
// their windowed deltas — the level view of "how fast", matching what
// the differ compares.  filter, when non-empty, keeps only series
// whose name contains it.
func WriteTimeline(w io.Writer, cells []MetricsCell, filter string) error {
	for ci, c := range cells {
		if ci > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s\n", c.Label())
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  series\tkind\tn\ttimeline\tmin\tmean\tmax\tsteady\tslope/Mcyc")
		for _, s := range c.Series {
			if filter != "" && !strings.Contains(s.Name, filter) {
				continue
			}
			pts := s.Points
			if s.Kind == SeriesCounter.String() {
				pts = s.Deltas()
			}
			vals := Series{Points: pts}.Values()
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, v := range vals {
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if len(vals) == 0 {
				mn, mx = 0, 0
			}
			fmt.Fprintf(tw, "  %s\t%s\t%d\t%s\t%.4g\t%.4g\t%.4g\t%.4g\t%+.3g\n",
				s.Name, s.Kind, len(s.Points), sparkline(vals, 48),
				mn, meanOf(pts), mx, s.SteadyMean, s.SteadySlope)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
