package obs

// Series analysis: windowed views, least-squares slopes, and the
// steady-state digest the cross-run regression differ compares.  These
// are cold-path methods on exported timelines — nothing here runs
// while a simulation is live.

// Values returns the raw sample values in time order.
func (s Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Deltas returns the per-window changes of a series: for n points it
// yields n-1 points, each stamped at the later sample's time.  For
// counters this recovers the windowed rate; for other kinds it is the
// first difference.
func (s Series) Deltas() []Point {
	if len(s.Points) < 2 {
		return nil
	}
	out := make([]Point, len(s.Points)-1)
	for i := 1; i < len(s.Points); i++ {
		out[i-1] = Point{s.Points[i].At, s.Points[i].V - s.Points[i-1].V}
	}
	return out
}

// Window returns the points with start <= At < end.
func (s Series) Window(start, end int64) []Point {
	var out []Point
	for _, p := range s.Points {
		if p.At >= start && p.At < end {
			out = append(out, p)
		}
	}
	return out
}

// Mean returns the arithmetic mean of the sample values (0 if empty).
func (s Series) Mean() float64 { return meanOf(s.Points) }

// Slope returns the least-squares slope of the full series in value
// per million virtual cycles (0 with fewer than two points).
func (s Series) Slope() float64 { return slopeOf(s.Points) }

// SteadyStat digests a series' steady-state window.
type SteadyStat struct {
	Mean   float64 // mean level over the window
	Slope  float64 // least-squares slope, value per Mcycle
	Points int     // samples in the window
}

// Steady digests the steady-state window: the last half of the
// timeline, past warmup transients.  Counters are judged on their
// windowed deltas (the rate is the steady quantity, not the
// ever-growing total); gauges, rates, and quantiles on raw values.
// This is the quantity DiffMetrics compares across runs.
func (s Series) Steady() SteadyStat {
	pts := s.Points
	if s.Kind == SeriesCounter.String() {
		pts = s.Deltas()
	}
	if len(pts) > 3 {
		pts = pts[len(pts)/2:]
	}
	return SteadyStat{Mean: meanOf(pts), Slope: slopeOf(pts), Points: len(pts)}
}

func meanOf(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts))
}

// slopeOf is the least-squares slope over (At, V), reported in value
// per million virtual cycles so steady slopes land in a human scale.
// Times are centered before the fit to keep the arithmetic well
// conditioned far from t=0.
func slopeOf(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	var tMean float64
	for _, p := range pts {
		tMean += float64(p.At)
	}
	tMean /= float64(len(pts))
	var num, den float64
	for _, p := range pts {
		dt := float64(p.At) - tMean
		num += dt * p.V
		den += dt * dt
	}
	if den == 0 {
		return 0
	}
	return num / den * 1e6
}
