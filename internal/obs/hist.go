package obs

import (
	"math"
	"math/bits"
)

// Hist is an HDR-style log-linear histogram of non-negative
// virtual-cycle values.  The bucket layout is 64 power-of-two rows of 32
// linear sub-buckets: values below 32 land in their own bucket (exact),
// and every larger bucket spans 1/32 of its row's range, so quantile
// recovery is within 1/16 (6.25%) relative error across the full int64
// range.  Observing and merging never allocate, and Merge is an
// element-wise sum — deterministic and commutative — so per-thread
// histograms from a churny run can be combined in any order.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	histRows       = 64
	histBuckets    = histRows * histSubBuckets
)

// Hist is safe to use from simulated threads without synchronization:
// the scheduler serializes them.  The zero value is ready to use.
type Hist struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// bucketOf maps a value to its bucket index.  Negative values clamp to
// bucket 0 (durations are never negative; the clamp keeps a buggy
// caller from indexing out of range).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	e := bits.Len64(uint64(v)) - histSubBits
	if e <= 0 {
		return int(v)
	}
	return e*histSubBuckets + int(uint64(v)>>uint(e))
}

// bucketValue returns the largest value that maps to bucket idx — the
// conservative (upper-bound) representative quantile recovery reports.
func bucketValue(idx int) int64 {
	e := idx / histSubBuckets
	m := int64(idx % histSubBuckets)
	if e == 0 {
		return m
	}
	return (m+1)<<uint(e) - 1
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Reset empties the histogram in place without allocating, so the
// metrics engine can reuse one Hist per quantile source per window.
func (h *Hist) Reset() {
	h.counts = [histBuckets]int64{}
	h.n = 0
	h.sum = 0
	h.max = 0
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Hist) Sum() int64 { return h.sum }

// Max returns the exact maximum observed value (not bucketized).
func (h *Hist) Max() int64 { return h.max }

// Merge adds o's observations into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]): the representative of the first bucket whose cumulative
// count reaches ceil(q*n), clamped to the exact observed maximum.  For
// values below 32 the estimate is exact.  An empty histogram reports 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
