package obs

// Summary is the JSON-facing quantile digest of one run's recorder:
// per-op latency quantiles, max pause, and one row per non-empty stage.
// It flows through ScenarioResult so every builtin × scheme cell
// reports tail latency next to throughput.  Field order (and the
// stage-slice order) is deterministic: declaration order, no maps.
type Summary struct {
	// Op is the per-operation latency digest (virtual cycles per
	// workload op).
	Op Quantiles `json:"op"`
	// MaxPauseCycles is the longest any thread spent blocked in a scan
	// handler, at the handshake barrier, or in a grace wait.
	MaxPauseCycles int64 `json:"max_pause_cycles"`
	// Stages holds one row per stage that recorded at least one
	// observation, in Stage declaration order.
	Stages []StageLatency `json:"stages,omitempty"`
}

// Quantiles is one histogram's digest.  Quantile fields are
// upper-bound estimates (≤6.25% relative error, exact below 32
// cycles); Max is the exact observed maximum.
type Quantiles struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
	Max   int64 `json:"max"`
}

// StageLatency is one stage's digest plus its total cycle attribution.
type StageLatency struct {
	Stage string `json:"stage"`
	Quantiles
	TotalCycles int64 `json:"total_cycles"`
}

// quantilesOf digests h, substituting the exact max for the bucketized
// one.
func quantilesOf(h *Hist, exactMax int64) Quantiles {
	return Quantiles{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   exactMax,
	}
}

// Summary digests the recorder.  A nil or disabled recorder yields an
// all-zero summary (never nil), keeping JSON output shape-stable.
func (r *Recorder) Summary() *Summary {
	s := &Summary{}
	if r == nil || !r.enabled {
		return s
	}
	s.Op = quantilesOf(r.StageHist(StageOp), r.StageMax(StageOp))
	s.MaxPauseCycles = r.MaxPause()
	for _, st := range Stages() {
		if st == StageOp {
			continue
		}
		h := r.StageHist(st)
		if h.Count() == 0 {
			continue
		}
		s.Stages = append(s.Stages, StageLatency{
			Stage:       st.String(),
			Quantiles:   quantilesOf(h, r.StageMax(st)),
			TotalCycles: r.StageTotal(st),
		})
	}
	return s
}
