package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

func testSim() *simt.Sim {
	return simt.New(simt.Config{
		Cores:     2,
		Quantum:   10_000,
		Seed:      1,
		MaxCycles: 1_000_000_000,
		Heap:      simmem.Config{Words: 1 << 16},
	})
}

// A disabled recorder — nil or the zero value — must cost nothing on
// the hot path: no allocations from any recording method.  The thread
// argument is never touched on the disabled path, so nil stands in.
func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var nilRec *Recorder
	for name, r := range map[string]*Recorder{"nil": nilRec, "zero": new(Recorder)} {
		if r.Enabled() || r.Tracing() {
			t.Fatalf("%s recorder reports enabled", name)
		}
		allocs := testing.AllocsPerRun(100, func() {
			r.Begin(nil, StageCollect)
			r.End(nil)
			r.Observe(nil, StageOp, 7)
			r.Window(nil, StageGraceWait, 0, 7)
			r.Instant(nil, KindTrigger)
			r.Alloc(nil, 3, true)
			r.Free(nil, 3, true)
			r.RemoteLineFill(nil)
			r.SignalSent(nil, nil)
			r.RemoteFlush(0, 8)
			r.InboxDrain(0, 8)
		})
		if allocs != 0 {
			t.Errorf("%s recorder: %v allocs per run on the disabled path", name, allocs)
		}
		if r.InstantCount(KindTrigger) != 0 || r.MaxPause() != 0 || r.StageCount(StageOp) != 0 {
			t.Errorf("%s recorder accumulated state while disabled", name)
		}
		if s := r.Summary(); s == nil || s.Op.Count != 0 || len(s.Stages) != 0 {
			t.Errorf("%s recorder summary not all-zero: %+v", name, s)
		}
	}
}

func TestRecorderSpansHistogramsInstants(t *testing.T) {
	r := NewTraceRecorder()
	sim := testSim()
	sim.Spawn("w0", func(th *simt.Thread) {
		r.Begin(th, StageCollect)
		th.Charge(100)
		r.Begin(th, StageHandshake) // nested
		th.Charge(40)
		r.End(th) // handshake: 40
		th.Charge(10)
		r.End(th) // collect: 150
		r.Observe(th, StageOp, 9)
		r.Instant(th, KindTrigger)
		r.Window(th, StageGraceWait, th.Now()-25, 25)
	})
	sim.Spawn("w1", func(th *simt.Thread) {
		r.Begin(th, StageScan)
		th.Charge(70)
		r.End(th)
		r.End(th) // unmatched End: tolerated no-op
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		stage      Stage
		count, tot int64
	}{
		{StageCollect, 1, 150},
		{StageHandshake, 1, 40},
		{StageScan, 1, 70},
		{StageOp, 1, 9},
		{StageGraceWait, 1, 25},
	} {
		if got := r.StageCount(tc.stage); got != tc.count {
			t.Errorf("StageCount(%s) = %d, want %d", tc.stage, got, tc.count)
		}
		if got := r.StageTotal(tc.stage); got != tc.tot {
			t.Errorf("StageTotal(%s) = %d, want %d", tc.stage, got, tc.tot)
		}
	}
	// Max pause spans scan, handshake, and grace waits.
	if got := r.MaxPause(); got != 70 {
		t.Errorf("MaxPause = %d, want 70 (the scan)", got)
	}
	if got := r.InstantCount(KindTrigger); got != 1 {
		t.Errorf("InstantCount(trigger) = %d, want 1", got)
	}

	sum := r.Summary()
	if sum.Op.Count != 1 || sum.Op.Max != 9 {
		t.Errorf("Summary.Op = %+v", sum.Op)
	}
	if sum.MaxPauseCycles != 70 {
		t.Errorf("Summary.MaxPauseCycles = %d", sum.MaxPauseCycles)
	}
	// Stage rows appear in declaration order and skip empty stages.
	var names []string
	for _, st := range sum.Stages {
		names = append(names, st.Stage)
	}
	want := []string{"collect", "scan", "handshake-wait", "grace-wait"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("Summary stage order = %v, want %v", names, want)
	}
}

// A histogram-only recorder must keep quantiles but store no spans.
func TestHistogramOnlyRecorderStoresNoSpans(t *testing.T) {
	r := NewRecorder()
	sim := testSim()
	sim.Spawn("w0", func(th *simt.Thread) {
		r.Begin(th, StageCollect)
		th.Charge(100)
		r.End(th)
		r.Instant(th, KindWatermark)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if r.StageCount(StageCollect) != 1 {
		t.Fatal("histogram missing")
	}
	if r.InstantCount(KindWatermark) != 1 {
		t.Fatal("instant count missing")
	}
	for _, tr := range r.threads {
		if tr != nil && (len(tr.spans) > 0 || len(tr.instants) > 0) {
			t.Fatal("histogram-only recorder stored spans/instants")
		}
	}
}

func TestProbeAndObserverCounters(t *testing.T) {
	r := NewRecorder()
	sim := testSim()
	sim.Spawn("w0", func(th *simt.Thread) {
		r.Alloc(th, 12, true)
		r.Alloc(th, 12, false)
		r.Free(th, 5, true)
		r.RemoteLineFill(th)
		r.SignalSent(th, th)
		r.RemoteFlush(1, 32)
		r.InboxDrain(1, 32)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if r.StageCount(StageAlloc) != 2 {
		t.Errorf("alloc count = %d", r.StageCount(StageAlloc))
	}
	if r.allocRemoteFills != 1 || r.remoteLineFills != 1 {
		t.Errorf("remote counters = %d/%d", r.allocRemoteFills, r.remoteLineFills)
	}
	if r.InstantCount(KindRemoteFlush) != 1 || r.InstantCount(KindSignal) != 1 {
		t.Errorf("instants = %d/%d", r.InstantCount(KindRemoteFlush), r.InstantCount(KindSignal))
	}
	if r.remoteFlushBatches != 1 || r.remoteFlushBlocks != 32 ||
		r.inboxDrains != 1 || r.inboxBlocks != 32 {
		t.Errorf("batch counters wrong")
	}
}

func TestStageAndKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Errorf("stage %d has bad name %q", st, name)
		}
		seen[name] = true
	}
	if Stage(numStages).String() != "unknown" || Kind(numKinds).String() != "unknown" {
		t.Error("out-of-range Stage/Kind must stringify as unknown")
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	r := NewTraceRecorder()
	sim := testSim()
	sim.Spawn("worker", func(th *simt.Thread) {
		r.Begin(th, StageCollect)
		th.Charge(1000)
		r.End(th)
		r.Instant(th, KindTrigger)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runs := []TraceRun{{
		Label:   "demo run",
		Rec:     r,
		Windows: []Window{{Name: "steady", Start: 0, End: 2000}},
	}}
	if err := WriteChromeTrace(&buf, runs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			S    string  `json:"s"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var haveProc, havePhase, haveSpan, haveInstant bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name" && e.Pid == 1:
			haveProc = true
		case e.Ph == "X" && e.Name == "steady" && e.Tid == phasesTid:
			havePhase = true
			if e.Dur != 2.0 { // 2000 cycles = 2 µs
				t.Errorf("phase dur = %v µs, want 2", e.Dur)
			}
		case e.Ph == "X" && e.Name == "collect":
			haveSpan = true
			if e.Dur != 1.0 {
				t.Errorf("collect dur = %v µs, want 1", e.Dur)
			}
		case e.Ph == "i" && e.Name == "trigger":
			haveInstant = true
			if e.S != "t" {
				t.Errorf("instant scope = %q, want t", e.S)
			}
		}
	}
	if !haveProc || !havePhase || !haveSpan || !haveInstant {
		t.Fatalf("trace missing events: proc=%v phase=%v span=%v instant=%v",
			haveProc, havePhase, haveSpan, haveInstant)
	}
	// A disabled run still renders its metadata without panicking.
	buf.Reset()
	if err := WriteChromeTrace(&buf, []TraceRun{{Label: "off", Rec: nil}}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("disabled-run trace is not valid JSON")
	}
}

func TestWriteProfileTable(t *testing.T) {
	r := NewRecorder()
	sim := testSim()
	sim.Spawn("w0", func(th *simt.Thread) {
		r.Observe(th, StageOp, 100)
		r.Observe(th, StageRetire, 25)
		r.Instant(th, KindSteal)
		r.RemoteLineFill(th)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, "cell", r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"profile: cell", "op", "retire", "25.00%", // 25/100 op cycles
		"max pause: 0 cycles", "steal events: 1", "remote line fills: 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}
