package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// Chrome trace-event export: the JSON-object format chrome://tracing
// and Perfetto open directly.  Each TraceRun becomes one "process"
// (grid cell), each simulated thread one named row, lifecycle spans
// become complete ("X") events, and instants become point ("i")
// events.  Virtual cycles map to microseconds at the default 1 GHz
// clock (1 cycle = 1 ns, trace ts/dur are µs), so the timeline reads
// in real units.

// Window is one labeled span for a run's synthetic "phases" row
// (typically the workload's phase schedule).
type Window struct {
	Name       string
	Start, End int64 // virtual cycles
}

// TraceRun is one simulation run to export: its label (shown as the
// process name), its recorder, and optional phase windows.
type TraceRun struct {
	Label   string
	Rec     *Recorder
	Windows []Window
}

// traceEvent is one Chrome trace-event row.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// phasesTid is the tid of the synthetic phase row, above any plausible
// thread id.
const phasesTid = 1_000_000

func usec(cycles int64) float64 { return float64(cycles) / 1000.0 }

// WriteChromeTrace writes runs as one Chrome trace-event JSON object.
// Output is deterministic: runs in order, threads by id, spans and
// instants in recording order.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error {
	var events []traceEvent
	for i, run := range runs {
		pid := i + 1
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": run.Label},
		})
		if len(run.Windows) > 0 {
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: phasesTid,
				Args: map[string]any{"name": "phases"},
			})
			for _, win := range run.Windows {
				events = append(events, traceEvent{
					Name: win.Name, Cat: "phase", Ph: "X",
					Ts: usec(win.Start), Dur: usec(win.End - win.Start),
					Pid: pid, Tid: phasesTid,
				})
			}
		}
		if run.Rec == nil || !run.Rec.enabled {
			continue
		}
		for _, tr := range run.Rec.threads {
			if tr == nil || (len(tr.spans) == 0 && len(tr.instants) == 0) {
				continue
			}
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tr.id,
				Args: map[string]any{"name": fmt.Sprintf("%s (t%d)", tr.name, tr.id)},
			})
			for _, sp := range tr.spans {
				ev := traceEvent{
					Name: sp.Stage.String(), Cat: "stage", Ph: "X",
					Ts: usec(sp.Start), Dur: usec(sp.Dur),
					Pid: pid, Tid: tr.id,
				}
				if sp.Node >= 0 {
					ev.Args = map[string]any{"node": sp.Node}
				}
				events = append(events, ev)
			}
			for _, in := range tr.instants {
				events = append(events, traceEvent{
					Name: in.Kind.String(), Cat: "event", Ph: "i",
					Ts: usec(in.At), Pid: pid, Tid: tr.id, S: "t",
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ns"})
}

// WriteProfile writes the per-stage cycle-attribution table for one
// run: where the virtual cycles went, per stage, with count, total,
// share of op cycles, and tail quantiles.
func WriteProfile(w io.Writer, label string, r *Recorder) error {
	fmt.Fprintf(w, "profile: %s\n", label)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tcount\tcycles\t% of op\tp50\tp99\tmax")
	opTotal := r.StageTotal(StageOp)
	for _, st := range Stages() {
		h := r.StageHist(st)
		if h.Count() == 0 {
			continue
		}
		pct := "-"
		if st != StageOp && opTotal > 0 {
			pct = fmt.Sprintf("%.2f%%", 100*float64(h.Sum())/float64(opTotal))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%d\t%d\n",
			st, h.Count(), h.Sum(), pct,
			h.Quantile(0.50), h.Quantile(0.99), r.StageMax(st))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if r.Enabled() {
		fmt.Fprintf(w, "max pause: %d cycles\n", r.MaxPause())
		for _, k := range []Kind{KindTrigger, KindWatermark, KindSignal, KindSteal, KindRemoteFlush} {
			if n := r.InstantCount(k); n > 0 {
				fmt.Fprintf(w, "%s events: %d\n", k, n)
			}
		}
		if r.remoteLineFills > 0 {
			fmt.Fprintf(w, "remote line fills: %d\n", r.remoteLineFills)
		}
		if r.allocRemoteFills > 0 {
			fmt.Fprintf(w, "alloc remote fills: %d\n", r.allocRemoteFills)
		}
		if r.remoteFlushBatches > 0 {
			fmt.Fprintf(w, "remote-free flushes: %d batches, %d blocks\n",
				r.remoteFlushBatches, r.remoteFlushBlocks)
		}
		if r.inboxDrains > 0 {
			fmt.Fprintf(w, "remote-inbox drains: %d, %d blocks\n",
				r.inboxDrains, r.inboxBlocks)
		}
	}
	return nil
}
