// Virtual-time metrics engine: a typed registry of named series —
// counters, gauges, windowed rates, windowed histogram quantiles —
// sampled on virtual-clock boundaries at a configurable interval.
//
// The engine shares the recorder's zero-cost contract, twice over.  A
// nil or disabled *Metrics makes every hot call (Tick, Put, Latest…) a
// guarded no-op that allocates nothing.  And an *enabled* engine never
// charges virtual cycles: sampling is host-side reading driven by the
// scheduler's clock-advance hook (simt.Sim.OnClockAdvance), so
// attaching one cannot perturb a simulation's schedule, clock, or op
// trace — TestMetricsOffIsBitIdentical in internal/harness locks the
// invariant against the captured baseline.
//
// Sources are registered once at setup (closures are allocated there,
// on the cold path) and only *read* on the sampling path.  Sample
// times are quantized to interval boundaries, so two runs whose clocks
// advance through the same virtual times produce identical timelines
// regardless of event granularity.
//
// The engine is built for two consumers.  Post-run, Series() exports
// every timeline for JSON/CSV, the sparkline report, and the cross-run
// regression differ (DiffMetrics).  In-run, a controller can subscribe
// to the latest window — Latest/LatestDelta/SlopeOver read the newest
// points without copying — which is the substrate the adaptive-
// controller roadmap item consumes.
package obs

// SeriesKind types a metric series.
type SeriesKind uint8

const (
	// SeriesCounter is a cumulative, monotone total (retired nodes,
	// collects, steals).  Points store the running total; windowed
	// deltas and slopes are derived views (Series.Deltas, Steady).
	SeriesCounter SeriesKind = iota
	// SeriesGauge is an instantaneous level re-read every window
	// (retired-but-unreclaimed garbage, live heap words).
	SeriesGauge
	// SeriesRate is a pre-windowed delta: each point is the change of
	// an underlying total across one sampling window (ops per window =
	// throughput).
	SeriesRate
	// SeriesQuantile is a windowed histogram quantile: each point
	// digests only the observations that landed in that window, so tail
	// latency is resolved over time instead of averaged over the run.
	SeriesQuantile

	numSeriesKinds
)

var seriesKindNames = [numSeriesKinds]string{
	"counter", "gauge", "rate", "quantile",
}

// String returns the kind's JSON/report name.
func (k SeriesKind) String() string {
	if k < numSeriesKinds {
		return seriesKindNames[k]
	}
	return "unknown"
}

// Point is one sample: a virtual time and a value.
type Point struct {
	At int64   `json:"at"` // virtual cycles
	V  float64 `json:"v"`
}

// Series is one exported timeline.  SteadyMean and SteadySlope digest
// the steady-state window (see Steady) so consumers — the regression
// differ above all — can compare runs without re-deriving them.
type Series struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`

	// SteadyMean is the mean level over the steady-state window
	// (windowed deltas for counters, raw values otherwise).
	SteadyMean float64 `json:"steady_mean"`
	// SteadySlope is the least-squares slope of the same window, in
	// value per million virtual cycles.
	SteadySlope float64 `json:"steady_slope"`
}

// counterSource / gaugeSource / rateSource are polled scalar sources.
type counterSource struct {
	name string
	read func() uint64
	pts  []Point
}

type gaugeSource struct {
	name string
	read func() float64
	pts  []Point
}

type rateSource struct {
	name string
	read func() uint64
	prev uint64
	pts  []Point
}

// quantSource is a polled windowed-quantile source: read fills a
// cumulative histogram, and each sample digests the delta against the
// previous window's snapshot.  The two Hist values are embedded (not
// pointers) so snapshotting is an array copy, never an allocation.
type quantSource struct {
	name      string
	q         float64
	read      func(*Hist)
	cur, prev Hist
	pts       []Point
}

// PushedSeries is a series fed by instrument code at its own cadence
// instead of the engine's ticker — the footprint sampler's series are
// the first migrated user.  A nil *PushedSeries (from a disabled
// engine) makes Put a one-comparison no-op.
type PushedSeries struct {
	name string
	kind SeriesKind
	pts  []Point
}

// Put appends one sample.  Hot path: guarded, allocation-shape-free.
func (p *PushedSeries) Put(at int64, v float64) {
	if p == nil {
		return
	}
	p.pts = append(p.pts, Point{at, v})
}

// Points returns the samples recorded so far (no copy).
func (p *PushedSeries) Points() []Point {
	if p == nil {
		return nil
	}
	return p.pts
}

// Metrics is the engine: a registry of sources sampled at Every-cycle
// virtual-time boundaries.  The zero value (and a nil pointer) is a
// disabled engine; construct enabled ones with NewMetrics.
//
// Like the Recorder, a Metrics needs no synchronization: the simt
// scheduler is single-threaded on the host side, and Tick runs from
// its dispatch loop between thread quanta.
type Metrics struct {
	enabled bool
	every   int64
	nextAt  int64
	ticks   int

	counters []*counterSource
	gauges   []*gaugeSource
	rates    []*rateSource
	quants   []*quantSource
	pushed   []*PushedSeries
}

// NewMetrics returns an enabled engine sampling every `every` virtual
// cycles.  every <= 0 disables the ticker (Tick becomes a no-op) but
// keeps pushed series working — the footprint-only configuration.
func NewMetrics(every int64) *Metrics {
	m := &Metrics{enabled: true, every: every, nextAt: every}
	return m
}

// Enabled reports whether the engine records anything.
func (m *Metrics) Enabled() bool { return m != nil && m.enabled }

// Every returns the sampling interval in virtual cycles (0 when the
// ticker is off).
func (m *Metrics) Every() int64 {
	if m == nil || !m.enabled {
		return 0
	}
	return m.every
}

// ---------------------------------------------------------------------
// Registration (cold path — runs once at setup, before Sim.Run).

// Counter registers a cumulative total; read must be monotone
// non-decreasing for the derived deltas to mean anything.
func (m *Metrics) Counter(name string, read func() uint64) {
	if m == nil || !m.enabled {
		return
	}
	m.counters = append(m.counters, &counterSource{name: name, read: read})
}

// Gauge registers an instantaneous level.
func (m *Metrics) Gauge(name string, read func() float64) {
	if m == nil || !m.enabled {
		return
	}
	m.gauges = append(m.gauges, &gaugeSource{name: name, read: read})
}

// Rate registers a windowed delta over a cumulative total: each sample
// stores read() minus the previous window's reading.  The baseline is
// read at registration time, so the first window's delta is relative
// to setup, not to zero.
func (m *Metrics) Rate(name string, read func() uint64) {
	if m == nil || !m.enabled {
		return
	}
	m.rates = append(m.rates, &rateSource{name: name, read: read, prev: read()})
}

// Quantile registers a windowed histogram quantile.  read must *fill*
// the passed histogram with the cumulative distribution so far (it is
// Reset before every call); each sample digests only the window's
// delta against the previous snapshot.
func (m *Metrics) Quantile(name string, q float64, read func(*Hist)) {
	if m == nil || !m.enabled {
		return
	}
	m.quants = append(m.quants, &quantSource{name: name, q: q, read: read})
}

// Pushed registers a series fed by instrument code (Put) rather than
// the ticker.  Returns nil on a disabled engine, which makes every Put
// through the handle a no-op.
func (m *Metrics) Pushed(name string, kind SeriesKind) *PushedSeries {
	if m == nil || !m.enabled {
		return nil
	}
	p := &PushedSeries{name: name, kind: kind}
	m.pushed = append(m.pushed, p)
	return p
}

// ---------------------------------------------------------------------
// Sampling (hot path — called from the scheduler's clock-advance hook;
// reads state, never charges virtual cycles).

// Tick advances the engine to virtual time now, taking one sample row
// per crossed interval boundary.  Samples are stamped with the
// boundary time, not now, so timelines from runs with different event
// granularity line up point for point.  Install with
// sim.OnClockAdvance(m.Tick).
func (m *Metrics) Tick(now int64) {
	if m == nil || !m.enabled || m.every <= 0 {
		return
	}
	for now >= m.nextAt {
		m.sample(m.nextAt)
		m.nextAt += m.every
		m.ticks++
	}
}

// sample takes one row across every polled source.
func (m *Metrics) sample(at int64) {
	if m == nil || !m.enabled {
		return
	}
	for _, c := range m.counters {
		c.pts = append(c.pts, Point{at, float64(c.read())})
	}
	for _, g := range m.gauges {
		g.pts = append(g.pts, Point{at, g.read()})
	}
	for _, r := range m.rates {
		v := r.read()
		r.pts = append(r.pts, Point{at, float64(v - r.prev)})
		r.prev = v
	}
	for _, qs := range m.quants {
		qs.cur.Reset()
		qs.read(&qs.cur)
		v := deltaQuantile(&qs.cur, &qs.prev, qs.q)
		qs.prev = qs.cur
		qs.pts = append(qs.pts, Point{at, float64(v)})
	}
}

// deltaQuantile recovers quantile q of the observations in cur that
// are not in prev (cur must be a superset snapshot taken later).  The
// window's exact max is unknown, so the estimate clamps to cur's
// cumulative max — still an upper bound.
func deltaQuantile(cur, prev *Hist, q float64) int64 {
	n := cur.n - prev.n
	if n <= 0 {
		return 0
	}
	rank := int64(float64(n)*q + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range cur.counts {
		c := cur.counts[i] - prev.counts[i]
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := bucketValue(i)
			if v > cur.max {
				v = cur.max
			}
			return v
		}
	}
	return cur.max
}

// ---------------------------------------------------------------------
// In-run consumption (the controller-facing window reads).

// Ticks returns the number of completed sample rows.
func (m *Metrics) Ticks() int {
	if m == nil || !m.enabled {
		return 0
	}
	return m.ticks
}

// Latest returns the newest point of the named series (polled sources
// and pushed series alike) and whether the series exists and has one.
func (m *Metrics) Latest(name string) (Point, bool) {
	if m == nil || !m.enabled {
		return Point{}, false
	}
	pts := m.points(name)
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// LatestDelta returns the change of the named series across its newest
// window: the last delta for counters, the last point's value for
// rates/gauges/quantiles.  False when fewer than one window completed.
func (m *Metrics) LatestDelta(name string) (float64, bool) {
	if m == nil || !m.enabled {
		return 0, false
	}
	for _, c := range m.counters {
		if c.name != name {
			continue
		}
		n := len(c.pts)
		if n == 0 {
			return 0, false
		}
		if n == 1 {
			return c.pts[0].V, true
		}
		return c.pts[n-1].V - c.pts[n-2].V, true
	}
	pts := m.points(name)
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].V, true
}

// SlopeOver returns the least-squares slope (value per million cycles)
// of the named series' last windows points — the "footprint slope"
// observable an adaptive controller regulates on.  False when fewer
// than two points exist.
func (m *Metrics) SlopeOver(name string, windows int) (float64, bool) {
	if m == nil || !m.enabled {
		return 0, false
	}
	pts := m.points(name)
	if len(pts) > windows && windows > 0 {
		pts = pts[len(pts)-windows:]
	}
	if len(pts) < 2 {
		return 0, false
	}
	return slopeOf(pts), true
}

// points finds the named series' raw points.  Linear scan in
// registration order: the registry is small and deterministic, and a
// map would put ordering at the mercy of iteration order.
func (m *Metrics) points(name string) []Point {
	if m == nil || !m.enabled {
		return nil
	}
	for _, c := range m.counters {
		if c.name == name {
			return c.pts
		}
	}
	for _, g := range m.gauges {
		if g.name == name {
			return g.pts
		}
	}
	for _, r := range m.rates {
		if r.name == name {
			return r.pts
		}
	}
	for _, qs := range m.quants {
		if qs.name == name {
			return qs.pts
		}
	}
	for _, p := range m.pushed {
		if p.name == name {
			return p.pts
		}
	}
	return nil
}

// Series exports every timeline in deterministic order: counters,
// gauges, rates, quantiles, then pushed series, each group in
// registration order.  Steady-window digests are computed here, on the
// cold path.
func (m *Metrics) Series() []Series {
	if m == nil || !m.enabled {
		return nil
	}
	var out []Series
	for _, c := range m.counters {
		out = append(out, finishSeries(c.name, SeriesCounter, c.pts))
	}
	for _, g := range m.gauges {
		out = append(out, finishSeries(g.name, SeriesGauge, g.pts))
	}
	for _, r := range m.rates {
		out = append(out, finishSeries(r.name, SeriesRate, r.pts))
	}
	for _, qs := range m.quants {
		out = append(out, finishSeries(qs.name, SeriesQuantile, qs.pts))
	}
	for _, p := range m.pushed {
		out = append(out, finishSeries(p.name, p.kind, p.pts))
	}
	return out
}

func finishSeries(name string, kind SeriesKind, pts []Point) Series {
	s := Series{Name: name, Kind: kind.String(), Points: pts}
	st := s.Steady()
	s.SteadyMean, s.SteadySlope = st.Mean, st.Slope
	return s
}
