package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestDisabledMetricsAllocateNothing mirrors the recorder's zero-alloc
// pin: a nil or zero-value engine must make every hot call a guarded
// no-op that allocates nothing and accumulates nothing.
func TestDisabledMetricsAllocateNothing(t *testing.T) {
	var nilM *Metrics
	for name, m := range map[string]*Metrics{"nil": nilM, "zero": new(Metrics)} {
		m := m
		t.Run(name, func(t *testing.T) {
			var p *PushedSeries // Pushed on a disabled engine returns nil
			if got := m.Pushed("x", SeriesGauge); got != nil {
				t.Fatalf("Pushed on disabled engine returned %v, want nil", got)
			}
			allocs := testing.AllocsPerRun(100, func() {
				m.Tick(1000)
				m.sample(1000)
				m.Counter("c", nil)
				m.Gauge("g", nil)
				m.Rate("r", nil)
				m.Quantile("q", 0.5, nil)
				m.Ticks()
				m.Latest("c")
				m.LatestDelta("c")
				m.SlopeOver("c", 4)
				m.Series()
				m.Every()
				p.Put(1, 2)
				p.Points()
			})
			if allocs != 0 {
				t.Errorf("disabled metrics allocated %.0f times per run, want 0", allocs)
			}
			if m != nil && (m.ticks != 0 || len(m.counters) != 0 || len(m.pushed) != 0) {
				t.Errorf("disabled metrics accumulated state: %+v", m)
			}
		})
	}
}

// TestTickQuantizesBoundaries: samples land at exact interval
// boundaries regardless of how the clock jumps, one row per crossed
// boundary, none before the first.
func TestTickQuantizesBoundaries(t *testing.T) {
	m := NewMetrics(100)
	var v uint64
	m.Counter("c", func() uint64 { return v })
	m.Tick(99) // below first boundary: nothing
	if m.Ticks() != 0 {
		t.Fatalf("ticked %d times before first boundary", m.Ticks())
	}
	v = 7
	m.Tick(100) // lands exactly on a boundary
	v = 50
	m.Tick(460) // jumps across three boundaries at once
	if m.Ticks() != 4 {
		t.Fatalf("ticks = %d, want 4", m.Ticks())
	}
	s := m.Series()[0]
	wantAt := []int64{100, 200, 300, 400}
	wantV := []float64{7, 50, 50, 50}
	if len(s.Points) != len(wantAt) {
		t.Fatalf("points = %v", s.Points)
	}
	for i, p := range s.Points {
		if p.At != wantAt[i] || p.V != wantV[i] {
			t.Errorf("point %d = %+v, want {%d %g}", i, p, wantAt[i], wantV[i])
		}
	}
	// Zero-interval engines never tick but still carry pushed series.
	m0 := NewMetrics(0)
	ps := m0.Pushed("p", SeriesRate)
	m0.Tick(1 << 40)
	ps.Put(5, 1.5)
	if m0.Ticks() != 0 || len(m0.Series()) != 1 || m0.Series()[0].Points[0].V != 1.5 {
		t.Errorf("zero-interval engine: ticks=%d series=%+v", m0.Ticks(), m0.Series())
	}
}

// TestRateAndLatestDelta: rates store per-window deltas against a
// registration-time baseline; LatestDelta agrees between counter and
// rate views of the same source.
func TestRateAndLatestDelta(t *testing.T) {
	m := NewMetrics(10)
	var v uint64 = 100 // nonzero at registration: rate baselines here
	read := func() uint64 { return v }
	m.Counter("total", read)
	m.Rate("rate", read)
	v = 130
	m.Tick(10)
	v = 175
	m.Tick(20)
	rate := m.Series()[1]
	if rate.Points[0].V != 30 || rate.Points[1].V != 45 {
		t.Errorf("rate points = %+v, want [30 45]", rate.Points)
	}
	if d, ok := m.LatestDelta("total"); !ok || d != 45 {
		t.Errorf("LatestDelta(total) = %g, %v; want 45", d, ok)
	}
	if d, ok := m.LatestDelta("rate"); !ok || d != 45 {
		t.Errorf("LatestDelta(rate) = %g, %v; want 45", d, ok)
	}
	if p, ok := m.Latest("total"); !ok || p.At != 20 || p.V != 175 {
		t.Errorf("Latest(total) = %+v, %v", p, ok)
	}
	if _, ok := m.Latest("no-such"); ok {
		t.Error("Latest on unknown series reported ok")
	}
}

// TestWindowedQuantiles: each sample digests only the window's
// observations — a slow first window must not drag up a fast second
// window's p99, and an empty window reports zero.
func TestWindowedQuantiles(t *testing.T) {
	m := NewMetrics(100)
	h := NewHist()
	m.Quantile("p99", 0.99, func(into *Hist) { into.Merge(h) })
	for i := 0; i < 100; i++ {
		h.Observe(10_000) // slow window
	}
	m.Tick(100)
	for i := 0; i < 100; i++ {
		h.Observe(10) // fast window
	}
	m.Tick(200)
	m.Tick(300) // empty window
	pts := m.Series()[0].Points
	if pts[0].V < 9000 {
		t.Errorf("slow window p99 = %g, want ~10000", pts[0].V)
	}
	if pts[1].V > 100 {
		t.Errorf("fast window p99 = %g: cumulative histogram leaked into the window", pts[1].V)
	}
	if pts[2].V != 0 {
		t.Errorf("empty window p99 = %g, want 0", pts[2].V)
	}
}

// TestDeltaQuantileMatchesDirect: the bucket-wise delta quantile must
// agree with observing the window's values into a fresh histogram.
func TestDeltaQuantileMatchesDirect(t *testing.T) {
	var prev, cur, direct Hist
	for i := int64(1); i <= 1000; i += 3 {
		prev.Observe(i)
		cur.Observe(i)
	}
	for i := int64(500); i < 2000; i += 7 {
		cur.Observe(i)
		direct.Observe(i)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, want := deltaQuantile(&cur, &prev, q), direct.Quantile(q)
		if got != want {
			t.Errorf("deltaQuantile(%g) = %d, direct = %d", q, got, want)
		}
	}
	if got := deltaQuantile(&prev, &prev, 0.5); got != 0 {
		t.Errorf("empty delta quantile = %d, want 0", got)
	}
}

// TestHistReset: a reset histogram is indistinguishable from a fresh
// one.
func TestHistReset(t *testing.T) {
	h := NewHist()
	for i := int64(0); i < 100; i++ {
		h.Observe(i * 13)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("reset histogram not empty: n=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
}

// TestSeriesAnalysis: Deltas, Window, Mean, Slope, and the steady
// digest (counters judged on deltas, gauges on levels).
func TestSeriesAnalysis(t *testing.T) {
	lin := Series{Name: "g", Kind: SeriesGauge.String()}
	for i := int64(0); i < 10; i++ {
		// V = 2 per Mcycle slope: at every 1e6 cycles, value climbs 2.
		lin.Points = append(lin.Points, Point{i * 1_000_000, float64(2 * i)})
	}
	if got := lin.Slope(); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %g, want 2", got)
	}
	if got := lin.Mean(); got != 9 {
		t.Errorf("mean = %g, want 9", got)
	}
	if w := lin.Window(2_000_000, 5_000_000); len(w) != 3 || w[0].V != 4 {
		t.Errorf("window = %+v", w)
	}
	st := lin.Steady()
	if math.Abs(st.Slope-2) > 1e-9 || st.Points != 5 {
		t.Errorf("steady = %+v", st)
	}

	// A counter growing by a constant 5 per window is steady: delta
	// mean 5, delta slope 0.
	ctr := Series{Name: "c", Kind: SeriesCounter.String()}
	for i := int64(0); i < 10; i++ {
		ctr.Points = append(ctr.Points, Point{i * 1000, float64(5 * i)})
	}
	d := ctr.Deltas()
	if len(d) != 9 || d[0].V != 5 || d[0].At != 1000 {
		t.Errorf("deltas = %+v", d)
	}
	st = ctr.Steady()
	if st.Mean != 5 || math.Abs(st.Slope) > 1e-9 {
		t.Errorf("counter steady = %+v, want mean 5 slope 0", st)
	}
	if (Series{}).Slope() != 0 || len((Series{}).Deltas()) != 0 {
		t.Error("empty series analysis not zero")
	}
}

// TestSlopeOver: the controller-facing windowed slope read.
func TestSlopeOver(t *testing.T) {
	m := NewMetrics(1_000_000)
	var v uint64
	m.Gauge("g", func() float64 { return float64(v) })
	for i := 1; i <= 8; i++ {
		if i <= 4 {
			v = 0 // flat first half
		} else {
			v += 3 // then climbs 3 per Mcycle window
		}
		m.Tick(int64(i) * 1_000_000)
	}
	full, ok := m.SlopeOver("g", 0)
	if !ok {
		t.Fatal("SlopeOver reported no data")
	}
	tail, ok := m.SlopeOver("g", 4)
	if !ok || math.Abs(tail-3) > 1e-9 {
		t.Errorf("tail slope = %g, %v; want 3", tail, ok)
	}
	if full >= tail {
		t.Errorf("full-series slope %g not below tail slope %g", full, tail)
	}
	if _, ok := m.SlopeOver("g", 1); ok {
		t.Error("single-point slope reported ok")
	}
}

func testCells() []MetricsCell {
	mk := func(scale float64) []Series {
		m := NewMetrics(10)
		var v uint64
		m.Counter("retired", func() uint64 { return v })
		m.Gauge("garbage", func() float64 { return float64(v) / 2 * scale })
		for i := 1; i <= 8; i++ {
			v += uint64(100 * scale)
			m.Tick(int64(i) * 10)
		}
		return m.Series()
	}
	return []MetricsCell{
		{Scenario: "s1", DS: "stack", Scheme: "threadscan", Series: mk(1)},
		{Scenario: "s1", DS: "stack", Scheme: "epoch", Series: mk(2)},
	}
}

// TestMetricsJSONRoundTrip: Write → Read is lossless.
func TestMetricsJSONRoundTrip(t *testing.T) {
	cells := testCells()
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetricsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cells)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Errorf("round trip diverged:\n%s\n%s", a, b)
	}
	if _, err := ReadMetricsJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage input parsed")
	}
}

// TestMetricsCSV: long format, one row per point, header first.
func TestMetricsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, testCells()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "scenario,ds,scheme,series,kind,at_cycles,value" {
		t.Errorf("header = %q", lines[0])
	}
	if want := 1 + 2*2*8; len(lines) != want {
		t.Errorf("csv rows = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[1], "s1,stack,threadscan,retired,counter,10,") {
		t.Errorf("first row = %q", lines[1])
	}
}

// TestDiffMetrics: self-compare is clean; a perturbed steady window is
// flagged; tolerance, the noise floor, and missing cells/series all
// behave as documented.
func TestDiffMetrics(t *testing.T) {
	cells := testCells()
	if d := DiffMetrics(cells, cells, 0.01); len(d) != 0 {
		t.Fatalf("self-compare drifted: %+v", d)
	}

	// Perturb one cell's series by 2x: both its series must be flagged
	// against the original, and the shift must name the worst first.
	perturbed := testCells()
	perturbed[1] = MetricsCell{Scenario: "s1", DS: "stack", Scheme: "epoch",
		Series: testCells()[0].Series} // epoch now looks like threadscan: halved
	drifts := DiffMetrics(cells, perturbed, 0.10)
	if len(drifts) != 2 {
		t.Fatalf("drifts = %+v, want 2", drifts)
	}
	for _, d := range drifts {
		if d.Cell != "s1 stack/epoch" || d.Reason != "steady-mean" {
			t.Errorf("unexpected drift %+v", d)
		}
		if d.Shift < 0.4 {
			t.Errorf("2x perturbation reported shift %g", d.Shift)
		}
	}
	// The same perturbation passes under a generous-enough tolerance.
	if d := DiffMetrics(cells, perturbed, 0.8); len(d) != 0 {
		t.Errorf("tolerance 0.8 still flagged: %+v", d)
	}

	// Sub-noise-floor series are never compared.
	tiny := []MetricsCell{{Scenario: "s", DS: "d", Scheme: "x",
		Series: []Series{{Name: "idle", Kind: "gauge", SteadyMean: 0.2}}}}
	tiny2 := []MetricsCell{{Scenario: "s", DS: "d", Scheme: "x",
		Series: []Series{{Name: "idle", Kind: "gauge", SteadyMean: 0.8}}}}
	if d := DiffMetrics(tiny, tiny2, 0.01); len(d) != 0 {
		t.Errorf("noise-floor series flagged: %+v", d)
	}

	// Missing series and missing cells are drifts; extra ones are not.
	if d := DiffMetrics(cells, cells[:1], 0.1); len(d) != 1 || d[0].Reason != "missing-cell" {
		t.Errorf("missing cell: %+v", d)
	}
	fewer := testCells()
	fewer[0].Series = fewer[0].Series[:1]
	if d := DiffMetrics(cells, fewer, 0.1); len(d) != 1 || d[0].Reason != "missing-series" {
		t.Errorf("missing series: %+v", d)
	}
	if d := DiffMetrics(fewer, cells, 0.1); len(d) != 0 {
		t.Errorf("extra series flagged: %+v", d)
	}

	var buf bytes.Buffer
	if err := WriteDriftTable(&buf, drifts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cell", "steady-mean", "s1 stack/epoch"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("drift table missing %q:\n%s", want, buf.String())
		}
	}
}

// TestWriteTimeline: the sparkline report renders every series (or a
// filtered subset) with the steady digest.
func TestWriteTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, testCells(), ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"s1 stack/threadscan", "s1 stack/epoch", "retired", "garbage", "steady", "▁"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteTimeline(&buf, testCells(), "garbage"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "retired") {
		t.Errorf("filter leaked non-matching series:\n%s", buf.String())
	}
}

// TestSparkline: scaling, flat series, and downsampling.
func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 3}, 48); got != "▁▃▅█" {
		t.Errorf("ramp = %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}, 48); got != "▁▁▁" {
		t.Errorf("flat = %q", got)
	}
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	if got := sparkline(long, 10); len([]rune(got)) != 10 {
		t.Errorf("downsampled width = %d, want 10", len([]rune(got)))
	}
	if sparkline(nil, 10) != "" {
		t.Error("empty sparkline not empty")
	}
}

// TestMergeStageInto: the non-allocating aggregation agrees with
// StageHist, and the guard holds for nil/disabled recorders.
func TestMergeStageInto(t *testing.T) {
	r := NewRecorder()
	tr := &threadRec{}
	tr.observe(StageOp, 100)
	tr.observe(StageOp, 2000)
	r.threads = append(r.threads, tr, nil)
	var h Hist
	r.MergeStageInto(StageOp, &h)
	want := r.StageHist(StageOp)
	if h.Count() != want.Count() || h.Quantile(0.99) != want.Quantile(0.99) {
		t.Errorf("MergeStageInto diverged from StageHist: n=%d vs %d", h.Count(), want.Count())
	}
	var h2 Hist
	var nilRec *Recorder
	nilRec.MergeStageInto(StageOp, &h2)
	new(Recorder).MergeStageInto(StageOp, &h2)
	if h2.Count() != 0 {
		t.Errorf("disabled MergeStageInto merged %d observations", h2.Count())
	}
}

// TestSeriesKindString covers the kind names the exporters embed.
func TestSeriesKindString(t *testing.T) {
	for k, want := range map[SeriesKind]string{
		SeriesCounter: "counter", SeriesGauge: "gauge",
		SeriesRate: "rate", SeriesQuantile: "quantile",
		numSeriesKinds: "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("kind %d = %q, want %q", k, got, want)
		}
	}
}
