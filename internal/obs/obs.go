// Package obs is the observability layer: per-thread span recorders and
// HDR-style latency histograms keyed on simt's virtual clock, with
// Chrome trace-event export.
//
// The layer is zero-cost by contract, twice over.  A nil or disabled
// *Recorder makes every recording call a two-comparison no-op that
// allocates nothing — the hot paths stay clean when observability is
// off.  And even an *enabled* recorder never charges virtual cycles: it
// only reads Thread.Now, so attaching one cannot perturb a simulation's
// schedule, clock, or op trace.  Scenario results with recording on are
// bit-identical to results with it off; the invariant is locked down by
// TestObservabilityOffIsBitIdentical in internal/harness.
//
// Recording is two-tier to bound trace volume.  Histogram-only stages
// (per-op latency, retire, alloc) are high-frequency: they feed the
// quantile summaries but are never stored as individual spans.  Traced
// stages (the collect lifecycle: collect, signal, scan, handshake-wait,
// sort, sweep, free, grace-wait) are rare enough to keep span-by-span
// when tracing is on, which is what the Chrome exporter renders.
package obs

import "threadscan/internal/simt"

// Stage labels one kind of timed activity.  The collect-lifecycle
// stages mirror the ThreadScan protocol's phases: a collect triggers,
// broadcasts signals, each peer runs its scan handler, the collector
// waits at the handshake barrier, scanners sort shards, and the
// collector sweeps and frees.
type Stage uint8

const (
	// StageOp is one workload operation (histogram-only).
	StageOp Stage = iota
	// StageRetire is one scheme-level Retire call (histogram-only).
	StageRetire
	// StageAlloc is one Thread.Alloc (histogram-only).
	StageAlloc
	// StageCollect is a whole collect pass, trigger to completion.
	StageCollect
	// StageSignal is the collector's signal broadcast to all peers.
	StageSignal
	// StageScan is one thread's scan-handler execution, entry to exit.
	StageScan
	// StageHandshake is time blocked waiting on the ACK handshake
	// barrier.
	StageHandshake
	// StageSort is sorting one shard of the master buffer (local or
	// stolen).
	StageSort
	// StageSweep is the collector's sweep over the sorted buffer.
	StageSweep
	// StageFree is batch-freeing proven-dead blocks (collector sweep
	// tail or a scanner's help-free slice).
	StageFree
	// StageGraceWait is time blocked waiting for a grace period
	// (epoch/stacktrack analogue of the handshake wait).
	StageGraceWait
	// StageAdjust is a robust scheme's EndOp reference-adjustment pass
	// over the batches the finishing operation entered (hyaline).
	StageAdjust

	numStages
)

var stageNames = [numStages]string{
	"op", "retire", "alloc", "collect", "signal", "scan",
	"handshake-wait", "sort", "sweep", "free", "grace-wait",
	"adjust",
}

// stageTraced marks the stages whose completed spans are stored when
// tracing is on.  Histogram-only stages (op, retire, alloc) fire per
// operation and would dwarf the lifecycle signal they surround.
var stageTraced = [numStages]bool{
	StageCollect: true, StageSignal: true, StageScan: true,
	StageHandshake: true, StageSort: true, StageSweep: true,
	StageFree: true, StageGraceWait: true, StageAdjust: true,
}

// String returns the stage's trace name.
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// Stages returns all stages in declaration order (summary/table order).
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Kind labels an instant event — a point in virtual time with no
// duration.
type Kind uint8

const (
	// KindTrigger marks a collect triggered by a full delete buffer.
	KindTrigger Kind = iota
	// KindWatermark marks a collect triggered by the global watermark.
	KindWatermark
	// KindSignal marks one scan signal sent to a peer.
	KindSignal
	// KindSteal marks a reclaimer stealing another node's collect.
	KindSteal
	// KindRemoteFlush marks a cross-node free batch flushing to its
	// home pool's remote inbox.
	KindRemoteFlush

	numKinds
)

var kindNames = [numKinds]string{
	"trigger", "watermark", "signal", "steal", "remote-flush",
}

// String returns the kind's trace name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one completed traced span on one thread.  Node attributes
// the span to a NUMA node's collect pipeline (-1 when the span is not
// node-scoped); with concurrent per-node collects, overlapping
// lifecycle spans are told apart by it.
type Span struct {
	Stage Stage
	Start int64 // virtual cycles
	Dur   int64
	Node  int
}

// Instant is one point event on one thread.
type Instant struct {
	Kind Kind
	At   int64 // virtual cycles
}

type openSpan struct {
	stage Stage
	start int64
	node  int
}

type stageStat struct {
	hist  *Hist
	count int64
	sum   int64
	max   int64
}

// threadRec is one thread's recording state.  Thread ids are dense and
// never reused (SpawnFrom keeps allocating fresh ids), so a churned
// thread's record survives its exit and merges into the summaries
// exactly once — no loss, no double count.
type threadRec struct {
	id       int
	name     string
	open     []openSpan
	stats    [numStages]stageStat
	spans    []Span
	instants []Instant
}

func (tr *threadRec) observe(s Stage, dur int64) {
	st := &tr.stats[s]
	if st.hist == nil {
		st.hist = NewHist()
	}
	st.hist.Observe(dur)
	st.count++
	st.sum += dur
	if dur > st.max {
		st.max = dur
	}
}

// Recorder accumulates spans, instants, and histograms for one
// simulation run.  The zero value (and a nil pointer) is a disabled
// recorder: every method returns immediately without allocating.
// Construct enabled recorders with NewRecorder or NewTraceRecorder.
//
// A Recorder needs no synchronization: the simt scheduler runs exactly
// one thread between safepoints, so recording calls never race.
type Recorder struct {
	enabled bool
	trace   bool

	threads []*threadRec // indexed by thread id
	kinds   [numKinds]int64

	remoteLineFills    int64
	allocRemoteFills   int64
	remoteFlushBatches int64
	remoteFlushBlocks  int64
	inboxDrains        int64
	inboxBlocks        int64
}

// NewRecorder returns an enabled histogram-only recorder: quantile
// summaries without span storage.
func NewRecorder() *Recorder { return &Recorder{enabled: true} }

// NewTraceRecorder returns an enabled recorder that also stores
// lifecycle spans and instants for Chrome trace export.
func NewTraceRecorder() *Recorder { return &Recorder{enabled: true, trace: true} }

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Tracing reports whether the recorder stores spans for export.
func (r *Recorder) Tracing() bool { return r != nil && r.trace }

// rec returns (creating if needed) the record for t.
func (r *Recorder) rec(t *simt.Thread) *threadRec {
	id := t.ID()
	for id >= len(r.threads) {
		r.threads = append(r.threads, nil)
	}
	tr := r.threads[id]
	if tr == nil {
		tr = &threadRec{id: id, name: t.Name()}
		r.threads[id] = tr
	}
	return tr
}

// Begin opens a span of stage s on t's open-span stack.  Spans nest:
// End closes the most recent Begin.
func (r *Recorder) Begin(t *simt.Thread, s Stage) {
	if r == nil || !r.enabled {
		return
	}
	tr := r.rec(t)
	tr.open = append(tr.open, openSpan{s, t.Now(), -1})
}

// BeginNode opens a span of stage s attributed to a NUMA node's
// collect pipeline.  Identical to Begin otherwise; concurrent per-node
// collects use it so overlapping lifecycle spans carry their owner.
func (r *Recorder) BeginNode(t *simt.Thread, s Stage, node int) {
	if r == nil || !r.enabled {
		return
	}
	tr := r.rec(t)
	tr.open = append(tr.open, openSpan{s, t.Now(), node})
}

// End closes t's most recent open span at t's current virtual time,
// feeding the stage histogram and (for traced stages, when tracing)
// the span store.  End with no open span is a no-op.
func (r *Recorder) End(t *simt.Thread) {
	if r == nil || !r.enabled {
		return
	}
	tr := r.rec(t)
	n := len(tr.open)
	if n == 0 {
		return
	}
	sp := tr.open[n-1]
	tr.open = tr.open[:n-1]
	dur := t.Now() - sp.start
	tr.observe(sp.stage, dur)
	if r.trace && stageTraced[sp.stage] {
		tr.spans = append(tr.spans, Span{sp.stage, sp.start, dur, sp.node})
	}
}

// Observe records a completed duration for stage s directly, without
// the open-span stack.  Used for high-frequency histogram-only stages.
func (r *Recorder) Observe(t *simt.Thread, s Stage, dur int64) {
	if r == nil || !r.enabled {
		return
	}
	r.rec(t).observe(s, dur)
}

// Window records a completed span of stage s after the fact — start is
// in t's virtual-time coordinates (Thread.Now).  Used where the caller
// only knows a span happened once it is over, e.g. a grace wait that is
// recorded only if the reclaimer actually blocked.
func (r *Recorder) Window(t *simt.Thread, s Stage, start, dur int64) {
	if r == nil || !r.enabled {
		return
	}
	tr := r.rec(t)
	tr.observe(s, dur)
	if r.trace && stageTraced[s] {
		tr.spans = append(tr.spans, Span{s, start, dur, -1})
	}
}

// Instant records a point event of kind k at t's current virtual time.
func (r *Recorder) Instant(t *simt.Thread, k Kind) {
	if r == nil || !r.enabled {
		return
	}
	r.kinds[k]++
	if r.trace {
		tr := r.rec(t)
		tr.instants = append(tr.instants, Instant{k, t.Now()})
	}
}

// InstantCount returns how many instants of kind k were recorded
// (counted even when span storage is off).
func (r *Recorder) InstantCount(k Kind) int64 {
	if r == nil || !r.enabled {
		return 0
	}
	return r.kinds[k]
}

// ---------------------------------------------------------------------
// simt.Probe implementation (allocator and signal hooks).

// Alloc records one Thread.Alloc of the given duration; remote marks an
// allocation served by a block resident on another node.
func (r *Recorder) Alloc(t *simt.Thread, dur int64, remote bool) {
	if r == nil || !r.enabled {
		return
	}
	r.rec(t).observe(StageAlloc, dur)
	if remote {
		r.allocRemoteFills++
	}
}

// Free records one Thread.FreeAddr; flushed marks a free whose staged
// cross-node batch flushed over the interconnect, which surfaces as a
// remote-flush instant in traces.
func (r *Recorder) Free(t *simt.Thread, dur int64, flushed bool) {
	if r == nil || !r.enabled {
		return
	}
	_ = dur
	if flushed {
		r.Instant(t, KindRemoteFlush)
	}
}

// RemoteLineFill counts one cross-node cache-line fill.  Counter-only:
// fills are far too frequent to trace individually.
func (r *Recorder) RemoteLineFill(t *simt.Thread) {
	if r == nil || !r.enabled {
		return
	}
	_ = t
	r.remoteLineFills++
}

// SignalSent records one scan signal from from to to, as an instant on
// the sender's row.
func (r *Recorder) SignalSent(from, to *simt.Thread) {
	if r == nil || !r.enabled {
		return
	}
	_ = to
	r.Instant(from, KindSignal)
}

// ---------------------------------------------------------------------
// simmem.Observer implementation (heap batch-traffic hooks).

// RemoteFlush records a cross-node free batch of the given size moving
// to home's remote inbox.
func (r *Recorder) RemoteFlush(home, blocks int) {
	if r == nil || !r.enabled {
		return
	}
	_ = home
	r.remoteFlushBatches++
	r.remoteFlushBlocks += int64(blocks)
}

// InboxDrain records a pool draining blocks from its remote-free inbox
// back onto its central lists.
func (r *Recorder) InboxDrain(node, blocks int) {
	if r == nil || !r.enabled {
		return
	}
	_ = node
	r.inboxDrains++
	r.inboxBlocks += int64(blocks)
}

// ---------------------------------------------------------------------
// Aggregation.

// StageHist returns a merged copy of every thread's histogram for s.
func (r *Recorder) StageHist(s Stage) *Hist {
	h := NewHist()
	if r == nil || !r.enabled {
		return h
	}
	for _, tr := range r.threads {
		if tr != nil && tr.stats[s].hist != nil {
			h.Merge(tr.stats[s].hist)
		}
	}
	return h
}

// MergeStageInto merges every thread's histogram for s into a
// caller-owned Hist.  The non-allocating sibling of StageHist: the
// metrics engine calls it once per sampling window to snapshot the
// cumulative distribution, so it is part of the zero-cost hot surface
// (guarded, and the caller preallocates the destination).
func (r *Recorder) MergeStageInto(s Stage, into *Hist) {
	if r == nil || !r.enabled {
		return
	}
	for _, tr := range r.threads {
		if tr != nil && tr.stats[s].hist != nil {
			into.Merge(tr.stats[s].hist)
		}
	}
}

// StageCount returns the total observation count for s across threads.
func (r *Recorder) StageCount(s Stage) int64 {
	if r == nil || !r.enabled {
		return 0
	}
	var n int64
	for _, tr := range r.threads {
		if tr != nil {
			n += tr.stats[s].count
		}
	}
	return n
}

// StageTotal returns the total cycles recorded for s across threads.
func (r *Recorder) StageTotal(s Stage) int64 {
	if r == nil || !r.enabled {
		return 0
	}
	var sum int64
	for _, tr := range r.threads {
		if tr != nil {
			sum += tr.stats[s].sum
		}
	}
	return sum
}

// StageMax returns the exact longest observation for s across threads.
func (r *Recorder) StageMax(s Stage) int64 {
	if r == nil || !r.enabled {
		return 0
	}
	var m int64
	for _, tr := range r.threads {
		if tr != nil && tr.stats[s].max > m {
			m = tr.stats[s].max
		}
	}
	return m
}

// Spans returns every stored span of stage s across all threads, in
// thread-id order (recording order within a thread).  Only traced
// recorders store spans; analysis/test helper, not a hot path.
func (r *Recorder) Spans(s Stage) []Span {
	if r == nil || !r.enabled {
		return nil
	}
	var out []Span
	for _, tr := range r.threads {
		if tr == nil {
			continue
		}
		for _, sp := range tr.spans {
			if sp.Stage == s {
				out = append(out, sp)
			}
		}
	}
	return out
}

// MaxPause returns the longest any thread spent blocked inside a scan
// handler, at the handshake barrier, or in a grace-period wait — the
// paper-adjacent "max pause" robust-reclamation work is judged on.
func (r *Recorder) MaxPause() int64 {
	var m int64
	for _, s := range []Stage{StageScan, StageHandshake, StageGraceWait} {
		if v := r.StageMax(s); v > m {
			m = v
		}
	}
	return m
}
