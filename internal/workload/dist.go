package workload

import (
	"fmt"
	"math/rand"

	"threadscan/internal/ds"
)

// DistKind selects a key distribution.
type DistKind uint8

const (
	// DistUniform draws keys uniformly over the range (the paper's §6
	// workload).
	DistUniform DistKind = iota
	// DistZipf draws Zipf-distributed ranks (parameter Theta) and
	// scatters them over the range, so a few keys absorb most of the
	// traffic — contended hot nodes are retired and re-inserted over
	// and over.
	DistZipf
	// DistHotspot sends HotPct percent of operations to a hot subset
	// covering HotFrac of the range, and the rest uniformly everywhere.
	DistHotspot
	// DistWindow draws uniformly from a contiguous window covering
	// WindowFrac of the range that slides Sweeps times across the key
	// space over the phase — the churning-working-set pattern: behind
	// the window, nodes die; ahead of it, fresh nodes are born.
	DistWindow
)

func (k DistKind) String() string {
	switch k {
	case DistUniform:
		return "uniform"
	case DistZipf:
		return "zipf"
	case DistHotspot:
		return "hotspot"
	case DistWindow:
		return "window"
	default:
		return fmt.Sprintf("DistKind(%d)", int(k))
	}
}

// Dist is a key distribution description.  Zero value = uniform.
type Dist struct {
	Kind DistKind

	Theta float64 // zipf skew s > 1 (default 1.2)

	HotPct  int     // hotspot: percent of ops hitting the hot set (default 90)
	HotFrac float64 // hotspot: hot-set size as a fraction of the range (default 0.1)

	WindowFrac float64 // window width as a fraction of the range (default 0.125)
	Sweeps     float64 // full sweeps across the range per phase (default 1)
}

func (d *Dist) fill() {
	if d.Theta <= 1 {
		d.Theta = 1.2
	}
	if d.HotPct <= 0 || d.HotPct > 100 {
		d.HotPct = 90
	}
	if d.HotFrac <= 0 || d.HotFrac > 1 {
		d.HotFrac = 0.1
	}
	if d.WindowFrac <= 0 || d.WindowFrac > 1 {
		d.WindowFrac = 0.125
	}
	if d.Sweeps <= 0 {
		d.Sweeps = 1
	}
}

// scramble spreads an index over [0, n) with an odd multiplier, so hot
// ranks do not cluster at the head of sorted structures.  For
// power-of-two n it is a bijection.
func scramble(idx, n uint64) uint64 {
	return (idx * 0x9E3779B97F4A7C15) % n
}

// KeyGen generates keys for one worker within one phase.  It is driven
// by the worker's deterministic RNG, so a scenario's op trace is a pure
// function of its seed.
type KeyGen struct {
	d    Dist
	n    uint64 // key range size
	rng  *rand.Rand
	zipf *rand.Zipf
	hotN uint64
	winN uint64
}

// NewKeyGen builds a generator for dist over keyRange keys.
func NewKeyGen(d Dist, keyRange uint64, rng *rand.Rand) *KeyGen {
	d.fill()
	g := &KeyGen{d: d, n: keyRange, rng: rng}
	if g.n < 1 {
		g.n = 1
	}
	switch d.Kind {
	case DistZipf:
		g.zipf = rand.NewZipf(rng, d.Theta, 1, g.n-1)
	case DistHotspot:
		g.hotN = uint64(float64(g.n) * d.HotFrac)
		if g.hotN < 1 {
			g.hotN = 1
		}
	case DistWindow:
		g.winN = uint64(float64(g.n) * d.WindowFrac)
		if g.winN < 1 {
			g.winN = 1
		}
	}
	return g
}

// Key draws the next key.  frac is the worker's position within the
// phase in [0,1), consulted only by the sliding-window distribution.
func (g *KeyGen) Key(frac float64) uint64 {
	var idx uint64
	switch g.d.Kind {
	case DistZipf:
		idx = scramble(g.zipf.Uint64(), g.n)
	case DistHotspot:
		if g.rng.Intn(100) < g.d.HotPct {
			idx = scramble(uint64(g.rng.Int63n(int64(g.hotN))), g.n)
		} else {
			idx = uint64(g.rng.Int63n(int64(g.n)))
		}
	case DistWindow:
		if frac < 0 {
			frac = 0
		}
		start := uint64(frac*g.d.Sweeps*float64(g.n)) % g.n
		idx = (start + uint64(g.rng.Int63n(int64(g.winN)))) % g.n
	default:
		idx = uint64(g.rng.Int63n(int64(g.n)))
	}
	return ds.MinKey + idx
}
