package workload

import (
	"fmt"

	"threadscan/internal/ds"
	"threadscan/internal/simt"
)

// Op is one abstract operation kind.  Sets map them to
// Insert/Remove/Contains; stacks and queues map them to
// Push/Pop/Peek — so one scenario description drives any structure.
type Op uint8

const (
	// OpLookup is a read-only operation (Contains / Peek).
	OpLookup Op = iota
	// OpInsert adds an element (Insert / Push / Enqueue).
	OpInsert
	// OpRemove deletes an element (Remove / Pop / Dequeue) — the only
	// operation that retires memory.
	OpRemove
)

func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Target is the op surface the engine drives: any structure adapted to
// the three abstract operations.  Size is a host-side walk and must
// only be called while the simulation is quiescent.
type Target interface {
	Name() string
	Apply(th *simt.Thread, op Op, key uint64) bool
	Size() int
}

// ValueTarget is the value-reporting extension of Target for LIFO/FIFO
// structures: removes return *which* element came off, which is
// schedule-dependent and therefore excluded from the keyed digest — but
// exactly what the per-element conservation ledger (ValueLedger) needs.
type ValueTarget interface {
	Target
	// ApplyValue is Apply, additionally reporting the element value the
	// operation observed: the pushed value for OpInsert, the removed
	// element for OpRemove, the front/top element for OpLookup.
	ApplyValue(th *simt.Thread, op Op, key uint64) (uint64, bool)
}

// TargetFor adapts a data structure to the Target interface.
func TargetFor(s any) (Target, error) {
	switch v := s.(type) {
	case *ds.List:
		return setTarget{v, v.Len}, nil
	case *ds.HashTable:
		return setTarget{v, v.Len}, nil
	case *ds.SkipList:
		return setTarget{v, v.Len}, nil
	case *ds.Stack:
		return stackTarget{v}, nil
	case *ds.Queue:
		return queueTarget{v}, nil
	default:
		return nil, fmt.Errorf("workload: no Target adapter for %T", s)
	}
}

type setTarget struct {
	set ds.Set
	len func() int
}

func (t setTarget) Name() string { return t.set.Name() }
func (t setTarget) Size() int    { return t.len() }
func (t setTarget) Apply(th *simt.Thread, op Op, key uint64) bool {
	switch op {
	case OpInsert:
		return t.set.Insert(th, key)
	case OpRemove:
		return t.set.Remove(th, key)
	default:
		return t.set.Contains(th, key)
	}
}

type stackTarget struct{ s *ds.Stack }

func (t stackTarget) Name() string { return t.s.Name() }
func (t stackTarget) Size() int    { return t.s.Len() }
func (t stackTarget) Apply(th *simt.Thread, op Op, key uint64) bool {
	_, ok := t.ApplyValue(th, op, key)
	return ok
}
func (t stackTarget) ApplyValue(th *simt.Thread, op Op, key uint64) (uint64, bool) {
	switch op {
	case OpInsert:
		t.s.Push(th, key)
		return key, true
	case OpRemove:
		return t.s.Pop(th)
	default:
		return t.s.Peek(th)
	}
}

type queueTarget struct{ q *ds.Queue }

func (t queueTarget) Name() string { return t.q.Name() }
func (t queueTarget) Size() int    { return t.q.Len() }
func (t queueTarget) Apply(th *simt.Thread, op Op, key uint64) bool {
	_, ok := t.ApplyValue(th, op, key)
	return ok
}
func (t queueTarget) ApplyValue(th *simt.Thread, op Op, key uint64) (uint64, bool) {
	switch op {
	case OpInsert:
		t.q.Enqueue(th, key)
		return key, true
	case OpRemove:
		return t.q.Dequeue(th)
	default:
		return t.q.Peek(th)
	}
}
