package workload

// The built-in scenario suite: the adversarial workload shapes the
// related work (Hyaline, Crystalline) argues reclamation schemes must
// be judged on.  Every scenario is structure- and scheme-agnostic (DS
// and Scheme are left empty for the runner or suite to fill), sized for
// laptop-fast quick runs, and stretchable with Scenario.Scale.
//
// Durations are virtual cycles at the default 1 GHz clock (1e6 = 1 ms);
// key ranges are powers of two so the skewed distributions' index
// scrambling stays a bijection.

// quickBase returns the shared quick-scale skeleton.
func quickBase(name, desc string) Scenario {
	return Scenario{
		Name:       name,
		Desc:       desc,
		Threads:    8,
		Cores:      8,
		KeyRange:   1024,
		Prefill:    512,
		Seed:       1,
		BufferSize: 128,
		Batch:      128,
		Quantum:    125_000,
	}
}

// Builtins returns the named scenario suite, in presentation order.
func Builtins() []Scenario {
	uniform := Mix{InsertPct: 10, RemovePct: 10}
	heavy := Mix{InsertPct: 15, RemovePct: 15}

	baseline := quickBase("uniform-baseline",
		"the paper's §6 shape: uniform keys, 20% updates, one phase")
	baseline.Phases = []Phase{{Name: "steady", Duration: 4_000_000, Mix: uniform}}

	zipf := quickBase("zipfian-skew",
		"Zipf-distributed keys: a few hot nodes absorb most updates and are retired over and over")
	zipf.Phases = []Phase{{
		Name: "skewed", Duration: 4_000_000, Mix: heavy,
		Dist: Dist{Kind: DistZipf, Theta: 1.3},
	}}

	hotspot := quickBase("hotspot-90-10",
		"90% of operations hit 10% of the key space")
	hotspot.Phases = []Phase{{
		Name: "hot", Duration: 4_000_000, Mix: heavy,
		Dist: Dist{Kind: DistHotspot, HotPct: 90, HotFrac: 0.1},
	}}

	window := quickBase("shifting-window",
		"a working-set window slides across the key space: nodes die behind it, are born ahead of it")
	window.Phases = []Phase{{
		Name: "slide", Duration: 4_000_000,
		Mix:  Mix{InsertPct: 25, RemovePct: 25},
		Dist: Dist{Kind: DistWindow, WindowFrac: 0.125, Sweeps: 2},
	}}

	storm := quickBase("delete-storm",
		"phased: build up, then a remove-dominated storm floods the delete buffers, then recover")
	storm.Phases = []Phase{
		{Name: "build", Duration: 1_500_000, Mix: Mix{InsertPct: 70, RemovePct: 5}},
		{Name: "storm", Duration: 2_000_000, Mix: Mix{InsertPct: 5, RemovePct: 75}},
		{Name: "recover", Duration: 1_500_000, Mix: uniform},
	}

	burst := quickBase("retire-burst",
		"alternating insert-heavy and remove-heavy phases produce bursty retirement")
	burst.Phases = []Phase{
		{Name: "fill1", Duration: 1_000_000, Mix: Mix{InsertPct: 60, RemovePct: 10}},
		{Name: "drain1", Duration: 1_000_000, Mix: Mix{InsertPct: 10, RemovePct: 60}},
		{Name: "fill2", Duration: 1_000_000, Mix: Mix{InsertPct: 60, RemovePct: 10}},
		{Name: "drain2", Duration: 1_000_000, Mix: Mix{InsertPct: 10, RemovePct: 60}},
	}

	churn := quickBase("thread-churn",
		"workers exit and fresh threads spawn mid-run, stressing registration and signal delivery")
	churn.Threads = 6
	churn.Cores = 6
	churn.Phases = []Phase{{Name: "churny", Duration: 5_000_000, Mix: heavy}}
	churn.Churn = &Churn{Workers: 3, Generations: 3}

	over := quickBase("oversubscribed",
		"3x more threads than cores: descheduled threads delay every scan (the Figure 4 regime)")
	over.Threads = 24
	over.Cores = 8
	over.Phases = []Phase{{Name: "crowded", Duration: 5_000_000, Mix: uniform}}

	overChurn := quickBase("oversubscribed-churn",
		"oversubscription plus mid-run thread turnover: churn while signals already lag")
	overChurn.Threads = 16
	overChurn.Cores = 4
	overChurn.Phases = []Phase{{Name: "crowded-churn", Duration: 5_000_000, Mix: heavy}}
	overChurn.Churn = &Churn{Workers: 2, Generations: 3}

	// The two topology scenarios share a role split — the first half
	// of the workers insert-heavy (producers), the second half
	// remove-heavy (consumers) — and differ only in how roles map onto
	// the two NUMA nodes.  numa-split aligns them (all retiring
	// happens on node 1 against memory allocated on node 0 — the
	// cross-socket reclamation cliff Stamp-it identifies); the
	// balanced control interleaves them so every node both allocates
	// and retires.  Sharding and HelpFree are on so there are claim
	// units for the affinity-first order to route.
	producerConsumer := []Mix{
		{InsertPct: 60, RemovePct: 10},
		{InsertPct: 10, RemovePct: 60},
	}
	split := quickBase("numa-split",
		"producers pinned to node 0 retire into consumers pinned to node 1: worst-case cross-socket reclamation traffic")
	split.Nodes = 2
	split.PinPolicy = "split"
	split.WorkerMix = producerConsumer
	split.Shards = 8
	split.HelpFree = true
	split.Phases = []Phase{{Name: "ferry", Duration: 4_000_000, Mix: heavy}}

	balanced := quickBase("numa-balanced",
		"same producer/consumer roles interleaved across both nodes: the control for numa-split")
	balanced.Nodes = 2
	balanced.PinPolicy = "rr"
	balanced.WorkerMix = producerConsumer
	balanced.Shards = 8
	balanced.HelpFree = true
	balanced.Phases = []Phase{{Name: "ferry", Duration: 4_000_000, Mix: heavy}}

	// Per-node reclamation scenarios.  per-node-reclaim is numa-split's
	// shape with retirement routed to per-node shard groups at Free
	// time and one reclaimer per node — the configuration that drives
	// sweep-side remote fills to zero.  numa-skewed-retire is the
	// adversary for its rebalancing story: every retiring thread lives
	// on node 0 (node 1 only reads), so without stealing node 0 would
	// run every collect alone; a low steal threshold makes node 1's
	// scanners share the sort and sweep work.
	perNodeReclaim := quickBase("per-node-reclaim",
		"numa-split's producer/consumer shape with per-node retirement routing and one reclaimer per node")
	perNodeReclaim.Nodes = 2
	perNodeReclaim.PinPolicy = "split"
	perNodeReclaim.WorkerMix = producerConsumer
	perNodeReclaim.Shards = 8
	perNodeReclaim.HelpFree = true
	perNodeReclaim.PerNode = true
	perNodeReclaim.Phases = []Phase{{Name: "ferry", Duration: 4_000_000, Mix: heavy}}

	skewedRetire := quickBase("numa-skewed-retire",
		"one node retires everything while the other only reads: the per-node pipeline's rebalancing adversary")
	skewedRetire.Nodes = 2
	skewedRetire.PinPolicy = "split"
	skewedRetire.WorkerMix = []Mix{
		{InsertPct: 40, RemovePct: 40}, // node 0: churns hard, retires everything
		{InsertPct: 0, RemovePct: 0},   // node 1: pure readers
	}
	skewedRetire.Shards = 8
	skewedRetire.HelpFree = true
	skewedRetire.PerNode = true
	skewedRetire.StealThreshold = 256
	skewedRetire.Phases = []Phase{{Name: "lopsided", Duration: 4_000_000, Mix: heavy}}

	// Allocation-subsystem scenarios.  membind-contrast is numa-split's
	// shape under a strict membind policy: every alloc binds to the
	// requester's node, so producers' nodes come exclusively from node
	// 0's arena — the `numactl --membind` side of the ROADMAP contrast
	// (localalloc being the forgiving default the A8 ablation sweeps).
	// realloc-local closes the loop the per-node sweep opened: per-node
	// routing sweeps node-homed blocks back to their home pools and
	// localalloc reallocs them on the same node, so retire on node N →
	// collect on node N → realloc on node N without an interconnect hop.
	membind := quickBase("membind-contrast",
		"numa-split's producer/consumer shape under a strict membind allocation policy: every alloc binds to its node's arena")
	membind.Nodes = 2
	membind.PinPolicy = "split"
	membind.WorkerMix = producerConsumer
	membind.Shards = 8
	membind.HelpFree = true
	membind.AllocPolicy = "membind"
	membind.Phases = []Phase{{Name: "ferry", Duration: 4_000_000, Mix: heavy}}

	reallocLocal := quickBase("realloc-local",
		"the closed loop: per-node retirement routing sweeps blocks to their home pools, localalloc reallocs them on the same node")
	reallocLocal.Nodes = 2
	reallocLocal.PinPolicy = "split"
	reallocLocal.WorkerMix = producerConsumer
	reallocLocal.Shards = 8
	reallocLocal.HelpFree = true
	reallocLocal.PerNode = true
	reallocLocal.AllocPolicy = "localalloc"
	reallocLocal.Phases = []Phase{{Name: "ferry", Duration: 4_000_000, Mix: heavy}}

	// Robust-reclamation adversaries (Hyaline/Crystalline lineage): a
	// reader parked mid-operation, deaf to signals for the whole stall
	// ("preempt"), while the other workers churn hard.  Epoch's grace
	// periods and ThreadScan's scan barrier inherit the stall, so
	// their retired backlog grows with its length; a robust scheme's
	// peak stays bounded by what the victim actually entered.
	preempted := quickBase("preempted-reader",
		"one reader is descheduled mid-operation — deaf to signals for the stall — while the others churn")
	preempted.Phases = []Phase{{Name: "preempted", Duration: 5_000_000, Mix: heavy}}
	preempted.StallEvery = 100
	preempted.StallCycles = 1_000_000
	preempted.StallKind = "preempt"

	// stalled-scanner is the robustness regression subject.  One reader
	// parks mid-operation while everyone else churns; grace-period and
	// scan-barrier schemes block their reclaimers on the victim, and
	// the thread turnover keeps *fresh* mutators arriving for as long
	// as the stall lasts — each one accumulates a buffer of garbage
	// before it too hits its collect trigger and blocks.  Their peak
	// retired garbage therefore grows with the stall length; a robust
	// scheme frees every batch the victim never entered underneath it,
	// so its peak stays put.
	stalledScanner := quickBase("stalled-scanner",
		"the robustness regression subject: a long mid-operation preemption under heavy churn and thread turnover — bounded-garbage schemes keep their peak, grace-period schemes grow with the stall")
	stalledScanner.Phases = []Phase{{
		Name: "churn", Duration: 8_000_000,
		Mix: Mix{InsertPct: 30, RemovePct: 30},
	}}
	stalledScanner.Churn = &Churn{Workers: 3, Generations: 4}
	stalledScanner.StallEvery = 400
	stalledScanner.StallCycles = 2_000_000
	stalledScanner.StallKind = "preempt"

	overStalls := quickBase("oversubscribed-stalls",
		"Stamp-it's oversubscription adversary: 3x more threads than cores and several of them preempted mid-operation")
	overStalls.Threads = 24
	overStalls.Cores = 8
	overStalls.Phases = []Phase{{Name: "crowded-stalls", Duration: 5_000_000, Mix: heavy}}
	overStalls.StallEvery = 150
	overStalls.StallCycles = 1_500_000
	overStalls.StallVictims = 3
	overStalls.StallKind = "preempt"

	return []Scenario{
		baseline, zipf, hotspot, window, storm, burst, churn, over, overChurn,
		split, balanced, perNodeReclaim, skewedRetire, membind, reallocLocal,
		preempted, stalledScanner, overStalls,
	}
}

// ByName returns the named built-in scenario.
func ByName(name string) (Scenario, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names returns the built-in scenario names, in presentation order.
func Names() []string {
	b := Builtins()
	out := make([]string, len(b))
	for i := range b {
		out[i] = b[i].Name
	}
	return out
}
