package workload

import (
	"math/rand"
	"testing"

	"threadscan/internal/ds"
)

func TestMixPick(t *testing.T) {
	m := Mix{InsertPct: 10, RemovePct: 20}
	counts := map[Op]int{}
	for r := 0; r < 100; r++ {
		counts[m.Pick(r)]++
	}
	if counts[OpInsert] != 10 || counts[OpRemove] != 20 || counts[OpLookup] != 70 {
		t.Fatalf("mix partition: %v", counts)
	}
}

func TestScenarioFillValidates(t *testing.T) {
	s := Scenario{}
	if err := s.Fill(); err != nil {
		t.Fatal(err)
	}
	if s.TotalDuration() <= 0 || len(s.Phases) == 0 || s.SampleEvery <= 0 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	bad := Scenario{Phases: []Phase{{Mix: Mix{InsertPct: 80, RemovePct: 40}}}}
	if err := bad.Fill(); err == nil {
		t.Fatal("mix over 100% accepted")
	}
	late := Scenario{
		Phases: []Phase{{Duration: 1000}},
		Churn:  &Churn{Workers: 1, Generations: 2, Stagger: 800, Life: 800},
	}
	if err := late.Fill(); err == nil {
		t.Fatal("churn outliving the run accepted")
	}
}

func keyStats(t *testing.T, d Dist, n uint64, draws int) map[uint64]int {
	t.Helper()
	g := NewKeyGen(d, n, rand.New(rand.NewSource(7)))
	counts := map[uint64]int{}
	for i := 0; i < draws; i++ {
		k := g.Key(float64(i) / float64(draws))
		if k < ds.MinKey || k >= ds.MinKey+n {
			t.Fatalf("key %d out of range [%d,%d)", k, ds.MinKey, ds.MinKey+n)
		}
		counts[k]++
	}
	return counts
}

func TestUniformCoversRange(t *testing.T) {
	counts := keyStats(t, Dist{}, 256, 20_000)
	if len(counts) < 250 {
		t.Fatalf("uniform hit only %d of 256 keys", len(counts))
	}
}

func TestZipfConcentrates(t *testing.T) {
	const n, draws = 1024, 20_000
	counts := keyStats(t, Dist{Kind: DistZipf, Theta: 1.3}, n, draws)
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Under theta=1.3 the hottest key takes a large constant fraction;
	// under uniform it would get ~draws/n ≈ 20.
	if max < draws/10 {
		t.Fatalf("zipf hottest key only %d of %d draws", max, draws)
	}
}

func TestHotspotRespectsSplit(t *testing.T) {
	const n, draws = 1024, 40_000
	d := Dist{Kind: DistHotspot, HotPct: 90, HotFrac: 0.1}
	counts := keyStats(t, d, n, draws)
	// The hot set is the scrambled image of indices [0, n/10).
	hot := map[uint64]bool{}
	for i := uint64(0); i < n/10; i++ {
		hot[ds.MinKey+scramble(i, n)] = true
	}
	hotDraws := 0
	for k, c := range counts {
		if hot[k] {
			hotDraws += c
		}
	}
	frac := float64(hotDraws) / draws
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction %.3f, want ~0.90", frac)
	}
}

func TestWindowSlides(t *testing.T) {
	const n = 1024
	d := Dist{Kind: DistWindow, WindowFrac: 0.125, Sweeps: 1}
	g := NewKeyGen(d, n, rand.New(rand.NewSource(3)))
	early, late := map[uint64]bool{}, map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		early[g.Key(0.0)] = true
		late[g.Key(0.5)] = true
	}
	for k := range early {
		if late[k] {
			t.Fatalf("windows at frac 0.0 and 0.5 overlap at key %d", k)
		}
	}
	if len(early) > n/8+1 || len(late) > n/8+1 {
		t.Fatalf("window wider than WindowFrac: %d / %d keys", len(early), len(late))
	}
}

func TestScrambleBijectiveOnPow2(t *testing.T) {
	const n = 512
	seen := map[uint64]bool{}
	for i := uint64(0); i < n; i++ {
		seen[scramble(i, n)] = true
	}
	if len(seen) != n {
		t.Fatalf("scramble collides on power-of-two range: %d of %d", len(seen), n)
	}
}

func TestBuiltinsCoverRequiredShapes(t *testing.T) {
	b := Builtins()
	if len(b) < 6 {
		t.Fatalf("only %d built-in scenarios", len(b))
	}
	names := map[string]bool{}
	oversub := 0
	for i := range b {
		s := b[i]
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if err := s.Fill(); err != nil {
			t.Fatalf("builtin %s invalid: %v", s.Name, err)
		}
		if s.Threads > s.Cores {
			oversub++
		}
	}
	for _, want := range []string{"zipfian-skew", "delete-storm", "thread-churn"} {
		if !names[want] {
			t.Fatalf("missing required scenario %q", want)
		}
	}
	if oversub < 2 {
		t.Fatalf("want >=2 oversubscribed variants, got %d", oversub)
	}
	if s, ok := ByName("thread-churn"); !ok || s.Churn == nil {
		t.Fatal("thread-churn must carry a churn spec")
	}
	if len(Names()) != len(b) {
		t.Fatal("Names()/Builtins() disagree")
	}
}

func TestTraceDigestOrderSensitive(t *testing.T) {
	a, b := NewTrace(), NewTrace()
	a.Record(OpInsert, 5, true)
	a.Record(OpRemove, 5, true)
	b.Record(OpRemove, 5, true)
	b.Record(OpInsert, 5, true)
	if a.Sum() == b.Sum() {
		t.Fatal("trace digest ignores op order")
	}
	if a.Ops() != 2 {
		t.Fatalf("ops = %d", a.Ops())
	}
	if CombineTraces([]uint64{a.Sum(), b.Sum()}) == CombineTraces([]uint64{b.Sum(), a.Sum()}) {
		t.Fatal("combined digest ignores worker order")
	}
}

func TestScaleStretchesDurations(t *testing.T) {
	s, _ := ByName("thread-churn")
	if err := s.Fill(); err != nil {
		t.Fatal(err)
	}
	d0, st0 := s.TotalDuration(), s.Churn.Stagger
	scaled := s.Scale(2)
	if scaled.TotalDuration() != 2*d0 || scaled.Churn.Stagger != 2*st0 {
		t.Fatalf("scale: %d->%d, stagger %d->%d", d0, scaled.TotalDuration(), st0, scaled.Churn.Stagger)
	}
	if s.TotalDuration() != d0 {
		t.Fatal("Scale mutated the original")
	}
}

func TestPinPolicyPartitionsWorkers(t *testing.T) {
	s := Scenario{Threads: 8, Cores: 8, Nodes: 2}
	if err := s.Fill(); err != nil {
		t.Fatal(err)
	}
	// No policy: nobody pinned.
	for i := 0; i < s.Threads; i++ {
		if s.WorkerNode(i) != -1 {
			t.Fatalf("unpinned policy pins worker %d to %d", i, s.WorkerNode(i))
		}
	}
	// rr interleaves; split assigns contiguous blocks.  Both must map
	// every worker to an in-range node and use every node.
	for _, pin := range []string{"rr", "split"} {
		s.PinPolicy = pin
		used := map[int]int{}
		for i := 0; i < s.Threads; i++ {
			n := s.WorkerNode(i)
			if n < 0 || n >= s.Nodes {
				t.Fatalf("%s: worker %d -> node %d out of range", pin, i, n)
			}
			used[n]++
		}
		if len(used) != s.Nodes {
			t.Fatalf("%s: only %d of %d nodes used", pin, len(used), s.Nodes)
		}
		if used[0] != used[1] {
			t.Fatalf("%s: unbalanced pinning %v", pin, used)
		}
	}
	s.PinPolicy = "split"
	if s.WorkerNode(0) != 0 || s.WorkerNode(3) != 0 || s.WorkerNode(4) != 1 || s.WorkerNode(7) != 1 {
		t.Fatal("split does not assign contiguous halves")
	}
}

func TestWorkerMixGroups(t *testing.T) {
	s := Scenario{Threads: 8, Cores: 8,
		WorkerMix: []Mix{{InsertPct: 80}, {RemovePct: 80}}}
	if err := s.Fill(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if m := s.WorkerGroupMix(i); m == nil || m.InsertPct != 80 {
			t.Fatalf("worker %d not in producer group: %+v", i, m)
		}
	}
	for i := 4; i < 8; i++ {
		if m := s.WorkerGroupMix(i); m == nil || m.RemovePct != 80 {
			t.Fatalf("worker %d not in consumer group: %+v", i, m)
		}
	}
	if s.WorkerGroupMix(100) != nil {
		t.Fatal("out-of-range worker got a mix")
	}
	none := Scenario{Threads: 4, Cores: 4}
	if err := none.Fill(); err != nil {
		t.Fatal(err)
	}
	if none.WorkerGroupMix(0) != nil {
		t.Fatal("scenario without WorkerMix handed out an override")
	}
}

func TestTopologyKnobValidation(t *testing.T) {
	bad := Scenario{PinPolicy: "diagonal"}
	if err := bad.Fill(); err == nil {
		t.Fatal("bad pin policy accepted")
	}
	bad = Scenario{ClaimPolicy: "greedy"}
	if err := bad.Fill(); err == nil {
		t.Fatal("bad claim policy accepted")
	}
	bad = Scenario{Threads: 2, WorkerMix: []Mix{{}, {}, {}}}
	if err := bad.Fill(); err == nil {
		t.Fatal("more mix groups than workers accepted")
	}
	bad = Scenario{WorkerMix: []Mix{{InsertPct: 90, RemovePct: 90}}}
	if err := bad.Fill(); err == nil {
		t.Fatal("overfull worker mix accepted")
	}
	clamp := Scenario{Threads: 4, Cores: 2, Nodes: 8}
	if err := clamp.Fill(); err != nil {
		t.Fatal(err)
	}
	if clamp.Nodes != 2 {
		t.Fatalf("Nodes not clamped to cores: %d", clamp.Nodes)
	}
	numa, ok := ByName("numa-split")
	if !ok {
		t.Fatal("numa-split builtin missing")
	}
	if err := numa.Fill(); err != nil {
		t.Fatal(err)
	}
	if numa.Nodes != 2 || numa.PinPolicy != "split" || len(numa.WorkerMix) != 2 {
		t.Fatalf("numa-split topology: %d/%s/%d mixes", numa.Nodes, numa.PinPolicy, len(numa.WorkerMix))
	}
}

// TestValueLedgerConservation: the per-element LIFO/FIFO ledger — a
// value may pop as often as prefill plus pushes allow, one more is a
// violation (the signature of a double free resurfacing an element).
func TestValueLedgerConservation(t *testing.T) {
	a, b := NewValueLedger(), NewValueLedger()
	a.Push(7)
	a.Pop(7)
	b.Push(7)
	b.Pop(7)
	b.Pop(9) // covered by prefill only
	m := MergeValueLedgers([]*ValueLedger{a, nil, b})
	if msg := m.CheckConservation(func(v uint64) int {
		if v == 9 {
			return 1
		}
		return 0
	}); msg != "" {
		t.Fatalf("conserved history flagged: %s", msg)
	}
	// One pop too many on value 7: two pushes, three pops, no prefill.
	m.Pop(7)
	msg := m.CheckConservation(func(uint64) int { return 0 })
	if msg == "" {
		t.Fatal("over-pop not flagged")
	}
	// ...and value 9 now also exceeds its zero prefill.
	if want := "2 value(s)"; len(msg) == 0 || msg[:len(want)] != want {
		t.Fatalf("violation message %q does not count both values", msg)
	}
}
