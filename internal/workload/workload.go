// Package workload is the declarative scenario layer of the evaluation:
// composable descriptions of *how* a data structure is exercised,
// replacing the harness's single hard-coded op loop (uniform keys,
// fixed 20% updates) with the workload diversity the paper's claims are
// actually about.
//
// A Scenario names a structure and scheme, a thread/core geometry, and
// a sequence of Phases; each phase fixes an operation Mix and a key
// Dist for a virtual-time window, so op mixes can shift mid-run
// (read-heavy → delete-storm → read-heavy).  An optional Churn spec
// adds workers that spawn and exit mid-run — exercising the
// registration hooks and signal-delivery protocol far harder than the
// paper's static thread set.  Scenarios are pure descriptions; the
// engine that executes them lives in internal/harness (RunScenario),
// which also samples the Hyaline-style memory-robustness metric
// (retired-but-unreclaimed words over time) every scenario reports
// next to throughput.
//
// The motivation is the related work's critique: Hyaline and
// Crystalline argue reclamation schemes must be judged on unreclaimed-
// garbage bounds under adversarial workloads, not just throughput under
// a friendly one.  The built-in suite (Builtins) encodes exactly those
// adversaries: skew, delete storms, retirement bursts, thread churn,
// and oversubscription.
package workload

import (
	"fmt"

	"threadscan/internal/simmem"
)

// Mix is an operation mix: percentages of inserts (pushes) and removes
// (pops); the remainder are lookups (peeks).
type Mix struct {
	InsertPct int
	RemovePct int
}

// Pick maps a uniform draw r in [0,100) to an operation.
func (m Mix) Pick(r int) Op {
	switch {
	case r < m.InsertPct:
		return OpInsert
	case r < m.InsertPct+m.RemovePct:
		return OpRemove
	default:
		return OpLookup
	}
}

func (m Mix) validate() error {
	if m.InsertPct < 0 || m.RemovePct < 0 || m.InsertPct+m.RemovePct > 100 {
		return fmt.Errorf("workload: bad mix %+v", m)
	}
	return nil
}

// Phase is one window of a scenario: a duration in virtual cycles
// during which every worker draws keys from Dist and operations from
// Mix.  Workers cross phase boundaries at the same absolute virtual
// times (relative to the measured start), so a "delete storm" really is
// a storm — all threads storm together.
type Phase struct {
	Name     string
	Duration int64 // virtual cycles
	Mix      Mix
	Dist     Dist
}

// Churn describes mid-run thread turnover: Generations waves of Workers
// fresh threads each, spawned while the run is in flight and exiting
// before it ends.  Generation g (0-based) starts at (g+1)*Stagger into
// the measured window and lives for Life cycles; the zero values derive
// both from the total duration so the last generation exits before the
// persistent workers stop.
type Churn struct {
	Workers     int   // threads per generation (default 2)
	Generations int   // waves (default 2)
	Stagger     int64 // cycles between generation starts (0 = derived)
	Life        int64 // per-worker lifetime in cycles (0 = derived)
}

func (c *Churn) fill(total int64) {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Generations <= 0 {
		c.Generations = 2
	}
	if c.Stagger <= 0 {
		c.Stagger = total / int64(c.Generations+2)
	}
	if c.Life <= 0 {
		c.Life = c.Stagger
	}
}

// Start returns the spawn offset of generation g from the measured
// start.
func (c *Churn) Start(g int) int64 { return int64(g+1) * c.Stagger }

// TotalWorkers returns the number of churn threads the scenario spawns.
func (c *Churn) TotalWorkers() int { return c.Workers * c.Generations }

// Scenario is one complete declarative workload description.
type Scenario struct {
	Name string
	Desc string

	DS     string // list | hash | skiplist | stack | queue
	Scheme string // any registered scheme (harness.SchemeNames)

	Threads int // persistent workers
	Cores   int // virtual cores (Threads > Cores = oversubscription)

	KeyRange uint64
	Prefill  int // initial population (elements for stack/queue)

	Phases []Phase
	Churn  *Churn // nil = static thread set

	Seed int64

	// Structure / scheme parameters (0 = harness defaults).
	NodeBytes  int
	Buckets    int
	BufferSize int
	Batch      int

	// Sharded-collect pipeline knobs (threadscan; 0/false = classic
	// serial collect).  Shards is K, the address-shard count; Watermark
	// triggers a collect when the global buffered count crosses it;
	// HelpFree defers sweeping to the next phase's scanners.
	Shards    int
	Watermark int
	HelpFree  bool

	// Topology knobs.  Nodes groups the cores into NUMA nodes (0/1 =
	// the flat machine); PinPolicy maps persistent workers onto them:
	//
	//	""/"none"  no pinning — threads run on any core
	//	"rr"       worker i pinned to node i % Nodes (interleaved)
	//	"split"    workers pinned in contiguous blocks — worker i to
	//	           node i*Nodes/Threads, so the first 1/Nodes of the
	//	           workers land on node 0, and (with WorkerMix) whole
	//	           role groups land on whole nodes
	//
	// Churn workers inherit the churn controller's (unpinned) mask
	// unless the engine pins them; with "rr" and "split" the engine
	// pins churn worker j to node j % Nodes so turnover populates
	// every node.
	Nodes     int
	PinPolicy string

	// WorkerMix optionally overrides the phase op mix per worker role
	// group: the persistent workers divide into len(WorkerMix) equal
	// contiguous groups, and group g draws operations from
	// WorkerMix[g] instead of the phase's Mix (key distributions and
	// phase boundaries still apply).  This is how producer/consumer
	// scenarios are declared: WorkerMix[0] insert-heavy, WorkerMix[1]
	// remove-heavy; combined with PinPolicy "split" the producers
	// occupy node 0 and retire into consumers on node 1, while "rr"
	// spreads both roles over all nodes as a balanced control.  Churn
	// workers always use the phase mix.
	WorkerMix []Mix

	// ClaimPolicy selects the threadscan shard-claim order on a
	// multi-node topology: "" / "affinity" (local shards first, steal
	// remote) or "rr" (index order, topology-blind).
	ClaimPolicy string

	// PerNode enables threadscan's per-node retirement routing and
	// node-local reclaimers: retired addresses are routed to per-node
	// shard groups at Free time and each node collects over its own
	// group, synchronizing cross-node only at the scan barrier.  Inert
	// on a flat machine (Nodes <= 1) and for other schemes.
	PerNode bool

	// StealThreshold is the per-node backlog (addresses) past which
	// other nodes steal reclamation work under PerNode — the
	// rebalancing knob for one-node-retires-everything skew.  0 =
	// core's default (4x the per-node collect trigger).
	StealThreshold int

	// SerializeCollects forces PerNode collects back onto one
	// machine-wide reclamation lock (the pre-overlap pipeline) instead
	// of the default truly concurrent per-node collects — the A9
	// ablation's control.  Inert without PerNode.
	SerializeCollects bool

	// AllocPolicy selects the simulated allocator's NUMA placement
	// policy — the numactl contrast:
	//
	//	""/"global"   one machine-wide pool (the pre-allocpool heap)
	//	"localalloc"  per-node pools; allocate from the requester's
	//	              node, fall back only when its region is exhausted
	//	"membind"     per-node pools; strictly bind to the requester's
	//	              node (OOM when its region runs out)
	//	"interleave"  per-node pools; rotate allocations round-robin
	//
	// Non-global policies split the arena into per-node pools, bind
	// thread caches to their thread's node, and route frees to each
	// block's home pool.  Inert on a flat machine (Nodes <= 1), where
	// the heap keeps a single pool regardless.
	AllocPolicy string

	// Errant-thread injection (ablation A4 and the adversarial
	// builtins): when StallCycles > 0, the first StallVictims
	// persistent workers execute one empty operation stalled for
	// StallCycles cycles every StallEvery completed operations.  The
	// stall sits *inside* a BeginOp/EndOp bracket, the shape on which
	// the robustness literature (Hyaline, Crystalline, Stamp-it)
	// judges reclamation schemes: a reader parked mid-critical-
	// section.  The injected op draws no randomness and records no
	// trace entry, so op-stream digests stay scheme- and
	// stall-independent.
	//
	// StallKind selects the stall primitive:
	//
	//	""/"work"  an application stall — the victim spins through
	//	           preemptible work, still reaching safepoints, so
	//	           scan signals are delivered mid-stall (the classic
	//	           A4 shape, the paper's liveness claim)
	//	"preempt"  a descheduled thread — the victim is deaf to
	//	           signals for the whole stall, the adversarial shape
	//	           the robust-reclamation builtins use
	StallEvery   int
	StallCycles  int64
	StallVictims int
	StallKind    string

	// OpsPerWorker, when positive, switches the engine from the
	// virtual-time deadline to a fixed operation budget: every worker
	// executes exactly this many operations, with phase boundaries
	// placed proportionally along the op index instead of the clock.
	// This makes the executed op stream — and, for a single-threaded
	// run, the op-trace digest — a function of the seed alone,
	// independent of scheme cost models: the property the cross-scheme
	// differential harness asserts on.
	OpsPerWorker int

	// Simulator knobs (0 = defaults).
	Quantum     int64
	HeapWords   int
	SampleEvery int64 // footprint sampling interval (0 = duration/64)

	// MetricsEvery is the metrics-engine sampling interval in virtual
	// cycles: every timeline series gets one point per interval.  0
	// leaves the engine off (the default — results stay byte-identical
	// to pre-metrics runs), -1 resolves to the footprint cadence
	// (SampleEvery after its default), and any positive value is used
	// as-is.  Sampling reads host-side state only, so enabling it never
	// changes ops, cycles, or trace hashes.
	MetricsEvery int64

	// Chaos enables the scheduler's seeded adversarial mode: eligible
	// threads are picked uniformly at random (still deterministically,
	// from the seed) instead of FIFO, and quanta jitter.  For stress
	// tests hunting interleaving-dependent protocol bugs; results stay
	// reproducible per seed but differ from the FIFO schedule.
	Chaos bool
}

// TotalDuration is the measured window: the sum of phase durations.
func (s *Scenario) TotalDuration() int64 {
	var d int64
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// PhaseWindow is one phase's absolute virtual-time window relative to
// the measured start: [Start, End).
type PhaseWindow struct {
	Name  string
	Start int64
	End   int64
}

// PhaseWindows lays the phases out on the virtual clock (offsets from
// the measured start).  Trace exporters use it to draw phase bands
// under the per-thread span rows.  Valid after Fill.
func (s *Scenario) PhaseWindows() []PhaseWindow {
	ws := make([]PhaseWindow, len(s.Phases))
	var at int64
	for i, p := range s.Phases {
		ws[i] = PhaseWindow{Name: p.Name, Start: at, End: at + p.Duration}
		at += p.Duration
	}
	return ws
}

// Fill applies defaults in place and validates the scenario.
func (s *Scenario) Fill() error {
	if s.Name == "" {
		s.Name = "unnamed"
	}
	if s.DS == "" {
		s.DS = "list"
	}
	if s.Scheme == "" {
		s.Scheme = "threadscan"
	}
	if s.Threads <= 0 {
		s.Threads = 4
	}
	if s.Cores <= 0 {
		s.Cores = s.Threads
	}
	if s.KeyRange == 0 {
		s.KeyRange = 1024
	}
	if s.Prefill == 0 {
		s.Prefill = int(s.KeyRange / 2)
	}
	if len(s.Phases) == 0 {
		s.Phases = []Phase{{Name: "steady", Mix: Mix{InsertPct: 10, RemovePct: 10}}}
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Duration <= 0 {
			p.Duration = 4_000_000 // 4 virtual ms
		}
		if p.Name == "" {
			p.Name = fmt.Sprintf("phase%d", i)
		}
		if err := p.Mix.validate(); err != nil {
			return fmt.Errorf("%s/%s: %w", s.Name, p.Name, err)
		}
		p.Dist.fill()
	}
	if s.Churn != nil {
		s.Churn.fill(s.TotalDuration())
		if s.Churn.Start(s.Churn.Generations-1)+s.Churn.Life > s.TotalDuration() {
			return fmt.Errorf("workload: %s: churn generation %d outlives the run",
				s.Name, s.Churn.Generations-1)
		}
	}
	if s.Nodes <= 0 {
		s.Nodes = 1
	}
	if s.Nodes > s.Cores {
		s.Nodes = s.Cores // the simulator clamps the same way
	}
	switch s.PinPolicy {
	case "", "none", "rr", "split":
	default:
		return fmt.Errorf("workload: %s: unknown pin policy %q", s.Name, s.PinPolicy)
	}
	switch s.ClaimPolicy {
	case "", "affinity", "rr":
	default:
		return fmt.Errorf("workload: %s: unknown claim policy %q", s.Name, s.ClaimPolicy)
	}
	if _, err := simmem.ParsePolicy(s.AllocPolicy); err != nil {
		return fmt.Errorf("workload: %s: %w", s.Name, err)
	}
	if len(s.WorkerMix) > 0 {
		if len(s.WorkerMix) > s.Threads {
			return fmt.Errorf("workload: %s: %d worker-mix groups for %d workers",
				s.Name, len(s.WorkerMix), s.Threads)
		}
		for g, m := range s.WorkerMix {
			if err := m.validate(); err != nil {
				return fmt.Errorf("%s/worker-mix[%d]: %w", s.Name, g, err)
			}
		}
	}
	switch s.StallKind {
	case "", "work", "preempt":
	default:
		return fmt.Errorf("workload: %s: unknown stall kind %q", s.Name, s.StallKind)
	}
	if s.StallCycles > 0 {
		if s.StallEvery <= 0 {
			s.StallEvery = 200
		}
		if s.StallVictims <= 0 {
			s.StallVictims = 1
		}
		if s.StallVictims > s.Threads {
			s.StallVictims = s.Threads
		}
		if s.StallKind == "" {
			s.StallKind = "work"
		}
	}
	if s.SampleEvery <= 0 {
		s.SampleEvery = s.TotalDuration() / 64
		if s.SampleEvery < 1 {
			s.SampleEvery = 1
		}
	}
	if s.MetricsEvery < 0 {
		s.MetricsEvery = s.SampleEvery
	}
	return nil
}

// WorkerNode returns the node worker i is pinned to under the pin
// policy, or -1 for no pin.  Valid after Fill.
func (s *Scenario) WorkerNode(i int) int {
	switch s.PinPolicy {
	case "rr":
		return i % s.Nodes
	case "split":
		return i * s.Nodes / s.Threads
	default:
		return -1
	}
}

// WorkerGroupMix returns the op-mix override for worker i, or nil when
// the phase mix applies.  Valid after Fill.
func (s *Scenario) WorkerGroupMix(i int) *Mix {
	if len(s.WorkerMix) == 0 || i >= s.Threads {
		return nil
	}
	return &s.WorkerMix[i*len(s.WorkerMix)/s.Threads]
}

// Scale multiplies every duration-like knob by f (phase durations,
// churn stagger/life, sampling interval, stall length), returning the
// scaled copy.
// Use it to stretch the quick-scale builtins toward paper-length runs.
func (s Scenario) Scale(f float64) Scenario {
	phases := make([]Phase, len(s.Phases))
	copy(phases, s.Phases)
	for i := range phases {
		phases[i].Duration = int64(float64(phases[i].Duration) * f)
	}
	s.Phases = phases
	if s.Churn != nil {
		c := *s.Churn
		c.Stagger = int64(float64(c.Stagger) * f)
		c.Life = int64(float64(c.Life) * f)
		s.Churn = &c
	}
	if s.SampleEvery > 0 {
		s.SampleEvery = int64(float64(s.SampleEvery) * f)
	}
	if s.MetricsEvery > 0 {
		s.MetricsEvery = int64(float64(s.MetricsEvery) * f)
	}
	if s.StallCycles > 0 {
		s.StallCycles = int64(float64(s.StallCycles) * f)
	}
	return s
}
