package workload

// Op-trace hashing: every worker folds each (op, key, result) it
// executes into an FNV-1a accumulator, and the engine folds the
// per-worker sums (in spawn order) into one run digest.  Two runs of
// the same scenario with the same seed must produce identical digests —
// the determinism contract the scenario tests assert — and any change
// to scheduling, distributions, or structure behavior shows up as a
// digest change long before it shows up as a statistics change.

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// Trace accumulates one worker's op stream.
type Trace struct {
	sum uint64
	n   uint64
}

// NewTrace returns an empty accumulator.
func NewTrace() Trace { return Trace{sum: fnvOffset} }

// Record folds one executed operation into the trace.
func (t *Trace) Record(op Op, key uint64, ok bool) {
	h := t.sum
	h = fnvWord(h, uint64(op))
	h = fnvWord(h, key)
	if ok {
		h = fnvWord(h, 1)
	} else {
		h = fnvWord(h, 2)
	}
	t.sum = h
	t.n++
}

// Ops returns the number of recorded operations.
func (t *Trace) Ops() uint64 { return t.n }

// Sum returns the digest so far.
func (t *Trace) Sum() uint64 { return t.sum }

// CombineTraces folds per-worker digests (in a fixed order) into one
// run digest.
func CombineTraces(sums []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, s := range sums {
		h = fnvWord(h, s)
	}
	return h
}

// fnvWord folds one 64-bit word into an FNV-1a state byte by byte.
func fnvWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xFF
		h *= fnvPrime
		w >>= 8
	}
	return h
}
