package workload

import (
	"fmt"
	"sort"
)

// Commutativity-aware op histories: the differential checker's lever
// for *concurrent* runs.
//
// The flat trace digest (trace.go) folds every worker's (op, key,
// result) stream in execution order, so two schemes agree only when
// their schedules interleave identically — which restricts exact
// cross-scheme comparison to serialized runs.  The keyed trace relaxes
// that: under an op budget (Scenario.OpsPerWorker) each worker's (op,
// key) stream is a function of the seed alone, so sorting the ops *per
// key* into the canonical (worker, per-worker index) order yields a
// history every scheme must reproduce bit-for-bit even when the
// schedules differ — only the success bits are schedule-dependent.
// Combining per-key hashes commutatively (addition) makes the digest
// independent of key-discovery order too.
//
// What the success bits lose in comparability they regain as a
// *semantic* invariant: for a set, any linearization of one key's
// history alternates successful inserts and removes, so the net
// successful count over initial presence p0 must land back in {0, 1}.
// A double-successful insert (or a remove that freed a node twice — the
// corruption reclamation bugs cause) breaks it immediately.

// keyedOp is one recorded operation on one key.
type keyedOp struct {
	worker int // worker index in spawn order
	idx    int // per-worker, per-key sequence number
	op     Op
	ok     bool
}

// KeyedTrace accumulates one worker's per-key op history.
type KeyedTrace struct {
	worker int
	ops    map[uint64][]keyedOp
}

// NewKeyedTrace returns an empty per-key accumulator for the given
// worker index (spawn order).
func NewKeyedTrace(worker int) *KeyedTrace {
	return &KeyedTrace{worker: worker, ops: make(map[uint64][]keyedOp)}
}

// Record folds one executed operation into the per-key history.
func (k *KeyedTrace) Record(op Op, key uint64, ok bool) {
	k.ops[key] = append(k.ops[key], keyedOp{
		worker: k.worker, idx: len(k.ops[key]), op: op, ok: ok})
}

// KeyedSummary is the merged, canonicalized view of every worker's
// per-key history.
type KeyedSummary struct {
	// Digest hashes each key's canonical (worker, index, op) history
	// and combines the per-key hashes commutatively.  Equal seeds and
	// op budgets must yield equal digests across schemes and schedules;
	// success bits are deliberately excluded.
	Digest uint64

	perKey map[uint64]*keyTally
}

// keyTally is the per-key semantic ledger.
type keyTally struct {
	succIns, succRem int
	attempts         int
}

// MergeKeyed canonicalizes and merges per-worker keyed traces, in
// worker spawn order.
func MergeKeyed(traces []*KeyedTrace) *KeyedSummary {
	s := &KeyedSummary{perKey: make(map[uint64]*keyTally)}
	hist := make(map[uint64][]keyedOp)
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		for key, ops := range tr.ops {
			hist[key] = append(hist[key], ops...)
			t := s.perKey[key]
			if t == nil {
				t = &keyTally{}
				s.perKey[key] = t
			}
			for _, o := range ops {
				t.attempts++
				if o.ok {
					switch o.op {
					case OpInsert:
						t.succIns++
					case OpRemove:
						t.succRem++
					}
				}
			}
		}
	}
	for key, ops := range hist {
		// Canonical order: worker, then per-worker sequence.  The merge
		// appended workers in spawn order and Record assigned idx in
		// execution order, so the concatenation is already sorted; the
		// sort is kept as the normative definition (and guards future
		// merge-order changes).
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].worker != ops[j].worker {
				return ops[i].worker < ops[j].worker
			}
			return ops[i].idx < ops[j].idx
		})
		h := uint64(fnvOffset)
		h = fnvWord(h, key)
		for _, o := range ops {
			h = fnvWord(h, uint64(o.worker)<<32|uint64(o.idx))
			h = fnvWord(h, uint64(o.op))
		}
		s.Digest += h // commutative across keys
	}
	return s
}

// Keys returns the number of distinct keys touched.
func (s *KeyedSummary) Keys() int { return len(s.perKey) }

// NetInserts returns the total successful inserts minus successful
// removes across all keys — for a set, exactly the final size minus the
// initial size.
func (s *KeyedSummary) NetInserts() int {
	n := 0
	for _, t := range s.perKey {
		n += t.succIns - t.succRem
	}
	return n
}

// CheckSetSemantics verifies the per-key alternation invariant of a
// linearizable set: with initial presence p0(key), the net successful
// inserts over removes must land back in {0, 1} — succIns - succRem +
// p0 is the key's final presence, and presence is a bit.  It returns a
// description of the first few violating keys, or "" when every key is
// consistent.  Only meaningful for set-semantics structures (list,
// hash, skiplist); stacks and queues track their removes by *value*
// instead (ValueLedger below), since which element a pop observes is
// schedule-dependent.
func (s *KeyedSummary) CheckSetSemantics(present func(key uint64) bool) string {
	type bad struct {
		key      uint64
		p0, net  int
		attempts int
	}
	var bads []bad
	keys := make([]uint64, 0, len(s.perKey))
	for key := range s.perKey {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		t := s.perKey[key]
		p0 := 0
		if present(key) {
			p0 = 1
		}
		if pf := p0 + t.succIns - t.succRem; pf < 0 || pf > 1 {
			bads = append(bads, bad{key: key, p0: p0, net: t.succIns - t.succRem, attempts: t.attempts})
			if len(bads) >= 4 {
				break
			}
		}
	}
	if len(bads) == 0 {
		return ""
	}
	msg := fmt.Sprintf("%d key(s) violate set alternation:", len(bads))
	for _, b := range bads {
		msg += fmt.Sprintf(" key %d (p0=%d net=%+d over %d ops)", b.key, b.p0, b.net, b.attempts)
	}
	return msg
}

// Value-tracked remove histories: the LIFO/FIFO analog of the set
// ledger above.  A stack or queue does not key its removes — which
// element a pop observes depends on the schedule, so pop values can
// never join the cross-scheme digest.  What *is* schedule-independent
// is conservation: an element can only come out of the structure as
// many times as it went in.  ValueLedger counts pushes and observed pop
// values per element; a reclamation bug that frees a node twice (or
// resurrects a freed node into the structure) surfaces as some value
// popping more often than initial presence plus pushes allow.

// ValueLedger accumulates one worker's per-element push/pop counts on a
// LIFO/FIFO target.
type ValueLedger struct {
	pushes map[uint64]int
	pops   map[uint64]int
}

// NewValueLedger returns an empty per-element ledger.
func NewValueLedger() *ValueLedger {
	return &ValueLedger{pushes: make(map[uint64]int), pops: make(map[uint64]int)}
}

// Push records one element pushed with value v.
func (l *ValueLedger) Push(v uint64) { l.pushes[v]++ }

// Pop records one successful pop that observed value v.
func (l *ValueLedger) Pop(v uint64) { l.pops[v]++ }

// MergeValueLedgers folds per-worker ledgers into one machine-wide
// ledger (conservation is a global property — one worker's pop may
// observe another worker's push).
func MergeValueLedgers(ledgers []*ValueLedger) *ValueLedger {
	m := NewValueLedger()
	for _, l := range ledgers {
		if l == nil {
			continue
		}
		for v, n := range l.pushes {
			m.pushes[v] += n
		}
		for v, n := range l.pops {
			m.pops[v] += n
		}
	}
	return m
}

// CheckConservation verifies pops(v) <= initial(v) + pushes(v) for
// every observed pop value, where initial reports how many elements of
// value v the structure held before the measured window.  It returns a
// description of the first few violating values, or "" when every
// element is conserved.
func (l *ValueLedger) CheckConservation(initial func(v uint64) int) string {
	vals := make([]uint64, 0, len(l.pops))
	for v := range l.pops {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var bads []string
	for _, v := range vals {
		if cap := initial(v) + l.pushes[v]; l.pops[v] > cap {
			bads = append(bads, fmt.Sprintf("value %d popped %d times, only %d ever present", v, l.pops[v], cap))
			if len(bads) >= 4 {
				break
			}
		}
	}
	if len(bads) == 0 {
		return ""
	}
	return fmt.Sprintf("%d value(s) violate element conservation: %s", len(bads), bads[0])
}
