package ds

import (
	"testing"
	"testing/quick"

	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// TestQuickModelEquivalence property-checks each structure against a
// model map over random operation sequences (sequential, ThreadScan
// reclamation): every Insert/Remove/Contains result must match the
// model, and the final key set must be identical.
func TestQuickModelEquivalence(t *testing.T) {
	for _, kind := range allSets {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			f := func(seed int64, opsRaw []byte) bool {
				s := testSim(1, seed)
				sc := makeScheme("threadscan", s)
				set := makeSet(kind, s, sc)
				model := map[uint64]bool{}
				ok := true
				s.Spawn("driver", func(th *simt.Thread) {
					for _, b := range opsRaw {
						key := uint64(b%31) + 1
						switch (b >> 5) % 3 {
						case 0:
							if set.Insert(th, key) == model[key] {
								ok = false
							}
							model[key] = true
						case 1:
							if set.Remove(th, key) != model[key] {
								ok = false
							}
							delete(model, key)
						default:
							if set.Contains(th, key) != model[key] {
								ok = false
							}
						}
					}
					sc.Flush(th)
				})
				if err := s.Run(); err != nil {
					t.Log(err)
					return false
				}
				if !ok {
					return false
				}
				keys := setKeys(set)
				if len(keys) != len(model) {
					return false
				}
				for _, k := range keys {
					if !model[k] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickConcurrentAccounting property-checks the op-accounting
// invariant under concurrency for random seeds: prefill + successful
// inserts - successful removes == final size, with no duplicates.
func TestQuickConcurrentAccounting(t *testing.T) {
	f := func(seedRaw uint8, kindRaw uint8, schemeRaw uint8) bool {
		kind := allSets[int(kindRaw)%len(allSets)]
		scheme := allSchemes[int(schemeRaw)%len(allSchemes)]
		s := testSim(3, int64(seedRaw)+100)
		sc := makeScheme(scheme, s)
		set := makeSet(kind, s, sc)
		const nThreads = 3
		ins := make([]int, nThreads)
		rem := make([]int, nThreads)
		for i := 0; i < nThreads; i++ {
			i := i
			s.Spawn("w", func(th *simt.Thread) {
				rng := th.RNG()
				for j := 0; j < 80; j++ {
					key := uint64(rng.Intn(24)) + 1
					switch rng.Intn(3) {
					case 0:
						if set.Insert(th, key) {
							ins[i]++
						}
					case 1:
						if set.Remove(th, key) {
							rem[i]++
						}
					default:
						set.Contains(th, key)
					}
				}
				for r := 0; r < simt.NumRegs; r++ {
					th.SetReg(r, 0)
				}
				sc.Flush(th)
			})
		}
		if err := s.Run(); err != nil {
			t.Logf("%s/%s: %v", kind, scheme, err)
			return false
		}
		totalIns, totalRem := 0, 0
		for i := range ins {
			totalIns += ins[i]
			totalRem += rem[i]
		}
		if setLen(set) != totalIns-totalRem {
			t.Logf("%s/%s: size %d vs %d-%d", kind, scheme, setLen(set), totalIns, totalRem)
			return false
		}
		seen := map[uint64]bool{}
		for _, k := range setKeys(set) {
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListKeyBoundsEnforced: keys colliding with sentinels panic.
func TestSkipListKeyBoundsEnforced(t *testing.T) {
	s := testSim(1, 3)
	sc := reclaim.NewLeaky(s)
	sl := NewSkipList(s, sc)
	s.Spawn("driver", func(th *simt.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("key 0 accepted")
			}
		}()
		sl.Insert(th, 0)
	})
	_ = s.Run()
}

// TestSkipListConcurrentSameKey: two threads fight over one key; the
// lazy algorithm must serialize them without losing or duplicating it.
func TestSkipListConcurrentSameKey(t *testing.T) {
	s := testSim(2, 5)
	sc := makeScheme("threadscan", s)
	sl := NewSkipList(s, sc)
	var ins, rem int
	for i := 0; i < 2; i++ {
		s.Spawn("fighter", func(th *simt.Thread) {
			for j := 0; j < 200; j++ {
				if sl.Insert(th, 7) {
					ins++
				}
				if sl.Remove(th, 7) {
					rem++
				}
			}
			for r := 0; r < simt.NumRegs; r++ {
				th.SetReg(r, 0)
			}
			sc.Flush(th)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ins-rem != sl.Len() {
		t.Fatalf("ins %d rem %d len %d", ins, rem, sl.Len())
	}
	if sl.Len() != 0 && sl.Len() != 1 {
		t.Fatalf("impossible final len %d", sl.Len())
	}
}

// TestListNodePadding: the paper pads list nodes to 172 bytes; the
// allocator must reserve at least that much per node.
func TestListNodePadding(t *testing.T) {
	s := testSim(1, 7)
	sc := reclaim.NewLeaky(s)
	l := NewList(s, sc, 0) // default = paper's 172
	s.Spawn("driver", func(th *simt.Thread) {
		before := s.Heap().Stats().LiveBytes
		l.Insert(th, 42)
		delta := s.Heap().Stats().LiveBytes - before
		if delta < 172 {
			t.Errorf("node reserved only %d bytes", delta)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestHashBucketIsolation: operations on keys of one bucket never
// disturb another bucket's chain.
func TestHashBucketIsolation(t *testing.T) {
	s := testSim(1, 9)
	sc := reclaim.NewLeaky(s)
	h := NewHashTable(s, sc, 4, 0)
	s.Spawn("driver", func(th *simt.Thread) {
		for k := uint64(1); k <= 200; k++ {
			h.Insert(th, k)
		}
		// Remove everything in one bucket's key set.
		removed := 0
		for k := uint64(1); k <= 200; k++ {
			if (k*0x9E3779B97F4A7C15)>>32&3 == 0 {
				if h.Remove(th, k) {
					removed++
				}
			}
		}
		if h.Len() != 200-removed {
			t.Errorf("len %d after removing %d", h.Len(), removed)
		}
		// Every remaining key is still found.
		for k := uint64(1); k <= 200; k++ {
			want := (k*0x9E3779B97F4A7C15)>>32&3 != 0
			if h.Contains(th, k) != want {
				t.Errorf("key %d presence wrong", k)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
