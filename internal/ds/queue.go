package ds

import (
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// Queue is the Michael–Scott lock-free FIFO queue (PODC '96), added
// beyond the paper's three sorted-set benchmarks to exercise a FIFO
// retirement pattern: every Dequeue retires the *dummy* node whose next
// field concurrent dequeuers are dereferencing at that very moment, so
// nodes age through the structure in allocation order and retirement
// pressure concentrates at the head — the opposite shape of the
// stack's LIFO churn and of the sets' scattered unlinks.
//
// Scheme cooperation follows Michael's own hazard-pointer formulation:
// BeginOp/EndOp brackets, Protect on the head (and its successor)
// before dereferencing with re-validation under the hazard discipline,
// and Retire of the outgoing dummy on a successful Dequeue.
//
// Header layout (word offsets):   Node layout (word offsets):
//
//	0: head                          0: next
//	1: tail                          1: value
//	                                 2+: padding to nodeBytes
const (
	qHead  = 0
	qTail  = 1
	qnNext = 0
	qnVal  = 1
)

// DefaultQueueNodeBytes pads queue nodes to a cache line.
const DefaultQueueNodeBytes = 64

// qMinNodeBytes covers the two mandatory fields.
const qMinNodeBytes = 16

// Queue is the Michael–Scott queue.
type Queue struct {
	sim       *simt.Sim
	scheme    reclaim.Scheme
	nodeBytes int
	base      uint64 // address of the {head, tail} header words
}

// NewQueue creates an empty queue (one dummy node) bound to sim and
// scheme.  nodeBytes of 0 selects the default 64-byte padding.  Must be
// called from outside the simulation (setup time) before Run.
func NewQueue(sim *simt.Sim, scheme reclaim.Scheme, nodeBytes int) *Queue {
	if nodeBytes <= 0 {
		nodeBytes = DefaultQueueNodeBytes
	}
	if nodeBytes < qMinNodeBytes {
		nodeBytes = qMinNodeBytes
	}
	q := &Queue{sim: sim, scheme: scheme, nodeBytes: nodeBytes}
	h := sim.Heap()
	q.base = h.Alloc(16)
	dummy := h.Alloc(nodeBytes)
	h.Store(dummy+qnNext*8, 0)
	h.Store(dummy+qnVal*8, 0)
	h.Store(q.base+qHead*8, dummy)
	h.Store(q.base+qTail*8, dummy)
	return q
}

// Name identifies the structure in reports.
func (q *Queue) Name() string { return "queue" }

// NodeBytes returns the node allocation size.
func (q *Queue) NodeBytes() int { return q.nodeBytes }

// loadConsistent re-reads header word off into rVal and reports whether
// it still equals rCurr — the MS consistency check, and the hazard
// re-validation after publishing.
func (q *Queue) loadConsistent(th *simt.Thread, off int) bool {
	th.Load(rVal, rHead, off)
	return th.Reg(rVal) == th.Reg(rCurr)
}

// Enqueue appends val at the tail.
func (q *Queue) Enqueue(th *simt.Thread, val uint64) {
	q.scheme.BeginOp(th)
	disc := disciplined(q.scheme)
	th.Alloc(rNode, q.nodeBytes)
	stamp(th, q.scheme, rNode)
	th.StoreImm(rNode, qnNext, 0)
	th.StoreImm(rNode, qnVal, val)
	for {
		th.SetReg(rHead, q.base)
		th.Load(rCurr, rHead, qTail) // tail snapshot
		if disc && q.scheme.Protect(th, hpA, rCurr) && !q.loadConsistent(th, qTail) {
			continue // tail moved between read and publication
		}
		th.Load(rNext, rCurr, qnNext)
		if !q.loadConsistent(th, qTail) {
			continue // tail moved under us; next belongs to a stale tail
		}
		if th.Reg(rNext) != 0 {
			// Tail is lagging: help swing it, then retry.
			th.CAS(rHead, qTail, rCurr, rNext)
			continue
		}
		if th.CASImm(rCurr, qnNext, 0, th.Reg(rNode)) {
			// Linked; swing the tail (failure means someone helped).
			th.CAS(rHead, qTail, rCurr, rNode)
			q.scheme.EndOp(th)
			return
		}
	}
}

// Dequeue removes and returns the oldest value, reporting false when
// empty.  The node retired is the outgoing dummy (the previous head);
// the dequeued value's node becomes the new dummy.
func (q *Queue) Dequeue(th *simt.Thread) (uint64, bool) {
	q.scheme.BeginOp(th)
	disc := disciplined(q.scheme)
	for {
		th.SetReg(rHead, q.base)
		th.Load(rCurr, rHead, qHead) // head (dummy) snapshot
		if disc && q.scheme.Protect(th, hpA, rCurr) && !q.loadConsistent(th, qHead) {
			continue
		}
		th.Load(rTmp, rHead, qTail) // tail snapshot
		th.Load(rNext, rCurr, qnNext)
		if disc && q.scheme.Protect(th, hpB, rNext) && !q.loadConsistent(th, qHead) {
			continue // head moved; next may belong to a retired dummy
		}
		if !q.loadConsistent(th, qHead) {
			continue
		}
		if th.Reg(rCurr) == th.Reg(rTmp) { // head == tail
			if th.Reg(rNext) == 0 {
				q.scheme.EndOp(th)
				return 0, false // empty
			}
			// Tail is lagging behind a linked node: help swing it.
			th.CAS(rHead, qTail, rTmp, rNext)
			continue
		}
		// Read the value before unlinking: after our CAS another
		// dequeuer may retire (and a scheme reclaim) the new dummy.
		th.Load(rTmp2, rNext, qnVal)
		val := th.Reg(rTmp2)
		if th.CAS(rHead, qHead, rCurr, rNext) {
			q.scheme.Retire(th, th.Reg(rCurr))
			q.scheme.EndOp(th)
			return val, true
		}
	}
}

// Peek returns the oldest value without removing it, reporting false
// when empty — the queue's read-only traversal.
func (q *Queue) Peek(th *simt.Thread) (uint64, bool) {
	q.scheme.BeginOp(th)
	disc := disciplined(q.scheme)
	for {
		th.SetReg(rHead, q.base)
		th.Load(rCurr, rHead, qHead)
		if disc && q.scheme.Protect(th, hpA, rCurr) && !q.loadConsistent(th, qHead) {
			continue
		}
		th.Load(rNext, rCurr, qnNext)
		if disc && q.scheme.Protect(th, hpB, rNext) && !q.loadConsistent(th, qHead) {
			continue
		}
		if !q.loadConsistent(th, qHead) {
			continue
		}
		if th.Reg(rNext) == 0 {
			q.scheme.EndOp(th)
			return 0, false
		}
		th.Load(rTmp2, rNext, qnVal)
		val := th.Reg(rTmp2)
		q.scheme.EndOp(th)
		return val, true
	}
}

// Len counts queued values outside the simulation (test/diagnostic use
// only; quiescent sim).
func (q *Queue) Len() int {
	n := 0
	h := q.sim.Heap()
	dummy := h.Load(q.base + qHead*8)
	for p := h.Load(dummy + qnNext*8); p != 0; p = h.Load(p + qnNext*8) {
		n++
	}
	return n
}

// Values returns queued values head-to-tail (test use only).
func (q *Queue) Values() []uint64 {
	var out []uint64
	h := q.sim.Heap()
	dummy := h.Load(q.base + qHead*8)
	for p := h.Load(dummy + qnNext*8); p != 0; p = h.Load(p + qnNext*8) {
		out = append(out, h.Load(p+qnVal*8))
	}
	return out
}
