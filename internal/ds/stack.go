package ds

import (
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// Stack is a Treiber lock-free stack (Treiber '86), added beyond the
// paper's three sorted-set benchmarks to exercise a LIFO retirement
// pattern: the node retired by a Pop is the node *every* concurrent Pop
// is about to dereference, so the window between unlink and retire is
// maximally contended — a shape none of the set structures produce.
//
// Reclamation is woven in through the same three touch points as the
// sets: BeginOp/EndOp brackets, Protect on the about-to-be-dereferenced
// top (hazard/publish disciplines), and Retire on a successful Pop.
// Under safe schemes the classic Treiber ABA hazard cannot occur: the
// popped node cannot return to the allocator (and hence cannot be
// reallocated and re-pushed) while any thread still holds it in a
// register, hazard slot, or epoch-protected operation.
//
// Node layout (word offsets):
//
//	0: next
//	1: value
//	2+: padding to nodeBytes
const (
	stkNext = 0
	stkVal  = 1
)

// DefaultStackNodeBytes pads stack nodes to a cache line, the analog of
// the sets' false-sharing padding at LIFO node sizes.
const DefaultStackNodeBytes = 64

// stkMinNodeBytes covers the two mandatory fields.
const stkMinNodeBytes = 16

// Stack is the Treiber stack.
type Stack struct {
	sim       *simt.Sim
	scheme    reclaim.Scheme
	nodeBytes int
	topLink   uint64 // address of the top pointer word
}

// NewStack creates an empty stack bound to sim and scheme.  nodeBytes
// of 0 selects the default 64-byte padding.  Must be called from
// outside the simulation (setup time) before Run.
func NewStack(sim *simt.Sim, scheme reclaim.Scheme, nodeBytes int) *Stack {
	if nodeBytes <= 0 {
		nodeBytes = DefaultStackNodeBytes
	}
	if nodeBytes < stkMinNodeBytes {
		nodeBytes = stkMinNodeBytes
	}
	s := &Stack{sim: sim, scheme: scheme, nodeBytes: nodeBytes}
	s.topLink = sim.Heap().Alloc(8)
	sim.Heap().Store(s.topLink, 0)
	return s
}

// Name identifies the structure in reports.
func (s *Stack) Name() string { return "stack" }

// NodeBytes returns the node allocation size.
func (s *Stack) NodeBytes() int { return s.nodeBytes }

// Push adds val to the top of the stack.
func (s *Stack) Push(th *simt.Thread, val uint64) {
	s.scheme.BeginOp(th)
	th.Alloc(rNode, s.nodeBytes)
	stamp(th, s.scheme, rNode)
	th.StoreImm(rNode, stkVal, val)
	for {
		th.SetReg(rPrev, s.topLink)
		th.Load(rCurr, rPrev, 0)        // old top (no dereference needed)
		th.Store(rNode, stkNext, rCurr) // node.next = top
		if th.CAS(rPrev, 0, rCurr, rNode) {
			break
		}
	}
	s.scheme.EndOp(th)
}

// Pop removes and returns the top value, reporting false when empty.
func (s *Stack) Pop(th *simt.Thread) (uint64, bool) {
	s.scheme.BeginOp(th)
	disc := disciplined(s.scheme)
	for {
		th.SetReg(rPrev, s.topLink)
		th.Load(rCurr, rPrev, 0)
		if th.Reg(rCurr) == 0 {
			s.scheme.EndOp(th)
			return 0, false
		}
		if disc && s.scheme.Protect(th, hpA, rCurr) && !validate(th) {
			continue // top moved between read and publication
		}
		th.Load(rNext, rCurr, stkNext)
		if !th.CAS(rPrev, 0, rCurr, rNext) {
			continue
		}
		// Won the pop: read the value while the node is still pinned by
		// our register (and hazard slot), then hand it to reclamation.
		th.Load(rVal, rCurr, stkVal)
		val := th.Reg(rVal)
		s.scheme.Retire(th, th.Reg(rCurr))
		s.scheme.EndOp(th)
		return val, true
	}
}

// Peek returns the top value without removing it, reporting false when
// empty — the stack's unsynchronized read-only traversal.
func (s *Stack) Peek(th *simt.Thread) (uint64, bool) {
	s.scheme.BeginOp(th)
	disc := disciplined(s.scheme)
	for {
		th.SetReg(rPrev, s.topLink)
		th.Load(rCurr, rPrev, 0)
		if th.Reg(rCurr) == 0 {
			s.scheme.EndOp(th)
			return 0, false
		}
		if disc && s.scheme.Protect(th, hpA, rCurr) && !validate(th) {
			continue
		}
		th.Load(rVal, rCurr, stkVal)
		val := th.Reg(rVal)
		s.scheme.EndOp(th)
		return val, true
	}
}

// Len walks the stack outside the simulation (test/diagnostic use only;
// quiescent sim).
func (s *Stack) Len() int {
	n := 0
	h := s.sim.Heap()
	for p := h.Load(s.topLink); p != 0; p = h.Load(p + stkNext*8) {
		n++
	}
	return n
}

// Values returns top-to-bottom values (test use only; quiescent sim).
func (s *Stack) Values() []uint64 {
	var out []uint64
	h := s.sim.Heap()
	for p := h.Load(s.topLink); p != 0; p = h.Load(p + stkNext*8) {
		out = append(out, h.Load(p+stkVal*8))
	}
	return out
}
