package ds

import (
	"testing"

	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// The stack and queue must behave as linearizable LIFO/FIFO containers
// under every reclamation scheme, on the checked heap (any unsound free
// panics the run), including when threads exit mid-run.

func TestStackSequentialSemantics(t *testing.T) {
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			s := testSim(1, 21)
			sc := makeScheme(scheme, s)
			st := NewStack(s, sc, 0)
			var model []uint64
			s.Spawn("driver", func(th *simt.Thread) {
				rng := th.RNG()
				for i := 0; i < 500; i++ {
					switch rng.Intn(3) {
					case 0, 1:
						v := uint64(i + 1)
						st.Push(th, v)
						model = append(model, v)
					default:
						v, ok := st.Pop(th)
						if len(model) == 0 {
							if ok {
								t.Errorf("Pop on empty returned %d", v)
							}
							continue
						}
						want := model[len(model)-1]
						model = model[:len(model)-1]
						if !ok || v != want {
							t.Errorf("Pop = %d,%v want %d,true", v, ok, want)
						}
					}
					if v, ok := st.Peek(th); ok != (len(model) > 0) ||
						(ok && v != model[len(model)-1]) {
						t.Errorf("Peek = %d,%v model top %v", v, ok, model)
					}
				}
				for r := 0; r < simt.NumRegs; r++ {
					th.SetReg(r, 0)
				}
				sc.Flush(th)
			})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if got := st.Len(); got != len(model) {
				t.Fatalf("final len %d, model %d", got, len(model))
			}
			vals := st.Values()
			for i, v := range vals { // Values is top-to-bottom
				if want := model[len(model)-1-i]; v != want {
					t.Fatalf("value[%d] = %d, want %d", i, v, want)
				}
			}
		})
	}
}

func TestQueueSequentialSemantics(t *testing.T) {
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			s := testSim(1, 22)
			sc := makeScheme(scheme, s)
			q := NewQueue(s, sc, 0)
			var model []uint64
			s.Spawn("driver", func(th *simt.Thread) {
				rng := th.RNG()
				for i := 0; i < 500; i++ {
					switch rng.Intn(3) {
					case 0, 1:
						v := uint64(i + 1)
						q.Enqueue(th, v)
						model = append(model, v)
					default:
						v, ok := q.Dequeue(th)
						if len(model) == 0 {
							if ok {
								t.Errorf("Dequeue on empty returned %d", v)
							}
							continue
						}
						want := model[0]
						model = model[1:]
						if !ok || v != want {
							t.Errorf("Dequeue = %d,%v want %d,true", v, ok, want)
						}
					}
					if v, ok := q.Peek(th); ok != (len(model) > 0) ||
						(ok && v != model[0]) {
						t.Errorf("Peek = %d,%v model front %v", v, ok, model)
					}
				}
				for r := 0; r < simt.NumRegs; r++ {
					th.SetReg(r, 0)
				}
				sc.Flush(th)
			})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if got := q.Len(); got != len(model) {
				t.Fatalf("final len %d, model %d", got, len(model))
			}
			vals := q.Values()
			for i, v := range vals { // Values is head-to-tail (FIFO order)
				if v != model[i] {
					t.Fatalf("value[%d] = %d, want %d", i, v, model[i])
				}
			}
		})
	}
}

// TestStackQueueConcurrentConservation tags every pushed value with its
// producer and sequence number, then checks element conservation: every
// value that went in came out exactly once (popped or still present),
// under every scheme, with full reclamation afterwards.
func TestStackQueueConcurrentConservation(t *testing.T) {
	for _, kind := range []string{"stack", "queue"} {
		for _, scheme := range allSchemes {
			kind, scheme := kind, scheme
			t.Run(kind+"/"+scheme, func(t *testing.T) {
				s := testSim(3, 99)
				sc := makeScheme(scheme, s)
				var push func(*simt.Thread, uint64)
				var pop func(*simt.Thread) (uint64, bool)
				var final func() []uint64
				if kind == "stack" {
					st := NewStack(s, sc, 0)
					push, pop, final = st.Push, st.Pop, st.Values
				} else {
					q := NewQueue(s, sc, 0)
					push, pop, final = q.Enqueue, q.Dequeue, q.Values
				}
				const nThreads, opsEach = 4, 300
				popped := make([][]uint64, nThreads)
				pushed := make([]int, nThreads)
				barrier := s.NewBarrier("start", nThreads)
				for i := 0; i < nThreads; i++ {
					i := i
					s.Spawn("worker", func(th *simt.Thread) {
						barrier.Await(th)
						rng := th.RNG()
						for j := 0; j < opsEach; j++ {
							if rng.Intn(2) == 0 {
								push(th, uint64(i)<<32|uint64(pushed[i]+1))
								pushed[i]++
							} else if v, ok := pop(th); ok {
								popped[i] = append(popped[i], v)
							}
						}
						barrier.Await(th)
						for r := 0; r < simt.NumRegs; r++ {
							th.SetReg(r, 0)
						}
						barrier.Await(th)
						sc.Flush(th)
					})
				}
				if err := s.Run(); err != nil {
					t.Fatalf("%s/%s: %v", kind, scheme, err)
				}
				seen := map[uint64]bool{}
				out := 0
				for i := range popped {
					for _, v := range popped[i] {
						if seen[v] {
							t.Fatalf("value %x popped twice", v)
						}
						seen[v] = true
						out++
					}
				}
				remaining := final()
				for _, v := range remaining {
					if seen[v] {
						t.Fatalf("value %x both popped and still present", v)
					}
					seen[v] = true
				}
				totalIn := 0
				for i := range pushed {
					totalIn += pushed[i]
				}
				if totalIn != out+len(remaining) {
					t.Fatalf("conservation: pushed %d, popped %d + remaining %d",
						totalIn, out, len(remaining))
				}
				for v := range seen {
					producer := int(v >> 32)
					seq := int(v & 0xFFFFFFFF)
					if producer >= nThreads || seq < 1 || seq > pushed[producer] {
						t.Fatalf("phantom value %x", v)
					}
				}
				st := sc.Stats()
				if scheme != "leaky" && st.Retired != st.Freed {
					t.Fatalf("%s/%s: retired %d != freed %d (pending %d)",
						kind, scheme, st.Retired, st.Freed, st.Pending)
				}
			})
		}
	}
}

// TestQueueFIFOOrderPerProducer: a FIFO queue must deliver each
// producer's values in production order to any single consumer stream.
func TestQueueFIFOOrderPerProducer(t *testing.T) {
	s := testSim(2, 5)
	sc := makeScheme("threadscan", s)
	q := NewQueue(s, sc, 0)
	const nProducers, perProducer = 3, 200
	var consumed []uint64
	done := 0
	s.Spawn("consumer", func(th *simt.Thread) {
		for len(consumed) < nProducers*perProducer {
			if v, ok := q.Dequeue(th); ok {
				consumed = append(consumed, v)
			} else if done == nProducers && q.Len() == 0 {
				break
			} else {
				th.Pause()
			}
		}
		for r := 0; r < simt.NumRegs; r++ {
			th.SetReg(r, 0)
		}
		sc.Flush(th)
	})
	for p := 0; p < nProducers; p++ {
		p := p
		s.Spawn("producer", func(th *simt.Thread) {
			for j := 1; j <= perProducer; j++ {
				q.Enqueue(th, uint64(p)<<32|uint64(j))
			}
			done++
			for r := 0; r < simt.NumRegs; r++ {
				th.SetReg(r, 0)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(consumed) != nProducers*perProducer {
		t.Fatalf("consumed %d of %d", len(consumed), nProducers*perProducer)
	}
	lastSeq := map[int]int{}
	for _, v := range consumed {
		p, seq := int(v>>32), int(v&0xFFFFFFFF)
		if seq != lastSeq[p]+1 {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, lastSeq[p])
		}
		lastSeq[p] = seq
	}
}

// TestStackQueueChurnThreadScan hammers the new structures while
// workers exit mid-run and fresh threads spawn mid-run (SpawnFrom) —
// the registration/deregistration and signal-delivery stress the static
// thread sets of the set benchmarks never produce.
func TestStackQueueChurnThreadScan(t *testing.T) {
	for _, kind := range []string{"stack", "queue"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			s := testSim(2, 31)
			sc := makeScheme("threadscan", s)
			ts := sc.(*reclaim.ThreadScan)
			var push func(*simt.Thread, uint64)
			var pop func(*simt.Thread) (uint64, bool)
			if kind == "stack" {
				st := NewStack(s, sc, 0)
				push, pop = st.Push, st.Pop
			} else {
				q := NewQueue(s, sc, 0)
				push, pop = q.Enqueue, q.Dequeue
			}
			work := func(th *simt.Thread, ops int) {
				rng := th.RNG()
				for j := 0; j < ops; j++ {
					if rng.Intn(2) == 0 {
						push(th, uint64(j+1))
					} else {
						pop(th)
					}
				}
				for r := 0; r < simt.NumRegs; r++ {
					th.SetReg(r, 0)
				}
			}
			spawned := 0
			s.Spawn("root", func(th *simt.Thread) {
				// Three generations: each spawns successors mid-run,
				// works, and exits before they finish.
				var gen func(depth int) func(*simt.Thread)
				gen = func(depth int) func(*simt.Thread) {
					return func(w *simt.Thread) {
						spawned++
						if depth < 3 {
							for k := 0; k < 2; k++ {
								s.SpawnFrom(w, "churn", gen(depth+1))
							}
						}
						work(w, 150)
					}
				}
				gen(0)(th)
				work(th, 100)
			})
			s.Spawn("closer", func(th *simt.Thread) {
				// Outlives the churn (sleeps past it), then flushes.
				for s.Clock() < 1 || ts.Core().RegisteredThreads() > 1 {
					th.Sleep(50_000)
				}
				sc.Flush(th)
			})
			if err := s.Run(); err != nil {
				t.Fatalf("%s churn: %v", kind, err)
			}
			if spawned != 15 { // 1+2+4+8
				t.Fatalf("spawned %d churn workers, want 15", spawned)
			}
			if got := ts.Core().RegisteredThreads(); got != 0 {
				t.Fatalf("leaked registrations: %d", got)
			}
			st := sc.Stats()
			if st.Retired != st.Freed {
				t.Fatalf("retired %d != freed %d after churn flush", st.Retired, st.Freed)
			}
		})
	}
}
