package ds

import (
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// SkipList is the paper's lock-based data structure (§6): the lazy
// skip list of Herlihy–Shavit [23, 25].  Traversals (including the
// find phase of updates) are wait-free unsynchronized reads; updates
// lock the affected predecessor nodes, validate, and splice.  Removal
// is lazy: mark, then unlink top-down, then retire.
//
// Nodes are fixed size regardless of height, as in the paper ("104 byte
// nodes (representing the maximum size due to height)"); with
// MaxLevel = 10 the node is 15 words = 120 bytes, the closest word
// multiple to the paper's layout.
//
// Node layout (word offsets):
//
//	0: key
//	1: topLevel (highest valid next index)
//	2: marked flag
//	3: fullyLinked flag
//	4: lock word (0 free / 1 held)
//	5..5+MaxLevel-1: next pointers per level
//
// Lock ordering: victim first, then predecessors from level 0 upward.
// Every predecessor key is smaller than the victim key and level-0
// predecessors have the largest keys, so all threads acquire locks in
// globally descending key order — no deadlock.
//
// Hazard discipline: the skip list needs many more hazard slots than
// the list — per-level slots for the preds/succs arrays plus two
// alternating traversal slots ("Actual hazard pointers were already
// provided in the skip list implementation", §6).  SkipListHazardSlots
// is the slot count a Hazard domain must be configured with.

// MaxLevel is the number of skip-list levels.
const MaxLevel = 10

const (
	slKey         = 0
	slTop         = 1
	slMarked      = 2
	slFullyLinked = 3
	slLock        = 4
	slNext        = 5 // next[level] = slNext + level
)

const slNodeBytes = (slNext + MaxLevel) * 8

// Frame slot layout for find(): preds then succs.
const (
	fpPreds = 0
	fpSuccs = MaxLevel
	fpSize  = 2 * MaxLevel
)

// Hazard slot layout: preds per level, succs per level, two traversal
// slots.  (The shared list code uses slots 0 and 1, which alias the
// level-0/1 pred slots — never concurrently within one thread, since a
// thread runs one operation at a time.)
const (
	hzPreds = 0
	hzSuccs = MaxLevel
	hzTravA = 2 * MaxLevel
	hzTravB = 2*MaxLevel + 1
)

// SkipListHazardSlots is the per-thread hazard-slot count the skip list
// requires.
const SkipListHazardSlots = 2*MaxLevel + 2

// SkipList implements Set with fine-grained per-node locks.
type SkipList struct {
	sim    *simt.Sim
	scheme reclaim.Scheme
	head   uint64 // full-height sentinel, key < MinKey
	tail   uint64 // full-height sentinel, key > MaxKey
}

// NewSkipList creates an empty skip list bound to sim and scheme.
func NewSkipList(sim *simt.Sim, scheme reclaim.Scheme) *SkipList {
	sl := &SkipList{sim: sim, scheme: scheme}
	h := sim.Heap()
	sl.head = h.Alloc(slNodeBytes)
	sl.tail = h.Alloc(slNodeBytes)
	for _, n := range []uint64{sl.head, sl.tail} {
		h.Store(n+slTop*8, MaxLevel-1)
		h.Store(n+slMarked*8, 0)
		h.Store(n+slFullyLinked*8, 1)
		h.Store(n+slLock*8, 0)
	}
	h.Store(sl.head+slKey*8, 0)          // -infinity
	h.Store(sl.tail+slKey*8, ^uint64(0)) // +infinity
	for lv := 0; lv < MaxLevel; lv++ {
		h.Store(sl.head+uint64(slNext+lv)*8, sl.tail)
		h.Store(sl.tail+uint64(slNext+lv)*8, 0)
	}
	return sl
}

// Name implements Set.
func (sl *SkipList) Name() string { return "skiplist" }

// randomLevel draws a geometric(1/2) height in [1, MaxLevel].
func (sl *SkipList) randomLevel(th *simt.Thread) int {
	lvl := 1
	for lvl < MaxLevel && th.RNG().Intn(2) == 0 {
		lvl++
	}
	return lvl
}

// lockNode spin-acquires the lock word of the node in reg.  Spinning
// passes safepoints, so a thread stuck behind a lock still answers
// scans.
func (sl *SkipList) lockNode(th *simt.Thread, reg int) {
	for !th.CASImm(reg, slLock, 0, 1) {
		th.Pause()
	}
}

// unlockNode releases the lock word of the node in reg.
func (sl *SkipList) unlockNode(th *simt.Thread, reg int) {
	th.StoreImm(reg, slLock, 0)
}

// descend walks one level: starting from the node in rPrev (protected
// by predSlot under the hazard discipline), it advances until
// rPrev.key < key <= rCurr.key at the given level.  It returns the new
// predSlot (the slot protecting rPrev) or -1 to signal a restart.
// After return, rTmp holds rCurr's key.
func (sl *SkipList) descend(th *simt.Thread, level int, key uint64, predSlot int, disc bool) int {
	th.Load(rCurr, rPrev, slNext+level)
	for {
		if disc {
			currSlot := hzTravA
			if predSlot == hzTravA {
				currSlot = hzTravB
			}
			if sl.scheme.Protect(th, currSlot, rCurr) {
				// Validate: pred.next[level] is still curr.
				th.Load(rVal, rPrev, slNext+level)
				if th.Reg(rVal) != th.Reg(rCurr) {
					return -1
				}
			}
			th.Load(rTmp, rCurr, slKey)
			if th.Reg(rTmp) < key {
				th.CopyReg(rPrev, rCurr)
				predSlot = currSlot
				th.Load(rCurr, rPrev, slNext+level)
				continue
			}
			return predSlot
		}
		th.Load(rTmp, rCurr, slKey)
		if th.Reg(rTmp) < key {
			th.CopyReg(rPrev, rCurr)
			th.Load(rCurr, rPrev, slNext+level)
			continue
		}
		return predSlot
	}
}

// find populates the current frame's preds/succs slots for key and
// returns the highest level at which key was found, or -1.  Under the
// hazard discipline it additionally publishes per-level hazards for
// every pred/succ it records, so the nodes stay protected after the
// traversal moves on.
func (sl *SkipList) find(th *simt.Thread, key uint64) int {
	disc := disciplined(sl.scheme)
retry:
	for {
		lFound := -1
		th.SetReg(rPrev, sl.head)
		predSlot := hzTravA
		if disc {
			sl.scheme.Protect(th, predSlot, rPrev)
		}
		for level := MaxLevel - 1; level >= 0; level-- {
			predSlot = sl.descend(th, level, key, predSlot, disc)
			if predSlot < 0 {
				continue retry
			}
			if disc {
				// Hand the pair off to per-level hazards; both nodes
				// are currently protected by traversal slots, so no
				// re-validation is needed.
				sl.scheme.Protect(th, hzPreds+level, rPrev)
				sl.scheme.Protect(th, hzSuccs+level, rCurr)
			}
			if lFound == -1 && th.Reg(rTmp) == key {
				lFound = level
			}
			th.SetSlot(fpPreds+level, th.Reg(rPrev))
			th.SetSlot(fpSuccs+level, th.Reg(rCurr))
		}
		return lFound
	}
}

// Insert implements Set.
func (sl *SkipList) Insert(th *simt.Thread, key uint64) bool {
	checkKey(key)
	sl.scheme.BeginOp(th)
	defer sl.scheme.EndOp(th)
	topLevel := sl.randomLevel(th) - 1
	th.PushFrame(fpSize)
	defer th.PopFrame()
	for {
		lFound := sl.find(th, key)
		if lFound != -1 {
			// Present (or mid-insert/mid-remove): the lazy algorithm
			// waits for fullyLinked unless marked.  The node is
			// protected by the hzSuccs+lFound hazard / frame slot.
			th.SetReg(rNode, th.Slot(fpSuccs+lFound))
			th.Load(rTmp, rNode, slMarked)
			if th.Reg(rTmp) == 0 {
				for {
					th.Load(rTmp, rNode, slFullyLinked)
					if th.Reg(rTmp) != 0 {
						return false
					}
					th.Pause()
				}
			}
			continue // marked: it will disappear; retry
		}
		// Lock predecessors bottom-up and validate.
		valid := true
		highestLocked := -1
		for level := 0; level <= topLevel; level++ {
			th.SetReg(rTmp2, th.Slot(fpPreds+level))
			if level == 0 || th.Slot(fpPreds+level) != th.Slot(fpPreds+level-1) {
				sl.lockNode(th, rTmp2)
				highestLocked = level
			}
			// valid ⇔ pred unmarked ∧ pred.next[level] == succ.
			th.Load(rTmp, rTmp2, slMarked)
			if th.Reg(rTmp) != 0 {
				valid = false
				break
			}
			th.Load(rTmp, rTmp2, slNext+level)
			if th.Reg(rTmp) != th.Slot(fpSuccs+level) {
				valid = false
				break
			}
		}
		if !valid {
			sl.unlockPreds(th, highestLocked)
			continue
		}
		// Splice in a new node.
		th.Alloc(rNode, slNodeBytes)
		stamp(th, sl.scheme, rNode)
		th.StoreImm(rNode, slKey, key)
		th.StoreImm(rNode, slTop, uint64(topLevel))
		th.StoreImm(rNode, slMarked, 0)
		th.StoreImm(rNode, slFullyLinked, 0)
		th.StoreImm(rNode, slLock, 0)
		for level := 0; level <= topLevel; level++ {
			th.SetReg(rTmp, th.Slot(fpSuccs+level))
			th.Store(rNode, slNext+level, rTmp)
		}
		for level := 0; level <= topLevel; level++ {
			th.SetReg(rTmp2, th.Slot(fpPreds+level))
			th.Store(rTmp2, slNext+level, rNode)
		}
		th.StoreImm(rNode, slFullyLinked, 1)
		sl.unlockPreds(th, highestLocked)
		return true
	}
}

// unlockPreds releases the distinct predecessor locks up to level.
func (sl *SkipList) unlockPreds(th *simt.Thread, highestLocked int) {
	for level := 0; level <= highestLocked; level++ {
		if level == 0 || th.Slot(fpPreds+level) != th.Slot(fpPreds+level-1) {
			th.SetReg(rTmp2, th.Slot(fpPreds+level))
			sl.unlockNode(th, rTmp2)
		}
	}
}

// Remove implements Set (lazy removal).
func (sl *SkipList) Remove(th *simt.Thread, key uint64) bool {
	checkKey(key)
	sl.scheme.BeginOp(th)
	defer sl.scheme.EndOp(th)
	th.PushFrame(fpSize)
	defer th.PopFrame()
	isMarker := false // we marked the victim; we must finish the removal
	topLevel := -1
	for {
		lFound := sl.find(th, key)
		if !isMarker {
			if lFound == -1 {
				return false
			}
			// The victim is protected by the hzSuccs+lFound hazard.
			th.SetReg(rNode, th.Slot(fpSuccs+lFound))
			// Eligible only if fully linked at its top level, unmarked.
			th.Load(rTmp, rNode, slFullyLinked)
			if th.Reg(rTmp) == 0 {
				return false
			}
			th.Load(rTmp, rNode, slTop)
			if int(th.Reg(rTmp)) != lFound {
				return false
			}
			topLevel = lFound
			sl.lockNode(th, rNode)
			th.Load(rTmp, rNode, slMarked)
			if th.Reg(rTmp) != 0 {
				sl.unlockNode(th, rNode)
				return false // someone else is removing it
			}
			th.StoreImm(rNode, slMarked, 1)
			isMarker = true
			// From here the victim is ours: marked and locked, nobody
			// else can retire it, so re-finds need no extra hazard.
		} else {
			// Re-find path: restore the victim register.  It is still
			// linked (our unlink has not happened), marked, and locked.
			if lFound == -1 {
				panic("ds: marked and locked skip-list victim vanished")
			}
			th.SetReg(rNode, th.Slot(fpSuccs+lFound))
		}
		// Lock predecessors and validate pred.next[level] == victim.
		valid := true
		highestLocked := -1
		for level := 0; level <= topLevel; level++ {
			th.SetReg(rTmp2, th.Slot(fpPreds+level))
			if level == 0 || th.Slot(fpPreds+level) != th.Slot(fpPreds+level-1) {
				sl.lockNode(th, rTmp2)
				highestLocked = level
			}
			th.Load(rTmp, rTmp2, slMarked)
			if th.Reg(rTmp) != 0 {
				valid = false
				break
			}
			th.Load(rTmp, rTmp2, slNext+level)
			if th.Reg(rTmp) != th.Reg(rNode) {
				valid = false
				break
			}
		}
		if !valid {
			sl.unlockPreds(th, highestLocked)
			continue // re-find and retry the splice (victim stays marked)
		}
		// Unlink top-down.
		for level := topLevel; level >= 0; level-- {
			th.Load(rTmp, rNode, slNext+level)
			th.SetReg(rTmp2, th.Slot(fpPreds+level))
			th.Store(rTmp2, slNext+level, rTmp)
		}
		sl.unlockNode(th, rNode)
		sl.unlockPreds(th, highestLocked)
		sl.scheme.Retire(th, th.Reg(rNode))
		return true
	}
}

// Contains implements Set: the wait-free unsynchronized traversal.
func (sl *SkipList) Contains(th *simt.Thread, key uint64) bool {
	checkKey(key)
	sl.scheme.BeginOp(th)
	defer sl.scheme.EndOp(th)
	disc := disciplined(sl.scheme)
retry:
	for {
		th.SetReg(rPrev, sl.head)
		predSlot := hzTravA
		if disc {
			sl.scheme.Protect(th, predSlot, rPrev)
		}
		for level := MaxLevel - 1; level >= 0; level-- {
			predSlot = sl.descend(th, level, key, predSlot, disc)
			if predSlot < 0 {
				continue retry
			}
			if th.Reg(rTmp) == key {
				// rCurr is the candidate, protected by a traversal slot.
				th.Load(rTmp, rCurr, slFullyLinked)
				th.Load(rTmp2, rCurr, slMarked)
				return th.Reg(rTmp) != 0 && th.Reg(rTmp2) == 0
			}
		}
		return false
	}
}

// Len counts unmarked, fully linked nodes at level 0 (test use only).
func (sl *SkipList) Len() int {
	n := 0
	h := sl.sim.Heap()
	for p := h.Load(sl.head + slNext*8); p != 0 && p != sl.tail; p = h.Load(p + slNext*8) {
		if h.Load(p+slMarked*8) == 0 && h.Load(p+slFullyLinked*8) != 0 {
			n++
		}
	}
	return n
}

// Keys returns the unmarked keys in order (test use only).
func (sl *SkipList) Keys() []uint64 {
	var out []uint64
	h := sl.sim.Heap()
	for p := h.Load(sl.head + slNext*8); p != 0 && p != sl.tail; p = h.Load(p + slNext*8) {
		if h.Load(p+slMarked*8) == 0 && h.Load(p+slFullyLinked*8) != 0 {
			out = append(out, h.Load(p+slKey*8))
		}
	}
	return out
}
