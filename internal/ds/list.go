package ds

import (
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// Harris lock-free linked list [20], in the Herlihy–Shavit formulation
// the paper uses [25].  The list is sorted, with logical deletion via a
// mark bit stolen from the low-order bit of a node's next pointer —
// precisely the bit ThreadScan's scan masks off (§4.2).
//
// Links are represented by the *address of the pointer word*: the head
// word for the first position, or a node's next field otherwise.  This
// lets the same code serve the standalone list and every hash-table
// bucket without sentinel nodes.
//
// Node layout (word offsets):
//
//	0: key
//	1: next | markBit
//	2: value
//	3+: padding to NodeBytes (172 by default, as in §6)

const (
	listKey  = 0
	listNext = 1
	listVal  = 2
)

// DefaultNodeBytes pads list nodes as the paper does ("Each node was
// padded to 172 bytes to avoid false sharing", §6).
const DefaultNodeBytes = 172

// minNodeBytes covers the three mandatory fields.
const minNodeBytes = 24

// List is the standalone Harris list.
type List struct {
	lc       listCore
	headLink uint64 // address of the head pointer word
}

// listCore carries what the shared list algorithm needs; the hash table
// embeds one too.
type listCore struct {
	sim       *simt.Sim
	scheme    reclaim.Scheme
	nodeBytes int
}

// NewList creates an empty list bound to sim and scheme.  nodeBytes of
// 0 selects the paper's 172-byte padding.  Must be called from outside
// the simulation (setup time) before Run, or from a thread via
// NewListAt.
func NewList(sim *simt.Sim, scheme reclaim.Scheme, nodeBytes int) *List {
	if nodeBytes <= 0 {
		nodeBytes = DefaultNodeBytes
	}
	if nodeBytes < minNodeBytes {
		nodeBytes = minNodeBytes
	}
	l := &List{lc: listCore{sim: sim, scheme: scheme, nodeBytes: nodeBytes}}
	l.headLink = sim.Heap().Alloc(8)
	sim.Heap().Store(l.headLink, 0)
	return l
}

// Name implements Set.
func (l *List) Name() string { return "list" }

// Insert implements Set.
func (l *List) Insert(th *simt.Thread, key uint64) bool {
	l.lc.scheme.BeginOp(th)
	ok := l.lc.insert(th, l.headLink, key, key)
	l.lc.scheme.EndOp(th)
	return ok
}

// Remove implements Set.
func (l *List) Remove(th *simt.Thread, key uint64) bool {
	l.lc.scheme.BeginOp(th)
	ok := l.lc.remove(th, l.headLink, key)
	l.lc.scheme.EndOp(th)
	return ok
}

// Contains implements Set.
func (l *List) Contains(th *simt.Thread, key uint64) bool {
	l.lc.scheme.BeginOp(th)
	ok := l.lc.contains(th, l.headLink, key)
	l.lc.scheme.EndOp(th)
	return ok
}

// Len walks the list outside the simulation (test/diagnostic use only)
// and returns the number of unmarked nodes.
func (l *List) Len() int { return l.lc.length(l.headLink) }

// Keys returns the unmarked keys in order (test use only).
func (l *List) Keys() []uint64 { return l.lc.keys(l.headLink) }

// ---------------------------------------------------------------------
// Shared Harris-list algorithm over a link address.

// checkKey panics on keys that would collide with sentinels.
func checkKey(key uint64) {
	if key < MinKey || key > MaxKey {
		panic("ds: key out of [MinKey, MaxKey]")
	}
}

// search positions rPrev at the link whose target is the first node
// with key >= target (rCurr; 0 if none), snipping marked nodes along
// the way (Harris' physical deletion during traversal).  The caller
// receives rPrev/rCurr ready for a CAS.
func (c *listCore) search(th *simt.Thread, headLink, key uint64) {
	disc := disciplined(c.scheme)
retry:
	for {
		th.SetReg(rPrev, headLink)
		th.Load(rCurr, rPrev, 0)
		slot := hpA
		for {
			if th.Reg(rCurr) == 0 {
				return // end of list
			}
			if disc {
				if c.scheme.Protect(th, slot, rCurr) && !validate(th) {
					continue retry
				}
				slot ^= 1 // keep the previous node's hazard alive
			}
			th.Load(rNext, rCurr, listNext)
			if th.Reg(rNext)&1 != 0 {
				// Current node is logically deleted: snip it.  Whoever
				// wins the CAS owns the retirement.
				th.SetReg(rTmp, th.Reg(rNext)&^1)
				if !th.CAS(rPrev, 0, rCurr, rTmp) {
					continue retry
				}
				c.scheme.Retire(th, th.Reg(rCurr))
				th.CopyReg(rCurr, rTmp)
				continue
			}
			th.Load(rTmp, rCurr, listKey)
			if th.Reg(rTmp) >= key {
				return
			}
			// Advance: the link becomes curr's next field.
			th.SetReg(rPrev, th.Reg(rCurr)+listNext*8)
			th.SetReg(rCurr, th.Reg(rNext))
		}
	}
}

// insert adds key with the given value, reporting false if present.
func (c *listCore) insert(th *simt.Thread, headLink, key, val uint64) bool {
	checkKey(key)
	allocated := false
	for {
		c.search(th, headLink, key)
		if th.Reg(rCurr) != 0 {
			th.Load(rTmp, rCurr, listKey)
			if th.Reg(rTmp) == key {
				if allocated { // lost the race; node was never published
					th.FreeAddr(th.Reg(rNode))
					th.SetReg(rNode, 0)
				}
				return false
			}
		}
		if !allocated {
			th.Alloc(rNode, c.nodeBytes)
			stamp(th, c.scheme, rNode)
			th.StoreImm(rNode, listKey, key)
			th.StoreImm(rNode, listVal, val)
			allocated = true
		}
		th.Store(rNode, listNext, rCurr) // node.next = curr
		if th.CAS(rPrev, 0, rCurr, rNode) {
			return true
		}
		// Link changed under us (insert, remove, or mark): retry.
	}
}

// remove deletes key, reporting false if absent.
func (c *listCore) remove(th *simt.Thread, headLink, key uint64) bool {
	checkKey(key)
	for {
		c.search(th, headLink, key)
		if th.Reg(rCurr) == 0 {
			return false
		}
		th.Load(rTmp, rCurr, listKey)
		if th.Reg(rTmp) != key {
			return false
		}
		th.Load(rNext, rCurr, listNext)
		if th.Reg(rNext)&1 != 0 {
			continue // already logically deleted; re-search (helps snip)
		}
		// Logical deletion: mark curr's next pointer.
		th.SetReg(rTmp, th.Reg(rNext)|1)
		if !th.CAS(rCurr, listNext, rNext, rTmp) {
			continue // contention on curr; retry
		}
		// Physical deletion: unlink; on failure a traversal will snip
		// it (and own the retirement).
		if th.CAS(rPrev, 0, rCurr, rNext) {
			c.scheme.Retire(th, th.Reg(rCurr))
		}
		return true
	}
}

// contains is the unsynchronized traversal: a pure read sequence, no
// helping, no stores (except hazard publication under that discipline).
func (c *listCore) contains(th *simt.Thread, headLink, key uint64) bool {
	checkKey(key)
	disc := disciplined(c.scheme)
retry:
	for {
		th.SetReg(rPrev, headLink)
		th.Load(rCurr, rPrev, 0)
		slot := hpA
		for {
			if th.Reg(rCurr) == 0 {
				return false
			}
			if disc {
				if c.scheme.Protect(th, slot, rCurr) && !validate(th) {
					continue retry
				}
				slot ^= 1
			}
			th.Load(rNext, rCurr, listNext)
			th.Load(rTmp, rCurr, listKey)
			if th.Reg(rTmp) >= key {
				return th.Reg(rTmp) == key && th.Reg(rNext)&1 == 0
			}
			th.SetReg(rPrev, th.Reg(rCurr)+listNext*8)
			th.SetReg(rCurr, th.Reg(rNext)&^1)
		}
	}
}

// length and keys are host-side structure walks for tests; they bypass
// the cost model and must only run while the simulation is quiescent.
func (c *listCore) length(headLink uint64) int {
	n := 0
	h := c.sim.Heap()
	for p := h.Load(headLink) &^ 1; p != 0; {
		next := h.Load(p + listNext*8)
		if next&1 == 0 {
			n++
		}
		p = next &^ 1
	}
	return n
}

func (c *listCore) keys(headLink uint64) []uint64 {
	var out []uint64
	h := c.sim.Heap()
	for p := h.Load(headLink) &^ 1; p != 0; {
		next := h.Load(p + listNext*8)
		if next&1 == 0 {
			out = append(out, h.Load(p+listKey*8))
		}
		p = next &^ 1
	}
	return out
}
