package ds

import (
	"sort"
	"testing"

	"threadscan/internal/core"
	"threadscan/internal/reclaim"
	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

func testSim(cores int, seed int64) *simt.Sim {
	return simt.New(simt.Config{
		Cores:      cores,
		Quantum:    10_000,
		Seed:       seed,
		MaxCycles:  20_000_000_000,
		StackWords: 256,
		Heap:       simmem.Config{Words: 1 << 21, Check: true, Poison: true},
	})
}

// makeScheme builds a scheme by name, with hazard slots sized for the
// skip list and small batches so tests reclaim eagerly.
func makeScheme(name string, sim *simt.Sim) reclaim.Scheme {
	switch name {
	case "leaky":
		return reclaim.NewLeaky(sim)
	case "hazard":
		return reclaim.NewHazard(sim, reclaim.HazardConfig{Slots: SkipListHazardSlots, Batch: 64})
	case "epoch":
		return reclaim.NewEpoch(sim, reclaim.EpochConfig{Batch: 64})
	case "threadscan":
		return reclaim.NewThreadScan(sim, core.Config{BufferSize: 64})
	case "stacktrack":
		return reclaim.NewStackTrack(sim, reclaim.StackTrackConfig{SegmentLen: 8, Batch: 64})
	default:
		panic("unknown scheme " + name)
	}
}

var allSchemes = []string{"leaky", "hazard", "epoch", "threadscan", "stacktrack"}

// makeSet builds a structure by kind.
func makeSet(kind string, sim *simt.Sim, sc reclaim.Scheme) Set {
	switch kind {
	case "list":
		return NewList(sim, sc, 0)
	case "hash":
		return NewHashTable(sim, sc, 16, 0)
	case "skiplist":
		return NewSkipList(sim, sc)
	default:
		panic("unknown set " + kind)
	}
}

var allSets = []string{"list", "hash", "skiplist"}

// setLen reads the structure size outside the simulation.
func setLen(s Set) int {
	switch v := s.(type) {
	case *List:
		return v.Len()
	case *HashTable:
		return v.Len()
	case *SkipList:
		return v.Len()
	}
	return -1
}

func setKeys(s Set) []uint64 {
	switch v := s.(type) {
	case *List:
		return v.Keys()
	case *HashTable:
		return v.Keys()
	case *SkipList:
		return v.Keys()
	}
	return nil
}

// TestSequentialSemantics drives each structure single-threaded against
// a model map, for every scheme (the scheme must not change semantics).
func TestSequentialSemantics(t *testing.T) {
	for _, kind := range allSets {
		for _, scheme := range allSchemes {
			kind, scheme := kind, scheme
			t.Run(kind+"/"+scheme, func(t *testing.T) {
				s := testSim(1, 42)
				sc := makeScheme(scheme, s)
				set := makeSet(kind, s, sc)
				model := map[uint64]bool{}
				s.Spawn("driver", func(th *simt.Thread) {
					rng := th.RNG()
					for i := 0; i < 400; i++ {
						key := uint64(rng.Intn(60)) + 1
						switch rng.Intn(3) {
						case 0:
							want := !model[key]
							if got := set.Insert(th, key); got != want {
								t.Errorf("Insert(%d) = %v, want %v", key, got, want)
							}
							model[key] = true
						case 1:
							want := model[key]
							if got := set.Remove(th, key); got != want {
								t.Errorf("Remove(%d) = %v, want %v", key, got, want)
							}
							delete(model, key)
						default:
							want := model[key]
							if got := set.Contains(th, key); got != want {
								t.Errorf("Contains(%d) = %v, want %v", key, got, want)
							}
						}
					}
					sc.Flush(th)
				})
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				if got := setLen(set); got != len(model) {
					t.Fatalf("final size %d, model %d", got, len(model))
				}
				keys := setKeys(set)
				if len(keys) != len(model) {
					t.Fatalf("keys %d, model %d", len(keys), len(model))
				}
				for _, k := range keys {
					if !model[k] {
						t.Fatalf("stray key %d", k)
					}
				}
			})
		}
	}
}

func TestListKeysSorted(t *testing.T) {
	s := testSim(1, 7)
	sc := reclaim.NewLeaky(s)
	l := NewList(s, sc, 0)
	s.Spawn("driver", func(th *simt.Thread) {
		for _, k := range []uint64{5, 3, 9, 1, 7, 2, 8} {
			l.Insert(th, k)
		}
		l.Remove(th, 3)
		l.Remove(th, 8)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("list not sorted: %v", keys)
	}
	want := []uint64{1, 2, 5, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("keys %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
}

func TestInsertDuplicateFreesUnpublishedNode(t *testing.T) {
	// A lost insert race (or plain duplicate) must not leak the
	// never-published node.
	s := testSim(1, 8)
	sc := reclaim.NewLeaky(s) // leaky: only *retired* nodes may remain
	l := NewList(s, sc, 0)
	s.Spawn("driver", func(th *simt.Thread) {
		l.Insert(th, 10)
		for i := 0; i < 5; i++ {
			if l.Insert(th, 10) {
				t.Error("duplicate insert succeeded")
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// One node + head word live; duplicates were freed.
	if live := s.Heap().Stats().LiveBlocks; live != 2 {
		t.Fatalf("live blocks = %d, want 2 (head word + one node)", live)
	}
}

func TestHashSpreadsAcrossBuckets(t *testing.T) {
	s := testSim(1, 9)
	sc := reclaim.NewLeaky(s)
	h := NewHashTable(s, sc, 8, 0)
	s.Spawn("driver", func(th *simt.Thread) {
		for k := uint64(1); k <= 64; k++ {
			h.Insert(th, k)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 64 {
		t.Fatalf("len %d", h.Len())
	}
	// With 64 keys over 8 buckets no bucket should be empty or hold
	// more than half the keys (fibonacci hashing sanity check).
	counts := map[int]int{}
	for _, k := range h.Keys() {
		counts[int((k*0x9E3779B97F4A7C15)>>32&uint64(h.Buckets()-1))]++
	}
	for b := 0; b < h.Buckets(); b++ {
		if counts[b] == 0 || counts[b] > 32 {
			t.Fatalf("bucket %d has %d keys", b, counts[b])
		}
	}
}

func TestSkipListLevelsDistribution(t *testing.T) {
	s := testSim(1, 10)
	sc := reclaim.NewLeaky(s)
	sl := NewSkipList(s, sc)
	s.Spawn("driver", func(th *simt.Thread) {
		for k := uint64(1); k <= 512; k++ {
			sl.Insert(th, k)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sl.Len() != 512 {
		t.Fatalf("len %d", sl.Len())
	}
	// Height-2+ nodes should be roughly half; just check some exist at
	// higher levels by walking level 3.
	h := s.Heap()
	n := 0
	for p := h.Load(sl.head + (slNext+3)*8); p != 0 && p != sl.tail; p = h.Load(p + (slNext+3)*8) {
		n++
	}
	if n == 0 || n > 200 {
		t.Fatalf("level-3 population %d implausible for 512 nodes", n)
	}
}

// TestConcurrentStressAllSchemes is the central integration test: every
// structure under every scheme, multi-threaded, on the checked heap.
// Any unsound reclamation panics the run.  Afterwards, op accounting
// must balance: prefill + successful inserts - successful removes =
// final size.
func TestConcurrentStressAllSchemes(t *testing.T) {
	for _, kind := range allSets {
		for _, scheme := range allSchemes {
			kind, scheme := kind, scheme
			t.Run(kind+"/"+scheme, func(t *testing.T) {
				s := testSim(3, 1234)
				sc := makeScheme(scheme, s)
				set := makeSet(kind, s, sc)
				const nThreads, opsEach, keyRange = 4, 250, 64
				inserts := make([]int, nThreads)
				removes := make([]int, nThreads)
				prefilled := 0
				barrier := s.NewBarrier("start", nThreads)
				for i := 0; i < nThreads; i++ {
					i := i
					s.Spawn("worker", func(th *simt.Thread) {
						if i == 0 { // prefill half the range
							for k := uint64(1); k <= keyRange/2; k++ {
								if set.Insert(th, k) {
									prefilled++
								}
							}
						}
						barrier.Await(th)
						rng := th.RNG()
						for j := 0; j < opsEach; j++ {
							key := uint64(rng.Intn(keyRange)) + 1
							switch rng.Intn(10) {
							case 0, 1: // 20% updates split half/half
								if set.Insert(th, key) {
									inserts[i]++
								}
							case 2, 3:
								if set.Remove(th, key) {
									removes[i]++
								}
							default:
								set.Contains(th, key)
							}
						}
						// Teardown protocol: drop every stale reference
						// (registers) in *all* threads first, then each
						// thread flushes its own retire lists.
						barrier.Await(th)
						for r := 0; r < simt.NumRegs; r++ {
							th.SetReg(r, 0)
						}
						barrier.Await(th)
						sc.Flush(th)
					})
				}
				if err := s.Run(); err != nil {
					t.Fatalf("%s/%s: %v", kind, scheme, err)
				}
				totalIns, totalRem := prefilled, 0
				for i := 0; i < nThreads; i++ {
					totalIns += inserts[i]
					totalRem += removes[i]
				}
				if got := setLen(set); got != totalIns-totalRem {
					t.Fatalf("%s/%s: size %d != inserts %d - removes %d",
						kind, scheme, got, totalIns, totalRem)
				}
				// No duplicate keys may survive.
				keys := setKeys(set)
				seen := map[uint64]bool{}
				for _, k := range keys {
					if seen[k] {
						t.Fatalf("%s/%s: duplicate key %d", kind, scheme, k)
					}
					seen[k] = true
				}
				// Leak accounting: non-leaky schemes must have freed
				// every retired node once all threads flushed.
				st := sc.Stats()
				if scheme != "leaky" && st.Retired != st.Freed {
					t.Fatalf("%s/%s: retired %d != freed %d (pending %d)",
						kind, scheme, st.Retired, st.Freed, st.Pending)
				}
				if scheme == "leaky" && st.Retired > 0 && s.Heap().Stats().LiveBlocks == uint64(setLen(set)) {
					t.Fatalf("leaky: retired nodes seem to have been freed")
				}
			})
		}
	}
}

// TestChaosInterleavings runs the stress under chaos scheduling with
// several seeds — the schedule-fuzzing analog of running the paper's
// stress on different machines.
func TestChaosInterleavings(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress skipped in -short")
	}
	for _, kind := range allSets {
		for _, seed := range []int64{3, 17} {
			kind := kind
			seed := seed
			t.Run(kind, func(t *testing.T) {
				s := simt.New(simt.Config{
					Cores: 2, Quantum: 1_500, Seed: seed, Chaos: true,
					MaxCycles:  20_000_000_000,
					StackWords: 256,
					Heap:       simmem.Config{Words: 1 << 21, Check: true, Poison: true},
				})
				sc := makeScheme("threadscan", s)
				set := makeSet(kind, s, sc)
				for i := 0; i < 4; i++ {
					s.Spawn("worker", func(th *simt.Thread) {
						rng := th.RNG()
						for j := 0; j < 150; j++ {
							key := uint64(rng.Intn(40)) + 1
							switch rng.Intn(3) {
							case 0:
								set.Insert(th, key)
							case 1:
								set.Remove(th, key)
							default:
								set.Contains(th, key)
							}
						}
						sc.Flush(th)
					})
				}
				if err := s.Run(); err != nil {
					t.Fatalf("%s seed %d: %v", kind, seed, err)
				}
			})
		}
	}
}
