// Package ds implements the paper's three benchmark data structures
// (§6 "Data Structures") against the simulated substrate:
//
//   - List: Harris' lock-free linked list [20], adapted as in the
//     paper from the Herlihy–Shavit text [25], with nodes padded to
//     172 bytes to avoid false sharing.
//   - HashTable: the Synchrobench-derived lock-free hash table whose
//     buckets are Harris lists (the paper replaced the bucket
//     implementation with the [25] list; so does this one).
//   - SkipList: the lock-based lazy skip list, with fixed-size nodes
//     (the paper's are 104 bytes, "the maximum size due to height").
//
// Every operation follows the register/stack discipline: each node
// address a thread may dereference lives in a simulated register or a
// stack slot at every safepoint, which is what makes ThreadScan's scans
// sound (Assumption 1.3).  Scheme cooperation is woven in at the three
// standard touch points — BeginOp/EndOp brackets, Protect on traversal
// steps (hazard/publish disciplines), and Retire on unlink.
package ds

import (
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// Set is the common concurrent-set interface the harness drives.
type Set interface {
	// Insert adds key, reporting false if it was already present.
	Insert(th *simt.Thread, key uint64) bool
	// Remove deletes key, reporting false if it was absent.
	Remove(th *simt.Thread, key uint64) bool
	// Contains reports whether key is present (the unsynchronized
	// traversal the paper's scalability argument rests on).
	Contains(th *simt.Thread, key uint64) bool
	// Name identifies the structure in reports.
	Name() string
}

// Register conventions shared by all structures.  A traversal's live
// references sit in these registers, where TS-Scan finds them.
const (
	rPrev = 0 // link-word address (head word or prev.next field)
	rCurr = 1 // current node
	rNext = 2 // successor (may carry a mark bit)
	rNode = 3 // new node / victim node
	rTmp  = 4
	rTmp2 = 5
	rVal  = 6 // validation scratch (hazard re-reads)
	rHead = 7 // structure entry point
)

// Hazard slot conventions: traversals alternate slots 0 and 1 so the
// previous node stays protected while the next is published (Michael's
// two-hazard list discipline); slot 2 protects skip-list victims.
const (
	hpA      = 0
	hpB      = 1
	hpVictim = 2
)

// MinKey and MaxKey bound usable key values; the extremes are reserved
// for sentinels.
const (
	MinKey = uint64(1)
	MaxKey = uint64(1) << 62
)

// disciplined reports whether the scheme wants per-step Protect calls.
func disciplined(sc reclaim.Scheme) bool {
	return sc.Discipline() != reclaim.DisciplineNone
}

// validate re-reads the link word in rPrev and confirms it still points
// at rCurr (unmarked).  Hazard traversals call this after publishing;
// false means restart from the head.
func validate(th *simt.Thread) bool {
	th.Load(rVal, rPrev, 0)
	return th.Reg(rVal) == th.Reg(rCurr)
}

// stamp records a freshly allocated node's birth with schemes that key
// reclamation decisions on allocation order (reclaim.BirthStamper).
// Called right after every node Thread.Alloc, before the node can be
// published; a no-op for every other scheme.
func stamp(th *simt.Thread, sc reclaim.Scheme, reg int) {
	if bs, ok := sc.(reclaim.BirthStamper); ok {
		bs.NoteAlloc(th, th.Reg(reg))
	}
}
