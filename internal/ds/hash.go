package ds

import (
	"threadscan/internal/reclaim"
	"threadscan/internal/simt"
)

// HashTable is the paper's lock-free hash table (§6): a fixed array of
// buckets, each a Harris list — "The Synchrobench suite provided a hash
// table that used its own lock-free linked list for its buckets.  This
// implementation was replaced with the [25] list."  The bucket array is
// a large allocation in the simulated heap; bucket heads are the link
// words the shared list code operates on.
//
// The paper sizes the table for an expected bucket length of 32 at
// 131,072 nodes (4,096 buckets for a 262,144 key range); the
// constructor takes the bucket count so the harness can do the same.
type HashTable struct {
	lc       listCore
	buckets  uint64 // address of bucket array (buckets words)
	nBuckets int
	mask     uint64
}

// NewHashTable creates a table with nBuckets buckets (rounded up to a
// power of two).  nodeBytes of 0 selects the paper's 172-byte padding.
func NewHashTable(sim *simt.Sim, scheme reclaim.Scheme, nBuckets, nodeBytes int) *HashTable {
	if nBuckets < 1 {
		nBuckets = 1
	}
	for nBuckets&(nBuckets-1) != 0 {
		nBuckets++
	}
	if nodeBytes <= 0 {
		nodeBytes = DefaultNodeBytes
	}
	if nodeBytes < minNodeBytes {
		nodeBytes = minNodeBytes
	}
	h := &HashTable{
		lc:       listCore{sim: sim, scheme: scheme, nodeBytes: nodeBytes},
		nBuckets: nBuckets,
		mask:     uint64(nBuckets - 1),
	}
	h.buckets = sim.Heap().Alloc(nBuckets * 8)
	for i := 0; i < nBuckets; i++ {
		sim.Heap().Store(h.buckets+uint64(i)*8, 0)
	}
	return h
}

// Name implements Set.
func (h *HashTable) Name() string { return "hash" }

// Buckets returns the bucket count.
func (h *HashTable) Buckets() int { return h.nBuckets }

// bucketLink computes the key's bucket head-word address, charging the
// hash computation.  Fibonacci hashing spreads sequential keys.
func (h *HashTable) bucketLink(th *simt.Thread, key uint64) uint64 {
	th.Charge(6) // multiply + shift + mask
	b := (key * 0x9E3779B97F4A7C15) >> 32 & h.mask
	return h.buckets + b*8
}

// Insert implements Set.
func (h *HashTable) Insert(th *simt.Thread, key uint64) bool {
	h.lc.scheme.BeginOp(th)
	ok := h.lc.insert(th, h.bucketLink(th, key), key, key)
	h.lc.scheme.EndOp(th)
	return ok
}

// Remove implements Set.
func (h *HashTable) Remove(th *simt.Thread, key uint64) bool {
	h.lc.scheme.BeginOp(th)
	ok := h.lc.remove(th, h.bucketLink(th, key), key)
	h.lc.scheme.EndOp(th)
	return ok
}

// Contains implements Set.
func (h *HashTable) Contains(th *simt.Thread, key uint64) bool {
	h.lc.scheme.BeginOp(th)
	ok := h.lc.contains(th, h.bucketLink(th, key), key)
	h.lc.scheme.EndOp(th)
	return ok
}

// Len sums bucket lengths (test/diagnostic use only; quiescent sim).
func (h *HashTable) Len() int {
	n := 0
	for i := 0; i < h.nBuckets; i++ {
		n += h.lc.length(h.buckets + uint64(i)*8)
	}
	return n
}

// Keys returns all unmarked keys (test use only; unordered across
// buckets).
func (h *HashTable) Keys() []uint64 {
	var out []uint64
	for i := 0; i < h.nBuckets; i++ {
		out = append(out, h.lc.keys(h.buckets+uint64(i)*8)...)
	}
	return out
}
