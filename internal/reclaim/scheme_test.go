package reclaim

import (
	"testing"

	"threadscan/internal/core"
	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

const nodeSize = 64

func testSim(cores int, seed int64) *simt.Sim {
	return simt.New(simt.Config{
		Cores:     cores,
		Quantum:   10_000,
		Seed:      seed,
		MaxCycles: 2_000_000_000,
		Heap:      simmem.Config{Words: 1 << 20, Check: true, Poison: true},
	})
}

func allocNode(th *simt.Thread, dst int, val uint64) uint64 {
	th.Alloc(dst, nodeSize)
	th.StoreImm(dst, 0, val)
	return th.Reg(dst)
}

// churn allocates and immediately retires n unreferenced nodes inside
// their own operations.
func churn(s Scheme, th *simt.Thread, n int) {
	for i := 0; i < n; i++ {
		s.BeginOp(th)
		allocNode(th, 15, uint64(i))
		addr := th.Reg(15)
		th.SetReg(15, 0)
		s.Retire(th, addr)
		s.EndOp(th)
	}
}

// makeScheme constructs every scheme under test with small batches so
// unit tests trigger reclamation quickly.
func makeScheme(name string, sim *simt.Sim) Scheme {
	switch name {
	case "leaky":
		return NewLeaky(sim)
	case "hazard":
		return NewHazard(sim, HazardConfig{Slots: 4, Batch: 24})
	case "epoch":
		return NewEpoch(sim, EpochConfig{Batch: 24})
	case "slow-epoch":
		return NewEpoch(sim, EpochConfig{Batch: 24, DelayCycles: 100_000})
	case "threadscan":
		return NewThreadScan(sim, core.Config{BufferSize: 24})
	case "threadscan-help":
		return NewThreadScan(sim, core.Config{BufferSize: 24, HelpFree: true, HelpFreeChunk: 8})
	case "stacktrack":
		return NewStackTrack(sim, StackTrackConfig{SegmentLen: 4, Batch: 24})
	case "hyaline":
		return NewHyaline(sim, HyalineConfig{Batch: 24})
	default:
		panic("unknown scheme " + name)
	}
}

var reclaimingSchemes = []string{
	"hazard", "epoch", "slow-epoch", "threadscan", "threadscan-help", "stacktrack", "hyaline",
}

// TestConformanceReclaimAll: every real scheme must, under a multi-
// threaded hold-and-churn workload on the checked heap, (a) never free
// a node that a thread may still dereference — a violation panics the
// run — and (b) reclaim everything once references are dropped.
func TestConformanceReclaimAll(t *testing.T) {
	for _, name := range reclaimingSchemes {
		name := name
		t.Run(name, func(t *testing.T) {
			s := testSim(2, 99)
			sc := makeScheme(name, s)
			disc := sc.Discipline()
			var flushLeft int
			done := make(chan struct{}) // host-side completion marker
			_ = done
			nWorkers := 3
			finished := 0
			for w := 0; w < nWorkers; w++ {
				s.Spawn("worker", func(th *simt.Thread) {
					for j := 0; j < 40; j++ {
						// Hold a node across churn, inside one op.
						sc.BeginOp(th)
						held := allocNode(th, 2, uint64(j))
						if disc != DisciplineNone {
							sc.Protect(th, 0, 2)
						}
						for k := 0; k < 3; k++ {
							allocNode(th, 14, 7)
							junk := th.Reg(14)
							th.SetReg(14, 0)
							sc.Retire(th, junk)
						}
						th.Load(3, 2, 0) // held node must still be live
						if th.Reg(3) != uint64(j) {
							t.Errorf("%s: held node corrupted", name)
						}
						th.SetReg(2, 0)
						th.SetReg(3, 0)
						sc.EndOp(th)
						// Retire the held node in a fresh op.
						sc.BeginOp(th)
						sc.Retire(th, held)
						sc.EndOp(th)
					}
					finished++
					if finished == nWorkers {
						flushLeft = sc.Flush(th)
					}
				})
			}
			if err := s.Run(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if flushLeft != 0 {
				t.Fatalf("%s: Flush left %d nodes", name, flushLeft)
			}
			if live := s.Heap().Stats().LiveBlocks; live != 0 {
				t.Fatalf("%s: leaked %d blocks", name, live)
			}
			st := sc.Stats()
			want := uint64(nWorkers * 40 * 4)
			if st.Retired != want || st.Freed != want {
				t.Fatalf("%s: retired %d freed %d want %d", name, st.Retired, st.Freed, want)
			}
		})
	}
}

func TestLeakyLeaksEverything(t *testing.T) {
	s := testSim(1, 1)
	sc := NewLeaky(s)
	s.Spawn("w", func(th *simt.Thread) {
		churn(sc, th, 50)
		if sc.Flush(th) != 50 {
			t.Error("leaky should report its graveyard")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Leaked != 50 || st.Freed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 50 {
		t.Fatalf("expected 50 leaked blocks, have %d", live)
	}
}

func TestHazardPinsPublishedNode(t *testing.T) {
	s := testSim(2, 5)
	h := NewHazard(s, HazardConfig{Slots: 2, Batch: 8})
	var node uint64
	published, release := false, false
	s.Spawn("reader", func(th *simt.Thread) {
		node = allocNode(th, 0, 77)
		h.Protect(th, 0, 0) // publish, fence
		published = true
		for !release {
			th.Load(1, 0, 0) // keep dereferencing under hazard
		}
		h.EndOp(th) // clears hazards
		th.SetReg(0, 0)
		th.SetReg(1, 0)
	})
	s.Spawn("reclaimer", func(th *simt.Thread) {
		for !published {
			th.Pause()
		}
		h.Retire(th, node)
		churn(h, th, 30) // many scans
		if !s.Heap().LiveAt(node) {
			t.Error("hazarded node was freed")
		}
		if h.Stats().Freed == 0 {
			t.Error("scans freed nothing at all")
		}
		release = true
		th.Work(50_000) // let the reader clear its hazard
		if left := h.Flush(th); left != 0 {
			t.Errorf("flush left %d", left)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d", live)
	}
}

func TestHazardOwnSlotsRespected(t *testing.T) {
	// A thread that retires while itself holding a hazard must not free
	// its own protected node (Retire can run mid-traversal).
	s := testSim(1, 6)
	h := NewHazard(s, HazardConfig{Slots: 2, Batch: 4})
	s.Spawn("self", func(th *simt.Thread) {
		node := allocNode(th, 0, 1)
		h.Protect(th, 0, 0)
		h.Retire(th, node) // unlinked but still in our hazard
		// Churn *within the same operation* (no EndOp, which would
		// clear our hazard) to force scans.
		for i := 0; i < 12; i++ {
			allocNode(th, 15, uint64(i))
			junk := th.Reg(15)
			th.SetReg(15, 0)
			h.Retire(th, junk)
		}
		if !s.Heap().LiveAt(node) {
			t.Error("own hazard ignored: node freed while protected")
		}
		th.Load(1, 0, 0) // still safe to use
		h.EndOp(th)
		th.SetReg(0, 0)
		th.SetReg(1, 0)
		h.Flush(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d", live)
	}
}

func TestEpochGraceWaitBlocksOnActiveThread(t *testing.T) {
	// A reclaimer must wait out a reader that is mid-operation, and the
	// wait must last until the reader's operation actually ends — the
	// exact dependence ThreadScan eliminates.
	const stall = 500_000
	s := testSim(3, 7)
	e := NewEpoch(s, EpochConfig{Batch: 8})
	inOp, finish := false, false
	var reclaimDone, readerDone int64
	s.Spawn("reader", func(th *simt.Thread) {
		e.BeginOp(th)
		node := allocNode(th, 0, 3)
		inOp = true
		for !finish { // stalled inside the operation
			th.Load(1, 0, 0)
		}
		th.SetReg(0, 0)
		th.SetReg(1, 0)
		e.Retire(th, node)
		e.EndOp(th)
		readerDone = th.Now()
	})
	s.Spawn("reclaimer", func(th *simt.Thread) {
		for !inOp {
			th.Pause()
		}
		churn(e, th, 9) // batch fills; EndOp must wait for the reader
		reclaimDone = th.Now()
	})
	s.Spawn("timer", func(th *simt.Thread) { // independent: breaks the stall
		for !inOp {
			th.Pause()
		}
		th.Work(stall)
		finish = true
	})
	s.Spawn("closer", func(th *simt.Thread) {
		for readerDone == 0 {
			th.Pause()
		}
		e.Flush(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.GraceWaits == 0 {
		t.Fatal("no grace wait recorded")
	}
	if st.GraceWaitCycles < stall/2 {
		t.Fatalf("grace wait %d cycles, expected to absorb most of the %d stall",
			st.GraceWaitCycles, stall)
	}
	if reclaimDone < stall/2 {
		t.Fatalf("reclaimer finished at %d, before the reader was released", reclaimDone)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d", live)
	}
}

// TestEpochFlushDrainsAllThreads is the teardown-leak regression: Flush
// must drain the retire lists of *other* still-registered (quiescent)
// threads, not just the caller's own list plus orphans.  Pre-fix, the
// two workers' lists survived the flush as phantom garbage.
func TestEpochFlushDrainsAllThreads(t *testing.T) {
	s := testSim(3, 12)
	e := NewEpoch(s, EpochConfig{Batch: 1024}) // batch never fills on its own
	const perWorker = 10
	retired := 0
	flushed := false
	for w := 0; w < 2; w++ {
		s.Spawn("worker", func(th *simt.Thread) {
			churn(e, th, perWorker)
			retired++
			for !flushed { // stay registered (alive) across the flush
				th.Pause()
			}
		})
	}
	s.Spawn("flusher", func(th *simt.Thread) {
		for retired < 2 {
			th.Pause()
		}
		if left := e.Flush(th); left != 0 {
			t.Errorf("Flush left %d nodes buffered", left)
		}
		flushed = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Freed != 2*perWorker {
		t.Fatalf("freed %d of %d retired", st.Freed, 2*perWorker)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

func TestSlowEpochStallsReclaimers(t *testing.T) {
	// The paper's Slow Epoch scenario: thread 0 busy-waits during its
	// cleanup phase while still mid-operation, and every concurrent
	// reclaimer inherits the delay as grace-wait time.
	const delay = 500_000
	s := testSim(2, 8)
	e := NewEpoch(s, EpochConfig{Batch: 8, DelayCycles: delay})
	stalling := false
	s.Spawn("victim", func(th *simt.Thread) { // thread 0: errant
		churn(e, th, 7) // fill the batch to one short of the trigger
		e.BeginOp(th)
		allocNode(th, 15, 0)
		junk := th.Reg(15)
		th.SetReg(15, 0)
		e.Retire(th, junk) // 8th retiree: cleanup due
		stalling = true
		e.EndOp(th) // 500k-cycle errant stall, then reclaim
	})
	s.Spawn("worker", func(th *simt.Thread) {
		for !stalling {
			th.Pause()
		}
		churn(e, th, 9) // reclaim at EndOp must wait out the victim
		e.Flush(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.GraceWaits == 0 {
		t.Fatal("no grace waits despite delayed victim")
	}
	if st.GraceWaitCycles < delay/2 {
		t.Fatalf("grace wait %d cycles; expected to inherit much of the %d delay",
			st.GraceWaitCycles, delay)
	}
}

// TestThreadScanUnaffectedByStalledOperation is the A4 contrast: the
// same errant mid-operation stall that cripples Epoch does not delay a
// ThreadScan collect, because the handler runs in the stalled thread
// regardless (signals interrupt the busy-wait).
func TestThreadScanUnaffectedByStalledOperation(t *testing.T) {
	s := testSim(2, 9)
	sc := NewThreadScan(s, core.Config{BufferSize: 8})
	stallDone := false
	var collectFinished int64
	s.Spawn("staller", func(th *simt.Thread) {
		sc.BeginOp(th)
		th.Work(20_000_000) // 20ms stall inside an "operation"
		sc.EndOp(th)
		stallDone = true
	})
	s.Spawn("worker", func(th *simt.Thread) {
		churn(sc, th, 30) // several collects during the stall
		collectFinished = th.Now()
		if stallDone {
			t.Error("collects did not finish during the stall")
		}
		sc.Flush(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if collectFinished == 0 || collectFinished > 20_000_000 {
		t.Fatalf("collects finished at %d; expected well within the stall", collectFinished)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d", live)
	}
}

func TestStackTrackPinsPublishedRef(t *testing.T) {
	s := testSim(2, 10)
	st := NewStackTrack(s, StackTrackConfig{SegmentLen: 2, Batch: 8})
	var node uint64
	holding, release := false, false
	s.Spawn("reader", func(th *simt.Thread) {
		st.BeginOp(th)
		node = allocNode(th, 0, 11)
		st.Protect(th, 0, 0) // steps force publications
		st.Protect(th, 0, 0)
		holding = true
		for !release {
			th.Load(1, 0, 0)
			st.Protect(th, 0, 0)
		}
		th.SetReg(0, 0)
		th.SetReg(1, 0)
		st.EndOp(th)
		st.BeginOp(th)
		st.Retire(th, node)
		st.EndOp(th)
	})
	s.Spawn("reclaimer", func(th *simt.Thread) {
		for !holding {
			th.Pause()
		}
		churn(st, th, 30)
		if !s.Heap().LiveAt(node) {
			t.Error("published reference ignored: node freed")
		}
		release = true
		th.Work(200_000)
		st.Flush(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d", live)
	}
}

func TestSchemeNamesAndDisciplines(t *testing.T) {
	s := testSim(1, 11)
	cases := []struct {
		sc   Scheme
		name string
		disc Discipline
	}{
		{NewLeaky(s), "leaky", DisciplineNone},
		{NewHazard(s, HazardConfig{}), "hazard", DisciplineHazard},
		{NewEpoch(s, EpochConfig{}), "epoch", DisciplineNone},
		{NewEpoch(s, EpochConfig{DelayCycles: 1}), "slow-epoch", DisciplineNone},
		{NewThreadScan(s, core.Config{}), "threadscan", DisciplineNone},
		{NewStackTrack(s, StackTrackConfig{}), "stacktrack", DisciplinePublish},
		{NewHyaline(s, HyalineConfig{}), "hyaline", DisciplineEra},
	}
	for _, c := range cases {
		if c.sc.Name() != c.name {
			t.Errorf("name: got %q want %q", c.sc.Name(), c.name)
		}
		if c.sc.Discipline() != c.disc {
			t.Errorf("%s: discipline %v want %v", c.name, c.sc.Discipline(), c.disc)
		}
	}
}
