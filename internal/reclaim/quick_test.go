package reclaim

import (
	"testing"
	"testing/quick"

	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

// TestQuickAllSchemesSoundUnderChaos is the cross-scheme soundness
// battery: random seeds, chaos scheduling, every reclaiming scheme, on
// the checked heap.  Any premature free panics the run; any leak fails
// the final accounting.  This is the schedule-fuzzing analog of running
// the paper's stress on many machines.
func TestQuickAllSchemesSoundUnderChaos(t *testing.T) {
	f := func(seedRaw uint8, schemeRaw uint8) bool {
		seed := int64(seedRaw) + 1
		name := reclaimingSchemes[int(schemeRaw)%len(reclaimingSchemes)]
		s := simt.New(simt.Config{
			Cores: 2, Quantum: 3_000, Seed: seed, Chaos: true,
			MaxCycles: 4_000_000_000,
			Heap:      simmem.Config{Words: 1 << 19, Check: true, Poison: true},
		})
		sc := makeScheme(name, s)
		disc := sc.Discipline()
		nWorkers := 3
		flushLeft := -1
		workers := make([]*simt.Thread, nWorkers)
		for w := 0; w < nWorkers; w++ {
			workers[w] = s.Spawn("worker", func(th *simt.Thread) {
				for j := 0; j < 25; j++ {
					sc.BeginOp(th)
					allocNode(th, 2, uint64(j))
					held := th.Reg(2)
					if disc != DisciplineNone {
						sc.Protect(th, 0, 2)
					}
					for k := 0; k < 2; k++ {
						allocNode(th, 14, 7)
						junk := th.Reg(14)
						th.SetReg(14, 0)
						sc.Retire(th, junk)
					}
					th.Load(3, 2, 0)
					if th.Reg(3) != uint64(j) {
						t.Errorf("%s seed %d: held node corrupted", name, seed)
					}
					th.SetReg(2, 0)
					th.SetReg(3, 0)
					sc.EndOp(th)
					sc.BeginOp(th)
					sc.Retire(th, held)
					sc.EndOp(th)
				}
			})
		}
		// A dedicated closer waits until every worker has fully exited
		// (exit hooks orphan their retire lists), then flushes — the
		// deterministic teardown an application would run.
		s.Spawn("closer", func(th *simt.Thread) {
			for {
				done := true
				for _, w := range workers {
					if !w.Exited() {
						done = false
					}
				}
				if done {
					break
				}
				th.Pause()
			}
			flushLeft = sc.Flush(th)
		})
		if err := s.Run(); err != nil {
			t.Logf("%s seed %d: %v", name, seed, err)
			return false
		}
		if flushLeft != 0 {
			t.Logf("%s seed %d: flush left %d", name, seed, flushLeft)
			return false
		}
		if live := s.Heap().Stats().LiveBlocks; live != 0 {
			t.Logf("%s seed %d: leaked %d", name, seed, live)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleRetireIsAbsorbed: retiring the same node twice is an
// application bug (the paper requires each node be unlinked and freed
// once), but it must not corrupt the heap: the collect's sort+dedup
// absorbs the duplicate, frees the address exactly once, and reports
// the bug through the DoubleRetires counter instead of a double free.
func TestDoubleRetireIsAbsorbed(t *testing.T) {
	s := testSim(1, 31)
	ts := makeScheme("threadscan", s)
	s.Spawn("bug", func(th *simt.Thread) {
		node := allocNode(th, 0, 1)
		th.SetReg(0, 0)
		ts.Retire(th, node)
		ts.Retire(th, node) // double retire
		churn(ts, th, 64)   // force collects
		ts.Flush(th)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("double retire corrupted the heap: %v", err)
	}
	st := ts.Stats()
	if st.DoubleRetires != 1 {
		t.Fatalf("DoubleRetires = %d, want 1", st.DoubleRetires)
	}
	// The absorbed duplicate counts as freed, so the footprint metric
	// does not report it as phantom garbage forever.
	if st.Retired != st.Freed {
		t.Fatalf("accounting: retired %d freed %d double %d",
			st.Retired, st.Freed, st.DoubleRetires)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// TestHiddenPointerViolatesAssumption demonstrates why the paper's
// Assumption 1.3 (no pointer obfuscation) is necessary: a reference
// hidden by XOR is invisible to the scan, the node is reclaimed, and
// the subsequent dereference is caught as use-after-free by the checked
// heap.  This is documented behaviour, not a bug — conservative GCs
// make the same assumption.
func TestHiddenPointerViolatesAssumption(t *testing.T) {
	s := testSim(2, 33)
	ts := makeScheme("threadscan", s)
	const mask = 0xABCDEF
	hidden := false
	var obfuscated uint64
	s.Spawn("hider", func(th *simt.Thread) {
		node := allocNode(th, 0, 9)
		obfuscated = node ^ mask // hide the only reference
		th.SetReg(0, 0)
		ts.Retire(th, node)
		hidden = true
		th.Work(2_000_000) // let the churner reclaim
		th.SetReg(0, obfuscated^mask)
		th.Load(1, 0, 0) // use-after-free: the scan could not see us
	})
	s.Spawn("churner", func(th *simt.Thread) {
		for !hidden {
			th.Pause()
		}
		churn(ts, th, 64)
	})
	err := s.Run()
	var v *simmem.Violation
	if !asViolation(err, &v) || v.Kind != simmem.VUseAfterFree {
		t.Fatalf("expected the hidden pointer to cause a detected UAF, got %v", err)
	}
}

// asViolation unwraps err looking for a *simmem.Violation.
func asViolation(err error, out **simmem.Violation) bool {
	for err != nil {
		if v, ok := err.(*simmem.Violation); ok {
			*out = v
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestEpochIdleThreadDoesNotBlockReclaim: a thread that never runs
// operations is quiescent and must not stall grace periods (only
// *mid-operation* threads do).
func TestEpochIdleThreadDoesNotBlockReclaim(t *testing.T) {
	s := testSim(2, 35)
	e := NewEpoch(s, EpochConfig{Batch: 8})
	s.Spawn("idle", func(th *simt.Thread) {
		th.Work(3_000_000) // never calls BeginOp
	})
	s.Spawn("worker", func(th *simt.Thread) {
		churn(e, th, 40)
		if left := e.Flush(th); left != 0 {
			t.Errorf("flush left %d", left)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Freed != 40 {
		t.Fatalf("stats: %+v", e.Stats())
	}
	// The idle thread cannot have forced waits longer than the run.
	if e.Stats().GraceWaitCycles > 3_000_000 {
		t.Fatalf("grace waits absurdly long: %d", e.Stats().GraceWaitCycles)
	}
}

// TestStackTrackSegmentLengthTradeoff: shorter segments publish more
// often (higher Protect overhead), which is the knob the real
// StackTrack turns; both settings must stay sound.
func TestStackTrackSegmentLengthTradeoff(t *testing.T) {
	run := func(segment int) (uint64, int64) {
		s := testSim(2, 37)
		st := NewStackTrack(s, StackTrackConfig{SegmentLen: segment, Batch: 16})
		var cycles int64
		s.Spawn("w", func(th *simt.Thread) {
			for j := 0; j < 60; j++ {
				st.BeginOp(th)
				allocNode(th, 2, uint64(j))
				for k := 0; k < 8; k++ {
					st.Protect(th, 0, 2) // traversal steps
				}
				held := th.Reg(2)
				th.SetReg(2, 0)
				st.Retire(th, held)
				st.EndOp(th)
			}
			st.Flush(th)
			cycles = th.Cycles()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return st.Stats().Freed, cycles
	}
	freedShort, cyclesShort := run(2)
	freedLong, cyclesLong := run(32)
	if freedShort != 60 || freedLong != 60 {
		t.Fatalf("freed: %d / %d", freedShort, freedLong)
	}
	if cyclesShort <= cyclesLong {
		t.Fatalf("short segments should cost more: %d vs %d", cyclesShort, cyclesLong)
	}
}
