package reclaim

import (
	"testing"
	"testing/quick"

	"threadscan/internal/core"
	"threadscan/internal/simmem"
	"threadscan/internal/simt"
)

// Teardown under churn: the PR 2 leak fixes (Epoch.Flush stealing
// other threads' retire lists, ThreadScan's flush draining live rings)
// were only ever tested against a *quiescent* thread set.  These tests
// run Flush while churned threads are still mid-collect: spawning,
// retiring, and exiting concurrently with the flusher, on the checked
// heap (any unsound free panics the run).

// TestEpochFlushDuringChurnedThreads: a closer repeatedly flushes
// while churn workers — spawned mid-run from a live parent — retire
// and exit underneath it.  A flush that runs between a worker's last
// Retire and its exit hook sees a registered thread with a non-empty
// retire list; one that races the exit hook sees fresh orphans.  Both
// must drain without leaks or double frees, and the final flush must
// leave nothing.
func TestEpochFlushDuringChurnedThreads(t *testing.T) {
	for _, seed := range []int64{3, 11, 23} {
		s := testSim(3, seed)
		e := NewEpoch(s, EpochConfig{Batch: 16})
		workersDone := 0
		const generations, perGen = 3, 2
		parent := make([]*simt.Thread, 0, generations*perGen)
		s.Spawn("spawner", func(th *simt.Thread) {
			for g := 0; g < generations; g++ {
				for j := 0; j < perGen; j++ {
					w := s.SpawnFrom(th, "churned", func(w *simt.Thread) {
						churn(e, w, 40)
						workersDone++
					})
					parent = append(parent, w)
				}
				th.Work(30_000)
			}
		})
		s.Spawn("closer", func(th *simt.Thread) {
			// Flush continuously while the churn is in flight — not
			// after it settles.
			for workersDone < generations*perGen {
				e.Flush(th)
				th.Work(5_000)
			}
			// The last workers may exit after our last mid-run flush;
			// wait for their exit hooks, then flush the remains.
			for {
				alive := false
				for _, w := range parent {
					if !w.Exited() {
						alive = true
					}
				}
				if !alive && len(parent) == generations*perGen {
					break
				}
				th.Pause()
			}
			if left := e.Flush(th); left != 0 {
				t.Errorf("seed %d: final flush left %d nodes", seed, left)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if live := s.Heap().Stats().LiveBlocks; live != 0 {
			t.Fatalf("seed %d: leaked %d blocks", seed, live)
		}
		st := e.Stats()
		if st.Retired != st.Freed {
			t.Fatalf("seed %d: retired %d freed %d", seed, st.Retired, st.Freed)
		}
	}
}

// TestThreadScanFlushDuringChurnedThreads: same shape through the
// ThreadScan core — FlushAll runs while churned threads fill rings,
// trigger their own collects, and exit (their buffers orphaned or, in
// per-node mode, routed by tag).  Classic, sharded, and per-node
// pipelines all must end empty.
func TestThreadScanFlushDuringChurnedThreads(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
		numa bool
	}{
		{"classic", core.Config{BufferSize: 16}, false},
		{"sharded-help", core.Config{BufferSize: 16, Shards: 8, HelpFree: true, HelpFreeChunk: 8}, false},
		{"pernode", core.Config{BufferSize: 16, Shards: 8, HelpFree: true, PerNode: true}, true},
	}
	for _, tc := range cases {
		for _, seed := range []int64{5, 19} {
			cfg := simt.Config{
				Cores: 4, Quantum: 5_000, Seed: seed, Chaos: true,
				MaxCycles: 4_000_000_000,
				Heap:      simmem.Config{Words: 1 << 20, Check: true, Poison: true},
			}
			if tc.numa {
				cfg.Nodes = 2
				cfg.Chaos = false // pinning + chaos quantum jitter is slow; determinism suffices
			}
			s := simt.New(cfg)
			ts := NewThreadScan(s, tc.cfg)
			workersDone := 0
			const total = 6
			s.Spawn("spawner", func(th *simt.Thread) {
				for g := 0; g < 3; g++ {
					for j := 0; j < 2; j++ {
						w := s.SpawnFrom(th, "churned", func(w *simt.Thread) {
							churn(ts, w, 60)
							workersDone++
						})
						if tc.numa {
							w.Pin((g + j) % 2)
						}
					}
					th.Work(40_000)
				}
			})
			s.Spawn("closer", func(th *simt.Thread) {
				for workersDone < total {
					ts.Flush(th)
					th.Work(4_000)
				}
				// All workers have run; let exit hooks land, then drain.
				th.Work(50_000)
				if left := ts.Flush(th); left != 0 {
					t.Errorf("%s seed %d: final flush left %d", tc.name, seed, left)
				}
			})
			if err := s.Run(); err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			if live := s.Heap().Stats().LiveBlocks; live != 0 {
				t.Fatalf("%s seed %d: leaked %d blocks", tc.name, seed, live)
			}
			if reg := ts.Core().RegisteredThreads(); reg != 0 {
				t.Fatalf("%s seed %d: %d threads still registered", tc.name, seed, reg)
			}
			st := ts.Stats()
			if st.Retired != st.Freed {
				t.Fatalf("%s seed %d: retired %d freed %d pending %d",
					tc.name, seed, st.Retired, st.Freed, st.Pending)
			}
		}
	}
}

// TestQuickFlushConcurrentWithChurnAllSchemes (property): random
// seeds, every reclaiming scheme, a flusher hammering Flush while
// churned threads live and die.  The checked heap rejects any unsound
// free; the accounting rejects any leak.
func TestQuickFlushConcurrentWithChurnAllSchemes(t *testing.T) {
	f := func(seedRaw uint8, schemeRaw uint8) bool {
		seed := int64(seedRaw) + 1
		name := reclaimingSchemes[int(schemeRaw)%len(reclaimingSchemes)]
		s := simt.New(simt.Config{
			Cores: 2, Quantum: 3_000, Seed: seed, Chaos: true,
			MaxCycles: 4_000_000_000,
			Heap:      simmem.Config{Words: 1 << 19, Check: true, Poison: true},
		})
		sc := makeScheme(name, s)
		workersDone := 0
		const total = 4
		s.Spawn("spawner", func(th *simt.Thread) {
			for g := 0; g < 2; g++ {
				for j := 0; j < 2; j++ {
					s.SpawnFrom(th, "churned", func(w *simt.Thread) {
						churn(sc, w, 25)
						workersDone++
					})
				}
				th.Work(20_000)
			}
		})
		flushLeft := -1
		s.Spawn("closer", func(th *simt.Thread) {
			for workersDone < total {
				sc.Flush(th)
				th.Work(2_000)
			}
			th.Work(30_000)
			flushLeft = sc.Flush(th)
		})
		if err := s.Run(); err != nil {
			t.Logf("%s seed %d: %v", name, seed, err)
			return false
		}
		if flushLeft != 0 {
			t.Logf("%s seed %d: flush left %d", name, seed, flushLeft)
			return false
		}
		if live := s.Heap().Stats().LiveBlocks; live != 0 {
			t.Logf("%s seed %d: leaked %d", name, seed, live)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
