package reclaim

import (
	"sort"

	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// StackTrack is a non-HTM analog of StackTrack (Alistarh et al.,
// EuroSys'14 [2]), the paper's closest prior work: operations are split
// into short segments, and at every segment boundary a thread publishes
// a *shadow copy* of its registers and stack that reclaimers scan in
// lieu of signal-driven scanning.
//
// Where the real system uses hardware transactions to make each
// segment's register state atomically visible, this reproduction uses a
// seqlock-style publication counter: a reclaimer waits until every
// in-operation thread has published at least once after the reclaim
// began, which guarantees any continuously-held reference appears in
// the shadow it scans (unreachable nodes can never be re-acquired, so
// a reference missing from a later shadow can never be used again).
//
// The instructive contrast with ThreadScan: publication is *eager*
// (every segment, whether or not anyone is reclaiming), so its cost
// scales with traversal length like hazard pointers — but without the
// per-read fence, so it sits between Hazard and ThreadScan.  And like
// Epoch, a stalled thread stalls reclaimers: only the signal mechanism
// removes that dependence.
type StackTrack struct {
	sim *simt.Sim
	cfg StackTrackConfig

	shadows  [][]uint64 // [threadID] last published root set
	segCount []uint64   // [threadID] publications so far
	inOp     []bool     // [threadID] currently inside an operation
	live     []bool     // [threadID]
	sincePub []int      // [threadID] Protect calls since last publish
	retired  [][]uint64 // [threadID]
	orphans  []uint64

	stats Stats
}

// StackTrackConfig parameterizes the scheme.
type StackTrackConfig struct {
	// SegmentLen is the number of Protect (traversal-step) calls
	// between publications.  StackTrack's split-interval; defaults
	// to 16.
	SegmentLen int

	// Batch is the retire count that triggers reclamation.  Defaults
	// to 1024.
	Batch int

	// Obs, when non-nil, records retire latency, reclaim-pass spans,
	// and publication waits.  Never charges virtual cycles.
	Obs *obs.Recorder
}

func (c *StackTrackConfig) fill() {
	if c.SegmentLen <= 0 {
		c.SegmentLen = 16
	}
	if c.Batch <= 0 {
		c.Batch = 1024
	}
}

// NewStackTrack creates a StackTrack-style domain bound to sim.
func NewStackTrack(sim *simt.Sim, cfg StackTrackConfig) *StackTrack {
	cfg.fill()
	st := &StackTrack{sim: sim, cfg: cfg}
	sim.OnThreadStart(st.threadStart)
	sim.OnThreadExit(st.threadExit)
	return st
}

func (st *StackTrack) threadStart(t *simt.Thread) {
	id := t.ID()
	for len(st.shadows) <= id {
		st.shadows = append(st.shadows, nil)
		st.segCount = append(st.segCount, 0)
		st.inOp = append(st.inOp, false)
		st.live = append(st.live, false)
		st.sincePub = append(st.sincePub, 0)
		st.retired = append(st.retired, nil)
	}
	st.live[id] = true
}

func (st *StackTrack) threadExit(t *simt.Thread) {
	id := t.ID()
	st.live[id] = false
	st.inOp[id] = false
	st.shadows[id] = st.shadows[id][:0]
	st.orphans = append(st.orphans, st.retired[id]...)
	st.retired[id] = nil
}

// Name implements Scheme.
func (st *StackTrack) Name() string { return "stacktrack" }

// Discipline implements Scheme: per-step publication, no validation.
func (st *StackTrack) Discipline() Discipline { return DisciplinePublish }

// publish copies the thread's current root set into its shadow and
// bumps the publication counter — the analog of an HTM segment commit.
func (st *StackTrack) publish(t *simt.Thread) {
	id := t.ID()
	c := st.sim.Config().Costs
	sh := st.shadows[id][:0]
	t.ScanRoots(func(w uint64) { sh = append(sh, w) })
	st.shadows[id] = sh
	t.Charge(int64(len(sh))*c.Store + c.Fence)
	st.segCount[id]++
	st.sincePub[id] = 0
}

// BeginOp implements Scheme: mark active and publish the entry state.
func (st *StackTrack) BeginOp(t *simt.Thread) {
	st.inOp[t.ID()] = true
	st.publish(t)
}

// EndOp implements Scheme: publish the (reference-free) exit state,
// mark quiescent, then reclaim if the batch filled.
func (st *StackTrack) EndOp(t *simt.Thread) {
	id := t.ID()
	st.inOp[id] = false
	st.publish(t)
	if len(st.retired[id]) >= st.cfg.Batch || len(st.orphans) >= st.cfg.Batch {
		st.reclaim(t)
	}
}

// Protect implements Scheme: count the step and publish at segment
// boundaries.  No validation needed (false) — safety comes from the
// reclaimer's wait-for-publication, not from re-reads.
func (st *StackTrack) Protect(t *simt.Thread, _ int, _ int) bool {
	id := t.ID()
	st.stats.Protects++
	st.sincePub[id]++
	if st.sincePub[id] >= st.cfg.SegmentLen {
		st.publish(t)
	}
	return false
}

// Retire implements Scheme.
func (st *StackTrack) Retire(t *simt.Thread, addr uint64) {
	id := t.ID()
	start := t.Now()
	t.Charge(st.sim.Config().Costs.Store)
	st.stats.Retired++
	st.stats.notePeak()
	st.retired[id] = append(st.retired[id], addr&^7)
	st.cfg.Obs.Observe(t, obs.StageRetire, t.Now()-start)
}

// reclaim scans shadows and frees unreferenced retirees.  Called at a
// quiescent point (EndOp), like Epoch, so reclaimers cannot block each
// other.
func (st *StackTrack) reclaim(t *simt.Thread) {
	c := st.sim.Config().Costs
	id := t.ID()
	st.stats.ReclaimPasses++
	st.cfg.Obs.Begin(t, obs.StageCollect)
	defer st.cfg.Obs.End(t)

	// Steal the orphan list atomically (no safepoint intervenes) so
	// concurrent reclaimers cannot both free it.
	nOwn := len(st.retired[id])
	stolen := st.orphans
	st.orphans = nil
	candidates := make([]uint64, 0, nOwn+len(stolen))
	candidates = append(candidates, st.retired[id][:nOwn]...)
	candidates = append(candidates, stolen...)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	t.Charge(int64(len(candidates)) * int64(log2ceil(len(candidates)+1)) * 2 * c.Step)
	marks := make([]bool, len(candidates))

	// Wait for every in-operation thread to publish once more, then
	// scan its latest shadow.  A reference held continuously since
	// before the retire appears in every publication while held.
	snap := make([]uint64, len(st.segCount))
	for i := range st.segCount {
		t.Charge(c.Load)
		snap[i] = st.segCount[i]
	}
	waitStart := t.Cycles()
	waitFrom := t.Now()
	waited := false
	for i := range snap {
		if i == id || !st.live[i] {
			continue
		}
		for st.live[i] && st.inOp[i] && st.segCount[i] == snap[i] {
			waited = true
			t.Pause()
		}
		for _, w := range st.shadows[i] {
			st.mark(t, w, candidates, marks)
		}
	}
	if waited {
		st.stats.GraceWaits++
		st.stats.GraceWaitCycles += t.Cycles() - waitStart
		st.cfg.Obs.Window(t, obs.StageGraceWait, waitFrom, t.Now()-waitFrom)
	}
	// Scan our own live roots directly (we have no fresher shadow).
	t.ScanRoots(func(w uint64) { st.mark(t, w, candidates, marks) })

	// Marked nodes (own and stolen alike) stay on our retire list for a
	// later pass; the rest are freed.
	var kept []uint64
	for i, addr := range candidates {
		if marks[i] {
			kept = append(kept, addr)
			continue
		}
		t.FreeAddr(addr)
		st.stats.Freed++
	}
	kept = append(kept, st.retired[id][nOwn:]...)
	st.retired[id] = kept
}

func (st *StackTrack) mark(t *simt.Thread, w uint64, candidates []uint64, marks []bool) {
	c := st.sim.Config().Costs
	p := w &^ 7
	t.Charge(int64(log2ceil(len(candidates)+1)) * (c.Load + c.Step))
	i := sort.Search(len(candidates), func(i int) bool { return candidates[i] >= p })
	if i < len(candidates) && candidates[i] == p {
		marks[i] = true
	}
}

// Flush implements Scheme.
func (st *StackTrack) Flush(t *simt.Thread) int {
	for i := 0; i < 3; i++ {
		before := st.stats.Freed
		st.reclaim(t)
		if st.stats.Freed == before {
			break
		}
	}
	return int(st.pending())
}

func (st *StackTrack) pending() uint64 {
	n := uint64(len(st.orphans))
	for _, r := range st.retired {
		n += uint64(len(r))
	}
	return n
}

// Stats implements Scheme.
func (st *StackTrack) Stats() Stats {
	s := st.stats
	s.Pending = st.pending()
	s.MaxPauseCycles = st.cfg.Obs.MaxPause()
	return s
}
