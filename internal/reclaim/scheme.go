// Package reclaim defines the common interface for concurrent memory
// reclamation schemes and implements every technique the paper
// evaluates (§6 "Techniques"):
//
//   - Leaky        — no reclamation (the paper's baseline ceiling)
//   - Hazard       — hazard pointers (Michael), per-read publication
//   - Epoch        — epoch-based reclamation (Harris/McKenney)
//   - Slow Epoch   — Epoch with an errant delayed thread (Epoch config)
//   - ThreadScan   — adapter over internal/core (the contribution)
//   - StackTrack   — extension: a non-HTM analog of StackTrack's
//     split-operation published live-sets (the paper's §1.1/[2] comparator)
//
// Data structures talk to schemes through three touch points, mirroring
// how the paper instruments its benchmarks: BeginOp/EndOp around every
// operation (epochs), Protect on traversal steps (hazards / publication),
// and Retire for unlinked nodes.
package reclaim

import "threadscan/internal/simt"

// Discipline describes what per-access cooperation a scheme demands of
// data-structure code.  This is exactly the paper's programmability
// axis: ThreadScan and Leaky need none, epochs need per-op brackets,
// hazard pointers need per-read publication and validation.
type Discipline int

const (
	// DisciplineNone: no per-read work (Leaky, Epoch, ThreadScan).
	DisciplineNone Discipline = iota
	// DisciplineHazard: publish each about-to-be-dereferenced pointer
	// and re-validate the link before trusting it.
	DisciplineHazard
	// DisciplinePublish: publish traversal state periodically, no
	// validation (StackTrack-style split operations).
	DisciplinePublish
	// DisciplineEra: refresh a per-thread era reservation on each
	// traversal step and re-validate the link, like hazard pointers but
	// with a plain store (no fence) — interval/era-based schemes
	// (Hyaline-style robust reclamation).
	DisciplineEra
)

func (d Discipline) String() string {
	switch d {
	case DisciplineNone:
		return "none"
	case DisciplineHazard:
		return "hazard"
	case DisciplinePublish:
		return "publish"
	case DisciplineEra:
		return "era"
	default:
		return "unknown"
	}
}

// Scheme is a concurrent memory reclamation scheme.  All methods are
// called from the acting thread's own context.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string

	// Discipline reports the per-access cooperation contract.
	Discipline() Discipline

	// BeginOp brackets the start of one data-structure operation.
	BeginOp(t *simt.Thread)

	// EndOp brackets the end of one operation.  Schemes that reclaim at
	// quiescent points (Epoch, StackTrack) do their reclamation here.
	EndOp(t *simt.Thread)

	// Protect publishes register reg's value under the per-thread slot
	// index, returning true when the caller must re-validate the link
	// it read the pointer from before dereferencing (hazard pointers).
	Protect(t *simt.Thread, slot int, reg int) bool

	// Retire hands over a node that has been unlinked from every shared
	// reference (the paper's free()).  The scheme decides when the
	// underlying memory is returned to the allocator.
	Retire(t *simt.Thread, addr uint64)

	// Flush reclaims everything still reclaimable; called at teardown
	// after application threads have dropped their references.  Returns
	// the number of nodes the scheme still holds (0 for full reclaim;
	// Leaky reports its whole graveyard).
	Flush(t *simt.Thread) int

	// Stats returns scheme counters.
	Stats() Stats
}

// BirthStamper is an optional extension: schemes that key reclamation
// decisions on allocation order (interval/era-based robust schemes)
// implement it, and data-structure code stamps every freshly allocated
// node right after Thread.Alloc.  A node that was never stamped — e.g.
// a host-allocated sentinel later retired through the scheme — must be
// treated conservatively (as old as the scheme has ever seen).
type BirthStamper interface {
	NoteAlloc(t *simt.Thread, addr uint64)
}

// Stats aggregates scheme activity.  Fields not applicable to a scheme
// stay zero.
type Stats struct {
	Retired         uint64 // nodes handed to Retire
	Freed           uint64 // nodes returned to the allocator
	Leaked          uint64 // nodes the scheme will never free (Leaky)
	Pending         uint64 // nodes currently buffered
	ReclaimPasses   uint64 // scans / grace periods / collects
	GraceWaits      uint64 // blocking waits for other threads
	GraceWaitCycles int64  // virtual cycles spent in those waits
	Protects        uint64 // Protect calls (hazard/publish traffic)

	// PeakRetired is the exact running maximum of retired-but-unfreed
	// nodes, updated at every Retire and free — the Hyaline-style
	// robustness metric.  Unlike the footprint sampler's peak it cannot
	// alias between sample instants (a burst reclaimed within one
	// SampleEvery window still registers).  Zero for Leaky, whose
	// graveyard is counted in Leaked instead.
	PeakRetired uint64

	// MaxPauseCycles is the longest any thread spent blocked in a scan
	// handler, at the scan-barrier handshake, or in a grace-period wait.
	// Populated only when the scheme was built with an obs.Recorder
	// (zero otherwise, and always zero for Leaky — it never blocks).
	MaxPauseCycles int64

	// Sharded-collect pipeline counters (ThreadScan; zero elsewhere).
	Shards        int    // configured shard count K
	ShardsSorted  uint64 // shard sort/build passes across all collects
	HelpSorted    uint64 // shards sorted inside scanner handlers
	HelpSwept     uint64 // per-shard free lists swept by scanners
	DoubleRetires uint64 // duplicate retires of one address absorbed

	// NUMA shard-affinity counters (ThreadScan on a multi-node
	// topology; zero elsewhere and on the flat machine).
	LocalShardClaims  uint64 // shard work units claimed on their home node
	RemoteShardClaims uint64 // shard work units claimed cross-node
	RemoteLineFills   uint64 // machine-wide cross-node line fills (sim stat)

	// Per-node reclamation counters (ThreadScan with PerNode routing;
	// zero/nil elsewhere).  SweepRemoteFills counts steady-state sweep
	// frees that touched a remotely-homed line (the traffic per-node
	// routing eliminates); NodeCollects/NodeReclaimed break collects
	// and frees down by home node; the Stolen counters record
	// cross-node rebalancing past the steal threshold.
	SweepRemoteFills uint64
	NodeCollects     []uint64
	NodeReclaimed    []uint64
	StolenCollects   uint64
	StolenSweeps     uint64

	// OverlappedCollects counts collect phases that began while another
	// node's collect was already in flight — nonzero only with PerNode
	// concurrent collects (SerializeCollects off).
	OverlappedCollects uint64

	// Allocation-subsystem counters (machine-wide, mirrored from the
	// simulated heap's per-node pools by the ThreadScan adapter like
	// RemoteLineFills; zero elsewhere and on a single-pool heap).
	// AllocRemoteFills counts allocations handed a block whose lines
	// were last homed on another node (the alloc-side cross-socket
	// traffic a global pool causes); RemoteAllocs counts blocks served
	// outside their home region; HomeFrees/RemoteFrees split sweep-side
	// frees by whether they routed into the freeing node's own pool or
	// crossed the interconnect into a remote-free inbox.
	AllocRemoteFills uint64
	RemoteAllocs     uint64
	HomeFrees        uint64
	RemoteFrees      uint64
}

// notePeak records the current retired-minus-freed backlog into
// PeakRetired.  Schemes call it after every Retire: the backlog only
// grows at retire time, so its maxima land exactly there.  Host-side
// bookkeeping only — never charges virtual cycles, so enabling the
// metric cannot perturb a captured baseline.
func (s *Stats) notePeak() {
	if p := s.Retired - s.Freed; p > s.PeakRetired {
		s.PeakRetired = p
	}
}

// maxThreadID sizes per-thread state arrays.  Schemes grow their
// arrays in thread-start hooks; 1024 bounds the simulations used here.
const maxThreadID = 1024
