package reclaim

import (
	"sort"

	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// Hazard implements hazard pointers as introduced by Michael [37],
// the paper's main pointer-based comparator.  Before dereferencing a
// node, a thread publishes its address in one of its hazard slots and
// issues a memory fence, then re-validates the link it read the pointer
// from.  A reclaiming thread scans every thread's slots and frees only
// retired nodes nobody has hazarded.
//
// The per-read fence is the cost the paper's §6 highlights: "each step
// requires a barrier, even in a non-mutating operation" — ruinous on
// the O(n) list and O(log n) skip list, tolerable on short hash
// buckets.
type Hazard struct {
	sim *simt.Sim
	cfg HazardConfig

	slots   [][]uint64 // [threadID][slot] published addresses
	retired [][]uint64 // [threadID] retire lists
	orphans []uint64   // retire lists of exited threads

	stats Stats
}

// HazardConfig parameterizes the scheme.
type HazardConfig struct {
	// Slots is the number of hazard pointers per thread.  The list and
	// hash table need 2 (prev, curr); the skip list uses up to 4.
	// Defaults to 4.
	Slots int

	// Batch is the retire-list length that triggers a scan.  Defaults
	// to 1024, matching the other schemes' reclamation granularity.
	Batch int

	// Obs, when non-nil, records retire latency and scan-pass spans.
	// Never charges virtual cycles.
	Obs *obs.Recorder
}

func (c *HazardConfig) fill() {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.Batch <= 0 {
		c.Batch = 1024
	}
}

// NewHazard creates a hazard-pointer domain bound to sim.
func NewHazard(sim *simt.Sim, cfg HazardConfig) *Hazard {
	cfg.fill()
	h := &Hazard{sim: sim, cfg: cfg}
	sim.OnThreadStart(h.threadStart)
	sim.OnThreadExit(h.threadExit)
	return h
}

func (h *Hazard) threadStart(t *simt.Thread) {
	id := t.ID()
	for len(h.slots) <= id {
		h.slots = append(h.slots, nil)
		h.retired = append(h.retired, nil)
	}
	h.slots[id] = make([]uint64, h.cfg.Slots)
}

func (h *Hazard) threadExit(t *simt.Thread) {
	id := t.ID()
	for i := range h.slots[id] {
		h.slots[id][i] = 0
	}
	// Hand unprocessed retirees to the community.
	h.orphans = append(h.orphans, h.retired[id]...)
	h.retired[id] = nil
}

// Name implements Scheme.
func (h *Hazard) Name() string { return "hazard" }

// Discipline implements Scheme: hazard publication with validation.
func (h *Hazard) Discipline() Discipline { return DisciplineHazard }

// BeginOp implements Scheme (hazards carry no per-op state).
func (h *Hazard) BeginOp(*simt.Thread) {}

// EndOp implements Scheme by clearing the thread's hazard slots, so
// finished operations stop pinning nodes.
func (h *Hazard) EndOp(t *simt.Thread) {
	c := h.sim.Config().Costs
	slots := h.slots[t.ID()]
	for i := range slots {
		if slots[i] != 0 {
			slots[i] = 0
			t.Charge(c.Store)
		}
	}
}

// Protect implements Scheme: publish regs[reg] in the slot and fence.
// Returns true — hazard pointers require the caller to re-validate the
// link before trusting the protected pointer.
func (h *Hazard) Protect(t *simt.Thread, slot int, reg int) bool {
	c := h.sim.Config().Costs
	h.slots[t.ID()][slot] = t.Reg(reg) &^ 7
	t.Charge(c.Store)
	t.Fence()
	h.stats.Protects++
	return true
}

// Retire implements Scheme: buffer the node; scan when the batch fills.
// Like ThreadScan's Retire, the histogram includes any scan the call
// triggered — the retire that fills the batch pays for the pass.
func (h *Hazard) Retire(t *simt.Thread, addr uint64) {
	addr &^= 7
	start := t.Now()
	c := h.sim.Config().Costs
	t.Charge(c.Store)
	h.stats.Retired++
	h.stats.notePeak()
	id := t.ID()
	h.retired[id] = append(h.retired[id], addr)
	if len(h.retired[id])+len(h.orphans) >= h.cfg.Batch {
		h.scan(t)
	}
	h.cfg.Obs.Observe(t, obs.StageRetire, t.Now()-start)
}

// scan is Michael's Scan: snapshot all hazard slots, free every retired
// node not present, keep the rest.
func (h *Hazard) scan(t *simt.Thread) {
	c := h.sim.Config().Costs
	h.stats.ReclaimPasses++
	id := t.ID()
	h.cfg.Obs.Begin(t, obs.StageCollect)
	defer h.cfg.Obs.End(t)

	// Snapshot every thread's hazard slots, including our own: Retire
	// can run mid-traversal, and our own published pointers must pin
	// their nodes too.
	var hazards []uint64
	for _, slots := range h.slots {
		if slots == nil {
			continue
		}
		for _, v := range slots {
			t.Charge(c.Load) // cross-thread cache line read
			if v != 0 {
				hazards = append(hazards, v)
			}
		}
	}
	sort.Slice(hazards, func(i, j int) bool { return hazards[i] < hazards[j] })
	t.Charge(int64(len(hazards)) * 4 * c.Step)

	// Steal the orphan list atomically (no safepoint intervenes) so a
	// concurrent scan cannot free the same nodes, and so later exits
	// cannot append into a slice we are iterating.
	stolen := h.orphans
	h.orphans = nil
	candidates := make([]uint64, 0, len(h.retired[id])+len(stolen))
	candidates = append(candidates, h.retired[id]...)
	candidates = append(candidates, stolen...)
	var kept []uint64
	for _, addr := range candidates {
		i := sort.Search(len(hazards), func(i int) bool { return hazards[i] >= addr })
		t.Charge(int64(log2ceil(len(hazards)+1)) * (c.Load + c.Step))
		if i < len(hazards) && hazards[i] == addr {
			kept = append(kept, addr)
			continue
		}
		t.FreeAddr(addr)
		h.stats.Freed++
	}
	h.retired[id] = kept
}

// Flush implements Scheme: scan until nothing more frees.
func (h *Hazard) Flush(t *simt.Thread) int {
	for i := 0; i < 3; i++ {
		before := h.stats.Freed
		h.scan(t)
		if h.stats.Freed == before {
			break
		}
	}
	return int(h.pending())
}

func (h *Hazard) pending() uint64 {
	n := uint64(len(h.orphans))
	for _, r := range h.retired {
		n += uint64(len(r))
	}
	return n
}

// Stats implements Scheme.  MaxPauseCycles stays zero even with a
// recorder attached: hazard scans never block on other threads.
func (h *Hazard) Stats() Stats {
	s := h.stats
	s.Pending = h.pending()
	return s
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
