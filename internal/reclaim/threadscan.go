package reclaim

import (
	"threadscan/internal/core"
	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// ThreadScan adapts the core ThreadScan protocol (internal/core) to the
// Scheme interface.  This is the paper's contribution wired into the
// same harness as the baselines: no per-op brackets, no per-read
// publication — the application just calls Retire, exactly the "fully
// automatic" interface of §1.2.
type ThreadScan struct {
	ts    *core.ThreadScan
	sim   *simt.Sim
	obs   *obs.Recorder // == cfg.Obs; nil-safe on every call
	stats Stats
}

// NewThreadScan creates a ThreadScan domain bound to sim.
func NewThreadScan(sim *simt.Sim, cfg core.Config) *ThreadScan {
	return &ThreadScan{ts: core.New(sim, cfg), sim: sim, obs: cfg.Obs}
}

// Core exposes the underlying protocol instance (stats, heap-block
// extension, explicit collects).
func (s *ThreadScan) Core() *core.ThreadScan { return s.ts }

// Name implements Scheme.
func (s *ThreadScan) Name() string { return "threadscan" }

// Discipline implements Scheme: fully automatic, no per-read work.
func (s *ThreadScan) Discipline() Discipline { return DisciplineNone }

// BeginOp implements Scheme (no-op — nothing to bracket).
func (s *ThreadScan) BeginOp(*simt.Thread) {}

// EndOp implements Scheme (no-op).
func (s *ThreadScan) EndOp(*simt.Thread) {}

// Protect implements Scheme (no-op; scans find references themselves).
func (s *ThreadScan) Protect(*simt.Thread, int, int) bool { return false }

// Retire implements Scheme via the paper's free().  The retire
// histogram deliberately includes any collect the call triggered —
// ThreadScan's latency story is precisely that one retire in a batch
// pays for the whole phase.
func (s *ThreadScan) Retire(t *simt.Thread, addr uint64) {
	start := t.Now()
	// Exact backlog peak: retired-minus-freed is at a local maximum the
	// instant this node lands, before any collect the call triggers
	// frees a batch.  Counted from the core totals rather than ring
	// occupancy so orphaned rings and nodes popped mid-collect (out of
	// the buffers but not yet freed) still count as garbage.  Host-side
	// only; charges nothing.
	c := s.ts.Stats()
	if p := c.Frees + 1 - (c.Reclaimed + c.HelpFreed + c.DoubleRetires); p > s.stats.PeakRetired {
		s.stats.PeakRetired = p
	}
	s.ts.Free(t, addr)
	s.obs.Observe(t, obs.StageRetire, t.Now()-start)
}

// Flush implements Scheme.
func (s *ThreadScan) Flush(t *simt.Thread) int {
	return s.ts.FlushAll(t)
}

// Stats implements Scheme, translated from the core protocol counters.
// Absorbed double retires count as freed: the duplicate entry is
// resolved (dedup kept one copy), so it must not read as permanently
// unreclaimed garbage in the footprint metric.
func (s *ThreadScan) Stats() Stats {
	c := s.ts.Stats()
	hs := s.sim.Heap().Stats()
	return Stats{
		Retired:            c.Frees,
		PeakRetired:        s.stats.PeakRetired,
		MaxPauseCycles:     s.obs.MaxPause(),
		Freed:              c.Reclaimed + c.HelpFreed + c.DoubleRetires,
		Pending:            uint64(s.ts.Buffered()),
		ReclaimPasses:      c.Collects,
		Shards:             s.ts.Shards(),
		ShardsSorted:       c.ShardsSorted,
		HelpSorted:         c.HelpSortedShards,
		HelpSwept:          c.HelpSweptShards,
		DoubleRetires:      c.DoubleRetires,
		LocalShardClaims:   c.LocalShardClaims,
		RemoteShardClaims:  c.RemoteShardClaims,
		RemoteLineFills:    s.sim.Stats().RemoteLineFills,
		SweepRemoteFills:   c.SweepRemoteFills,
		NodeCollects:       c.NodeCollects,
		NodeReclaimed:      c.NodeReclaimed,
		StolenCollects:     c.StolenCollects,
		StolenSweeps:       c.StolenSweeps,
		OverlappedCollects: c.OverlappedCollects,
		AllocRemoteFills:   s.sim.Stats().AllocRemoteFills,
		RemoteAllocs:       hs.RemoteAllocs,
		HomeFrees:          hs.HomeFrees,
		RemoteFrees:        hs.RemoteFrees,
	}
}
