package reclaim

import "threadscan/internal/simt"

// Leaky is the paper's baseline: "the original memory leaking
// data-structure implementation without any memory reclamation" (§6).
// Retire is a no-op that abandons the node; nothing is ever freed.  It
// is the throughput ceiling every real scheme is measured against.
type Leaky struct {
	stats Stats
}

// NewLeaky creates the leaking baseline.  The sim parameter is accepted
// for constructor symmetry; Leaky installs no hooks.
func NewLeaky(_ *simt.Sim) *Leaky { return &Leaky{} }

// Name implements Scheme.
func (l *Leaky) Name() string { return "leaky" }

// Discipline implements Scheme: no per-read work.
func (l *Leaky) Discipline() Discipline { return DisciplineNone }

// BeginOp implements Scheme (no-op).
func (l *Leaky) BeginOp(*simt.Thread) {}

// EndOp implements Scheme (no-op).
func (l *Leaky) EndOp(*simt.Thread) {}

// Protect implements Scheme (no-op, no validation required).
func (l *Leaky) Protect(*simt.Thread, int, int) bool { return false }

// Retire implements Scheme by leaking the node.
func (l *Leaky) Retire(t *simt.Thread, addr uint64) {
	t.Charge(1)
	l.stats.Retired++
	l.stats.Leaked++
}

// Flush implements Scheme; the graveyard is permanent.
func (l *Leaky) Flush(*simt.Thread) int { return int(l.stats.Leaked) }

// Stats implements Scheme.
func (l *Leaky) Stats() Stats {
	s := l.stats
	s.Pending = s.Leaked
	return s
}
