package reclaim

import (
	"testing"

	"threadscan/internal/simt"
)

// The scheme contract: the clauses every family must satisfy so the
// harness (flush-before-final-sample, footprint accounting, teardown)
// can treat schemes interchangeably.  Table-driven over every family —
// including Leaky, whose graveyard gives the clauses a different but
// equally fixed shape:
//
//  1. Flush idempotence at quiescence: with no operation in flight, a
//     second Flush returns 0 for every reclaiming scheme (and reports
//     the same unchanged graveyard for Leaky) — Flush must not
//     manufacture work, double-free, or leave a remainder it would
//     only surrender on a later call.
//  2. Zero accounting skew: Freed never exceeds Retired.  The footprint
//     sampler clamps and flags exactly this (Footprint.AccountingSkew);
//     the contract pins it at the source.
//  3. Teardown-under-churn cleanliness: after workers that spawned,
//     retired, and exited mid-run (orphan paths) have quiesced and one
//     Flush has run, nothing is left — no pending nodes, no live heap
//     blocks (Leaky: exactly the graveyard), Retired == Freed + Leaked.
func TestSchemeContract(t *testing.T) {
	const workers, perWorker = 3, 30
	families := append([]string{"leaky"}, reclaimingSchemes...)
	for _, name := range families {
		name := name
		t.Run(name, func(t *testing.T) {
			s := testSim(3, 42)
			sc := makeScheme(name, s)
			done := 0
			s.Spawn("spawner", func(th *simt.Thread) {
				// Staggered generations: later workers churn while
				// earlier ones have already exited (orphaned buffers).
				for w := 0; w < workers; w++ {
					s.SpawnFrom(th, "churned", func(w *simt.Thread) {
						churn(sc, w, perWorker)
						done++
					})
					th.Work(25_000)
				}
			})
			var first, second = -1, -1
			s.Spawn("closer", func(th *simt.Thread) {
				for done < workers {
					th.Pause()
				}
				th.Work(100_000) // let exit hooks land; quiesce
				first = sc.Flush(th)
				second = sc.Flush(th)
			})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}

			st := sc.Stats()
			total := uint64(workers * perWorker)
			if st.Retired != total {
				t.Fatalf("retired %d, want %d", st.Retired, total)
			}

			// Clause 2: zero accounting skew.
			if st.Freed > st.Retired {
				t.Errorf("accounting skew: freed %d > retired %d", st.Freed, st.Retired)
			}

			live := s.Heap().Stats().LiveBlocks
			if name == "leaky" {
				// Leaky's shape: the graveyard is reported, stable
				// across flushes, fully leaked, and never freed.
				if first != int(total) || second != first {
					t.Errorf("graveyard reports: first %d second %d, want both %d", first, second, total)
				}
				if st.Leaked != total || st.Freed != 0 || live != total {
					t.Errorf("graveyard: leaked %d freed %d live %d, want %d/0/%d",
						st.Leaked, st.Freed, live, total, total)
				}
				return
			}

			// Clause 1: Flush idempotence at quiescence.
			if first != 0 {
				t.Errorf("first quiescent Flush left %d", first)
			}
			if second != 0 {
				t.Errorf("second Flush returned %d, want 0", second)
			}

			// Clause 3: teardown cleanliness.
			if st.Freed != total || st.Pending != 0 {
				t.Errorf("teardown: freed %d pending %d, want %d/0", st.Freed, st.Pending, total)
			}
			if live != 0 {
				t.Errorf("leaked %d heap blocks", live)
			}
		})
	}
}
