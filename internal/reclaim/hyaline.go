package reclaim

import (
	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// Hyaline implements a *robust* reclamation scheme in the spirit of
// Hyaline (Nikolaev & Ravindran, arXiv:1905.07903) and Crystalline
// (arXiv:2108.02763): retirement is wait-free, and the garbage a
// stalled thread can pin is bounded, independent of how long it stalls.
//
// Retired nodes accumulate in fixed-size batches.  Sealing a batch
// advances a global era and hands one reference to every thread whose
// operation could still reach a batch node; each such thread drops its
// reference in an O(batches-entered) adjustment pass at EndOp, and the
// batch frees the moment its count hits zero.  No thread ever waits
// for another: there is no grace period, no scan barrier, no handshake.
//
// Whether a reader "could still reach" a batch node is decided with
// interval-based era reservations (IBR, Wen et al., PPoPP'18 — the
// mechanism Crystalline layers over Hyaline's batch refcounts).  Every
// node is stamped with its allocation era (the BirthStamper hook); a
// thread publishes a reservation [lo, hi] at BeginOp and refreshes hi
// to the current era at every Protect.  A sealed batch skips any
// active reader whose hi is below the batch's minimum birth era: none
// of the batch's nodes existed at the reader's last refresh, and the
// validation step (Protect returns true) guarantees a reader only
// trusts pointers to nodes that existed before that refresh.  A
// preempted reader therefore pins only batches containing nodes born
// before it stalled — a set bounded by the live set at stall onset —
// while batches of newer garbage free underneath it.  That is the
// robustness contrast with Epoch (one odd counter stalls every grace
// period) and ThreadScan (one deaf thread stalls the scan barrier).
//
// A node never stamped — e.g. a host-allocated sentinel later retired
// through the scheme — defaults to birth era 0, the conservative "as
// old as anything" choice: its batch references every active reader.
type Hyaline struct {
	sim *simt.Sim
	cfg HyalineConfig

	era uint64 // global era; advances at every batch seal

	active  []bool       // [threadID] inside an operation
	lo      []uint64     // [threadID] reservation lower bound (BeginOp)
	hi      []uint64     // [threadID] reservation upper bound (Protect)
	cur     [][]uint64   // [threadID] partial (unsealed) batch
	entered [][]*hyBatch // [threadID] sealed batches holding our ref

	birth map[uint64]uint64 // addr -> allocation era (stamped nodes)

	stats Stats
}

// hyBatch is one sealed batch: its nodes, the minimum birth era across
// them, and the number of active readers still holding a reference.
type hyBatch struct {
	nodes    []uint64
	minBirth uint64
	refs     int
}

// HyalineConfig parameterizes the scheme.
type HyalineConfig struct {
	// Batch is the batch size sealed per reference-distribution pass.
	// Smaller batches bound pinned garbage tighter but distribute
	// references more often.  Defaults to 1024, matching the other
	// schemes' reclamation granularity.
	Batch int

	// Obs, when non-nil, records retire latency, seal passes, EndOp
	// adjustment spans, and batch-free spans.  Never charges virtual
	// cycles.
	Obs *obs.Recorder
}

func (c *HyalineConfig) fill() {
	if c.Batch <= 0 {
		c.Batch = 1024
	}
}

// NewHyaline creates a Hyaline-style robust reclamation domain bound
// to sim.
func NewHyaline(sim *simt.Sim, cfg HyalineConfig) *Hyaline {
	cfg.fill()
	h := &Hyaline{sim: sim, cfg: cfg, birth: make(map[uint64]uint64)}
	sim.OnThreadStart(h.threadStart)
	sim.OnThreadExit(h.threadExit)
	return h
}

func (h *Hyaline) threadStart(t *simt.Thread) {
	id := t.ID()
	for len(h.active) <= id {
		h.active = append(h.active, false)
		h.lo = append(h.lo, 0)
		h.hi = append(h.hi, 0)
		h.cur = append(h.cur, nil)
		h.entered = append(h.entered, nil)
	}
}

func (h *Hyaline) threadExit(t *simt.Thread) {
	id := t.ID()
	// A churned thread exits between operations; drain defensively all
	// the same.  Drop its references first (so nothing it pinned leaks),
	// then seal its partial batch so the reference distribution decides
	// that batch's fate now rather than at a teardown flush.
	h.active[id] = false
	h.adjust(t, id)
	h.seal(t, id)
}

// Name implements Scheme.
func (h *Hyaline) Name() string { return "hyaline" }

// Discipline implements Scheme: era reservations with link validation.
func (h *Hyaline) Discipline() Discipline { return DisciplineEra }

// BeginOp implements Scheme: publish the reservation [era, era].
func (h *Hyaline) BeginOp(t *simt.Thread) {
	id := t.ID()
	c := h.sim.Config().Costs
	h.active[id] = true
	h.lo[id] = h.era
	h.hi[id] = h.era
	t.Charge(c.Load + c.Store) // read the global era, publish the interval
}

// EndOp implements Scheme: retract the reservation, then run the
// reference-adjustment pass over every batch this operation entered.
// The retraction comes first so batches sealed during the pass's frees
// do not hand us references we would never drop.
func (h *Hyaline) EndOp(t *simt.Thread) {
	id := t.ID()
	h.active[id] = false
	t.Charge(h.sim.Config().Costs.Store)
	h.adjust(t, id)
}

// Protect implements Scheme: refresh the reservation's upper bound to
// the current era.  Returns true — like hazard pointers the caller
// must re-validate the link before trusting the pointer, but unlike
// hazard pointers the refresh is a plain store, no fence.  Validation
// is what makes the reservation sound: a link that re-reads unchanged
// proves the node existed before the refresh, hence birth <= hi, hence
// any batch it later joins must hand this thread a reference.
func (h *Hyaline) Protect(t *simt.Thread, _ int, _ int) bool {
	id := t.ID()
	c := h.sim.Config().Costs
	h.stats.Protects++
	t.Charge(c.Load) // read the global era
	if h.hi[id] != h.era {
		h.hi[id] = h.era
		t.Charge(c.Store) // publish the refreshed upper bound
	}
	return true
}

// NoteAlloc implements BirthStamper: stamp the node's birth era.  The
// stamp would live in the node's header on real hardware — one store.
func (h *Hyaline) NoteAlloc(t *simt.Thread, addr uint64) {
	t.Charge(h.sim.Config().Costs.Store)
	h.birth[addr&^7] = h.era
}

// Retire implements Scheme: append to the thread's partial batch and
// seal when full.  Wait-free — sealing distributes references and may
// free, but never blocks on another thread's progress.
func (h *Hyaline) Retire(t *simt.Thread, addr uint64) {
	id := t.ID()
	start := t.Now()
	t.Charge(h.sim.Config().Costs.Store)
	h.stats.Retired++
	h.stats.notePeak()
	h.cur[id] = append(h.cur[id], addr&^7)
	if len(h.cur[id]) >= h.cfg.Batch {
		h.seal(t, id)
	}
	h.cfg.Obs.Observe(t, obs.StageRetire, t.Now()-start)
}

// seal closes thread owner's partial batch: advance the global era and
// hand one reference to every active reader whose reservation could
// cover a batch node.  When no reader qualifies the batch frees on the
// spot.  The steal, era bump, and reference distribution all run
// between safepoints (register/Charge work only), so the count and the
// entered-lists are consistent by construction; only the trailing
// frees pass safepoints, and by then the batch is fully published.
func (h *Hyaline) seal(t *simt.Thread, owner int) {
	nodes := h.cur[owner]
	if len(nodes) == 0 {
		return
	}
	h.cur[owner] = nil
	c := h.sim.Config().Costs
	h.cfg.Obs.Begin(t, obs.StageCollect)
	defer h.cfg.Obs.End(t)
	h.stats.ReclaimPasses++

	// The batch's minimum birth era; consume the stamps (the nodes are
	// dying, and their addresses may be re-stamped after reuse).
	var minBirth uint64
	for i, a := range nodes {
		t.Charge(c.Load) // read the node-header stamp
		b := h.birth[a]  // zero when never stamped: conservatively ancient
		delete(h.birth, a)
		if i == 0 || b < minBirth {
			minBirth = b
		}
	}

	h.era++
	t.Charge(c.CAS) // era advance (one shared atomic)

	b := &hyBatch{nodes: nodes, minBirth: minBirth}
	for i := range h.active {
		t.Charge(c.Load) // read the reader's published reservation
		if h.active[i] && h.hi[i] >= minBirth {
			h.entered[i] = append(h.entered[i], b)
			b.refs++
			t.Charge(c.Store) // link the batch into the reader's list
		}
	}
	if b.refs == 0 {
		h.freeBatch(t, b)
	}
}

// adjust is the EndOp/exit reference-adjustment pass: drop one
// reference from every batch the finishing operation entered, freeing
// each batch whose count reaches zero.  O(batches entered), no waits.
func (h *Hyaline) adjust(t *simt.Thread, id int) {
	batches := h.entered[id]
	if len(batches) == 0 {
		return
	}
	h.entered[id] = nil
	c := h.sim.Config().Costs
	start := t.Now()
	for _, b := range batches {
		t.Charge(c.CAS) // remote decrement (fetch-and-add)
		b.refs--
		if b.refs == 0 {
			h.freeBatch(t, b)
		}
	}
	h.cfg.Obs.Window(t, obs.StageAdjust, start, t.Now()-start)
}

// freeBatch returns a zero-reference batch's nodes to the allocator.
func (h *Hyaline) freeBatch(t *simt.Thread, b *hyBatch) {
	start := t.Now()
	for _, addr := range b.nodes {
		t.FreeAddr(addr)
		h.stats.Freed++
	}
	h.cfg.Obs.Window(t, obs.StageFree, start, t.Now()-start)
}

// Flush implements Scheme: seal every thread's partial batch so the
// reference distribution decides their fate now.  Batches entered by a
// still-active operation stay pending (their readers free them at
// EndOp); at teardown quiescence everything drains and a second call
// returns 0.
func (h *Hyaline) Flush(t *simt.Thread) int {
	for i := range h.cur {
		h.seal(t, i)
	}
	return int(h.pending())
}

func (h *Hyaline) pending() uint64 {
	return h.stats.Retired - h.stats.Freed
}

// Stats implements Scheme.  GraceWaits stays zero by construction —
// the scheme never blocks on another thread.
func (h *Hyaline) Stats() Stats {
	s := h.stats
	s.Pending = h.pending()
	s.MaxPauseCycles = h.cfg.Obs.MaxPause()
	return s
}
