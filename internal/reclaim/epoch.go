package reclaim

import (
	"threadscan/internal/obs"
	"threadscan/internal/simt"
)

// Epoch implements epoch-based (quiescence) reclamation in the style of
// Harris [20] and RCU [36], instrumented exactly as the paper describes
// (§6): "thread-specific counters to be updated before and after each
// operation.  A thread that had removed 1024 nodes would read all epoch
// counters before continuing."
//
// A thread's counter is odd while it is inside an operation.  A
// reclaimer (at a quiescent point, after EndOp) snapshots all counters
// and waits until every thread observed mid-operation has advanced;
// nodes retired before the wait are then safe to free.
//
// The scheme's weakness — the one ThreadScan exists to fix — is that a
// single delayed thread stalls every reclaimer (the "Slow Epoch" series
// of Figure 3).  EpochConfig.Delay* reproduces that errant thread.
type Epoch struct {
	sim *simt.Sim
	cfg EpochConfig

	counters []uint64   // [threadID] odd = in operation
	live     []bool     // [threadID] participates in grace periods
	retired  [][]uint64 // [threadID] retire lists
	opCount  []uint64   // [threadID] operations started (delay pacing)
	orphans  []uint64   // retire lists of exited threads

	stats Stats
}

// EpochConfig parameterizes the scheme.
type EpochConfig struct {
	// Batch is the retire count that triggers a grace-period wait and
	// reclamation.  Defaults to 1024 (paper §6).
	Batch int

	// DelayCycles, when nonzero, makes the victim thread busy-wait this
	// long during its cleanup phase, while still inside the operation
	// that filled its batch — the paper's "Slow Epoch": "simulated by a
	// 40ms busy-wait by the affected thread during its cleanup phase";
	// "a thread that wants to free its pointers cannot do so until the
	// errant thread updates its epoch counter" (§6).  40ms at the
	// default 1 GHz clock is 40,000,000.
	DelayCycles int64

	// DelayEvery paces the victim: one delayed cleanup per DelayEvery
	// cleanups.  Defaults to 1 (every cleanup) when DelayCycles is set.
	DelayEvery int

	// DelayVictim is the thread ID of the errant thread.  Default 0.
	DelayVictim int

	// Obs, when non-nil, records retire latency, reclaim-pass spans,
	// and grace-period waits.  Never charges virtual cycles.
	Obs *obs.Recorder
}

func (c *EpochConfig) fill() {
	if c.Batch <= 0 {
		c.Batch = 1024
	}
	if c.DelayCycles > 0 && c.DelayEvery <= 0 {
		c.DelayEvery = 1
	}
}

// NewEpoch creates an epoch-based reclamation domain bound to sim.
func NewEpoch(sim *simt.Sim, cfg EpochConfig) *Epoch {
	cfg.fill()
	e := &Epoch{sim: sim, cfg: cfg}
	sim.OnThreadStart(e.threadStart)
	sim.OnThreadExit(e.threadExit)
	return e
}

// NewSlowEpoch creates the paper's Slow Epoch variant: epoch-based
// reclamation with thread 0 busy-waiting delayCycles inside every
// operation.
func NewSlowEpoch(sim *simt.Sim, batch int, delayCycles int64) *Epoch {
	return NewEpoch(sim, EpochConfig{Batch: batch, DelayCycles: delayCycles})
}

func (e *Epoch) threadStart(t *simt.Thread) {
	id := t.ID()
	for len(e.counters) <= id {
		e.counters = append(e.counters, 0)
		e.live = append(e.live, false)
		e.retired = append(e.retired, nil)
		e.opCount = append(e.opCount, 0)
	}
	e.live[id] = true
}

func (e *Epoch) threadExit(t *simt.Thread) {
	id := t.ID()
	e.live[id] = false
	e.orphans = append(e.orphans, e.retired[id]...)
	e.retired[id] = nil
}

// Name implements Scheme.
func (e *Epoch) Name() string {
	if e.cfg.DelayCycles > 0 {
		return "slow-epoch"
	}
	return "epoch"
}

// Discipline implements Scheme: no per-read work.
func (e *Epoch) Discipline() Discipline { return DisciplineNone }

// BeginOp implements Scheme: enter the epoch (counter becomes odd).
func (e *Epoch) BeginOp(t *simt.Thread) {
	id := t.ID()
	e.counters[id]++
	t.Charge(e.sim.Config().Costs.Store)
}

// EndOp implements Scheme: leave the epoch (counter becomes even), then
// reclaim if the batch filled during the operation.  The Slow Epoch
// victim's errant delay sits *before* the counter increment — while the
// thread is still observably mid-operation — which is exactly what
// stalls every concurrent reclaimer's grace period.
func (e *Epoch) EndOp(t *simt.Thread) {
	id := t.ID()
	c := e.sim.Config().Costs
	due := len(e.retired[id]) >= e.cfg.Batch || len(e.orphans) >= e.cfg.Batch
	if due && e.cfg.DelayCycles > 0 && id == e.cfg.DelayVictim {
		e.opCount[id]++
		if e.opCount[id]%uint64(e.cfg.DelayEvery) == 0 {
			t.Work(e.cfg.DelayCycles) // errant cleanup stall, mid-operation
		}
	}
	e.counters[id]++
	t.Charge(c.Store)
	if due {
		e.reclaim(t)
	}
}

// Protect implements Scheme (no-op; epochs do not track references).
func (e *Epoch) Protect(*simt.Thread, int, int) bool { return false }

// Retire implements Scheme: buffer the node.  Reclamation happens at
// the next EndOp so the grace wait runs outside any operation (a
// reclaimer waiting inside an operation could deadlock with another).
func (e *Epoch) Retire(t *simt.Thread, addr uint64) {
	id := t.ID()
	start := t.Now()
	t.Charge(e.sim.Config().Costs.Store)
	e.stats.Retired++
	e.stats.notePeak()
	e.retired[id] = append(e.retired[id], addr&^7)
	e.cfg.Obs.Observe(t, obs.StageRetire, t.Now()-start)
}

// reclaim waits out one grace period and frees the batch.  Must be
// called from a quiescent point (caller's counter even).
func (e *Epoch) reclaim(t *simt.Thread) {
	c := e.sim.Config().Costs
	id := t.ID()
	e.stats.ReclaimPasses++
	e.cfg.Obs.Begin(t, obs.StageCollect)
	defer e.cfg.Obs.End(t)

	// Only nodes retired (and orphans deposited) before the snapshot
	// are covered by this grace period.  Steal our own retire list and
	// the orphan list in one atomic step (no safepoint intervenes) so
	// concurrent reclaimers — or a concurrent Flush draining all lists
	// — cannot free either twice, and cannot nil a list out from under
	// us while the grace wait below passes safepoints.
	own := e.retired[id]
	e.retired[id] = nil
	stolen := e.orphans
	e.orphans = nil

	// Snapshot all counters ("read all epoch counters before
	// continuing", §6) and wait for active threads to advance.
	snap := make([]uint64, len(e.counters))
	for i := range e.counters {
		t.Charge(c.Load)
		snap[i] = e.counters[i]
	}
	waitStart := t.Cycles()
	waitFrom := t.Now()
	waited := false
	for i := range snap {
		if i == id || !e.live[i] || snap[i]%2 == 0 {
			continue // quiescent at snapshot (or ourselves, or gone)
		}
		for e.live[i] && e.counters[i] == snap[i] {
			waited = true
			t.Pause() // the errant thread makes this the bottleneck
		}
	}
	if waited {
		e.stats.GraceWaits++
		e.stats.GraceWaitCycles += t.Cycles() - waitStart
		e.cfg.Obs.Window(t, obs.StageGraceWait, waitFrom, t.Now()-waitFrom)
	}

	// Everything retired before the snapshot is now unreachable by
	// anyone: every thread active at the snapshot has since passed a
	// quiescent point.
	for _, addr := range own {
		t.FreeAddr(addr)
		e.stats.Freed++
	}
	for _, addr := range stolen {
		t.FreeAddr(addr)
		e.stats.Freed++
	}
}

// Flush implements Scheme: run a final grace period and free leftovers.
// reclaim alone frees only the caller's own retire list plus orphans;
// retire lists of other still-registered threads — quiescent by
// teardown, but not yet exit-hooked — would survive as phantom garbage.
// Steal every other thread's list into the orphan set first (one atomic
// step, no safepoint intervenes), so the grace period below covers them
// and the flush drains the whole domain.
func (e *Epoch) Flush(t *simt.Thread) int {
	id := t.ID()
	for i := range e.retired {
		if i == id || len(e.retired[i]) == 0 {
			continue
		}
		e.orphans = append(e.orphans, e.retired[i]...)
		e.retired[i] = nil
	}
	e.reclaim(t)
	return int(e.pending())
}

func (e *Epoch) pending() uint64 {
	n := uint64(len(e.orphans))
	for _, r := range e.retired {
		n += uint64(len(r))
	}
	return n
}

// Stats implements Scheme.
func (e *Epoch) Stats() Stats {
	s := e.stats
	s.Pending = e.pending()
	s.MaxPauseCycles = e.cfg.Obs.MaxPause()
	return s
}
