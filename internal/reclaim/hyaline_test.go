package reclaim

import (
	"testing"

	"threadscan/internal/simt"
)

// TestHyalineStalledReaderPinsOnlyOldBatches is the robustness
// semantics at unit scale: a reader stalled mid-operation pins exactly
// the batches containing nodes born at or before its reservation's
// upper bound.  Batches of newer garbage free underneath it — the
// property that bounds its damage — while (a) the node it still
// dereferences stays live (the checked heap panics otherwise) and (b)
// a node that was never birth-stamped defaults to era 0, conservatively
// ancient, and pins too.
func TestHyalineStalledReaderPinsOnlyOldBatches(t *testing.T) {
	s := testSim(2, 13)
	h := NewHyaline(s, HyalineConfig{Batch: 4})

	var oldAddr uint64
	ready, release, readerDone := false, false, false
	s.Spawn("reader", func(th *simt.Thread) {
		h.BeginOp(th)
		oldAddr = allocNode(th, 0, 55)
		h.NoteAlloc(th, oldAddr)
		h.Protect(th, 0, 0) // hi = era 0
		ready = true
		for !release { // stalled mid-operation, still dereferencing
			th.Load(1, 0, 0)
		}
		th.SetReg(0, 0)
		th.SetReg(1, 0)
		h.EndOp(th) // adjustment pass: drops the refs, pinned batches free
		readerDone = true
	})

	// stamped allocates, birth-stamps, and retires one node inside its
	// own operation — the fresh-garbage generator.
	stamped := func(th *simt.Thread, n int) {
		for i := 0; i < n; i++ {
			h.BeginOp(th)
			a := allocNode(th, 15, uint64(i))
			th.SetReg(15, 0)
			h.NoteAlloc(th, a)
			h.Retire(th, a)
			h.EndOp(th)
		}
	}

	s.Spawn("churner", func(th *simt.Thread) {
		for !ready {
			th.Pause()
		}
		// Batch 1: the reader's node (unlinked) plus stamped padding, all
		// born at era 0 = the reader's hi.  Seals with minBirth 0: the
		// reader enters it, so it stays pending.
		h.BeginOp(th)
		h.Retire(th, oldAddr)
		for i := 0; i < 3; i++ {
			a := allocNode(th, 15, uint64(i))
			th.SetReg(15, 0)
			h.NoteAlloc(th, a)
			h.Retire(th, a)
		}
		h.EndOp(th)

		// Batches 2-4: twelve nodes born after the first seal advanced
		// the era past the reader's reservation.  Each seals with
		// minBirth > hi, skips the stalled reader, and frees at our own
		// EndOp — garbage does not accumulate behind the stall.
		stamped(th, 12)
		st := h.Stats()
		if st.Freed < 12 {
			t.Errorf("fresh batches did not free under the stall: freed %d", st.Freed)
		}
		if st.Pending != 4 {
			t.Errorf("pending %d, want the one pinned batch of 4", st.Pending)
		}
		if !s.Heap().LiveAt(oldAddr) {
			t.Error("reader's node freed while its reservation covers it")
		}

		// Batch 5: nodes never handed to NoteAlloc default to birth era
		// 0 — conservatively ancient — so their batch pins as well.
		h.BeginOp(th)
		var unstamped uint64
		for i := 0; i < 4; i++ {
			unstamped = allocNode(th, 15, uint64(i))
			th.SetReg(15, 0)
			h.Retire(th, unstamped)
		}
		h.EndOp(th)
		if got := h.Stats().Pending; got != 8 {
			t.Errorf("pending %d, want 8 (pinned old batch + unstamped batch)", got)
		}
		if !s.Heap().LiveAt(unstamped) {
			t.Error("unstamped node freed despite conservative birth era")
		}

		release = true
		for !readerDone {
			th.Pause()
		}
		// The reader's EndOp adjustment freed everything it pinned.
		if left := h.Flush(th); left != 0 {
			t.Errorf("flush left %d", left)
		}
	})

	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Retired != st.Freed || st.Pending != 0 {
		t.Fatalf("retired %d freed %d pending %d", st.Retired, st.Freed, st.Pending)
	}
	if st.GraceWaits != 0 || st.GraceWaitCycles != 0 {
		t.Fatalf("robust scheme recorded grace waits: %+v", st)
	}
	if live := s.Heap().Stats().LiveBlocks; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}
