// Package loader type-checks Go packages for the tslint analyzers
// without golang.org/x/tools: it shells out to `go list -export` for
// package metadata and compiled export data, parses the target
// packages from source, and resolves their imports through the
// standard library's gc-export importer.  Everything runs offline —
// the only external process is the local go command.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

const listFields = "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Module,Incomplete,Error"

// goList runs `go list -e -export -deps` over args in dir and decodes
// the JSON stream.
func goList(dir string, args []string) ([]listPkg, error) {
	cmdArgs := append([]string{"list", "-e", "-export", "-deps", listFields}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to *types.Package via compiled
// gc export data files (as produced by `go list -export` or listed in a
// vet config's PackageFile map).
type exportImporter struct {
	imp types.Importer
}

// NewExportImporter returns a types.Importer backed by the given
// import-path -> export-data-file map.  importMap optionally rewrites
// source-level import paths (vendoring); it may be nil.
func NewExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if actual, ok := importMap[path]; ok {
			path = actual
		}
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return &exportImporter{imp: importer.ForCompiler(fset, "gc", lookup)}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.imp.Import(path)
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// CheckFiles parses and type-checks the given source files as one
// package with the given import path, resolving imports through imp.
func CheckFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		af, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := newInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	var dir string
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load resolves the given package patterns (e.g. "./...") in dir,
// type-checks every matched package of the main module from source, and
// returns them in dependency order.  Dependencies — standard library
// and module-internal alike — are imported from gc export data, so a
// full module load costs one `go list -export` plus parsing only the
// matched packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports, nil)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Module == nil || !p.Module.Main {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var filenames []string
		for _, f := range p.GoFiles {
			filenames = append(filenames, filepath.Join(p.Dir, f))
		}
		pkg, err := CheckFiles(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	return out, nil
}

// LoadDir type-checks a single directory of Go files (an analysistest
// testdata package) under the given import path.  Imports must resolve
// within the standard library; their export data is obtained from the
// go command on demand.
func LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()

	// Collect the imports so one go list call fetches all export data.
	imports := map[string]bool{}
	for _, fn := range filenames {
		af, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range af.Imports {
			p := strings.Trim(im.Path.Value, `"`)
			if p != "unsafe" {
				imports[p] = true
			}
		}
	}
	exports, err := stdExports(imports)
	if err != nil {
		return nil, err
	}
	imp := NewExportImporter(fset, exports, nil)
	return CheckFiles(fset, path, filenames, imp)
}

// stdExportCache memoizes export-data locations across LoadDir calls
// within one process (the analysistest suites load many small
// packages with overlapping imports).
var stdExportCache = map[string]string{}

func stdExports(imports map[string]bool) (map[string]string, error) {
	var missing []string
	for p := range imports {
		if _, ok := stdExportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		listed, err := goList(".", missing)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				stdExportCache[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(stdExportCache))
	for k, v := range stdExportCache {
		out[k] = v
	}
	return out, nil
}
