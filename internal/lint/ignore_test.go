package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"threadscan/internal/lint"
	"threadscan/internal/lint/loader"
)

// loadIgnores runs the suite over the ignores testdata package and
// returns (raw findings, findings after directive processing).
func loadIgnores(t *testing.T) ([]lint.Finding, []lint.Finding) {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "ignores"), "ignores")
	if err != nil {
		t.Fatalf("loading ignores testdata: %v", err)
	}
	cfg := &lint.Config{SimPackages: []string{"ignores"}}
	raw, err := lint.RunPackage(pkg, lint.Suite(cfg))
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	return raw, lint.ApplyIgnores(pkg, raw)
}

func countBy(fs []lint.Finding, analyzer, msgSubstring string) int {
	n := 0
	for _, f := range fs {
		if f.Analyzer == analyzer && strings.Contains(f.Message, msgSubstring) {
			n++
		}
	}
	return n
}

func TestIgnoreSuppressesExactlyOne(t *testing.T) {
	raw, got := loadIgnores(t)

	// Raw violations: suppressed(1) + bare(1) + twoOnOneLine(2) +
	// wrongAnalyzer(1) = 5 simdeterminism findings.
	if n := countBy(raw, "simdeterminism", ""); n != 5 {
		t.Fatalf("raw simdeterminism findings = %d, want 5: %v", n, raw)
	}

	// After directives: the justified ignore removes suppressed()'s
	// finding and exactly one of twoOnOneLine's two; bare() and
	// wrongAnalyzer()'s violations survive.
	if n := countBy(got, "simdeterminism", ""); n != 3 {
		t.Errorf("surviving simdeterminism findings = %d, want 3: %v", n, got)
	}
	// The suppressed() violation (the only time.Now before bare()) must
	// be gone: no surviving finding on its line.
	lint.SortFindings(raw)
	first := raw[0]
	for _, f := range got {
		if f.Analyzer == first.Analyzer && f.Pos.Line == first.Pos.Line {
			t.Errorf("finding on line %d should have been suppressed: %v", first.Pos.Line, f)
		}
	}
}

func TestBareIgnoreRejected(t *testing.T) {
	_, got := loadIgnores(t)
	if n := countBy(got, "tslint", "malformed tslint:ignore"); n != 1 {
		t.Errorf("malformed-directive findings = %d, want 1: %v", n, got)
	}
}

func TestStaleIgnoreReported(t *testing.T) {
	_, got := loadIgnores(t)
	// Two stale directives: stale() (clean next line) and
	// wrongAnalyzer() (no atomicmix diagnostic to suppress).
	if n := countBy(got, "tslint", "stale tslint:ignore"); n != 2 {
		t.Errorf("stale-directive findings = %d, want 2: %v", n, got)
	}
	if n := countBy(got, "tslint", "no atomicmix diagnostic"); n != 1 {
		t.Errorf("stale finding for mismatched analyzer = %d, want 1: %v", n, got)
	}
}

func TestNonDirectiveCommentIgnored(t *testing.T) {
	raw, got := loadIgnores(t)
	// //tslint:ignorance shares the prefix but is not a directive: it
	// must produce neither a suppression nor a tslint finding, so the
	// total is raw - 2 suppressed + 3 directive findings.
	if want := len(raw) - 2 + 3; len(got) != want {
		t.Errorf("total surviving findings = %d, want %d: %v", len(got), want, got)
	}
}
