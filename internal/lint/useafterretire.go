package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"threadscan/internal/lint/analysis"
)

// Useafterretire returns the analyzer that flags, within a function,
// any address-like use of a value after it was passed to a
// Retire/Free-family call on the same path — the exact shape of the
// PR 2 double-retire double-free.  "Address-like use" means a real
// pointer dereference (*p, p.f, p[i]), passing the value to a
// simulated-memory accessor (Load/Store/Touch), or retiring it again.
//
// The analysis is path-local and deliberately conservative: retire
// state flows forward through a statement list and into nested blocks,
// but not out of a branch, so an `if full { Free(x); return }` pattern
// never poisons the fall-through path.  Reassigning the variable
// clears its state.  Loop bodies are scanned twice so a retire at the
// bottom of an iteration is seen by a use at the top of the next.
func Useafterretire(cfg *Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "useafterretire",
		Doc: "flag dereference or reuse of a value after it was passed to\n" +
			"Retire/Free on the same path (use-after-retire, double retire)",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			report := reportOnce(pass)
			forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
				u := &uarScan{pass: pass, cfg: cfg, report: report}
				u.scanList(fd.Body.List, map[types.Object]token.Pos{})
			})
			return nil, nil
		},
	}
}

type uarScan struct {
	pass   *analysis.Pass
	cfg    *Config
	report func(ast.Node, string, ...interface{})
}

// retireCall returns the called function if call is a Retire/Free-family
// call, else nil.
func (u *uarScan) retireCall(call *ast.CallExpr) *types.Func {
	fn := calleeFunc(u.pass.TypesInfo, call)
	if fn == nil || !contains(u.cfg.RetireFuncs, fn.Name()) {
		return nil
	}
	return fn
}

// derefCall reports whether call is a simulated-memory accessor whose
// arguments count as dereferences.
func (u *uarScan) derefCall(call *ast.CallExpr) bool {
	fn := calleeFunc(u.pass.TypesInfo, call)
	return fn != nil && contains(u.cfg.DerefFuncs, fn.Name())
}

// consumedArgs returns the identifiers a retire call consumes: pointer-
// or uint64-typed arguments, minus the thread-handle types that ride
// along on every simulated call.
func (u *uarScan) consumedArgs(call *ast.CallExpr) []*ast.Ident {
	info := u.pass.TypesInfo
	var out []*ast.Ident
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		t := info.TypeOf(id)
		if t == nil {
			continue
		}
		if contains(u.cfg.RetireIgnoreTypes, typeString(t)) {
			continue
		}
		switch tt := t.Underlying().(type) {
		case *types.Pointer:
			out = append(out, id)
		case *types.Basic:
			if tt.Kind() == types.Uint64 || tt.Kind() == types.Uintptr {
				out = append(out, id)
			}
		}
	}
	return out
}

// scanList walks one statement list in order, threading the retired-set
// through it.
func (u *uarScan) scanList(stmts []ast.Stmt, retired map[types.Object]token.Pos) {
	for _, s := range stmts {
		u.scanStmt(s, retired)
	}
}

func copyRetired(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	c := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (u *uarScan) scanStmt(s ast.Stmt, retired map[types.Object]token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		u.scanList(s.List, retired)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			u.scanStmt(s.Init, retired)
		}
		u.checkUses(s.Cond, retired)
		u.recordRetires(s.Cond, retired)
		u.scanStmt(s.Body, copyRetired(retired))
		if s.Else != nil {
			u.scanStmt(s.Else, copyRetired(retired))
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			u.scanStmt(s.Init, retired)
		}
		if s.Cond != nil {
			u.checkUses(s.Cond, retired)
		}
		// Two passes over the body: a retire late in iteration N is a
		// use-after-retire for an access early in iteration N+1.
		body := copyRetired(retired)
		u.scanStmt(s.Body, body)
		if s.Post != nil {
			u.scanStmt(s.Post, body)
		}
		u.scanStmt(s.Body, body)
		return
	case *ast.RangeStmt:
		u.checkUses(s.X, retired)
		body := copyRetired(retired)
		// The range variables are rebound at the top of every iteration,
		// so retired state for them never carries across passes — the
		// per-element `for _, a := range list { Free(a) }` idiom is fine.
		u.clearRangeVars(s, body)
		u.scanStmt(s.Body, body)
		u.clearRangeVars(s, body)
		u.scanStmt(s.Body, body)
		return
	case *ast.SwitchStmt:
		if s.Init != nil {
			u.scanStmt(s.Init, retired)
		}
		if s.Tag != nil {
			u.checkUses(s.Tag, retired)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				u.scanList(cc.Body, copyRetired(retired))
			}
		}
		return
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Rare in simulated code; scope each arm conservatively.
		ast.Inspect(s, func(n ast.Node) bool {
			if b, ok := n.(*ast.BlockStmt); ok {
				u.scanList(b.List, copyRetired(retired))
				return false
			}
			return true
		})
		return
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned bodies run on a different path.
		return
	}

	// Plain statement: check uses against the current retired set,
	// record new retires, then apply reassignment clearing.
	u.checkUses(s, retired)
	u.recordRetires(s, retired)
	u.clearAssigned(s, retired)
}

// checkUses reports address-like uses of retired values inside n.
func (u *uarScan) checkUses(n ast.Node, retired map[types.Object]token.Pos) {
	if n == nil || len(retired) == 0 {
		return
	}
	info := u.pass.TypesInfo
	pos := func(p token.Pos) token.Position { return u.pass.Fset.Position(p) }
	hit := func(e ast.Expr) (*ast.Ident, token.Pos, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, token.NoPos, false
		}
		at, hit := retired[info.Uses[id]]
		return id, at, hit
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.StarExpr:
			if id, at, ok := hit(m.X); ok {
				u.report(id, "dereference of %s after it was retired/freed at %s", id.Name, pos(at))
			}
		case *ast.SelectorExpr:
			if id, at, ok := hit(m.X); ok {
				if _, isPtr := info.TypeOf(id).Underlying().(*types.Pointer); isPtr {
					u.report(id, "field access through %s after it was retired/freed at %s", id.Name, pos(at))
				}
			}
		case *ast.IndexExpr:
			if id, at, ok := hit(m.X); ok {
				u.report(id, "indexing through %s after it was retired/freed at %s", id.Name, pos(at))
			}
		case *ast.CallExpr:
			if fn := u.retireCall(m); fn != nil {
				for _, id := range u.consumedArgs(m) {
					if at, dup := retired[info.Uses[id]]; dup {
						u.report(id, "%s retired/freed again after %s: double retire leads to double free", id.Name, pos(at))
					}
				}
				return true
			}
			if u.derefCall(m) {
				for _, arg := range m.Args {
					if id, at, ok := hit(arg); ok {
						u.report(id, "%s passed to a memory accessor after it was retired/freed at %s", id.Name, pos(at))
					}
				}
			}
		}
		return true
	})
}

// clearRangeVars drops retired state for a range statement's iteration
// variables.
func (u *uarScan) clearRangeVars(s *ast.RangeStmt, retired map[types.Object]token.Pos) {
	info := u.pass.TypesInfo
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				delete(retired, obj)
			} else if obj := info.Uses[id]; obj != nil {
				delete(retired, obj)
			}
		}
	}
}

// recordRetires adds the values consumed by retire calls inside n.
func (u *uarScan) recordRetires(n ast.Node, retired map[types.Object]token.Pos) {
	if n == nil {
		return
	}
	info := u.pass.TypesInfo
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if u.retireCall(call) == nil {
			return true
		}
		for _, id := range u.consumedArgs(call) {
			if obj := info.Uses[id]; obj != nil {
				if _, dup := retired[obj]; !dup {
					retired[obj] = call.Pos()
				}
			}
		}
		return true
	})
}

// clearAssigned removes retired state for variables the statement
// reassigns.
func (u *uarScan) clearAssigned(n ast.Node, retired map[types.Object]token.Pos) {
	info := u.pass.TypesInfo
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	// A retire call on the RHS re-taints after the clear, so only clear
	// when the RHS is retire-free; recordRetires already ran.
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				rhsRetires := false
				ast.Inspect(as, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && u.retireCall(call) != nil {
						for _, cid := range u.consumedArgs(call) {
							if info.Uses[cid] == obj {
								rhsRetires = true
							}
						}
					}
					return !rhsRetires
				})
				if !rhsRetires {
					delete(retired, obj)
				}
			}
		}
	}
}
