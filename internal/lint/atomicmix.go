package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"threadscan/internal/lint/analysis"
)

// Atomicmix returns the analyzer that enforces all-or-nothing atomic
// access: once any code accesses a struct field through a sync/atomic
// function, every plain (non-atomic) read or write of that field
// anywhere in the package is a data race waiting to happen and is
// reported, together with the atomic site it conflicts with.
//
// Fields of the typed atomic wrappers (atomic.Int64, atomic.Pointer,
// ...) cannot be accessed non-atomically and need no checking; this
// analyzer covers the raw-field style (atomic.LoadUint64(&s.f)) where
// the mixed-access mistake is syntactically easy.
func Atomicmix(cfg *Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "atomicmix",
		Doc: "report struct fields accessed both through sync/atomic and\n" +
			"through plain reads/writes: mixed access is a data race",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			runAtomicmix(pass)
			return nil, nil
		},
	}
}

func runAtomicmix(pass *analysis.Pass) {
	info := pass.TypesInfo

	// Pass 1: find every field whose address feeds a sync/atomic call,
	// and remember the selector nodes that are part of those calls so
	// pass 2 does not report the atomic accesses themselves.
	atomicSite := map[*types.Var]token.Pos{}
	atomicUse := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // method on a typed atomic: inherently safe
			}
			for _, arg := range call.Args {
				v := addrTakenField(info, arg)
				if v == nil {
					continue
				}
				if _, seen := atomicSite[v]; !seen {
					atomicSite[v] = call.Pos()
				}
				// Every selector inside this argument belongs to the
				// atomic access.
				ast.Inspect(arg, func(m ast.Node) bool {
					if sel, ok := m.(*ast.SelectorExpr); ok {
						atomicUse[sel] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicSite) == 0 {
		return
	}

	// Pass 2: report plain selector accesses of those fields.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUse[sel] {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if site, hit := atomicSite[v]; hit {
				pass.Reportf(sel.Pos(),
					"plain access of field %s, which is accessed atomically at %s: mixed atomic/plain access is a data race (use sync/atomic for every access, or //tslint:ignore a pre-publication initialization)",
					v.Name(), pass.Fset.Position(site))
			}
			return true
		})
	}
}

// addrTakenField unwraps parens, conversions, and the address operator
// around an atomic call argument and returns the struct field whose
// address is taken, e.g. &s.f, (*uint64)(unsafe.Pointer(&s.f)).
func addrTakenField(info *types.Info, e ast.Expr) *types.Var {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.CallExpr:
			if isConversion(info, x) && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return nil
		case *ast.SelectorExpr:
			if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
					return v
				}
			}
			return nil
		default:
			return nil
		}
	}
}
