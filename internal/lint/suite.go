package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"threadscan/internal/lint/analysis"
	"threadscan/internal/lint/loader"
)

// Suite returns the five tslint analyzers wired to cfg, in stable
// order.
func Suite(cfg *Config) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Simdeterminism(cfg),
		Atomicmix(cfg),
		Tagptr(cfg),
		Obszerocost(cfg),
		Useafterretire(cfg),
	}
}

// Finding is one diagnostic attributed to its analyzer, positioned in
// file coordinates.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunPackage applies the analyzers to one loaded package and returns
// raw findings sorted by position.  Suppression directives are NOT
// applied; use ApplyIgnores for the driver-level view.
//
// Test files are exempt: the suite polices the simulator's production
// source, and tests legitimately construct the very patterns the
// analyzers ban (hand-tagged ring words for the fuzz corpus, host-side
// timeouts).  The standalone loader never sees test files; under
// `go vet -vettool` the package variants do include them, so the
// filter lives here, on the one shared path.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, then analyzer.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Check loads the packages matching patterns under dir, runs the full
// suite with cfg, applies //tslint:ignore directives, and returns the
// surviving findings (including directive misuse).  This is the whole
// cmd/tslint main path, importable so tests can drive it in-process.
func Check(dir string, cfg *Config, patterns ...string) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	suite := Suite(cfg)
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, suite)
		if err != nil {
			return nil, err
		}
		all = append(all, ApplyIgnores(pkg, fs)...)
	}
	SortFindings(all)
	return all, nil
}
