// Package useafterretire is useafterretire analyzer testdata: no
// dereference or reuse of a value after it was passed to Retire/Free
// on the same path.
package useafterretire

// Thread mirrors the simulated-thread handle that rides along on every
// call; it is configured as a non-consumed argument type.
type Thread struct{ cycles int64 }

func (t *Thread) Charge(c int64)          { t.cycles += c }
func (t *Thread) Load(addr uint64) uint64 { return addr }
func (t *Thread) Store(addr, v uint64)    {}

type node struct {
	val  int
	next *node
}

func Retire(t *Thread, p *node)   {}
func Free(t *Thread, addr uint64) {}
func newAddr() uint64             { return 8 }

func derefAfterRetire(t *Thread, p *node) int {
	Retire(t, p)
	return p.val // want "field access through p after it was retired/freed"
}

func starAfterRetire(t *Thread, p *node) node {
	Retire(t, p)
	return *p // want "dereference of p after it was retired/freed"
}

func doubleRetire(t *Thread, addr uint64) {
	Free(t, addr)
	Free(t, addr) // want "addr retired/freed again"
}

func loadAfterFree(t *Thread, addr uint64) uint64 {
	Free(t, addr)
	return t.Load(addr) // want "addr passed to a memory accessor after it was retired/freed"
}

func threadHandleNotConsumed(t *Thread, p *node) {
	Retire(t, p)
	t.Charge(1) // ok: the thread handle is not consumed by Retire
}

func readBeforeRetire(t *Thread, p *node) int {
	v := p.val // ok: read happens before the retire
	Retire(t, p)
	return v
}

func branchDoesNotPoison(t *Thread, addr uint64, full bool) uint64 {
	if full {
		Free(t, addr)
		return 0
	}
	return t.Load(addr) // ok: the retiring branch returned
}

func branchLocalUse(t *Thread, addr uint64, full bool) uint64 {
	if full {
		Free(t, addr)
		return t.Load(addr) // want "addr passed to a memory accessor after it was retired/freed"
	}
	return 0
}

func reassignClears(t *Thread, addr uint64) uint64 {
	Free(t, addr)
	addr = newAddr()
	return t.Load(addr) // ok: addr was reassigned after the free
}

func switchScoped(t *Thread, addr uint64, mode int) uint64 {
	switch mode {
	case 0:
		Free(t, addr)
		return 0
	case 1:
		return t.Load(addr) // ok: the freeing case is a sibling branch
	}
	return t.Load(addr) // ok: switch cases do not poison the fall-through
}

func elseBranchLocal(t *Thread, addr uint64, full bool) {
	if full {
		t.Store(addr, 1)
	} else {
		Free(t, addr)
		t.Load(addr) // want "addr passed to a memory accessor after it was retired/freed"
	}
}

func deferredBody(t *Thread, p *node) {
	defer func() { _ = p.val }() // ok: deferred bodies run on a different path
	Retire(t, p)
}

func freeEach(t *Thread, addrs []uint64) {
	for _, a := range addrs {
		Free(t, a) // ok: the range variable is rebound every iteration
	}
}

func loopCarriesRetire(t *Thread, addr uint64) {
	for i := 0; i < 4; i++ {
		t.Load(addr)  // want "addr passed to a memory accessor after it was retired/freed"
		Free(t, addr) // want "addr retired/freed again"
	}
}
