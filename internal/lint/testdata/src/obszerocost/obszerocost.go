// Package obszerocost is obszerocost analyzer testdata: recorder hot
// methods must open with the nil/enabled guard and stay allocation-
// shaped-free; call sites must not build allocating arguments.
package obszerocost

import "fmt"

// Recorder mirrors the real obs.Recorder shape.
type Recorder struct {
	enabled bool
	names   []string
	count   int64
}

type span struct {
	label string
	start int64
}

// Begin is a well-formed hot method: guard first, no allocations that
// survive the disabled path.
func (r *Recorder) Begin(start int64) {
	if r == nil || !r.enabled {
		return
	}
	r.count++
}

// End is missing the guard entirely.
func (r *Recorder) End(start int64) { // want "recorder hot method End does not open with the nil/enabled guard"
	r.count--
}

// Note has the guard but allocates in every way the contract bans.
func (r *Recorder) Note(name string, start int64) {
	if r == nil || !r.enabled {
		return
	}
	msg := fmt.Sprintf("note %s", name) // want "fmt.Sprintf inside recorder hot method Note"
	msg = name + "!"                    // want "string concatenation inside recorder hot method Note"
	sp := &span{label: msg}             // want "&composite literal inside recorder hot method Note"
	p := new(span)                      // want `new\(\) inside recorder hot method Note`
	f := func() { r.count++ }           // want "closure inside recorder hot method Note"
	f()
	_, _ = sp, p
}

// Enabled uses the boolean-accessor guard shape.
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled
}

// Observe is guarded by a late guard — not good enough: statements
// before the guard run even for nil receivers.
func (r *Recorder) Observe(d int64) { // want "recorder hot method Observe does not open with the nil/enabled guard"
	total := d * 2
	if r == nil || !r.enabled {
		return
	}
	r.count += total
}

// helper is not in the hot-method list: allocation is fine here.
func (r *Recorder) helper() *span {
	return &span{start: 1}
}

// Mark is not hot either, but callers still must not build allocating
// arguments for it: arguments evaluate before any guard.
func (r *Recorder) Mark(s span) {
	if r == nil || !r.enabled {
		return
	}
	r.count++
}

// --- call sites (this package is also in RecorderCallerPackages) ----

func callers(r *Recorder, name string, id int) {
	r.Begin(1)                          // ok: constant argument
	r.Note(name, 2)                     // ok: plain value argument
	r.Note(fmt.Sprintf("op-%d", id), 3) // want "fmt.Sprintf evaluated as a recorder argument"
	r.Note(name+"-suffix", 4)           // want "string concatenation evaluated as a recorder argument"
	r.Mark(span{label: name})           // want "composite literal built as a recorder argument"
}
