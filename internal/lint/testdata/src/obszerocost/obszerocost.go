// Package obszerocost is obszerocost analyzer testdata: recorder hot
// methods must open with the nil/enabled guard and stay allocation-
// shaped-free; call sites must not build allocating arguments.
package obszerocost

import "fmt"

// Recorder mirrors the real obs.Recorder shape.
type Recorder struct {
	enabled bool
	names   []string
	count   int64
}

type span struct {
	label string
	start int64
}

// Begin is a well-formed hot method: guard first, no allocations that
// survive the disabled path.
func (r *Recorder) Begin(start int64) {
	if r == nil || !r.enabled {
		return
	}
	r.count++
}

// End is missing the guard entirely.
func (r *Recorder) End(start int64) { // want "recorder hot method End does not open with the nil/enabled guard"
	r.count--
}

// Note has the guard but allocates in every way the contract bans.
func (r *Recorder) Note(name string, start int64) {
	if r == nil || !r.enabled {
		return
	}
	msg := fmt.Sprintf("note %s", name) // want "fmt.Sprintf inside recorder hot method Note"
	msg = name + "!"                    // want "string concatenation inside recorder hot method Note"
	sp := &span{label: msg}             // want "&composite literal inside recorder hot method Note"
	p := new(span)                      // want `new\(\) inside recorder hot method Note`
	f := func() { r.count++ }           // want "closure inside recorder hot method Note"
	f()
	_, _ = sp, p
}

// Enabled uses the boolean-accessor guard shape.
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled
}

// Observe is guarded by a late guard — not good enough: statements
// before the guard run even for nil receivers.
func (r *Recorder) Observe(d int64) { // want "recorder hot method Observe does not open with the nil/enabled guard"
	total := d * 2
	if r == nil || !r.enabled {
		return
	}
	r.count += total
}

// helper is not in the hot-method list: allocation is fine here.
func (r *Recorder) helper() *span {
	return &span{start: 1}
}

// Mark is not hot either, but callers still must not build allocating
// arguments for it: arguments evaluate before any guard.
func (r *Recorder) Mark(s span) {
	if r == nil || !r.enabled {
		return
	}
	r.count++
}

// --- metrics-engine mirror ------------------------------------------
// Sampler mirrors the metrics engine's registry shape: the same
// zero-cost contract applies to its sampling-path methods.

type point struct {
	at int64
	v  float64
}

type Sampler struct {
	enabled bool
	nextAt  int64
	every   int64
	pts     []point
}

// Tick is well formed: guard first, boundary loop, plain composite
// literals through append (no heap escape beyond slice growth).
func (s *Sampler) Tick(now int64) {
	if s == nil || !s.enabled {
		return
	}
	for now >= s.nextAt {
		s.pts = append(s.pts, point{at: s.nextAt})
		s.nextAt += s.every
	}
}

// Sample is missing the guard: a disabled sampler would still append.
func (s *Sampler) Sample(at int64) { // want "recorder hot method Sample does not open with the nil/enabled guard"
	s.pts = append(s.pts, point{at: at})
}

// Latest is guarded but builds a closure on the read path.
func (s *Sampler) Latest(name string) float64 {
	if s == nil || !s.enabled {
		return 0
	}
	pick := func() float64 { return s.pts[len(s.pts)-1].v } // want "closure inside recorder hot method Latest"
	return pick()
}

// Put is guarded but labels its point with fmt on every call.
func (s *Sampler) Put(at int64, v float64) {
	if s == nil || !s.enabled {
		return
	}
	_ = fmt.Sprintf("put@%d", at) // want "fmt.Sprintf inside recorder hot method Put"
	s.pts = append(s.pts, point{at, v})
}

// register is cold-path setup, not in the hot-method list: closures
// and allocation are fine here (the real engine registers sources
// exactly this way).
func (s *Sampler) register(read func() float64) *Sampler {
	_ = read
	return &Sampler{enabled: true}
}

// --- call sites (this package is also in RecorderCallerPackages) ----

func callers(r *Recorder, name string, id int) {
	r.Begin(1)                          // ok: constant argument
	r.Note(name, 2)                     // ok: plain value argument
	r.Note(fmt.Sprintf("op-%d", id), 3) // want "fmt.Sprintf evaluated as a recorder argument"
	r.Note(name+"-suffix", 4)           // want "string concatenation evaluated as a recorder argument"
	r.Mark(span{label: name})           // want "composite literal built as a recorder argument"
}
