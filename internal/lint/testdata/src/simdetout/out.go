// Package simdetout is simdeterminism testdata for package scoping:
// it is NOT in the simulated-package list, so nothing here is
// diagnosed.
package simdetout

import "time"

func HostSide() time.Time {
	return time.Now() // ok: package is outside the simulated set
}
