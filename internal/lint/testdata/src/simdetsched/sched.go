// Package simdetsched is simdeterminism testdata for the scheduler
// allowlist: a simulated package that IS the cooperative scheduler, so
// real goroutines/channels/sync are its implementation — but wall
// clocks and global randomness stay banned.
package simdetsched

import (
	"sync"
	"time"
)

type sched struct {
	yield chan int   // ok: scheduler internals may use channels
	mu    sync.Mutex // ok: scheduler internals may use sync
}

func (s *sched) run() {
	go s.loop() // ok: scheduler internals may spawn goroutines
	s.yield <- 1
	<-s.yield
}

func (s *sched) loop() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *sched) stamp() time.Time {
	return time.Now() // want "call to time.Now in simulated code"
}
