// Package tagptr is tagptr analyzer testdata: values produced by the
// low-3-bit node tagging must pass through the masking accessors
// before any use as an address.
package tagptr

import "unsafe"

// tagEntry is the configured tag producer.
func tagEntry(addr uint64, node int) uint64 { return addr | uint64(node) }

// entryAddr and entryNode are the configured masking accessors.
func entryAddr(v uint64) uint64 { return v &^ 7 }
func entryNode(v uint64) int    { return int(v & 7) }

// Ring is the configured tag carrier.
type Ring struct{ buf []uint64 }

func (r *Ring) Push(v uint64) bool {
	r.buf = append(r.buf, v)
	return true
}

type node struct{ next uint64 }

type sink struct{ entry uint64 }

func free(addr uint64) { _ = addr }

func okFlows(r *Ring, addr uint64, n int) {
	tag := tagEntry(addr, n)
	r.Push(tag)        // ok: carrier
	_ = entryAddr(tag) // ok: accessor
	_ = entryNode(tag) // ok: accessor
	tag2 := tag        // ok: local copy stays tracked...
	if tag2 == tag {   // ok: equality between tagged values
		r.Push(tag2) // ok: ...and may still go to the carrier
	}
}

func badCall(addr uint64, n int) {
	tag := tagEntry(addr, n)
	free(tag) // want "tagged ring entry tag passed to a call without masking"
}

func badConversion(addr uint64, n int) unsafe.Pointer {
	tag := tagEntry(addr, n)
	return unsafe.Pointer(uintptr(tag)) // want "tagged ring entry tag converted to uintptr without masking"
}

func badArith(addr uint64, n int) {
	tag := tagEntry(addr, n)
	_ = tag + 8 // want "arithmetic on tagged ring entry tag without masking"
}

func badIndex(buf []byte, addr uint64, n int) byte {
	tag := tagEntry(addr, n)
	return buf[tag] // want "tagged ring entry tag used as an index without masking"
}

func badStore(s *sink, addr uint64, n int) {
	tag := tagEntry(addr, n)
	s.entry = tag // want "tagged ring entry tag stored outside the ring without masking"
}

func badReturn(addr uint64, n int) uint64 {
	tag := tagEntry(addr, n)
	return tag // want "tagged ring entry tag escapes via return without masking"
}

func badCopyCall(addr uint64, n int) {
	tag := tagEntry(addr, n)
	alias := tag
	free(alias) // want "tagged ring entry alias passed to a call without masking"
}

func inlineMask(v uint64) uint64 {
	return v &^ 7 // want "inline node-tag masking"
}

func inlineNodeMask(v uint64) int {
	return int(v & 7) // want "inline node-tag masking"
}

func unrelatedMask(v uint64) uint64 {
	return v & 255 // ok: not the tag mask
}
