// Package simdet is simdeterminism analyzer testdata: a "simulated"
// package that must not consult wall clocks, global randomness, real
// concurrency, or map-iteration order.
package simdet

import (
	"encoding/json"
	"fmt"
	"hash/maphash"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"
)

// wallNow is the sanctioned wall-clock entry point (allowlisted in the
// test config).
func wallNow() time.Time {
	return time.Now() // ok: inside the allowlisted helper
}

func wallClockViolations() time.Duration {
	start := time.Now()      // want "call to time.Now in simulated code"
	time.Sleep(1)            // want "call to time.Sleep in simulated code"
	return time.Since(start) // want "call to time.Since in simulated code"
}

func usesSanctionedHelper() time.Time {
	return wallNow() // ok: the helper is the single entry point
}

func globalRand() int {
	return rand.Intn(10) // want "call to global math/rand.Intn in simulated code"
}

func seededRand() int {
	r := rand.New(rand.NewSource(1)) // ok: explicitly seeded
	return r.Intn(10)                // ok: method on a seeded generator
}

func realConcurrency() {
	go seededRand()   // want "go statement in simulated code"
	var mu sync.Mutex // want "sync.Mutex in simulated code"
	mu.Lock()
	mu.Unlock()
}

func channels(ch chan int) { // want "channel type in simulated code"
	ch <- 1 // want "channel send in simulated code"
	<-ch    // want "channel receive in simulated code"
}

// --- map iteration -------------------------------------------------

func countValues(m map[int]int) int {
	n := 0
	for _, v := range m { // ok: commutative accumulation
		n += v
	}
	return n
}

func keyedWrites(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m { // ok: writes keyed by the element
		out[v] = k
	}
	return out
}

func collectThenSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // ok: sorted after the loop
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectUnsorted(m map[int]int) []int {
	var keys []int
	for k := range m { // want "iteration over map with order-sensitive body"
		keys = append(keys, k)
	}
	return keys
}

func formatsInOrder(m map[int]int) {
	for k := range m { // want "iteration over map with order-sensitive body"
		fmt.Println(k)
	}
}

func buildsString(m map[int]int) string {
	s := ""
	for k := range m { // want "iteration over map with order-sensitive body"
		s += strconv.Itoa(k)
	}
	return s
}

func firstKey(m map[int]int) int {
	for k := range m { // want "iteration over map with order-sensitive body"
		return k
	}
	return 0
}

func anyNegative(m map[int]int) bool {
	for _, v := range m { // ok: constant-valued return
		if v < 0 {
			return true
		}
	}
	return false
}

func encodesJSON(m map[int]int) {
	enc := json.NewEncoder(io.Discard)
	for k := range m { // want "iteration over map with order-sensitive body"
		enc.Encode(k)
	}
}

func feedsHash(m map[int]int) uint64 {
	var h maphash.Hash
	for k := range m { // want "iteration over map with order-sensitive body"
		h.WriteByte(byte(k))
	}
	return h.Sum64()
}

type accumulator struct{ total int }

func fieldAccumulate(m map[int]int, a *accumulator) {
	for _, v := range m { // ok: commutative accumulation into a field
		a.total += v
	}
}

func sortsPerEntry(m map[int][]int) {
	for _, vs := range m { // ok: the returns belong to the comparator closure
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
}

func lastWriteWins(m map[int]int) int {
	last := 0
	for k := range m { // want "iteration over map with order-sensitive body"
		last = k
	}
	return last
}
