// Package ignores exercises the //tslint:ignore suppression facility
// against real simdeterminism violations.  The expectations live in
// ignore_test.go (not // want comments), because suppression is applied
// by the driver layer, above the analyzers.
package ignores

import "time"

// suppressed has a justified ignore: the violation on the next line is
// silenced, and nothing else.
func suppressed() time.Time {
	//tslint:ignore simdeterminism boot-time banner, runs before the sim starts
	return time.Now()
}

// bare has an ignore with no reason: the directive itself is diagnosed
// and the violation survives.
func bare() time.Time {
	//tslint:ignore simdeterminism
	return time.Now()
}

// stale has an ignore above a clean line: the directive is diagnosed as
// stale so fixed code sheds its suppressions.
func stale() int {
	//tslint:ignore simdeterminism this line is clean
	return 42
}

// twoOnOneLine produces two diagnostics on one line; the single
// directive suppresses exactly one of them.
func twoOnOneLine() time.Duration {
	//tslint:ignore simdeterminism only one of the two calls is justified
	return time.Since(time.Now())
}

// wrongAnalyzer names an analyzer with no diagnostic on the next line:
// the directive is stale and the simdeterminism violation survives.
func wrongAnalyzer() time.Time {
	//tslint:ignore atomicmix mismatched analyzer name
	return time.Now()
}

// notADirective has a comment that merely shares the prefix; it is not
// parsed as a directive and produces nothing.
func notADirective() int {
	//tslint:ignorance is not a directive
	return 7
}
