// Package atomicmix is atomicmix analyzer testdata: fields accessed
// through sync/atomic anywhere must be accessed atomically everywhere.
package atomicmix

import (
	"sync/atomic"
	"unsafe"
)

type counters struct {
	hits   uint64
	misses uint64
	flags  uint64
	typed  atomic.Int64
}

func (c *counters) record() {
	atomic.AddUint64(&c.hits, 1) // ok: the atomic access itself
	c.misses++                   // ok: misses is never accessed atomically
	c.typed.Add(1)               // ok: typed atomics cannot be mixed
}

func (c *counters) leak() uint64 {
	return c.hits // want "plain access of field hits"
}

func (c *counters) store() {
	c.hits = 0 // want "plain access of field hits"
}

func (c *counters) viaUnsafe() {
	// Address reaches the atomic through conversions: still an atomic
	// site, so the plain read below is mixed access.
	atomic.StorePointer((*unsafe.Pointer)(unsafe.Pointer(&c.flags)), nil) // ok
	_ = c.flags                                                           // want "plain access of field flags"
}

func (c *counters) atomicRead() uint64 {
	return atomic.LoadUint64(&c.hits) // ok: atomic access
}
