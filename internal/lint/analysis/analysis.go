// Package analysis is a minimal, API-compatible mirror of
// golang.org/x/tools/go/analysis, carrying exactly the subset the
// tslint suite needs: an Analyzer is a named check with a Run function,
// a Pass hands it one type-checked package, and diagnostics are
// reported through the Pass.
//
// The build environment for this repository is hermetic (no module
// proxy), so the real x/tools module cannot be a dependency; this
// mirror keeps the five tslint analyzers source-compatible with it.
// Porting an analyzer onto upstream x/tools is a one-line import swap —
// nothing here diverges from the upstream field names or semantics.
// Features the suite does not use (Requires/ResultOf dependencies,
// facts, suggested fixes) are intentionally absent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tslint:ignore directives.  By convention it is a single
	// lower-case word.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by paragraphs of detail.
	Doc string

	// Run applies the analyzer to one package.  It reports diagnostics
	// via pass.Report / pass.Reportf.  The interface{} result mirrors
	// upstream (inter-analyzer results); tslint analyzers return nil.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic.  The driver supplies it.
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}
