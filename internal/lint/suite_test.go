package lint_test

import (
	"strings"
	"testing"

	"threadscan/internal/lint"
)

// TestCheckRealModule is the in-process dogfood: the full suite, with
// the CI configuration, over the packages the analyzers police hardest.
// The tree must be clean — any finding here would also fail the tslint
// CI job.
func TestCheckRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the module")
	}
	findings, err := lint.Check("../..", lint.DefaultConfig(),
		"./internal/core/...", "./internal/obs/...", "./internal/harness/...")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding in the real tree: %s", f)
	}
}

func TestFindingString(t *testing.T) {
	fs := []lint.Finding{
		{Analyzer: "tagptr", Message: "b"},
		{Analyzer: "atomicmix", Message: "a"},
	}
	fs[0].Pos.Filename, fs[0].Pos.Line, fs[0].Pos.Column = "x.go", 4, 2
	fs[1].Pos.Filename, fs[1].Pos.Line, fs[1].Pos.Column = "x.go", 4, 2
	lint.SortFindings(fs)
	// Same position: analyzer name breaks the tie.
	if fs[0].Analyzer != "atomicmix" {
		t.Errorf("sort order: %v", fs)
	}
	if got := fs[0].String(); !strings.Contains(got, "x.go:4:2") || !strings.Contains(got, "(atomicmix)") {
		t.Errorf("String() = %q", got)
	}
}
