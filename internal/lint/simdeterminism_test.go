package lint_test

import (
	"testing"

	"threadscan/internal/lint"
	"threadscan/internal/lint/analysistest"
)

func simdetConfig() *lint.Config {
	return &lint.Config{
		SimPackages:       []string{"simdet", "simdetsched"},
		SchedulerPackages: []string{"simdetsched"},
		WallclockFuncs:    []string{"simdet.wallNow"},
	}
}

func TestSimdeterminism(t *testing.T) {
	diags := analysistest.Run(t, "testdata", lint.Simdeterminism(simdetConfig()), "simdet")
	analysistest.MustContain(t, diags, "wall time breaks deterministic replay")
	analysistest.MustContain(t, diags, "map order is randomized")
}

// TestSimdeterminismScheduler checks the scheduler carve-out: the
// scheduler package may use goroutines/channels/sync, but wall clocks
// stay banned.
func TestSimdeterminismScheduler(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Simdeterminism(simdetConfig()), "simdetsched")
}

// TestSimdeterminismScoping checks that packages outside SimPackages
// are not diagnosed at all (simdetout calls time.Now with no wants).
func TestSimdeterminismScoping(t *testing.T) {
	diags := analysistest.Run(t, "testdata", lint.Simdeterminism(simdetConfig()), "simdetout")
	if len(diags) != 0 {
		t.Errorf("expected no diagnostics outside SimPackages, got %d: %v", len(diags), diags)
	}
}
