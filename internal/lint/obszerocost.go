package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"threadscan/internal/lint/analysis"
)

// Obszerocost returns the analyzer that makes the observability
// layer's "zero cost when disabled" contract structural.  The runtime
// test (TestDisabledRecorderAllocatesNothing) pins the behavior; this
// analyzer pins the shape that produces it:
//
//   - every recorder hot method must open with the nil/enabled guard
//     (`if r == nil || !r.enabled { return }`), so a nil or disabled
//     recorder costs two comparisons and nothing else;
//   - hot methods may not contain closures, fmt calls, string
//     concatenation, new(), or &CompositeLit — the allocations that
//     would survive even a disabled-path guard or bloat the enabled
//     path the virtual clock never sees;
//   - call sites in the hot packages (core, reclaim) may not build
//     allocating argument expressions for recorder calls, since
//     arguments are evaluated before the callee's guard can decline
//     them.
func Obszerocost(cfg *Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "obszerocost",
		Doc: "enforce the recorder's zero-cost-when-disabled contract:\n" +
			"leading nil/enabled guards in hot methods, no closures/fmt/\n" +
			"string building inside them, no allocating arguments at call\n" +
			"sites in the hot packages",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			runObszerocost(pass, cfg)
			return nil, nil
		},
	}
}

func runObszerocost(pass *analysis.Pass, cfg *Config) {
	// Which configured recorder types does this package define?
	definesRecorder := false
	for _, rt := range cfg.RecorderTypes {
		if pkgOfTypePath(rt) == pass.Pkg.Path() {
			definesRecorder = true
		}
	}
	if definesRecorder {
		forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
			if recv := receiverNamed(pass.TypesInfo, fd); recv != "" &&
				contains(cfg.RecorderTypes, recv) &&
				contains(cfg.RecorderHotMethods, fd.Name.Name) {
				checkHotMethod(pass, fd)
			}
		})
	}
	if contains(cfg.RecorderCallerPackages, pass.Pkg.Path()) {
		checkRecorderCallers(pass, cfg)
	}
}

// pkgOfTypePath splits "pkgpath.Type" and returns pkgpath.
func pkgOfTypePath(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[:i]
		}
	}
	return ""
}

// receiverNamed returns "pkgpath.Type" for fd's receiver, or "".
func receiverNamed(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return ""
	}
	return namedTypePath(namedTypeOf(t))
}

// checkHotMethod enforces the guard-first shape and the allocation bans
// inside one recorder hot method.
func checkHotMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	recvObj := receiverObj(pass.TypesInfo, fd)
	if !startsWithGuard(pass.TypesInfo, fd, recvObj) {
		pass.Reportf(fd.Pos(),
			"recorder hot method %s does not open with the nil/enabled guard (`if r == nil || !r.enabled { return }`): a disabled recorder must cost two comparisons and nothing else",
			fd.Name.Name)
	}
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure inside recorder hot method %s: the closure (and its captures) can heap-allocate even when recording is disabled", fd.Name.Name)
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s inside recorder hot method %s: formatting allocates and is never zero-cost", fn.Name(), fd.Name.Name)
			}
			if builtinName(info, n) == "new" {
				pass.Reportf(n.Pos(), "new() inside recorder hot method %s: unconditional heap allocation", fd.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) {
				pass.Reportf(n.Pos(), "string concatenation inside recorder hot method %s: allocates on every call", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal inside recorder hot method %s: escapes to the heap on every call", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// receiverObj returns the receiver variable's object.
func receiverObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// startsWithGuard accepts the two sanctioned opening shapes:
//
//	if r == nil || !r.enabled { return ... }
//	return r != nil && r.enabled     (boolean accessors)
func startsWithGuard(info *types.Info, fd *ast.FuncDecl, recv types.Object) bool {
	if recv == nil || len(fd.Body.List) == 0 {
		return false
	}
	switch first := fd.Body.List[0].(type) {
	case *ast.IfStmt:
		if !mentionsNilCheck(info, first.Cond, recv) {
			return false
		}
		// The guard body must leave the method (return).
		n := len(first.Body.List)
		if n == 0 {
			return false
		}
		_, isReturn := first.Body.List[n-1].(*ast.ReturnStmt)
		return isReturn
	case *ast.ReturnStmt:
		for _, res := range first.Results {
			if mentionsNilCheck(info, res, recv) {
				return true
			}
		}
	}
	return false
}

// mentionsNilCheck reports whether e contains `recv == nil` or
// `recv != nil`.
func mentionsNilCheck(info *types.Info, e ast.Expr, recv types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		var idSide, nilSide ast.Expr = be.X, be.Y
		if isNilIdent(info, idSide) {
			idSide, nilSide = nilSide, idSide
		}
		if !isNilIdent(info, nilSide) {
			return true
		}
		if id, ok := ast.Unparen(idSide).(*ast.Ident); ok && info.Uses[id] == recv {
			found = true
		}
		return !found
	})
	return found
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkRecorderCallers flags allocating argument expressions in calls
// to recorder methods from the hot packages.
func checkRecorderCallers(pass *analysis.Pass, cfg *Config) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			recv := namedTypePath(namedTypeOf(sig.Recv().Type()))
			if !contains(cfg.RecorderTypes, recv) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.CompositeLit:
						pass.Reportf(m.Pos(), "composite literal built as a recorder argument: arguments are evaluated before the recorder's guard, so this allocates even when recording is disabled (hoist it behind Enabled())")
					case *ast.FuncLit:
						pass.Reportf(m.Pos(), "closure built as a recorder argument: allocates even when recording is disabled")
						return false
					case *ast.CallExpr:
						if f := calleeFunc(info, m); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
							pass.Reportf(m.Pos(), "fmt.%s evaluated as a recorder argument: formats (and allocates) even when recording is disabled", f.Name())
						}
					case *ast.BinaryExpr:
						if m.Op == token.ADD && isStringExpr(info, m.X) {
							pass.Reportf(m.Pos(), "string concatenation evaluated as a recorder argument: allocates even when recording is disabled")
						}
					}
					return true
				})
			}
			return true
		})
	}
}
