package lint_test

import (
	"testing"

	"threadscan/internal/lint"
	"threadscan/internal/lint/analysistest"
)

func tagptrConfig() *lint.Config {
	return &lint.Config{
		TagPackages:  []string{"tagptr"},
		TagProducers: []string{"tagptr.tagEntry"},
		TagAccessors: []string{"tagptr.entryAddr", "tagptr.entryNode"},
		TagCarriers:  []string{"(*tagptr.Ring).Push"},
		TagMask:      7,
	}
}

func TestTagptr(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Tagptr(tagptrConfig()), "tagptr")
}
