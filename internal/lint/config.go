// Package lint is the tslint analyzer suite: five project-specific
// static checks that turn the simulator's convention-enforced
// invariants — deterministic replay, zero-cost observability, tagged
// ring-entry hygiene, atomic-access consistency, and no
// use-after-retire — into compile-time errors.
//
// The analyzers are built on the in-repo go/analysis mirror
// (internal/lint/analysis) and configured through a Config so their
// tests can point them at self-contained testdata packages while
// cmd/tslint points them at the real module.
package lint

// Config names the packages and symbols each analyzer polices.
// Function symbols use the types.Func.FullName form: "pkgpath.Func"
// for package functions, "(*pkgpath.Type).Method" for methods.
type Config struct {
	// SimPackages are the import paths whose code runs inside the
	// simulation (or computes results from it) and therefore must be
	// deterministic: no wall clocks, no global randomness, no real
	// concurrency, no order-sensitive map iteration.
	SimPackages []string

	// SchedulerPackages may use real goroutines, channels, and sync
	// primitives: the cooperative scheduler's own machinery.
	SchedulerPackages []string

	// WallclockFuncs are the sanctioned wall-time entry points; calls
	// to banned time functions are allowed only inside them.
	WallclockFuncs []string

	// TagPackages are policed by the tagptr analyzer.
	TagPackages []string
	// TagProducers create node-tagged ring entries (addr | node).
	TagProducers []string
	// TagAccessors are the only functions that may mask a tagged entry.
	TagAccessors []string
	// TagCarriers may receive tagged entries unmasked (the SPSC ring).
	TagCarriers []string
	// TagMask is the low-bit mask the accessors own; inline uses of it
	// outside producers/accessors are diagnosed.
	TagMask int64

	// RecorderTypes are the zero-cost recorder types ("pkgpath.Type").
	RecorderTypes []string
	// RecorderHotMethods are the recording methods bound by the
	// zero-alloc-when-disabled contract: each must open with a
	// nil/enabled guard and stay free of closures, fmt, and string
	// building.
	RecorderHotMethods []string
	// RecorderCallerPackages have their calls into recorder methods
	// checked for allocating argument expressions.
	RecorderCallerPackages []string

	// RetireFuncs are the names of functions/methods that consume a
	// node address or pointer (Retire/Free family); using a value after
	// passing it to one is diagnosed.
	RetireFuncs []string
	// RetireIgnoreTypes are argument types RetireFuncs do not consume
	// (e.g. the simulated-thread handle every call threads through).
	RetireIgnoreTypes []string
	// DerefFuncs are the simulated-memory accessors whose address
	// arguments count as dereferences for use-after-retire purposes.
	DerefFuncs []string
}

// DefaultConfig returns the configuration for this repository — the
// one cmd/tslint enforces in CI.
func DefaultConfig() *Config {
	return &Config{
		SimPackages: []string{
			"threadscan/internal/core",
			"threadscan/internal/reclaim",
			"threadscan/internal/simmem",
			"threadscan/internal/simt",
			"threadscan/internal/ds",
			"threadscan/internal/workload",
			// The harness is host-side but computes digests, results,
			// and JSON from simulation output, so it is held to the
			// same determinism bar; its one sanctioned wall-clock
			// entry point is WallclockFuncs below.
			"threadscan/internal/harness",
		},
		SchedulerPackages: []string{"threadscan/internal/simt"},
		WallclockFuncs:    []string{"threadscan/internal/harness.wallNow"},

		TagPackages:  []string{"threadscan/internal/core"},
		TagProducers: []string{"threadscan/internal/core.tagEntry"},
		TagAccessors: []string{
			"threadscan/internal/core.entryAddr",
			"threadscan/internal/core.entryNode",
		},
		TagCarriers: []string{"(*threadscan/internal/core.Ring).Push"},
		TagMask:     7,

		RecorderTypes: []string{
			"threadscan/internal/obs.Recorder",
			// The metrics engine and its push handles honor the same
			// zero-cost contract on their sampling/read paths; source
			// *registration* (Counter/Gauge/Rate/Quantile/Pushed) is
			// cold-path setup and deliberately not listed.
			"threadscan/internal/obs.Metrics",
			"threadscan/internal/obs.PushedSeries",
		},
		RecorderHotMethods: []string{
			"Begin", "BeginNode", "End", "Observe", "Window", "Instant",
			"Alloc", "Free", "RemoteLineFill", "SignalSent", "RemoteFlush",
			"InboxDrain", "MergeStageInto",
			// Metrics engine sampling and in-run read paths.
			"Tick", "sample", "Ticks", "Latest", "LatestDelta", "SlopeOver",
			"points",
			// PushedSeries hot surface.
			"Put", "Points",
		},
		RecorderCallerPackages: []string{
			"threadscan/internal/core",
			"threadscan/internal/reclaim",
		},

		RetireFuncs: []string{"Retire", "Free", "FreeAddr", "FreeToNode"},
		RetireIgnoreTypes: []string{
			"*threadscan/internal/simt.Thread",
		},
		DerefFuncs: []string{"Load", "Store", "Touch"},
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
