package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"threadscan/internal/lint/analysis"
)

// Tagptr returns the analyzer that polices the per-node retirement
// routing's pointer tagging: ring entries carry the retiring thread's
// NUMA node in the low three bits of a word-aligned address
// (internal/core/pernode.go), so a tagged entry is NOT an address — it
// must pass through the masking accessors (entryAddr/entryNode) before
// it is freed, dereferenced, or converted to a pointer.
//
// Two rules:
//
//  1. Flow: a value produced by a tag producer (tagEntry) may only be
//     handed to a tag carrier (Ring.Push), a masking accessor, or
//     another local variable.  Any other use — a call argument, a
//     pointer/uintptr conversion, arithmetic, indexing, a store into a
//     field — treats a tagged word as an address and is reported.
//  2. Hygiene: the mask constant itself (& 7 / &^ 7) may appear only
//     inside the producer and accessor bodies, so there is exactly one
//     place the tag layout lives; inline re-masking drifts silently
//     when MaxRoutedNodes changes.
func Tagptr(cfg *Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "tagptr",
		Doc: "track node-tagged ring entries and require the masking\n" +
			"accessors before any use of the entry as an address",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			if !contains(cfg.TagPackages, pass.Pkg.Path()) {
				return nil, nil
			}
			report := reportOnce(pass)
			forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
				name := declFuncName(pass.TypesInfo, fd)
				exempt := contains(cfg.TagProducers, name) || contains(cfg.TagAccessors, name)
				if !exempt {
					checkInlineMask(pass, cfg, fd, report)
				}
				checkTagFlow(pass, cfg, fd, report)
			})
			return nil, nil
		},
	}
}

// checkInlineMask reports uses of the tag mask constant in bitwise
// expressions outside the accessor/producer bodies.
func checkInlineMask(pass *analysis.Pass, cfg *Config, fd *ast.FuncDecl, report func(ast.Node, string, ...interface{})) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op != token.AND && be.Op != token.AND_NOT {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			tv, ok := info.Types[side]
			if !ok || tv.Value == nil {
				continue
			}
			if v, exact := constant.Int64Val(tv.Value); exact && v == cfg.TagMask {
				report(be, "inline node-tag masking (%s %d): the tag layout belongs to the accessors — use entryAddr/entryNode", be.Op, cfg.TagMask)
			}
		}
		return true
	})
}

// checkTagFlow does a local def-use walk: variables assigned from a tag
// producer (transitively, through local copies) are "tagged"; any use
// other than a carrier/accessor argument, a comparison, or a copy to
// another local is reported.
func checkTagFlow(pass *analysis.Pass, cfg *Config, fd *ast.FuncDecl, report func(ast.Node, string, ...interface{})) {
	info := pass.TypesInfo

	isProducerCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, call)
		return fn != nil && contains(cfg.TagProducers, fn.FullName())
	}

	// Fixpoint over local copies: x := tagEntry(...); y := x.
	tagged := map[types.Object]token.Pos{}
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				rhs := ast.Unparen(as.Rhs[j])
				if isProducerCall(rhs) {
					tagged[obj] = as.Pos()
					continue
				}
				if rid, ok := rhs.(*ast.Ident); ok {
					if _, isTagged := tagged[info.Uses[rid]]; isTagged {
						tagged[obj] = as.Pos()
					}
				}
			}
			return true
		})
	}
	if len(tagged) == 0 {
		return
	}

	isTaggedIdent := func(e ast.Expr) (*ast.Ident, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		_, hit := tagged[info.Uses[id]]
		return id, hit
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isConversion(info, n) {
				for _, arg := range n.Args {
					if id, hit := isTaggedIdent(arg); hit {
						report(id, "tagged ring entry %s converted to %s without masking: the low bits carry the node tag, not address bits (use entryAddr first)", id.Name, typeString(info.TypeOf(n)))
					}
				}
				return true
			}
			fn := calleeFunc(info, n)
			if fn != nil {
				name := fn.FullName()
				if contains(cfg.TagAccessors, name) || contains(cfg.TagCarriers, name) || contains(cfg.TagProducers, name) {
					return true // sanctioned sink; don't descend into args
				}
			}
			for _, arg := range n.Args {
				if id, hit := isTaggedIdent(arg); hit {
					report(id, "tagged ring entry %s passed to a call without masking: callees expect an address, but the low bits carry the node tag (use entryAddr/entryNode)", id.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				return true // equality between tagged values is fine
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if id, hit := isTaggedIdent(side); hit {
					report(id, "arithmetic on tagged ring entry %s without masking (use entryAddr/entryNode)", id.Name)
				}
			}
		case *ast.IndexExpr:
			if id, hit := isTaggedIdent(n.Index); hit {
				report(id, "tagged ring entry %s used as an index without masking (use entryAddr/entryNode)", id.Name)
			}
		case *ast.StarExpr:
			if id, hit := isTaggedIdent(n.X); hit {
				report(id, "dereference of tagged ring entry %s without masking (use entryAddr first)", id.Name)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, hit := isTaggedIdent(res); hit {
					report(id, "tagged ring entry %s escapes via return without masking: callers cannot tell a tagged word from an address (use entryAddr/entryNode, or push it to the ring)", id.Name)
				}
			}
		case *ast.AssignStmt:
			// Copies between locals were handled by the taint pass;
			// a tagged RHS stored anywhere else (field, slice element,
			// map) escapes local tracking.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for j, rhs := range n.Rhs {
				id, hit := isTaggedIdent(rhs)
				if !hit {
					continue
				}
				if _, isIdent := n.Lhs[j].(*ast.Ident); isIdent {
					continue
				}
				report(id, "tagged ring entry %s stored outside the ring without masking: only the SPSC ring may carry tagged entries (use entryAddr, or Ring.Push)", id.Name)
			}
		}
		return true
	})
}
