package lint_test

import (
	"testing"

	"threadscan/internal/lint"
	"threadscan/internal/lint/analysistest"
)

func useafterretireConfig() *lint.Config {
	return &lint.Config{
		RetireFuncs:       []string{"Retire", "Free"},
		RetireIgnoreTypes: []string{"*useafterretire.Thread"},
		DerefFuncs:        []string{"Load", "Store", "Touch"},
	}
}

func TestUseafterretire(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Useafterretire(useafterretireConfig()), "useafterretire")
}
