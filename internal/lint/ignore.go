package lint

import (
	"go/token"
	"strings"

	"threadscan/internal/lint/loader"
)

// The //tslint:ignore suppression facility.
//
// A directive comment
//
//	//tslint:ignore <analyzer> <reason...>
//
// silences exactly one diagnostic from the named analyzer on the line
// directly below the directive's own line.  Suppression is a claim
// that a human looked at the diagnostic and can argue it down, so the
// facility polices itself:
//
//   - a bare directive (missing analyzer or missing reason) is itself
//     a diagnostic — unjustified suppressions do not exist;
//   - a stale directive (nothing to suppress on the next line) is a
//     diagnostic too, so fixed code sheds its ignores instead of
//     accumulating fossils.

// ignorePrefix is matched against the raw comment text.
const ignorePrefix = "//tslint:ignore"

// directive is one parsed //tslint:ignore comment.
type directive struct {
	pos      token.Position // of the comment
	analyzer string
	reason   string
}

// parseDirectives extracts tslint:ignore directives from a package's
// comments, in file order.
func parseDirectives(pkg *loader.Package) []directive {
	var out []directive
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				// Require an exact token boundary: reject
				// "//tslint:ignoreXYZ".
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				fields := strings.Fields(rest)
				d := directive{pos: pkg.Fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// ApplyIgnores filters fs through the package's //tslint:ignore
// directives.  Each well-formed directive suppresses exactly one
// finding from its analyzer on the next line; malformed and stale
// directives are converted into findings of the pseudo-analyzer
// "tslint".  The returned slice is the surviving findings plus
// directive diagnostics.
func ApplyIgnores(pkg *loader.Package, fs []Finding) []Finding {
	dirs := parseDirectives(pkg)
	if len(dirs) == 0 {
		return fs
	}
	suppressed := make([]bool, len(fs))
	var extra []Finding
	for _, d := range dirs {
		if d.analyzer == "" || d.reason == "" {
			extra = append(extra, Finding{
				Analyzer: "tslint",
				Pos:      d.pos,
				Message:  "malformed tslint:ignore: want `//tslint:ignore <analyzer> <reason>` — a suppression without a stated reason is not reviewable",
			})
			continue
		}
		matched := false
		for i, f := range fs {
			if suppressed[i] || f.Analyzer != d.analyzer {
				continue
			}
			if f.Pos.Filename == d.pos.Filename && f.Pos.Line == d.pos.Line+1 {
				suppressed[i] = true
				matched = true
				break
			}
		}
		if !matched {
			extra = append(extra, Finding{
				Analyzer: "tslint",
				Pos:      d.pos,
				Message:  "stale tslint:ignore: no " + d.analyzer + " diagnostic on the next line — delete the directive",
			})
		}
	}
	var out []Finding
	for i, f := range fs {
		if !suppressed[i] {
			out = append(out, f)
		}
	}
	out = append(out, extra...)
	SortFindings(out)
	return out
}
