package lint_test

import (
	"testing"

	"threadscan/internal/lint"
	"threadscan/internal/lint/analysistest"
)

func TestAtomicmix(t *testing.T) {
	// Atomicmix needs no package/symbol configuration: it keys off
	// sync/atomic usage wherever it appears.
	analysistest.Run(t, "testdata", lint.Atomicmix(&lint.Config{}), "atomicmix")
}
