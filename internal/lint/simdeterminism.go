package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"threadscan/internal/lint/analysis"
)

// wallclockBanned are the time-package entry points that read or wait
// on the host clock.  Pure constructors/arithmetic (time.Duration,
// Time.Sub, time.Unix) are fine: they do not observe wall time.
var wallclockBanned = map[string]bool{
	"time.Now":       true,
	"time.Since":     true,
	"time.Until":     true,
	"time.Sleep":     true,
	"time.After":     true,
	"time.Tick":      true,
	"time.NewTimer":  true,
	"time.NewTicker": true,
	"time.AfterFunc": true,
}

// randAllowed are the math/rand constructors for explicitly seeded
// generators — the only sanctioned randomness in simulated code.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sortFuncs order a slice after the fact, sanctioning an append inside
// a map iteration (collect-then-sort is the deterministic idiom).
var sortFuncs = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Stable": true, "slices.Sort": true, "slices.SortFunc": true,
	"slices.SortStableFunc": true,
}

// Simdeterminism returns the analyzer that enforces the simulation's
// determinism contract: bit-identical replay of BENCH_baseline.json
// requires that code in simulated packages never consults wall clocks,
// unseeded randomness, real concurrency, or map-iteration order.
func Simdeterminism(cfg *Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "simdeterminism",
		Doc: "enforce deterministic-replay invariants in simulated packages:\n" +
			"no wall clocks (time.Now/Since/...), no global math/rand, no real\n" +
			"goroutines/channels/sync outside the scheduler, and no\n" +
			"order-sensitive iteration over maps",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			if !contains(cfg.SimPackages, pass.Pkg.Path()) {
				return nil, nil
			}
			sched := contains(cfg.SchedulerPackages, pass.Pkg.Path())
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fd, _ := decl.(*ast.FuncDecl)
					allowWall := fd != nil && contains(cfg.WallclockFuncs, declFuncName(pass.TypesInfo, fd))
					checkDeterminism(pass, decl, fd, sched, allowWall)
				}
			}
			return nil, nil
		},
	}
}

func checkDeterminism(pass *analysis.Pass, root ast.Node, enclosing *ast.FuncDecl, sched, allowWall bool) {
	info := pass.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			name := fn.FullName()
			if wallclockBanned[name] && !allowWall {
				pass.Reportf(n.Pos(), "call to %s in simulated code: wall time breaks deterministic replay (route it through the sanctioned wallclock helper)", name)
			}
			if pkg := fn.Pkg(); pkg != nil &&
				(pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") &&
				fn.Type().(*types.Signature).Recv() == nil &&
				!randAllowed[fn.Name()] {
				pass.Reportf(n.Pos(), "call to global %s in simulated code: process-global randomness breaks deterministic replay (use a seeded rand.New(rand.NewSource(...)))", name)
			}
		case *ast.GoStmt:
			if !sched {
				pass.Reportf(n.Pos(), "go statement in simulated code: real concurrency bypasses the cooperative scheduler (use simt.Spawn/SpawnFrom)")
			}
		case *ast.SendStmt:
			if !sched {
				pass.Reportf(n.Pos(), "channel send in simulated code: real channels bypass the cooperative scheduler")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !sched {
				pass.Reportf(n.Pos(), "channel receive in simulated code: real channels bypass the cooperative scheduler")
			}
		case *ast.SelectStmt:
			if !sched {
				pass.Reportf(n.Pos(), "select statement in simulated code: real channels bypass the cooperative scheduler")
			}
		case *ast.ChanType:
			if !sched {
				pass.Reportf(n.Pos(), "channel type in simulated code: real channels bypass the cooperative scheduler")
			}
		case *ast.SelectorExpr:
			if sched {
				return true
			}
			if id, ok := n.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync" {
					pass.Reportf(n.Pos(), "sync.%s in simulated code: host synchronization bypasses the cooperative scheduler (use simt primitives)", n.Sel.Name)
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, n, enclosing)
		}
		return true
	})
}

// checkMapRange flags iteration over a map whose body is
// order-sensitive: results, digests, or formatted output assembled in
// iteration order escape Go's randomized map ordering straight into
// scenario results and replay digests.  Order-independent bodies —
// counting, summing, writes keyed by the iteration variable, and
// collect-then-sort — are allowed.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl) {
	info := pass.TypesInfo
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// A return inside a closure leaves the closure, not the enclosing
	// function, so the return rule must not fire there (sort comparators
	// are the canonical case).
	var lits []ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, n)
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, l := range lits {
			if pos >= l.Pos() && pos < l.End() {
				return true
			}
		}
		return false
	}
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if r := orderSensitiveAssign(pass, rng, enclosing, n, lhs, i); r != "" {
					reason = r
					return false
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				if r := orderSensitiveCall(fn); r != "" {
					reason = r
					return false
				}
			}
		case *ast.ReturnStmt:
			if inLit(n.Pos()) {
				return true
			}
			// Returning a value computed from the current element makes
			// "which element got returned" depend on iteration order.
			for _, res := range n.Results {
				ordered := false
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && within(obj.Pos(), rng.Pos(), rng.Body.Pos()) {
							ordered = true
						}
					}
					return !ordered
				})
				if ordered {
					reason = "returns a value derived from the iteration variable"
					return false
				}
			}
		}
		return true
	})
	if reason != "" {
		pass.Reportf(rng.For, "iteration over map with order-sensitive body (%s): map order is randomized and breaks deterministic replay", reason)
	}
}

// orderSensitiveAssign classifies one assignment target inside a map
// range body.  Index i selects the matching RHS when the assignment is
// 1:1.
func orderSensitiveAssign(pass *analysis.Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl, as *ast.AssignStmt, lhs ast.Expr, i int) string {
	info := pass.TypesInfo
	var rhs ast.Expr
	if len(as.Rhs) == len(as.Lhs) {
		rhs = as.Rhs[i]
	}
	switch l := lhs.(type) {
	case *ast.IndexExpr:
		// m[k] = v and s[k] = v are keyed by the expression, not by
		// iteration order.
		return ""
	case *ast.Ident:
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		if obj == nil || within(obj.Pos(), rng.Pos(), rng.Body.End()) {
			return "" // loop-local variable
		}
		return classifyEscape(pass, rng, enclosing, obj, l, rhs, as)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[l]; ok {
			return classifyEscape(pass, rng, enclosing, sel.Obj(), l, rhs, as)
		}
	}
	return ""
}

// classifyEscape decides whether writing obj (declared outside the
// loop) in this form is order-sensitive.  Numeric/boolean accumulation
// commutes; slice appends and string building do not — unless the
// slice is sorted after the loop.
func classifyEscape(pass *analysis.Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl, obj types.Object, lhs ast.Expr, rhs ast.Expr, as *ast.AssignStmt) string {
	info := pass.TypesInfo
	t := info.TypeOf(lhs)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		if id, ok := lhs.(*ast.Ident); ok && sortedAfter(pass, rng, enclosing, info.ObjectOf(id)) {
			return ""
		}
		return "appends to a slice that outlives the loop without a post-loop sort"
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Info()&types.IsString != 0 {
			return "builds a string in iteration order"
		}
		if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
			as.Tok == token.OR_ASSIGN || as.Tok == token.XOR_ASSIGN ||
			as.Tok == token.AND_ASSIGN {
			return "" // commutative accumulation
		}
		if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			// Plain overwrite: last iteration wins — order-dependent
			// unless the RHS ignores the loop variables entirely.
			if rhs != nil && usesLoopVars(info, rng, rhs) {
				return "overwrites an outer variable with a value derived from the iteration variable (last-write-wins depends on order)"
			}
		}
		return ""
	}
	return ""
}

// usesLoopVars reports whether e references the range statement's
// iteration variables.
func usesLoopVars(info *types.Info, rng *ast.RangeStmt, e ast.Expr) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj != nil && within(obj.Pos(), rng.Pos(), rng.Body.Pos()) {
			used = true
		}
		return !used
	})
	return used
}

// orderSensitiveCall flags formatting/encoding/hashing calls whose
// output concatenates per-element data in iteration order.
func orderSensitiveCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch {
	case pkg.Path() == "fmt":
		return "formats output with fmt." + fn.Name() + " inside the iteration"
	case pkg.Path() == "encoding/json":
		return "encodes JSON inside the iteration"
	case len(pkg.Path()) >= 4 && pkg.Path()[:4] == "hash":
		return "feeds a hash inside the iteration"
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort function after
// the range statement within the enclosing function — the sanctioned
// collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl, obj types.Object) bool {
	if enclosing == nil || enclosing.Body == nil || obj == nil {
		return false
	}
	info := pass.TypesInfo
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if !sortFuncs[fn.Pkg().Name()+"."+fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// within reports pos in [lo, hi).
func within(pos, lo, hi token.Pos) bool { return pos >= lo && pos < hi }
