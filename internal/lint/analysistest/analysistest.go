// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations embedded in the source as
// // want comments — a minimal mirror of
// golang.org/x/tools/go/analysis/analysistest (which the hermetic
// build cannot depend on).
//
// Expectation syntax, at the end of the offending line:
//
//	code() // want "regexp"
//	code() // want "first" "second"
//	code() // want `raw regexp`
//
// Every diagnostic must match one expectation on its line and every
// expectation must be matched by exactly one diagnostic; anything
// unmatched on either side fails the test.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"threadscan/internal/lint/analysis"
	"threadscan/internal/lint/loader"
)

// wantRe matches a // want comment; expectations are parsed from its
// trailing quoted strings.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one expected diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, and reports mismatches through t.  It returns the raw
// diagnostics (all packages concatenated) for callers that want to
// assert more.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	var all []analysis.Diagnostic
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		pkg, err := loader.LoadDir(dir, pkgName)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		diags := runOne(t, a, pkg)
		all = append(all, diags...)
	}
	return all
}

func runOne(t *testing.T, a *analysis.Analyzer, pkg *loader.Package) []analysis.Diagnostic {
	t.Helper()
	expects := collectExpectations(t, pkg)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkg.Path, err)
	}

	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		if !claim(expects, posn.Filename, posn.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
	return diags
}

// claim marks the first unmatched expectation on (file, line) whose
// regexp matches msg.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectExpectations parses // want comments out of the package.
func collectExpectations(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, posn.String(), m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, raw, err)
					}
					out = append(out, &expectation{
						file: posn.Filename, line: posn.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, at, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var (
			raw string
			err error
		)
		switch s[0] {
		case '"':
			end := matchEnd(s, '"')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", at, s)
			}
			raw, err = strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", at, s[:end+1], err)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", at, s)
			}
			raw = s[1 : end+1]
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want expectations must be quoted, got: %s", at, s)
		}
		out = append(out, raw)
	}
	return out
}

// matchEnd finds the closing double quote, honoring backslash escapes.
func matchEnd(s string, q byte) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case q:
			return i
		}
	}
	return -1
}

// MustContain is a helper for suite-level tests: it asserts that some
// diagnostic message matches the pattern.
func MustContain(t *testing.T, diags []analysis.Diagnostic, pattern string) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	for _, d := range diags {
		if re.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("no diagnostic matching %q in %d diagnostics", pattern, len(diags))
}
