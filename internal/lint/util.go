package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"threadscan/internal/lint/analysis"
)

// calleeFunc resolves the function or method called by call, or nil
// for calls through function values, type conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call (pkg.Func).
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isConversion reports whether call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin called (append, make,
// new, ...), or "" if call is not a builtin call.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// declFuncName returns the FullName of the function a FuncDecl defines,
// or "" when type information is missing.
func declFuncName(info *types.Info, fd *ast.FuncDecl) string {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// typeString returns the canonical string for an expression's type,
// using full package paths ("*threadscan/internal/simt.Thread").
func typeString(t types.Type) string {
	return types.TypeString(t, nil)
}

// namedTypeOf unwraps pointers and returns the *types.Named beneath t,
// or nil.
func namedTypeOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedTypePath returns "pkgpath.Name" for a named type, or "".
func namedTypePath(n *types.Named) string {
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// forEachFuncDecl invokes f for every function declaration with a body.
func forEachFuncDecl(files []*ast.File, f func(*ast.FuncDecl)) {
	for _, file := range files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				f(fd)
			}
		}
	}
}

// reportOnce wraps a Pass.Report, de-duplicating by position+message so
// fixpoint-style walks can re-visit nodes safely.
func reportOnce(pass *analysis.Pass) func(pos ast.Node, format string, args ...interface{}) {
	type key struct {
		pos token.Pos
		msg string
	}
	seen := map[key]bool{}
	return func(n ast.Node, format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		k := key{n.Pos(), msg}
		if seen[k] {
			return
		}
		seen[k] = true
		pass.Report(analysis.Diagnostic{Pos: n.Pos(), Message: msg})
	}
}
