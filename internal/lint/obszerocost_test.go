package lint_test

import (
	"testing"

	"threadscan/internal/lint"
	"threadscan/internal/lint/analysistest"
)

func obszerocostConfig() *lint.Config {
	return &lint.Config{
		RecorderTypes:          []string{"obszerocost.Recorder", "obszerocost.Sampler"},
		RecorderHotMethods:     []string{"Begin", "End", "Note", "Observe", "Enabled", "Tick", "Sample", "Latest", "Put"},
		RecorderCallerPackages: []string{"obszerocost"},
	}
}

func TestObszerocost(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Obszerocost(obszerocostConfig()), "obszerocost")
}
