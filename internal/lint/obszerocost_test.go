package lint_test

import (
	"testing"

	"threadscan/internal/lint"
	"threadscan/internal/lint/analysistest"
)

func obszerocostConfig() *lint.Config {
	return &lint.Config{
		RecorderTypes:          []string{"obszerocost.Recorder"},
		RecorderHotMethods:     []string{"Begin", "End", "Note", "Observe", "Enabled"},
		RecorderCallerPackages: []string{"obszerocost"},
	}
}

func TestObszerocost(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Obszerocost(obszerocostConfig()), "obszerocost")
}
