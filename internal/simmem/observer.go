package simmem

// Observer receives notifications of the heap's batched cross-node
// traffic: cache staging flushing a free batch to a remote inbox, and a
// pool draining its inbox back onto its central lists.  It exists so an
// observability layer can watch allocator batch behavior without simmem
// importing it.  Callbacks carry no timestamps — simmem has no clock —
// and must not mutate heap state.
type Observer interface {
	// RemoteFlush fires when a thread cache flushes a staged batch of
	// blocks cross-node into home's remote-free inbox.
	RemoteFlush(home, blocks int)
	// InboxDrain fires when node's pool reclassifies blocks from its
	// remote-free inbox into its central lists.
	InboxDrain(node, blocks int)
}

// SetObserver attaches o (nil detaches).
func (h *Heap) SetObserver(o Observer) { h.observer = o }
