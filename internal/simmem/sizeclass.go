package simmem

// Size classes, in words.  These follow TCMalloc's shape: fine-grained
// at small sizes, coarser as sizes grow, topping out at half a page.
// Anything larger is a span of whole pages.
var classWords = []int{
	2, 3, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32,
	40, 48, 56, 64, 80, 96, 112, 128,
	160, 192, 224, 256, 320, 384, 448, 512,
}

const numClasses = 29

// maxSmallWords is the largest allocation served from size classes.
var maxSmallWords = classWords[numClasses-1]

// classIndex maps a word count to its size-class index; built once.
var classIndex = func() []uint8 {
	idx := make([]uint8, maxSmallWords+1)
	c := 0
	for w := 1; w <= maxSmallWords; w++ {
		if w > classWords[c] {
			c++
		}
		idx[w] = uint8(c)
	}
	return idx
}()

// classFor returns the size-class index for a block of the given word
// count, which must be <= maxSmallWords.
func classFor(words int) int {
	if words < 1 {
		words = 1
	}
	return int(classIndex[words])
}

// ClassSizeBytes returns the rounded allocation size in bytes for a
// request of size bytes, mirroring what Alloc will actually reserve.
// Useful for tests and capacity planning.
func ClassSizeBytes(size int) int {
	words := (size + WordSize - 1) / WordSize
	if words > maxSmallWords {
		pages := (words + PageWords - 1) / PageWords
		return pages * PageWords * WordSize
	}
	return classWords[classFor(words)] * WordSize
}
