package simmem

import "fmt"

// Policy selects which node's pool serves an allocation on a heap with
// per-node arenas — the simulated analog of numactl's memory policies.
// The paper's evaluation runs on TCMalloc because a scalable allocator
// is a prerequisite for measuring reclamation rather than malloc
// contention; on a multi-socket machine the same argument extends to
// *where* freed memory goes, so the heap models the standard placement
// policies:
//
//   - PolicyGlobal: one machine-wide pool, the pre-NUMA behavior.  The
//     heap keeps a single set of central free lists regardless of the
//     node count, so a block freed on node 0 is recycled by whichever
//     node allocates next — the locality leak the other policies close.
//     Bit-identical to the pre-allocpool allocator.
//   - PolicyLocal ("localalloc"): allocate from the requesting node's
//     pool, falling back to other nodes only when the local arena
//     region is exhausted — Linux's default placement.
//   - PolicyMembind: strictly bind to the requesting node's pool; the
//     allocation fails with VOutOfMemory when that node's region is
//     exhausted even if other nodes have free pages, exactly like
//     `numactl --membind` under memory pressure.
//   - PolicyInterleave: rotate allocations round-robin across the node
//     pools (`numactl --interleave`), trading locality for balance.
type Policy int

const (
	// PolicyGlobal is the single-pool allocator (the default).
	PolicyGlobal Policy = iota
	// PolicyLocal prefers the requester's node, falls back when full.
	PolicyLocal
	// PolicyMembind binds strictly to the requester's node.
	PolicyMembind
	// PolicyInterleave rotates across node pools round-robin.
	PolicyInterleave
)

func (p Policy) String() string {
	switch p {
	case PolicyGlobal:
		return "global"
	case PolicyLocal:
		return "localalloc"
	case PolicyMembind:
		return "membind"
	case PolicyInterleave:
		return "interleave"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy name to its Policy.  The empty string is
// PolicyGlobal, so an unset scenario knob means "the old allocator".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "global":
		return PolicyGlobal, nil
	case "local", "localalloc":
		return PolicyLocal, nil
	case "membind":
		return PolicyMembind, nil
	case "interleave":
		return PolicyInterleave, nil
	default:
		return 0, fmt.Errorf("simmem: unknown allocation policy %q (want global, localalloc, membind, or interleave)", s)
	}
}
