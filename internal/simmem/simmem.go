// Package simmem implements the simulated heap that underlies the
// ThreadScan reproduction: a word-addressable arena managed by a
// size-class allocator with per-thread caches, modeled on TCMalloc
// (the allocator used in the paper's evaluation, §6).
//
// Why a simulated heap at all?  The paper's mechanism — scanning thread
// stacks for words that equal malloc'd node addresses — requires that
// "addresses" be plain comparable words and that premature frees be
// observable.  Go's real heap offers neither (the GC owns it), so the
// reproduction allocates nodes at simulated addresses inside this arena.
// In checked mode every access verifies that the target word belongs to
// a live allocation, which turns any unsound reclamation decision into a
// detected access violation rather than silent corruption.  This is the
// property all of the repository's safety tests rest on.
//
// On a multi-node machine the heap can further split into per-node
// arenas: pages are carved from node-homed regions, central free lists
// and span lists live per node, and Config.Policy decides which node's
// pool serves an allocation (see policy.go).  Frees route to the freed
// block's *home* pool — same-node frees push the central list directly,
// cross-node frees land in the home pool's remote-free inbox (the
// TCMalloc remote-free pattern) for the owner to drain — so reclamation
// that sweeps node-locally also *recycles* node-locally.  With a single
// pool (Policy global, or one node) the allocator is bit-identical to
// the pre-NUMA version.
//
// The heap is deliberately NOT goroutine-safe: the discrete-event
// scheduler in package simt serializes all simulated threads, so the
// allocator needs no locks and the whole simulation stays deterministic.
package simmem

import "fmt"

// WordSize is the size of a heap word in bytes.  All addresses are
// word-aligned; the low three bits of a node address are always zero,
// which is what lets data structures steal them for mark bits and lets
// the ThreadScan scanner mask them off (paper §4.2, "Pointer
// Operations").
const WordSize = 8

// PageWords is the number of words per allocator page.  Small size
// classes carve pages into equal blocks; large allocations take whole
// page runs (spans).
const PageWords = 1024 // 8 KiB pages

// PoisonWord is written over every word of a freed block when poisoning
// is enabled.  A thread that reads a stale reference sees this pattern,
// and any attempt to follow it as a pointer lands outside the arena.
const PoisonWord = 0xDEADBEEFDEADBEEF

// Config describes a heap instance.
type Config struct {
	// Words is the arena capacity in 8-byte words.  The arena is
	// allocated up front; the simulation fails loudly if it is
	// exhausted.  Defaults to 1<<22 (32 MiB) if zero.
	Words int

	// Base is the byte address of the first arena word.  It must be
	// word-aligned and nonzero (address 0 is the simulated nil).
	// Defaults to 1<<20.
	Base uint64

	// Check enables per-word liveness tracking: loads and stores verify
	// that the word belongs to a live allocation, frees verify block
	// identity, and double frees are detected.  Costs one uint32 of
	// host memory per arena word.
	Check bool

	// Poison fills freed blocks with PoisonWord and newly allocated
	// blocks with zeroes.  Independent of Check.
	Poison bool

	// Nodes is the number of NUMA nodes whose threads share the heap.
	// With Policy != PolicyGlobal and Nodes > 1 the arena splits into
	// that many contiguous node regions, each with its own central free
	// lists; otherwise the heap keeps one machine-wide pool.  Defaults
	// to 1.
	Nodes int

	// Policy selects which node's pool serves an allocation (see
	// policy.go).  PolicyGlobal — the default — keeps the single-pool
	// allocator, bit-identical to the pre-NUMA heap regardless of
	// Nodes.
	Policy Policy
}

func (c *Config) fill() {
	if c.Words == 0 {
		c.Words = 1 << 22
	}
	if c.Base == 0 {
		c.Base = 1 << 20
	}
	if c.Base%WordSize != 0 {
		panic("simmem: Config.Base must be word-aligned")
	}
	if c.Nodes < 1 {
		c.Nodes = 1
	}
}

// Stats reports allocator activity since creation.
type Stats struct {
	Allocs       uint64 // successful allocations
	Frees        uint64 // successful frees
	LiveBlocks   uint64 // currently allocated blocks
	LiveBytes    uint64 // currently allocated bytes (rounded to class size)
	PagesCarved  uint64 // pages handed to size classes or spans
	CacheHits    uint64 // allocations served from a thread cache
	CacheMisses  uint64 // allocations that had to refill from central lists
	CentralFrees uint64 // frees that overflowed a cache back to central

	// Per-node pool traffic (zero on a single-pool heap).
	RemoteAllocs   uint64 `json:"remote_allocs,omitempty"`   // blocks handed to a node other than their home
	HomeFrees      uint64 `json:"home_frees,omitempty"`      // frees routed into the freeing node's own pool
	RemoteFrees    uint64 `json:"remote_frees,omitempty"`    // frees routed cross-node via a remote-free inbox
	RemoteDrained  uint64 `json:"remote_drained,omitempty"`  // inbox blocks reclassified by their home pool
	PagesReclaimed uint64 `json:"pages_reclaimed,omitempty"` // wholly-free pages recycled into a new class after region exhaustion
}

// Heap is a simulated word-addressable heap.
type Heap struct {
	cfg   Config
	words []uint64 // the arena payload
	state []uint32 // per-word allocation id; 0 = free (Check mode only)

	pools    []pool         // one per node region (one machine-wide pool under PolicyGlobal)
	spanLive map[uint64]int // span base addr -> pages
	pagemap  []uint16       // per page: 0 free, 1+class, spanStart, spanCont
	pageNode []int8         // per page: resident node, fixed at carve time (-1 uncarved)

	allocSeq uint32
	rr       int // PolicyInterleave rotor
	stats    Stats
	observer Observer // batch-traffic hooks; nil when detached
}

// pool is one node's share of the arena: a contiguous page region with
// its own bump pointer, central free lists, span lists, and a
// remote-free inbox that other nodes push freed blocks onto (TCMalloc's
// remote-free pattern — the freeing thread never touches the owner's
// central lists; the owner reclassifies the inbox on its next refill).
type pool struct {
	node     int
	nextPage int // bump pointer within the region
	endPage  int // one past the region's last page
	central  []freeList
	spanFree map[int][]uint64
	remote   []uint64 // cross-node freed blocks awaiting the owner's drain
}

const (
	pageFree     = 0
	pageSpanBase = 0xFFFF
	pageSpanCont = 0xFFFE
)

type freeList struct {
	blocks []uint64 // LIFO of block base addresses
}

// New creates a heap from cfg.
func New(cfg Config) *Heap {
	cfg.fill()
	totalPages := cfg.Words / PageWords
	np := 1
	if cfg.Policy != PolicyGlobal && cfg.Nodes > 1 {
		np = cfg.Nodes
		if np > totalPages {
			np = totalPages
		}
		if np < 1 {
			np = 1
		}
	}
	h := &Heap{
		cfg:      cfg,
		words:    make([]uint64, cfg.Words),
		pools:    make([]pool, np),
		spanLive: make(map[uint64]int),
		pagemap:  make([]uint16, (cfg.Words+PageWords-1)/PageWords),
		pageNode: make([]int8, (cfg.Words+PageWords-1)/PageWords),
	}
	for i := range h.pageNode {
		h.pageNode[i] = -1
	}
	for n := range h.pools {
		h.pools[n] = pool{
			node:     n,
			nextPage: n * totalPages / np,
			endPage:  (n + 1) * totalPages / np,
			central:  make([]freeList, numClasses),
			spanFree: make(map[int][]uint64),
		}
	}
	if cfg.Check {
		h.state = make([]uint32, cfg.Words)
	}
	return h
}

// Base returns the byte address of the first arena word.
func (h *Heap) Base() uint64 { return h.cfg.Base }

// Limit returns one past the last valid byte address.
func (h *Heap) Limit() uint64 { return h.cfg.Base + uint64(h.cfg.Words)*WordSize }

// Contains reports whether addr falls inside the arena.
func (h *Heap) Contains(addr uint64) bool {
	return addr >= h.cfg.Base && addr < h.Limit()
}

// Stats returns a snapshot of allocator counters.
func (h *Heap) Stats() Stats { return h.stats }

// Pools returns the number of node pools the arena is split into (1 =
// the single-pool heap, where every NUMA routing path is inert).
func (h *Heap) Pools() int { return len(h.pools) }

// Policy returns the allocation policy the heap was built with.
func (h *Heap) Policy() Policy { return h.cfg.Policy }

// HomeNode returns the node whose arena region contains addr — the
// pool frees route back to (0 on a single-pool heap).
func (h *Heap) HomeNode(addr uint64) int {
	if len(h.pools) == 1 {
		return 0
	}
	page := int((addr - h.cfg.Base) / WordSize / PageWords)
	for n := range h.pools {
		if page < h.pools[n].endPage {
			return n
		}
	}
	return len(h.pools) - 1
}

// ResidentNode returns the node the block's page is resident on, fixed
// when the page was carved: the region's node under per-node pools, the
// carving thread's node under the global policy (Linux's first-touch
// page placement).  This is the notion the alloc-side locality counters
// compare against — a global pool hands one node's resident memory to
// another node's malloc; per-node pools do not.
func (h *Heap) ResidentNode(addr uint64) int {
	page := int((addr - h.cfg.Base) / WordSize / PageWords)
	if page < 0 || page >= len(h.pageNode) || h.pageNode[page] < 0 {
		return 0
	}
	return int(h.pageNode[page])
}

// clampResident bounds a requester node to the configured node count
// (independent of the pool count, so residency is tracked even on the
// global policy's single pool).
func (h *Heap) clampResident(node int) int {
	if node < 0 {
		return 0
	}
	if node >= h.cfg.Nodes {
		return h.cfg.Nodes - 1
	}
	return node
}

func (h *Heap) homePool(addr uint64) *pool {
	return &h.pools[h.HomeNode(addr)]
}

// clampNode maps an arbitrary node index onto the pool range, so a
// simulation with more nodes than the heap has pools (or an unpinned
// thread reporting -1) still routes deterministically.
func (h *Heap) clampNode(node int) int {
	if node < 0 {
		return 0
	}
	if node >= len(h.pools) {
		return len(h.pools) - 1
	}
	return node
}

// wordIndex converts a byte address to an arena word index, checking
// bounds and alignment.
func (h *Heap) wordIndex(addr uint64, op string) int {
	if addr == 0 {
		panic(&Violation{Kind: VNilDeref, Addr: addr, Op: op})
	}
	if addr%WordSize != 0 {
		panic(&Violation{Kind: VUnaligned, Addr: addr, Op: op})
	}
	if !h.Contains(addr) {
		panic(&Violation{Kind: VWildAccess, Addr: addr, Op: op})
	}
	return int((addr - h.cfg.Base) / WordSize)
}

// Load reads the word at addr.  In checked mode it verifies the word
// belongs to a live allocation.
func (h *Heap) Load(addr uint64) uint64 {
	i := h.wordIndex(addr, "load")
	if h.state != nil && h.state[i] == 0 {
		panic(&Violation{Kind: VUseAfterFree, Addr: addr, Op: "load"})
	}
	return h.words[i]
}

// Store writes val to the word at addr, with the same checks as Load.
func (h *Heap) Store(addr uint64, val uint64) {
	i := h.wordIndex(addr, "store")
	if h.state != nil && h.state[i] == 0 {
		panic(&Violation{Kind: VUseAfterFree, Addr: addr, Op: "store"})
	}
	h.words[i] = val
}

// CompareAndSwap atomically (with respect to simulated threads, which
// the scheduler serializes) replaces the word at addr with new if it
// currently equals old.  It reports whether the swap happened.
func (h *Heap) CompareAndSwap(addr uint64, old, new uint64) bool {
	i := h.wordIndex(addr, "cas")
	if h.state != nil && h.state[i] == 0 {
		panic(&Violation{Kind: VUseAfterFree, Addr: addr, Op: "cas"})
	}
	if h.words[i] != old {
		return false
	}
	h.words[i] = new
	return true
}

// Alloc allocates a block of at least size bytes directly from the
// central lists (no thread cache), on behalf of node 0.  It returns the
// block's base address.
func (h *Heap) Alloc(size int) uint64 { return h.AllocOn(0, size) }

// AllocOn allocates a block of at least size bytes on behalf of a
// thread on the given node, routed by the heap's policy: the node's own
// pool under localalloc/membind, a round-robin pool under interleave,
// the single pool otherwise.
func (h *Heap) AllocOn(node int, size int) uint64 {
	if size <= 0 {
		panic("simmem: Alloc of non-positive size")
	}
	words := (size + WordSize - 1) / WordSize
	if words > maxSmallWords {
		return h.allocSpan(node, words)
	}
	cls := classFor(words)
	p := h.allocPool(node, cls)
	blocks := p.central[cls].blocks
	addr := blocks[len(blocks)-1]
	p.central[cls].blocks = blocks[:len(blocks)-1]
	h.finishAlloc(addr, classWords[cls])
	h.noteAlloc(node, addr)
	return addr
}

// noteAlloc counts a handed-out block against the requesting node: a
// block resident on another node is a remote alloc — its memory lives
// across the interconnect from the requester.  Counted whenever the
// machine has more than one node, *including* under the global policy
// (whose single pool is exactly what makes these hand-outs common);
// pure accounting, so the global cost model is untouched.
func (h *Heap) noteAlloc(node int, addr uint64) {
	if h.cfg.Nodes > 1 && h.ResidentNode(addr) != h.clampResident(node) {
		h.stats.RemoteAllocs++
	}
}

// allocPool selects — and readies — the pool that serves one
// small-class allocation for a thread on node, per the policy.
func (h *Heap) allocPool(node, cls int) *pool {
	if len(h.pools) == 1 {
		p := &h.pools[0]
		if len(p.central[cls].blocks) == 0 {
			h.carvePage(p, cls, h.clampResident(node))
		}
		return p
	}
	return h.routePool(node, "size class", func(p *pool, carve bool) bool {
		return h.classReady(p, cls, carve)
	})
}

// routePool implements the policy dispatch shared by small-class and
// span allocation: membind tries the node's own pool only, interleave
// advances the round-robin rotor, localalloc prefers the node with
// region fallback.  ready reports — and, when carve is allowed, makes
// — a pool able to serve the request; what labels the request in OOM
// messages.
func (h *Heap) routePool(node int, what string, ready func(p *pool, carve bool) bool) *pool {
	node = h.clampNode(node)
	switch h.cfg.Policy {
	case PolicyMembind:
		p := &h.pools[node]
		if !ready(p, true) {
			panic(&Violation{Kind: VOutOfMemory, Op: "alloc",
				Detail: fmt.Sprintf("membind: node %d arena exhausted (%s)", node, what)})
		}
		return p
	case PolicyInterleave:
		pref := h.rr
		h.rr = (h.rr + 1) % len(h.pools)
		if p := h.scanPools(pref, ready); p != nil {
			return p
		}
	default: // PolicyLocal
		if p := h.scanPools(node, ready); p != nil {
			return p
		}
	}
	panic(&Violation{Kind: VOutOfMemory, Op: "alloc",
		Detail: fmt.Sprintf("%s exhausted on every node", what)})
}

// scanPools readies a pool starting from the preferred node: the
// preferred pool is tried exhaustively first (free blocks, inbox
// drain, then a fresh local page — a local carve beats remote reuse),
// then the remaining pools in ascending wrap-around order, a cheap
// no-carve pass before a carving one.  Deterministic by construction;
// nil means every region is exhausted.
func (h *Heap) scanPools(pref int, ready func(p *pool, carve bool) bool) *pool {
	p := &h.pools[pref]
	if ready(p, true) {
		return p
	}
	n := len(h.pools)
	for pass := 0; pass < 2; pass++ {
		carve := pass == 1
		for i := 1; i < n; i++ {
			q := &h.pools[(pref+i)%n]
			if ready(q, carve) {
				return q
			}
		}
	}
	return nil
}

// classReady reports whether p can serve one block of cls, draining the
// remote-free inbox and — when carve is set — carving a fresh region
// page to make it so.
func (h *Heap) classReady(p *pool, cls int, carve bool) bool {
	if len(p.central[cls].blocks) > 0 {
		return true
	}
	if len(p.remote) > 0 {
		h.drainRemote(p)
		if len(p.central[cls].blocks) > 0 {
			return true
		}
	}
	if carve && p.nextPage < p.endPage {
		h.carvePage(p, cls, p.node)
		return true
	}
	if carve && h.reclaimPage(p, cls) {
		return true
	}
	return false
}

// reclaimPage recycles one wholly-free page out of p's central free
// lists into class cls.  It only runs once the region's bump pointer is
// exhausted: without it, a node whose region was carved up by a
// transient spike of one size class would serve every later request for
// another class from a *remote* pool forever — a permanent locality
// poisoning that a real TCMalloc's page heap never exhibits.  The
// lowest-addressed whole page wins, deterministically.  Blocks parked
// in thread caches keep their page unreclaimed, so nothing live moves.
func (h *Heap) reclaimPage(p *pool, cls int) bool {
	counts := make(map[int]int)
	best := -1
	for c := range p.central {
		whole := PageWords / classWords[c]
		for _, a := range p.central[c].blocks {
			page := int((a - h.cfg.Base) / WordSize / PageWords)
			counts[page]++
			if counts[page] == whole && (best == -1 || page < best) {
				best = page
			}
		}
	}
	if best == -1 {
		return false
	}
	oldCls := int(h.pagemap[best]) - 1
	kept := p.central[oldCls].blocks[:0]
	for _, a := range p.central[oldCls].blocks {
		if int((a-h.cfg.Base)/WordSize/PageWords) != best {
			kept = append(kept, a)
		}
	}
	p.central[oldCls].blocks = kept
	h.pagemap[best] = uint16(cls + 1)
	w := classWords[cls]
	base := h.cfg.Base + uint64(best*PageWords)*WordSize
	for k := PageWords/w - 1; k >= 0; k-- {
		p.central[cls].blocks = append(p.central[cls].blocks, base+uint64(k*w)*WordSize)
	}
	h.stats.PagesReclaimed++
	return true
}

// drainRemote reclassifies every inbox block into the owner's central
// lists.  It runs on the owner's allocation path, which is the whole
// point of the inbox: the cross-node freer appended one word and never
// touched the central lists.
func (h *Heap) drainRemote(p *pool) {
	for _, addr := range p.remote {
		i := h.wordIndex(addr, "drain")
		cls := int(h.pagemap[i/PageWords]) - 1
		p.central[cls].blocks = append(p.central[cls].blocks, addr)
	}
	h.stats.RemoteDrained += uint64(len(p.remote))
	if h.observer != nil {
		h.observer.InboxDrain(p.node, len(p.remote))
	}
	p.remote = p.remote[:0]
}

// Free returns the block at addr (which must be a block base returned
// by Alloc or a cache) to its home pool's central list.
func (h *Heap) Free(addr uint64) {
	words := h.checkFree(addr)
	if words > maxSmallWords {
		h.freeSpanTo(h.HomeNode(addr), addr, words)
		return
	}
	cls := classFor(words)
	p := h.homePool(addr)
	p.central[cls].blocks = append(p.central[cls].blocks, addr)
}

// FreeToNode returns the block at addr to its *home* node's pool on
// behalf of a thread on node from.  A same-node free pushes the home
// pool's central list directly; a cross-node free appends to the home
// pool's remote-free inbox — the freeing thread never touches the
// remote pool's central state, and the owner drains the inbox on its
// next refill.  Reports whether the free was routed cross-node.
func (h *Heap) FreeToNode(from int, addr uint64) bool {
	words := h.checkFree(addr)
	if words > maxSmallWords {
		return h.freeSpanTo(from, addr, words)
	}
	return h.releaseBlock(from, addr, classFor(words))
}

// releaseBlock routes an already-checked small block to its home pool,
// counting the routing direction.  Reports a cross-node routing.
func (h *Heap) releaseBlock(from int, addr uint64, cls int) bool {
	p := h.homePool(addr)
	if len(h.pools) == 1 {
		p.central[cls].blocks = append(p.central[cls].blocks, addr)
		return false
	}
	if p.node == h.clampNode(from) {
		p.central[cls].blocks = append(p.central[cls].blocks, addr)
		h.stats.HomeFrees++
		return false
	}
	p.remote = append(p.remote, addr)
	h.stats.RemoteFrees++
	return true
}

// SizeOf returns the usable size in bytes of the live block at addr,
// which must be a block base.
func (h *Heap) SizeOf(addr uint64) int {
	return h.blockWords(addr, "sizeof") * WordSize
}

// blockWords returns the size in words of the block containing addr and
// verifies addr is the block base.
func (h *Heap) blockWords(addr uint64, op string) int {
	i := h.wordIndex(addr, op)
	page := i / PageWords
	switch pm := h.pagemap[page]; {
	case pm == pageFree:
		panic(&Violation{Kind: VWildAccess, Addr: addr, Op: op, Detail: "address in uncarved page"})
	case pm == pageSpanBase:
		pages, ok := h.spanLive[addr]
		if !ok {
			panic(&Violation{Kind: VBadFree, Addr: addr, Op: op, Detail: "not a span base"})
		}
		return pages * PageWords
	case pm == pageSpanCont:
		panic(&Violation{Kind: VBadFree, Addr: addr, Op: op, Detail: "interior of large span"})
	default:
		cls := int(pm - 1)
		w := classWords[cls]
		offInPage := i % PageWords
		if offInPage%w != 0 {
			panic(&Violation{Kind: VBadFree, Addr: addr, Op: op, Detail: "not a block base"})
		}
		return w
	}
}

// checkFree validates a free of addr and updates liveness state.  It
// returns the block size in words.
func (h *Heap) checkFree(addr uint64) int {
	words := h.blockWords(addr, "free")
	i := h.wordIndex(addr, "free")
	if h.state != nil {
		if h.state[i] == 0 {
			panic(&Violation{Kind: VDoubleFree, Addr: addr, Op: "free"})
		}
		for j := i; j < i+words; j++ {
			h.state[j] = 0
		}
	}
	if h.cfg.Poison {
		for j := i; j < i+words; j++ {
			h.words[j] = PoisonWord
		}
	}
	h.stats.Frees++
	h.stats.LiveBlocks--
	h.stats.LiveBytes -= uint64(words) * WordSize
	return words
}

// finishAlloc marks a block live and clears it.
func (h *Heap) finishAlloc(addr uint64, words int) {
	i := int((addr - h.cfg.Base) / WordSize)
	h.allocSeq++
	if h.allocSeq == 0 {
		h.allocSeq = 1
	}
	if h.state != nil {
		for j := i; j < i+words; j++ {
			h.state[j] = h.allocSeq
		}
	}
	if h.cfg.Poison {
		for j := i; j < i+words; j++ {
			h.words[j] = 0
		}
	}
	h.stats.Allocs++
	h.stats.LiveBlocks++
	h.stats.LiveBytes += uint64(words) * WordSize
}

// carvePage assigns p's next region page to class cls and splits it
// into blocks, failing loudly if the region is exhausted (policy-level
// fallback probes the region bound before calling).  The page becomes
// resident on the given node: the region's own node under per-node
// pools, the requesting thread's node on the global single pool
// (first-touch).
func (h *Heap) carvePage(p *pool, cls int, resident int) {
	page := h.takePages(p, 1)
	h.pagemap[page] = uint16(cls + 1)
	h.pageNode[page] = int8(resident)
	w := classWords[cls]
	base := h.cfg.Base + uint64(page*PageWords)*WordSize
	n := PageWords / w
	// Push in reverse so blocks pop in address order; deterministic and
	// friendlier to the sorted master buffers built on top.
	for k := n - 1; k >= 0; k-- {
		p.central[cls].blocks = append(p.central[cls].blocks, base+uint64(k*w)*WordSize)
	}
	h.stats.PagesCarved++
}

// allocSpan allocates a run of whole pages for a large block on behalf
// of a thread on node, routed by the policy like small classes.
func (h *Heap) allocSpan(node, words int) uint64 {
	pages := (words + PageWords - 1) / PageWords
	p := h.spanPool(node, pages)
	var addr uint64
	if free := p.spanFree[pages]; len(free) > 0 {
		addr = free[len(free)-1]
		p.spanFree[pages] = free[:len(free)-1]
	} else {
		page := h.takePages(p, pages)
		h.pagemap[page] = pageSpanBase
		resident := p.node
		if len(h.pools) == 1 {
			resident = h.clampResident(node)
		}
		h.pageNode[page] = int8(resident)
		for q := page + 1; q < page+pages; q++ {
			h.pagemap[q] = pageSpanCont
			h.pageNode[q] = int8(resident)
		}
		addr = h.cfg.Base + uint64(page*PageWords)*WordSize
		h.stats.PagesCarved += uint64(pages)
	}
	h.spanLive[addr] = pages
	h.finishAlloc(addr, pages*PageWords)
	h.noteAlloc(node, addr)
	return addr
}

// spanPool selects the pool that serves one span of the given page
// count, per the policy (the span analog of allocPool).
func (h *Heap) spanPool(node, pages int) *pool {
	if len(h.pools) == 1 {
		return &h.pools[0]
	}
	return h.routePool(node, fmt.Sprintf("span of %d pages", pages),
		func(p *pool, carve bool) bool { return h.spanReady(p, pages, carve) })
}

// spanReady reports whether p can serve a span of the given page count:
// a recycled span of that size, or (when carve) a fresh region run.
func (h *Heap) spanReady(p *pool, pages int, carve bool) bool {
	if len(p.spanFree[pages]) > 0 {
		return true
	}
	return carve && p.nextPage+pages <= p.endPage
}

// freeSpanTo returns a span to its home pool's span list, reporting a
// cross-node routing.  Spans skip the remote-free inbox: returning one
// is a single append on the home pool's side table, and mixing
// page-granular spans into the block-granular inbox would complicate
// the drain for no modeled benefit.
func (h *Heap) freeSpanTo(from int, addr uint64, words int) bool {
	pages := words / PageWords
	p := h.homePool(addr)
	delete(h.spanLive, addr)
	p.spanFree[pages] = append(p.spanFree[pages], addr)
	if len(h.pools) > 1 {
		if p.node == h.clampNode(from) {
			h.stats.HomeFrees++
			return false
		}
		h.stats.RemoteFrees++
		return true
	}
	return false
}

// takePages advances p's bump pointer by n pages, failing loudly if the
// region is exhausted.
func (h *Heap) takePages(p *pool, n int) int {
	page := p.nextPage
	if page+n > p.endPage {
		panic(&Violation{Kind: VOutOfMemory, Op: "alloc",
			Detail: fmt.Sprintf("arena exhausted: need %d pages, %d words total", n, h.cfg.Words)})
	}
	p.nextPage += n
	return page
}

// MisplacedBlocks counts free blocks parked in a pool other than their
// home region's — always zero when free routing is sound, whatever the
// policy or churn pattern.  Diagnostic; the pool-accounting regression
// tests assert on it.
func (h *Heap) MisplacedBlocks() int {
	if len(h.pools) == 1 {
		return 0
	}
	n := 0
	for pi := range h.pools {
		p := &h.pools[pi]
		for cls := range p.central {
			for _, a := range p.central[cls].blocks {
				if h.HomeNode(a) != p.node {
					n++
				}
			}
		}
		for _, a := range p.remote {
			if h.HomeNode(a) != p.node {
				n++
			}
		}
		for _, spans := range p.spanFree {
			for _, a := range spans {
				if h.HomeNode(a) != p.node {
					n++
				}
			}
		}
	}
	return n
}

// LiveAt reports whether the word at addr currently belongs to a live
// allocation.  It always returns true when checking is disabled.
func (h *Heap) LiveAt(addr uint64) bool {
	if h.state == nil {
		return h.Contains(addr)
	}
	if !h.Contains(addr) || addr%WordSize != 0 {
		return false
	}
	return h.state[(addr-h.cfg.Base)/WordSize] != 0
}
