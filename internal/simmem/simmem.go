// Package simmem implements the simulated heap that underlies the
// ThreadScan reproduction: a word-addressable arena managed by a
// size-class allocator with per-thread caches, modeled on TCMalloc
// (the allocator used in the paper's evaluation, §6).
//
// Why a simulated heap at all?  The paper's mechanism — scanning thread
// stacks for words that equal malloc'd node addresses — requires that
// "addresses" be plain comparable words and that premature frees be
// observable.  Go's real heap offers neither (the GC owns it), so the
// reproduction allocates nodes at simulated addresses inside this arena.
// In checked mode every access verifies that the target word belongs to
// a live allocation, which turns any unsound reclamation decision into a
// detected access violation rather than silent corruption.  This is the
// property all of the repository's safety tests rest on.
//
// The heap is deliberately NOT goroutine-safe: the discrete-event
// scheduler in package simt serializes all simulated threads, so the
// allocator needs no locks and the whole simulation stays deterministic.
package simmem

import "fmt"

// WordSize is the size of a heap word in bytes.  All addresses are
// word-aligned; the low three bits of a node address are always zero,
// which is what lets data structures steal them for mark bits and lets
// the ThreadScan scanner mask them off (paper §4.2, "Pointer
// Operations").
const WordSize = 8

// PageWords is the number of words per allocator page.  Small size
// classes carve pages into equal blocks; large allocations take whole
// page runs (spans).
const PageWords = 1024 // 8 KiB pages

// PoisonWord is written over every word of a freed block when poisoning
// is enabled.  A thread that reads a stale reference sees this pattern,
// and any attempt to follow it as a pointer lands outside the arena.
const PoisonWord = 0xDEADBEEFDEADBEEF

// Config describes a heap instance.
type Config struct {
	// Words is the arena capacity in 8-byte words.  The arena is
	// allocated up front; the simulation fails loudly if it is
	// exhausted.  Defaults to 1<<22 (32 MiB) if zero.
	Words int

	// Base is the byte address of the first arena word.  It must be
	// word-aligned and nonzero (address 0 is the simulated nil).
	// Defaults to 1<<20.
	Base uint64

	// Check enables per-word liveness tracking: loads and stores verify
	// that the word belongs to a live allocation, frees verify block
	// identity, and double frees are detected.  Costs one uint32 of
	// host memory per arena word.
	Check bool

	// Poison fills freed blocks with PoisonWord and newly allocated
	// blocks with zeroes.  Independent of Check.
	Poison bool
}

func (c *Config) fill() {
	if c.Words == 0 {
		c.Words = 1 << 22
	}
	if c.Base == 0 {
		c.Base = 1 << 20
	}
	if c.Base%WordSize != 0 {
		panic("simmem: Config.Base must be word-aligned")
	}
}

// Stats reports allocator activity since creation.
type Stats struct {
	Allocs       uint64 // successful allocations
	Frees        uint64 // successful frees
	LiveBlocks   uint64 // currently allocated blocks
	LiveBytes    uint64 // currently allocated bytes (rounded to class size)
	PagesCarved  uint64 // pages handed to size classes or spans
	CacheHits    uint64 // allocations served from a thread cache
	CacheMisses  uint64 // allocations that had to refill from central lists
	CentralFrees uint64 // frees that overflowed a cache back to central
}

// Heap is a simulated word-addressable heap.
type Heap struct {
	cfg   Config
	words []uint64 // the arena payload
	state []uint32 // per-word allocation id; 0 = free (Check mode only)

	nextPage int        // bump pointer, in pages
	central  []freeList // one per size class
	spanFree map[int][]uint64
	spanLive map[uint64]int // span base addr -> pages
	pagemap  []uint16       // per page: 0 free, 1+class, spanStart, spanCont

	allocSeq uint32
	stats    Stats
}

const (
	pageFree     = 0
	pageSpanBase = 0xFFFF
	pageSpanCont = 0xFFFE
)

type freeList struct {
	blocks []uint64 // LIFO of block base addresses
}

// New creates a heap from cfg.
func New(cfg Config) *Heap {
	cfg.fill()
	h := &Heap{
		cfg:      cfg,
		words:    make([]uint64, cfg.Words),
		central:  make([]freeList, numClasses),
		spanFree: make(map[int][]uint64),
		spanLive: make(map[uint64]int),
		pagemap:  make([]uint16, (cfg.Words+PageWords-1)/PageWords),
	}
	if cfg.Check {
		h.state = make([]uint32, cfg.Words)
	}
	return h
}

// Base returns the byte address of the first arena word.
func (h *Heap) Base() uint64 { return h.cfg.Base }

// Limit returns one past the last valid byte address.
func (h *Heap) Limit() uint64 { return h.cfg.Base + uint64(h.cfg.Words)*WordSize }

// Contains reports whether addr falls inside the arena.
func (h *Heap) Contains(addr uint64) bool {
	return addr >= h.cfg.Base && addr < h.Limit()
}

// Stats returns a snapshot of allocator counters.
func (h *Heap) Stats() Stats { return h.stats }

// wordIndex converts a byte address to an arena word index, checking
// bounds and alignment.
func (h *Heap) wordIndex(addr uint64, op string) int {
	if addr == 0 {
		panic(&Violation{Kind: VNilDeref, Addr: addr, Op: op})
	}
	if addr%WordSize != 0 {
		panic(&Violation{Kind: VUnaligned, Addr: addr, Op: op})
	}
	if !h.Contains(addr) {
		panic(&Violation{Kind: VWildAccess, Addr: addr, Op: op})
	}
	return int((addr - h.cfg.Base) / WordSize)
}

// Load reads the word at addr.  In checked mode it verifies the word
// belongs to a live allocation.
func (h *Heap) Load(addr uint64) uint64 {
	i := h.wordIndex(addr, "load")
	if h.state != nil && h.state[i] == 0 {
		panic(&Violation{Kind: VUseAfterFree, Addr: addr, Op: "load"})
	}
	return h.words[i]
}

// Store writes val to the word at addr, with the same checks as Load.
func (h *Heap) Store(addr uint64, val uint64) {
	i := h.wordIndex(addr, "store")
	if h.state != nil && h.state[i] == 0 {
		panic(&Violation{Kind: VUseAfterFree, Addr: addr, Op: "store"})
	}
	h.words[i] = val
}

// CompareAndSwap atomically (with respect to simulated threads, which
// the scheduler serializes) replaces the word at addr with new if it
// currently equals old.  It reports whether the swap happened.
func (h *Heap) CompareAndSwap(addr uint64, old, new uint64) bool {
	i := h.wordIndex(addr, "cas")
	if h.state != nil && h.state[i] == 0 {
		panic(&Violation{Kind: VUseAfterFree, Addr: addr, Op: "cas"})
	}
	if h.words[i] != old {
		return false
	}
	h.words[i] = new
	return true
}

// Alloc allocates a block of at least size bytes directly from the
// central lists (no thread cache).  It returns the block's base address.
func (h *Heap) Alloc(size int) uint64 {
	if size <= 0 {
		panic("simmem: Alloc of non-positive size")
	}
	words := (size + WordSize - 1) / WordSize
	if words > maxSmallWords {
		return h.allocSpan(words)
	}
	cls := classFor(words)
	if len(h.central[cls].blocks) == 0 {
		h.carvePage(cls)
	}
	blocks := h.central[cls].blocks
	addr := blocks[len(blocks)-1]
	h.central[cls].blocks = blocks[:len(blocks)-1]
	h.finishAlloc(addr, classWords[cls])
	return addr
}

// Free returns the block at addr (which must be a block base returned
// by Alloc or a cache) to the central lists.
func (h *Heap) Free(addr uint64) {
	words := h.checkFree(addr)
	if words > maxSmallWords {
		h.freeSpan(addr, words)
		return
	}
	cls := classFor(words)
	h.central[cls].blocks = append(h.central[cls].blocks, addr)
}

// SizeOf returns the usable size in bytes of the live block at addr,
// which must be a block base.
func (h *Heap) SizeOf(addr uint64) int {
	return h.blockWords(addr, "sizeof") * WordSize
}

// blockWords returns the size in words of the block containing addr and
// verifies addr is the block base.
func (h *Heap) blockWords(addr uint64, op string) int {
	i := h.wordIndex(addr, op)
	page := i / PageWords
	switch pm := h.pagemap[page]; {
	case pm == pageFree:
		panic(&Violation{Kind: VWildAccess, Addr: addr, Op: op, Detail: "address in uncarved page"})
	case pm == pageSpanBase:
		pages, ok := h.spanLive[addr]
		if !ok {
			panic(&Violation{Kind: VBadFree, Addr: addr, Op: op, Detail: "not a span base"})
		}
		return pages * PageWords
	case pm == pageSpanCont:
		panic(&Violation{Kind: VBadFree, Addr: addr, Op: op, Detail: "interior of large span"})
	default:
		cls := int(pm - 1)
		w := classWords[cls]
		offInPage := i % PageWords
		if offInPage%w != 0 {
			panic(&Violation{Kind: VBadFree, Addr: addr, Op: op, Detail: "not a block base"})
		}
		return w
	}
}

// checkFree validates a free of addr and updates liveness state.  It
// returns the block size in words.
func (h *Heap) checkFree(addr uint64) int {
	words := h.blockWords(addr, "free")
	i := h.wordIndex(addr, "free")
	if h.state != nil {
		if h.state[i] == 0 {
			panic(&Violation{Kind: VDoubleFree, Addr: addr, Op: "free"})
		}
		for j := i; j < i+words; j++ {
			h.state[j] = 0
		}
	}
	if h.cfg.Poison {
		for j := i; j < i+words; j++ {
			h.words[j] = PoisonWord
		}
	}
	h.stats.Frees++
	h.stats.LiveBlocks--
	h.stats.LiveBytes -= uint64(words) * WordSize
	return words
}

// finishAlloc marks a block live and clears it.
func (h *Heap) finishAlloc(addr uint64, words int) {
	i := int((addr - h.cfg.Base) / WordSize)
	h.allocSeq++
	if h.allocSeq == 0 {
		h.allocSeq = 1
	}
	if h.state != nil {
		for j := i; j < i+words; j++ {
			h.state[j] = h.allocSeq
		}
	}
	if h.cfg.Poison {
		for j := i; j < i+words; j++ {
			h.words[j] = 0
		}
	}
	h.stats.Allocs++
	h.stats.LiveBlocks++
	h.stats.LiveBytes += uint64(words) * WordSize
}

// carvePage assigns a fresh page to class cls and splits it into blocks.
func (h *Heap) carvePage(cls int) {
	page := h.takePages(1)
	h.pagemap[page] = uint16(cls + 1)
	w := classWords[cls]
	base := h.cfg.Base + uint64(page*PageWords)*WordSize
	n := PageWords / w
	// Push in reverse so blocks pop in address order; deterministic and
	// friendlier to the sorted master buffers built on top.
	for k := n - 1; k >= 0; k-- {
		h.central[cls].blocks = append(h.central[cls].blocks, base+uint64(k*w)*WordSize)
	}
	h.stats.PagesCarved++
}

// allocSpan allocates a run of whole pages for a large block.
func (h *Heap) allocSpan(words int) uint64 {
	pages := (words + PageWords - 1) / PageWords
	var addr uint64
	if free := h.spanFree[pages]; len(free) > 0 {
		addr = free[len(free)-1]
		h.spanFree[pages] = free[:len(free)-1]
	} else {
		page := h.takePages(pages)
		h.pagemap[page] = pageSpanBase
		for p := page + 1; p < page+pages; p++ {
			h.pagemap[p] = pageSpanCont
		}
		addr = h.cfg.Base + uint64(page*PageWords)*WordSize
		h.stats.PagesCarved += uint64(pages)
	}
	h.spanLive[addr] = pages
	h.finishAlloc(addr, pages*PageWords)
	return addr
}

func (h *Heap) freeSpan(addr uint64, words int) {
	pages := words / PageWords
	delete(h.spanLive, addr)
	h.spanFree[pages] = append(h.spanFree[pages], addr)
}

// takePages advances the bump pointer by n pages, failing loudly if the
// arena is exhausted.
func (h *Heap) takePages(n int) int {
	page := h.nextPage
	if (page+n)*PageWords > h.cfg.Words {
		panic(&Violation{Kind: VOutOfMemory, Op: "alloc",
			Detail: fmt.Sprintf("arena exhausted: need %d pages, %d words total", n, h.cfg.Words)})
	}
	h.nextPage += n
	return page
}

// LiveAt reports whether the word at addr currently belongs to a live
// allocation.  It always returns true when checking is disabled.
func (h *Heap) LiveAt(addr uint64) bool {
	if h.state == nil {
		return h.Contains(addr)
	}
	if !h.Contains(addr) || addr%WordSize != 0 {
		return false
	}
	return h.state[(addr-h.cfg.Base)/WordSize] != 0
}
