package simmem

import (
	"strings"
	"testing"
)

func TestViolationStrings(t *testing.T) {
	kinds := []ViolationKind{
		VNilDeref, VUnaligned, VWildAccess, VUseAfterFree,
		VDoubleFree, VBadFree, VOutOfMemory, ViolationKind(42),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("ViolationKind(%d).String() empty", int(k))
		}
	}
	v := &Violation{Kind: VBadFree, Addr: 0x100, Op: "free"}
	if !strings.Contains(v.Error(), "bad free") {
		t.Errorf("Error() = %q", v.Error())
	}
	v.Detail = "not a block base"
	if !strings.Contains(v.Error(), "not a block base") {
		t.Errorf("Error() with detail = %q", v.Error())
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	h := New(Config{})
	if h.Base() == 0 || h.Limit() <= h.Base() {
		t.Fatalf("defaults: base %#x limit %#x", h.Base(), h.Limit())
	}
	if h.Pools() != 1 {
		t.Fatalf("default pools = %d", h.Pools())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Base accepted")
		}
	}()
	New(Config{Base: 12345})
}

func TestCacheNodeAccessor(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<14)
	if got := h.NewCacheOn(1).Node(); got != 1 {
		t.Fatalf("Node() = %d", got)
	}
	if got := h.NewCacheOn(-3).Node(); got != 0 {
		t.Fatalf("clamped Node() = %d", got)
	}
	if got := h.NewCacheOn(9).Node(); got != 1 {
		t.Fatalf("over-clamped Node() = %d", got)
	}
	if got := h.NewCache().Node(); got != 0 {
		t.Fatalf("NewCache Node() = %d", got)
	}
}

func TestInterleaveSpansRotate(t *testing.T) {
	h := twoNodeHeap(PolicyInterleave, 16*PageWords)
	span := PageWords * WordSize
	seen := map[int]int{}
	var addrs []uint64
	for i := 0; i < 4; i++ {
		a := h.AllocOn(0, span)
		addrs = append(addrs, a)
		seen[h.HomeNode(a)]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("interleaved spans never reached both regions: %v", seen)
	}
	// Freed spans recycle from their home pool, wherever freed from.
	for _, a := range addrs {
		h.FreeToNode(0, a)
	}
	if h.MisplacedBlocks() != 0 {
		t.Fatalf("misplaced spans: %d", h.MisplacedBlocks())
	}
	reused := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		reused[h.AllocOn(0, span)] = true
	}
	for _, a := range addrs {
		if !reused[a] {
			t.Errorf("span %#x not recycled", a)
		}
	}
}

func TestLocalallocSpanFallsBack(t *testing.T) {
	// Node 0's region (2 pages) cannot fit a 2-page span after one page
	// is carved for small classes; the span must land on node 1.
	h := twoNodeHeap(PolicyLocal, 4*PageWords)
	h.AllocOn(0, 64) // carves one node-0 page
	a := h.AllocOn(0, 2*PageWords*WordSize)
	if got := h.HomeNode(a); got != 1 {
		t.Fatalf("span fell back to region %d, want 1", got)
	}
	if h.Stats().RemoteAllocs != 1 {
		t.Fatalf("RemoteAllocs = %d", h.Stats().RemoteAllocs)
	}
}

func TestSingleNodePolicyHeapActsGlobal(t *testing.T) {
	// Nodes=1 with a non-global policy stays a single pool: the
	// bit-identity contract is about pool count, not the policy knob.
	h := New(Config{Words: 1 << 14, Check: true, Nodes: 1, Policy: PolicyMembind})
	if h.Pools() != 1 {
		t.Fatalf("Pools() = %d", h.Pools())
	}
	a := h.Alloc(172)
	h.FreeToNode(0, a)
	if b := h.Alloc(172); b != a {
		t.Fatalf("single-pool FreeToNode not LIFO: %#x then %#x", a, b)
	}
	if s := h.Stats(); s.HomeFrees != 0 || s.RemoteFrees != 0 || s.RemoteAllocs != 0 {
		t.Fatalf("single pool counted NUMA traffic: %+v", s)
	}
}

func TestResidentNodeOutOfRange(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<14)
	if got := h.ResidentNode(h.Base()); got != 0 {
		t.Fatalf("uncarved page resident on %d", got)
	}
	if got := h.ResidentNode(h.Limit() + 4096); got != 0 {
		t.Fatalf("out-of-arena address resident on %d", got)
	}
}

func TestLiveAtRejectsUnaligned(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<14)
	a := h.AllocOn(0, 64)
	if h.LiveAt(a + 3) {
		t.Fatal("LiveAt true for unaligned address")
	}
}

func TestClassForClampsTinyRequests(t *testing.T) {
	if classFor(0) != classFor(1) {
		t.Fatal("classFor(0) did not clamp to the smallest class")
	}
}

func TestAllocOnNonPositiveSizePanics(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<14)
	defer func() {
		if recover() == nil {
			t.Fatal("AllocOn(0) accepted")
		}
	}()
	h.AllocOn(0, 0)
}
