package simmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickNoLiveOverlap property-checks the central allocator
// invariant: no two live blocks ever overlap, every block stays inside
// the arena, and frees make the space reusable.
func TestQuickNoLiveOverlap(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(Config{Words: 1 << 15, Check: true})
		type block struct {
			addr uint64
			size int
		}
		var live []block
		for i := 0; i < int(nOps)+1; i++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				size := 1 + rng.Intn(600)
				addr := h.Alloc(size)
				rounded := ClassSizeBytes(size)
				if addr%WordSize != 0 || !h.Contains(addr) || !h.Contains(addr+uint64(rounded)-WordSize) {
					return false
				}
				for _, b := range live {
					bEnd := b.addr + uint64(ClassSizeBytes(b.size))
					nEnd := addr + uint64(rounded)
					if addr < bEnd && b.addr < nEnd {
						t.Logf("overlap: [%#x,%#x) with [%#x,%#x)", addr, nEnd, b.addr, bEnd)
						return false
					}
				}
				live = append(live, block{addr, size})
			} else {
				k := rng.Intn(len(live))
				h.Free(live[k].addr)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSizeOfMatchesClass property-checks SizeOf against the class
// rounding function for arbitrary sizes.
func TestQuickSizeOfMatchesClass(t *testing.T) {
	h := New(Config{Words: 1 << 18, Check: true})
	f := func(raw uint16) bool {
		size := int(raw)%4000 + 1
		addr := h.Alloc(size)
		ok := h.SizeOf(addr) == ClassSizeBytes(size)
		h.Free(addr)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLoadStoreIsolation property-checks that stores to one block
// never bleed into a neighbouring block.
func TestQuickLoadStoreIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(Config{Words: 1 << 14, Check: true})
		a := h.Alloc(64)
		b := h.Alloc(64)
		va, vb := rng.Uint64(), rng.Uint64()
		for i := uint64(0); i < 8; i++ {
			h.Store(a+i*WordSize, va+i)
			h.Store(b+i*WordSize, vb+i)
		}
		for i := uint64(0); i < 8; i++ {
			if h.Load(a+i*WordSize) != va+i || h.Load(b+i*WordSize) != vb+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCacheEquivalence property-checks that allocating through a
// thread cache yields the same liveness semantics as central
// allocation: unique addresses while live, reusable after free.
func TestQuickCacheEquivalence(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(Config{Words: 1 << 15, Check: true})
		c := h.NewCache()
		live := map[uint64]bool{}
		for i := 0; i < int(nOps)+1; i++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				addr := c.Alloc(1 + rng.Intn(300))
				if live[addr] {
					return false // handed out a live address twice
				}
				live[addr] = true
			} else {
				for addr := range live {
					c.Free(addr)
					delete(live, addr)
					break
				}
			}
		}
		return h.Stats().LiveBlocks == uint64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
