package simmem

import (
	"errors"
	"testing"
)

// twoNodeHeap returns a checked heap with per-node pools under the
// given policy.  words must be a multiple of PageWords for exact
// region-split assertions.
func twoNodeHeap(policy Policy, words int) *Heap {
	return New(Config{Words: words, Check: true, Poison: true, Nodes: 2, Policy: policy})
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"", PolicyGlobal}, {"global", PolicyGlobal},
		{"local", PolicyLocal}, {"localalloc", PolicyLocal},
		{"membind", PolicyMembind}, {"interleave", PolicyInterleave},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePolicy("firsttouch"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	for _, p := range []Policy{PolicyGlobal, PolicyLocal, PolicyMembind, PolicyInterleave, Policy(99)} {
		if p.String() == "" {
			t.Errorf("Policy(%d).String() empty", int(p))
		}
	}
}

func TestGlobalPolicyKeepsSinglePool(t *testing.T) {
	h := New(Config{Words: 1 << 16, Check: true, Nodes: 4, Policy: PolicyGlobal})
	if h.Pools() != 1 {
		t.Fatalf("global policy built %d pools, want 1", h.Pools())
	}
	if h.Policy() != PolicyGlobal {
		t.Fatalf("Policy() = %v", h.Policy())
	}
	// Residency is still tracked per carving node on the single pool.
	c1 := h.NewCacheOn(1)
	a := c1.Alloc(64)
	if got := h.ResidentNode(a); got != 1 {
		t.Fatalf("block carved by node 1 resident on %d", got)
	}
	// ...and a cross-node hand-out counts as a remote alloc.
	c1.Free(a)
	c1.Flush() // push the magazine to the shared central list
	c0 := h.NewCacheOn(0)
	b := c0.Alloc(64)
	if b != a {
		t.Fatalf("single pool did not recycle LIFO: %#x then %#x", a, b)
	}
	if h.Stats().RemoteAllocs != 1 {
		t.Fatalf("RemoteAllocs = %d, want 1 (node 0 recycled node 1's block)", h.Stats().RemoteAllocs)
	}
	// No per-node pools => no free routing, no home/remote split.
	if s := h.Stats(); s.HomeFrees != 0 || s.RemoteFrees != 0 {
		t.Fatalf("single pool counted pool routing: %+v", s)
	}
}

func TestLocalallocServesHomeRegion(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<16)
	if h.Pools() != 2 {
		t.Fatalf("Pools() = %d, want 2", h.Pools())
	}
	for node := 0; node < 2; node++ {
		c := h.NewCacheOn(node)
		for i := 0; i < 100; i++ {
			a := c.Alloc(172)
			if got := h.HomeNode(a); got != node {
				t.Fatalf("node %d alloc %d homed on %d", node, i, got)
			}
			if got := h.ResidentNode(a); got != node {
				t.Fatalf("node %d alloc %d resident on %d", node, i, got)
			}
		}
	}
	if got := h.Stats().RemoteAllocs; got != 0 {
		t.Fatalf("RemoteAllocs = %d under pure-local traffic", got)
	}
}

func TestLocalallocFallsBackWhenRegionExhausted(t *testing.T) {
	// 4 pages, 2 nodes: 2 pages per region.  Node 0 exhausts its region
	// with spans, then a small alloc must fall back to node 1's region
	// instead of failing.
	h := twoNodeHeap(PolicyLocal, 4*PageWords)
	span := PageWords * WordSize
	a0 := h.AllocOn(0, span)
	a1 := h.AllocOn(0, span)
	if h.HomeNode(a0) != 0 || h.HomeNode(a1) != 0 {
		t.Fatalf("node 0 spans homed on %d/%d", h.HomeNode(a0), h.HomeNode(a1))
	}
	b := h.AllocOn(0, 64)
	if got := h.HomeNode(b); got != 1 {
		t.Fatalf("fallback alloc homed on %d, want 1", got)
	}
	if got := h.Stats().RemoteAllocs; got != 1 {
		t.Fatalf("RemoteAllocs = %d, want 1 for the fallback hand-out", got)
	}
}

// TestLocalallocReclaimsPagesAfterSpike: the region-exhaustion
// follow-on fix.  A transient spike of one size class carves up a
// node's whole region; once the spike drains back to the central free
// lists, allocations of *another* class on that node must recycle those
// pages locally instead of falling back to remote pools forever.
func TestLocalallocReclaimsPagesAfterSpike(t *testing.T) {
	// 8 pages, 2 nodes: 4 pages per region.
	h := twoNodeHeap(PolicyLocal, 8*PageWords)
	var spike []uint64
	for i := 0; i < 4*PageWords/16; i++ {
		spike = append(spike, h.AllocOn(0, 16*WordSize))
	}
	if got := h.Stats().RemoteAllocs; got != 0 {
		t.Fatalf("spike itself went remote: RemoteAllocs = %d", got)
	}
	for _, a := range spike {
		h.FreeToNode(0, a)
	}
	// Node 0's bump pointer is exhausted and its 16-word list holds the
	// whole region; a different class must still be served locally.
	for i := 0; i < 4*PageWords/64; i++ {
		a := h.AllocOn(0, 64*WordSize)
		if got := h.HomeNode(a); got != 0 {
			t.Fatalf("post-spike alloc %d homed on node %d, want 0", i, got)
		}
	}
	s := h.Stats()
	if s.RemoteAllocs != 0 {
		t.Fatalf("RemoteAllocs = %d after the spike drained, want 0", s.RemoteAllocs)
	}
	if s.PagesReclaimed != 4 {
		t.Fatalf("PagesReclaimed = %d, want 4 (the whole drained region)", s.PagesReclaimed)
	}
	if got := h.MisplacedBlocks(); got != 0 {
		t.Fatalf("MisplacedBlocks = %d after reclaim", got)
	}
}

func TestMembindFailsWhenNodeExhausted(t *testing.T) {
	// Same shape as the localalloc fallback test, but membind must OOM
	// on node 0 even though node 1 still has both its pages.
	h := twoNodeHeap(PolicyMembind, 4*PageWords)
	span := PageWords * WordSize
	h.AllocOn(0, span)
	h.AllocOn(0, span)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("membind alloc on an exhausted node did not fail")
		}
		var v *Violation
		if !errors.As(r.(error), &v) || v.Kind != VOutOfMemory {
			t.Fatalf("expected VOutOfMemory, got %v", r)
		}
		// Node 1's region must still be allocatable afterwards.
		if got := h.HomeNode(h.AllocOn(1, 64)); got != 1 {
			t.Fatalf("node 1 alloc homed on %d", got)
		}
	}()
	h.AllocOn(0, 64)
}

func TestMembindSpanFailsWhenNodeExhausted(t *testing.T) {
	h := twoNodeHeap(PolicyMembind, 4*PageWords)
	h.AllocOn(0, 2*PageWords*WordSize)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("membind span on an exhausted node did not fail")
		}
		var v *Violation
		if !errors.As(r.(error), &v) || v.Kind != VOutOfMemory {
			t.Fatalf("expected VOutOfMemory, got %v", r)
		}
	}()
	h.AllocOn(0, PageWords*WordSize)
}

func TestInterleaveRoundRobinDeterminism(t *testing.T) {
	run := func() []uint64 {
		h := twoNodeHeap(PolicyInterleave, 1<<16)
		c := h.NewCacheOn(0)
		var addrs []uint64
		for i := 0; i < 200; i++ {
			addrs = append(addrs, c.Alloc(172))
		}
		return addrs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleave alloc %d diverged across identical runs: %#x vs %#x", i, a[i], b[i])
		}
	}
	// The rotor must actually spread pages across both regions.
	h := twoNodeHeap(PolicyInterleave, 1<<16)
	c := h.NewCacheOn(0)
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		seen[h.HomeNode(c.Alloc(172))]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("interleave never reached both regions: %v", seen)
	}
	if h.Stats().RemoteAllocs == 0 {
		t.Fatal("interleave on node 0 never counted a remote hand-out")
	}
}

func TestNonPowerOfTwoNodeRegions(t *testing.T) {
	// 3 nodes over 8 pages: regions are near-equal contiguous blocks
	// ([0,2), [2,5), [5,8)) that partition every page.
	const pages = 8
	h := New(Config{Words: pages * PageWords, Check: true, Nodes: 3, Policy: PolicyLocal})
	if h.Pools() != 3 {
		t.Fatalf("Pools() = %d, want 3", h.Pools())
	}
	counts := map[int]int{}
	for p := 0; p < pages; p++ {
		addr := h.Base() + uint64(p*PageWords)*WordSize
		counts[h.HomeNode(addr)]++
	}
	total := 0
	for n := 0; n < 3; n++ {
		if counts[n] == 0 {
			t.Fatalf("node %d owns no pages: %v", n, counts)
		}
		total += counts[n]
	}
	if total != pages {
		t.Fatalf("regions cover %d of %d pages", total, pages)
	}
	// Every node can allocate from its own region.
	for n := 0; n < 3; n++ {
		if got := h.HomeNode(h.AllocOn(n, 64)); got != n {
			t.Fatalf("node %d alloc homed on %d", n, got)
		}
	}
	if h.Stats().RemoteAllocs != 0 {
		t.Fatalf("RemoteAllocs = %d", h.Stats().RemoteAllocs)
	}
}

func TestMoreNodesThanPagesClamps(t *testing.T) {
	h := New(Config{Words: 2 * PageWords, Check: true, Nodes: 8, Policy: PolicyLocal})
	if h.Pools() > 2 {
		t.Fatalf("Pools() = %d for a 2-page arena", h.Pools())
	}
	// Requests from out-of-range nodes clamp instead of panicking.
	if a := h.AllocOn(7, 64); !h.Contains(a) {
		t.Fatal("clamped alloc escaped the arena")
	}
	if a := h.AllocOn(-1, 64); !h.Contains(a) {
		t.Fatal("negative-node alloc escaped the arena")
	}
}

func TestFreeToNodeRoutesHome(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<16)
	a := h.AllocOn(0, 172) // resident node 0

	// Same-node free: straight onto the home central list.
	h.FreeToNode(0, a)
	if s := h.Stats(); s.HomeFrees != 1 || s.RemoteFrees != 0 {
		t.Fatalf("same-node free counted %+v", s)
	}
	if b := h.AllocOn(0, 172); b != a {
		t.Fatalf("home free not LIFO-reused: %#x then %#x", a, b)
	}

	// Cross-node free: inbox, drained by the owner once its central
	// list for the class runs dry (before carving a fresh page).
	if remote := h.FreeToNode(1, a); !remote {
		t.Fatal("cross-node free not reported remote")
	}
	if s := h.Stats(); s.RemoteFrees != 1 {
		t.Fatalf("cross-node free counted %+v", s)
	}
	if h.MisplacedBlocks() != 0 {
		t.Fatalf("misplaced blocks after inbox routing: %d", h.MisplacedBlocks())
	}
	pagesBefore := h.Stats().PagesCarved
	found := false
	for i := 0; i < 2*PageWords && !found; i++ {
		found = h.AllocOn(0, 172) == a
	}
	if !found {
		t.Fatal("inbox block never drained back to the owner")
	}
	if got := h.Stats().RemoteDrained; got != 1 {
		t.Fatalf("RemoteDrained = %d, want 1", got)
	}
	if h.Stats().PagesCarved != pagesBefore {
		t.Fatal("owner carved a fresh page instead of draining its inbox first")
	}
}

func TestFreeToNodeSpanRoutesHome(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 8*PageWords)
	span := 2 * PageWords * WordSize
	a := h.AllocOn(1, span)
	if remote := h.FreeToNode(0, a); !remote {
		t.Fatal("cross-node span free not reported remote")
	}
	if b := h.AllocOn(1, span); b != a {
		t.Fatalf("span not recycled on its home node: %#x then %#x", a, b)
	}
	if h.MisplacedBlocks() != 0 {
		t.Fatalf("misplaced blocks: %d", h.MisplacedBlocks())
	}
}

func TestCacheCrossNodeFreeStagesAndFlushes(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<16)
	c0, c1 := h.NewCacheOn(0), h.NewCacheOn(1)

	// Node 0 allocates fewer than a remote batch; node 1 frees them all:
	// they stage in c1 (no flush yet) and must reach node 0's pool at
	// cache Flush, not be stranded or dumped into node 1's lists.
	var addrs []uint64
	for i := 0; i < remoteBatch-1; i++ {
		addrs = append(addrs, c0.Alloc(172))
	}
	for _, a := range addrs {
		if flushed := c1.Free(a); flushed {
			t.Fatalf("free %#x flushed before a full batch", a)
		}
	}
	if got := h.Stats().RemoteFrees; got != uint64(len(addrs)) {
		t.Fatalf("RemoteFrees = %d, want %d", got, len(addrs))
	}
	c1.Flush()
	if h.MisplacedBlocks() != 0 {
		t.Fatalf("misplaced blocks after flush: %d", h.MisplacedBlocks())
	}
	// Node 0 reallocates through its own pool until every flushed block
	// has come back (the inbox drains once the central list runs dry).
	got := map[uint64]bool{}
	for i := 0; i < 4*PageWords; i++ {
		got[c0.Alloc(172)] = true
		done := true
		for _, a := range addrs {
			if !got[a] {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	for _, a := range addrs {
		if !got[a] {
			t.Fatalf("block %#x did not return to node 0's pool", a)
		}
	}
	if h.Stats().RemoteDrained != uint64(len(addrs)) {
		t.Fatalf("RemoteDrained = %d, want %d", h.Stats().RemoteDrained, len(addrs))
	}
}

func TestCacheCrossNodeFreeFlushesFullBatch(t *testing.T) {
	h := twoNodeHeap(PolicyLocal, 1<<17)
	c0, c1 := h.NewCacheOn(0), h.NewCacheOn(1)
	var addrs []uint64
	for i := 0; i < remoteBatch; i++ {
		addrs = append(addrs, c0.Alloc(172))
	}
	flushes := 0
	for _, a := range addrs {
		if c1.Free(a) {
			flushes++
		}
	}
	if flushes != 1 {
		t.Fatalf("%d flushes across one full batch, want exactly 1", flushes)
	}
	if h.MisplacedBlocks() != 0 {
		t.Fatalf("misplaced blocks: %d", h.MisplacedBlocks())
	}
}

func TestCacheSpillAttributesHomePools(t *testing.T) {
	// Interleave refills pull both nodes' blocks into one magazine; a
	// spill (and the final flush) must route every block back to its
	// own region, never dump the magazine into one list.
	h := twoNodeHeap(PolicyInterleave, 1<<17)
	c := h.NewCacheOn(0)
	var addrs []uint64
	for i := 0; i < 300; i++ {
		addrs = append(addrs, c.Alloc(172))
	}
	for _, a := range addrs {
		c.Free(a) // overflows the magazine repeatedly => spills
	}
	c.Flush()
	if h.MisplacedBlocks() != 0 {
		t.Fatalf("misplaced blocks after spill+flush: %d", h.MisplacedBlocks())
	}
	if h.Stats().LiveBlocks != 0 {
		t.Fatalf("LiveBlocks = %d", h.Stats().LiveBlocks)
	}
}
