package simmem

import (
	"testing"
)

func checkedHeap() *Heap {
	return New(Config{Words: 1 << 16, Check: true, Poison: true})
}

// expectViolation runs f and asserts it panics with a *Violation of the
// given kind.
func expectViolation(t *testing.T, kind ViolationKind, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected %v violation, got none", kind)
		}
		v, ok := r.(*Violation)
		if !ok {
			panic(r)
		}
		if v.Kind != kind {
			t.Fatalf("expected %v violation, got %v (%s)", kind, v.Kind, v.Error())
		}
	}()
	f()
}

func TestAllocReturnsAlignedInArena(t *testing.T) {
	h := checkedHeap()
	for _, size := range []int{1, 8, 9, 16, 100, 172, 1024, 4096} {
		addr := h.Alloc(size)
		if addr%WordSize != 0 {
			t.Errorf("Alloc(%d) returned unaligned address %#x", size, addr)
		}
		if !h.Contains(addr) {
			t.Errorf("Alloc(%d) returned address %#x outside arena", size, addr)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	h := checkedHeap()
	addr := h.Alloc(64)
	for i := uint64(0); i < 8; i++ {
		h.Store(addr+i*WordSize, i*i+1)
	}
	for i := uint64(0); i < 8; i++ {
		if got := h.Load(addr + i*WordSize); got != i*i+1 {
			t.Errorf("word %d: got %d want %d", i, got, i*i+1)
		}
	}
}

func TestAllocZeroesBlock(t *testing.T) {
	h := checkedHeap()
	a := h.Alloc(64)
	for i := uint64(0); i < 8; i++ {
		h.Store(a+i*WordSize, PoisonWord)
	}
	h.Free(a)
	b := h.Alloc(64)
	if b != a {
		t.Fatalf("expected address reuse, got %#x then %#x", a, b)
	}
	for i := uint64(0); i < 8; i++ {
		if got := h.Load(b + i*WordSize); got != 0 {
			t.Errorf("word %d not zeroed after realloc: %#x", i, got)
		}
	}
}

func TestCASSemantics(t *testing.T) {
	h := checkedHeap()
	addr := h.Alloc(8)
	h.Store(addr, 5)
	if h.CompareAndSwap(addr, 4, 9) {
		t.Error("CAS with wrong expected value succeeded")
	}
	if got := h.Load(addr); got != 5 {
		t.Errorf("failed CAS modified memory: %d", got)
	}
	if !h.CompareAndSwap(addr, 5, 9) {
		t.Error("CAS with correct expected value failed")
	}
	if got := h.Load(addr); got != 9 {
		t.Errorf("after CAS: got %d want 9", got)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	h := checkedHeap()
	addr := h.Alloc(32)
	h.Free(addr)
	expectViolation(t, VUseAfterFree, func() { h.Load(addr) })
	expectViolation(t, VUseAfterFree, func() { h.Store(addr, 1) })
	expectViolation(t, VUseAfterFree, func() { h.CompareAndSwap(addr, 0, 1) })
}

func TestDoubleFreeDetected(t *testing.T) {
	h := checkedHeap()
	addr := h.Alloc(32)
	h.Free(addr)
	expectViolation(t, VDoubleFree, func() { h.Free(addr) })
}

func TestInteriorFreeDetected(t *testing.T) {
	h := checkedHeap()
	addr := h.Alloc(64)
	expectViolation(t, VBadFree, func() { h.Free(addr + 8) })
}

func TestNilAndWildAccess(t *testing.T) {
	h := checkedHeap()
	expectViolation(t, VNilDeref, func() { h.Load(0) })
	expectViolation(t, VUnaligned, func() { h.Load(h.Base() + 3) })
	expectViolation(t, VWildAccess, func() { h.Load(h.Limit() + 8) })
	expectViolation(t, VWildAccess, func() { h.Load(8) })
}

func TestFreePoisons(t *testing.T) {
	h := New(Config{Words: 1 << 14, Check: false, Poison: true})
	addr := h.Alloc(32)
	h.Store(addr, 42)
	h.Free(addr)
	// Without Check, the load succeeds but must observe poison.
	if got := h.Load(addr); got != PoisonWord {
		t.Errorf("freed word not poisoned: %#x", got)
	}
}

func TestSizeOf(t *testing.T) {
	h := checkedHeap()
	for _, tc := range []struct{ req, want int }{
		{8, 16}, {16, 16}, {17, 24}, {172, 192}, {104, 112},
	} {
		addr := h.Alloc(tc.req)
		if got := h.SizeOf(addr); got != tc.want {
			t.Errorf("SizeOf(Alloc(%d)) = %d, want %d", tc.req, got, tc.want)
		}
	}
}

func TestLargeSpanAllocFree(t *testing.T) {
	h := checkedHeap()
	size := 3 * PageWords * WordSize // 3 pages
	addr := h.Alloc(size)
	if got := h.SizeOf(addr); got != size {
		t.Fatalf("span SizeOf = %d, want %d", got, size)
	}
	last := addr + uint64(size) - WordSize
	h.Store(last, 7)
	if h.Load(last) != 7 {
		t.Fatal("span tail word lost")
	}
	h.Free(addr)
	expectViolation(t, VUseAfterFree, func() { h.Load(addr) })
	// The span is recycled for the next same-size request.
	again := h.Alloc(size)
	if again != addr {
		t.Errorf("span not recycled: %#x then %#x", addr, again)
	}
}

func TestSpanInteriorFreeDetected(t *testing.T) {
	h := checkedHeap()
	addr := h.Alloc(2 * PageWords * WordSize)
	expectViolation(t, VBadFree, func() { h.Free(addr + PageWords*WordSize) })
}

func TestOutOfMemory(t *testing.T) {
	h := New(Config{Words: 2 * PageWords, Check: true})
	h.Alloc(PageWords * WordSize)
	h.Alloc(PageWords * WordSize)
	expectViolation(t, VOutOfMemory, func() { h.Alloc(8) })
}

func TestAddressReuseLIFO(t *testing.T) {
	h := checkedHeap()
	a := h.Alloc(100)
	h.Free(a)
	b := h.Alloc(100)
	if a != b {
		t.Errorf("same-class realloc did not reuse freed block: %#x vs %#x", a, b)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := checkedHeap()
	var addrs []uint64
	for i := 0; i < 10; i++ {
		addrs = append(addrs, h.Alloc(48))
	}
	s := h.Stats()
	if s.Allocs != 10 || s.LiveBlocks != 10 {
		t.Fatalf("after 10 allocs: %+v", s)
	}
	if s.LiveBytes != 10*48 {
		t.Fatalf("LiveBytes = %d, want %d", s.LiveBytes, 10*48)
	}
	for _, a := range addrs {
		h.Free(a)
	}
	s = h.Stats()
	if s.Frees != 10 || s.LiveBlocks != 0 || s.LiveBytes != 0 {
		t.Fatalf("after frees: %+v", s)
	}
}

func TestCacheAllocFree(t *testing.T) {
	h := checkedHeap()
	c := h.NewCache()
	var addrs []uint64
	for i := 0; i < 200; i++ {
		a := c.Alloc(172)
		h.Store(a, uint64(i))
		addrs = append(addrs, a)
	}
	seen := map[uint64]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate live address %#x", a)
		}
		seen[a] = true
	}
	for _, a := range addrs {
		c.Free(a)
	}
	if got := h.Stats().LiveBlocks; got != 0 {
		t.Fatalf("LiveBlocks after freeing all = %d", got)
	}
	s := h.Stats()
	if s.CacheHits == 0 {
		t.Error("cache never hit across 200 allocations")
	}
}

func TestCacheFlush(t *testing.T) {
	h := checkedHeap()
	c := h.NewCache()
	a := c.Alloc(64)
	c.Free(a)
	c.Flush()
	// After a flush the same block is reachable from central lists.
	b := h.Alloc(64)
	if !h.Contains(b) {
		t.Fatal("central alloc after flush failed")
	}
}

func TestCacheCrossThreadFree(t *testing.T) {
	// Thread A allocates, thread B frees: the block lands in B's cache
	// and is reusable from there.  This is the malloc pattern the
	// reclamation schemes create (the reclaimer frees other threads'
	// nodes).
	h := checkedHeap()
	ca, cb := h.NewCache(), h.NewCache()
	a := ca.Alloc(172)
	cb.Free(a)
	b := cb.Alloc(172)
	if b != a {
		t.Errorf("cross-thread freed block not reused: %#x vs %#x", a, b)
	}
}

func TestLiveAt(t *testing.T) {
	h := checkedHeap()
	a := h.Alloc(32)
	if !h.LiveAt(a) || !h.LiveAt(a+24) {
		t.Error("LiveAt false for live block words")
	}
	h.Free(a)
	if h.LiveAt(a) {
		t.Error("LiveAt true after free")
	}
	if h.LiveAt(0) || h.LiveAt(h.Limit()) {
		t.Error("LiveAt true outside arena")
	}
}

func TestClassSizeBytes(t *testing.T) {
	for _, tc := range []struct{ req, want int }{
		{1, 16}, {16, 16}, {17, 24}, {172, 192},
		{4096, 4096},
		{PageWords*WordSize + 1, 2 * PageWords * WordSize},
	} {
		if got := ClassSizeBytes(tc.req); got != tc.want {
			t.Errorf("ClassSizeBytes(%d) = %d, want %d", tc.req, got, tc.want)
		}
	}
}
