package simmem

import "fmt"

// ViolationKind classifies memory-safety violations detected by the
// checked heap.  The whole point of the checked heap is that an unsound
// reclamation scheme produces one of these instead of silent corruption.
type ViolationKind int

const (
	VNilDeref     ViolationKind = iota // access through simulated nil
	VUnaligned                         // address not word-aligned
	VWildAccess                        // address outside the arena or in an uncarved page
	VUseAfterFree                      // access to a word whose block was freed
	VDoubleFree                        // free of an already-free block
	VBadFree                           // free of a non-base or interior address
	VOutOfMemory                       // arena exhausted
)

func (k ViolationKind) String() string {
	switch k {
	case VNilDeref:
		return "nil dereference"
	case VUnaligned:
		return "unaligned access"
	case VWildAccess:
		return "wild access"
	case VUseAfterFree:
		return "use after free"
	case VDoubleFree:
		return "double free"
	case VBadFree:
		return "bad free"
	case VOutOfMemory:
		return "out of memory"
	default:
		return "unknown violation"
	}
}

// Violation describes a detected memory-safety violation.  The heap
// panics with *Violation; tests that expect one recover it.
type Violation struct {
	Kind   ViolationKind
	Addr   uint64
	Op     string // "load", "store", "cas", "free", "alloc", "sizeof"
	Detail string
}

func (v *Violation) Error() string {
	if v.Detail != "" {
		return fmt.Sprintf("simmem: %s during %s of %#x (%s)", v.Kind, v.Op, v.Addr, v.Detail)
	}
	return fmt.Sprintf("simmem: %s during %s of %#x", v.Kind, v.Op, v.Addr)
}
