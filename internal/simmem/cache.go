package simmem

// Cache is a per-thread allocation cache in the style of TCMalloc's
// thread caches: small per-class LIFO magazines that batch traffic to
// and from the heap's central free lists.  Each simulated thread owns
// one Cache; because the scheduler serializes threads, caches need no
// synchronization, but they still matter for fidelity — the paper's
// evaluation runs on TCMalloc precisely because a scalable allocator is
// a prerequisite for measuring reclamation overhead rather than malloc
// contention.
type Cache struct {
	heap    *Heap
	classes [numClasses]cacheClass
}

type cacheClass struct {
	blocks []uint64
}

// cacheCapacity is the per-class magazine size; refills move
// cacheBatch blocks at a time.
const (
	cacheCapacity = 64
	cacheBatch    = 32
)

// NewCache creates a thread cache bound to the heap.
func (h *Heap) NewCache() *Cache {
	return &Cache{heap: h}
}

// Alloc allocates a block of at least size bytes, preferring the cache.
func (c *Cache) Alloc(size int) uint64 {
	if size <= 0 {
		panic("simmem: Alloc of non-positive size")
	}
	words := (size + WordSize - 1) / WordSize
	if words > maxSmallWords {
		return c.heap.allocSpan(words)
	}
	cls := classFor(words)
	cc := &c.classes[cls]
	if len(cc.blocks) == 0 {
		c.refill(cls)
		c.heap.stats.CacheMisses++
	} else {
		c.heap.stats.CacheHits++
	}
	addr := cc.blocks[len(cc.blocks)-1]
	cc.blocks = cc.blocks[:len(cc.blocks)-1]
	c.heap.finishAlloc(addr, classWords[cls])
	return addr
}

// Free returns the block at addr to the cache, spilling half the
// magazine to the central list when it overflows.
func (c *Cache) Free(addr uint64) {
	words := c.heap.checkFree(addr)
	if words > maxSmallWords {
		c.heap.freeSpan(addr, words)
		return
	}
	cls := classFor(words)
	cc := &c.classes[cls]
	cc.blocks = append(cc.blocks, addr)
	if len(cc.blocks) > cacheCapacity {
		spill := len(cc.blocks) / 2
		c.heap.central[cls].blocks = append(c.heap.central[cls].blocks, cc.blocks[:spill]...)
		n := copy(cc.blocks, cc.blocks[spill:])
		cc.blocks = cc.blocks[:n]
		c.heap.stats.CentralFrees += uint64(spill)
	}
}

// refill moves up to cacheBatch blocks from the central list (carving a
// fresh page if needed) into the cache.
func (c *Cache) refill(cls int) {
	h := c.heap
	if len(h.central[cls].blocks) == 0 {
		h.carvePage(cls)
	}
	take := cacheBatch
	if n := len(h.central[cls].blocks); take > n {
		take = n
	}
	from := h.central[cls].blocks
	c.classes[cls].blocks = append(c.classes[cls].blocks, from[len(from)-take:]...)
	h.central[cls].blocks = from[:len(from)-take]
}

// Flush returns every cached block to the central lists.  Used at
// thread exit.
func (c *Cache) Flush() {
	for cls := range c.classes {
		cc := &c.classes[cls]
		if len(cc.blocks) > 0 {
			c.heap.central[cls].blocks = append(c.heap.central[cls].blocks, cc.blocks...)
			c.heap.stats.CentralFrees += uint64(len(cc.blocks))
			cc.blocks = cc.blocks[:0]
		}
	}
}
