package simmem

// Cache is a per-thread allocation cache in the style of TCMalloc's
// thread caches: small per-class LIFO magazines that batch traffic to
// and from the heap's central free lists.  Each simulated thread owns
// one Cache; because the scheduler serializes threads, caches need no
// synchronization, but they still matter for fidelity — the paper's
// evaluation runs on TCMalloc precisely because a scalable allocator is
// a prerequisite for measuring reclamation overhead rather than malloc
// contention.
//
// On a heap with per-node pools the cache is bound to its thread's NUMA
// node: refills draw from the policy-routed pool, and frees route each
// block to its *home* pool — same-node blocks through the magazine,
// foreign blocks straight into their home's remote-free inbox, because
// stashing a foreign block in the magazine would hand the remote node's
// memory to the next local alloc (exactly the locality leak the
// per-node pools exist to close).
type Cache struct {
	heap    *Heap
	node    int
	classes [numClasses]cacheClass
	stage   [][]uint64 // per-node staging of cross-node frees (multi-pool only)
}

type cacheClass struct {
	blocks []uint64
}

// cacheCapacity is the per-class magazine size; refills move
// cacheBatch blocks at a time.  Cross-node frees stage locally and
// flush to the home pool's inbox remoteBatch at a time, so a sweep
// that frees another node's memory pays one interconnect hop per
// batch, not per block — TCMalloc's transfer-cache amortization.
const (
	cacheCapacity = 64
	cacheBatch    = 32
	remoteBatch   = 32
)

// NewCache creates a thread cache bound to the heap, on node 0.
func (h *Heap) NewCache() *Cache { return h.NewCacheOn(0) }

// NewCacheOn creates a thread cache bound to the given NUMA node.  On a
// single-pool heap the node still attributes page residency (first
// touch) and the remote-alloc accounting, but every pool-routing path
// is inert.
//
// The binding is permanent: like a real TCMalloc thread cache, it does
// not follow an unpinned thread that later migrates to another node's
// cores, so such a thread's allocs and frees keep routing (and being
// charged) against its original node.  Pinned workloads — everything
// the NUMA scenarios run — are exact.
func (h *Heap) NewCacheOn(node int) *Cache {
	return &Cache{heap: h, node: h.clampResident(node)}
}

// Node returns the NUMA node the cache is bound to.
func (c *Cache) Node() int { return c.node }

// Alloc allocates a block of at least size bytes, preferring the cache.
func (c *Cache) Alloc(size int) uint64 {
	if size <= 0 {
		panic("simmem: Alloc of non-positive size")
	}
	words := (size + WordSize - 1) / WordSize
	if words > maxSmallWords {
		return c.heap.allocSpan(c.node, words)
	}
	cls := classFor(words)
	cc := &c.classes[cls]
	if len(cc.blocks) == 0 {
		c.refill(cls)
		c.heap.stats.CacheMisses++
	} else {
		c.heap.stats.CacheHits++
	}
	addr := cc.blocks[len(cc.blocks)-1]
	cc.blocks = cc.blocks[:len(cc.blocks)-1]
	c.heap.finishAlloc(addr, classWords[cls])
	c.heap.noteAlloc(c.node, addr)
	return addr
}

// Free returns the block at addr toward its home pool: same-node blocks
// enter the magazine (spilling half to the home central list on
// overflow), foreign blocks stage locally and flush to their home's
// remote-free inbox a batch at a time.  Reports whether this free
// flushed a batch across the interconnect (the caller charges the hop).
func (c *Cache) Free(addr uint64) (flushed bool) {
	words := c.heap.checkFree(addr)
	if words > maxSmallWords {
		return c.heap.freeSpanTo(c.node, addr, words)
	}
	cls := classFor(words)
	h := c.heap
	if len(h.pools) > 1 {
		if home := h.HomeNode(addr); home != c.node {
			h.stats.RemoteFrees++
			if c.stage == nil {
				c.stage = make([][]uint64, len(h.pools))
			}
			c.stage[home] = append(c.stage[home], addr)
			if len(c.stage[home]) >= remoteBatch {
				c.flushStage(home)
				return true
			}
			return false
		}
		h.stats.HomeFrees++
	}
	cc := &c.classes[cls]
	cc.blocks = append(cc.blocks, addr)
	if len(cc.blocks) > cacheCapacity {
		spill := len(cc.blocks) / 2
		h.spillBlocks(c.node, cls, cc.blocks[:spill])
		n := copy(cc.blocks, cc.blocks[spill:])
		cc.blocks = cc.blocks[:n]
		h.stats.CentralFrees += uint64(spill)
	}
	return false
}

// flushStage moves the cache's staged cross-node frees for one node
// into that node's remote inbox.
func (c *Cache) flushStage(home int) {
	p := &c.heap.pools[home]
	p.remote = append(p.remote, c.stage[home]...)
	if c.heap.observer != nil {
		c.heap.observer.RemoteFlush(home, len(c.stage[home]))
	}
	c.stage[home] = c.stage[home][:0]
}

// spillBlocks returns a batch of magazine blocks of one class to their
// home pools: same-node blocks onto the home central list, foreign
// blocks — possible after a cross-node refill under localalloc
// fallback or interleave — into their home's remote inbox.  This is
// what keeps pool accounting exact when a cache overflows or a churned
// thread exits: nothing is ever dumped into the wrong node's pool.
func (h *Heap) spillBlocks(from, cls int, blocks []uint64) {
	if len(h.pools) == 1 {
		p := &h.pools[0]
		p.central[cls].blocks = append(p.central[cls].blocks, blocks...)
		return
	}
	for _, addr := range blocks {
		p := h.homePool(addr)
		if p.node == from {
			p.central[cls].blocks = append(p.central[cls].blocks, addr)
		} else {
			p.remote = append(p.remote, addr)
		}
	}
}

// refill moves up to cacheBatch blocks from the policy-routed pool
// (draining its inbox or carving a fresh page if needed) into the
// cache.
func (c *Cache) refill(cls int) {
	p := c.heap.allocPool(c.node, cls)
	take := cacheBatch
	if n := len(p.central[cls].blocks); take > n {
		take = n
	}
	from := p.central[cls].blocks
	c.classes[cls].blocks = append(c.classes[cls].blocks, from[len(from)-take:]...)
	p.central[cls].blocks = from[:len(from)-take]
}

// Flush returns every cached block to its home node's pool.  Used at
// thread exit; routing per block (rather than dumping the magazines
// into one global list) is what keeps a churned thread's exit from
// silently misattributing blocks once pools are per-node.  Staged
// cross-node frees flush too, so an exiting thread strands nothing.
func (c *Cache) Flush() {
	for cls := range c.classes {
		cc := &c.classes[cls]
		if len(cc.blocks) > 0 {
			c.heap.spillBlocks(c.node, cls, cc.blocks)
			c.heap.stats.CentralFrees += uint64(len(cc.blocks))
			cc.blocks = cc.blocks[:0]
		}
	}
	for home := range c.stage {
		if len(c.stage[home]) > 0 {
			c.flushStage(home)
		}
	}
}
