package main

import (
	"encoding/json"
	"os"
	"testing"
)

// Smoke test: the tracing example must complete and leave a valid,
// non-empty Chrome trace behind.
func TestTracingExampleRuns(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	if err := run(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}
