// Tracing: virtual-time observability through the public facade.
//
// One NUMA-adversarial scenario runs twice — under epoch reclamation
// and under ThreadScan — with a trace recorder attached.  The demo
// writes a Chrome-trace JSON (load it at chrome://tracing or
// https://ui.perfetto.dev) whose spans sit on the simulator's virtual
// clock: every collect is visible end to end (trigger instant, signal
// broadcast, per-thread scan handlers, the handshake barrier wait,
// shard sort, sweep, frees), and it prints each run's cycle-attribution
// profile plus the op-latency quantiles the histograms collected.
//
// The recorder never charges virtual cycles, so both runs produce
// exactly the results they would without it.
//
// Run with:  go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"threadscan"
)

func main() {
	if err := run("trace.json"); err != nil {
		log.Fatal(err)
	}
}

// run is the whole example; the smoke test drives it with a temp path.
func run(tracePath string) error {
	spec, ok := threadscan.ScenarioByName("numa-split")
	if !ok {
		return fmt.Errorf("missing built-in scenario %q", "numa-split")
	}
	spec = spec.Scale(0.5)
	spec.DS = "stack"
	spec.Seed = 1

	var runs []threadscan.TraceRun
	for _, scheme := range []string{"epoch", "threadscan"} {
		spec.Scheme = scheme
		rec := threadscan.NewTraceRecorder()
		r, err := threadscan.RunScenarioRecorded(spec, rec)
		if err != nil {
			return err
		}

		// One trace process per run, with the scenario's phases as a
		// labeled band (span timestamps are absolute virtual time, so
		// the relative phase windows shift by the measured start).
		tr := threadscan.TraceRun{Label: fmt.Sprintf("%s %s/%s", r.Name, r.DS, r.Scheme), Rec: rec}
		for _, pw := range r.Scenario.PhaseWindows() {
			tr.Windows = append(tr.Windows, threadscan.TraceWindow{
				Name: pw.Name, Start: r.MeasuredStart + pw.Start, End: r.MeasuredStart + pw.End})
		}
		runs = append(runs, tr)

		if err := threadscan.WriteProfile(os.Stdout, tr.Label, rec); err != nil {
			return err
		}
		lat := r.Latency
		fmt.Printf("op latency (cycles): p50 %d  p95 %d  p99 %d  p999 %d  max %d\n",
			lat.Op.P50, lat.Op.P95, lat.Op.P99, lat.Op.P999, lat.Op.Max)
		var collects int64
		for _, st := range lat.Stages {
			if st.Stage == "collect" {
				collects = st.Count
			}
		}
		fmt.Printf("max pause: %d cycles across %d collects\n\n",
			lat.MaxPauseCycles, collects)
	}

	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := threadscan.WriteChromeTrace(f, runs); err != nil {
		return err
	}
	fmt.Printf("tracing: wrote %s — open it at chrome://tracing or ui.perfetto.dev\n", tracePath)
	return nil
}
