// Scenarios: the declarative workload engine through the public facade.
//
// Two adversarial workloads the paper never measured — a delete storm
// on a Treiber stack and mid-run thread churn on a Michael–Scott queue
// — run under a leaking baseline and under ThreadScan, and the demo
// prints throughput next to the Hyaline-style robustness metric: peak
// retired-but-unreclaimed memory.  The leaking baseline's garbage grows
// without bound; ThreadScan's stays pinned near its delete-buffer
// capacity, while the checked heap guarantees no node was freed early.
//
// It also shows a fully custom scenario assembled from the exported
// spec types (phases, distributions, churn).
//
// Run with:  go run ./examples/scenarios
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"threadscan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is the whole example; the smoke test drives it directly.
func run() error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tds\tscheme\tops/vsec\tpeak garbage (words)\tfinal garbage\tchurned")

	report := func(r threadscan.ScenarioResult) {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f\t%d\t%d\t%d\n",
			r.Name, r.DS, r.Scheme, r.Throughput,
			r.Footprint.PeakRetiredWords, r.Footprint.FinalRetiredNodes,
			r.ChurnWorkers)
	}

	// Two built-in adversaries, each under the leaking baseline and
	// under ThreadScan.
	for _, name := range []string{"delete-storm", "thread-churn"} {
		base, ok := threadscan.ScenarioByName(name)
		if !ok {
			return fmt.Errorf("missing built-in scenario %q", name)
		}
		ds := "stack"
		if name == "thread-churn" {
			ds = "queue"
		}
		for _, scheme := range []string{"leaky", "threadscan"} {
			spec := base
			spec.DS = ds
			spec.Scheme = scheme
			r, err := threadscan.RunScenario(spec)
			if err != nil {
				return err
			}
			report(r)
		}
	}

	// A custom scenario from scratch: a read-mostly phase, then a
	// zipfian update storm, with churn on an oversubscribed machine.
	custom := threadscan.Scenario{
		Name:     "custom-demo",
		DS:       "list",
		Scheme:   "threadscan",
		Threads:  8,
		Cores:    4,
		KeyRange: 1024, Prefill: 512,
		Seed:       42,
		BufferSize: 128, Batch: 128,
		Phases: []threadscan.ScenarioPhase{
			{Name: "warm", Duration: 1_500_000,
				Mix: threadscan.OpMix{InsertPct: 5, RemovePct: 5}},
			{Name: "storm", Duration: 2_500_000,
				Mix:  threadscan.OpMix{InsertPct: 20, RemovePct: 40},
				Dist: threadscan.KeyDist{Kind: threadscan.DistZipf, Theta: 1.4}},
		},
		Churn: &threadscan.ChurnSpec{Workers: 2, Generations: 2},
	}
	r, err := threadscan.RunScenario(custom)
	if err != nil {
		return err
	}
	report(r)
	tw.Flush()

	if r.LeakedRegistrations != 0 {
		return fmt.Errorf("leaked %d thread registrations", r.LeakedRegistrations)
	}
	fmt.Println("\nscenarios: all runs completed on the checked heap with zero violations")
	return nil
}
