package main

import "testing"

// Smoke test: the scenarios example must complete at quick scale with
// zero heap violations and zero leaked registrations (run() checks the
// latter itself).
func TestScenariosExampleRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
