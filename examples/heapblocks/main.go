// Heapblocks: the §4.3 ThreadScan extension.
//
// ThreadScan scans stacks and registers; a thread that stashes private
// references in a pre-allocated heap block hides them from the scan
// (violating Assumption 1.1) — unless it registers the block with
// AddHeapBlock, after which the block is scanned along with the stack.
// This example stashes a live reference in a registered block, shows
// that collects do not reclaim the node, then unregisters, clears, and
// shows reclamation proceeding.
//
// Run with:  go run ./examples/heapblocks
package main

import (
	"fmt"
	"log"

	"threadscan"
)

func main() {
	sim := threadscan.NewSimulation(threadscan.SimConfig{
		Cores: 2,
		Seed:  3,
		Heap:  threadscan.HeapConfig{Words: 1 << 18, Check: true, Poison: true},
	})
	ts := threadscan.New(sim, threadscan.Config{BufferSize: 16})

	var node uint64
	stage := 0 // 0: setting up, 1: hidden ref live, 2: released

	sim.Spawn("hider", func(th *threadscan.Thread) {
		// A private heap block, registered for scanning (§4.3).
		th.Alloc(0, 256)
		block := th.Reg(0)
		ts.Core().AddHeapBlock(th, block, 256)

		// Allocate a node, retire it, but keep a reference *only* in
		// the registered heap block — nowhere in stack or registers.
		th.Alloc(1, 64)
		th.StoreImm(1, 0, 1234)
		node = th.Reg(1)
		th.Store(0, 5, 1) // block[5] = node
		th.SetReg(1, 0)
		ts.Retire(th, node)
		stage = 1

		for stage == 1 { // the collector thread churns meanwhile
			th.Pause()
		}

		// Read back through the hidden reference — still alive.
		th.Load(1, 0, 5)
		th.Load(2, 1, 0)
		fmt.Printf("hidden node value after collects: %d (live=%v)\n",
			th.Reg(2), sim.Heap().LiveAt(node))

		// Release: clear the stashed ref, unregister, drop registers.
		th.StoreImm(0, 5, 0)
		ts.Core().RemoveHeapBlock(th, block, 256)
		th.SetReg(1, 0)
		th.SetReg(2, 0)
		ts.Core().Collect(th)
		fmt.Printf("after release + collect: live=%v\n", sim.Heap().LiveAt(node))
		stage = 2
	})

	sim.Spawn("collector", func(th *threadscan.Thread) {
		for stage == 0 {
			th.Pause()
		}
		// Churn enough retirements to force several collect phases.
		for i := 0; i < 64; i++ {
			th.Alloc(15, 64)
			junk := th.Reg(15)
			th.SetReg(15, 0)
			ts.Retire(th, junk)
		}
		if !sim.Heap().LiveAt(node) {
			log.Fatal("BUG: heap-block-protected node was reclaimed")
		}
		fmt.Printf("after %d collects: hidden node still protected\n",
			ts.Core().Stats().Collects)
		stage = 2
	})

	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("heapblocks: §4.3 extension behaved as specified")
}
