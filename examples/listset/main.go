// Listset: the paper's Figure 3 story in miniature.
//
// Runs the 1024-node Harris list workload (20% updates, §6) under every
// reclamation technique the paper evaluates and prints a comparison
// table.  Expect: ThreadScan ≈ Epoch ≈ Leaky; Hazard several times
// slower (a fence per traversal step on a 512-step average traversal);
// Slow Epoch degraded by its errant thread; StackTrack in between.
//
// Run with:  go run ./examples/listset
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"threadscan"
)

func main() {
	schemes := []string{"leaky", "hazard", "epoch", "slow-epoch", "threadscan", "stacktrack"}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tthroughput(vops/s)\tvs leaky\tretired\tfreed")
	var leakyTp float64
	for _, scheme := range schemes {
		r, err := threadscan.RunExperiment(threadscan.Experiment{
			DS:       "list",
			Scheme:   scheme,
			Threads:  4,
			Cores:    4,
			Duration: 20_000_000, // 20 virtual ms
			Seed:     42,
			CacheSim: true,
			KeyRange: 2048, Prefill: 1024, // the paper's list workload
			BufferSize: 128, Batch: 128,
			SlowDelay: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if scheme == "leaky" {
			leakyTp = r.Throughput
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.2fx\t%d\t%d\n",
			scheme, r.Throughput, r.Throughput/leakyTp, r.Scheme.Retired, r.Scheme.Freed)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(leaky frees nothing by design; every other scheme reclaims all it retires)")
}
