// Oversubscribe: the paper's Figure 4 story — what happens when the
// system runs many more threads than cores.
//
// A descheduled thread answers a scan signal only when the scheduler
// next runs it, so the reclaimer's wait grows with the subscription
// ratio; enlarging the delete buffer amortizes collects over more
// retirements and wins the overhead back ("Increasing the size of the
// delete buffer ... is a useful way of amortizing the cost of signals
// and of waiting", §6).
//
// Run with:  go run ./examples/oversubscribe
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"threadscan"
)

func run(threads, buffer int) threadscan.Result {
	r, err := threadscan.RunExperiment(threadscan.Experiment{
		DS:       "hash",
		Scheme:   "threadscan",
		Threads:  threads,
		Cores:    4,
		Duration: 30_000_000, // 30 virtual ms
		Quantum:  1_000_000,  // OS-like 1ms timeslice
		Seed:     7,
		CacheSim: true,
		KeyRange: 16_384, Prefill: 8_192, Buckets: 256,
		BufferSize: buffer,
	})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("hash table, 4 virtual cores, ThreadScan")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "threads\tbuffer\tthroughput\tcollects\tsignals\tavg_scan_words")
	for _, threads := range []int{4, 16, 32} {
		for _, buffer := range []int{128, 512} {
			r := run(threads, buffer)
			c := r.Core
			var avgWords uint64
			if c.ScannedThreads > 0 {
				avgWords = c.ScannedWords / c.ScannedThreads
			}
			fmt.Fprintf(tw, "%d\t%d\t%.0f\t%d\t%d\t%d\n",
				threads, buffer, r.Throughput, c.Collects, r.Sim.SignalsSent, avgWords)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLarger buffers => fewer collects and fewer signals per operation,")
	fmt.Println("the amortization the paper tunes for the oversubscribed hash table.")
}
