// Quickstart: the smallest complete ThreadScan program.
//
// Four simulated threads hammer a shared lock-free list while
// ThreadScan reclaims the removed nodes automatically — no hazard
// pointers, no epochs, just Retire on unlink (which the list does
// internally).  The checked heap would panic the run if the protocol
// ever freed a node a thread could still reach.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"threadscan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is the whole example; the smoke test drives it directly.
func run() error {
	sim := threadscan.NewSimulation(threadscan.SimConfig{
		Cores: 4,
		Seed:  1,
		Heap:  threadscan.HeapConfig{Words: 1 << 20, Check: true, Poison: true},
	})

	// One reclamation domain shared by every thread (installs the scan
	// signal handler and thread hooks; must precede Spawn/Run).
	ts := threadscan.New(sim, threadscan.Config{BufferSize: 64})

	// A Harris lock-free list that retires unlinked nodes to ThreadScan.
	list := threadscan.NewList(sim, ts, 0)

	const nThreads, opsEach = 4, 2000
	done := 0
	for i := 0; i < nThreads; i++ {
		sim.Spawn(fmt.Sprintf("worker-%d", i), func(th *threadscan.Thread) {
			rng := th.RNG()
			for j := 0; j < opsEach; j++ {
				key := uint64(rng.Intn(256)) + 1
				switch rng.Intn(3) {
				case 0:
					list.Insert(th, key)
				case 1:
					list.Remove(th, key) // unlink, then Retire -> ThreadScan
				default:
					list.Contains(th, key) // unsynchronized traversal
				}
			}
			done++
			if done == nThreads {
				// Last worker out flushes whatever is still buffered.
				ts.Flush(th)
			}
		})
	}

	if err := sim.Run(); err != nil {
		return err
	}

	st := ts.Core().Stats()
	fmt.Println("quickstart: all operations completed with automatic reclamation")
	fmt.Printf("  virtual time     %.2f ms\n", sim.Seconds(sim.Clock())*1e3)
	fmt.Printf("  list size        %d\n", list.Len())
	fmt.Printf("  nodes retired    %d\n", st.Frees)
	fmt.Printf("  nodes reclaimed  %d (in %d collect phases)\n", st.Reclaimed, st.Collects)
	fmt.Printf("  still buffered   %d\n", ts.Core().Buffered())
	fmt.Printf("  scans performed  %d (%d words examined)\n", st.ScannedThreads, st.ScannedWords)
	heap := sim.Heap().Stats()
	fmt.Printf("  heap             %d allocs, %d frees, %d live blocks\n",
		heap.Allocs, heap.Frees, heap.LiveBlocks)
	return nil
}
