package main

import "testing"

// Smoke test: the quickstart example must complete without violations
// (the checked heap panics the run on any unsound free, which run()
// surfaces as an error).
func TestQuickstartRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
