package threadscan_test

// Benchmark harness: one benchmark family per figure panel of the
// paper's evaluation (Figure 3: throughput scaling; Figure 4:
// oversubscription), plus the ablations from DESIGN.md and two
// protocol micro-benchmarks.  Throughput is reported as the custom
// metric "vops/s" (operations per *virtual* second — the simulator's
// clock, comparable across schemes and hosts); ns/op measures host
// simulation cost and is not a result.
//
// Regenerate the full tables with:  go test -bench . -benchmem
// Paper-scale runs:                 go run ./cmd/tsbench -scale paper ...

import (
	"testing"

	"threadscan"
)

// benchPoint runs one experiment per iteration and reports the mean
// virtual throughput.
func benchPoint(b *testing.B, cfg threadscan.Experiment) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := threadscan.RunExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += r.Throughput
	}
	b.ReportMetric(total/float64(b.N), "vops/s")
	b.ReportMetric(0, "ns/op") // host time is not a result; silence it
}

// fig3Point builds a quick-scale Figure 3 data point.
func fig3Point(dsName, scheme string, threads int) threadscan.Experiment {
	cfg := threadscan.Experiment{
		DS: dsName, Scheme: scheme, Threads: threads, Cores: 4,
		Duration: 10_000_000, // 10 virtual ms per iteration
		Quantum:  125_000,    // timeslice scaled with the buffers (see harness)
		CacheSim: true,
		Seed:     1,
		// Quick-scale §6 workloads (see harness.baseConfig).
		BufferSize: 128, Batch: 128, SlowDelay: 8_000_000,
	}
	switch dsName {
	case "list":
		cfg.KeyRange, cfg.Prefill = 2048, 1024
	case "hash":
		cfg.KeyRange, cfg.Prefill, cfg.Buckets = 16_384, 8_192, 256
	case "skiplist":
		cfg.KeyRange, cfg.Prefill = 16_000, 8_000
	}
	return cfg
}

// benchFig3 runs one Figure 3 panel: every §6 scheme at 4 threads on 4
// cores.
func benchFig3(b *testing.B, dsName string) {
	for _, scheme := range []string{"leaky", "hazard", "epoch", "slow-epoch", "threadscan", "stacktrack"} {
		b.Run(scheme, func(b *testing.B) {
			benchPoint(b, fig3Point(dsName, scheme, 4))
		})
	}
}

// BenchmarkFig3List regenerates the linked-list panel of Figure 3.
func BenchmarkFig3List(b *testing.B) { benchFig3(b, "list") }

// BenchmarkFig3Hash regenerates the hash-table panel of Figure 3.
func BenchmarkFig3Hash(b *testing.B) { benchFig3(b, "hash") }

// BenchmarkFig3Skiplist regenerates the skip-list panel of Figure 3.
func BenchmarkFig3Skiplist(b *testing.B) { benchFig3(b, "skiplist") }

// benchFig4 runs one Figure 4 panel: the oversubscribed system (16
// threads on 4 cores) for the schemes the paper keeps, plus the tuned
// 4x-buffer ThreadScan variant on the hash table.
func benchFig4(b *testing.B, dsName string) {
	schemes := []string{"leaky", "epoch", "threadscan"}
	for _, scheme := range schemes {
		b.Run(scheme, func(b *testing.B) {
			benchPoint(b, fig3Point(dsName, scheme, 16))
		})
	}
	if dsName == "hash" {
		b.Run("threadscan-tuned", func(b *testing.B) {
			cfg := fig3Point(dsName, "threadscan", 16)
			cfg.BufferSize *= 4 // the paper's 1024 -> 4096 tuning
			benchPoint(b, cfg)
		})
	}
}

// BenchmarkFig4List regenerates the linked-list panel of Figure 4.
func BenchmarkFig4List(b *testing.B) { benchFig4(b, "list") }

// BenchmarkFig4Hash regenerates the hash-table panel of Figure 4,
// including the tuned delete-buffer variant.
func BenchmarkFig4Hash(b *testing.B) { benchFig4(b, "hash") }

// BenchmarkFig4Skiplist regenerates the skip-list panel of Figure 4.
func BenchmarkFig4Skiplist(b *testing.B) { benchFig4(b, "skiplist") }

// BenchmarkAblationBufferSize is A1: the delete-buffer tuning of §6 on
// the oversubscribed hash table.
func BenchmarkAblationBufferSize(b *testing.B) {
	for _, size := range []int{64, 256, 1024, 4096} {
		b.Run(map[int]string{64: "64", 256: "256", 1024: "1024", 4096: "4096"}[size], func(b *testing.B) {
			cfg := fig3Point("hash", "threadscan", 16)
			cfg.BufferSize = size
			benchPoint(b, cfg)
		})
	}
}

// BenchmarkAblationLookup is A3: the TS-Scan membership structure
// (paper's sorted binary search vs linear vs hash set).
func BenchmarkAblationLookup(b *testing.B) {
	kinds := []struct {
		name string
		kind threadscan.LookupKind
	}{
		{"binary", threadscan.LookupBinary},
		{"linear", threadscan.LookupLinear},
		{"hash", threadscan.LookupHash},
	}
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			cfg := fig3Point("list", "threadscan", 4)
			cfg.Lookup = k.kind
			cfg.BufferSize = 64 // keep linear mode tractable
			benchPoint(b, cfg)
		})
	}
}

// BenchmarkAblationHelpFree is the §7 future-work extension: sharing
// free() calls with scanners, versus the default reclaimer-frees-all.
func BenchmarkAblationHelpFree(b *testing.B) {
	for _, help := range []bool{false, true} {
		name := "reclaimer-frees"
		if help {
			name = "scanners-help"
		}
		b.Run(name, func(b *testing.B) {
			cfg := fig3Point("list", "threadscan", 8)
			cfg.HelpFree = help
			benchPoint(b, cfg)
		})
	}
}

// BenchmarkAblationStall is A4: an errant thread stalled mid-operation
// under Epoch vs ThreadScan (the paper's liveness contrast).
func BenchmarkAblationStall(b *testing.B) {
	for _, scheme := range []string{"epoch", "threadscan"} {
		b.Run(scheme, func(b *testing.B) {
			cfg := fig3Point("list", scheme, 4)
			cfg.StallEvery = 100
			cfg.StallCycles = 1_000_000
			cfg.Batch, cfg.BufferSize = 32, 64
			benchPoint(b, cfg)
		})
	}
}

// BenchmarkCollect measures one TS-Collect in isolation: N retired
// nodes, single thread, per-collect virtual cost.
func BenchmarkCollect(b *testing.B) {
	cfg := fig3Point("list", "threadscan", 1)
	cfg.Duration = 5_000_000
	benchPoint(b, cfg)
}

// BenchmarkSignalStorm measures the oversubscribed signal path: 32
// threads on 2 cores with small buffers, maximizing collect frequency.
func BenchmarkSignalStorm(b *testing.B) {
	cfg := fig3Point("list", "threadscan", 32)
	cfg.Cores = 2
	cfg.BufferSize = 64
	cfg.Duration = 5_000_000
	benchPoint(b, cfg)
}
