package threadscan_test

import (
	"errors"
	"testing"

	"threadscan"
)

// Facade-level integration tests: everything a downstream user touches
// goes through the public package.

func newSim(seed int64) *threadscan.Sim {
	return threadscan.NewSimulation(threadscan.SimConfig{
		Cores:     2,
		Seed:      seed,
		MaxCycles: 10_000_000_000,
		Heap:      threadscan.HeapConfig{Words: 1 << 20, Check: true, Poison: true},
	})
}

func TestQuickstartShape(t *testing.T) {
	sim := newSim(1)
	ts := threadscan.New(sim, threadscan.Config{BufferSize: 32})
	list := threadscan.NewList(sim, ts, 0)
	finished := 0
	for i := 0; i < 3; i++ {
		sim.Spawn("w", func(th *threadscan.Thread) {
			rng := th.RNG()
			for j := 0; j < 400; j++ {
				key := uint64(rng.Intn(128)) + 1
				switch rng.Intn(3) {
				case 0:
					list.Insert(th, key)
				case 1:
					list.Remove(th, key)
				default:
					list.Contains(th, key)
				}
			}
			finished++
			if finished == 3 {
				ts.Flush(th)
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := ts.Core().Stats()
	if st.Frees == 0 || st.Collects == 0 {
		t.Fatalf("no reclamation activity: %+v", st)
	}
	if st.Frees != st.Reclaimed+uint64(ts.Core().Buffered()) {
		t.Fatalf("free accounting broken: %+v buffered=%d", st, ts.Core().Buffered())
	}
}

func TestViolationTypeSurfaces(t *testing.T) {
	sim := newSim(2)
	sim.Spawn("bad", func(th *threadscan.Thread) {
		th.Alloc(0, 32)
		th.FreeAddr(th.Reg(0))
		th.Load(1, 0, 0)
	})
	err := sim.Run()
	var v *threadscan.Violation
	if !errors.As(err, &v) {
		t.Fatalf("facade did not surface *Violation: %v", err)
	}
}

func TestAllConstructorsOnHashTable(t *testing.T) {
	builders := []struct {
		name  string
		build func(*threadscan.Sim) threadscan.Scheme
	}{
		{"leaky", func(s *threadscan.Sim) threadscan.Scheme { return threadscan.NewLeaky(s) }},
		{"hazard", func(s *threadscan.Sim) threadscan.Scheme {
			return threadscan.NewHazard(s, threadscan.HazardConfig{Slots: 4, Batch: 32})
		}},
		{"epoch", func(s *threadscan.Sim) threadscan.Scheme {
			return threadscan.NewEpoch(s, threadscan.EpochConfig{Batch: 32})
		}},
		{"slow-epoch", func(s *threadscan.Sim) threadscan.Scheme {
			return threadscan.NewSlowEpoch(s, 32, 50_000)
		}},
		{"threadscan", func(s *threadscan.Sim) threadscan.Scheme {
			return threadscan.New(s, threadscan.Config{BufferSize: 32})
		}},
		{"stacktrack", func(s *threadscan.Sim) threadscan.Scheme {
			return threadscan.NewStackTrack(s, threadscan.StackTrackConfig{Batch: 32})
		}},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			sim := newSim(3)
			sc := b.build(sim)
			h := threadscan.NewHashTable(sim, sc, 8, 0)
			sim.Spawn("w", func(th *threadscan.Thread) {
				for k := uint64(1); k <= 64; k++ {
					if !h.Insert(th, k) {
						t.Errorf("insert %d failed", k)
					}
				}
				for k := uint64(1); k <= 64; k += 2 {
					if !h.Remove(th, k) {
						t.Errorf("remove %d failed", k)
					}
				}
				for r := 0; r < 16; r++ {
					th.SetReg(r, 0)
				}
				sc.Flush(th)
			})
			if err := sim.Run(); err != nil {
				t.Fatal(err)
			}
			if h.Len() != 32 {
				t.Fatalf("len = %d", h.Len())
			}
			st := sc.Stats()
			if b.name == "leaky" {
				if st.Leaked != 32 {
					t.Fatalf("leaky stats: %+v", st)
				}
			} else if st.Retired != 32 || st.Freed != 32 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestSkipListViaFacade(t *testing.T) {
	sim := newSim(5)
	sc := threadscan.NewHazard(sim, threadscan.HazardConfig{
		Slots: threadscan.SkipListHazardSlots, Batch: 16})
	sl := threadscan.NewSkipList(sim, sc)
	sim.Spawn("w", func(th *threadscan.Thread) {
		for k := uint64(1); k <= 100; k++ {
			sl.Insert(th, k)
		}
		for k := uint64(1); k <= 100; k++ {
			if !sl.Contains(th, k) {
				t.Errorf("lost key %d", k)
			}
		}
		for k := uint64(2); k <= 100; k += 2 {
			sl.Remove(th, k)
		}
		for r := 0; r < 16; r++ {
			th.SetReg(r, 0)
		}
		sc.Flush(th)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sl.Len() != 50 {
		t.Fatalf("len = %d", sl.Len())
	}
}

func TestExperimentFacade(t *testing.T) {
	r, err := threadscan.RunExperiment(threadscan.Experiment{
		DS: "hash", Scheme: "threadscan", Threads: 2, Cores: 2,
		Duration: 1_000_000, Seed: 1,
		KeyRange: 256, Prefill: 128, Buckets: 8,
		BufferSize: 64, Batch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.FinalSize == 0 {
		t.Fatalf("empty experiment result: %+v", r)
	}
}

func TestFigureFacade(t *testing.T) {
	fig, err := threadscan.RunFig3("list", threadscan.SweepParams{
		Scale:        threadscan.ScaleQuick,
		ThreadCounts: []int{1},
		Cores:        1,
		Duration:     500_000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 || len(fig.Series[0].Results) != 1 {
		t.Fatalf("figure shape: %+v", fig)
	}
}

func TestStackQueueViaFacade(t *testing.T) {
	sim := newSim(6)
	ts := threadscan.New(sim, threadscan.Config{BufferSize: 32})
	st := threadscan.NewStack(sim, ts, 0)
	q := threadscan.NewQueue(sim, ts, 0)
	sim.Spawn("w", func(th *threadscan.Thread) {
		for v := uint64(1); v <= 100; v++ {
			st.Push(th, v)
			q.Enqueue(th, v)
		}
		for v := uint64(100); v >= 51; v-- {
			if got, ok := st.Pop(th); !ok || got != v {
				t.Errorf("Pop = %d,%v want %d (LIFO)", got, ok, v)
			}
		}
		for v := uint64(1); v <= 50; v++ {
			if got, ok := q.Dequeue(th); !ok || got != v {
				t.Errorf("Dequeue = %d,%v want %d (FIFO)", got, ok, v)
			}
		}
		for r := 0; r < 16; r++ {
			th.SetReg(r, 0)
		}
		ts.Flush(th)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 50 || q.Len() != 50 {
		t.Fatalf("lens: stack %d queue %d", st.Len(), q.Len())
	}
	if stats := ts.Stats(); stats.Retired != stats.Freed {
		t.Fatalf("reclaim accounting: %+v", stats)
	}
}

func TestScenarioFacade(t *testing.T) {
	if n := len(threadscan.BuiltinScenarios()); n < 6 {
		t.Fatalf("only %d built-in scenarios", n)
	}
	spec, ok := threadscan.ScenarioByName("zipfian-skew")
	if !ok {
		t.Fatal("zipfian-skew missing")
	}
	spec = spec.Scale(0.1)
	spec.DS = "queue"
	spec.Scheme = "threadscan"
	spec.Threads, spec.Cores = 2, 2
	r, err := threadscan.RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.TraceHash == 0 {
		t.Fatalf("empty scenario result: %+v", r)
	}
	if r.Footprint.FinalRetiredNodes != 0 {
		t.Fatalf("garbage left after flush: %d", r.Footprint.FinalRetiredNodes)
	}
}

func TestWorkloadTargetFacade(t *testing.T) {
	sim := newSim(7)
	sc := threadscan.NewLeaky(sim)
	target, err := threadscan.WorkloadTargetFor(threadscan.NewList(sim, sc, 0))
	if err != nil {
		t.Fatal(err)
	}
	sim.Spawn("w", func(th *threadscan.Thread) {
		if !target.Apply(th, threadscan.OpInsert, 9) {
			t.Error("insert via target failed")
		}
		if !target.Apply(th, threadscan.OpLookup, 9) {
			t.Error("lookup via target failed")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if target.Size() != 1 {
		t.Fatalf("target size %d", target.Size())
	}
}

func TestKeyBoundsExported(t *testing.T) {
	if threadscan.MinKey != 1 || threadscan.MaxKey <= threadscan.MinKey {
		t.Fatalf("key bounds: %d..%d", threadscan.MinKey, threadscan.MaxKey)
	}
	if threadscan.DefaultCosts().Fence == 0 {
		t.Fatal("cost model empty")
	}
}
