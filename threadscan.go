// Package threadscan is a Go reproduction of "ThreadScan: Automatic and
// Scalable Memory Reclamation" (Alistarh, Leiserson, Matveev, Shavit —
// SPAA 2015): concurrent memory reclamation that discovers live
// references automatically, by interrupting threads with signals and
// scanning their stacks and registers, instead of asking the programmer
// to track accesses (hazard pointers) or bracket operations (epochs).
//
// Because the mechanism is inseparable from an unmanaged runtime — real
// ThreadScan hooks pthreads and POSIX signals and scans machine stacks,
// none of which safe Go exposes — this library reproduces the system on
// a deterministic simulated substrate:
//
//   - a discrete-event thread scheduler with virtual cores, quanta,
//     signals, and a cycle-accurate virtual clock (internal/simt);
//   - a word-addressable checked heap with a TCMalloc-style allocator,
//     where any unsound free becomes a detected access violation
//     (internal/simmem);
//   - the ThreadScan protocol itself (internal/core), every baseline
//     the paper evaluates (internal/reclaim), and the paper's three
//     benchmark data structures (internal/ds);
//   - the evaluation harness that regenerates the paper's figures
//     (internal/harness).
//
// This package is the public facade: thin constructors and type
// aliases over those internals.  See README.md for a tour, DESIGN.md
// for the substitution rationale, and EXPERIMENTS.md for measured
// results against the paper's.
//
// # Quick start
//
//	sim := threadscan.NewSimulation(threadscan.SimConfig{Cores: 4})
//	ts := threadscan.New(sim, threadscan.Config{})
//	list := threadscan.NewList(sim, ts, 0)
//	for i := 0; i < 4; i++ {
//		sim.Spawn("worker", func(th *threadscan.Thread) {
//			list.Insert(th, 42)
//			list.Remove(th, 42) // unlinked nodes are retired to ThreadScan
//		})
//	}
//	if err := sim.Run(); err != nil { ... }
package threadscan

import (
	"io"

	"threadscan/internal/core"
	"threadscan/internal/ds"
	"threadscan/internal/harness"
	"threadscan/internal/obs"
	"threadscan/internal/reclaim"
	"threadscan/internal/simmem"
	"threadscan/internal/simt"
	"threadscan/internal/workload"
)

// Simulation substrate.
type (
	// Sim is a deterministic simulation instance: heap, threads,
	// scheduler.
	Sim = simt.Sim
	// Thread is a simulated thread: register file, word stack, virtual
	// clock.
	Thread = simt.Thread
	// SimConfig configures a simulation (cores, quantum, seed, heap...).
	SimConfig = simt.Config
	// CostModel assigns virtual-cycle costs to primitives.
	CostModel = simt.CostModel
	// HeapConfig configures the simulated heap.
	HeapConfig = simmem.Config
	// Violation is a detected memory-safety violation (the checked
	// heap's verdict on an unsound reclamation scheme).
	Violation = simmem.Violation
)

// NewSimulation creates a simulation from cfg.
func NewSimulation(cfg SimConfig) *Sim { return simt.New(cfg) }

// DefaultCosts returns the calibrated cycle-cost model.
func DefaultCosts() CostModel { return simt.DefaultCosts() }

// The ThreadScan protocol (the paper's contribution).
type (
	// Config parameterizes a ThreadScan domain: delete buffer size,
	// scan lookup structure, and the sharded collect pipeline's knobs —
	// Shards (K address-sharded master sub-buffers that scanners help
	// sort), CollectWatermark (adaptive global collect trigger), and
	// HelpFree (the §7 scanner-assisted sweep).
	Config = core.Config
	// ThreadScan is a reclamation domain: per-thread delete buffers and
	// the signal-and-scan collect protocol.
	ThreadScan = reclaim.ThreadScan
	// Stats are ThreadScan protocol counters.
	Stats = core.Stats
	// LookupKind selects the TS-Scan membership structure.
	LookupKind = core.LookupKind
)

// TS-Scan lookup structures (ablation A3; the paper uses LookupBinary).
const (
	LookupBinary = core.LookupBinary
	LookupLinear = core.LookupLinear
	LookupHash   = core.LookupHash
)

// New creates a ThreadScan reclamation domain bound to sim.  It must be
// called before sim.Run (it installs thread start/exit hooks and the
// scan signal handler).  The returned value implements Scheme; the
// paper's free() is its Retire method, and the §4.3 heap-block
// extension is available via Core().AddHeapBlock.
func New(sim *Sim, cfg Config) *ThreadScan { return reclaim.NewThreadScan(sim, cfg) }

// Baseline reclamation schemes (the paper's §6 comparators).
type (
	// Scheme is the common reclamation interface (BeginOp/EndOp,
	// Protect, Retire, Flush).
	Scheme = reclaim.Scheme
	// SchemeStats are generic scheme counters.
	SchemeStats = reclaim.Stats
	// HazardConfig parameterizes hazard pointers.
	HazardConfig = reclaim.HazardConfig
	// EpochConfig parameterizes epoch-based reclamation (and its Slow
	// Epoch variant via DelayCycles).
	EpochConfig = reclaim.EpochConfig
	// StackTrackConfig parameterizes the StackTrack-style baseline.
	StackTrackConfig = reclaim.StackTrackConfig
)

// NewLeaky returns the no-reclamation baseline.
func NewLeaky(sim *Sim) Scheme { return reclaim.NewLeaky(sim) }

// NewHazard returns a hazard-pointer domain (Michael [37]).
func NewHazard(sim *Sim, cfg HazardConfig) Scheme { return reclaim.NewHazard(sim, cfg) }

// NewEpoch returns an epoch-based domain (Harris [20], McKenney [36]).
func NewEpoch(sim *Sim, cfg EpochConfig) Scheme { return reclaim.NewEpoch(sim, cfg) }

// NewSlowEpoch returns the paper's Slow Epoch variant: epoch-based
// reclamation with an errant thread that busy-waits delayCycles during
// its cleanup phase.
func NewSlowEpoch(sim *Sim, batch int, delayCycles int64) Scheme {
	return reclaim.NewSlowEpoch(sim, batch, delayCycles)
}

// NewStackTrack returns the StackTrack-style published-live-set
// baseline (extension; see DESIGN.md S11).
func NewStackTrack(sim *Sim, cfg StackTrackConfig) Scheme { return reclaim.NewStackTrack(sim, cfg) }

// Benchmark data structures (the paper's §6 workloads, plus the
// LIFO/FIFO structures the scenario suite adds).
type (
	// Set is the common concurrent-set interface.
	Set = ds.Set
	// List is Harris' lock-free linked list.
	List = ds.List
	// HashTable is the lock-free hash table (buckets of Harris lists).
	HashTable = ds.HashTable
	// SkipList is the lock-based lazy skip list.
	SkipList = ds.SkipList
	// Stack is the Treiber lock-free stack (LIFO retirement pattern).
	Stack = ds.Stack
	// Queue is the Michael–Scott lock-free queue (FIFO retirement
	// pattern).
	Queue = ds.Queue
)

// Key bounds usable by the data structures (extremes are sentinels).
const (
	MinKey = ds.MinKey
	MaxKey = ds.MaxKey
)

// SkipListHazardSlots is the hazard-slot count a Hazard domain needs to
// run the skip list.
const SkipListHazardSlots = ds.SkipListHazardSlots

// NewList creates an empty Harris list.  nodeBytes of 0 selects the
// paper's 172-byte padded nodes.
func NewList(sim *Sim, scheme Scheme, nodeBytes int) *List {
	return ds.NewList(sim, scheme, nodeBytes)
}

// NewHashTable creates a hash table with nBuckets buckets of Harris
// lists.
func NewHashTable(sim *Sim, scheme Scheme, nBuckets, nodeBytes int) *HashTable {
	return ds.NewHashTable(sim, scheme, nBuckets, nodeBytes)
}

// NewSkipList creates a lock-based lazy skip list.
func NewSkipList(sim *Sim, scheme Scheme) *SkipList {
	return ds.NewSkipList(sim, scheme)
}

// NewStack creates an empty Treiber stack.  nodeBytes of 0 selects
// cache-line-sized (64-byte) nodes.
func NewStack(sim *Sim, scheme Scheme, nodeBytes int) *Stack {
	return ds.NewStack(sim, scheme, nodeBytes)
}

// NewQueue creates an empty Michael–Scott queue.  nodeBytes of 0
// selects cache-line-sized (64-byte) nodes.
func NewQueue(sim *Sim, scheme Scheme, nodeBytes int) *Queue {
	return ds.NewQueue(sim, scheme, nodeBytes)
}

// Evaluation harness (regenerates the paper's figures).
type (
	// Experiment describes one benchmark data point.
	Experiment = harness.Config
	// Result is one experiment outcome.
	Result = harness.Result
	// SweepParams parameterizes a figure sweep.
	SweepParams = harness.SweepParams
	// Figure is a reproduced figure panel.
	Figure = harness.Figure
)

// Workload scales.
const (
	ScaleQuick = harness.ScaleQuick
	ScalePaper = harness.ScalePaper
)

// RunExperiment executes one benchmark data point.
func RunExperiment(cfg Experiment) (Result, error) { return harness.Run(cfg) }

// RunFig3 reproduces one panel of the paper's Figure 3 (throughput
// scaling up to the hardware thread count).
func RunFig3(dsName string, p SweepParams) (Figure, error) { return harness.RunFig3(dsName, p) }

// RunFig4 reproduces one panel of the paper's Figure 4 (the
// oversubscribed system).
func RunFig4(dsName string, p SweepParams) (Figure, error) { return harness.RunFig4(dsName, p) }

// Declarative workload scenarios (internal/workload + the harness's
// scenario engine): phased op mixes, skewed key distributions, mid-run
// thread churn, and the memory-footprint telemetry every scenario
// reports next to throughput.
type (
	// Scenario is one declarative workload description.
	Scenario = workload.Scenario
	// ScenarioPhase is one mix+distribution window of a scenario.
	ScenarioPhase = workload.Phase
	// OpMix is an operation mix (insert/remove percentages).
	OpMix = workload.Mix
	// KeyDist describes a key distribution (uniform, zipf, hotspot,
	// sliding window).
	KeyDist = workload.Dist
	// ChurnSpec describes mid-run thread turnover.
	ChurnSpec = workload.Churn
	// WorkloadOp is an abstract operation kind (lookup/insert/remove).
	WorkloadOp = workload.Op
	// WorkloadTarget adapts any structure to the scenario engine.
	WorkloadTarget = workload.Target
	// ScenarioResult is one scenario outcome: throughput, op-trace
	// digest, and footprint telemetry.
	ScenarioResult = harness.ScenarioResult
	// Footprint is the sampled memory-robustness time series.
	Footprint = harness.Footprint
	// FootprintSample is one point of that series.
	FootprintSample = harness.FootprintSample
)

// Key distribution kinds.
const (
	DistUniform = workload.DistUniform
	DistZipf    = workload.DistZipf
	DistHotspot = workload.DistHotspot
	DistWindow  = workload.DistWindow
)

// Abstract operation kinds.
const (
	OpLookup = workload.OpLookup
	OpInsert = workload.OpInsert
	OpRemove = workload.OpRemove
)

// BuiltinScenarios returns the named scenario suite (zipfian-skew,
// delete-storm, thread-churn, oversubscribed variants, ...).
func BuiltinScenarios() []Scenario { return workload.Builtins() }

// ScenarioByName returns the named built-in scenario.
func ScenarioByName(name string) (Scenario, bool) { return workload.ByName(name) }

// RunScenario executes one scenario and returns its result.
func RunScenario(s Scenario) (ScenarioResult, error) { return harness.RunScenario(s) }

// WorkloadTargetFor adapts a structure built from this package's
// constructors to the scenario engine's op surface.
func WorkloadTargetFor(structure any) (WorkloadTarget, error) {
	return workload.TargetFor(structure)
}

// Observability (internal/obs): virtual-time lifecycle spans, HDR-style
// latency histograms, and Chrome-trace export.  Recording is keyed on
// the simulator's virtual clock and never charges virtual cycles, so an
// instrumented run's results are bit-identical to an uninstrumented
// one's.
type (
	// Recorder collects per-thread spans and latency histograms for one
	// run.  A nil or zero-value Recorder is disabled and allocates
	// nothing on the hot path.
	Recorder = obs.Recorder
	// LatencySummary is a run's quantile report: per-op latency,
	// max-pause, and per-stage breakdowns (ScenarioResult.Latency).
	LatencySummary = obs.Summary
	// LatencyQuantiles is one histogram's p50/p95/p99/p999/max readout.
	LatencyQuantiles = obs.Quantiles
	// TraceRun pairs a recorder with a label and phase windows for
	// Chrome-trace export.
	TraceRun = obs.TraceRun
	// TraceWindow is one labeled band on the trace's phase row.
	TraceWindow = obs.Window
)

// NewRecorder returns an enabled histogram-only recorder (quantiles and
// max-pause, no span storage) — what RunScenario attaches by default.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NewTraceRecorder returns a recorder that additionally stores every
// lifecycle span and instant for Chrome-trace export.
func NewTraceRecorder() *Recorder { return obs.NewTraceRecorder() }

// RunScenarioRecorded executes one scenario with rec attached to the
// simulator, allocator, and scheme.  Pass nil to disable observability
// entirely; every result field except Latency is identical either way.
func RunScenarioRecorded(s Scenario, rec *Recorder) (ScenarioResult, error) {
	return harness.RunScenarioRecorded(s, rec)
}

// WriteChromeTrace writes the runs as Chrome trace-event JSON, loadable
// in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error { return obs.WriteChromeTrace(w, runs) }

// WriteProfile writes a per-stage cycle-attribution table for one run.
func WriteProfile(w io.Writer, label string, rec *Recorder) error {
	return obs.WriteProfile(w, label, rec)
}

// Virtual-time metrics engine (internal/obs): named counter/gauge/rate/
// quantile timelines sampled on virtual-clock ticks.  Set
// Scenario.MetricsEvery (-1 for the footprint cadence) and every
// ScenarioResult carries the run's series; like the Recorder, sampling
// never charges virtual cycles, so results are bit-identical with
// metrics on or off.
type (
	// Metrics is a per-run metrics registry and its sampled timelines.
	// A nil or zero-value Metrics is disabled and allocates nothing.
	Metrics = obs.Metrics
	// MetricSeries is one named timeline with its steady-state digest
	// (ScenarioResult.Metrics).
	MetricSeries = obs.Series
	// MetricPoint is one (virtual cycle, value) sample.
	MetricPoint = obs.Point
	// MetricsCell labels one grid cell's series for export and diffing.
	MetricsCell = obs.MetricsCell
	// MetricsDrift is one flagged series shift from DiffMetrics.
	MetricsDrift = obs.Drift
)

// NewMetrics returns an enabled registry sampling every `every` virtual
// cycles (pass 0 to disable the ticker).
func NewMetrics(every int64) *Metrics { return obs.NewMetrics(every) }

// WriteMetricsJSON / ReadMetricsJSON round-trip exported metrics cells
// (the `tsbench scenarios -metrics` format).
func WriteMetricsJSON(w io.Writer, cells []MetricsCell) error { return obs.WriteMetricsJSON(w, cells) }

// ReadMetricsJSON parses a metrics export written by WriteMetricsJSON.
func ReadMetricsJSON(r io.Reader) ([]MetricsCell, error) { return obs.ReadMetricsJSON(r) }

// WriteMetricsCSV writes the cells as long-format CSV (one row per
// point).
func WriteMetricsCSV(w io.Writer, cells []MetricsCell) error { return obs.WriteMetricsCSV(w, cells) }

// DiffMetrics compares two metrics exports cell by cell and returns the
// series whose steady-state mean shifted beyond tol (the `tsbench
// metrics-diff` engine).
func DiffMetrics(old, new []MetricsCell, tol float64) []MetricsDrift {
	return obs.DiffMetrics(old, new, tol)
}

// WriteTimeline renders the cells' series as sparkline tables (the
// `tsbench timeline` report).  filter selects series by substring; ""
// keeps all.
func WriteTimeline(w io.Writer, cells []MetricsCell, filter string) error {
	return obs.WriteTimeline(w, cells, filter)
}
